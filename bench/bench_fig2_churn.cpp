// Figure 2: IP-address churn of the initially discovered resolvers.
//
// Paper anchors: >40% of resolvers disappear within the first day, 52.2%
// within one week, and after 55 weeks only 4.0% (1,073,211) still answer
// at their original address. At least 67.4% of the day-one disappearances
// with rDNS records carry dynamic-pool tokens.
#include "analysis/churn.h"
#include "analysis/weekly.h"
#include "common.h"

int main(int argc, char** argv) {
  using namespace dnswild;
  bench::heading("Figure 2", "IP address churn over 55 weeks");
  auto world = bench::build_world(bench::scale_from(argc, argv, 20000));

  analysis::WeeklyCampaignConfig config;
  config.weeks = 55;
  config.track_churn = true;
  config.scan.scanner_ip = world.scanner_ip;
  config.scan.zone = world.scan_zone;
  config.scan.blacklist = &world.blacklist;
  config.scan.seed = 1;
  // Only the first scan enumerates; later weeks just re-probe the initial
  // population, so restrict the universe sweep count by reusing the weekly
  // campaign (it re-scans weekly, which also keeps Fig. 1 comparable).
  config.universe = world.universe;

  const auto result = analysis::run_weekly_campaign(*world.world, config);
  const auto curve =
      analysis::churn_curve(result.first_scan_noerror.size(),
                            result.churn_age_days, result.churn_alive);

  util::Table table({"Age (days)", "Alive", "Alive %", "Paper %"},
                    {util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});
  for (const auto& point : curve) {
    std::string paper = "-";
    if (point.age_days == 1.0) paper = "<60.0";
    if (point.age_days == 7.0) paper = "47.8";
    if (point.age_days >= 384.0) paper = "4.0";
    char age[16];
    std::snprintf(age, sizeof age, "%.0f", point.age_days);
    table.add_row({age, util::with_commas(point.alive),
                   util::frac_pct1(point.alive_fraction), paper});
  }
  std::printf("%s\n", table.render().c_str());

  const auto rdns_stats = analysis::rdns_churn_stats(
      world.world->rdns(), result.disappeared_first_day);
  std::printf("Disappeared within day 1: %s resolvers; %s with rDNS; "
              "%.1f%% dynamic tokens (paper: >= 67.4%%)\n",
              util::with_commas(rdns_stats.disappeared_first_day).c_str(),
              util::with_commas(rdns_stats.with_rdns).c_str(),
              100.0 * rdns_stats.dynamic_fraction);
  return 0;
}
