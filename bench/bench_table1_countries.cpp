// Table 1: resolver fluctuation per country, Jan 31 2014 vs Feb 06 2015.
//
// Paper's Top-10 (start / end / fluctuation %): US 2.96M/2.54M -14.2,
// CN 2.42M/2.10M -13.0, TR 1.44M/0.98M -32.2, VN 1.39M/1.04M -25.4,
// MX 1.37M/1.18M -14.4, IN 1.27M/1.43M +12.7, TH 1.21M/0.56M -53.5,
// IT 1.17M/0.72M -38.3, CO 1.06M/0.68M -36.2, TW 1.06M/0.45M -57.3.
#include "analysis/fluctuation.h"
#include "common.h"

int main(int argc, char** argv) {
  using namespace dnswild;
  bench::heading("Table 1", "resolver fluctuation per country");
  auto world = bench::build_world(bench::scale_from(argc, argv, 30000));

  const auto first = bench::initial_scan(world, 1);
  world.world->set_time_minutes(372 * 1440);  // Feb 06, 2015
  const auto last = bench::initial_scan(world, 2);

  const auto rows = analysis::fluctuation_by_country(
      world.world->asdb(), first.noerror_targets, last.noerror_targets);

  struct PaperRow {
    const char* country;
    double pct;
  };
  static constexpr PaperRow kPaper[] = {
      {"US", -14.2}, {"CN", -13.0}, {"TR", -32.2}, {"VN", -25.4},
      {"MX", -14.4}, {"IN", +12.7}, {"TH", -53.5}, {"IT", -38.3},
      {"CO", -36.2}, {"TW", -57.3},
  };

  util::Table table({"Country", "Jan 31, 2014", "Feb 06, 2015",
                     "Fluct. #", "Fluct. %", "Paper %"},
                    {util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});
  std::uint64_t top10 = 0;
  for (std::size_t i = 0; i < rows.size() && i < 10; ++i) {
    const auto& row = rows[i];
    top10 += row.first;
    std::string paper = "-";
    for (const auto& anchor : kPaper) {
      if (row.key == anchor.country) paper = util::pct1(anchor.pct);
    }
    table.add_row({row.key, util::with_commas(row.first),
                   util::with_commas(row.last),
                   util::with_commas_signed(row.delta()),
                   util::pct1(row.delta_pct()), paper});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Top-10 share of all resolvers: %.1f%% (paper: 49.1%%)\n",
              100.0 * static_cast<double>(top10) /
                  static_cast<double>(first.noerror));

  // §2.3 case studies.
  for (const auto& row : rows) {
    if (row.key == "AR") {
      std::printf("Argentina: %.1f%% (paper: -75.0%%)\n", row.delta_pct());
    }
    if (row.key == "GB") {
      std::printf("Great Britain: %.1f%% (paper: -63.6%%)\n",
                  row.delta_pct());
    }
    if (row.key == "MY") {
      std::printf("Malaysia: %+.1f%% (paper: +59.7%%)\n", row.delta_pct());
    }
    if (row.key == "LB") {
      std::printf("Lebanon: %+.1f%% (paper: +76.7%%)\n", row.delta_pct());
    }
  }

  // AS-level drill-down (§2.3): the collapsing AR / KR providers.
  const auto as_rows = analysis::fluctuation_by_as(
      world.world->asdb(), first.noerror_targets, last.noerror_targets);
  std::printf("\nLargest per-AS decreases (paper: an Argentinean provider "
              "-97.8%%; a Korean ISP 434,567 -> 22):\n");
  for (std::size_t i = 0; i < as_rows.size() && i < 5; ++i) {
    const auto& row = as_rows[i];
    std::printf("  AS%u %-22s %s  %s -> %s\n", row.asn, row.name.c_str(),
                row.country.c_str(), util::with_commas(row.first).c_str(),
                util::with_commas(row.last).c_str());
  }
  return 0;
}
