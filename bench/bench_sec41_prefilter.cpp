// §4.1: DNS-based prefiltering yields + rule ablation.
//
// Paper: 85.8% (MX) to 93.2% (AV) of responses legitimate; 4.9-8.4% with
// empty answer sections (highest for Malware); unexpected tuples 0.6%
// (MX) to 4.4% (Malware), NX at 13.7%. Behavioural oddities: up to 15.1%
// of suspicious resolvers return their own address for >= 1 domain; 8,194
// return it for >= 75% of the sets; 50.4% return one answer set for > 1
// domain; 4.4% a single static address for everything; 2.0% NS-only.
#include "common.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace dnswild;
  const std::string metrics_path = bench::metrics_out_path(argc, argv);
  bench::heading("Section 4.1", "prefiltering yields and rule ablation");
  auto world = bench::build_world(bench::scale_from(argc, argv, 40000));
  const auto population = bench::initial_scan(world, 1);
  auto report = bench::run_pipeline(world, population.noerror_targets);
  bench::maybe_dump_metrics(metrics_path, report);

  std::printf("Tuples: %s; unexpected from %s distinct suspicious "
              "resolvers (paper: 86.7M unexpected, 19.2M resolvers)\n\n",
              util::with_commas(report.prefilter_stats.tuples).c_str(),
              util::with_commas(report.sec41.suspicious_resolvers).c_str());
  std::printf("%s\n", core::render_prefilter(report).c_str());
  std::printf("Paper bands: legitimate 85.8-93.2%%, no-answer 4.9-8.4%%,\n"
              "unexpected 0.6-4.4%% (NX: 13.7%%)\n\n");

  const auto& sec41 = report.sec41;
  const double suspicious =
      static_cast<double>(sec41.suspicious_resolvers);
  std::printf("Self IP for >= 1 domain:        %s (%.1f%% of suspicious; "
              "paper: up to 15.1%% per set)\n",
              util::with_commas(sec41.self_ip_any).c_str(),
              100.0 * static_cast<double>(sec41.self_ip_any) / suspicious);
  std::printf("Self IP for >= 75%% of domains:  %s (paper: 8,194)\n",
              util::with_commas(sec41.self_ip_everywhere).c_str());
  std::printf("Same answer set for > 1 domain: %s (%.1f%%; paper: 50.4%%)\n",
              util::with_commas(sec41.same_set_multi_domain).c_str(),
              100.0 * static_cast<double>(sec41.same_set_multi_domain) /
                  suspicious);
  std::printf("Single static IP everywhere:    %s (%.1f%%; paper: 4.4%%)\n",
              util::with_commas(sec41.static_single_ip).c_str(),
              100.0 * static_cast<double>(sec41.static_single_ip) /
                  suspicious);
  std::printf("NS referrals only:              %s (paper: 2.0%%)\n\n",
              util::with_commas(sec41.ns_only).c_str());

  // Rule attribution + ablation (DESIGN.md §5).
  const auto& stats = report.prefilter_stats;
  std::printf("Accepted-by rule attribution: AS %s, rDNS %s, cert %s\n\n",
              util::with_commas(stats.accepted_by_as).c_str(),
              util::with_commas(stats.accepted_by_rdns).c_str(),
              util::with_commas(stats.accepted_by_cert).c_str());

  std::printf("Ablation (re-judging the same records):\n");
  struct Variant {
    const char* name;
    bool as_rule, rdns_rule, cert_rule;
  };
  static constexpr Variant kVariants[] = {
      {"AS only", true, false, false},
      {"AS + rDNS", true, true, false},
      {"AS + rDNS + cert (full)", true, true, true},
      {"cert only", false, false, true},
  };
  util::Table table({"Rules", "Legitimate", "Unknown", "Unknown %"},
                    {util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});
  for (const auto& variant : kVariants) {
    core::PrefilterConfig config;
    config.use_as_rule = variant.as_rule;
    config.use_rdns_rule = variant.rdns_rule;
    config.use_cert_rule = variant.cert_rule;
    core::Prefilter prefilter(*world.world, *world.registry, world.domains,
                              world.vantage_ip, config);
    prefilter.run(report.records, report.domains);
    const auto& ablation = prefilter.stats();
    table.add_row({variant.name, util::with_commas(ablation.legitimate),
                   util::with_commas(ablation.unknown),
                   util::pct1(100.0 *
                              static_cast<double>(ablation.unknown) /
                              static_cast<double>(ablation.tuples))});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
