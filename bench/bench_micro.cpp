// Engineering micro-benchmarks (google-benchmark): throughput of the hot
// paths — wire codec, scan-order permutation, clustering distances (incl.
// the banded-vs-full edit distance ablation from DESIGN.md §5), HAC
// scaling, HTML feature extraction, and end-to-end resolver query handling.
#include <benchmark/benchmark.h>

#include "cluster/distance.h"
#include "cluster/hac.h"
#include "dns/encoding0x20.h"
#include "dns/message.h"
#include "http/factory.h"
#include "http/html.h"
#include "net/lfsr.h"
#include "resolver/resolver.h"
#include "scan/encoding.h"
#include "scan/permute.h"
#include "util/rng.h"

namespace {

using namespace dnswild;

dns::Message sample_response() {
  dns::Message message = dns::Message::make_query(
      0x1234, dns::Name::must_parse("www.facebook.com"), dns::RType::kA);
  message.header.qr = true;
  for (int i = 0; i < 4; ++i) {
    message.answers.push_back(dns::ResourceRecord::a(
        dns::Name::must_parse("www.facebook.com"),
        net::Ipv4(31, 13, 92, static_cast<std::uint8_t>(i)), 60));
  }
  return message;
}

void BM_MessageEncode(benchmark::State& state) {
  const dns::Message message = sample_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(message.encode());
  }
}
BENCHMARK(BM_MessageEncode);

void BM_MessageDecode(benchmark::State& state) {
  const auto wire = sample_response().encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::Message::decode(wire));
  }
}
BENCHMARK(BM_MessageDecode);

void BM_ResolverIdEncodeDecode(benchmark::State& state) {
  const dns::Name domain = dns::Name::must_parse("facebook.com");
  std::uint32_t id = 0;
  for (auto _ : state) {
    const auto encoded = scan::encode_resolver_id(id++ & scan::kMaxResolverId,
                                                  domain, 40000);
    dns::Message response;
    response.header.qr = true;
    response.header.id = encoded.txid;
    response.questions.push_back(
        dns::Question{encoded.name, dns::RType::kA, dns::RClass::kIN});
    benchmark::DoNotOptimize(
        scan::decode_resolver_id(response, encoded.src_port, 40000));
  }
}
BENCHMARK(BM_ResolverIdEncodeDecode);

void BM_Lfsr32(benchmark::State& state) {
  net::Lfsr32 lfsr(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lfsr.next());
  }
}
BENCHMARK(BM_Lfsr32);

void BM_UniversePermutation(benchmark::State& state) {
  // Ablation: LFSR permutation order vs linear sweep cost per address.
  const std::vector<net::Cidr> universe = {
      net::Cidr(net::Ipv4(1, 0, 0, 0), 16)};
  scan::UniversePermutation permutation(universe, 7);
  net::Ipv4 ip;
  for (auto _ : state) {
    if (!permutation.next(ip)) {
      state.PauseTiming();
      permutation = scan::UniversePermutation(universe, 7);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(ip);
  }
}
BENCHMARK(BM_UniversePermutation);

void BM_EditDistanceFull(benchmark::State& state) {
  const std::string a(static_cast<std::size_t>(state.range(0)), 'a');
  std::string b = a;
  for (std::size_t i = 0; i < b.size(); i += 7) b[i] = 'b';
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::edit_distance(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EditDistanceFull)->Range(64, 2048)->Complexity();

void BM_EditDistanceBanded(benchmark::State& state) {
  const std::string a(static_cast<std::size_t>(state.range(0)), 'a');
  std::string b = a;
  for (std::size_t i = 0; i < b.size(); i += 7) b[i] = 'b';
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::edit_distance_banded(a, b, 64));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EditDistanceBanded)->Range(64, 2048)->Complexity();

void BM_PageFeatureExtraction(benchmark::State& state) {
  const std::string html = http::legit_site(
      "news.example", http::SiteCategory::kAlexa, 0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(http::extract_features(html));
  }
}
BENCHMARK(BM_PageFeatureExtraction);

void BM_PageDistance(benchmark::State& state) {
  const auto a = http::extract_features(http::legit_site(
      "a.example", http::SiteCategory::kBanking, 0, 1));
  const auto b = http::extract_features(http::censorship_page("TR", 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::page_distance(a, b));
  }
}
BENCHMARK(BM_PageDistance);

void BM_HacAverageLinkage(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  std::vector<double> matrix(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      matrix[i * n + j] = matrix[j * n + i] = rng.uniform();
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::hac_average_linkage(
        n, [&matrix, n](std::size_t i, std::size_t j) {
          return matrix[i * n + j];
        }));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HacAverageLinkage)->Range(32, 512)->Complexity();

void BM_ResolverQueryHandling(benchmark::State& state) {
  resolver::AuthRegistry registry;
  registry.add_domain("good.example", {net::Ipv4(5, 5, 5, 5)}, 300);
  net::SimClock clock;
  resolver::ResolverConfig config;
  config.registry = &registry;
  config.clock = &clock;
  config.seed = 1;
  resolver::OpenResolverService service(config);

  net::UdpPacket packet;
  packet.src = net::Ipv4(9, 9, 9, 9);
  packet.src_port = 4000;
  packet.dst = net::Ipv4(1, 2, 3, 4);
  packet.dst_port = 53;
  packet.payload = dns::Message::make_query(
                       7, dns::Name::must_parse("good.example"),
                       dns::RType::kA)
                       .encode();
  for (auto _ : state) {
    std::vector<net::UdpReply> replies;
    service.handle(packet, replies);
    benchmark::DoNotOptimize(replies);
  }
}
BENCHMARK(BM_ResolverQueryHandling);

void BM_Case0x20Encoding(benchmark::State& state) {
  const dns::Name domain = dns::Name::must_parse("facebook.com");
  std::uint32_t bits = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dns::encode_case_bits(domain, bits++ & 0x1ff, 9));
  }
}
BENCHMARK(BM_Case0x20Encoding);

}  // namespace

BENCHMARK_MAIN();
