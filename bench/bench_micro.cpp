// Engineering micro-benchmarks (google-benchmark): throughput of the hot
// paths — wire codec, scan-order permutation, clustering distances (incl.
// the banded-vs-full edit distance ablation from DESIGN.md §5), HAC
// scaling, HTML feature extraction, and end-to-end resolver query handling.
//
// main() additionally sweeps the parallel address-space scan and the
// parallel clustering stage (feature extraction + condensed distance-matrix
// fill) across worker counts and writes the throughput results to
// BENCH_micro.json (path overridable via --json <path> or
// DNSWILD_BENCH_JSON) before the google-benchmark suite runs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <thread>
#include <unordered_set>
#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "common.h"
#include "campaign/campaign.h"
#include "cluster/condensed.h"
#include "cluster/distance.h"
#include "cluster/hac.h"
#include "cluster/lsh.h"
#include "core/classify.h"
#include "dns/encoding0x20.h"
#include "dns/message.h"
#include "http/factory.h"
#include "http/html.h"
#include "net/lfsr.h"
#include "obs/metrics.h"
#include "resolver/resolver.h"
#include "scan/encoding.h"
#include "scan/executor.h"
#include "scan/ipv4scan.h"
#include "scan/permute.h"
#include "scan/ratelimit.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/strings.h"
#include "worldgen/worldgen.h"

namespace {

using namespace dnswild;

dns::Message sample_response() {
  dns::Message message = dns::Message::make_query(
      0x1234, dns::Name::must_parse("www.facebook.com"), dns::RType::kA);
  message.header.qr = true;
  for (int i = 0; i < 4; ++i) {
    message.answers.push_back(dns::ResourceRecord::a(
        dns::Name::must_parse("www.facebook.com"),
        net::Ipv4(31, 13, 92, static_cast<std::uint8_t>(i)), 60));
  }
  return message;
}

void BM_MessageEncode(benchmark::State& state) {
  const dns::Message message = sample_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(message.encode());
  }
}
BENCHMARK(BM_MessageEncode);

void BM_MessageDecode(benchmark::State& state) {
  const auto wire = sample_response().encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::Message::decode(wire));
  }
}
BENCHMARK(BM_MessageDecode);

void BM_ResolverIdEncodeDecode(benchmark::State& state) {
  const dns::Name domain = dns::Name::must_parse("facebook.com");
  std::uint32_t id = 0;
  for (auto _ : state) {
    const auto encoded = scan::encode_resolver_id(id++ & scan::kMaxResolverId,
                                                  domain, 40000);
    dns::Message response;
    response.header.qr = true;
    response.header.id = encoded.txid;
    response.questions.push_back(
        dns::Question{encoded.name, dns::RType::kA, dns::RClass::kIN});
    benchmark::DoNotOptimize(
        scan::decode_resolver_id(response, encoded.src_port, 40000));
  }
}
BENCHMARK(BM_ResolverIdEncodeDecode);

void BM_Lfsr32(benchmark::State& state) {
  net::Lfsr32 lfsr(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lfsr.next());
  }
}
BENCHMARK(BM_Lfsr32);

void BM_UniversePermutation(benchmark::State& state) {
  // Ablation: LFSR permutation order vs linear sweep cost per address.
  const std::vector<net::Cidr> universe = {
      net::Cidr(net::Ipv4(1, 0, 0, 0), 16)};
  scan::UniversePermutation permutation(universe, 7);
  net::Ipv4 ip;
  for (auto _ : state) {
    if (!permutation.next(ip)) {
      state.PauseTiming();
      permutation = scan::UniversePermutation(universe, 7);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(ip);
  }
}
BENCHMARK(BM_UniversePermutation);

void BM_EditDistanceFull(benchmark::State& state) {
  const std::string a(static_cast<std::size_t>(state.range(0)), 'a');
  std::string b = a;
  for (std::size_t i = 0; i < b.size(); i += 7) b[i] = 'b';
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::edit_distance(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EditDistanceFull)->Range(64, 2048)->Complexity();

void BM_EditDistanceBanded(benchmark::State& state) {
  const std::string a(static_cast<std::size_t>(state.range(0)), 'a');
  std::string b = a;
  for (std::size_t i = 0; i < b.size(); i += 7) b[i] = 'b';
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::edit_distance_banded(a, b, 64));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EditDistanceBanded)->Range(64, 2048)->Complexity();

void BM_EditDistanceAdaptive(benchmark::State& state) {
  // Ablation third leg: the production path (length fast paths + Ukkonen
  // doubling band, exact by construction) vs the fixed-band and full DP
  // variants above.
  const std::string a(static_cast<std::size_t>(state.range(0)), 'a');
  std::string b = a;
  for (std::size_t i = 0; i < b.size(); i += 7) b[i] = 'b';
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::edit_distance_adaptive(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EditDistanceAdaptive)->Range(64, 2048)->Complexity();

void BM_PageFeatureExtraction(benchmark::State& state) {
  const std::string html = http::legit_site(
      "news.example", http::SiteCategory::kAlexa, 0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(http::extract_features(html));
  }
}
BENCHMARK(BM_PageFeatureExtraction);

void BM_PageDistance(benchmark::State& state) {
  const auto a = http::extract_features(http::legit_site(
      "a.example", http::SiteCategory::kBanking, 0, 1));
  const auto b = http::extract_features(http::censorship_page("TR", 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::page_distance(a, b));
  }
}
BENCHMARK(BM_PageDistance);

void BM_PageDistanceBreakdown(benchmark::State& state) {
  // Ablation partner for BM_PageDistance: the straight-line reference
  // breakdown (full DP on every edit feature, no cheap-first ordering).
  const auto a = http::extract_features(http::legit_site(
      "a.example", http::SiteCategory::kBanking, 0, 1));
  const auto b = http::extract_features(http::censorship_page("TR", 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::page_distance_breakdown(a, b));
  }
}
BENCHMARK(BM_PageDistanceBreakdown);

void BM_HacAverageLinkage(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  std::vector<double> matrix(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      matrix[i * n + j] = matrix[j * n + i] = rng.uniform();
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::hac_average_linkage(
        n, [&matrix, n](std::size_t i, std::size_t j) {
          return matrix[i * n + j];
        }));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HacAverageLinkage)->Range(32, 512)->Complexity();

void BM_ResolverQueryHandling(benchmark::State& state) {
  resolver::AuthRegistry registry;
  registry.add_domain("good.example", {net::Ipv4(5, 5, 5, 5)}, 300);
  net::SimClock clock;
  resolver::ResolverConfig config;
  config.registry = &registry;
  config.clock = &clock;
  config.seed = 1;
  resolver::OpenResolverService service(config);

  net::UdpPacket packet;
  packet.src = net::Ipv4(9, 9, 9, 9);
  packet.src_port = 4000;
  packet.dst = net::Ipv4(1, 2, 3, 4);
  packet.dst_port = 53;
  packet.payload = dns::Message::make_query(
                       7, dns::Name::must_parse("good.example"),
                       dns::RType::kA)
                       .encode();
  for (auto _ : state) {
    std::vector<net::UdpReply> replies;
    service.handle(packet, replies);
    benchmark::DoNotOptimize(replies);
  }
}
BENCHMARK(BM_ResolverQueryHandling);

void BM_Case0x20Encoding(benchmark::State& state) {
  const dns::Name domain = dns::Name::must_parse("facebook.com");
  std::uint32_t bits = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dns::encode_case_bits(domain, bits++ & 0x1ff, 9));
  }
}
BENCHMARK(BM_Case0x20Encoding);

// Ablation for the probe-label hot path: a fresh std::string per probe
// (the old Ipv4Scanner::probe_one) vs one reused buffer (the current one).
void BM_ProbePrefixFresh(benchmark::State& state) {
  std::uint64_t key = 1;
  for (auto _ : state) {
    std::string prefix = "p" + util::hex32(static_cast<std::uint32_t>(key++));
    benchmark::DoNotOptimize(prefix);
  }
}
BENCHMARK(BM_ProbePrefixFresh);

void BM_ProbePrefixReused(benchmark::State& state) {
  std::uint64_t key = 1;
  std::string prefix;
  prefix.reserve(16);
  for (auto _ : state) {
    prefix.clear();
    prefix.push_back('p');
    util::append_hex32(prefix, static_cast<std::uint32_t>(key++));
    benchmark::DoNotOptimize(prefix);
  }
}
BENCHMARK(BM_ProbePrefixReused);

void BM_PacketHash(benchmark::State& state) {
  std::uint64_t word = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        util::hash_words({42, word++, 0x350000000035ULL, 0}));
  }
}
BENCHMARK(BM_PacketHash);

// Full address-space scan at one worker count; a fresh world per run so
// every measurement starts from identical cache/churn state.
bench::ScanBenchEntry measure_scan(unsigned threads,
                                   std::uint32_t resolver_count) {
  worldgen::WorldGenConfig world_config;
  world_config.seed = 2015;
  world_config.resolver_count = resolver_count;
  world_config.with_devices = false;  // DNS traffic plane only
  worldgen::GeneratedWorld gen = worldgen::generate_world(world_config);

  scan::Ipv4ScanConfig config;
  config.scanner_ip = gen.scanner_ip;
  config.zone = gen.scan_zone;
  config.blacklist = &gen.blacklist;
  config.seed = 1;
  config.threads = threads;
  scan::Ipv4Scanner scanner(*gen.world, config);

  const auto start = std::chrono::steady_clock::now();
  const scan::Ipv4ScanSummary summary = scanner.scan(gen.universe);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  bench::ScanBenchEntry entry;
  entry.threads = threads;
  entry.probes = summary.probed;
  entry.wall_seconds = elapsed.count();
  entry.probes_per_sec =
      entry.wall_seconds > 0.0
          ? static_cast<double>(entry.probes) / entry.wall_seconds
          : 0.0;
  // Traffic-plane cross-check from the world's registry: what the wire
  // carried during this scan, and how the executor sharded it.
  const obs::Snapshot snapshot = gen.world->metrics().snapshot();
  entry.udp_sent = snapshot.counter_value("net.udp.sent");
  entry.udp_delivered = snapshot.counter_value("net.udp.delivered");
  entry.udp_dropped_filtered =
      snapshot.counter_value("net.udp.dropped_filtered");
  entry.udp_lost = snapshot.counter_value("net.udp.lost");
  entry.executor_shards =
      snapshot.counter_value("scan.ipv4.executor.shards");
  return entry;
}

// Loss-ablation cell (DESIGN.md §9): address-space scan against a world
// whose routed prefixes all sit in permanent loss episodes at `loss` in
// each direction, probed under `attempts` retransmissions. The virtual
// scan duration paces every send through a TokenBucket at the study's
// probe rate and then charges the retry plane's backoff/timeout waits, so
// the duration cost of a retry policy is visible next to its recovery.
bench::LossAblationEntry measure_loss(double loss, int attempts,
                                      std::uint32_t resolver_count,
                                      std::uint64_t baseline_responders) {
  worldgen::WorldGenConfig world_config;
  world_config.seed = 2015;
  world_config.resolver_count = resolver_count;
  world_config.with_devices = false;
  if (loss > 0.0) {
    world_config.chaos.enabled = true;
    world_config.chaos.network_fraction = 1.0;  // every routed prefix
    world_config.chaos.episode_rate = 1.0;      // always in-episode
    world_config.chaos.episode_mean_buckets = 8.0;
    world_config.chaos.burst_loss = loss;
    world_config.chaos.base_loss = loss;
  }
  worldgen::GeneratedWorld gen = worldgen::generate_world(world_config);

  scan::Ipv4ScanConfig config;
  config.scanner_ip = gen.scanner_ip;
  config.zone = gen.scan_zone;
  config.blacklist = &gen.blacklist;
  config.seed = 1;
  config.retry.attempts = attempts;
  config.retry.timeout_ms = 2000;
  scan::Ipv4Scanner scanner(*gen.world, config);
  const scan::Ipv4ScanSummary summary = scanner.scan(gen.universe);

  bench::LossAblationEntry entry;
  entry.loss_rate = loss;
  entry.retry_attempts = attempts;
  entry.responders = summary.noerror;
  // `baseline_responders` must come from a zero-loss scan under the SAME
  // retry ladder: retransmissions also recover the resolvers' intrinsic
  // (loss-independent) query drops, so normalizing a retried cell against
  // the no-retry baseline pushes the fraction past 1.0. Network loss can
  // only remove responders from the same-ladder baseline, so the ratio is
  // ≤ 1 by construction; the clamp guards the invariant against future
  // baseline drift.
  entry.recovered_fraction =
      baseline_responders > 0
          ? std::min(1.0, static_cast<double>(summary.noerror) /
                              static_cast<double>(baseline_responders))
          : 1.0;
  entry.retransmissions = summary.retry_retransmissions;
  entry.retry_wait_ms = summary.retry_wait_ms;
  // Event-core makespan: retry waits overlap inside the in-flight window
  // (DESIGN.md §11), so the duration is pacing time plus the tail.
  entry.virtual_scan_seconds = summary.virtual_scan_seconds;
  // Synchronous baseline: one paced token per wire send, then the retry
  // plane's aggregate waits charged end-to-end (the pre-event-core
  // accounting, equivalent to a window of one).
  scan::TokenBucket pace(25000.0, 128.0);
  const std::uint64_t sends = summary.probed + summary.retry_retransmissions;
  for (std::uint64_t i = 0; i < sends; ++i) pace.acquire();
  pace.advance(static_cast<double>(summary.retry_wait_ms) / 1000.0);
  entry.serial_virtual_seconds = pace.virtual_elapsed_seconds();
  entry.virtual_speedup =
      entry.virtual_scan_seconds > 0.0
          ? entry.serial_virtual_seconds / entry.virtual_scan_seconds
          : 0.0;
  return entry;
}

// --- world-scale memory rows (DESIGN.md §12) ------------------------------

// Reads one numeric field (in kB) out of /proc/self/status.
std::uint64_t proc_status_kb(const char* key) {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof line, file) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      kb = std::strtoull(line + key_len, nullptr, 10);
      break;
    }
  }
  std::fclose(file);
  return kb;
}

// Current resident set, with the allocator's free arenas handed back first
// so consecutive builds in one process don't inherit each other's slack.
std::uint64_t current_rss_bytes() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
  return proc_status_kb("VmRSS:") * 1024;
}

// Resets the process peak-RSS watermark (VmHWM) so each world's peak is
// its own. Best-effort: needs Linux >= 4.0; on failure the watermark just
// stays cumulative.
void reset_peak_rss() {
  std::FILE* file = std::fopen("/proc/self/clear_refs", "w");
  if (file == nullptr) return;
  std::fputs("5", file);
  std::fclose(file);
}

// World-scale row: build a calibrated world at `resolvers` in one worldgen
// mode, charge the RSS growth to its hosts, then run the Internet-wide
// scan. The world lives only inside this call, so rows don't stack.
bench::WorldScaleEntry measure_world_scale(bool lazy,
                                           std::uint32_t resolvers) {
  bench::WorldScaleEntry entry;
  entry.mode = lazy ? "lazy" : "eager";
  entry.resolvers = resolvers;
  reset_peak_rss();
  entry.rss_before_bytes = current_rss_bytes();

  worldgen::WorldGenConfig config;
  config.seed = 2015;
  config.resolver_count = resolvers;
  config.lazy = lazy;
  const auto build_start = std::chrono::steady_clock::now();
  worldgen::GeneratedWorld gen = worldgen::generate_world(config);
  entry.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    build_start)
          .count();
  entry.hosts = gen.world->host_count();
  entry.rss_after_build_bytes = current_rss_bytes();
  entry.bytes_per_host =
      entry.hosts > 0 && entry.rss_after_build_bytes > entry.rss_before_bytes
          ? static_cast<double>(entry.rss_after_build_bytes -
                                entry.rss_before_bytes) /
                static_cast<double>(entry.hosts)
          : 0.0;

  scan::Ipv4ScanConfig scan_config;
  scan_config.scanner_ip = gen.scanner_ip;
  scan_config.zone = gen.scan_zone;
  scan_config.blacklist = &gen.blacklist;
  scan_config.seed = 1;
  scan::Ipv4Scanner scanner(*gen.world, scan_config);
  const auto scan_start = std::chrono::steady_clock::now();
  const scan::Ipv4ScanSummary summary = scanner.scan(gen.universe);
  entry.scan_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    scan_start)
          .count();
  entry.probes = summary.probed;
  entry.probes_per_sec = entry.scan_wall_seconds > 0.0
                             ? static_cast<double>(summary.probed) /
                                   entry.scan_wall_seconds
                             : 0.0;
  entry.noerror = summary.noerror;
  entry.peak_rss_bytes = proc_status_kb("VmHWM:") * 1024;
  return entry;
}

// In-flight-window sweep cell (DESIGN.md §11): the same lossy scan
// (loss 0.10, attempts 3 — the retry ladder that makes waits expensive)
// replayed at a fixed window. A fresh world per cell so every run starts
// from identical state; the probe outcomes are identical across cells
// (per-probe fates are pure hashes), only the virtual schedule moves.
bench::InflightSweepEntry measure_inflight(std::uint32_t window,
                                           std::uint32_t resolver_count) {
  worldgen::WorldGenConfig world_config;
  world_config.seed = 2015;
  world_config.resolver_count = resolver_count;
  world_config.with_devices = false;
  world_config.chaos.enabled = true;
  world_config.chaos.network_fraction = 1.0;
  world_config.chaos.episode_rate = 1.0;
  world_config.chaos.episode_mean_buckets = 8.0;
  world_config.chaos.burst_loss = 0.10;
  world_config.chaos.base_loss = 0.10;
  worldgen::GeneratedWorld gen = worldgen::generate_world(world_config);

  scan::Ipv4ScanConfig config;
  config.scanner_ip = gen.scanner_ip;
  config.zone = gen.scan_zone;
  config.blacklist = &gen.blacklist;
  config.seed = 1;
  config.retry.attempts = 3;
  config.retry.timeout_ms = 2000;
  config.max_in_flight = window;
  scan::Ipv4Scanner scanner(*gen.world, config);

  const auto start = std::chrono::steady_clock::now();
  const scan::Ipv4ScanSummary summary = scanner.scan(gen.universe);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  bench::InflightSweepEntry entry;
  entry.max_in_flight = window;
  entry.probes = summary.probed;
  entry.wire_sends = summary.probed + summary.retry_retransmissions;
  entry.virtual_seconds = summary.virtual_scan_seconds;
  entry.wall_seconds = elapsed.count();
  entry.probes_per_virtual_sec =
      entry.virtual_seconds > 0.0
          ? static_cast<double>(entry.probes) / entry.virtual_seconds
          : 0.0;
  entry.peak_in_flight = summary.peak_in_flight;
  return entry;
}

// Scan-order discovery-rate ablation (DESIGN.md §5): per-probe fates are
// order-independent, so one baseline scan gives the responder population
// and the curves come from walking each permutation against that set —
// no re-probing. 32 checkpoints per order.
std::vector<bench::ScanOrderAblationEntry> measure_scan_order(
    std::uint32_t resolver_count) {
  worldgen::WorldGenConfig world_config;
  world_config.seed = 2015;
  world_config.resolver_count = resolver_count;
  world_config.with_devices = false;
  worldgen::GeneratedWorld gen = worldgen::generate_world(world_config);

  scan::Ipv4ScanConfig config;
  config.scanner_ip = gen.scanner_ip;
  config.zone = gen.scan_zone;
  config.blacklist = &gen.blacklist;
  config.seed = 1;
  scan::Ipv4Scanner scanner(*gen.world, config);
  const scan::Ipv4ScanSummary summary = scanner.scan(gen.universe);
  std::unordered_set<std::uint32_t> responders;
  responders.reserve(summary.noerror_targets.size());
  for (const net::Ipv4 ip : summary.noerror_targets) {
    responders.insert(ip.value());
  }

  std::vector<bench::ScanOrderAblationEntry> entries;
  constexpr int kCheckpoints = 32;
  for (const scan::ScanOrder order :
       {scan::ScanOrder::kLfsr, scan::ScanOrder::kSobol}) {
    scan::UniversePermutation permutation(gen.universe, 1, order);
    const std::uint64_t total = permutation.size();
    std::uint64_t probed = 0;
    std::uint64_t discovered = 0;
    int next_checkpoint = 1;
    net::Ipv4 ip;
    while (permutation.next(ip)) {
      ++probed;
      if (responders.count(ip.value()) != 0) ++discovered;
      while (next_checkpoint <= kCheckpoints &&
             probed * kCheckpoints >= total * next_checkpoint) {
        bench::ScanOrderAblationEntry entry;
        entry.order = order == scan::ScanOrder::kLfsr ? "lfsr" : "sobol";
        entry.fraction =
            static_cast<double>(next_checkpoint) / kCheckpoints;
        entry.probed = probed;
        entry.discovered = discovered;
        entry.discovered_fraction =
            responders.empty()
                ? 0.0
                : static_cast<double>(discovered) /
                      static_cast<double>(responders.size());
        entries.push_back(entry);
        ++next_checkpoint;
      }
    }
  }
  return entries;
}

// Synthetic unique-page corpus spanning the content classes the study
// clusters (legit sites, censorship/blocking pages, parking, router
// logins, error pages, search portals).
std::vector<std::string> cluster_corpus(std::size_t count) {
  std::vector<std::string> corpus;
  corpus.reserve(count);
  const http::SiteCategory categories[] = {
      http::SiteCategory::kAlexa,   http::SiteCategory::kBanking,
      http::SiteCategory::kAdult,   http::SiteCategory::kGambling,
      http::SiteCategory::kMail,    http::SiteCategory::kFilesharing,
  };
  std::size_t v = 0;
  while (corpus.size() < count) {
    switch (v % 7) {
      case 0:
        corpus.push_back(http::legit_site(
            "site" + std::to_string(v) + ".example",
            categories[v % (sizeof categories / sizeof categories[0])], v,
            1));
        break;
      case 1: corpus.push_back(http::censorship_page("TR", v)); break;
      case 2:
        corpus.push_back(http::blocking_page(v % 3, v, "blocked.example"));
        break;
      case 3:
        corpus.push_back(
            http::parking_page("lot" + std::to_string(v) + ".example", v));
        break;
      case 4: corpus.push_back(http::router_login(v % 4, v)); break;
      case 5:
        corpus.push_back(http::error_page(static_cast<int>(400 + v % 100), v));
        break;
      case 6: corpus.push_back(http::search_page(v, "q.example", false)); break;
    }
    ++v;
  }
  return corpus;
}

// The two parallel stages of the clustering plane at one worker count:
// per-page feature extraction and the condensed distance-matrix fill
// (both sharded over ParallelExecutor::run_blocks exactly as
// classify_responses / hac_average_linkage shard them).
bench::ClusterBenchEntry measure_cluster(unsigned threads,
                                         const std::vector<std::string>& corpus) {
  const std::size_t n = corpus.size();
  // Same oversharding clamp the production call sites apply: more workers
  // than min(cores, items/grain) only adds wakeup latency (the 1→8 thread
  // throughput collapse this sweep used to show on a 1-CPU box).
  scan::ParallelExecutor executor(
      scan::ParallelExecutor::effective_threads(threads, n, 16));

  std::vector<http::PageFeatures> features(n);
  auto start = std::chrono::steady_clock::now();
  executor.run_blocks(n, [&](std::uint64_t begin, std::uint64_t end, unsigned) {
    for (std::uint64_t i = begin; i < end; ++i) {
      features[i] = http::extract_features(corpus[i]);
    }
  });
  const std::chrono::duration<double> feature_wall =
      std::chrono::steady_clock::now() - start;

  cluster::CondensedMatrix matrix(n);
  start = std::chrono::steady_clock::now();
  executor.run_blocks(
      matrix.pair_count(),
      [&](std::uint64_t begin, std::uint64_t end, unsigned) {
        auto [i, j] = matrix.cell(static_cast<std::size_t>(begin));
        for (std::uint64_t k = begin; k < end; ++k) {
          matrix.flat_at(static_cast<std::size_t>(k)) =
              cluster::page_distance(features[i], features[j]);
          if (++j == n) {
            ++i;
            j = i + 1;
          }
        }
      });
  const std::chrono::duration<double> distance_wall =
      std::chrono::steady_clock::now() - start;

  cluster::HacOptions options;
  options.executor = &executor;
  start = std::chrono::steady_clock::now();
  const cluster::Dendrogram dendrogram = cluster::hac_average_linkage(
      n,
      [&features](std::size_t a, std::size_t b) {
        return cluster::page_distance(features[a], features[b]);
      },
      options);
  const std::chrono::duration<double> hac_wall =
      std::chrono::steady_clock::now() - start;
  benchmark::DoNotOptimize(dendrogram.merges().size());

  bench::ClusterBenchEntry entry;
  entry.threads = threads;
  entry.unique_pages = n;
  entry.pair_distances = matrix.pair_count();
  entry.features_per_sec =
      feature_wall.count() > 0.0
          ? static_cast<double>(n) / feature_wall.count()
          : 0.0;
  entry.distances_per_sec =
      distance_wall.count() > 0.0
          ? static_cast<double>(entry.pair_distances) / distance_wall.count()
          : 0.0;
  entry.hac_wall_seconds = hac_wall.count();
  return entry;
}

// Per-page content labels of a clustering: each cluster is labeled from
// its largest-body member (ties toward the smaller index — the same
// exemplar rule classify_responses uses), and the label propagates to
// every member. Agreement between the exact and LSH engines is measured
// on these labels, not on raw cluster ids, because cluster numbering is
// arbitrary while the Table 5 class of each page is the actual output.
std::vector<core::Label> content_labels(
    const std::vector<int>& cluster_of,
    const std::vector<std::string>& corpus) {
  int clusters = 0;
  for (const int c : cluster_of) clusters = std::max(clusters, c + 1);
  std::vector<std::size_t> exemplar(static_cast<std::size_t>(clusters),
                                    corpus.size());
  for (std::size_t i = 0; i < cluster_of.size(); ++i) {
    std::size_t& best = exemplar[static_cast<std::size_t>(cluster_of[i])];
    if (best == corpus.size() || corpus[i].size() > corpus[best].size()) {
      best = i;
    }
  }
  std::vector<core::Label> per_cluster(static_cast<std::size_t>(clusters));
  for (int c = 0; c < clusters; ++c) {
    per_cluster[static_cast<std::size_t>(c)] =
        core::label_page(200, corpus[exemplar[static_cast<std::size_t>(c)]]);
  }
  std::vector<core::Label> labels(cluster_of.size());
  for (std::size_t i = 0; i < cluster_of.size(); ++i) {
    labels[i] = per_cluster[static_cast<std::size_t>(cluster_of[i])];
  }
  return labels;
}

// One cell of the exact-vs-LSH crossover: cluster the same n-page corpus
// with both engines (exact leg skipped above `exact_cap` — its O(n^2)
// matrix fill dominates minutes of wall time there) and report wall time,
// exact distances paid, and content-label agreement side by side.
bench::LshCrossoverEntry measure_lsh_crossover(std::size_t pages,
                                               std::size_t exact_cap) {
  const auto corpus = cluster_corpus(pages);
  const std::size_t n = corpus.size();
  scan::ParallelExecutor executor(
      scan::ParallelExecutor::effective_threads(0, n, 16));

  std::vector<http::PageFeatures> features(n);
  executor.run_blocks(n, [&](std::uint64_t begin, std::uint64_t end,
                             unsigned) {
    for (std::uint64_t i = begin; i < end; ++i) {
      features[i] = http::extract_features(corpus[i]);
    }
  });

  bench::LshCrossoverEntry entry;
  entry.pages = n;
  entry.full_pairs = cluster::CondensedMatrix::pair_count(n);

  const double cut = 0.25;  // the classifier's coarse_cut
  auto start = std::chrono::steady_clock::now();
  cluster::LshOptions options;
  options.cut = cut;
  options.executor = &executor;
  const auto lsh = cluster::lsh_cluster(
      features,
      [&corpus](std::size_t i) { return std::string_view(corpus[i]); },
      options);
  entry.lsh_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  entry.candidate_pairs = lsh.stats.candidate_pairs;
  entry.pair_reduction = lsh.stats.pair_reduction;
  entry.clusters_lsh = lsh.clusters;
  entry.missed_pair_estimate = lsh.stats.missed_pair_estimate;

  if (n <= exact_cap) {
    start = std::chrono::steady_clock::now();
    cluster::HacOptions hac_options;
    hac_options.max_items = n;
    hac_options.executor = &executor;
    const auto dendrogram = cluster::hac_average_linkage(
        n,
        [&features](std::size_t a, std::size_t b) {
          return cluster::page_distance(features[a], features[b]);
        },
        hac_options);
    const auto exact_labels = dendrogram.cut(cut);
    entry.exact_wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    entry.clusters_exact = dendrogram.cluster_count(cut);
    const auto exact_content = content_labels(exact_labels, corpus);
    const auto lsh_content = content_labels(lsh.labels, corpus);
    std::size_t agree = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (exact_content[i] == lsh_content[i]) ++agree;
    }
    entry.label_agreement =
        n > 0 ? static_cast<double>(agree) / static_cast<double>(n) : 1.0;
  }
  return entry;
}

// Telemetry-overhead pair (DESIGN.md §13): the same address-space scan
// with the per-prefix aggregator and the flight recorder switched off vs
// on. Fresh world per run so both modes start from identical state. The
// off and on runs interleave (order alternating between reps) so machine
// load drift samples both modes alike, and each mode reports its median
// wall over all reps — single noisy scans cannot move the gate. CI gates
// "on" throughput at >= 95% of "off".
std::vector<bench::TelemetryOverheadEntry> measure_telemetry_overhead(
    std::uint32_t resolver_count) {
  constexpr int kReps = 9;
  std::vector<double> walls[2];
  std::uint64_t probes = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    for (int half = 0; half < 2; ++half) {
      const bool telemetry_on = ((rep % 2) == 1) == (half == 0);
      worldgen::WorldGenConfig world_config;
      world_config.seed = 2015;
      world_config.resolver_count = resolver_count;
      world_config.with_devices = false;
      worldgen::GeneratedWorld gen = worldgen::generate_world(world_config);
      gen.world->prefix_telemetry().set_enabled(telemetry_on);
      gen.world->trace().set_enabled(telemetry_on);

      scan::Ipv4ScanConfig config;
      config.scanner_ip = gen.scanner_ip;
      config.zone = gen.scan_zone;
      config.blacklist = &gen.blacklist;
      config.seed = 1;
      // One worker: the pair compares per-probe cost, and a serial scan
      // strips the executor's scheduling jitter out of the measurement.
      config.threads = 1;
      scan::Ipv4Scanner scanner(*gen.world, config);

      const auto start = std::chrono::steady_clock::now();
      const scan::Ipv4ScanSummary summary = scanner.scan(gen.universe);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      probes = summary.probed;
      walls[telemetry_on ? 1 : 0].push_back(elapsed.count());
    }
  }
  std::vector<bench::TelemetryOverheadEntry> entries(2);
  entries[0].mode = "off";
  entries[1].mode = "on";
  for (int mode = 0; mode < 2; ++mode) {
    std::sort(walls[mode].begin(), walls[mode].end());
    bench::TelemetryOverheadEntry& entry = entries[mode];
    entry.probes = probes;
    entry.wall_seconds = walls[mode][walls[mode].size() / 2];
    entry.probes_per_sec =
        entry.wall_seconds > 0.0
            ? static_cast<double>(entry.probes) / entry.wall_seconds
            : 0.0;
  }
  return entries;
}

// Delta-scan economy (DESIGN.md §14): a 3-epoch campaign — one full sweep
// then two delta epochs — on a frozen-clock (unchanged) world. The delta
// epochs should flag nothing and re-probe (almost) nothing; CI gates each
// delta row at <= 10% of the full row's probes. Virtual seconds come from
// the event core, so the rows are deterministic.
std::vector<dnswild::bench::DeltaScanEntry> measure_delta_scan(
    std::uint32_t resolver_count) {
  const std::filesystem::path store_dir =
      std::filesystem::current_path() / "bench_delta_store";
  std::filesystem::remove_all(store_dir);

  worldgen::WorldGenConfig world_config;
  world_config.seed = 2015;
  world_config.resolver_count = resolver_count;
  world_config.with_devices = false;
  worldgen::GeneratedWorld gen = worldgen::generate_world(world_config);

  campaign::CampaignTargets targets;
  targets.scanner_ip = gen.scanner_ip;
  targets.zone = gen.scan_zone;
  targets.blacklist = &gen.blacklist;
  targets.universe = gen.universe;
  campaign::CampaignConfig config;
  config.store_dir = store_dir.string();
  config.epochs = 3;
  config.interval_minutes = 0;  // unchanged world between epochs
  config.seed = 7;
  config.delta = true;
  config.full_every = 0;
  campaign::CampaignEngine engine(*gen.world, targets, config);
  const campaign::CampaignResult result = engine.run(false);
  std::filesystem::remove_all(store_dir);

  std::vector<dnswild::bench::DeltaScanEntry> entries;
  for (const campaign::EpochRecord& epoch : result.epochs) {
    dnswild::bench::DeltaScanEntry entry;
    entry.kind =
        epoch.kind == campaign::EpochKind::kDelta ? "delta" : "full";
    entry.epoch = epoch.index;
    entry.probes = epoch.probed;
    entry.virtual_seconds = epoch.virtual_scan_seconds;
    entry.flagged_prefixes = epoch.flagged_prefixes;
    entry.population = epoch.population.size();
    entries.push_back(entry);
  }
  return entries;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = dnswild::bench::bench_json_path(argc, argv);
  if (json_path.empty()) json_path = "BENCH_micro.json";
  // `--quick`: the CI smoke shape — small scan world, small crossover
  // sizes, no loss ablation, no google-benchmark suite. Emits the same
  // JSON document so downstream checks can assert its schema.
  const bool quick = dnswild::bench::bench_flag(argc, argv, "--quick");

  const unsigned hardware = std::thread::hardware_concurrency();
  const std::uint32_t resolver_count =
      dnswild::bench::scale_from(1, argv, quick ? 8000 : 60000);
  std::vector<unsigned> sweep = {1, 2, 8};
  if (hardware > 1 &&
      std::find(sweep.begin(), sweep.end(), hardware) == sweep.end()) {
    sweep.push_back(hardware);
  }

  std::vector<dnswild::bench::ScanBenchEntry> entries;
  for (const unsigned threads : sweep) {
    const auto entry = measure_scan(threads, resolver_count);
    std::printf("scan threads=%u probes=%llu wall=%.3fs rate=%.0f/s\n",
                threads, static_cast<unsigned long long>(entry.probes),
                entry.wall_seconds, entry.probes_per_sec);
    entries.push_back(entry);
  }

  const std::size_t corpus_pages = 160;
  const auto corpus = cluster_corpus(corpus_pages);
  std::vector<dnswild::bench::ClusterBenchEntry> cluster_entries;
  for (const unsigned threads : sweep) {
    const auto entry = measure_cluster(threads, corpus);
    std::printf(
        "cluster threads=%u pages=%zu pairs=%llu feat=%.0f/s dist=%.0f/s "
        "hac=%.3fs\n",
        threads, entry.unique_pages,
        static_cast<unsigned long long>(entry.pair_distances),
        entry.features_per_sec, entry.distances_per_sec,
        entry.hac_wall_seconds);
    cluster_entries.push_back(entry);
  }
  const std::size_t condensed_bytes =
      dnswild::cluster::CondensedMatrix::pair_count(corpus_pages) *
      sizeof(double);
  const std::size_t square_bytes = corpus_pages * corpus_pages * sizeof(double);
  std::printf("matrix bytes at n=%zu: condensed=%zu square=%zu (%.2fx)\n",
              corpus_pages, condensed_bytes, square_bytes,
              condensed_bytes > 0
                  ? static_cast<double>(square_bytes) /
                        static_cast<double>(condensed_bytes)
                  : 0.0);
  // Exact-vs-LSH clustering crossover (DESIGN.md §10): both engines on
  // the same corpora, exact leg capped where its O(n^2) matrix stops
  // being measurable in reasonable wall time on this box.
  const std::vector<std::size_t> crossover_sizes =
      quick ? std::vector<std::size_t>{160, 1000}
            : std::vector<std::size_t>{160, 1000, 10000, 50000};
  const std::size_t exact_cap = 1000;
  std::vector<dnswild::bench::LshCrossoverEntry> lsh_entries;
  for (const std::size_t pages : crossover_sizes) {
    const auto entry = measure_lsh_crossover(pages, exact_cap);
    std::printf(
        "lsh_crossover pages=%zu exact=%.3fs lsh=%.3fs pairs=%llu/%llu "
        "(%.0fx) clusters=%zu/%zu agreement=%.4f missed=%.4f\n",
        entry.pages, entry.exact_wall_seconds, entry.lsh_wall_seconds,
        static_cast<unsigned long long>(entry.candidate_pairs),
        static_cast<unsigned long long>(entry.full_pairs),
        entry.pair_reduction, entry.clusters_exact, entry.clusters_lsh,
        entry.label_agreement, entry.missed_pair_estimate);
    lsh_entries.push_back(entry);
  }

  // Loss × retry-policy ablation: recovered NOERROR fraction vs the
  // zero-loss population, and the virtual scan-duration price of each
  // retry policy (DESIGN.md §9). Skipped on --quick.
  std::vector<dnswild::bench::LossAblationEntry> loss_entries;
  if (!quick) {
    const std::uint32_t ablation_resolvers = std::min(resolver_count, 4000u);
    // One zero-loss baseline per retry ladder (see measure_loss): the
    // ladder itself recovers intrinsic resolver drops, so each lossy cell
    // divides by the same-ladder zero-loss population, never the no-retry
    // one. The baselines land in the JSON too, pinning the denominators.
    std::map<int, std::uint64_t> zero_loss_responders;
    for (const int attempts : {0, 1, 3}) {
      const auto baseline = measure_loss(0.0, attempts, ablation_resolvers, 0);
      zero_loss_responders[attempts] = baseline.responders;
      loss_entries.push_back(baseline);
      std::printf(
          "loss=%.2f attempts=%d responders=%llu recovered=%.3f "
          "retx=%llu wait=%llums virtual=%.1fs\n",
          baseline.loss_rate, baseline.retry_attempts,
          static_cast<unsigned long long>(baseline.responders),
          baseline.recovered_fraction,
          static_cast<unsigned long long>(baseline.retransmissions),
          static_cast<unsigned long long>(baseline.retry_wait_ms),
          baseline.virtual_scan_seconds);
    }
    for (const double loss : {0.1, 0.2, 0.3}) {
      for (const int attempts : {0, 1, 3}) {
        const auto entry = measure_loss(loss, attempts, ablation_resolvers,
                                        zero_loss_responders[attempts]);
        std::printf(
            "loss=%.2f attempts=%d responders=%llu recovered=%.3f "
            "retx=%llu wait=%llums virtual=%.1fs\n",
            entry.loss_rate, entry.retry_attempts,
            static_cast<unsigned long long>(entry.responders),
            entry.recovered_fraction,
            static_cast<unsigned long long>(entry.retransmissions),
            static_cast<unsigned long long>(entry.retry_wait_ms),
            entry.virtual_scan_seconds);
        loss_entries.push_back(entry);
      }
    }
  }

  // In-flight-window sweep (DESIGN.md §11): virtual makespan of the lossy
  // scan as the window opens from fully synchronous (1) to effectively
  // unbounded (64k). Runs on --quick too — CI asserts the window payoff.
  const std::uint32_t inflight_resolvers =
      quick ? 2000u : std::min(resolver_count, 4000u);
  std::vector<dnswild::bench::InflightSweepEntry> inflight_entries;
  for (const std::uint32_t window : {1u, 64u, 4096u, 65536u}) {
    const auto entry = measure_inflight(window, inflight_resolvers);
    std::printf(
        "inflight window=%u probes=%llu sends=%llu virtual=%.1fs "
        "wall=%.3fs rate=%.0f probes/virt-s peak=%u\n",
        entry.max_in_flight, static_cast<unsigned long long>(entry.probes),
        static_cast<unsigned long long>(entry.wire_sends),
        entry.virtual_seconds, entry.wall_seconds,
        entry.probes_per_virtual_sec, entry.peak_in_flight);
    inflight_entries.push_back(entry);
  }

  // Scan-order discovery-rate curves: LFSR vs Sobol over the same
  // universe and responder population.
  const auto order_entries =
      measure_scan_order(quick ? 2000u : std::min(resolver_count, 4000u));
  for (const auto& entry : order_entries) {
    if (entry.fraction == 0.25 || entry.fraction == 0.5 ||
        entry.fraction == 1.0) {
      std::printf("scan_order %s fraction=%.2f discovered=%.4f\n",
                  entry.order.c_str(), entry.fraction,
                  entry.discovered_fraction);
    }
  }

  // World-scale memory rows (DESIGN.md §12): bytes/host and peak RSS for
  // eager vs lazy worldgen. --quick keeps both modes at a CI-sized world
  // so the lazy-vs-eager ratio is still asserted; the full run adds the
  // 1M and 10M calibration points the tentpole is judged on.
  std::vector<dnswild::bench::WorldScaleEntry> world_scale_entries;
  {
    std::vector<std::pair<bool, std::uint32_t>> cells;
    if (quick) {
      cells = {{false, 120000u}, {true, 120000u}};
    } else {
      cells = {{false, 1000000u}, {true, 1000000u}, {true, 10000000u}};
    }
    for (const auto& [lazy, resolvers] : cells) {
      const auto entry = measure_world_scale(lazy, resolvers);
      std::printf(
          "world_scale mode=%s resolvers=%llu hosts=%llu build=%.2fs "
          "bytes/host=%.1f peak_rss=%.1fMB scan=%.2fs (%.0f probes/s) "
          "noerror=%llu\n",
          entry.mode.c_str(),
          static_cast<unsigned long long>(entry.resolvers),
          static_cast<unsigned long long>(entry.hosts), entry.build_seconds,
          entry.bytes_per_host,
          static_cast<double>(entry.peak_rss_bytes) / (1024.0 * 1024.0),
          entry.scan_wall_seconds, entry.probes_per_sec,
          static_cast<unsigned long long>(entry.noerror));
      world_scale_entries.push_back(entry);
    }
  }

  // Telemetry-overhead pair (DESIGN.md §13). Runs on --quick too — CI
  // gates the observability plane's cost at <= 5% scan throughput.
  std::vector<dnswild::bench::TelemetryOverheadEntry> telemetry_entries;
  {
    const std::uint32_t telemetry_resolvers =
        quick ? 20000u : std::min(resolver_count, 20000u);
    telemetry_entries = measure_telemetry_overhead(telemetry_resolvers);
    for (const auto& entry : telemetry_entries) {
      std::printf("telemetry mode=%s probes=%llu wall=%.3fs rate=%.0f/s\n",
                  entry.mode.c_str(),
                  static_cast<unsigned long long>(entry.probes),
                  entry.wall_seconds, entry.probes_per_sec);
    }
  }

  // Delta-scan economy rows (DESIGN.md §14). Runs on --quick too — CI
  // gates delta-epoch probes at <= 10% of the full sweep's.
  std::vector<dnswild::bench::DeltaScanEntry> delta_entries =
      measure_delta_scan(quick ? 2000u : std::min(resolver_count, 4000u));
  for (const auto& entry : delta_entries) {
    std::printf(
        "delta_scan epoch=%u kind=%s probes=%llu virtual=%.1fs "
        "flagged=%llu population=%llu\n",
        entry.epoch, entry.kind.c_str(),
        static_cast<unsigned long long>(entry.probes), entry.virtual_seconds,
        static_cast<unsigned long long>(entry.flagged_prefixes),
        static_cast<unsigned long long>(entry.population));
  }

  dnswild::bench::write_micro_bench_json(
      json_path, "bench_micro", hardware, entries, cluster_entries,
      condensed_bytes, square_bytes, loss_entries, lsh_entries,
      inflight_entries, order_entries, world_scale_entries,
      telemetry_entries, delta_entries);
  if (quick) return 0;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
