// Figure 1: DNS resolvers identified in the weekly scans — ALL / NOERROR /
// REFUSED / SERVFAIL series across the 55-week study window.
//
// Paper anchors: 26.8M NOERROR at the start, 17.8M at the end (-33.6%);
// REFUSED stable; SERVFAIL fluctuating between ~0.63M and ~2.14M.
#include <unordered_set>

#include "analysis/weekly.h"
#include "common.h"

int main(int argc, char** argv) {
  using namespace dnswild;
  bench::heading("Figure 1", "weekly resolver counts by status code");
  auto world = bench::build_world(bench::scale_from(argc, argv, 20000));

  analysis::WeeklyCampaignConfig config;
  config.weeks = 55;
  config.track_churn = false;  // Fig. 2 has its own bench
  config.scan.scanner_ip = world.scanner_ip;
  config.scan.zone = world.scan_zone;
  config.scan.blacklist = &world.blacklist;
  config.scan.seed = 1;
  config.universe = world.universe;

  const auto result = analysis::run_weekly_campaign(*world.world, config);

  util::Table table({"Week", "Date", "ALL", "NOERROR", "REFUSED", "SERVFAIL",
                     "Multi-homed"},
                    {util::Align::kRight, util::Align::kLeft,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight});
  for (const auto& point : result.series) {
    table.add_row({std::to_string(point.week), point.date,
                   util::with_commas(point.all),
                   util::with_commas(point.noerror),
                   util::with_commas(point.refused),
                   util::with_commas(point.servfail),
                   util::with_commas(point.multihomed)});
  }
  std::printf("%s\n", table.render().c_str());

  const auto& first = result.series.front();
  const auto& last = result.series.back();
  std::printf("NOERROR decline: %s -> %s (%.1f%% of start; paper: 26.8M -> "
              "17.8M = 66.4%%)\n",
              util::with_commas(first.noerror).c_str(),
              util::with_commas(last.noerror).c_str(),
              100.0 * static_cast<double>(last.noerror) /
                  static_cast<double>(first.noerror));
  std::uint64_t servfail_min = first.servfail, servfail_max = first.servfail;
  for (const auto& point : result.series) {
    servfail_min = std::min(servfail_min, point.servfail);
    servfail_max = std::max(servfail_max, point.servfail);
  }
  std::printf("SERVFAIL fluctuation: %s .. %s (paper: 633,393 .. "
              "2,141,539)\n",
              util::with_commas(servfail_min).c_str(),
              util::with_commas(servfail_max).c_str());
  std::printf("Weekly multi-homed responders: %s .. (paper: 630k-750k "
              "per week)\n",
              util::with_commas(result.series.front().multihomed).c_str());

  // Scan verification (§2.2): repeat the final scan from a secondary host
  // in another /8; resolvers visible only there sit behind networks that
  // blocked the primary scanner.
  {
    scan::Ipv4ScanConfig verification = config.scan;
    verification.scanner_ip = world.verification_scanner_ip;
    verification.seed = 99;
    scan::Ipv4Scanner scanner(*world.world, verification);
    const auto summary = scanner.scan(world.universe);
    std::unordered_set<net::Ipv4> weekly(result.last_scan_noerror.begin(),
                                         result.last_scan_noerror.end());
    std::uint64_t hidden = 0;
    for (const net::Ipv4 ip : summary.noerror_targets) {
      if (weekly.find(ip) == weekly.end()) ++hidden;
    }
    std::printf("Verification scan from a second /8: %s NOERROR resolvers "
                "missed by the weekly scan = %.2f%% (paper: 145,304 "
                "< 1%% of all identified resolvers)\n",
                util::with_commas(hidden).c_str(),
                100.0 * static_cast<double>(hidden) /
                    static_cast<double>(summary.noerror));
  }
  return 0;
}
