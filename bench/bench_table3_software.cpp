// Table 3: CHAOS version.bind / version.server fingerprinting.
//
// Paper: of 19.9M responding resolvers, 42.7% error on both probes, 4.6%
// NOERROR without a version, 18.8% hidden strings, 33.9% revealing.
// Among revealing: BIND 9.8.2 19.8%, BIND 9.3.6 8.9%, BIND 9.7.3 5.7%,
// BIND 9.9.5 5.2%, Unbound 1.4.22 4.8%, Dnsmasq 2.40 4.6%, BIND 9.8.4
// 3.9%, PowerDNS 3.5.3 3.2%, Dnsmasq 2.52 2.9%, MS DNS 6.1.7601 2.5%;
// BIND totals 60.2%.
#include "analysis/software_classify.h"
#include "common.h"
#include "scan/chaos_scan.h"

int main(int argc, char** argv) {
  using namespace dnswild;
  bench::heading("Table 3", "DNS software fingerprinting (CHAOS)");
  auto world = bench::build_world(bench::scale_from(argc, argv, 30000));

  // The paper's CHAOS scan ran on Dec 17, 2014 (week 46).
  world.world->set_time_minutes(320 * 1440);
  const auto population = bench::initial_scan(world, 1);
  std::printf("Population at scan time: %s resolvers (paper: 19.9M "
              "responded)\n\n",
              util::with_commas(population.noerror).c_str());

  scan::ChaosScanner scanner(*world.world, world.scanner_ip, 17);
  const auto results = scanner.scan(population.noerror_targets);
  const auto report = analysis::summarize_software(results, 10);

  const double responded = static_cast<double>(report.responded);
  std::printf("Responded to CHAOS probes: %s\n",
              util::with_commas(report.responded).c_str());
  std::printf("  error on both probes:   %5.1f%%  (paper: 42.7%%)\n",
              100.0 * report.error_both / responded);
  std::printf("  NOERROR, no version:    %5.1f%%  (paper:  4.6%%)\n",
              100.0 * report.no_version / responded);
  std::printf("  hidden version strings: %5.1f%%  (paper: 18.8%%)\n",
              100.0 * report.hidden / responded);
  std::printf("  revealing version info: %5.1f%%  (paper: 33.9%%)\n\n",
              100.0 * report.revealing / responded);

  struct PaperRow {
    const char* software;
    double pct;
  };
  static constexpr PaperRow kPaper[] = {
      {"BIND 9.8.2", 19.8},       {"BIND 9.3.6", 8.9},
      {"BIND 9.7.3", 5.7},        {"BIND 9.9.5", 5.2},
      {"Unbound 1.4.22", 4.8},    {"Dnsmasq 2.40", 4.6},
      {"BIND 9.8.4", 3.9},        {"PowerDNS 3.5.3", 3.2},
      {"Dnsmasq 2.52", 2.9},      {"Microsoft DNS 6.1.7601", 2.5},
  };

  util::Table table({"Software", "Resolvers", "%", "Paper %", "Released",
                     "Deprecated", "CVE"},
                    {util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kLeft, util::Align::kLeft,
                     util::Align::kLeft});
  for (const auto& row : report.top) {
    std::string paper = "-";
    for (const auto& anchor : kPaper) {
      if (row.software == anchor.software) paper = util::pct1(anchor.pct);
    }
    table.add_row({row.software, util::with_commas(row.count),
                   util::frac_pct1(row.share_of_revealing), paper,
                   row.released, row.deprecated, row.cves});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("BIND share of revealing resolvers: %.1f%% (paper: 60.2%%)\n",
              100.0 * report.bind_share_of_revealing);
  std::printf("DoS-vulnerable share:              %.1f%%\n",
              100.0 * report.vulnerable_dos_share);
  std::printf("IP-bypass-vulnerable share:        %.1f%% (paper: 23.7%% "
              "across two BIND versions)\n",
              100.0 * report.vulnerable_bypass_share);
  return 0;
}
