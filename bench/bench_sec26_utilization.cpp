// §2.6: resolver utilization via DNS cache snooping.
//
// Paper: NS records of 15 TLDs probed hourly for 36 hours. 83.2% of
// resolvers responded to at least one snoop; 7.3% answered without NS
// records; 3.3% sent one response per TLD then fell silent; 4.0% static or
// zero TTLs; 61.6% in use (>= 3 TLDs re-added after expiry), of which
// 38.7% of all resolvers re-added entries within 5 seconds; 4.0% showed
// decreasing TTLs without an observable expiry; 19.6% reset TTLs ahead of
// expiration (load-balanced groups).
#include "analysis/popularity.h"
#include "analysis/utilization.h"
#include "common.h"
#include "core/domains.h"
#include "scan/snoop_probe.h"

int main(int argc, char** argv) {
  using namespace dnswild;
  bench::heading("Section 2.6", "utilization via cache snooping");
  auto world = bench::build_world(bench::scale_from(argc, argv, 20000));

  // Nov 30, 2014 (§2.6) is day 303 of the study.
  world.world->set_time_minutes(303 * 1440);
  auto population = bench::initial_scan(world, 1);
  // The identifying scan takes hours; fast-churning resolvers move before
  // the snooping starts (the paper's 16.8% unreachable remainder).
  world.world->advance_days(0.15);
  // Snooping all resolvers hourly is the paper's setup; at bench scale we
  // cover the full population.
  std::printf("Snooping %s resolvers, %zu TLDs, hourly for 36 h\n\n",
              util::with_commas(population.noerror_targets.size()).c_str(),
              core::snoop_tlds().size());

  scan::SnoopCampaignConfig config;
  config.scanner_ip = world.scanner_ip;
  config.seed = 9;
  scan::SnoopProber prober(*world.world, config);
  const auto series =
      prober.run(population.noerror_targets, core::snoop_tlds());

  const auto report = analysis::summarize_utilization(
      series, static_cast<std::uint32_t>(population.noerror_targets.size()),
      analysis::UtilizationConfig{});

  const double total = static_cast<double>(report.total);
  struct PaperRow {
    analysis::UtilizationClass cls;
    const char* paper;
  };
  static const PaperRow kRows[] = {
      {analysis::UtilizationClass::kUnreachable, "16.8 (implied)"},
      {analysis::UtilizationClass::kEmptyResponses, "7.3"},
      {analysis::UtilizationClass::kSingleResponse, "3.3"},
      {analysis::UtilizationClass::kStaticTtl, "4.0 (incl. TTL 0)"},
      {analysis::UtilizationClass::kZeroTtl, "(in static/zero 4.0)"},
      {analysis::UtilizationClass::kFrequentlyUsed, "38.7"},
      {analysis::UtilizationClass::kActivelyUsed, "22.9 (in-use remainder)"},
      {analysis::UtilizationClass::kTtlReset, "19.6"},
      {analysis::UtilizationClass::kDecreasingOnly, "4.0"},
      {analysis::UtilizationClass::kInconclusive, "-"},
  };
  util::Table table({"Class", "Resolvers", "%", "Paper %"},
                    {util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});
  for (const auto& row : kRows) {
    const auto count = report.per_class[static_cast<int>(row.cls)];
    table.add_row({std::string(analysis::utilization_class_name(row.cls)),
                   util::with_commas(count),
                   util::pct1(100.0 * static_cast<double>(count) / total),
                   row.paper});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Responded to >= 1 snoop: %.1f%% (paper: 83.2%%)\n",
              100.0 * static_cast<double>(report.responded_any) / total);
  std::printf("In use (>= 3 TLDs refreshed): %.1f%% (paper: 61.6%%)\n\n",
              100.0 * static_cast<double>(report.in_use()) / total);

  // §2.6's suggested follow-up (Rajab et al.): approximate resolver
  // popularity from the expiry -> re-add gaps.
  const auto popularity = analysis::summarize_popularity(
      series, static_cast<std::uint32_t>(population.noerror_targets.size()),
      21600);
  std::printf("Popularity estimation from refresh gaps:\n");
  for (int bucket = 0; bucket < 4; ++bucket) {
    std::printf("  %-14s %s (%.1f%%)\n",
                std::string(analysis::popularity_bucket_name(
                                static_cast<analysis::PopularityBucket>(
                                    bucket)))
                    .c_str(),
                util::with_commas(popularity.per_bucket[bucket]).c_str(),
                100.0 * static_cast<double>(popularity.per_bucket[bucket]) /
                    total);
  }
  std::printf("  median of observable resolvers: %.1f requests/hour\n",
              popularity.median_requests_per_hour);
  return 0;
}
