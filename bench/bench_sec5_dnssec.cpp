// §5 "DNS Authenticity": can DNSSEC defeat the Great Firewall's race?
//
// Paper's argument: a resolver (or stub) takes the first response matching
// the open transaction, so an on-path injector wins even against signed
// zones — UNLESS the client both validates and refuses to accept anything
// unvalidated for domains it KNOWS are signed. With global deployment at
// < 0.6% of .net domains (May 2015), that knowledge barely exists. This
// bench sweeps deployment levels and measures the poisoning rate for a
// naive first-response client vs a validating client, for the GFW-censored
// social domains queried at Chinese resolvers.
#include <algorithm>

#include "common.h"
#include "core/dnssec_study.h"

int main(int argc, char** argv) {
  using namespace dnswild;
  bench::heading("Section 5", "DNSSEC vs on-path injection");
  auto world = bench::build_world(bench::scale_from(argc, argv, 20000));
  const auto population = bench::initial_scan(world, 1);

  // Chinese resolvers: the population behind the injector.
  std::vector<net::Ipv4> chinese;
  for (const net::Ipv4 ip : population.noerror_targets) {
    if (world.world->asdb().country_of(ip) == "CN") chinese.push_back(ip);
  }
  const std::vector<std::string> censored = {"facebook.com", "twitter.com",
                                             "youtube.com"};
  std::printf("Querying %zu censored domains at %zu Chinese resolvers\n\n",
              censored.size(), chinese.size());

  util::Table table({"DNSSEC deployment", "Queries", "Injected",
                     "Naive poisoned %", "Validating poisoned %",
                     "Validating unavailable %"},
                    {util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});

  for (const double deployment : {0.006, 0.10, 0.50, 1.0}) {
    // Re-mark the censored zones: a fraction `deployment` is signed.
    util::Rng rng(static_cast<std::uint64_t>(deployment * 1000) + 7);
    for (const auto& domain : censored) {
      world.registry->set_dnssec(domain, rng.chance(deployment));
    }
    core::DnssecStudyConfig config;
    config.client_ip = world.vantage_ip;
    config.seed = 11;
    const auto outcome = core::run_dnssec_experiment(
        *world.world, *world.registry, chinese, censored, config);
    const double queries = static_cast<double>(outcome.queries);
    char label[32];
    std::snprintf(label, sizeof label, "%.1f%%", 100.0 * deployment);
    table.add_row({label, util::with_commas(outcome.queries),
                   util::with_commas(outcome.injected),
                   util::pct1(100.0 * outcome.naive_poison_rate()),
                   util::pct1(100.0 * outcome.validating_poison_rate()),
                   util::pct1(queries == 0
                                  ? 0.0
                                  : 100.0 *
                                        static_cast<double>(
                                            outcome.validating_unavailable) /
                                        queries)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: the naive client is poisoned at every deployment level (the\n"
      "forgery wins the race); the validating client is only protected for\n"
      "the signed+known fraction, and pays for it in availability when the\n"
      "legitimate answer is suppressed — the paper's §5 argument.\n");
  return 0;
}
