// Shared scaffolding for the per-table/per-figure bench binaries.
//
// Every bench builds a calibrated world (scale overridable via argv[1] or
// DNSWILD_SCALE), runs the campaign that produced the paper's table or
// figure, and prints the measured rows next to the paper's values so the
// shape can be compared directly (EXPERIMENTS.md records the comparison).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "scan/ipv4scan.h"
#include "util/table.h"
#include "worldgen/worldgen.h"

namespace dnswild::bench {

// Machine-readable bench output. `--json <path>` (consumed from argv so
// downstream flag parsers never see it) or DNSWILD_BENCH_JSON selects the
// file; an empty return means the caller's default applies.
inline std::string bench_json_path(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      path = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  if (path.empty()) {
    if (const char* env = std::getenv("DNSWILD_BENCH_JSON")) path = env;
  }
  return path;
}

// Presence flag consumed from argv (same contract as bench_json_path):
// returns whether `name` appeared and strips it so downstream flag parsers
// never see it. Used for `--quick` (CI smoke runs).
inline bool bench_flag(int& argc, char** argv, const char* name) {
  bool found = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == name) {
      found = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return found;
}

// `--metrics-out <path>` / DNSWILD_METRICS_OUT selects where the bench
// drops the observability run report (pipeline stage spans + registry
// counters); empty means don't write one. Same consumed-from-argv contract
// as bench_json_path.
inline std::string metrics_out_path(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--metrics-out" && i + 1 < argc) {
      path = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  if (path.empty()) {
    if (const char* env = std::getenv("DNSWILD_METRICS_OUT")) path = env;
  }
  return path;
}

// Writes a StudyReport's metrics snapshot when a path was selected.
inline void maybe_dump_metrics(const std::string& path,
                               const core::StudyReport& report) {
  if (path.empty()) return;
  if (report.metrics.dump_json(path)) {
    std::printf("# metrics: run report written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
  }
}

// One scan-throughput measurement at a fixed worker count.
struct ScanBenchEntry {
  unsigned threads = 0;
  std::uint64_t probes = 0;
  double wall_seconds = 0.0;
  double probes_per_sec = 0.0;
  // Traffic-plane view of the same scan, read back from the world's
  // registry snapshot (what the wire actually carried).
  std::uint64_t udp_sent = 0;
  std::uint64_t udp_delivered = 0;
  std::uint64_t udp_dropped_filtered = 0;
  std::uint64_t udp_lost = 0;
  std::uint64_t executor_shards = 0;
};

// One clustering-throughput measurement at a fixed worker count: the
// per-exemplar feature extraction and the pairwise distance-matrix fill
// (the two parallel stages of classify_responses).
struct ClusterBenchEntry {
  unsigned threads = 0;
  std::size_t unique_pages = 0;
  std::uint64_t pair_distances = 0;  // condensed matrix cells filled
  double features_per_sec = 0.0;     // unique pages featurized per second
  double distances_per_sec = 0.0;    // pairwise page distances per second
  double hac_wall_seconds = 0.0;     // full hac_average_linkage call
};

// One cell of the loss-ablation sweep (DESIGN.md §9): an address-space
// scan against a world whose resolver networks drop `loss_rate` of traffic
// in each direction, probed under the given retry policy.
struct LossAblationEntry {
  double loss_rate = 0.0;
  int retry_attempts = 0;
  std::uint64_t responders = 0;        // NOERROR resolvers found
  double recovered_fraction = 0.0;     // vs the zero-loss population
  std::uint64_t retransmissions = 0;
  std::uint64_t retry_wait_ms = 0;     // virtual backoff/timeout time
  // Event-core makespan (DESIGN.md §11): waits overlap inside the
  // in-flight window instead of serializing.
  double virtual_scan_seconds = 0.0;
  // Synchronous baseline: TokenBucket pacing + every retry wait charged
  // end-to-end (the pre-event-core accounting).
  double serial_virtual_seconds = 0.0;
  double virtual_speedup = 0.0;        // serial / event-core makespan
};

// One cell of the in-flight-window sweep (DESIGN.md §11): the same lossy
// address-space scan replayed through the event core at a fixed window,
// reporting the virtual makespan and probe throughput per VIRTUAL second
// (wall time barely moves — the window only changes the schedule).
struct InflightSweepEntry {
  std::uint32_t max_in_flight = 0;
  std::uint64_t probes = 0;
  std::uint64_t wire_sends = 0;        // probes + retransmissions
  double virtual_seconds = 0.0;        // event-core makespan
  double wall_seconds = 0.0;
  double probes_per_virtual_sec = 0.0;
  std::uint32_t peak_in_flight = 0;
};

// One checkpoint of the scan-order discovery-rate ablation: walking the
// address universe in LFSR vs Sobol order, how many of the (order-
// independent) responders have been covered after `fraction` of the
// permutation. A flatter-early curve means the order reaches diverse
// prefixes sooner.
struct ScanOrderAblationEntry {
  std::string order;            // "lfsr" | "sobol"
  double fraction = 0.0;        // of the universe walked
  std::uint64_t probed = 0;     // addresses emitted so far
  std::uint64_t discovered = 0; // responders covered so far
  double discovered_fraction = 0.0;
};

// One cell of the exact-vs-LSH clustering crossover (DESIGN.md §10): both
// engines clustering the same n-page corpus, with wall time, exact
// distances paid, and label agreement side by side. The exact leg is
// skipped (wall = -1) once its O(n^2) matrix stops being measurable in
// reasonable time.
struct LshCrossoverEntry {
  std::size_t pages = 0;
  std::uint64_t full_pairs = 0;       // n(n-1)/2 the exact engine pays
  double exact_wall_seconds = -1.0;   // -1 when the exact leg was skipped
  double lsh_wall_seconds = 0.0;
  std::uint64_t candidate_pairs = 0;  // exact distances the LSH engine paid
  double pair_reduction = 0.0;        // full_pairs / candidate_pairs
  std::size_t clusters_exact = 0;     // 0 when the exact leg was skipped
  std::size_t clusters_lsh = 0;
  // Fraction of pages whose content label matches the exact engine's;
  // -1 when the exact leg was skipped.
  double label_agreement = -1.0;
  double missed_pair_estimate = -1.0;
};

// One world-scale row (DESIGN.md §12): a calibrated world built at
// `resolvers` in the given worldgen mode, its resident-set cost per host,
// and the Internet-wide scan's throughput over it. `bytes_per_host` is the
// RSS growth across world construction divided by the host population —
// the memory number the lazy tentpole is judged on.
struct WorldScaleEntry {
  std::string mode;                       // "eager" | "lazy"
  std::uint64_t resolvers = 0;
  std::uint64_t hosts = 0;                // world host count after build
  double build_seconds = 0.0;
  std::uint64_t rss_before_bytes = 0;
  std::uint64_t rss_after_build_bytes = 0;
  std::uint64_t peak_rss_bytes = 0;       // process VmHWM after the scan
  double bytes_per_host = 0.0;
  std::uint64_t probes = 0;
  double scan_wall_seconds = 0.0;
  double probes_per_sec = 0.0;
  std::uint64_t noerror = 0;
};

// One telemetry-overhead measurement (DESIGN.md §13): the same scan with
// the per-prefix aggregator + flight recorder switched off vs on, so the
// cost of the observability plane is visible. CI gates the "on" row at
// >= 95% of the "off" throughput.
struct TelemetryOverheadEntry {
  std::string mode;  // "off" | "on"
  std::uint64_t probes = 0;
  double wall_seconds = 0.0;
  double probes_per_sec = 0.0;
};

// One campaign epoch from the delta-scan economy measurement (DESIGN.md
// §14): a full sweep followed by delta epochs on a frozen-clock (unchanged)
// world. CI gates every delta row at <= 10% of the full row's probes.
struct DeltaScanEntry {
  std::string kind;  // "full" | "delta"
  std::uint32_t epoch = 0;
  std::uint64_t probes = 0;
  double virtual_seconds = 0.0;
  std::uint64_t flagged_prefixes = 0;
  std::uint64_t population = 0;
};

inline double best_speedup(double base, double best) {
  return base > 0.0 ? best / base : 0.0;
}

// Writes the scan + clustering thread sweeps as one self-describing JSON
// document (the machine-readable face of the bench_micro run).
inline bool write_micro_bench_json(
    const std::string& path, const std::string& bench_name,
    unsigned hardware_threads, const std::vector<ScanBenchEntry>& scan,
    const std::vector<ClusterBenchEntry>& cluster,
    std::size_t matrix_bytes_condensed, std::size_t matrix_bytes_square,
    const std::vector<LossAblationEntry>& loss_ablation = {},
    const std::vector<LshCrossoverEntry>& lsh_crossover = {},
    const std::vector<InflightSweepEntry>& inflight_sweep = {},
    const std::vector<ScanOrderAblationEntry>& scan_order_ablation = {},
    const std::vector<WorldScaleEntry>& world_scale = {},
    const std::vector<TelemetryOverheadEntry>& telemetry_overhead = {},
    const std::vector<DeltaScanEntry>& delta_scan = {}) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(file, "{\n  \"bench\": \"%s\",\n", bench_name.c_str());
  std::fprintf(file, "  \"hardware_threads\": %u,\n", hardware_threads);
  std::fprintf(file, "  \"scan_sweep\": [\n");
  double scan_base = 0.0;
  double scan_best = 0.0;
  for (std::size_t i = 0; i < scan.size(); ++i) {
    const ScanBenchEntry& entry = scan[i];
    if (entry.threads == 1) scan_base = entry.probes_per_sec;
    if (entry.probes_per_sec > scan_best) scan_best = entry.probes_per_sec;
    std::fprintf(file,
                 "    {\"threads\": %u, \"probes\": %llu, "
                 "\"wall_seconds\": %.6f, \"probes_per_sec\": %.1f, "
                 "\"udp_sent\": %llu, \"udp_delivered\": %llu, "
                 "\"udp_dropped_filtered\": %llu, \"udp_lost\": %llu, "
                 "\"executor_shards\": %llu}%s\n",
                 entry.threads,
                 static_cast<unsigned long long>(entry.probes),
                 entry.wall_seconds, entry.probes_per_sec,
                 static_cast<unsigned long long>(entry.udp_sent),
                 static_cast<unsigned long long>(entry.udp_delivered),
                 static_cast<unsigned long long>(entry.udp_dropped_filtered),
                 static_cast<unsigned long long>(entry.udp_lost),
                 static_cast<unsigned long long>(entry.executor_shards),
                 i + 1 < scan.size() ? "," : "");
  }
  std::fprintf(file, "  ],\n");
  std::fprintf(file, "  \"scan_best_speedup_vs_1_thread\": %.2f,\n",
               best_speedup(scan_base, scan_best));
  std::fprintf(file, "  \"cluster_sweep\": [\n");
  double pair_base = 0.0;
  double pair_best = 0.0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const ClusterBenchEntry& entry = cluster[i];
    if (entry.threads == 1) pair_base = entry.distances_per_sec;
    if (entry.distances_per_sec > pair_best) {
      pair_best = entry.distances_per_sec;
    }
    std::fprintf(
        file,
        "    {\"threads\": %u, \"unique_pages\": %zu, "
        "\"pair_distances\": %llu, \"features_per_sec\": %.1f, "
        "\"distances_per_sec\": %.1f, \"hac_wall_seconds\": %.6f}%s\n",
        entry.threads, entry.unique_pages,
        static_cast<unsigned long long>(entry.pair_distances),
        entry.features_per_sec, entry.distances_per_sec,
        entry.hac_wall_seconds, i + 1 < cluster.size() ? "," : "");
  }
  std::fprintf(file, "  ],\n");
  std::fprintf(file, "  \"cluster_best_speedup_vs_1_thread\": %.2f,\n",
               best_speedup(pair_base, pair_best));
  std::fprintf(file, "  \"loss_ablation\": [\n");
  for (std::size_t i = 0; i < loss_ablation.size(); ++i) {
    const LossAblationEntry& entry = loss_ablation[i];
    std::fprintf(file,
                 "    {\"loss_rate\": %.2f, \"retry_attempts\": %d, "
                 "\"responders\": %llu, \"recovered_fraction\": %.4f, "
                 "\"retransmissions\": %llu, \"retry_wait_ms\": %llu, "
                 "\"virtual_scan_seconds\": %.3f, "
                 "\"serial_virtual_seconds\": %.3f, "
                 "\"virtual_speedup\": %.2f}%s\n",
                 entry.loss_rate, entry.retry_attempts,
                 static_cast<unsigned long long>(entry.responders),
                 entry.recovered_fraction,
                 static_cast<unsigned long long>(entry.retransmissions),
                 static_cast<unsigned long long>(entry.retry_wait_ms),
                 entry.virtual_scan_seconds, entry.serial_virtual_seconds,
                 entry.virtual_speedup,
                 i + 1 < loss_ablation.size() ? "," : "");
  }
  std::fprintf(file, "  ],\n");
  std::fprintf(file, "  \"lsh_crossover\": [\n");
  for (std::size_t i = 0; i < lsh_crossover.size(); ++i) {
    const LshCrossoverEntry& entry = lsh_crossover[i];
    std::fprintf(file,
                 "    {\"pages\": %zu, \"full_pairs\": %llu, "
                 "\"exact_wall_seconds\": %.6f, "
                 "\"lsh_wall_seconds\": %.6f, "
                 "\"candidate_pairs\": %llu, \"pair_reduction\": %.1f, "
                 "\"clusters_exact\": %zu, \"clusters_lsh\": %zu, "
                 "\"label_agreement\": %.4f, "
                 "\"missed_pair_estimate\": %.4f}%s\n",
                 entry.pages,
                 static_cast<unsigned long long>(entry.full_pairs),
                 entry.exact_wall_seconds, entry.lsh_wall_seconds,
                 static_cast<unsigned long long>(entry.candidate_pairs),
                 entry.pair_reduction, entry.clusters_exact,
                 entry.clusters_lsh, entry.label_agreement,
                 entry.missed_pair_estimate,
                 i + 1 < lsh_crossover.size() ? "," : "");
  }
  std::fprintf(file, "  ],\n");
  std::fprintf(file, "  \"inflight_sweep\": [\n");
  for (std::size_t i = 0; i < inflight_sweep.size(); ++i) {
    const InflightSweepEntry& entry = inflight_sweep[i];
    std::fprintf(file,
                 "    {\"max_in_flight\": %u, \"probes\": %llu, "
                 "\"wire_sends\": %llu, \"virtual_seconds\": %.3f, "
                 "\"wall_seconds\": %.6f, "
                 "\"probes_per_virtual_sec\": %.1f, "
                 "\"peak_in_flight\": %u}%s\n",
                 entry.max_in_flight,
                 static_cast<unsigned long long>(entry.probes),
                 static_cast<unsigned long long>(entry.wire_sends),
                 entry.virtual_seconds, entry.wall_seconds,
                 entry.probes_per_virtual_sec, entry.peak_in_flight,
                 i + 1 < inflight_sweep.size() ? "," : "");
  }
  std::fprintf(file, "  ],\n");
  std::fprintf(file, "  \"scan_order_ablation\": [\n");
  for (std::size_t i = 0; i < scan_order_ablation.size(); ++i) {
    const ScanOrderAblationEntry& entry = scan_order_ablation[i];
    std::fprintf(file,
                 "    {\"order\": \"%s\", \"fraction\": %.4f, "
                 "\"probed\": %llu, \"discovered\": %llu, "
                 "\"discovered_fraction\": %.4f}%s\n",
                 entry.order.c_str(), entry.fraction,
                 static_cast<unsigned long long>(entry.probed),
                 static_cast<unsigned long long>(entry.discovered),
                 entry.discovered_fraction,
                 i + 1 < scan_order_ablation.size() ? "," : "");
  }
  std::fprintf(file, "  ],\n");
  std::fprintf(file, "  \"world_scale\": [\n");
  for (std::size_t i = 0; i < world_scale.size(); ++i) {
    const WorldScaleEntry& entry = world_scale[i];
    std::fprintf(file,
                 "    {\"mode\": \"%s\", \"resolvers\": %llu, "
                 "\"hosts\": %llu, \"build_seconds\": %.3f, "
                 "\"rss_before_bytes\": %llu, "
                 "\"rss_after_build_bytes\": %llu, "
                 "\"peak_rss_bytes\": %llu, \"bytes_per_host\": %.1f, "
                 "\"probes\": %llu, \"scan_wall_seconds\": %.3f, "
                 "\"probes_per_sec\": %.1f, \"noerror\": %llu}%s\n",
                 entry.mode.c_str(),
                 static_cast<unsigned long long>(entry.resolvers),
                 static_cast<unsigned long long>(entry.hosts),
                 entry.build_seconds,
                 static_cast<unsigned long long>(entry.rss_before_bytes),
                 static_cast<unsigned long long>(entry.rss_after_build_bytes),
                 static_cast<unsigned long long>(entry.peak_rss_bytes),
                 entry.bytes_per_host,
                 static_cast<unsigned long long>(entry.probes),
                 entry.scan_wall_seconds, entry.probes_per_sec,
                 static_cast<unsigned long long>(entry.noerror),
                 i + 1 < world_scale.size() ? "," : "");
  }
  std::fprintf(file, "  ],\n");
  std::fprintf(file, "  \"telemetry_overhead\": [\n");
  for (std::size_t i = 0; i < telemetry_overhead.size(); ++i) {
    const TelemetryOverheadEntry& entry = telemetry_overhead[i];
    std::fprintf(file,
                 "    {\"mode\": \"%s\", \"probes\": %llu, "
                 "\"wall_seconds\": %.6f, \"probes_per_sec\": %.1f}%s\n",
                 entry.mode.c_str(),
                 static_cast<unsigned long long>(entry.probes),
                 entry.wall_seconds, entry.probes_per_sec,
                 i + 1 < telemetry_overhead.size() ? "," : "");
  }
  std::fprintf(file, "  ],\n");
  std::fprintf(file, "  \"delta_scan\": [\n");
  for (std::size_t i = 0; i < delta_scan.size(); ++i) {
    const DeltaScanEntry& entry = delta_scan[i];
    std::fprintf(file,
                 "    {\"kind\": \"%s\", \"epoch\": %u, \"probes\": %llu, "
                 "\"virtual_seconds\": %.3f, \"flagged_prefixes\": %llu, "
                 "\"population\": %llu}%s\n",
                 entry.kind.c_str(), entry.epoch,
                 static_cast<unsigned long long>(entry.probes),
                 entry.virtual_seconds,
                 static_cast<unsigned long long>(entry.flagged_prefixes),
                 static_cast<unsigned long long>(entry.population),
                 i + 1 < delta_scan.size() ? "," : "");
  }
  std::fprintf(file, "  ],\n");
  std::fprintf(file,
               "  \"matrix_bytes_condensed\": %zu,\n"
               "  \"matrix_bytes_square\": %zu\n}\n",
               matrix_bytes_condensed, matrix_bytes_square);
  std::fclose(file);
  return true;
}

inline std::uint32_t scale_from(int argc, char** argv,
                                std::uint32_t fallback) {
  if (argc > 1) {
    return static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10));
  }
  if (const char* env = std::getenv("DNSWILD_SCALE")) {
    return static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
  }
  return fallback;
}

inline worldgen::GeneratedWorld build_world(std::uint32_t resolvers,
                                            std::uint64_t seed = 2015) {
  worldgen::WorldGenConfig config;
  config.resolver_count = resolvers;
  config.seed = seed;
  std::printf("# world: %u resolvers (paper: 26,820,486), seed %llu\n",
              resolvers, static_cast<unsigned long long>(seed));
  return worldgen::generate_world(config);
}

inline scan::Ipv4ScanSummary initial_scan(worldgen::GeneratedWorld& world,
                                          std::uint64_t seed = 1) {
  scan::Ipv4ScanConfig config;
  config.scanner_ip = world.scanner_ip;
  config.zone = world.scan_zone;
  config.blacklist = &world.blacklist;
  config.seed = seed;
  scan::Ipv4Scanner scanner(*world.world, config);
  return scanner.scan(world.universe);
}

inline core::StudyReport run_pipeline(worldgen::GeneratedWorld& world,
                                      const std::vector<net::Ipv4>& resolvers,
                                      std::uint64_t seed = 5) {
  core::PipelineConfig config;
  config.scanner_ip = world.scanner_ip;
  config.vantage_ip = world.vantage_ip;
  config.seed = seed;
  core::Pipeline pipeline(*world.world, *world.registry, config);
  return pipeline.run(resolvers, world.domains);
}

inline void heading(const char* id, const char* title) {
  std::printf("\n==== %s: %s ====\n", id, title);
}

}  // namespace dnswild::bench
