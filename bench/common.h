// Shared scaffolding for the per-table/per-figure bench binaries.
//
// Every bench builds a calibrated world (scale overridable via argv[1] or
// DNSWILD_SCALE), runs the campaign that produced the paper's table or
// figure, and prints the measured rows next to the paper's values so the
// shape can be compared directly (EXPERIMENTS.md records the comparison).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pipeline.h"
#include "scan/ipv4scan.h"
#include "util/table.h"
#include "worldgen/worldgen.h"

namespace dnswild::bench {

inline std::uint32_t scale_from(int argc, char** argv,
                                std::uint32_t fallback) {
  if (argc > 1) {
    return static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10));
  }
  if (const char* env = std::getenv("DNSWILD_SCALE")) {
    return static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
  }
  return fallback;
}

inline worldgen::GeneratedWorld build_world(std::uint32_t resolvers,
                                            std::uint64_t seed = 2015) {
  worldgen::WorldGenConfig config;
  config.resolver_count = resolvers;
  config.seed = seed;
  std::printf("# world: %u resolvers (paper: 26,820,486), seed %llu\n",
              resolvers, static_cast<unsigned long long>(seed));
  return worldgen::generate_world(config);
}

inline scan::Ipv4ScanSummary initial_scan(worldgen::GeneratedWorld& world,
                                          std::uint64_t seed = 1) {
  scan::Ipv4ScanConfig config;
  config.scanner_ip = world.scanner_ip;
  config.zone = world.scan_zone;
  config.blacklist = &world.blacklist;
  config.seed = seed;
  scan::Ipv4Scanner scanner(*world.world, config);
  return scanner.scan(world.universe);
}

inline core::StudyReport run_pipeline(worldgen::GeneratedWorld& world,
                                      const std::vector<net::Ipv4>& resolvers,
                                      std::uint64_t seed = 5) {
  core::PipelineConfig config;
  config.scanner_ip = world.scanner_ip;
  config.vantage_ip = world.vantage_ip;
  config.seed = seed;
  core::Pipeline pipeline(*world.world, *world.registry, config);
  return pipeline.run(resolvers, world.domains);
}

inline void heading(const char* id, const char* title) {
  std::printf("\n==== %s: %s ====\n", id, title);
}

}  // namespace dnswild::bench
