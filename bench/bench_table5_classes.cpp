// Table 5: clustering and labeling of the HTTP payload data for unexpected
// (domain ◦ ip ◦ resolver) tuples — avg% (max%) of suspicious resolvers per
// label per category.
//
// Paper highlights: Adult censorship 88.6 (91.3); Gambling censorship 75.9
// (90.4); HTTP Error ~55% for Banking/AV/MX/GroundTruth; Login ~16% with
// 91.7% of those pointing at router login pages; Parking peaks for Malware
// (26.2 avg / 92.1 max); Search 35.7 for NX; ~99% of content classified.
#include "common.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace dnswild;
  const std::string metrics_path = bench::metrics_out_path(argc, argv);
  bench::heading("Table 5", "classification of unexpected responses");
  auto world = bench::build_world(bench::scale_from(argc, argv, 40000));
  const auto population = bench::initial_scan(world, 1);
  const auto report = bench::run_pipeline(world, population.noerror_targets);
  bench::maybe_dump_metrics(metrics_path, report);

  std::printf("Unknown tuples: %s; HTTP payload for %.1f%% (paper: 88.9%%)\n",
              util::with_commas(report.prefilter_stats.unknown).c_str(),
              100.0 * report.http_payload_fraction);
  std::printf("Unique pages: %zu -> %zu clusters; %.2f%% of content "
              "labeled (paper: 97.6-99.9%%)\n\n",
              report.classification.unique_pages,
              report.classification.clusters,
              100.0 * report.classification.labeled_fraction);

  std::printf("Measured avg%% (max%%) per label x category:\n%s\n",
              core::render_table5(report).c_str());

  // Ablation (DESIGN.md §5): sensitivity of the coarse clustering to the
  // HAC cut threshold — cluster count and how much content stays labeled.
  {
    util::Table ablation({"Coarse cut", "Clusters", "Labeled %"},
                         {util::Align::kRight, util::Align::kRight,
                          util::Align::kRight});
    for (const double cut : {0.10, 0.18, 0.25, 0.35, 0.50}) {
      core::ClassifierConfig classifier;
      classifier.coarse_cut = cut;
      const auto rerun =
          core::classify_responses(report.records, report.pages, classifier);
      char label[16];
      std::snprintf(label, sizeof label, "%.2f", cut);
      ablation.add_row({label, std::to_string(rerun.clusters),
                        util::frac_pct1(rerun.labeled_fraction)});
    }
    std::printf("HAC cut-threshold ablation:\n%s\n",
                ablation.render().c_str());
  }

  std::printf(
      "Paper Table 5 for comparison (avg%% / max%% per label):\n"
      "Label        Ads          Adult        Alexa        Antivirus    "
      "Banking      Dating       Fileshar.    Gambling     GroundTr.    "
      "Malware      Misc         MX           NX           Tracking\n"
      "Blocking     0.3 (0.5)    2.2 (3.3)    0.7 (2.5)    0.3 (0.4)    "
      "0.4 (1.0)    6.2 (10.9)   3.1 (6.5)    3.7 (6.4)    0.2 (0.2)    "
      "9.0 (21.4)   0.9 (4.8)    0.9 (1.9)    1.9 (16.2)   0.6 (2.2)\n"
      "Censorship   10.8 (96.2)  88.6 (91.3)  19.1 (97.1)  0.1 (0.1)    "
      "0.1 (0.1)    31.8 (87.3)  36.5 (91.3)  75.9 (90.4)  0.1 (0.1)    "
      "0.8 (8.1)    8.4 (92.5)   0.1 (0.2)    3.2 (37.1)   0.1 (0.1)\n"
      "HTTP Error   48.1 (70.4)  5.2 (6.9)    45.8 (63.9)  57.0 (75.0)  "
      "55.4 (63.5)  34.8 (50.1)  32.6 (52.0)  15.8 (49.8)  55.0 (56.0)  "
      "29.8 (53.7)  50.8 (71.1)  57.0 (65.9)  24.7 (55.8)  57.0 (69.4)\n"
      "Login        12.2 (16.8)  1.2 (1.6)    12.8 (19.1)  15.5 (17.4)  "
      "16.8 (19.6)  10.2 (15.4)  9.5 (15.1)   1.9 (3.9)    16.1 (17.2)  "
      "9.5 (17.2)   14.3 (18.5)  17.0 (19.8)  2.8 (9.4)    12.5 (16.2)\n"
      "Misc.        11.5 (56.4)  0.9 (1.6)    5.3 (21.6)   5.9 (16.2)   "
      "5.0 (10.5)   3.2 (4.8)    4.9 (12.5)   0.7 (1.4)    5.1 (5.8)    "
      "3.3 (5.6)    5.1 (9.7)    5.0 (5.8)    8.5 (19.7)   11.2 (5.5)\n"
      "Parking      17.1 (23.9)  1.8 (2.4)    16.1 (24.0)  21.2 (25.0)  "
      "22.2 (24.3)  13.8 (21.5)  13.4 (22.4)  2.0 (2.4)    23.4 (23.9)  "
      "26.2 (92.1)  20.5 (83.6)  20.0 (23.4)  23.2 (42.4)  18.6 (24.0)\n"
      "Search       0.0 (0.1)    0.1 (0.1)    0.2 (2.7)    0.0 (0.1)    "
      "0.1 (0.1)    0.0 (0.1)    0.0 (0.0)    0.0 (0.0)    0.1 (0.6)    "
      "21.4 (69.3)  0.0 (0.5)    0.0 (0.1)    35.7 (65.1)  0.0 (0.0)\n");
  return 0;
}
