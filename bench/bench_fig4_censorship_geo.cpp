// Figure 4: resolver distribution per country for the domains of Facebook,
// Twitter, and YouTube — (a) all responses vs (b) unexpected responses.
//
// Paper: (a) is widely distributed (CN 13.2%, US 7.2%, MX 6.6%, VN 5.3%,
// ...); (b) collapses onto CN 83.6% and IR 12.9%, others 3.5%. 99.7% of
// Chinese resolvers returned bogus answers for the three domains; 2.4%
// (125,660) showed the dual-response signature of the Great Firewall.
#include "common.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace dnswild;
  bench::heading("Figure 4",
                 "country mix for Facebook/Twitter/YouTube responses");
  auto world = bench::build_world(bench::scale_from(argc, argv, 40000));
  const auto population = bench::initial_scan(world, 1);
  const auto report = bench::run_pipeline(world, population.noerror_targets);

  std::printf("%s\n", core::render_social_geo(report).c_str());
  std::printf("Paper: (b) CN 83.6%%, IR 12.9%%, others 3.5%%\n\n");

  // Chinese compliance (§4.2: 99.7% of CN resolvers return bogus answers
  // for the three domains).
  for (const auto& row : report.censorship.compliance) {
    if (row.country == "CN") {
      std::printf("CN coverage: %.1f%% of responding Chinese resolvers "
                  "censored (paper: 99.7%%)\n",
                  100.0 * row.fraction());
    }
  }
  std::printf("Dual-response tuples observed: %s (paper: 125,660 resolvers "
              "= 2.4%% of the Chinese population)\n",
              util::with_commas(report.censorship.dual_response_tuples)
                  .c_str());
  return 0;
}
