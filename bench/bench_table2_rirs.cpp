// Table 2: resolver fluctuation per Regional Internet Registry.
//
// Paper: RIPE 11.19M -> 7.48M (-33.2%), APNIC 10.43M -> 7.88M (-24.5%),
// LACNIC 5.14M -> 3.34M (-35.1%), ARIN 3.14M -> 2.76M (-12.1%),
// AFRINIC 1.31M -> 1.19M (-8.6%).
#include "analysis/fluctuation.h"
#include "common.h"

int main(int argc, char** argv) {
  using namespace dnswild;
  bench::heading("Table 2", "resolver fluctuation per RIR");
  auto world = bench::build_world(bench::scale_from(argc, argv, 30000));

  const auto first = bench::initial_scan(world, 1);
  world.world->set_time_minutes(372 * 1440);
  const auto last = bench::initial_scan(world, 2);

  const auto rows = analysis::fluctuation_by_rir(
      world.world->asdb(), first.noerror_targets, last.noerror_targets);

  struct PaperRow {
    const char* rir;
    double pct;
  };
  static constexpr PaperRow kPaper[] = {
      {"RIPE", -33.2}, {"APNIC", -24.5}, {"LACNIC", -35.1},
      {"ARIN", -12.1}, {"AFRINIC", -8.6},
  };

  util::Table table({"RIR", "Jan 31, 2014", "Feb 06, 2015", "Fluct. #",
                     "Fluct. %", "Paper %"},
                    {util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});
  for (const auto& row : rows) {
    std::string paper = "-";
    for (const auto& anchor : kPaper) {
      if (row.key == anchor.rir) paper = util::pct1(anchor.pct);
    }
    table.add_row({row.key, util::with_commas(row.first),
                   util::with_commas(row.last),
                   util::with_commas_signed(row.delta()),
                   util::pct1(row.delta_pct()), paper});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
