// Table 4: device fingerprinting of the TCP-responsive resolvers.
//
// Paper: 26.3% of resolvers (5.46M) exposed at least one scannable TCP
// service. Hardware: Router 34.1%, Embedded 30.6%, Firewall 1.9%, Camera
// 1.8%, DVR 1.2%, Others 1.1%, Unknown 29.3%. OS: Linux 23.2%, ZyNOS
// 16.6% (prose; see EXPERIMENTS.md on the table's OS-column ambiguity),
// Windows, SmartWare, RouterOS, CentOS, Unix, Others, Unknown.
#include "analysis/fingerprint.h"
#include "common.h"
#include "scan/banner_scan.h"

int main(int argc, char** argv) {
  using namespace dnswild;
  bench::heading("Table 4", "device fingerprinting via TCP banners");
  auto world = bench::build_world(bench::scale_from(argc, argv, 30000));

  const auto population = bench::initial_scan(world, 1);
  scan::BannerScanner scanner(*world.world, world.scanner_ip);
  const auto banners = scanner.scan(population.noerror_targets);

  const analysis::DeviceFingerprinter fingerprinter;
  std::printf("Fingerprint rules loaded: %zu (paper: 2,245 regular "
              "expressions)\n",
              fingerprinter.rule_count());
  const auto report = fingerprinter.summarize(banners);

  const auto total = report.tcp_responsive + report.no_tcp_payload;
  std::printf("TCP-responsive resolvers: %s of %s (%.1f%%; paper: 26.3%%)\n\n",
              util::with_commas(report.tcp_responsive).c_str(),
              util::with_commas(total).c_str(),
              100.0 * static_cast<double>(report.tcp_responsive) /
                  static_cast<double>(total));

  struct PaperRow {
    const char* key;
    double pct;
  };
  static constexpr PaperRow kPaperHardware[] = {
      {"Router", 34.1},  {"Embedded", 30.6}, {"Firewall", 1.9},
      {"Camera", 1.8},   {"DVR", 1.2},       {"Others", 1.1},
      {"Unknown", 29.3},
  };
  static constexpr PaperRow kPaperOs[] = {
      {"Linux", 23.2},    {"ZyNOS", 16.6},   {"Unix", 21.3},
      {"Windows", 5.0},   {"SmartWare", 3.6}, {"RouterOS", 2.6},
      {"CentOS", 1.7},    {"Others", 2.1},   {"Unknown", 23.9},
  };

  const auto print_section = [](const char* title,
                                const std::vector<
                                    analysis::DeviceFingerprinter::Row>& rows,
                                const PaperRow* paper, std::size_t paper_n) {
    util::Table table({title, "Resolvers", "%", "Paper %"},
                      {util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight});
    for (const auto& row : rows) {
      std::string anchor = "-";
      for (std::size_t i = 0; i < paper_n; ++i) {
        if (row.key == paper[i].key) anchor = util::pct1(paper[i].pct);
      }
      table.add_row({row.key, util::with_commas(row.count),
                     util::frac_pct1(row.share), anchor});
    }
    std::printf("%s\n", table.render().c_str());
  };

  print_section("Hardware", report.hardware, kPaperHardware,
                std::size(kPaperHardware));
  print_section("Operating System", report.os, kPaperOs, std::size(kPaperOs));
  return 0;
}
