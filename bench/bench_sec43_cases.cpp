// §4.3 Miscellaneous case studies.
//
// Paper: 281 resolvers / 4 IPs redirect or replace ad traffic; 14 resolvers
// / 7 IPs blank ads; 7 resolvers serve a Google-like search page with
// injected banners; transparent proxies: 99 resolvers -> 10 TLS-passthrough
// IPs, 10,179 resolvers -> 10 HTTP-only IPs; phishing: 39 hosts / 1,360
// resolvers total, PayPal kit on 16 IPs from 176 resolvers (46 <img> tags +
// POST to a .php), two Italian-bank mimics (BR and RU hosts, 285 + 46
// resolvers); 64.7% of MX-suspicious resolvers point at 1,135 listening
// mail IPs; 228 resolvers redirect to 30 malware-update IPs.
#include "common.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace dnswild;
  bench::heading("Section 4.3", "case studies");
  auto world = bench::build_world(bench::scale_from(argc, argv, 40000));
  const auto population = bench::initial_scan(world, 1);
  const auto report = bench::run_pipeline(world, population.noerror_targets);

  std::printf("%s\n", core::render_case_studies(report).c_str());
  std::printf("Fine-grained modification clusters (coarse-similar pages "
              "diffed against ground truth, then clustered by tag delta; "
              "the paper's JS-injection hunt):\n%s\n",
              core::render_modifications(report).c_str());
  const auto& cases = report.cases;
  std::printf("MX redirect-to-listening share: %.1f%% (paper: 64.7%%)\n",
              cases.mx_suspicious_resolvers == 0
                  ? 0.0
                  : 100.0 *
                        static_cast<double>(cases.mail_listening_resolvers) /
                        static_cast<double>(cases.mx_suspicious_resolvers));
  std::printf("\nNote: these populations are scaled/floored from the "
              "paper's absolute counts (DESIGN.md, EXPERIMENTS.md); the "
              "comparison is presence + relative order of magnitude.\n");
  return 0;
}
