// §4.2 Censorship: landing-page inventory and per-country compliance.
//
// Paper: 299 landing-page IPs related to 34 countries; >3M resolvers
// supporting censorship beyond CN/IR; ID 91.6% for one adult domain but
// 28.7% for another set; TR 52.9% of the youporn redirects; MN 78.9%;
// GR 83.9% and BE 78.6% for two gambling domains; IT 69.3%; 10.0% of
// Turkish resolvers did not censor; 56.9% of Estonian resolvers answer
// gambling domains with addresses of RUSSIAN censorship systems.
#include "common.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace dnswild;
  bench::heading("Section 4.2", "censorship landing pages and compliance");
  auto world = bench::build_world(bench::scale_from(argc, argv, 40000));
  const auto population = bench::initial_scan(world, 1);
  const auto report = bench::run_pipeline(world, population.noerror_targets);

  std::printf("%s\n", core::render_censorship(report).c_str());
  std::printf("Paper anchors: 299 landing IPs / 34 countries; compliance "
              "CN 99.7%%, MN 78.9%%, GR 83.9%%, BE 78.6%%, IT 69.3%%, "
              "TR ~90%% of blocked sets, ID 28.7-91.6%% per domain.\n");

  // Estonian resolvers pointing at Russian landing infrastructure (§6).
  std::uint64_t ee_to_ru = 0;
  for (const auto& tuple : report.classification.tuples) {
    if (tuple.label != core::Label::kCensorship) continue;
    const auto& record = report.records[tuple.record_index];
    if (record.ips.empty() || record.dual_response) continue;
    const auto resolver_country = report.asdb->country_of(
        report.resolvers[record.resolver_id]);
    const auto landing_country =
        report.asdb->country_of(record.ips.front());
    if (resolver_country == "EE" && landing_country == "RU") ++ee_to_ru;
  }
  std::printf("\nEstonian tuples answered with Russian landing addresses: "
              "%s (paper: 56.9%% of EE resolvers for gambling domains)\n",
              util::with_commas(ee_to_ru).c_str());
  return 0;
}
