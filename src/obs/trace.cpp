#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace dnswild::obs {

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_u64(std::string& out, std::uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%llu",
                static_cast<unsigned long long>(v));
  out += buffer;
}

}  // namespace

TraceRecorder::TraceRecorder(Registry& registry,
                             std::size_t capacity_per_shard)
    : capacity_(capacity_per_shard == 0 ? 1 : capacity_per_shard),
      dropped_(&registry.counter("trace.dropped")) {}

std::uint32_t TraceRecorder::intern(std::string_view name) {
  const std::lock_guard<std::mutex> lock(names_mutex_);
  const auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(std::string(name), id);
  return id;
}

void TraceRecorder::record(std::size_t shard_index, const TraceEvent& event) {
  Shard& shard = shards_[shard_index];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  record_locked(shard, event);
}

void TraceRecorder::record_locked(Shard& shard, const TraceEvent& event) {
  if (shard.ring.size() < capacity_) {
    if (shard.ring.empty()) shard.ring.reserve(capacity_);
    shard.ring.push_back(event);
    return;
  }
  shard.full = true;
  shard.ring[shard.head] = event;
  if (++shard.head == capacity_) shard.head = 0;
  dropped_->add();
}

TraceRecorder::ProbeSession::ProbeSession(TraceRecorder& recorder)
    : recorder_(recorder),
      seq_base_(recorder.seq_.load(std::memory_order_relaxed)) {
  for (Shard& shard : recorder_.shards_) shard.mutex.lock();
}

TraceRecorder::ProbeSession::~ProbeSession() {
  recorder_.seq_.store(seq_base_ + recorded_, std::memory_order_relaxed);
  if (dropped_ > 0) recorder_.dropped_->add(dropped_);
  for (Shard& shard : recorder_.shards_) shard.mutex.unlock();
}

void TraceRecorder::ProbeSession::probe(TraceKind kind, std::uint32_t name_id,
                                        std::uint64_t ts_us,
                                        std::uint32_t stream,
                                        std::uint16_t step,
                                        std::uint16_t attempt) {
  TraceEvent event;
  event.ts_us = ts_us;
  event.seq = seq_base_ + recorded_;
  ++recorded_;
  event.name_id = name_id;
  event.stream = stream;
  event.step = step;
  event.attempt = attempt;
  event.kind = kind;
  Shard& shard = recorder_.shards_[stream % kShards];
  if (shard.ring.size() < recorder_.capacity_) {
    if (shard.ring.empty()) shard.ring.reserve(recorder_.capacity_);
    shard.ring.push_back(event);
    return;
  }
  shard.full = true;
  shard.ring[shard.head] = event;
  if (++shard.head == recorder_.capacity_) shard.head = 0;
  ++dropped_;
}

void TraceRecorder::probe(TraceKind kind, std::uint32_t name_id,
                          std::uint64_t ts_us, std::uint32_t stream,
                          std::uint16_t step, std::uint16_t attempt) {
  if (!enabled()) return;
  TraceEvent event;
  event.ts_us = ts_us;
  event.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  event.name_id = name_id;
  event.stream = stream;
  event.step = step;
  event.attempt = attempt;
  event.kind = kind;
  record(stream % kShards, event);
}

void TraceRecorder::stage_event(TraceKind kind, std::string_view name) {
  if (!enabled()) return;
  TraceEvent event;
  event.ts_us = now_us();
  event.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  event.name_id = intern(name);
  event.kind = kind;
  record(0, event);
}

void TraceRecorder::stage_begin(std::string_view name) {
  stage_event(TraceKind::kStageBegin, name);
}

void TraceRecorder::stage_end(std::string_view name) {
  stage_event(TraceKind::kStageEnd, name);
}

void TraceRecorder::instant(std::string_view name) {
  stage_event(TraceKind::kDegradation, name);
}

std::uint64_t TraceRecorder::dropped() const noexcept {
  return dropped_ == nullptr ? 0 : dropped_->value();
}

std::string TraceRecorder::to_chrome_json(const Snapshot* metrics) const {
  // Collect every shard in chronological ring order (oldest surviving
  // entry first), then restore the global record order by (ts, seq).
  std::vector<std::pair<TraceEvent, std::size_t>> events;
  for (std::size_t s = 0; s < kShards; ++s) {
    const Shard& shard = shards_[s];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const std::size_t size = shard.ring.size();
    const std::size_t start = shard.full ? shard.head : 0;
    for (std::size_t i = 0; i < size; ++i) {
      events.emplace_back(shard.ring[(start + i) % size], s);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first.ts_us != b.first.ts_us) {
                return a.first.ts_us < b.first.ts_us;
              }
              return a.first.seq < b.first.seq;
            });

  std::vector<std::string> names;
  {
    const std::lock_guard<std::mutex> lock(names_mutex_);
    names = names_;
  }
  const auto name_of = [&names](std::uint32_t id) -> std::string_view {
    return id < names.size() ? std::string_view(names[id])
                             : std::string_view("?");
  };

  std::string out;
  out.reserve(4096 + events.size() * 96);
  out += "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  out += "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
         "\"process_name\", \"args\": {\"name\": \"dnswild\"}},\n";
  out += "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
         "\"thread_name\", \"args\": {\"name\": \"stages\"}}";
  for (std::size_t s = 0; s < kShards; ++s) {
    out += ",\n{\"ph\": \"M\", \"pid\": 1, \"tid\": ";
    append_u64(out, s + 1);
    out += ", \"name\": \"thread_name\", \"args\": {\"name\": \"probes.";
    append_u64(out, s);
    out += "\"}}";
  }

  for (const auto& [event, shard] : events) {
    out += ",\n{\"ph\": ";
    switch (event.kind) {
      case TraceKind::kStageBegin:
        out += "\"B\", \"pid\": 1, \"tid\": 0, \"ts\": ";
        append_u64(out, event.ts_us);
        out += ", \"name\": ";
        append_escaped(out, name_of(event.name_id));
        break;
      case TraceKind::kStageEnd:
        out += "\"E\", \"pid\": 1, \"tid\": 0, \"ts\": ";
        append_u64(out, event.ts_us);
        out += ", \"name\": ";
        append_escaped(out, name_of(event.name_id));
        break;
      case TraceKind::kDegradation:
        out += "\"i\", \"pid\": 1, \"tid\": 0, \"ts\": ";
        append_u64(out, event.ts_us);
        out += ", \"name\": ";
        append_escaped(out, name_of(event.name_id));
        out += ", \"s\": \"p\"";
        break;
      default:
        out += "\"i\", \"pid\": 1, \"tid\": ";
        append_u64(out, shard + 1);
        out += ", \"ts\": ";
        append_u64(out, event.ts_us);
        out += ", \"name\": ";
        append_escaped(out, name_of(event.name_id));
        out += ", \"s\": \"t\", \"args\": {\"stream\": ";
        append_u64(out, event.stream);
        out += ", \"step\": ";
        append_u64(out, event.step);
        out += ", \"attempt\": ";
        append_u64(out, event.attempt);
        out += "}";
        break;
    }
    out += "}";
  }

  if (metrics != nullptr) {
    for (const SeriesValue& series : metrics->series) {
      for (std::size_t i = 0; i < series.buckets.size(); ++i) {
        out += ",\n{\"ph\": \"C\", \"pid\": 1, \"tid\": 0, \"ts\": ";
        append_u64(out, i * series.bucket_width_us);
        out += ", \"name\": ";
        append_escaped(out, series.name);
        out += ", \"args\": {\"value\": ";
        append_u64(out, series.buckets[i]);
        out += "}}";
      }
    }
  }

  out += "\n]\n}\n";
  return out;
}

bool TraceRecorder::dump_chrome_json(const std::string& path,
                                     const Snapshot* metrics) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = to_chrome_json(metrics);
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), file) == json.size();
  std::fclose(file);
  return ok;
}

}  // namespace dnswild::obs
