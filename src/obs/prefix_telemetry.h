// Per-prefix telemetry plane (DESIGN.md §13).
//
// The paper's §2 landscape findings — weekly counts, churn, fluctuation —
// are per-prefix stories, so the campaign needs to know not just *how
// much* loss, rate-limiting, and churn it saw but *where*. PrefixTelemetry
// aggregates every probe outcome, fault-plane hit, and rebind event into
// per-/20 rows (key = address >> 12), sharded under short mutexes so all
// four scanners and the World traffic plane can feed it concurrently.
//
// Every field is additive, so the aggregate is independent of thread
// interleaving; snapshot() merges shards in prefix order, which makes the
// exported `dnswild.prefixes.v1` table byte-identical across thread
// counts with no masking. `changed_prefixes` diffs two tables and is the
// delta-rescan hook for the longitudinal campaign engine (ROADMAP).
//
// This header is net-free on purpose: obs sits below net in the library
// stack, so prefixes are raw host-order uint32 addresses here.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace dnswild::obs {

// Coarse rcode classes — enough for the paper's Table 2 style mix without
// coupling obs to the DNS message types in net.
enum class RcodeClass : std::uint8_t {
  kNoError = 0,
  kRefused = 1,
  kServFail = 2,
  kNxDomain = 3,
  kOther = 4,
};

struct PrefixStats {
  std::uint64_t probes = 0;     // probe transactions aimed at the prefix
  std::uint64_t responses = 0;  // transactions that got any reply
  std::uint64_t timeouts = 0;   // transactions that exhausted retries
  std::uint64_t retries = 0;    // extra transmissions beyond the first
  std::uint64_t noerror = 0;
  std::uint64_t refused = 0;
  std::uint64_t servfail = 0;
  std::uint64_t nxdomain = 0;
  std::uint64_t other_rcode = 0;
  std::uint64_t fault_hits = 0;    // fault-plane verdicts (loss, episodes…)
  std::uint64_t rate_limited = 0;  // token-bucket drops/REFUSED
  std::uint64_t rebinds = 0;       // dynamic hosts re-binding into prefix

  double response_rate() const noexcept {
    return probes == 0 ? 0.0
                       : static_cast<double>(responses) /
                             static_cast<double>(probes);
  }
};

struct PrefixRow {
  std::uint32_t key = 0;  // /20 key: address >> 12
  PrefixStats stats;
};

// Renders a /20 key as dotted-quad CIDR text ("203.0.16.0/20").
std::string prefix_cidr(std::uint32_t key);

// Plain-data table snapshot, rows sorted by key. The machine-readable
// per-prefix run report.
struct PrefixTable {
  std::vector<PrefixRow> rows;

  const PrefixStats* find(std::uint32_t key) const noexcept;

  // Deterministic JSON document (schema "dnswild.prefixes.v1").
  std::string to_json() const;
  bool dump_json(const std::string& path) const;
};

// What counts as "changed" between two campaign rounds. A prefix is
// flagged when any criterion fires; prefixes absent from a table are
// treated as all-zero rows, so newly probed space shows up too.
struct ChangeThresholds {
  // Response-rate movement only counts when at least one side probed the
  // prefix this many times (tiny samples churn their rate by nature).
  std::uint64_t min_probes = 16;
  double response_rate_delta = 0.2;
  std::uint64_t fault_hit_delta = 1;  // fault_hits + rate_limited movement
  std::uint64_t rebind_delta = 1;
};

// Keys (sorted) whose telemetry moved past the thresholds between `prev`
// and `cur` — the prefixes a delta rescan should revisit.
std::vector<std::uint32_t> changed_prefixes(
    const PrefixTable& prev, const PrefixTable& cur,
    const ChangeThresholds& thresholds = {});

// Field-wise `cur − base` with all-zero rows dropped. Because every stat
// is additive and the telemetry plane is cumulative, subtracting the
// snapshot taken at an epoch boundary from the one taken at the next
// boundary yields exactly that epoch's fresh observations — the rows the
// campaign engine persists per epoch and compares across epochs. `base`
// must be an earlier snapshot of the same telemetry (every field ≤ cur's);
// rows absent from `base` are treated as zero.
PrefixTable subtract_tables(const PrefixTable& cur, const PrefixTable& base);

class PrefixTelemetry {
 public:
  PrefixTelemetry() = default;
  PrefixTelemetry(const PrefixTelemetry&) = delete;
  PrefixTelemetry& operator=(const PrefixTelemetry&) = delete;

  static constexpr std::uint32_t key_of(std::uint32_t address) noexcept {
    return address >> 12;
  }

  // Accumulation can be switched off wholesale (the bench overhead
  // baseline); recording calls become a single relaxed load.
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // One finished probe transaction against `address`: every transmission
  // ladder ends in either a classified reply or a timeout. `retries` is
  // transmissions beyond the first.
  void record_probe(std::uint32_t address, bool responded, RcodeClass rcode,
                    std::uint32_t retries);
  void record_fault_hit(std::uint32_t address);
  void record_rate_limited(std::uint32_t address);
  void record_rebind(std::uint32_t address);

  // Adds `delta` field-wise into the row for `key` under its shard mutex —
  // the merge target for PrefixBatch accumulators.
  void merge(std::uint32_t key, const PrefixStats& delta);

  PrefixTable snapshot() const;

 private:
  static constexpr std::size_t kShards = 64;
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint32_t, PrefixStats> stats;
  };

  Shard& shard_for(std::uint32_t key) noexcept {
    return shards_[key % kShards];  // adjacent /20s spread across shards
  }

  std::atomic<bool> enabled_{true};
  std::array<Shard, kShards> shards_;
};

// Worker-local accumulator for the probe hot path: a scanner block records
// into a small open-addressed table (no locks, no hashing allocations) and
// merges into the shared telemetry once per block. All fields are additive,
// so batching never changes the aggregate — only how often the shard
// mutexes are touched. Flushes itself when full and on destruction.
class PrefixBatch {
 public:
  explicit PrefixBatch(PrefixTelemetry& sink) : sink_(sink) {}
  ~PrefixBatch() { flush(); }
  PrefixBatch(const PrefixBatch&) = delete;
  PrefixBatch& operator=(const PrefixBatch&) = delete;

  void record_probe(std::uint32_t address, bool responded, RcodeClass rcode,
                    std::uint32_t retries) {
    if (!sink_.enabled()) return;
    PrefixStats& stats = slot(PrefixTelemetry::key_of(address));
    ++stats.probes;
    stats.retries += retries;
    if (!responded) {
      ++stats.timeouts;
      return;
    }
    ++stats.responses;
    switch (rcode) {
      case RcodeClass::kNoError: ++stats.noerror; break;
      case RcodeClass::kRefused: ++stats.refused; break;
      case RcodeClass::kServFail: ++stats.servfail; break;
      case RcodeClass::kNxDomain: ++stats.nxdomain; break;
      case RcodeClass::kOther: ++stats.other_rcode; break;
    }
  }

  void flush();

 private:
  // Plenty for the distinct /20s one block touches; collisions past ~3/4
  // occupancy trigger an early flush instead of growing.
  static constexpr std::size_t kSlots = 128;
  struct Slot {
    std::uint32_t key = 0;
    bool used = false;
    PrefixStats stats;
  };

  PrefixStats& slot(std::uint32_t key);

  PrefixTelemetry& sink_;
  std::size_t used_ = 0;
  std::array<Slot, kSlots> slots_;
};

}  // namespace dnswild::obs
