// Virtual-time bucket series (DESIGN.md §13).
//
// A Series is a fixed grid of buckets over the campaign's virtual clock:
// bucket i covers [i * width, (i + 1) * width) microseconds of virtual
// time. The event core records sends/retries/timeouts/replies and the
// in-flight occupancy into shared series while it drains its event heap,
// which turns the per-probe event stream into probes-per-window curves
// without retaining the events themselves.
//
// Updates are single relaxed atomics (fetch_add for kSum, a CAS raise for
// kMax), so series are safe from any number of threads and as cheap as
// the counters in metrics.h. Because bucket indices derive from virtual
// time — a pure function of the run — series contents are thread-count
// invariant and are serialized unmasked in dnswild.metrics.v2 reports.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dnswild::obs {

class Registry;

// How bucket updates combine: kSum accumulates event counts per window
// (probes/sec style), kMax keeps the per-window high-water mark (in-flight
// occupancy style).
enum class SeriesMode { kSum, kMax };

class Series {
 public:
  // Records `v` into the bucket containing virtual time `t_us`. Times at
  // or past the grid's end clamp into the last bucket, so a series never
  // loses events — late activity just piles up in the final window.
  void record(std::uint64_t t_us, std::uint64_t v) noexcept;

  std::uint64_t bucket_width_us() const noexcept { return bucket_width_us_; }
  std::size_t max_buckets() const noexcept { return max_buckets_; }
  SeriesMode mode() const noexcept { return mode_; }
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Series(std::uint64_t bucket_width_us, std::size_t max_buckets,
         SeriesMode mode);

  std::uint64_t bucket_width_us_;
  std::size_t max_buckets_;
  SeriesMode mode_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
};

// Plain-data copy of a Series inside a Snapshot. Trailing all-zero buckets
// are trimmed at snapshot time so the serialized length reflects the span
// of virtual time actually exercised, not the registration capacity.
struct SeriesValue {
  std::string name;
  std::uint64_t bucket_width_us = 0;
  SeriesMode mode = SeriesMode::kSum;
  std::vector<std::uint64_t> buckets;
  bool nondeterministic = false;
};

}  // namespace dnswild::obs
