#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace dnswild::obs {

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(std::uint64_t v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t index =
      static_cast<std::size_t>(it - bounds_.begin());  // overflow when end()
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

namespace {

// Shared quantile math for live histograms and snapshot values: find the
// bucket holding rank q*count, interpolate linearly between its edges.
// The overflow bucket has no upper edge, so ranks landing there report
// the last finite bound.
double percentile_from(const std::vector<std::uint64_t>& bounds,
                       const std::vector<std::uint64_t>& buckets,
                       std::uint64_t count, double q) {
  if (count == 0 || buckets.empty() || bounds.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < target) continue;
    if (i >= bounds.size()) return static_cast<double>(bounds.back());
    const double lower = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
    const double upper = static_cast<double>(bounds[i]);
    const double fraction =
        (target - before) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * fraction;
  }
  return static_cast<double>(bounds.back());
}

}  // namespace

double Histogram::percentile(double q) const noexcept {
  std::vector<std::uint64_t> counts;
  counts.reserve(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts.push_back(bucket(i));
  }
  return percentile_from(bounds_, counts, count(), q);
}

double Snapshot::HistogramValue::percentile(double q) const noexcept {
  return percentile_from(bounds, buckets, count, q);
}

Counter& Registry::counter(std::string_view name, Tag tag) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    auto owned = std::unique_ptr<Counter>(new Counter());
    owned->tag_ = tag;
    it = counters_.emplace(std::string(name), std::move(owned)).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name, Tag tag) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    auto owned = std::unique_ptr<Gauge>(new Gauge());
    owned->tag_ = tag;
    it = gauges_.emplace(std::string(name), std::move(owned)).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<std::uint64_t> bounds, Tag tag) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    auto owned = std::unique_ptr<Histogram>(new Histogram(std::move(bounds)));
    owned->tag_ = tag;
    it = histograms_.emplace(std::string(name), std::move(owned)).first;
  }
  return *it->second;
}

Series& Registry::series(std::string_view name,
                         std::uint64_t bucket_width_us,
                         std::size_t max_buckets, SeriesMode mode, Tag tag) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(name);
  if (it == series_.end()) {
    OwnedSeries owned;
    owned.series = std::unique_ptr<Series>(
        new Series(bucket_width_us, max_buckets, mode));
    owned.tag = tag;
    it = series_.emplace(std::string(name), std::move(owned)).first;
  }
  return *it->second.series;
}

void Registry::record_span(SpanRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(record));
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  const std::lock_guard<std::mutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back(
        {name, counter->value(), counter->tag_ == Tag::kNondeterministic});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back(
        {name, gauge->value(), gauge->tag_ == Tag::kNondeterministic});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    Snapshot::HistogramValue value;
    value.name = name;
    value.bounds = histogram->bounds_;
    value.buckets.reserve(value.bounds.size() + 1);
    for (std::size_t i = 0; i <= value.bounds.size(); ++i) {
      value.buckets.push_back(histogram->bucket(i));
    }
    value.count = histogram->count();
    value.sum = histogram->sum();
    value.nondeterministic = histogram->tag_ == Tag::kNondeterministic;
    snap.histograms.push_back(std::move(value));
  }
  snap.series.reserve(series_.size());
  for (const auto& [name, owned] : series_) {
    SeriesValue value;
    value.name = name;
    value.bucket_width_us = owned.series->bucket_width_us();
    value.mode = owned.series->mode();
    value.nondeterministic = owned.tag == Tag::kNondeterministic;
    std::size_t used = 0;  // trim trailing all-zero buckets
    for (std::size_t i = 0; i < owned.series->max_buckets(); ++i) {
      if (owned.series->bucket(i) != 0) used = i + 1;
    }
    value.buckets.reserve(used);
    for (std::size_t i = 0; i < used; ++i) {
      value.buckets.push_back(owned.series->bucket(i));
    }
    snap.series.push_back(std::move(value));
  }
  snap.spans = spans_;
  std::stable_sort(snap.spans.begin(), snap.spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.seq < b.seq;
                   });
  snap.span_index.resize(snap.spans.size());
  for (std::uint32_t i = 0; i < snap.span_index.size(); ++i) {
    snap.span_index[i] = i;
  }
  // stable over the seq-sorted spans, so the first index under each name
  // is the earliest-opened span — the same record the old linear scan
  // returned.
  std::stable_sort(snap.span_index.begin(), snap.span_index.end(),
                   [&snap](std::uint32_t a, std::uint32_t b) {
                     return snap.spans[a].name < snap.spans[b].name;
                   });
  return snap;
}

const SpanRecord* Snapshot::find_span(std::string_view name) const noexcept {
  if (span_index.size() == spans.size() && !spans.empty()) {
    const auto it = std::lower_bound(
        span_index.begin(), span_index.end(), name,
        [this](std::uint32_t i, std::string_view n) {
          return spans[i].name < n;
        });
    if (it == span_index.end() || spans[*it].name != name) return nullptr;
    return &spans[*it];
  }
  for (const SpanRecord& span : spans) {  // hand-built snapshot fallback
    if (span.name == name) return &span;
  }
  return nullptr;
}

std::uint64_t Snapshot::counter_value(std::string_view name) const noexcept {
  const auto it = std::lower_bound(
      counters.begin(), counters.end(), name,
      [](const CounterValue& c, std::string_view n) { return c.name < n; });
  if (it == counters.end() || it->name != name) return 0;
  return it->value;
}

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_u64(std::string& out, std::uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%llu",
                static_cast<unsigned long long>(v));
  out += buffer;
}

void append_i64(std::string& out, std::int64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%lld",
                static_cast<long long>(v));
  out += buffer;
}

void append_ms(std::string& out, double ms) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%.3f", ms);
  out += buffer;
}

}  // namespace

std::string Snapshot::to_json(bool mask_nondeterministic) const {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"dnswild.metrics.v2\",\n";
  out += "  \"masked\": ";
  out += mask_nondeterministic ? "true" : "false";
  out += ",\n  \"counters\": [";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    const CounterValue& counter = counters[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_escaped(out, counter.name);
    out += ", \"value\": ";
    append_u64(out, mask_nondeterministic && counter.nondeterministic
                        ? 0
                        : counter.value);
    if (counter.nondeterministic) out += ", \"nondeterministic\": true";
    out += "}";
  }
  out += counters.empty() ? "],\n" : "\n  ],\n";

  out += "  \"gauges\": [";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    const GaugeValue& gauge = gauges[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_escaped(out, gauge.name);
    out += ", \"value\": ";
    append_i64(out,
               mask_nondeterministic && gauge.nondeterministic ? 0
                                                               : gauge.value);
    if (gauge.nondeterministic) out += ", \"nondeterministic\": true";
    out += "}";
  }
  out += gauges.empty() ? "],\n" : "\n  ],\n";

  out += "  \"histograms\": [";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& histogram = histograms[i];
    const bool mask = mask_nondeterministic && histogram.nondeterministic;
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_escaped(out, histogram.name);
    if (histogram.nondeterministic) out += ", \"nondeterministic\": true";
    out += ", \"count\": ";
    append_u64(out, mask ? 0 : histogram.count);
    out += ", \"sum\": ";
    append_u64(out, mask ? 0 : histogram.sum);
    out += ", \"buckets\": [";
    for (std::size_t b = 0; b < histogram.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += "{\"le\": ";
      if (b < histogram.bounds.size()) {
        append_u64(out, histogram.bounds[b]);
      } else {
        out += "\"inf\"";
      }
      out += ", \"count\": ";
      append_u64(out, mask ? 0 : histogram.buckets[b]);
      out += "}";
    }
    out += "]}";
  }
  out += histograms.empty() ? "],\n" : "\n  ],\n";

  out += "  \"series\": [";
  for (std::size_t i = 0; i < series.size(); ++i) {
    const SeriesValue& value = series[i];
    const bool mask = mask_nondeterministic && value.nondeterministic;
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_escaped(out, value.name);
    if (value.nondeterministic) out += ", \"nondeterministic\": true";
    out += ", \"bucket_width_us\": ";
    append_u64(out, value.bucket_width_us);
    out += ", \"mode\": ";
    out += value.mode == SeriesMode::kSum ? "\"sum\"" : "\"max\"";
    out += ", \"buckets\": [";
    if (!mask) {
      for (std::size_t b = 0; b < value.buckets.size(); ++b) {
        if (b > 0) out += ", ";
        append_u64(out, value.buckets[b]);
      }
    }
    out += "]}";
  }
  out += series.empty() ? "],\n" : "\n  ],\n";

  out += "  \"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"seq\": ";
    append_u64(out, span.seq);
    out += ", \"parent\": ";
    append_u64(out, span.parent);
    out += ", \"depth\": ";
    append_u64(out, span.depth);
    out += ", \"name\": ";
    append_escaped(out, span.name);
    out += ", \"items_in\": ";
    if (span.items_in < 0) {
      out += "null";
    } else {
      append_i64(out, span.items_in);
    }
    out += ", \"items_out\": ";
    if (span.items_out < 0) {
      out += "null";
    } else {
      append_i64(out, span.items_out);
    }
    // Wall time is the one field that is nondeterministic by nature, for
    // every span; masking zeroes it without a per-span tag.
    out += ", \"wall_ms\": ";
    append_ms(out, mask_nondeterministic ? 0.0 : span.wall_ms);
    out += "}";
  }
  out += spans.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool Snapshot::dump_json(const std::string& path,
                         bool mask_nondeterministic) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = to_json(mask_nondeterministic);
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) ==
                  json.size();
  std::fclose(file);
  return ok;
}

Registry& global_registry() {
  static Registry registry;
  return registry;
}

}  // namespace dnswild::obs
