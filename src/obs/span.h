// Scoped stage spans (DESIGN.md §8).
//
// A Span measures one pipeline stage: construct it around the stage, feed
// it items-in/items-out, and its destructor records a SpanRecord into the
// registry with the wall time. Nesting is tracked per thread: a span
// opened while another is live on the same thread and registry becomes its
// child (depth + parent seq), which is how `pipeline.run` encloses the six
// Fig. 3 stage spans.
//
// Sequence numbers are taken at open time, so serialized span order equals
// coordinator program order and is deterministic; the wall time is the
// only nondeterministic field (masked by Snapshot::to_json(true)).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace dnswild::obs {

class Span {
 public:
  Span(Registry& registry, std::string name);
  ~Span() { close(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  Span& items_in(std::uint64_t n) noexcept {
    record_.items_in = static_cast<std::int64_t>(n);
    return *this;
  }
  Span& items_out(std::uint64_t n) noexcept {
    record_.items_out = static_cast<std::int64_t>(n);
    return *this;
  }

  std::uint64_t seq() const noexcept { return record_.seq; }

  // Finalizes the span (idempotent); implicit on destruction. Explicit
  // close lets a caller snapshot the registry with this span included.
  void close() noexcept;

 private:
  Registry* registry_;
  SpanRecord record_;
  std::chrono::steady_clock::time_point start_;
  bool open_ = true;
};

}  // namespace dnswild::obs
