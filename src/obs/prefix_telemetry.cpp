#include "obs/prefix_telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dnswild::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%llu",
                static_cast<unsigned long long>(v));
  out += buffer;
}

}  // namespace

std::string prefix_cidr(std::uint32_t key) {
  const std::uint32_t base = key << 12;
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%u.%u.%u.%u/20", (base >> 24) & 0xff,
                (base >> 16) & 0xff, (base >> 8) & 0xff, base & 0xff);
  return buffer;
}

const PrefixStats* PrefixTable::find(std::uint32_t key) const noexcept {
  const auto it = std::lower_bound(
      rows.begin(), rows.end(), key,
      [](const PrefixRow& row, std::uint32_t k) { return row.key < k; });
  if (it == rows.end() || it->key != key) return nullptr;
  return &it->stats;
}

std::string PrefixTable::to_json() const {
  std::string out;
  out.reserve(128 + rows.size() * 256);
  out += "{\n  \"schema\": \"dnswild.prefixes.v1\",\n  \"prefixes\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PrefixRow& row = rows[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"prefix\": \"";
    out += prefix_cidr(row.key);
    out += "\", \"probes\": ";
    append_u64(out, row.stats.probes);
    out += ", \"responses\": ";
    append_u64(out, row.stats.responses);
    out += ", \"timeouts\": ";
    append_u64(out, row.stats.timeouts);
    out += ", \"retries\": ";
    append_u64(out, row.stats.retries);
    out += ", \"rcodes\": {\"noerror\": ";
    append_u64(out, row.stats.noerror);
    out += ", \"refused\": ";
    append_u64(out, row.stats.refused);
    out += ", \"servfail\": ";
    append_u64(out, row.stats.servfail);
    out += ", \"nxdomain\": ";
    append_u64(out, row.stats.nxdomain);
    out += ", \"other\": ";
    append_u64(out, row.stats.other_rcode);
    out += "}, \"fault_hits\": ";
    append_u64(out, row.stats.fault_hits);
    out += ", \"rate_limited\": ";
    append_u64(out, row.stats.rate_limited);
    out += ", \"rebinds\": ";
    append_u64(out, row.stats.rebinds);
    out += "}";
  }
  out += rows.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool PrefixTable::dump_json(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = to_json();
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), file) == json.size();
  std::fclose(file);
  return ok;
}

namespace {

std::uint64_t abs_delta(std::uint64_t a, std::uint64_t b) noexcept {
  return a > b ? a - b : b - a;
}

bool changed(const PrefixStats& prev, const PrefixStats& cur,
             const ChangeThresholds& thresholds) {
  if (abs_delta(prev.fault_hits + prev.rate_limited,
                cur.fault_hits + cur.rate_limited) >=
      thresholds.fault_hit_delta) {
    return true;
  }
  if (abs_delta(prev.rebinds, cur.rebinds) >= thresholds.rebind_delta) {
    return true;
  }
  if (std::max(prev.probes, cur.probes) >= thresholds.min_probes &&
      std::fabs(cur.response_rate() - prev.response_rate()) >=
          thresholds.response_rate_delta) {
    return true;
  }
  return false;
}

}  // namespace

std::vector<std::uint32_t> changed_prefixes(
    const PrefixTable& prev, const PrefixTable& cur,
    const ChangeThresholds& thresholds) {
  std::vector<std::uint32_t> out;
  const PrefixStats zero;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < prev.rows.size() || j < cur.rows.size()) {
    std::uint32_t key = 0;
    const PrefixStats* a = &zero;
    const PrefixStats* b = &zero;
    if (j >= cur.rows.size() ||
        (i < prev.rows.size() && prev.rows[i].key < cur.rows[j].key)) {
      key = prev.rows[i].key;
      a = &prev.rows[i].stats;
      ++i;
    } else if (i >= prev.rows.size() || cur.rows[j].key < prev.rows[i].key) {
      key = cur.rows[j].key;
      b = &cur.rows[j].stats;
      ++j;
    } else {
      key = prev.rows[i].key;
      a = &prev.rows[i].stats;
      b = &cur.rows[j].stats;
      ++i;
      ++j;
    }
    if (changed(*a, *b, thresholds)) out.push_back(key);
  }
  return out;
}

PrefixTable subtract_tables(const PrefixTable& cur, const PrefixTable& base) {
  PrefixTable out;
  std::size_t j = 0;
  for (const PrefixRow& row : cur.rows) {
    while (j < base.rows.size() && base.rows[j].key < row.key) ++j;
    PrefixStats diff = row.stats;
    if (j < base.rows.size() && base.rows[j].key == row.key) {
      const PrefixStats& b = base.rows[j].stats;
      diff.probes -= b.probes;
      diff.responses -= b.responses;
      diff.timeouts -= b.timeouts;
      diff.retries -= b.retries;
      diff.noerror -= b.noerror;
      diff.refused -= b.refused;
      diff.servfail -= b.servfail;
      diff.nxdomain -= b.nxdomain;
      diff.other_rcode -= b.other_rcode;
      diff.fault_hits -= b.fault_hits;
      diff.rate_limited -= b.rate_limited;
      diff.rebinds -= b.rebinds;
    }
    const bool all_zero = diff.probes == 0 && diff.responses == 0 &&
                          diff.timeouts == 0 && diff.retries == 0 &&
                          diff.noerror == 0 && diff.refused == 0 &&
                          diff.servfail == 0 && diff.nxdomain == 0 &&
                          diff.other_rcode == 0 && diff.fault_hits == 0 &&
                          diff.rate_limited == 0 && diff.rebinds == 0;
    if (!all_zero) out.rows.push_back(PrefixRow{row.key, diff});
  }
  return out;
}

void PrefixTelemetry::record_probe(std::uint32_t address, bool responded,
                                   RcodeClass rcode, std::uint32_t retries) {
  if (!enabled()) return;
  const std::uint32_t key = key_of(address);
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  PrefixStats& stats = shard.stats[key];
  stats.probes += 1;
  stats.retries += retries;
  if (!responded) {
    stats.timeouts += 1;
    return;
  }
  stats.responses += 1;
  switch (rcode) {
    case RcodeClass::kNoError: stats.noerror += 1; break;
    case RcodeClass::kRefused: stats.refused += 1; break;
    case RcodeClass::kServFail: stats.servfail += 1; break;
    case RcodeClass::kNxDomain: stats.nxdomain += 1; break;
    case RcodeClass::kOther: stats.other_rcode += 1; break;
  }
}

void PrefixTelemetry::record_fault_hit(std::uint32_t address) {
  if (!enabled()) return;
  const std::uint32_t key = key_of(address);
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.stats[key].fault_hits += 1;
}

void PrefixTelemetry::record_rate_limited(std::uint32_t address) {
  if (!enabled()) return;
  const std::uint32_t key = key_of(address);
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.stats[key].rate_limited += 1;
}

void PrefixTelemetry::merge(std::uint32_t key, const PrefixStats& delta) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  PrefixStats& stats = shard.stats[key];
  stats.probes += delta.probes;
  stats.responses += delta.responses;
  stats.timeouts += delta.timeouts;
  stats.retries += delta.retries;
  stats.noerror += delta.noerror;
  stats.refused += delta.refused;
  stats.servfail += delta.servfail;
  stats.nxdomain += delta.nxdomain;
  stats.other_rcode += delta.other_rcode;
  stats.fault_hits += delta.fault_hits;
  stats.rate_limited += delta.rate_limited;
  stats.rebinds += delta.rebinds;
}

PrefixStats& PrefixBatch::slot(std::uint32_t key) {
  // Fibonacci-hashed linear probing. Occupancy is capped at 3/4 (a full
  // table flushes and restarts), so the probe always terminates at either
  // the key or a free slot.
  std::size_t index = (key * 2654435761u) & (kSlots - 1);
  while (true) {
    Slot& entry = slots_[index];
    if (entry.used && entry.key == key) return entry.stats;
    if (!entry.used) {
      if (used_ >= (kSlots / 4) * 3) {
        flush();
        index = (key * 2654435761u) & (kSlots - 1);
        continue;
      }
      entry.used = true;
      entry.key = key;
      ++used_;
      return entry.stats;
    }
    index = (index + 1) & (kSlots - 1);
  }
}

void PrefixBatch::flush() {
  if (used_ == 0) return;
  for (Slot& slot : slots_) {
    if (!slot.used) continue;
    sink_.merge(slot.key, slot.stats);
    slot = Slot{};
  }
  used_ = 0;
}

void PrefixTelemetry::record_rebind(std::uint32_t address) {
  if (!enabled()) return;
  const std::uint32_t key = key_of(address);
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.stats[key].rebinds += 1;
}

PrefixTable PrefixTelemetry::snapshot() const {
  PrefixTable table;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    table.rows.reserve(table.rows.size() + shard.stats.size());
    for (const auto& [key, stats] : shard.stats) {
      table.rows.push_back({key, stats});
    }
  }
  std::sort(table.rows.begin(), table.rows.end(),
            [](const PrefixRow& a, const PrefixRow& b) {
              return a.key < b.key;
            });
  return table;
}

}  // namespace dnswild::obs
