#include "obs/timeseries.h"

namespace dnswild::obs {

Series::Series(std::uint64_t bucket_width_us, std::size_t max_buckets,
               SeriesMode mode)
    : bucket_width_us_(bucket_width_us == 0 ? 1 : bucket_width_us),
      max_buckets_(max_buckets == 0 ? 1 : max_buckets),
      mode_(mode),
      buckets_(std::make_unique<std::atomic<std::uint64_t>[]>(
          max_buckets == 0 ? 1 : max_buckets)) {
  for (std::size_t i = 0; i < max_buckets_; ++i) buckets_[i].store(0);
}

void Series::record(std::uint64_t t_us, std::uint64_t v) noexcept {
  std::size_t index = static_cast<std::size_t>(t_us / bucket_width_us_);
  if (index >= max_buckets_) index = max_buckets_ - 1;
  std::atomic<std::uint64_t>& bucket = buckets_[index];
  if (mode_ == SeriesMode::kSum) {
    bucket.fetch_add(v, std::memory_order_relaxed);
    return;
  }
  std::uint64_t current = bucket.load(std::memory_order_relaxed);
  while (v > current &&
         !bucket.compare_exchange_weak(current, v,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace dnswild::obs
