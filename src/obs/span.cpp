#include "obs/span.h"

#include <algorithm>
#include <vector>

#include "obs/trace.h"

namespace dnswild::obs {

namespace {

// Open spans on this thread, oldest first. Entries pair the registry with
// the span's seq so nesting is tracked per registry even if a thread
// interleaves spans of independent registries.
struct OpenSpan {
  const Registry* registry;
  std::uint64_t seq;
};

thread_local std::vector<OpenSpan> open_spans;

}  // namespace

Span::Span(Registry& registry, std::string name)
    : registry_(&registry), start_(std::chrono::steady_clock::now()) {
  record_.name = std::move(name);
  record_.seq = registry.next_span_seq();
  for (auto it = open_spans.rbegin(); it != open_spans.rend(); ++it) {
    if (it->registry != registry_) continue;
    record_.parent = it->seq;
    break;
  }
  for (const OpenSpan& open : open_spans) {
    if (open.registry == registry_) ++record_.depth;
  }
  open_spans.push_back({registry_, record_.seq});
  if (TraceRecorder* trace = registry.trace()) {
    trace->stage_begin(record_.name);
  }
}

void Span::close() noexcept {
  if (!open_) return;
  open_ = false;
  const std::chrono::duration<double, std::milli> elapsed =
      std::chrono::steady_clock::now() - start_;
  record_.wall_ms = elapsed.count();
  const auto it = std::find_if(
      open_spans.rbegin(), open_spans.rend(), [this](const OpenSpan& open) {
        return open.registry == registry_ && open.seq == record_.seq;
      });
  if (it != open_spans.rend()) open_spans.erase(std::next(it).base());
  if (TraceRecorder* trace = registry_->trace()) {
    trace->stage_end(record_.name);
  }
  registry_->record_span(std::move(record_));
}

}  // namespace dnswild::obs
