// Virtual-time flight recorder (DESIGN.md §13).
//
// A TraceRecorder keeps a bounded ring of structured trace events — probe
// send/retry/timeout/reply, stage begin/end, degradations — stamped with
// the campaign's cumulative virtual clock. The event core advances that
// clock by each run's virtual makespan, so successive scan stages lay out
// end to end on one timeline even though each core simulation starts at
// its own zero.
//
// Events land in 8 shards (probe events by stream id, stage events on
// shard 0); each shard is a fixed-capacity ring that overwrites its oldest
// entry on overflow and counts the loss in the registry's `trace.dropped`
// counter — memory stays bounded no matter how long the campaign runs,
// and the recorder degrades into exactly what a flight recorder should
// be: the most recent window of activity.
//
// Determinism: every event is recorded on the coordinator thread in drain
// order, timestamps are virtual, and name ids are interned in first-use
// order — so the exported trace is byte-identical for any worker thread
// count, with no masking step (tests/test_telemetry.cpp pins this).
// Export is Chrome trace-event JSON ("traceEvents"), loadable directly in
// Perfetto (EXPERIMENTS.md shows the workflow).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dnswild::obs {

class Counter;
class Registry;
struct Snapshot;

enum class TraceKind : std::uint8_t {
  kStageBegin = 0,
  kStageEnd = 1,
  kProbeSend = 2,
  kProbeRetry = 3,
  kProbeTimeout = 4,
  kProbeReply = 5,
  kDegradation = 6,
};

// One recorded event, fixed-size, no heap. `name_id` indexes the
// recorder's interned name table; `seq` is the global record order, which
// keeps same-timestamp events (nested stage begin/ends in zero virtual
// time) in their recorded LIFO nesting when the export sorts by time.
struct TraceEvent {
  std::uint64_t ts_us = 0;
  std::uint64_t seq = 0;
  std::uint32_t name_id = 0;
  std::uint32_t stream = 0;
  std::uint16_t step = 0;
  std::uint16_t attempt = 0;
  TraceKind kind = TraceKind::kProbeSend;
};

class TraceRecorder {
 public:
  // `capacity_per_shard` bounds memory at 8 * capacity * sizeof(TraceEvent);
  // rings allocate lazily on first record, so a recorder that never fires
  // costs only the shard headers.
  explicit TraceRecorder(Registry& registry,
                         std::size_t capacity_per_shard = 8192);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Recording can be switched off (the bench overhead baseline); the
  // virtual clock keeps advancing either way so re-enabling mid-campaign
  // stays on the shared timeline.
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Cumulative virtual clock, microseconds. The event core calls
  // advance(makespan) after each drain; stage and degradation events are
  // stamped with now_us() at record time.
  std::uint64_t now_us() const noexcept {
    return clock_us_.load(std::memory_order_relaxed);
  }
  void advance(std::uint64_t us) noexcept {
    clock_us_.fetch_add(us, std::memory_order_relaxed);
  }

  // Interns `name`, returning a stable id for probe-event recording. Ids
  // are assigned in first-call order (deterministic on the coordinator).
  std::uint32_t intern(std::string_view name);

  // Probe-plane events, stamped by the caller with absolute virtual time
  // (clock base + in-run event time). Sharded by stream id.
  void probe(TraceKind kind, std::uint32_t name_id, std::uint64_t ts_us,
             std::uint32_t stream, std::uint16_t step, std::uint16_t attempt);

  // Bulk probe recording for the event core's drain loop: holds every
  // shard mutex for the session's lifetime so each event skips the
  // per-record lock, and batches the seq counter and drop tally into one
  // atomic touch each at session end. Recording is coordinator-only by
  // contract — no other event may be recorded while a session is open —
  // and a concurrent export simply waits for the drain to finish.
  class ProbeSession {
   public:
    explicit ProbeSession(TraceRecorder& recorder);
    ~ProbeSession();
    ProbeSession(const ProbeSession&) = delete;
    ProbeSession& operator=(const ProbeSession&) = delete;

    void probe(TraceKind kind, std::uint32_t name_id, std::uint64_t ts_us,
               std::uint32_t stream, std::uint16_t step,
               std::uint16_t attempt);

   private:
    TraceRecorder& recorder_;
    std::uint64_t seq_base_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
  };

  // Stage-plane events at the current clock; `name` is interned on the
  // spot. Stage begin/end pair into Perfetto duration slices.
  void stage_begin(std::string_view name);
  void stage_end(std::string_view name);
  void instant(std::string_view name);  // degradations and one-off marks

  std::uint64_t dropped() const noexcept;
  std::size_t capacity_per_shard() const noexcept { return capacity_; }

  // Merges all shards into one (ts, seq)-ordered Chrome trace-event JSON
  // document. When `metrics` is given, its series are emitted as Perfetto
  // counter tracks alongside the events.
  std::string to_chrome_json(const Snapshot* metrics = nullptr) const;
  bool dump_chrome_json(const std::string& path,
                        const Snapshot* metrics = nullptr) const;

  static constexpr std::size_t kShards = 8;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::vector<TraceEvent> ring;  // lazily sized to capacity_
    std::size_t head = 0;          // next write position once full
    bool full = false;
  };

  void record(std::size_t shard_index, const TraceEvent& event);
  void record_locked(Shard& shard, const TraceEvent& event);
  void stage_event(TraceKind kind, std::string_view name);

  std::size_t capacity_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> clock_us_{0};
  std::atomic<std::uint64_t> seq_{0};
  Counter* dropped_ = nullptr;

  mutable std::mutex names_mutex_;
  std::map<std::string, std::uint32_t, std::less<>> name_ids_;
  std::vector<std::string> names_;

  Shard shards_[kShards];
};

}  // namespace dnswild::obs
