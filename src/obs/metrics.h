// Pipeline observability: the process metrics registry (DESIGN.md §8).
//
// A Registry holds named counters, gauges, and fixed-bucket histograms.
// Registration (name -> handle) takes a mutex and returns a stable pointer;
// the hot-path operations — Counter::add, Gauge::set, Histogram::observe —
// are single relaxed atomics, safe from any number of threads and cheap
// enough for the traffic plane (the same cost as the former ad-hoc
// `std::atomic` counters in net::World).
//
// Every instrument carries a determinism tag. The measurement engine is
// thread-count invariant (DESIGN.md §7), so almost every metric of a run is
// too; the exceptions — wall times, shard shapes, worker counts — are
// registered as kNondeterministic. Snapshot::to_json(true) masks tagged
// values to zero, which makes the serialized run report byte-identical for
// any thread count (tests/test_obs.cpp pins this).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/timeseries.h"

namespace dnswild::obs {

class TraceRecorder;

// Whether a metric's value is a pure function of the run's seed and inputs
// (kStable) or depends on scheduling, wall clock, or worker count
// (kNondeterministic — masked when comparing reports across thread counts).
enum class Tag { kStable, kNondeterministic };

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::uint64_t> value_{0};
  Tag tag_ = Tag::kStable;
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) noexcept {
    value_.fetch_add(v, std::memory_order_relaxed);
  }
  // Raises the gauge to `v` when larger (CAS loop); peak trackers — the
  // event core's in-flight high-water mark — use this so concurrent
  // observers can only ever push the value up.
  void track_max(std::int64_t v) noexcept {
    std::int64_t current = value_.load(std::memory_order_relaxed);
    while (v > current &&
           !value_.compare_exchange_weak(current, v,
                                         std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::int64_t> value_{0};
  Tag tag_ = Tag::kStable;
};

// Fixed upper-bound buckets chosen at registration; observations above the
// last bound land in an overflow bucket. All updates are relaxed atomics.
class Histogram {
 public:
  void observe(std::uint64_t v) noexcept;

  // Quantile estimate (q in [0, 1]) by linear interpolation inside the
  // owning bucket; observations in the overflow bucket are attributed to
  // the last finite bound, so p99 of a saturated histogram reports that
  // bound rather than inventing a value. Returns 0 when empty.
  double percentile(double q) const noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  const std::vector<std::uint64_t>& bounds() const noexcept {
    return bounds_;
  }
  // Count in bucket `i` (bounds().size() + 1 buckets; last is overflow).
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Histogram(std::vector<std::uint64_t> bounds);

  std::vector<std::uint64_t> bounds_;  // ascending, upper-inclusive
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  Tag tag_ = Tag::kStable;
};

// One completed stage span (see span.h). Sequence numbers are assigned at
// open time in coordinator program order, so span order is deterministic;
// wall_ms is the only inherently nondeterministic field and is always
// masked by Snapshot::to_json(true).
struct SpanRecord {
  std::string name;
  std::uint64_t seq = 0;     // 1-based open order within the registry
  std::uint64_t parent = 0;  // seq of the enclosing span; 0 = root
  std::uint32_t depth = 0;   // nesting level (root = 0)
  std::int64_t items_in = -1;   // -1 = not recorded
  std::int64_t items_out = -1;  // -1 = not recorded
  double wall_ms = 0.0;
};

// Plain-data copy of a registry at one instant; the machine-readable run
// report. Serialization is deterministic: instruments sorted by name,
// spans by open sequence, fixed float formatting.
struct Snapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
    bool nondeterministic = false;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
    bool nondeterministic = false;
  };
  struct HistogramValue {
    std::string name;
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    bool nondeterministic = false;

    // Same interpolation contract as Histogram::percentile.
    double percentile(double q) const noexcept;
  };

  std::vector<CounterValue> counters;      // sorted by name
  std::vector<GaugeValue> gauges;          // sorted by name
  std::vector<HistogramValue> histograms;  // sorted by name
  std::vector<SeriesValue> series;         // sorted by name
  std::vector<SpanRecord> spans;           // sorted by seq
  // Positions into `spans`, sorted by span name; built by
  // Registry::snapshot() so find_span can binary-search (first-seq span
  // wins for duplicate names). Hand-built snapshots may leave it empty —
  // find_span then falls back to the linear scan.
  std::vector<std::uint32_t> span_index;

  // Lookup helpers (nullptr / 0 when absent).
  const SpanRecord* find_span(std::string_view name) const noexcept;
  std::uint64_t counter_value(std::string_view name) const noexcept;

  // Deterministic JSON document (schema "dnswild.metrics.v2"). With
  // mask_nondeterministic, every kNondeterministic value and every span
  // wall_ms is written as 0, so two reports from the same seed compare
  // byte-identical regardless of thread count.
  std::string to_json(bool mask_nondeterministic = false) const;
  bool dump_json(const std::string& path,
                 bool mask_nondeterministic = false) const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Registration is idempotent: a second call with the same name returns
  // the existing instrument (the original tag and bounds win). Handles
  // stay valid for the registry's lifetime.
  Counter& counter(std::string_view name, Tag tag = Tag::kStable);
  Gauge& gauge(std::string_view name, Tag tag = Tag::kStable);
  Histogram& histogram(std::string_view name,
                       std::vector<std::uint64_t> bounds,
                       Tag tag = Tag::kStable);
  Series& series(std::string_view name, std::uint64_t bucket_width_us,
                 std::size_t max_buckets, SeriesMode mode,
                 Tag tag = Tag::kStable);

  // Optional flight recorder: once attached, every Span open/close also
  // emits a stage begin/end trace event, which is how CPU-side stages
  // (clustering, labeling) reach the Perfetto timeline without any wiring
  // of their own. The recorder must outlive the registry's spans.
  void attach_trace(TraceRecorder* trace) noexcept {
    trace_.store(trace, std::memory_order_release);
  }
  TraceRecorder* trace() const noexcept {
    return trace_.load(std::memory_order_acquire);
  }

  Snapshot snapshot() const;
  std::string to_json(bool mask_nondeterministic = false) const {
    return snapshot().to_json(mask_nondeterministic);
  }
  bool dump_json(const std::string& path,
                 bool mask_nondeterministic = false) const {
    return snapshot().dump_json(path, mask_nondeterministic);
  }

 private:
  friend class Span;
  std::uint64_t next_span_seq() noexcept {
    return span_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  void record_span(SpanRecord record);

  struct OwnedSeries {
    std::unique_ptr<Series> series;
    Tag tag = Tag::kStable;
  };

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, OwnedSeries, std::less<>> series_;
  std::vector<SpanRecord> spans_;  // completed spans, completion order
  std::atomic<std::uint64_t> span_seq_{0};
  std::atomic<TraceRecorder*> trace_{nullptr};
};

// Process-wide default registry, for tools that have no natural owner.
// Campaign code prefers an explicitly owned registry (net::World owns one
// per world) so runs stay independent.
Registry& global_registry();

}  // namespace dnswild::obs
