// Banner-token device fingerprinting (§2.4, Table 4).
//
// The paper compiles 2,245 hand-written regular expressions from aggregated
// banner corpora; this engine implements the same mechanism with a
// representative token rule set: ordered case-insensitive token matches
// that attribute a hardware class, an OS class, and a label (e.g. the
// paper's example "dm500plus login" -> Linux DVR on PowerPC). Rules are
// data, so callers can extend the set at runtime.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "resolver/device.h"
#include "scan/banner_scan.h"

namespace dnswild::analysis {

struct FingerprintRule {
  // All tokens must occur (case-insensitive) in the combined banner text.
  std::vector<std::string> tokens;
  resolver::HardwareClass hardware = resolver::HardwareClass::kUnknown;
  resolver::OsClass os = resolver::OsClass::kUnknown;
  std::string label;
};

struct Fingerprint {
  resolver::HardwareClass hardware = resolver::HardwareClass::kUnknown;
  resolver::OsClass os = resolver::OsClass::kUnknown;
  std::string label;  // empty when nothing matched
};

class DeviceFingerprinter {
 public:
  // Loads the built-in rule set.
  DeviceFingerprinter();

  void add_rule(FingerprintRule rule);
  std::size_t rule_count() const noexcept { return rules_.size(); }

  // First matching rule wins for the hardware class; OS falls back to
  // OS-only rules when the winning rule leaves it unknown.
  Fingerprint classify(std::string_view banner_text) const;

  struct Row {
    std::string key;
    std::uint64_t count = 0;
    double share = 0.0;  // of TCP-responsive resolvers
  };
  struct Report {
    std::uint64_t tcp_responsive = 0;
    std::uint64_t no_tcp_payload = 0;
    std::vector<Row> hardware;  // per hardware class, sorted desc
    std::vector<Row> os;        // per OS class, sorted desc
  };

  Report summarize(const std::vector<scan::BannerResult>& scan) const;

 private:
  std::vector<FingerprintRule> rules_;
};

}  // namespace dnswild::analysis
