#include "analysis/fingerprint.h"

#include <algorithm>
#include <map>

#include "util/strings.h"

namespace dnswild::analysis {

using resolver::HardwareClass;
using resolver::OsClass;

DeviceFingerprinter::DeviceFingerprinter() {
  // Ordered most-specific first. Hardware-attributing rules; OS may remain
  // unknown and be filled by the OS-only rules below.
  const FingerprintRule kRules[] = {
      // Routers / modems / gateways.
      {{"zyxel"}, HardwareClass::kRouter, OsClass::kZynos, "ZyXEL router"},
      {{"zynos"}, HardwareClass::kRouter, OsClass::kZynos, "ZyNOS device"},
      {{"td-w8901"}, HardwareClass::kRouter, OsClass::kLinux, "ADSL2+ modem"},
      {{"adsl2+ modem router"},
       HardwareClass::kRouter,
       OsClass::kLinux,
       "ADSL2+ modem"},
      {{"busybox", "router login"},
       HardwareClass::kRouter,
       OsClass::kLinux,
       "BusyBox gateway"},
      {{"mikrotik"}, HardwareClass::kRouter, OsClass::kRouterOs,
       "MikroTik router"},
      {{"smartware"}, HardwareClass::kRouter, OsClass::kSmartWare,
       "SmartWare gateway"},

      // Cameras / DVRs (before generic embedded tokens).
      {{"netsurveillance"}, HardwareClass::kCamera, OsClass::kLinux,
       "IP camera"},
      {{"ip camera"}, HardwareClass::kCamera, OsClass::kLinux, "IP camera"},
      {{"dvrdvs"}, HardwareClass::kCamera, OsClass::kLinux, "camera/DVR"},
      // The example token from §2.4: a Linux DVR on PowerPC.
      {{"dm500plus login"}, HardwareClass::kDvr, OsClass::kLinux,
       "DM500+ DVR"},

      // NAS / DSLAM / firewalls.
      {{"nas web station"}, HardwareClass::kNas, OsClass::kLinux,
       "NAS appliance"},
      {{"nas ftp server"}, HardwareClass::kNas, OsClass::kLinux,
       "NAS appliance"},
      {{"dslam"}, HardwareClass::kDslam, OsClass::kUnknown, "DSLAM"},
      {{"firewall configuration console"},
       HardwareClass::kFirewall,
       OsClass::kUnix,
       "BSD firewall"},
      {{"gateway firewall"}, HardwareClass::kFirewall, OsClass::kCentOs,
       "CentOS firewall"},

      // Embedded devices.
      {{"lantronix"}, HardwareClass::kEmbedded, OsClass::kUnix,
       "serial-to-LAN converter"},
      {{"raspbian"}, HardwareClass::kEmbedded, OsClass::kLinux,
       "Raspberry Pi"},
      {{"raspberrypi"}, HardwareClass::kEmbedded, OsClass::kLinux,
       "Raspberry Pi"},
      {{"threadx"}, HardwareClass::kEmbedded, OsClass::kOther,
       "RTOS device"},
      {{"4.4bsd-lite embedded"},
       HardwareClass::kEmbedded,
       OsClass::kUnix,
       "embedded Unix"},
      {{"goahead-webs"}, HardwareClass::kEmbedded, OsClass::kUnknown,
       "GoAhead embedded server"},
      {{"rompager"}, HardwareClass::kEmbedded, OsClass::kUnknown,
       "RomPager embedded server"},
      {{"micro_httpd"}, HardwareClass::kEmbedded, OsClass::kUnknown,
       "embedded web server"},

      // OS-only evidence (hardware remains unknown).
      {{"microsoft-iis"}, HardwareClass::kUnknown, OsClass::kWindows,
       "Windows host"},
      {{"microsoft ftp"}, HardwareClass::kUnknown, OsClass::kWindows,
       "Windows host"},
      {{"centos"}, HardwareClass::kUnknown, OsClass::kCentOs, "CentOS host"},
      {{"ubuntu"}, HardwareClass::kUnknown, OsClass::kLinux, "Linux host"},
      {{"debian"}, HardwareClass::kUnknown, OsClass::kLinux, "Linux host"},
      {{"busybox"}, HardwareClass::kUnknown, OsClass::kLinux, "Linux host"},
      {{"sunos"}, HardwareClass::kUnknown, OsClass::kUnix, "SunOS host"},
      {{"freebsd"}, HardwareClass::kUnknown, OsClass::kUnix, "FreeBSD host"},
  };
  for (const auto& rule : kRules) rules_.push_back(rule);
}

void DeviceFingerprinter::add_rule(FingerprintRule rule) {
  rules_.push_back(std::move(rule));
}

Fingerprint DeviceFingerprinter::classify(std::string_view banner_text) const {
  Fingerprint out;
  for (const FingerprintRule& rule : rules_) {
    bool all = true;
    for (const auto& token : rule.tokens) {
      if (!util::icontains(banner_text, token)) {
        all = false;
        break;
      }
    }
    if (!all) continue;
    if (out.label.empty()) {
      out.hardware = rule.hardware;
      out.os = rule.os;
      out.label = rule.label;
      if (out.os != OsClass::kUnknown) return out;
      continue;  // hardware matched; keep looking for OS evidence
    }
    if (out.os == OsClass::kUnknown && rule.os != OsClass::kUnknown) {
      out.os = rule.os;
      return out;
    }
  }
  return out;
}

DeviceFingerprinter::Report DeviceFingerprinter::summarize(
    const std::vector<scan::BannerResult>& scan) const {
  Report report;
  std::map<std::string, std::uint64_t> hardware_counts;
  std::map<std::string, std::uint64_t> os_counts;
  for (const auto& result : scan) {
    if (!result.any_tcp_payload) {
      ++report.no_tcp_payload;
      continue;
    }
    ++report.tcp_responsive;
    const Fingerprint fp = classify(result.combined);
    // Table 4 groups NAS/DSLAM and small clusters under "Others".
    HardwareClass hardware = fp.hardware;
    if (hardware == HardwareClass::kNas || hardware == HardwareClass::kDslam) {
      hardware = HardwareClass::kOther;
    }
    ++hardware_counts[std::string(
        resolver::hardware_class_name(hardware))];
    ++os_counts[std::string(resolver::os_class_name(fp.os))];
  }

  const auto to_rows = [&report](const std::map<std::string, std::uint64_t>&
                                     counts) {
    std::vector<Row> rows;
    for (const auto& [key, count] : counts) {
      Row row;
      row.key = key;
      row.count = count;
      row.share = report.tcp_responsive == 0
                      ? 0.0
                      : static_cast<double>(count) /
                            static_cast<double>(report.tcp_responsive);
      rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      if (a.count != b.count) return a.count > b.count;
      return a.key < b.key;
    });
    return rows;
  };
  report.hardware = to_rows(hardware_counts);
  report.os = to_rows(os_counts);
  return report;
}

}  // namespace dnswild::analysis
