// IP-address churn of resolvers (§2.5, Fig. 2).
//
// Tracks how many of the resolvers discovered in the first scan still
// answer DNS at the same address in later probes: the weekly survival
// curve, the finer-grained first-day measurement, and the rDNS-token
// analysis attributing fast churn to dynamic broadband pools.
#pragma once

#include <cstdint>
#include <vector>

#include "net/rdns.h"
#include "net/world.h"

namespace dnswild::analysis {

struct ChurnPoint {
  double age_days = 0.0;
  std::uint64_t alive = 0;   // initial resolvers still answering NOERROR
  double alive_fraction = 0.0;
};

struct RdnsChurnStats {
  std::uint64_t disappeared_first_day = 0;
  std::uint64_t with_rdns = 0;
  std::uint64_t dynamic_tokens = 0;  // rDNS names with dynamic-pool tokens
  double dynamic_fraction = 0.0;
};

// For resolvers that vanished within the first probe interval, checks their
// rDNS records for dynamic-assignment tokens (§2.5 finds >= 67.4%).
RdnsChurnStats rdns_churn_stats(
    const net::RdnsStore& rdns,
    const std::vector<net::Ipv4>& disappeared_first_day);

// Builds the churn curve from per-probe survivor counts.
std::vector<ChurnPoint> churn_curve(std::uint64_t initial_count,
                                    const std::vector<double>& probe_days,
                                    const std::vector<std::uint64_t>& alive);

}  // namespace dnswild::analysis
