// CHAOS response classification (§2.4, Table 3).
//
// Buckets version-scan results the way the paper reports them: error for
// both probes, NOERROR without version, operator-hidden strings, and
// version-revealing — the last parsed into (software, version) and matched
// against the vulnerability catalog.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "resolver/software.h"
#include "scan/chaos_scan.h"

namespace dnswild::analysis {

enum class ChaosClass {
  kErrorBoth,      // REFUSED/SERVFAIL for both probes (42.7%)
  kNoVersion,      // NOERROR but empty version in both (4.6%)
  kHiddenString,   // arbitrary operator string (18.8%)
  kRevealing,      // usable software/version info (33.9%)
  kUnresponsive,   // no response at all
};

struct ParsedVersion {
  std::string software;  // canonical name ("BIND", "Dnsmasq", ...)
  std::string version;
};

// Parses a version banner ("BIND 9.8.2", "dnsmasq-2.40", "Microsoft DNS
// 6.1.7601 (1DB14556)", "unbound 1.4.22", "PowerDNS Recursor 3.5.3", ...).
// nullopt when the string carries no recognizable software name+version.
std::optional<ParsedVersion> parse_version_banner(std::string_view banner);

struct ChaosClassification {
  ChaosClass cls = ChaosClass::kUnresponsive;
  std::optional<ParsedVersion> parsed;
};

ChaosClassification classify_chaos(const scan::ChaosResult& result);

struct SoftwareRow {
  std::string software;  // "BIND 9.8.2"
  std::uint64_t count = 0;
  double share_of_revealing = 0.0;
  std::string released;
  std::string deprecated;
  std::string cves;
};

struct SoftwareReport {
  std::uint64_t responded = 0;
  std::uint64_t error_both = 0;
  std::uint64_t no_version = 0;
  std::uint64_t hidden = 0;
  std::uint64_t revealing = 0;
  std::vector<SoftwareRow> top;  // sorted by count descending
  double bind_share_of_revealing = 0.0;
  double vulnerable_dos_share = 0.0;     // of revealing resolvers
  double vulnerable_bypass_share = 0.0;  // of revealing resolvers
};

// Aggregates a full CHAOS scan into the Table 3 report. `top_n` limits the
// per-version rows (the paper shows 10).
SoftwareReport summarize_software(const std::vector<scan::ChaosResult>& scan,
                                  std::size_t top_n = 10);

}  // namespace dnswild::analysis
