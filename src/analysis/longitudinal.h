// Cross-epoch aggregation for longitudinal campaigns (§2, Fig. 1–2).
//
// The campaign engine persists one record per scan epoch; this module
// turns a replayed sequence of those records into the paper's landscape
// curves: the weekly per-status population series (Fig. 1), the survival
// curve of the first epoch's resolver population (Fig. 2), and the
// full-vs-delta probe-economy tallies the delta-scan policy is judged on.
//
// Inputs are plain structs (sorted address vectors + counters) rather than
// campaign types so analysis stays below the campaign layer in the
// library stack and tests can feed hand-built epochs.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/churn.h"

namespace dnswild::analysis {

// One scan epoch as the aggregator sees it: identity, status tallies, and
// the epoch's NOERROR population (sorted ascending, host-order addresses).
// Delta epochs carry their carried-forward population, so the series stays
// continuous even when only flagged prefixes were re-probed.
struct EpochObservation {
  std::uint32_t index = 0;
  std::uint64_t start_minute = 0;
  bool delta = false;            // delta epoch (partial re-probe)
  std::uint64_t probed = 0;      // probes actually issued this epoch
  std::uint64_t noerror = 0;
  std::uint64_t refused = 0;
  std::uint64_t servfail = 0;
  std::vector<std::uint32_t> population;  // sorted NOERROR addresses
};

// Fig. 1-style row: one epoch's population counts on the campaign's
// virtual calendar.
struct CampaignWeeklyRow {
  std::uint32_t index = 0;
  std::uint64_t start_minute = 0;
  bool delta = false;
  std::uint64_t noerror = 0;
  std::uint64_t refused = 0;
  std::uint64_t servfail = 0;
};

struct CampaignSummary {
  std::vector<CampaignWeeklyRow> weekly;  // Fig. 1 series
  // Fig. 2 curve: how much of epoch 0's population still answers NOERROR
  // at the same address in each later epoch.
  std::vector<ChurnPoint> churn;
  // Probe economy of the delta policy.
  std::uint64_t full_probes = 0;    // sum over full-sweep epochs
  std::uint64_t delta_probes = 0;   // sum over delta epochs
  std::uint64_t full_epochs = 0;
  std::uint64_t delta_epochs = 0;
  // delta probes per delta epoch / full probes per full epoch; 0 when the
  // campaign ran no delta epochs.
  double delta_probe_fraction = 0.0;
};

// Number of addresses present in both sorted vectors (survivors).
std::uint64_t surviving_count(const std::vector<std::uint32_t>& initial,
                              const std::vector<std::uint32_t>& current);

// Aggregates a campaign's epochs (ascending index order expected).
CampaignSummary summarize_campaign(
    const std::vector<EpochObservation>& epochs);

}  // namespace dnswild::analysis
