// Geographic and registry fluctuation statistics (§2.3, Tables 1–2).
//
// Groups resolver populations from two scans by GeoIP country or RIR and
// computes the per-group fluctuation, plus the AS-level drill-down the
// paper uses to attribute disappearances.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/asdb.h"
#include "net/ip.h"

namespace dnswild::analysis {

struct FluctuationRow {
  std::string key;  // country code or RIR name
  std::uint64_t first = 0;
  std::uint64_t last = 0;

  std::int64_t delta() const noexcept {
    return static_cast<std::int64_t>(last) - static_cast<std::int64_t>(first);
  }
  double delta_pct() const noexcept {
    return first == 0 ? 0.0
                      : 100.0 * static_cast<double>(delta()) /
                            static_cast<double>(first);
  }
};

// Rows sorted by `first` descending (the paper's Top-N ordering).
std::vector<FluctuationRow> fluctuation_by_country(
    const net::AsDb& asdb, const std::vector<net::Ipv4>& first_scan,
    const std::vector<net::Ipv4>& last_scan);

std::vector<FluctuationRow> fluctuation_by_rir(
    const net::AsDb& asdb, const std::vector<net::Ipv4>& first_scan,
    const std::vector<net::Ipv4>& last_scan);

struct AsFluctuationRow {
  std::uint32_t asn = 0;
  std::string name;
  std::string country;
  std::uint64_t first = 0;
  std::uint64_t last = 0;
};

// AS-level drill-down, sorted by absolute decrease descending.
std::vector<AsFluctuationRow> fluctuation_by_as(
    const net::AsDb& asdb, const std::vector<net::Ipv4>& first_scan,
    const std::vector<net::Ipv4>& last_scan);

// Country histogram of one resolver list (Fig. 4 panels).
std::vector<FluctuationRow> country_histogram(
    const net::AsDb& asdb, const std::vector<net::Ipv4>& resolvers);

}  // namespace dnswild::analysis
