#include "analysis/utilization.h"

#include <algorithm>
#include <cstdlib>

namespace dnswild::analysis {

std::string_view utilization_class_name(UtilizationClass cls) noexcept {
  switch (cls) {
    case UtilizationClass::kUnreachable: return "unreachable";
    case UtilizationClass::kEmptyResponses: return "empty responses";
    case UtilizationClass::kSingleResponse: return "single response";
    case UtilizationClass::kStaticTtl: return "static TTL";
    case UtilizationClass::kZeroTtl: return "TTL zero";
    case UtilizationClass::kFrequentlyUsed: return "frequently used (<=5s)";
    case UtilizationClass::kActivelyUsed: return "actively used";
    case UtilizationClass::kTtlReset: return "TTL reset / LB group";
    case UtilizationClass::kDecreasingOnly: return "decreasing, no expiry";
    case UtilizationClass::kInconclusive: return "inconclusive";
  }
  return "?";
}

namespace {

struct TldVerdict {
  bool any_response = false;
  bool any_cached = false;
  bool single_then_silent = false;
  bool static_ttl = false;
  bool zero_ttl = false;
  bool refreshed = false;       // re-added after an expiry
  bool fast_refresh = false;    // gap <= threshold
  bool reset_ahead = false;     // re-added before its expiry
  bool decreasing_only = false; // monotone decrease, no expiry seen
};

TldVerdict judge_tld(const scan::SnoopSeries& series,
                     const UtilizationConfig& config) {
  TldVerdict verdict;
  const auto& samples = series.samples;
  const std::int64_t ttl = config.tld_ttl_seconds;

  int responded = 0;
  int cached = 0;
  bool all_same_ttl = true;
  bool all_zero = true;
  std::uint32_t first_ttl = 0;
  bool have_first = false;
  bool monotone = true;

  // Previous cached observation, as absolute seconds.
  std::int64_t prev_time = 0;
  std::int64_t prev_cached_at = 0;
  bool have_prev = false;

  for (const auto& sample : samples) {
    if (!sample.responded) continue;
    ++responded;
    if (!sample.cached) continue;
    ++cached;
    if (!have_first) {
      first_ttl = sample.remaining_ttl;
      have_first = true;
    } else if (sample.remaining_ttl != first_ttl) {
      all_same_ttl = false;
    }
    if (sample.remaining_ttl != 0) all_zero = false;

    const std::int64_t now = std::int64_t{sample.minute} * 60;
    const std::int64_t cached_at =
        now - (ttl - std::int64_t{sample.remaining_ttl});
    if (have_prev) {
      const std::int64_t elapsed = now - prev_time;
      // Same cache entry would have remaining = prev_remaining - elapsed.
      if (cached_at > prev_cached_at + 30) {  // 30 s tolerance: re-added
        const std::int64_t prev_expiry = prev_cached_at + ttl;
        const std::int64_t gap = cached_at - prev_expiry;
        if (gap >= 0) {
          verdict.refreshed = true;
          if (gap <= config.fast_refresh_seconds) verdict.fast_refresh = true;
        } else {
          verdict.reset_ahead = true;
        }
        monotone = false;
      }
      (void)elapsed;
    }
    prev_time = now;
    prev_cached_at = cached_at;
    have_prev = true;
  }

  verdict.any_response = responded > 0;
  verdict.any_cached = cached > 0;
  verdict.single_then_silent = responded == 1 && samples.size() > 1;
  verdict.static_ttl = cached >= 2 && all_same_ttl && first_ttl != 0;
  verdict.zero_ttl = cached >= 1 && all_zero;
  verdict.decreasing_only =
      cached >= 2 && monotone && !verdict.refreshed && !verdict.reset_ahead &&
      !all_same_ttl;
  return verdict;
}

}  // namespace

UtilizationClass classify_utilization(
    const std::vector<const scan::SnoopSeries*>& series,
    const UtilizationConfig& config) {
  int tlds_responding = 0;
  int tlds_cached = 0;
  int tlds_refreshed = 0;
  int tlds_fast = 0;
  int tlds_reset = 0;
  int tlds_single = 0;
  int tlds_static = 0;
  int tlds_zero = 0;
  int tlds_decreasing = 0;

  for (const scan::SnoopSeries* entry : series) {
    const TldVerdict verdict = judge_tld(*entry, config);
    if (verdict.any_response) ++tlds_responding;
    if (verdict.any_cached) ++tlds_cached;
    if (verdict.refreshed) ++tlds_refreshed;
    if (verdict.fast_refresh) ++tlds_fast;
    if (verdict.reset_ahead) ++tlds_reset;
    if (verdict.single_then_silent) ++tlds_single;
    if (verdict.static_ttl) ++tlds_static;
    if (verdict.zero_ttl) ++tlds_zero;
    if (verdict.decreasing_only) ++tlds_decreasing;
  }

  if (tlds_responding == 0) return UtilizationClass::kUnreachable;
  if (tlds_cached == 0) return UtilizationClass::kEmptyResponses;
  if (tlds_single == tlds_responding && tlds_single > 0) {
    return UtilizationClass::kSingleResponse;
  }
  if (tlds_zero == tlds_cached) return UtilizationClass::kZeroTtl;
  if (tlds_static == tlds_cached) return UtilizationClass::kStaticTtl;
  if (tlds_refreshed >= config.min_refreshed_tlds) {
    return tlds_fast > 0 ? UtilizationClass::kFrequentlyUsed
                         : UtilizationClass::kActivelyUsed;
  }
  if (tlds_reset > 0) return UtilizationClass::kTtlReset;
  if (tlds_decreasing > 0) return UtilizationClass::kDecreasingOnly;
  return UtilizationClass::kInconclusive;
}

UtilizationReport summarize_utilization(
    const std::vector<scan::SnoopSeries>& all_series,
    std::uint32_t resolver_count, const UtilizationConfig& config) {
  // Group by resolver index.
  std::vector<std::vector<const scan::SnoopSeries*>> grouped(resolver_count);
  for (const auto& series : all_series) {
    if (series.resolver_index < resolver_count) {
      grouped[series.resolver_index].push_back(&series);
    }
  }

  UtilizationReport report;
  report.total = resolver_count;
  for (const auto& group : grouped) {
    const UtilizationClass cls = classify_utilization(group, config);
    ++report.per_class[static_cast<int>(cls)];
    if (cls != UtilizationClass::kUnreachable) ++report.responded_any;
  }
  return report;
}

}  // namespace dnswild::analysis
