// Weekly scan campaign (§2.2, Fig. 1; §2.5, Fig. 2).
//
// Runs the 55-week scanning schedule against a world: one Internet-wide
// scan per week (spread over ~8 hours of simulated time), recording the
// per-status series for Fig. 1, re-probing the first week's resolver
// population for the churn curve of Fig. 2 (with daily probes during the
// first week, which is where >40% of the churn happens), and keeping the
// scan populations the follow-up campaigns (fluctuation tables, software /
// device fingerprinting) start from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/world.h"
#include "scan/blacklist.h"
#include "scan/ipv4scan.h"

namespace dnswild::analysis {

struct WeeklyPoint {
  int week = 0;
  std::string date;  // "2014/01/31"
  std::uint64_t all = 0;
  std::uint64_t noerror = 0;
  std::uint64_t refused = 0;
  std::uint64_t servfail = 0;
  std::uint64_t multihomed = 0;
};

struct WeeklyCampaignConfig {
  int weeks = 55;
  scan::Ipv4ScanConfig scan;
  std::vector<net::Cidr> universe;
  // When true, the initial population is probed daily for the first week
  // and weekly afterwards (Fig. 2 needs the day-1 point).
  bool track_churn = true;
};

struct WeeklyCampaignResult {
  std::vector<WeeklyPoint> series;                   // Fig. 1
  std::vector<net::Ipv4> first_scan_noerror;         // initial population
  std::vector<net::Ipv4> last_scan_noerror;          // final population
  // Churn probes of the initial population: (age_days, alive_count).
  std::vector<double> churn_age_days;
  std::vector<std::uint64_t> churn_alive;
  // Initial resolvers gone by the first daily probe (rDNS analysis, §2.5).
  std::vector<net::Ipv4> disappeared_first_day;
};

WeeklyCampaignResult run_weekly_campaign(net::World& world,
                                         const WeeklyCampaignConfig& config);

}  // namespace dnswild::analysis
