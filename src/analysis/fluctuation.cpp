#include "analysis/fluctuation.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "net/countries.h"

namespace dnswild::analysis {

namespace {

std::vector<FluctuationRow> group(
    const std::vector<net::Ipv4>& first_scan,
    const std::vector<net::Ipv4>& last_scan,
    const std::function<std::string(net::Ipv4)>& key_of) {
  std::unordered_map<std::string, FluctuationRow> rows;
  for (const net::Ipv4 ip : first_scan) {
    auto& row = rows[key_of(ip)];
    ++row.first;
  }
  for (const net::Ipv4 ip : last_scan) {
    auto& row = rows[key_of(ip)];
    ++row.last;
  }
  std::vector<FluctuationRow> out;
  out.reserve(rows.size());
  for (auto& [key, row] : rows) {
    row.key = key;
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const FluctuationRow& a, const FluctuationRow& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.key < b.key;
            });
  return out;
}

}  // namespace

std::vector<FluctuationRow> fluctuation_by_country(
    const net::AsDb& asdb, const std::vector<net::Ipv4>& first_scan,
    const std::vector<net::Ipv4>& last_scan) {
  return group(first_scan, last_scan, [&asdb](net::Ipv4 ip) {
    const auto country = asdb.country_of(ip);
    return country.empty() ? std::string("??") : std::string(country);
  });
}

std::vector<FluctuationRow> fluctuation_by_rir(
    const net::AsDb& asdb, const std::vector<net::Ipv4>& first_scan,
    const std::vector<net::Ipv4>& last_scan) {
  return group(first_scan, last_scan, [&asdb](net::Ipv4 ip) {
    return std::string(net::rir_name(asdb.rir_of_ip(ip)));
  });
}

std::vector<AsFluctuationRow> fluctuation_by_as(
    const net::AsDb& asdb, const std::vector<net::Ipv4>& first_scan,
    const std::vector<net::Ipv4>& last_scan) {
  std::unordered_map<std::uint32_t, AsFluctuationRow> rows;
  const auto account = [&](const std::vector<net::Ipv4>& scan, bool is_first) {
    for (const net::Ipv4 ip : scan) {
      const auto asn = asdb.lookup_asn(ip);
      if (!asn) continue;
      auto& row = rows[*asn];
      if (row.name.empty()) {
        row.asn = *asn;
        if (const net::AsInfo* info = asdb.find_as(*asn)) {
          row.name = info->name;
          row.country = info->country;
        }
      }
      if (is_first) {
        ++row.first;
      } else {
        ++row.last;
      }
    }
  };
  account(first_scan, true);
  account(last_scan, false);
  std::vector<AsFluctuationRow> out;
  out.reserve(rows.size());
  for (auto& [asn, row] : rows) out.push_back(std::move(row));
  std::sort(out.begin(), out.end(),
            [](const AsFluctuationRow& a, const AsFluctuationRow& b) {
              const auto drop_a = static_cast<std::int64_t>(a.first) -
                                  static_cast<std::int64_t>(a.last);
              const auto drop_b = static_cast<std::int64_t>(b.first) -
                                  static_cast<std::int64_t>(b.last);
              if (drop_a != drop_b) return drop_a > drop_b;
              return a.asn < b.asn;
            });
  return out;
}

std::vector<FluctuationRow> country_histogram(
    const net::AsDb& asdb, const std::vector<net::Ipv4>& resolvers) {
  return fluctuation_by_country(asdb, resolvers, {});
}

}  // namespace dnswild::analysis
