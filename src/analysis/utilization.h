// Resolver utilization classification from cache-snooping timelines (§2.6).
//
// Consumes the hourly TTL samples the SnoopProber collected and sorts each
// resolver into the paper's behaviour classes: unreachable, empty
// responses, single-response-then-silence, static/zero TTLs, actively used
// (>= 3 TLDs re-added after expiry; "frequently used" when at least one
// re-add happened within 5 s), TTL-resetting / load-balanced groups, and
// caches whose entries decrease but never expire inside the window.
//
// Knowing the true zone TTL (public information — the TLDs' NS TTLs) makes
// refresh-gap recovery exact: an entry observed with remaining TTL r at
// time t was cached at t - (ttl - r).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "scan/snoop_probe.h"

namespace dnswild::analysis {

enum class UtilizationClass {
  kUnreachable,      // never answered a snoop query
  kEmptyResponses,   // answered, but never with NS records (empty answers)
  kSingleResponse,   // one answer per TLD, then silence
  kStaticTtl,        // constant non-zero TTL on every sample
  kZeroTtl,          // TTL always zero
  kFrequentlyUsed,   // >= 3 TLDs refreshed, at least one within 5 s
  kActivelyUsed,     // >= 3 TLDs refreshed (slower re-adds)
  kTtlReset,         // TTL reset ahead of expiry / load-balanced group
  kDecreasingOnly,   // decreasing TTL, no expiry observable in the window
  kInconclusive,
};

std::string_view utilization_class_name(UtilizationClass cls) noexcept;

struct UtilizationConfig {
  std::uint32_t tld_ttl_seconds = 21600;  // true zone TTL
  int fast_refresh_seconds = 5;           // §2.6 threshold
  int min_refreshed_tlds = 3;             // §2.6 "in use" threshold
};

// Classifies one resolver from its per-TLD series (all series must belong
// to the same resolver).
UtilizationClass classify_utilization(
    const std::vector<const scan::SnoopSeries*>& series,
    const UtilizationConfig& config);

struct UtilizationReport {
  std::uint64_t total = 0;
  std::uint64_t responded_any = 0;  // >= 1 snoop response (83.2% in §2.6)
  std::uint64_t per_class[10] = {};

  std::uint64_t in_use() const noexcept {
    return per_class[static_cast<int>(UtilizationClass::kFrequentlyUsed)] +
           per_class[static_cast<int>(UtilizationClass::kActivelyUsed)];
  }
};

// Groups the prober's output by resolver and classifies each.
UtilizationReport summarize_utilization(
    const std::vector<scan::SnoopSeries>& all_series,
    std::uint32_t resolver_count, const UtilizationConfig& config);

}  // namespace dnswild::analysis
