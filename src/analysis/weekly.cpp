#include "analysis/weekly.h"

#include <algorithm>
#include <unordered_set>

namespace dnswild::analysis {

WeeklyCampaignResult run_weekly_campaign(net::World& world,
                                         const WeeklyCampaignConfig& config) {
  WeeklyCampaignResult result;
  const std::int64_t start_minute = world.clock().minutes();

  // Alive = still answering NOERROR at the same address (§2.5).
  const auto probe_alive = [&world, &config](
                               const std::vector<net::Ipv4>& targets) {
    scan::Ipv4Scanner prober(world, config.scan);
    const auto summary = prober.probe_targets(targets);
    std::unordered_set<net::Ipv4> alive(summary.noerror_targets.begin(),
                                        summary.noerror_targets.end());
    return alive;
  };

  for (int week = 0; week < config.weeks; ++week) {
    // Daily churn probes inside the first week, BEFORE advancing to the
    // week-1 scan (time is monotonic).
    if (config.track_churn && week == 1 &&
        !result.first_scan_noerror.empty()) {
      for (int day = 1; day < 7; ++day) {
        world.set_time_minutes(start_minute + (std::int64_t{day}) * 1440);
        const auto alive = probe_alive(result.first_scan_noerror);
        result.churn_age_days.push_back(static_cast<double>(day));
        result.churn_alive.push_back(alive.size());
        if (day == 1) {
          for (const net::Ipv4 ip : result.first_scan_noerror) {
            if (alive.find(ip) == alive.end()) {
              result.disappeared_first_day.push_back(ip);
            }
          }
        }
      }
    }
    world.set_time_minutes(start_minute + std::int64_t{week} * 7 * 1440);

    scan::Ipv4Scanner scanner(world, config.scan);
    const auto summary = scanner.scan(config.universe);

    WeeklyPoint point;
    point.week = week;
    point.date = world.clock().date().to_string();
    point.all = summary.responses;
    point.noerror = summary.noerror;
    point.refused = summary.refused;
    point.servfail = summary.servfail;
    point.multihomed = summary.multihomed;
    result.series.push_back(point);

    if (week == 0) {
      result.first_scan_noerror = summary.noerror_targets;
    }
    if (week == config.weeks - 1) {
      result.last_scan_noerror = summary.noerror_targets;
    }

    // Weekly churn point: how many of the initial resolvers still answer.
    if (config.track_churn && week > 0) {
      const auto alive = probe_alive(result.first_scan_noerror);
      result.churn_age_days.push_back(static_cast<double>(week) * 7.0);
      result.churn_alive.push_back(alive.size());
    }
  }
  return result;
}

}  // namespace dnswild::analysis
