#include "analysis/longitudinal.h"

#include <algorithm>

namespace dnswild::analysis {

std::uint64_t surviving_count(const std::vector<std::uint32_t>& initial,
                              const std::vector<std::uint32_t>& current) {
  std::uint64_t alive = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < initial.size() && j < current.size()) {
    if (initial[i] < current[j]) {
      ++i;
    } else if (current[j] < initial[i]) {
      ++j;
    } else {
      ++alive;
      ++i;
      ++j;
    }
  }
  return alive;
}

CampaignSummary summarize_campaign(
    const std::vector<EpochObservation>& epochs) {
  CampaignSummary summary;
  if (epochs.empty()) return summary;

  std::vector<double> probe_days;
  std::vector<std::uint64_t> alive;
  const std::uint64_t base_minute = epochs.front().start_minute;
  for (const EpochObservation& epoch : epochs) {
    summary.weekly.push_back(CampaignWeeklyRow{
        epoch.index, epoch.start_minute, epoch.delta, epoch.noerror,
        epoch.refused, epoch.servfail});
    probe_days.push_back(
        static_cast<double>(epoch.start_minute - base_minute) / 1440.0);
    alive.push_back(
        surviving_count(epochs.front().population, epoch.population));
    if (epoch.delta) {
      summary.delta_probes += epoch.probed;
      ++summary.delta_epochs;
    } else {
      summary.full_probes += epoch.probed;
      ++summary.full_epochs;
    }
  }
  summary.churn = churn_curve(epochs.front().population.size(), probe_days,
                              alive);
  if (summary.full_epochs > 0 && summary.delta_epochs > 0) {
    const double full_avg = static_cast<double>(summary.full_probes) /
                            static_cast<double>(summary.full_epochs);
    const double delta_avg = static_cast<double>(summary.delta_probes) /
                             static_cast<double>(summary.delta_epochs);
    if (full_avg > 0.0) summary.delta_probe_fraction = delta_avg / full_avg;
  }
  return summary;
}

}  // namespace dnswild::analysis
