#include "analysis/churn.h"

namespace dnswild::analysis {

RdnsChurnStats rdns_churn_stats(
    const net::RdnsStore& rdns,
    const std::vector<net::Ipv4>& disappeared_first_day) {
  RdnsChurnStats stats;
  stats.disappeared_first_day = disappeared_first_day.size();
  for (const net::Ipv4 ip : disappeared_first_day) {
    const auto name = rdns.lookup(ip);
    if (!name) continue;
    ++stats.with_rdns;
    if (net::looks_dynamic(*name)) ++stats.dynamic_tokens;
  }
  stats.dynamic_fraction =
      stats.with_rdns == 0
          ? 0.0
          : static_cast<double>(stats.dynamic_tokens) /
                static_cast<double>(stats.with_rdns);
  return stats;
}

std::vector<ChurnPoint> churn_curve(std::uint64_t initial_count,
                                    const std::vector<double>& probe_days,
                                    const std::vector<std::uint64_t>& alive) {
  std::vector<ChurnPoint> curve;
  const std::size_t points = std::min(probe_days.size(), alive.size());
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    ChurnPoint point;
    point.age_days = probe_days[i];
    point.alive = alive[i];
    point.alive_fraction =
        initial_count == 0
            ? 0.0
            : static_cast<double>(alive[i]) /
                  static_cast<double>(initial_count);
    curve.push_back(point);
  }
  return curve;
}

}  // namespace dnswild::analysis
