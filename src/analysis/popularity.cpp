#include "analysis/popularity.h"

#include <algorithm>

namespace dnswild::analysis {

PopularityEstimate estimate_popularity(
    const std::vector<const scan::SnoopSeries*>& series,
    std::uint32_t tld_ttl_seconds) {
  PopularityEstimate estimate;
  const std::int64_t ttl = tld_ttl_seconds;

  double gap_sum = 0.0;
  int gaps = 0;
  for (const scan::SnoopSeries* entry : series) {
    std::int64_t prev_cached_at = 0;
    bool have_prev = false;
    for (const auto& sample : entry->samples) {
      if (!sample.responded || !sample.cached) continue;
      if (sample.remaining_ttl > tld_ttl_seconds) continue;  // foreign TTL
      const std::int64_t now = std::int64_t{sample.minute} * 60;
      const std::int64_t cached_at =
          now - (ttl - std::int64_t{sample.remaining_ttl});
      if (have_prev && cached_at > prev_cached_at + 30) {
        const std::int64_t gap = cached_at - (prev_cached_at + ttl);
        if (gap >= 0) {  // re-added after expiry: a clean client-driven gap
          gap_sum += static_cast<double>(gap);
          ++gaps;
        }
      }
      prev_cached_at = cached_at;
      have_prev = true;
    }
  }
  estimate.refresh_samples = gaps;
  if (gaps > 0) {
    // Exp(λ) gaps: λ^ = 1 / mean(gap). A zero mean (instant re-adds) is
    // clamped to the sampling resolution.
    const double mean_gap_seconds = std::max(1.0, gap_sum /
                                                      static_cast<double>(gaps));
    estimate.requests_per_hour = 3600.0 / mean_gap_seconds;
  }
  return estimate;
}

std::string_view popularity_bucket_name(PopularityBucket bucket) noexcept {
  switch (bucket) {
    case PopularityBucket::kUnobservable: return "unobservable";
    case PopularityBucket::kLight: return "< 1 req/h";
    case PopularityBucket::kModerate: return "1-60 req/h";
    case PopularityBucket::kBusy: return "> 60 req/h";
  }
  return "?";
}

PopularityBucket bucket_of(const PopularityEstimate& estimate) noexcept {
  if (estimate.refresh_samples == 0) return PopularityBucket::kUnobservable;
  if (estimate.requests_per_hour < 1.0) return PopularityBucket::kLight;
  if (estimate.requests_per_hour <= 60.0) return PopularityBucket::kModerate;
  return PopularityBucket::kBusy;
}

PopularityReport summarize_popularity(
    const std::vector<scan::SnoopSeries>& all_series,
    std::uint32_t resolver_count, std::uint32_t tld_ttl_seconds) {
  std::vector<std::vector<const scan::SnoopSeries*>> grouped(resolver_count);
  for (const auto& series : all_series) {
    if (series.resolver_index < resolver_count) {
      grouped[series.resolver_index].push_back(&series);
    }
  }

  PopularityReport report;
  report.resolvers = resolver_count;
  std::vector<double> rates;
  for (const auto& group : grouped) {
    const PopularityEstimate estimate =
        estimate_popularity(group, tld_ttl_seconds);
    ++report.per_bucket[static_cast<int>(bucket_of(estimate))];
    if (estimate.refresh_samples > 0) {
      rates.push_back(estimate.requests_per_hour);
    }
  }
  if (!rates.empty()) {
    std::nth_element(rates.begin(), rates.begin() + rates.size() / 2,
                     rates.end());
    report.median_requests_per_hour = rates[rates.size() / 2];
  }
  return report;
}

}  // namespace dnswild::analysis
