#include "analysis/software_classify.h"

#include <algorithm>
#include <unordered_map>

#include "util/strings.h"

namespace dnswild::analysis {

namespace {

bool is_error(dns::RCode rcode) {
  return rcode == dns::RCode::kRefused || rcode == dns::RCode::kServFail;
}

// Extracts a dotted version number starting at `pos` ("9.8.2-P1" -> 9.8.2).
std::optional<std::string> take_version(std::string_view text,
                                        std::size_t pos) {
  while (pos < text.size() &&
         !util::is_digit_ascii(text[pos])) {
    ++pos;
  }
  std::size_t end = pos;
  bool seen_dot = false;
  while (end < text.size() &&
         (util::is_digit_ascii(text[end]) || text[end] == '.')) {
    if (text[end] == '.') seen_dot = true;
    ++end;
  }
  if (end == pos || !seen_dot) return std::nullopt;
  // Trim a trailing dot ("9.8." -> "9.8").
  if (text[end - 1] == '.') --end;
  return std::string(text.substr(pos, end - pos));
}

}  // namespace

std::optional<ParsedVersion> parse_version_banner(std::string_view banner) {
  struct Pattern {
    std::string_view token;
    std::string_view canonical;
  };
  static constexpr Pattern kPatterns[] = {
      {"bind", "BIND"},
      {"named", "BIND"},
      {"dnsmasq", "Dnsmasq"},
      {"unbound", "Unbound"},
      {"powerdns", "PowerDNS"},
      {"pdns", "PowerDNS"},
      {"microsoft dns", "Microsoft DNS"},
      {"nominum", "Nominum Vantio"},
      {"vantio", "Nominum Vantio"},
      {"zywall", "ZyWALL DNS"},
  };
  const std::string lowered = util::lower(banner);
  for (const Pattern& pattern : kPatterns) {
    const std::size_t hit = lowered.find(pattern.token);
    if (hit == std::string::npos) continue;
    const auto version =
        take_version(lowered, hit + pattern.token.size());
    if (!version) continue;
    return ParsedVersion{std::string(pattern.canonical), *version};
  }
  // Bare "9.8.2"-style responses are BIND's default format when only the
  // version number was configured; require a dotted triple to avoid
  // swallowing arbitrary hidden strings.
  const auto bare = take_version(lowered, 0);
  if (bare && std::count(bare->begin(), bare->end(), '.') >= 2 &&
      lowered.size() <= bare->size() + 2) {
    return ParsedVersion{"BIND", *bare};
  }
  return std::nullopt;
}

ChaosClassification classify_chaos(const scan::ChaosResult& result) {
  ChaosClassification out;
  if (!result.responded) return out;
  const bool bind_error = is_error(result.rcode_bind);
  const bool server_error = is_error(result.rcode_server);
  if (bind_error && server_error) {
    out.cls = ChaosClass::kErrorBoth;
    return out;
  }
  for (const auto& banner : {result.version_bind, result.version_server}) {
    if (!banner) continue;
    if (auto parsed = parse_version_banner(*banner)) {
      out.cls = ChaosClass::kRevealing;
      out.parsed = std::move(parsed);
      return out;
    }
  }
  const bool any_banner =
      (result.version_bind && !result.version_bind->empty()) ||
      (result.version_server && !result.version_server->empty());
  out.cls = any_banner ? ChaosClass::kHiddenString : ChaosClass::kNoVersion;
  return out;
}

SoftwareReport summarize_software(const std::vector<scan::ChaosResult>& scan,
                                  std::size_t top_n) {
  SoftwareReport report;
  std::unordered_map<std::string, std::uint64_t> version_counts;
  std::uint64_t bind_total = 0;
  std::uint64_t dos_total = 0;
  std::uint64_t bypass_total = 0;

  const auto& catalog = resolver::software_catalog();
  const auto catalog_entry =
      [&catalog](const ParsedVersion& parsed) -> const resolver::SoftwareProfile* {
    for (const auto& profile : catalog) {
      if (util::iequals(profile.name, parsed.software) &&
          profile.version == parsed.version) {
        return &profile;
      }
    }
    return nullptr;
  };

  for (const auto& result : scan) {
    const ChaosClassification cls = classify_chaos(result);
    switch (cls.cls) {
      case ChaosClass::kUnresponsive: continue;
      case ChaosClass::kErrorBoth: ++report.error_both; break;
      case ChaosClass::kNoVersion: ++report.no_version; break;
      case ChaosClass::kHiddenString: ++report.hidden; break;
      case ChaosClass::kRevealing: {
        ++report.revealing;
        const std::string key =
            cls.parsed->software + " " + cls.parsed->version;
        ++version_counts[key];
        if (cls.parsed->software == "BIND") ++bind_total;
        if (const auto* profile = catalog_entry(*cls.parsed)) {
          if (profile->vulnerable_dos) ++dos_total;
          if (profile->vulnerable_bypass) ++bypass_total;
        }
        break;
      }
    }
    ++report.responded;
  }

  std::vector<SoftwareRow> rows;
  rows.reserve(version_counts.size());
  for (const auto& [key, count] : version_counts) {
    SoftwareRow row;
    row.software = key;
    row.count = count;
    row.share_of_revealing =
        report.revealing == 0
            ? 0.0
            : static_cast<double>(count) /
                  static_cast<double>(report.revealing);
    // Annotate from the catalog when the version is known.
    for (const auto& profile : catalog) {
      if (profile.banner() == key) {
        row.released = profile.released;
        row.deprecated = profile.deprecated;
        row.cves = profile.cves;
        break;
      }
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const SoftwareRow& a, const SoftwareRow& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.software < b.software;
            });
  if (rows.size() > top_n) rows.resize(top_n);
  report.top = std::move(rows);

  if (report.revealing > 0) {
    report.bind_share_of_revealing =
        static_cast<double>(bind_total) /
        static_cast<double>(report.revealing);
    report.vulnerable_dos_share =
        static_cast<double>(dos_total) / static_cast<double>(report.revealing);
    report.vulnerable_bypass_share =
        static_cast<double>(bypass_total) /
        static_cast<double>(report.revealing);
  }
  return report;
}

}  // namespace dnswild::analysis
