// Resolver popularity estimation from cache-snooping timelines.
//
// §2.6 closes by suggesting a finer-grained follow-up: use the time gap
// between a TLD entry expiring and being re-added to approximate how busy
// a resolver's client population is (Rajab et al., "Peeking Through the
// Cloud"). If client requests for a TLD arrive as a Poisson process with
// rate λ, the expiry→re-add gap is Exp(λ); averaging observed gaps across
// TLDs yields a per-resolver request-rate estimate.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "scan/snoop_probe.h"

namespace dnswild::analysis {

struct PopularityEstimate {
  // Mean client request rate for the snooped TLD set, in requests/hour.
  // 0 when no refresh gap was observable.
  double requests_per_hour = 0.0;
  int refresh_samples = 0;  // gaps the estimate is based on
};

// Estimates one resolver's popularity from its per-TLD snoop series.
// `tld_ttl_seconds` is the true zone TTL (public knowledge), which makes
// expiry times and re-add instants exactly recoverable from sampled
// remaining-TTL values.
PopularityEstimate estimate_popularity(
    const std::vector<const scan::SnoopSeries*>& series,
    std::uint32_t tld_ttl_seconds);

// Population buckets, following the spirit of the paper's "frequently
// used" (≤ 5 s re-add ≈ busy) vs "in use" split.
enum class PopularityBucket {
  kUnobservable,  // no gap seen in the window
  kLight,         // < 1 request/hour
  kModerate,      // 1 .. 60 requests/hour
  kBusy,          // > 60 requests/hour (sub-minute re-adds)
};

std::string_view popularity_bucket_name(PopularityBucket bucket) noexcept;
PopularityBucket bucket_of(const PopularityEstimate& estimate) noexcept;

struct PopularityReport {
  std::uint64_t resolvers = 0;
  std::uint64_t per_bucket[4] = {};
  double median_requests_per_hour = 0.0;  // over observable resolvers
};

PopularityReport summarize_popularity(
    const std::vector<scan::SnoopSeries>& all_series,
    std::uint32_t resolver_count, std::uint32_t tld_ttl_seconds);

}  // namespace dnswild::analysis
