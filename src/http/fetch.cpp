#include "http/fetch.h"

#include "http/html.h"
#include "util/strings.h"

namespace dnswild::http {

std::optional<Url> parse_url(std::string_view text, const Url* base) {
  Url url;
  if (util::starts_with(text, "http://")) {
    text.remove_prefix(7);
    url.scheme = "http";
  } else if (util::starts_with(text, "https://")) {
    text.remove_prefix(8);
    url.scheme = "https";
  } else if (base != nullptr) {
    // Relative reference.
    url = *base;
    if (text.empty()) return url;
    if (text.front() == '/') {
      url.path = std::string(text);
    } else {
      const std::size_t dir = url.path.rfind('/');
      url.path = url.path.substr(0, dir + 1) + std::string(text);
    }
    return url;
  } else {
    return std::nullopt;
  }
  const std::size_t slash = text.find('/');
  url.host = std::string(text.substr(0, slash));
  url.path = slash == std::string_view::npos
                 ? "/"
                 : std::string(text.substr(slash));
  // Strip an explicit port; the simulation serves HTTP on 80 / HTTPS on 443.
  const std::size_t colon = url.host.find(':');
  if (colon != std::string::npos) url.host.resize(colon);
  if (url.host.empty()) return std::nullopt;
  return url;
}

std::optional<HttpResponse> Fetcher::get(net::Ipv4 ip, std::string_view host,
                                         std::string_view path) {
  net::TcpService* service = retrier_.connect(client_ip_, ip, 80);
  if (service == nullptr) return std::nullopt;
  HttpRequest request;
  request.host = std::string(host);
  request.path = std::string(path);
  const std::string raw = service->respond(request.serialize());
  if (raw.empty()) return std::nullopt;
  return HttpResponse::parse(raw);
}

FetchResult Fetcher::fetch_page(net::Ipv4 ip, std::string host,
                                const ResolveFn& resolve) {
  FetchResult result;
  pages_->add();
  Url current{"http", std::move(host), "/"};
  net::Ipv4 current_ip = ip;

  for (int hop = 0; hop <= 2; ++hop) {
    if (hop > 0) redirect_hops_->add();
    net::TcpService* service = retrier_.connect(client_ip_, current_ip, 80);
    if (service == nullptr) return result;
    if (!result.connected) pages_connected_->add();
    result.connected = true;

    HttpRequest request;
    request.host = current.host;
    request.path = current.path;
    auto response = HttpResponse::parse(service->respond(request.serialize()));
    if (!response) return result;
    result.response = std::move(response);
    result.status = result.response->status;
    result.final_host = current.host;
    result.body = result.response->body;
    result.hops = hop;
    if (hop == 2) break;  // §3.5: follow redirections two times at most

    // Pick the next hop: Location header, meta refresh, or first frame.
    std::string target;
    bool framed = false;
    if (result.response->is_redirect()) {
      if (const auto* location = result.response->header("Location")) {
        target = *location;
      }
    }
    if (target.empty()) {
      target = meta_refresh_target(result.response->body);
    }
    if (target.empty()) {
      const auto frames = iframe_sources(result.response->body);
      if (!frames.empty()) {
        target = frames.front();
        framed = true;
      }
    }
    if (target.empty()) break;

    const auto next = parse_url(target, &current);
    if (!next) break;
    if (!util::iequals(next->host, current.host)) {
      // New (sub-)domain: §3.5 resolves it at the resolver under test.
      const auto next_ip = resolve ? resolve(next->host) : std::nullopt;
      if (!next_ip) break;
      current_ip = *next_ip;
    }
    if (framed) {
      // Frames embed content rather than replace it; fetch the frame and
      // append so the cluster features see the composite document.
      net::TcpService* frame_service =
          retrier_.connect(client_ip_, current_ip, 80);
      if (frame_service != nullptr) {
        HttpRequest frame_request;
        frame_request.host = next->host;
        frame_request.path = next->path;
        if (auto frame_response = HttpResponse::parse(
                frame_service->respond(frame_request.serialize()))) {
          result.body += frame_response->body;
          result.hops = hop + 1;
        }
      }
      break;
    }
    current = *next;
  }
  return result;
}

std::optional<net::Certificate> Fetcher::tls_certificate(
    net::Ipv4 ip, const std::optional<std::string>& sni) {
  tls_handshakes_->add();
  net::TcpService* service = retrier_.connect(client_ip_, ip, 443);
  if (service == nullptr) return std::nullopt;
  const net::Certificate* cert = service->certificate(sni);
  if (cert == nullptr) return std::nullopt;
  certificates_->add();
  return *cert;
}

std::optional<std::string> Fetcher::banner(net::Ipv4 ip, std::uint16_t port) {
  banner_probes_->add();
  net::TcpService* service = retrier_.connect(client_ip_, ip, port);
  if (service == nullptr) return std::nullopt;
  std::string greeting = service->greeting();
  if (greeting.empty()) {
    // HTTP-style services need a request to reveal themselves; send a probe
    // and keep whatever came back (the fingerprinting engine scans bodies
    // and headers alike, §2.4).
    HttpRequest probe;
    probe.host = ip.to_string();
    greeting = service->respond(probe.serialize());
  }
  if (greeting.empty()) return std::nullopt;
  banners_->add();
  return greeting;
}

}  // namespace dnswild::http
