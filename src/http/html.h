// Minimal HTML tokenizer and the page features the clustering step uses.
//
// §3.6 defines seven normalized distance features over HTTP bodies: body
// length, tag multiset (Jaccard), opening-tag sequence (edit distance over
// 2-byte tag identifiers), <title> text, concatenated JavaScript, embedded
// resources (src= values) and outgoing links (href= values). This tokenizer
// extracts exactly those signals; it is not a general HTML parser, but it
// handles attributes in single/double/no quotes, comments, and case
// variance, which is all the generated and real-world-style corpus needs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dnswild::http {

// Process-wide interning of tag names to dense 16-bit identifiers (the
// paper's "2-byte-long identifier" normalization). Thread-safe (guarded by
// a shared_mutex, read-mostly): the parallel feature-extraction pass in
// classify_responses tokenizes pages concurrently. Ids are only compared
// for equality, so interning order does not affect any distance.
std::uint16_t tag_id(std::string_view tag_name);
std::string_view tag_name(std::uint16_t id);

struct PageFeatures {
  std::size_t body_length = 0;
  std::vector<std::uint16_t> tag_sequence;          // opening tags, in order
  std::unordered_map<std::uint16_t, int> tag_counts;  // multiset view
  std::string title;
  std::string scripts;                  // concatenated inline script bodies
  std::vector<std::string> resources;   // sorted unique src= values
  std::vector<std::string> links;       // sorted unique href= values
};

PageFeatures extract_features(std::string_view html);

// Structural helpers reused by the fetcher and the fine-grained differ.
struct TagToken {
  std::string name;                                        // lower-cased
  std::vector<std::pair<std::string, std::string>> attrs;  // name lower-cased
  bool closing = false;

  const std::string* attr(std::string_view key) const noexcept;
};

// All tags in document order (closing tags included, comments skipped).
std::vector<TagToken> tokenize(std::string_view html);

// Values of <iframe src=...> and <frame src=...> in the document (§3.5
// follows frames like redirections).
std::vector<std::string> iframe_sources(std::string_view html);

// <meta http-equiv="refresh" content="0;url=..."> target, if any.
std::string meta_refresh_target(std::string_view html);

}  // namespace dnswild::http
