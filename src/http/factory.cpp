#include "http/factory.h"

#include <vector>

#include "util/rng.h"
#include "util/strings.h"

namespace dnswild::http {

namespace {

using util::Rng;

// Deterministic token like "a3f09c" for ids/session markers.
std::string token(Rng& rng, std::size_t length = 8) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out += kAlphabet[rng.below(sizeof kAlphabet - 1)];
  }
  return out;
}

std::string page(std::string_view title, std::string_view head_extra,
                 std::string_view body) {
  std::string out = "<!DOCTYPE html>\n<html>\n<head>\n<title>";
  out += title;
  out += "</title>\n";
  out += head_extra;
  out += "</head>\n<body>\n";
  out += body;
  out += "\n</body>\n</html>\n";
  return out;
}

std::string nav_links(std::string_view domain, Rng& rng, int count) {
  static constexpr std::string_view kSections[] = {
      "about", "contact", "news",    "products", "help",
      "terms", "privacy", "careers", "blog",     "support",
  };
  std::string out = "<ul class=\"nav\">\n";
  for (int i = 0; i < count; ++i) {
    const auto section = kSections[rng.below(std::size(kSections))];
    out += "<li><a href=\"http://";
    out += domain;
    out += "/";
    out += section;
    out += "\">";
    out += section;
    out += "</a></li>\n";
  }
  out += "</ul>\n";
  return out;
}

}  // namespace

std::string_view site_category_name(SiteCategory category) noexcept {
  switch (category) {
    case SiteCategory::kAds: return "Ads";
    case SiteCategory::kAdult: return "Adult";
    case SiteCategory::kAlexa: return "Alexa";
    case SiteCategory::kAntivirus: return "Antivirus";
    case SiteCategory::kBanking: return "Banking";
    case SiteCategory::kDating: return "Dating";
    case SiteCategory::kFilesharing: return "Filesharing";
    case SiteCategory::kGambling: return "Gambling";
    case SiteCategory::kMalware: return "Malware";
    case SiteCategory::kMail: return "MX";
    case SiteCategory::kNx: return "NX";
    case SiteCategory::kTracking: return "Tracking";
    case SiteCategory::kMisc: return "Misc";
    case SiteCategory::kGroundTruth: return "GroundTr.";
  }
  return "?";
}

std::string legit_site(std::string_view domain, SiteCategory category,
                       std::uint64_t variant, std::uint64_t dynamic_nonce) {
  Rng layout(util::fnv1a(domain) ^ util::mix64(variant));
  Rng dyn(util::fnv1a(domain) ^ util::mix64(dynamic_nonce) ^ 0x5eedULL);

  std::string head = "<meta charset=\"utf-8\">\n<link rel=\"stylesheet\" "
                     "href=\"http://" +
                     std::string(domain) + "/static/site-" +
                     token(layout, 4) + ".css\">\n";
  std::string body;
  body += "<!-- generated " + token(dyn, 12) + " -->\n";
  body += "<div id=\"header\"><h1>" + std::string(domain) + "</h1></div>\n";
  body += nav_links(domain, layout, 4 + static_cast<int>(layout.below(4)));

  switch (category) {
    case SiteCategory::kBanking:
      body += "<div class=\"login-box\"><h2>Online banking login</h2>\n"
              "<form action=\"https://" + std::string(domain) +
              "/auth\" method=\"post\">\n"
              "<input type=\"text\" name=\"user\">\n"
              "<input type=\"password\" name=\"pass\">\n"
              "<input type=\"submit\" value=\"Sign in\">\n</form></div>\n"
              "<p>Your security is our priority. Sessions are protected "
              "with TLS.</p>\n";
      break;
    case SiteCategory::kAds:
    case SiteCategory::kTracking:
      body += "<script src=\"http://" + std::string(domain) +
              "/js/delivery-" + token(layout, 4) +
              ".js\"></script>\n<div class=\"slot\" id=\"slot-" +
              token(dyn, 4) + "\"></div>\n";
      break;
    case SiteCategory::kAntivirus:
      body += "<div class=\"update\"><h2>Definition updates</h2>\n"
              "<a href=\"http://" + std::string(domain) +
              "/updates/latest.cvd\">Download signature package</a>\n"
              "<p>Engine version " + std::to_string(10 + layout.below(5)) +
              "." + std::to_string(layout.below(10)) + " released.</p></div>\n";
      break;
    case SiteCategory::kDating:
      body += "<div class=\"hero\"><h2>Meet people near you</h2>\n"
              "<form action=\"/join\" method=\"post\">"
              "<input type=\"text\" name=\"email\">"
              "<input type=\"submit\" value=\"Join free\"></form></div>\n";
      break;
    case SiteCategory::kGambling:
      body += "<div class=\"odds\"><h2>Today's odds</h2><table>\n";
      for (int i = 0; i < 4; ++i) {
        body += "<tr><td>match-" + token(dyn, 3) + "</td><td>" +
                std::to_string(1 + dyn.below(5)) + "." +
                std::to_string(dyn.below(100)) + "</td></tr>\n";
      }
      body += "</table></div>\n";
      break;
    case SiteCategory::kFilesharing:
      body += "<div class=\"torrents\"><h2>Top torrents</h2><ol>\n";
      for (int i = 0; i < 5; ++i) {
        body += "<li><a href=\"magnet:?xt=urn:btih:" + token(dyn, 20) +
                "\">release-" + token(dyn, 6) + "</a></li>\n";
      }
      body += "</ol></div>\n";
      break;
    case SiteCategory::kAdult:
      body += "<div class=\"gallery\">\n";
      for (int i = 0; i < 6; ++i) {
        body += "<img src=\"http://cdn." + std::string(domain) + "/thumb/" +
                token(layout, 6) + ".jpg\" alt=\"preview\">\n";
      }
      body += "</div>\n";
      break;
    case SiteCategory::kMalware:
      // Blacklisted domains typically serve bare directory indexes or C2
      // check-in endpoints; keep them structurally thin.
      body = "<pre>index of /\n" + token(dyn, 16) + "\n</pre>\n";
      return page("Index of /", "", body);
    case SiteCategory::kAlexa:
    case SiteCategory::kMisc:
    case SiteCategory::kMail:
    case SiteCategory::kNx:
    case SiteCategory::kGroundTruth:
      body += "<div class=\"content\"><h2>Welcome</h2>\n";
      for (int i = 0; i < 3 + static_cast<int>(layout.below(3)); ++i) {
        body += "<p>Story " + token(dyn, 5) +
                ": updates from our newsroom, item id " + token(dyn, 7) +
                ".</p>\n";
      }
      body += "</div>\n";
      break;
  }
  body += "<div id=\"footer\"><a href=\"http://" + std::string(domain) +
          "/imprint\">Imprint</a> &middot; &copy; " + std::string(domain) +
          "</div>\n";
  std::string title = std::string(domain) + " - " +
                      std::string(site_category_name(category));
  return page(title, head, body);
}

std::string error_page(int status, std::uint64_t server_flavor) {
  switch (server_flavor % 4) {
    case 0:  // nginx style
      return "<html>\n<head><title>" + std::to_string(status) +
             "</title></head>\n<body bgcolor=\"white\">\n<center><h1>" +
             std::to_string(status) +
             "</h1></center>\n<hr><center>nginx/1.4.7</center>\n</body>\n"
             "</html>\n";
    case 1:  // apache style
      return "<!DOCTYPE HTML PUBLIC \"-//IETF//DTD HTML 2.0//EN\">\n<html>"
             "<head>\n<title>" + std::to_string(status) +
             " Error</title>\n</head><body>\n<h1>Error</h1>\n<p>The "
             "requested URL was not found on this server.</p>\n<hr>\n"
             "<address>Apache/2.2.22 (Debian) Server</address>\n</body>"
             "</html>\n";
    case 2:  // IIS style
      return "<html><head><title>" + std::to_string(status) +
             " - File or directory not found.</title></head>\n<body>"
             "<div id=\"content\"><div class=\"content-container\">"
             "<h3>HTTP Error " + std::to_string(status) +
             "</h3><p>Internet Information Services (IIS)</p></div></div>"
             "</body></html>\n";
    default:  // embedded server style
      return "<html><head><title>Error</title></head><body><h2>" +
             std::to_string(status) +
             " error</h2><p>RomPager server: invalid request.</p></body>"
             "</html>\n";
  }
}

std::string router_login(std::uint64_t brand, std::uint64_t variant) {
  Rng rng(util::mix64(brand * 977 + variant));
  if (brand % 2 == 0) {
    // "Manufacturer A" — ZyNOS-style web configurator.
    return page(
        "ZyXEL Web Configurator",
        "<meta name=\"generator\" content=\"RomPager\">\n",
        "<div class=\"login\">\n<h2>Welcome to the Web Configurator</h2>\n"
        "<form action=\"/Forms/rpAuth_1\" method=\"post\">\n"
        "<p>Password: <input type=\"password\" name=\"LoginPassword\"></p>\n"
        "<input type=\"submit\" value=\"Login\">\n</form>\n"
        "<p class=\"fw\">ZyNOS firmware version V3.40(ANS." +
            std::to_string(rng.below(9)) + ")</p>\n</div>");
  }
  // "Manufacturer B" — TP-style modem login.
  return page(
      "TD-W8901 Login", "",
      "<div id=\"login\">\n<h2>ADSL2+ Modem Router</h2>\n"
      "<form action=\"/cgi-bin/login\" method=\"post\">\n"
      "<p>Username: <input type=\"text\" name=\"username\"></p>\n"
      "<p>Password: <input type=\"password\" name=\"password\"></p>\n"
      "<input type=\"submit\" value=\"OK\">\n</form>\n"
      "<p class=\"fw\">Firmware: " +
          std::to_string(2 + rng.below(5)) + "." +
          std::to_string(rng.below(20)) + " GoAhead-Webs</p>\n</div>");
}

std::string camera_login(std::uint64_t variant) {
  Rng rng(util::mix64(variant ^ 0xcafeULL));
  return page("NETSurveillance WEB", "",
              "<div class=\"cam-login\">\n<h2>IP Camera</h2>\n"
              "<form action=\"/login.cgi\" method=\"post\">\n"
              "<input type=\"text\" name=\"user\">\n"
              "<input type=\"password\" name=\"pwd\">\n"
              "<input type=\"submit\" value=\"Login\">\n</form>\n"
              "<p>DVR/NVR web service build " +
                  token(rng, 6) + "</p>\n</div>");
}

std::string captive_portal(std::uint64_t operator_kind,
                           std::uint64_t variant) {
  Rng rng(util::mix64(operator_kind * 31 + variant));
  std::string_view operator_name;
  switch (operator_kind % 3) {
    case 0: operator_name = "Municipal Broadband Portal"; break;
    case 1: operator_name = "Grand Plaza Hotel Guest WiFi"; break;
    default: operator_name = "Campus Network Access"; break;
  }
  return page(
      operator_name, "",
      "<div class=\"portal\">\n<h1>" + std::string(operator_name) +
          "</h1>\n<p>Please sign in to access the network.</p>\n"
          "<form action=\"/portal/auth?session=" +
          token(rng, 10) +
          "\" method=\"post\">\n"
          "<input type=\"text\" name=\"account\">\n"
          "<input type=\"password\" name=\"secret\">\n"
          "<input type=\"submit\" value=\"Connect\">\n</form>\n"
          "<p class=\"terms\">By connecting you accept the acceptable-use "
          "policy.</p>\n</div>");
}

std::string webmail_login(std::uint64_t variant) {
  Rng rng(util::mix64(variant ^ 0x3a11ULL));
  return page("Webmail Login", "",
              "<div class=\"webmail\">\n<h2>Webmail</h2>\n"
              "<form action=\"/mail/login\" method=\"post\">\n"
              "<input type=\"text\" name=\"address\">\n"
              "<input type=\"password\" name=\"password\">\n"
              "<input type=\"submit\" value=\"Sign in\">\n</form>\n"
              "<p>Roundcube build " + token(rng, 5) + "</p>\n</div>");
}

std::string censorship_page(std::string_view country_code,
                            std::uint64_t authority_variant) {
  Rng rng(util::fnv1a(country_code) ^ util::mix64(authority_variant));
  const bool court = rng.chance(0.5);
  std::string body =
      "<div class=\"blocked\">\n<img src=\"/static/emblem-" +
      std::string(country_code) +
      ".png\" alt=\"state emblem\">\n<h1>Access to this website has been "
      "restricted</h1>\n<p>This website has been blocked by the order of "
      "the " +
      std::string(country_code) +
      (court ? " court" : " telecommunications authority") +
      " pursuant to decision no. " + std::to_string(1000 + rng.below(9000)) +
      "/" + std::to_string(2013 + rng.below(3)) +
      ".</p>\n<p>If you believe this decision is erroneous, contact the "
      "national information office.</p>\n</div>";
  return page("Restricted - " + std::string(country_code), "", body);
}

std::string blocking_page(std::uint64_t provider_kind, std::uint64_t variant,
                          std::string_view blocked_domain) {
  Rng rng(util::mix64(provider_kind * 131 + variant));
  std::string_view provider;
  std::string_view reason;
  switch (provider_kind % 3) {
    case 0:
      provider = "SafeHome Parental Control";
      reason = "is categorized as unsuitable content";
      break;
    case 1:
      provider = "ISP SecureNet Shield";
      reason = "has been blocked by your Internet provider's security service";
      break;
    default:
      provider = "SinkholeWatch Security";
      reason = "is a known malware distribution domain and has been blocked";
      break;
  }
  return page(
      std::string(provider) + " - Blocked", "",
      "<div class=\"block-notice\">\n<h1>" + std::string(provider) +
          "</h1>\n<p>The domain <b>" + std::string(blocked_domain) + "</b> " +
          std::string(reason) + ".</p>\n<p>Reference: " + token(rng, 8) +
          "</p>\n<a href=\"http://support.blockpage.example/unblock\">Request "
          "a review</a>\n</div>");
}

std::string parking_page(std::string_view domain, std::uint64_t provider) {
  Rng rng(util::fnv1a(domain) ^ util::mix64(provider * 7));
  std::string body = "<div class=\"parked\">\n<h1>" + std::string(domain) +
                     "</h1>\n<p>This domain may be for sale. Buy this domain "
                     "now!</p>\n<ul class=\"related\">\n";
  static constexpr std::string_view kTopics[] = {
      "Insurance Quotes", "Cheap Flights",   "Online Degrees",
      "Credit Repair",    "Web Hosting",     "Luxury Watches",
      "Car Rentals",      "Diet Plans",
  };
  for (int i = 0; i < 6; ++i) {
    const auto topic = kTopics[rng.below(std::size(kTopics))];
    body += "<li><a href=\"http://feed.parking-provider" +
            std::to_string(provider % 3 + 1) + ".example/click?kw=" +
            token(rng, 6) + "\">" + std::string(topic) + "</a></li>\n";
  }
  body += "</ul>\n<p class=\"small\">Provided by parking-provider" +
          std::to_string(provider % 3 + 1) + ".example</p>\n</div>";
  return page(std::string(domain) + " - parked domain", "", body);
}

std::string search_page(std::uint64_t provider, std::string_view query,
                        bool with_injected_ads) {
  Rng rng(util::mix64(provider * 1013) ^ util::fnv1a(query));
  std::string body =
      "<div class=\"search\">\n<form action=\"/find\" method=\"get\">\n"
      "<input type=\"text\" name=\"q\" value=\"" +
      std::string(query) +
      "\">\n<input type=\"submit\" value=\"Search\">\n</form>\n";
  if (with_injected_ads) {
    body += "<div class=\"ads-top\"><a href=\"http://clk.adnet-rewrite"
            ".example/buy?id=" + token(rng, 7) +
            "\"><img src=\"http://clk.adnet-rewrite.example/banner" +
            std::to_string(rng.below(4)) + ".gif\"></a></div>\n";
  }
  body += "<h2>Results for \"" + std::string(query) + "\"</h2>\n<ol>\n";
  for (int i = 0; i < 8; ++i) {
    body += "<li><a href=\"http://result-" + token(rng, 5) +
            ".example/page\">Did you mean " + std::string(query) + "? Result " +
            std::to_string(i + 1) + "</a></li>\n";
  }
  body += "</ol>\n</div>";
  return page("Search: " + std::string(query), "", body);
}

std::string phishing_paypal(std::uint64_t variant) {
  Rng rng(util::mix64(variant ^ 0x9a1ULL));
  std::string body = "<div class=\"pp\">\n";
  // The kit reproduces the target site as 46 image tiles (§4.3).
  for (int i = 0; i < 46; ++i) {
    body += "<img src=\"images/pp_" + std::to_string(i) +
            ".gif\" border=\"0\">\n";
  }
  body += "<form action=\"werudlogin.php\" method=\"post\" name=\"login\">\n"
          "<input type=\"text\" name=\"login_email\">\n"
          "<input type=\"password\" name=\"login_password\">\n"
          "<input type=\"submit\" value=\"Log In\">\n"
          "<input type=\"hidden\" name=\"browser_name\" value=\"" +
          token(rng, 6) + "\">\n</form>\n</div>";
  return page("PayPal - Welcome", "", body);
}

std::string phishing_bank_it(std::uint64_t variant) {
  Rng rng(util::mix64(variant ^ 0xba2c4ULL));
  return page(
      "Banca Online - Accesso", "",
      "<div class=\"banca\">\n<img src=\"img/logo_banca.png\">\n"
      "<h2>Area Clienti</h2>\n"
      "<form action=\"verifica" + std::to_string(rng.below(10)) +
          ".php\" method=\"post\">\n"
          "<p>Codice titolare: <input type=\"text\" name=\"codice\"></p>\n"
          "<p>PIN: <input type=\"password\" name=\"pin\"></p>\n"
          "<input type=\"submit\" value=\"Accedi\">\n</form>\n"
          "<p class=\"note\">Per la tua sicurezza verifica i tuoi dati.</p>\n"
          "</div>");
}

std::string malware_update_page(bool flash, std::uint64_t variant) {
  Rng rng(util::mix64(variant ^ 0xf1a5ULL));
  const std::string product = flash ? "Adobe Flash Player" : "Java Runtime";
  const std::string file = flash ? "flash_update_setup.exe"
                                 : "java_update_installer.exe";
  return page(
      product + " Update", "",
      "<div class=\"update-page\">\n<img src=\"logo_" +
          std::string(flash ? "flash" : "java") +
          ".png\">\n<h1>Your " + product +
          " is out of date!</h1>\n<p>A critical security update is required "
          "to continue. Install the update now.</p>\n"
          "<a class=\"btn\" href=\"download/" + file + "?tk=" +
          token(rng, 10) +
          "\">Install update</a>\n<p class=\"fine\">By clicking you agree to "
          "the license terms.</p>\n</div>");
}

std::string tamper_ads(std::string_view original_html, AdTamper mode,
                       std::uint64_t variant) {
  Rng rng(util::mix64(variant ^ 0xadULL));
  std::string html(original_html);
  switch (mode) {
    case AdTamper::kInjectBanner: {
      const std::string banner =
          "<div class=\"inj\"><a href=\"http://clk.adnet-rewrite.example/"
          "go?id=" + token(rng, 8) +
          "\"><img src=\"http://clk.adnet-rewrite.example/b" +
          std::to_string(rng.below(8)) + ".gif\"></a></div>\n</body>";
      return util::replace_all(html, "</body>", banner);
    }
    case AdTamper::kSuspiciousJs: {
      const std::string script =
          "<script>var _0x" + token(rng, 4) +
          "=['\\x68\\x74\\x74\\x70'];(function(){document.write('<img "
          "src=http://sj." + token(rng, 5) +
          ".example/p.gif>');})();</script>\n</body>";
      return util::replace_all(html, "</body>", script);
    }
    case AdTamper::kEmptyPlaceholder: {
      // Blank every ad slot: scripts from the ad domain become empty divs.
      std::string out = util::replace_all(
          html, "<div class=\"slot\"", "<div class=\"slot blocked-empty\"");
      return util::replace_all(out, "/js/delivery", "/js/noop");
    }
  }
  return html;
}

}  // namespace dnswild::http
