// HTTP/1.1 request/response text model.
//
// The acquisition step (§3.5) impersonates a Firefox 28.0 client and speaks
// plain HTTP text to the simulated web servers; requests and responses are
// real header/body byte strings so the analysis code paths (status
// classification, redirect following, content clustering) work on the same
// material they would against live servers.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dnswild::http {

// The User-Agent the paper's crawler sends (§3.5).
inline constexpr std::string_view kUserAgent =
    "Mozilla/5.0 (X11; Linux x86_64; rv:28.0) Gecko/20100101 Firefox/28.0";

struct HttpRequest {
  std::string method = "GET";
  std::string path = "/";
  std::string host;

  std::string serialize() const;
  static std::optional<HttpRequest> parse(std::string_view text);
};

struct HttpResponse {
  int status = 200;
  std::string status_text = "OK";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // First header with the given (case-insensitive) name, or nullptr.
  const std::string* header(std::string_view name) const noexcept;

  bool is_redirect() const noexcept {
    return status == 301 || status == 302 || status == 303 || status == 307;
  }
  bool is_error() const noexcept { return status >= 400; }

  std::string serialize() const;
  static std::optional<HttpResponse> parse(std::string_view text);

  static HttpResponse ok(std::string body);
  static HttpResponse redirect(std::string location, int status = 302);
  static HttpResponse error(int status);
};

// Reason phrase for common status codes ("OK", "Not Found", ...).
std::string_view status_text_for(int status) noexcept;

}  // namespace dnswild::http
