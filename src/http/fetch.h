// Client-side data acquisition (§3.5).
//
// Mimics the study's crawler: issues HTTP requests against the IP addresses
// a resolver returned while presenting the original domain in the Host
// header, follows redirections and frames at most twice (re-resolving new
// (sub)domains at the same suspicious resolver via a caller-supplied
// callback), performs paired SNI / non-SNI TLS handshakes for the
// certificate prefilter rule (§3.4), and grabs mail banners for the MX set.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "http/page.h"
#include "net/retry.h"
#include "net/world.h"

namespace dnswild::http {

struct Url {
  std::string scheme = "http";
  std::string host;
  std::string path = "/";
};

// Parses absolute http(s) URLs; relative references resolve against `base`.
std::optional<Url> parse_url(std::string_view text,
                             const Url* base = nullptr);

// Resolves a hostname to an address the way the study does during
// acquisition: at the same resolver that produced the tuple under test.
using ResolveFn =
    std::function<std::optional<net::Ipv4>(const std::string& host)>;

struct FetchResult {
  bool connected = false;              // TCP connect succeeded
  std::optional<HttpResponse> response;  // last response received
  std::string body;                    // final body (frames appended)
  std::string final_host;              // host after redirects
  int status = 0;
  int hops = 0;  // redirect/frame hops taken (max 2)
};

class Fetcher {
 public:
  // Acquisition telemetry lands in the world's registry ("http.fetch.*"),
  // so every crawler over one world shares the same tallies. `retry`
  // governs TCP connects (re-dials with a bumped seq face independent SYN
  // loss); an unset policy seed defaults from the client address.
  Fetcher(net::World& world, net::Ipv4 client_ip, net::RetryPolicy retry = {})
      : world_(world),
        client_ip_(client_ip),
        retrier_(world, retry.seeded(client_ip.value() | 0x1ULL << 32)),
        pages_(&world.metrics().counter("http.fetch.pages")),
        pages_connected_(
            &world.metrics().counter("http.fetch.pages_connected")),
        redirect_hops_(&world.metrics().counter("http.fetch.redirect_hops")),
        tls_handshakes_(
            &world.metrics().counter("http.fetch.tls_handshakes")),
        certificates_(&world.metrics().counter("http.fetch.certificates")),
        banner_probes_(&world.metrics().counter("http.fetch.banner_probes")),
        banners_(&world.metrics().counter("http.fetch.banners")) {}

  // Single GET of `path` at ip, Host: host.
  std::optional<HttpResponse> get(net::Ipv4 ip, std::string_view host,
                                  std::string_view path = "/");

  // Full page acquisition with redirect/meta-refresh/iframe following
  // (two hops at most, per §3.5). New hosts are resolved via `resolve`;
  // same-host targets reuse `ip`.
  FetchResult fetch_page(net::Ipv4 ip, std::string host,
                         const ResolveFn& resolve);

  // TLS handshake on :443; nullopt when the port is closed or not TLS.
  std::optional<net::Certificate> tls_certificate(
      net::Ipv4 ip, const std::optional<std::string>& sni);

  // Connect-time banner on an arbitrary port (FTP/SSH/Telnet/mail).
  std::optional<std::string> banner(net::Ipv4 ip, std::uint16_t port);

 private:
  net::World& world_;
  net::Ipv4 client_ip_;
  net::Retrier retrier_;
  obs::Counter* pages_;
  obs::Counter* pages_connected_;
  obs::Counter* redirect_hops_;
  obs::Counter* tls_handshakes_;
  obs::Counter* certificates_;
  obs::Counter* banner_probes_;
  obs::Counter* banners_;
};

}  // namespace dnswild::http
