#include "http/html.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>

#include "util/strings.h"

namespace dnswild::http {

namespace {

struct TagRegistry {
  std::shared_mutex mutex;
  std::unordered_map<std::string, std::uint16_t> ids;
  std::vector<std::string> names;
};

TagRegistry& registry() {
  static TagRegistry instance;
  return instance;
}

}  // namespace

std::uint16_t tag_id(std::string_view name) {
  auto& reg = registry();
  const std::string key = util::lower(name);
  {
    // Read-mostly: the tag vocabulary saturates after the first few pages.
    const std::shared_lock<std::shared_mutex> lock(reg.mutex);
    const auto it = reg.ids.find(key);
    if (it != reg.ids.end()) return it->second;
  }
  const std::unique_lock<std::shared_mutex> lock(reg.mutex);
  const auto it = reg.ids.find(key);  // re-check: raced with another writer
  if (it != reg.ids.end()) return it->second;
  const auto id = static_cast<std::uint16_t>(reg.names.size());
  reg.ids.emplace(key, id);
  reg.names.push_back(key);
  return id;
}

std::string_view tag_name(std::uint16_t id) {
  auto& reg = registry();
  const std::shared_lock<std::shared_mutex> lock(reg.mutex);
  // names never shrinks and strings are stable (vector growth moves the
  // string objects, not their heap buffers), so the view stays valid.
  const auto& names = reg.names;
  return id < names.size() ? std::string_view(names[id])
                           : std::string_view("?");
}

const std::string* TagToken::attr(std::string_view key) const noexcept {
  for (const auto& [name, value] : attrs) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::vector<TagToken> tokenize(std::string_view html) {
  std::vector<TagToken> tokens;
  std::size_t pos = 0;
  while (pos < html.size()) {
    const std::size_t open = html.find('<', pos);
    if (open == std::string_view::npos) break;
    if (html.substr(open, 4) == "<!--") {
      const std::size_t end = html.find("-->", open + 4);
      pos = end == std::string_view::npos ? html.size() : end + 3;
      continue;
    }
    std::size_t cursor = open + 1;
    TagToken token;
    if (cursor < html.size() && html[cursor] == '/') {
      token.closing = true;
      ++cursor;
    }
    // Tag name.
    const std::size_t name_start = cursor;
    while (cursor < html.size() &&
           (util::is_alpha_ascii(html[cursor]) ||
            util::is_digit_ascii(html[cursor]) || html[cursor] == '!')) {
      ++cursor;
    }
    if (cursor == name_start) {  // "<" not starting a tag
      pos = open + 1;
      continue;
    }
    token.name = util::lower(html.substr(name_start, cursor - name_start));

    // Attributes until '>'.
    while (cursor < html.size() && html[cursor] != '>') {
      while (cursor < html.size() &&
             (html[cursor] == ' ' || html[cursor] == '\t' ||
              html[cursor] == '\n' || html[cursor] == '\r' ||
              html[cursor] == '/')) {
        ++cursor;
      }
      if (cursor >= html.size() || html[cursor] == '>') break;
      const std::size_t attr_start = cursor;
      while (cursor < html.size() && html[cursor] != '=' &&
             html[cursor] != '>' && html[cursor] != ' ' &&
             html[cursor] != '\t' && html[cursor] != '\n' &&
             html[cursor] != '/') {
        ++cursor;
      }
      std::string attr_name =
          util::lower(html.substr(attr_start, cursor - attr_start));
      std::string attr_value;
      if (cursor < html.size() && html[cursor] == '=') {
        ++cursor;
        if (cursor < html.size() &&
            (html[cursor] == '"' || html[cursor] == '\'')) {
          const char quote = html[cursor];
          const std::size_t value_start = ++cursor;
          const std::size_t value_end = html.find(quote, value_start);
          if (value_end == std::string_view::npos) {
            attr_value = std::string(html.substr(value_start));
            cursor = html.size();
          } else {
            attr_value =
                std::string(html.substr(value_start, value_end - value_start));
            cursor = value_end + 1;
          }
        } else {
          const std::size_t value_start = cursor;
          while (cursor < html.size() && html[cursor] != ' ' &&
                 html[cursor] != '>' && html[cursor] != '\t' &&
                 html[cursor] != '\n') {
            ++cursor;
          }
          attr_value =
              std::string(html.substr(value_start, cursor - value_start));
        }
      }
      if (!attr_name.empty()) {
        token.attrs.emplace_back(std::move(attr_name), std::move(attr_value));
      }
    }
    if (cursor < html.size()) ++cursor;  // consume '>'
    pos = cursor;
    tokens.push_back(std::move(token));
  }
  return tokens;
}

PageFeatures extract_features(std::string_view html) {
  PageFeatures features;
  features.body_length = html.size();

  for (const TagToken& token : tokenize(html)) {
    if (token.closing) continue;
    const std::uint16_t id = tag_id(token.name);
    features.tag_sequence.push_back(id);
    features.tag_counts[id] += 1;
    if (const auto* src = token.attr("src")) {
      if (!src->empty()) features.resources.push_back(*src);
    }
    if (const auto* href = token.attr("href")) {
      if (!href->empty()) features.links.push_back(*href);
    }
  }

  // Title and script bodies come from a lower-cased raw-text scan.
  {
    std::size_t start = 0;
    const std::string lowered = util::lower(html);
    const std::size_t open = lowered.find("<title");
    if (open != std::string::npos) {
      start = lowered.find('>', open);
      const std::size_t close = lowered.find("</title", open);
      if (start != std::string::npos && close != std::string::npos &&
          close > start) {
        features.title =
            std::string(util::trim(html.substr(start + 1, close - start - 1)));
      }
    }
    // Inline scripts: concatenate every <script>...</script> body.
    std::size_t cursor = 0;
    while (true) {
      const std::size_t script_open = lowered.find("<script", cursor);
      if (script_open == std::string::npos) break;
      const std::size_t body_start = lowered.find('>', script_open);
      if (body_start == std::string::npos) break;
      const std::size_t script_close = lowered.find("</script", body_start);
      if (script_close == std::string::npos) break;
      features.scripts.append(
          html.substr(body_start + 1, script_close - body_start - 1));
      cursor = script_close + 8;
    }
  }

  const auto sort_unique = [](std::vector<std::string>& values) {
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
  };
  sort_unique(features.resources);
  sort_unique(features.links);
  return features;
}

std::vector<std::string> iframe_sources(std::string_view html) {
  std::vector<std::string> sources;
  for (const TagToken& token : tokenize(html)) {
    if (token.closing) continue;
    if (token.name != "iframe" && token.name != "frame") continue;
    if (const auto* src = token.attr("src")) {
      if (!src->empty()) sources.push_back(*src);
    }
  }
  return sources;
}

std::string meta_refresh_target(std::string_view html) {
  for (const TagToken& token : tokenize(html)) {
    if (token.closing || token.name != "meta") continue;
    const auto* equiv = token.attr("http-equiv");
    if (!equiv || !util::iequals(*equiv, "refresh")) continue;
    const auto* content = token.attr("content");
    if (!content) continue;
    const std::size_t url_pos = util::lower(*content).find("url=");
    if (url_pos == std::string::npos) continue;
    return std::string(util::trim(std::string_view(*content).substr(url_pos + 4)));
  }
  return {};
}

}  // namespace dnswild::http
