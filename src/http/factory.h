// Generators for every class of web content the study encounters.
//
// These pages substitute for the live Internet's content corpus (DESIGN.md
// §2): legitimate sites per category, server error pages, router/camera
// login pages, captive portals, censorship landing pages, blocking pages,
// parking lots, search portals, phishing kits (including the PayPal page
// §4.3 describes: 46 <img> tags plus a POST form to a .php), malware
// "update" pages, and ad-injection rewrites. Every generator is a pure
// function of its parameters, so a given simulated server always serves the
// same bytes; `variant` seeds intra-class structural diversity and
// `dynamic_nonce` adds the per-fetch churn real dynamic pages exhibit
// (which the clustering features must tolerate, §3.6).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dnswild::http {

enum class SiteCategory {
  kAds,
  kAdult,
  kAlexa,
  kAntivirus,
  kBanking,
  kDating,
  kFilesharing,
  kGambling,
  kMalware,
  kMail,
  kNx,
  kTracking,
  kMisc,
  kGroundTruth,
};

std::string_view site_category_name(SiteCategory category) noexcept;

// --- legitimate content --------------------------------------------------

// The canonical representation of `domain`, with category-typical structure
// and mild per-fetch dynamics. Different variants of the same domain model
// CDN edge / A-B differences.
std::string legit_site(std::string_view domain, SiteCategory category,
                       std::uint64_t variant, std::uint64_t dynamic_nonce);

// --- benign redirection targets -------------------------------------------

std::string error_page(int status, std::uint64_t server_flavor);
std::string router_login(std::uint64_t brand, std::uint64_t variant);
std::string camera_login(std::uint64_t variant);
std::string captive_portal(std::uint64_t operator_kind, std::uint64_t variant);
std::string webmail_login(std::uint64_t variant);

// --- policy pages ----------------------------------------------------------

// Landing page of a national censorship system. Carries the "blocked by the
// order of ... court/authority" fragment the labeler keys on (§4.2).
std::string censorship_page(std::string_view country_code,
                            std::uint64_t authority_variant);

// Landing page of a parental-control / ISP-security / AV blocking product.
std::string blocking_page(std::uint64_t provider_kind, std::uint64_t variant,
                          std::string_view blocked_domain);

// --- monetization ------------------------------------------------------------

std::string parking_page(std::string_view domain, std::uint64_t provider);
std::string search_page(std::uint64_t provider, std::string_view query,
                        bool with_injected_ads);

// --- malicious content -------------------------------------------------------

// PayPal phishing kit: body of 46 <img> tiles reproducing the site plus an
// HTML form POSTing credentials to a .php endpoint (§4.3).
std::string phishing_paypal(std::uint64_t variant);
// Mimicry of an Italian banking site (two hosts in the paper: BR and RU).
std::string phishing_bank_it(std::uint64_t variant);
// Fake Adobe Flash / Java update page linking a malicious executable.
std::string malware_update_page(bool flash, std::uint64_t variant);

// --- ad manipulation ----------------------------------------------------------

enum class AdTamper {
  kInjectBanner,     // banners inserted into the HTML content
  kSuspiciousJs,     // foreign JavaScript added
  kEmptyPlaceholder, // ad slots blanked out (ad blocking, §4.3)
};

// Rewrites a legitimate page with the requested ad manipulation.
std::string tamper_ads(std::string_view original_html, AdTamper mode,
                       std::uint64_t variant);

}  // namespace dnswild::http
