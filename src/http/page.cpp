#include "http/page.h"

#include <charconv>

#include "util/strings.h"

namespace dnswild::http {

std::string HttpRequest::serialize() const {
  std::string out;
  out += method;
  out += ' ';
  out += path;
  out += " HTTP/1.1\r\nHost: ";
  out += host;
  out += "\r\nUser-Agent: ";
  out += kUserAgent;
  out += "\r\nAccept: text/html\r\nConnection: close\r\n\r\n";
  return out;
}

std::optional<HttpRequest> HttpRequest::parse(std::string_view text) {
  const std::size_t line_end = text.find("\r\n");
  if (line_end == std::string_view::npos) return std::nullopt;
  const auto parts = util::split(text.substr(0, line_end), ' ');
  if (parts.size() != 3 || !util::starts_with(parts[2], "HTTP/")) {
    return std::nullopt;
  }
  HttpRequest request;
  request.method = parts[0];
  request.path = parts[1];
  std::size_t pos = line_end + 2;
  while (pos < text.size()) {
    const std::size_t next = text.find("\r\n", pos);
    if (next == std::string_view::npos || next == pos) break;
    const std::string_view line = text.substr(pos, next - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string_view::npos &&
        util::iequals(line.substr(0, colon), "host")) {
      request.host = std::string(util::trim(line.substr(colon + 1)));
    }
    pos = next + 2;
  }
  return request;
}

const std::string* HttpResponse::header(std::string_view name) const noexcept {
  for (const auto& [key, value] : headers) {
    if (util::iequals(key, name)) return &value;
  }
  return nullptr;
}

std::string HttpResponse::serialize() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + status_text +
                    "\r\n";
  bool has_content_type = false;
  for (const auto& [key, value] : headers) {
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
    if (util::iequals(key, "content-type")) has_content_type = true;
  }
  if (!has_content_type) out += "Content-Type: text/html; charset=utf-8\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  out += body;
  return out;
}

std::optional<HttpResponse> HttpResponse::parse(std::string_view text) {
  if (!util::starts_with(text, "HTTP/")) return std::nullopt;
  const std::size_t line_end = text.find("\r\n");
  if (line_end == std::string_view::npos) return std::nullopt;
  const std::string_view status_line = text.substr(0, line_end);
  const std::size_t first_space = status_line.find(' ');
  if (first_space == std::string_view::npos) return std::nullopt;
  HttpResponse response;
  const std::string_view code_text =
      status_line.substr(first_space + 1, 3);
  const auto [ptr, ec] = std::from_chars(
      code_text.data(), code_text.data() + code_text.size(), response.status);
  if (ec != std::errc{} || ptr != code_text.data() + code_text.size()) {
    return std::nullopt;
  }
  if (first_space + 5 <= status_line.size()) {
    response.status_text = std::string(status_line.substr(first_space + 5));
  }
  std::size_t pos = line_end + 2;
  while (pos < text.size()) {
    const std::size_t next = text.find("\r\n", pos);
    if (next == std::string_view::npos) return std::nullopt;  // truncated
    if (next == pos) {  // blank line: body follows
      response.body = std::string(text.substr(next + 2));
      return response;
    }
    const std::string_view line = text.substr(pos, next - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      response.headers.emplace_back(
          std::string(line.substr(0, colon)),
          std::string(util::trim(line.substr(colon + 1))));
    }
    pos = next + 2;
  }
  return response;  // header-only response without body separator
}

HttpResponse HttpResponse::ok(std::string body) {
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::redirect(std::string location, int status) {
  HttpResponse response;
  response.status = status;
  response.status_text = std::string(status_text_for(status));
  response.headers.emplace_back("Location", std::move(location));
  response.body = "<html><head><title>Redirect</title></head>"
                  "<body>Moved</body></html>";
  return response;
}

HttpResponse HttpResponse::error(int status) {
  HttpResponse response;
  response.status = status;
  response.status_text = std::string(status_text_for(status));
  response.body = "<html><head><title>" + std::to_string(status) + " " +
                  response.status_text +
                  "</title></head><body><h1>" + std::to_string(status) + " " +
                  response.status_text + "</h1></body></html>";
  return response;
}

std::string_view status_text_for(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 303: return "See Other";
    case 307: return "Temporary Redirect";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 410: return "Gone";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

}  // namespace dnswild::http
