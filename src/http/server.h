// TCP services for simulated hosts: web servers (virtual-hosted, optionally
// TLS), transparent HTTP(S) proxies, and greeting-banner services for the
// protocols the device fingerprinting step connects to (FTP, SSH, Telnet)
// and the MX analysis probes (SMTP, IMAP, POP3) — §2.4, §3.5, §4.3.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "http/page.h"
#include "net/services.h"

namespace dnswild::http {

// Produces the response for one parsed request on a given virtual host.
using Handler = std::function<HttpResponse(const HttpRequest&)>;

// Convenience: handler serving a fixed body with status 200.
Handler serve_body(std::string body);
// Handler serving a fixed, fully-specified response.
Handler serve_response(HttpResponse response);

class WebServer : public net::TcpService {
 public:
  // Adds a virtual host (host matched case-insensitively, no port).
  void add_vhost(std::string host, Handler handler,
                 std::optional<net::Certificate> cert = std::nullopt);

  // Handler used when no vhost matches (captive portals and router logins
  // answer every Host the same way). Default: a 404 error page.
  void set_default_handler(Handler handler);
  // Certificate served without SNI or for unknown SNI; nullopt disables TLS
  // for such handshakes.
  void set_default_certificate(net::Certificate cert);

  std::string respond(std::string_view request) override;
  const net::Certificate* certificate(
      const std::optional<std::string>& sni) const override;

 private:
  struct Vhost {
    Handler handler;
    std::optional<net::Certificate> cert;
  };
  std::unordered_map<std::string, Vhost> vhosts_;
  Handler default_handler_;
  std::optional<net::Certificate> default_cert_;
};

// Oracle giving the legitimate content of a (host, request) pair; used by
// proxies to relay the original site (§4.3 "Transparent Proxies").
using ContentOracle =
    std::function<std::optional<HttpResponse>(const HttpRequest&)>;
// Oracle giving the legitimate certificate of a host, if it serves TLS.
using CertOracle =
    std::function<std::optional<net::Certificate>(const std::string& host)>;

class ProxyServer : public net::TcpService {
 public:
  // tls_passthrough: proxy forwards valid certificate material (the
  // "proxies that support TLS and provide the original certificate" group);
  // otherwise the proxy is HTTP-only and TLS handshakes fail.
  ProxyServer(ContentOracle content, CertOracle certs, bool tls_passthrough);

  std::string respond(std::string_view request) override;
  const net::Certificate* certificate(
      const std::optional<std::string>& sni) const override;

 private:
  ContentOracle content_;
  CertOracle certs_;
  bool tls_passthrough_;
  mutable net::Certificate cert_buffer_;  // storage for the returned pointer
};

// Connect-time banner (FTP/SSH/Telnet/SMTP/IMAP/POP3). The fingerprinting
// scanner reads only the greeting.
class BannerService : public net::TcpService {
 public:
  explicit BannerService(std::string banner) : banner_(std::move(banner)) {}
  std::string greeting() const override { return banner_; }
  bool reconstructible() const override { return true; }  // no mutable state

 private:
  std::string banner_;
};

}  // namespace dnswild::http
