#include "http/server.h"

#include "util/strings.h"

namespace dnswild::http {

Handler serve_body(std::string body) {
  return [body = std::move(body)](const HttpRequest&) {
    return HttpResponse::ok(body);
  };
}

Handler serve_response(HttpResponse response) {
  return [response = std::move(response)](const HttpRequest&) {
    return response;
  };
}

void WebServer::add_vhost(std::string host, Handler handler,
                          std::optional<net::Certificate> cert) {
  vhosts_[util::lower(host)] = Vhost{std::move(handler), std::move(cert)};
}

void WebServer::set_default_handler(Handler handler) {
  default_handler_ = std::move(handler);
}

void WebServer::set_default_certificate(net::Certificate cert) {
  default_cert_ = std::move(cert);
}

std::string WebServer::respond(std::string_view request) {
  const auto parsed = HttpRequest::parse(request);
  if (!parsed) return HttpResponse::error(400).serialize();
  const auto it = vhosts_.find(util::lower(parsed->host));
  if (it != vhosts_.end()) return it->second.handler(*parsed).serialize();
  if (default_handler_) return default_handler_(*parsed).serialize();
  return HttpResponse::error(404).serialize();
}

const net::Certificate* WebServer::certificate(
    const std::optional<std::string>& sni) const {
  if (sni) {
    const auto it = vhosts_.find(util::lower(*sni));
    if (it != vhosts_.end() && it->second.cert) return &*it->second.cert;
  }
  return default_cert_ ? &*default_cert_ : nullptr;
}

ProxyServer::ProxyServer(ContentOracle content, CertOracle certs,
                         bool tls_passthrough)
    : content_(std::move(content)),
      certs_(std::move(certs)),
      tls_passthrough_(tls_passthrough) {}

std::string ProxyServer::respond(std::string_view request) {
  const auto parsed = HttpRequest::parse(request);
  if (!parsed) return HttpResponse::error(400).serialize();
  if (auto original = content_(*parsed)) return original->serialize();
  return HttpResponse::error(502).serialize();
}

const net::Certificate* ProxyServer::certificate(
    const std::optional<std::string>& sni) const {
  if (!tls_passthrough_ || !sni) return nullptr;
  auto cert = certs_(*sni);
  if (!cert) return nullptr;
  cert_buffer_ = *std::move(cert);
  return &cert_buffer_;
}

}  // namespace dnswild::http
