// Agglomerative hierarchical clustering with average linkage (§3.6).
//
// Implemented with the nearest-neighbour-chain algorithm over a
// Lance–Williams update, which is exact for average linkage (a reducible
// linkage) and runs in O(n^2) time / O(n^2) memory on a materialized
// distance matrix. The study clusters deduplicated page representations,
// so n stays in the hundreds-to-thousands range.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace dnswild::cluster {

// One agglomeration step: clusters `left` and `right` merged into `parent`
// at the given average-linkage distance. Leaves are 0..n-1; parents are
// numbered n, n+1, ... in merge order.
struct Merge {
  int left = 0;
  int right = 0;
  int parent = 0;
  double distance = 0.0;
};

class Dendrogram {
 public:
  Dendrogram(std::size_t leaf_count, std::vector<Merge> merges);

  std::size_t leaf_count() const noexcept { return leaf_count_; }
  const std::vector<Merge>& merges() const noexcept { return merges_; }

  // Flat clustering: cut every merge with distance <= threshold. Returns a
  // label per leaf; labels are compact and ordered by first occurrence.
  std::vector<int> cut(double threshold) const;

  // Number of clusters a given cut produces.
  std::size_t cluster_count(double threshold) const;

  // Multi-line text rendering of the merge tree (for analyst inspection,
  // the "dendrograms" the paper mentions).
  std::string to_text(const std::vector<std::string>& leaf_names = {}) const;

 private:
  std::size_t leaf_count_;
  std::vector<Merge> merges_;  // sorted by merge distance ascending
};

// Pairwise distance callback over item indices; must be symmetric with zero
// diagonal.
using DistanceFn = std::function<double(std::size_t, std::size_t)>;

// Exact average-linkage HAC. Throws std::invalid_argument for n == 0 and
// std::length_error when the n x n matrix would exceed `max_items`^2.
Dendrogram hac_average_linkage(std::size_t n, const DistanceFn& distance,
                               std::size_t max_items = 20000);

}  // namespace dnswild::cluster
