// Agglomerative hierarchical clustering with average linkage (§3.6).
//
// Implemented with the nearest-neighbour-chain algorithm over a
// Lance–Williams update, which is exact for average linkage (a reducible
// linkage) and runs in O(n^2) time on a materialized distance matrix. The
// matrix uses the condensed upper-triangular layout (condensed.h), so peak
// matrix memory is n(n-1)/2 doubles — half of the former square layout at
// equal n. Matrix materialization is the dominant cost (each cell pays the
// full page distance) and is parallelized over scan::ParallelExecutor with
// deterministic contiguous block sharding of the flat cell range: results
// are byte-identical for every thread count, the same contract as the scan
// engine. The NN-chain itself is inherently sequential and stays serial.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dnswild::scan {
class ParallelExecutor;
}

namespace dnswild::cluster {

// One agglomeration step: clusters `left` and `right` merged into `parent`
// at the given average-linkage distance. Leaves are 0..n-1; parents are
// numbered n, n+1, ... in merge order.
struct Merge {
  int left = 0;
  int right = 0;
  int parent = 0;
  double distance = 0.0;
};

class Dendrogram {
 public:
  Dendrogram(std::size_t leaf_count, std::vector<Merge> merges);

  std::size_t leaf_count() const noexcept { return leaf_count_; }
  const std::vector<Merge>& merges() const noexcept { return merges_; }

  // Flat clustering: cut every merge with distance <= threshold. Returns a
  // label per leaf; labels are compact and ordered by first occurrence.
  std::vector<int> cut(double threshold) const;

  // Number of clusters a given cut produces. O(log n): every merge joins
  // two distinct live clusters, so the count is leaves minus applied
  // merges — no union-find pass needed.
  std::size_t cluster_count(double threshold) const;

  // Multi-line text rendering of the merge tree (for analyst inspection,
  // the "dendrograms" the paper mentions).
  std::string to_text(const std::vector<std::string>& leaf_names = {}) const;

 private:
  std::size_t leaf_count_;
  std::vector<Merge> merges_;  // sorted by merge distance ascending
};

// Pairwise distance callback over item indices; must be symmetric with zero
// diagonal. Called concurrently from the matrix-fill workers, so it must be
// safe to invoke from multiple threads on distinct (i, j) pairs.
using DistanceFn = std::function<double(std::size_t, std::size_t)>;

struct HacOptions {
  // Safety bound on n; the condensed matrix holds n(n-1)/2 doubles.
  std::size_t max_items = 20000;
  // Matrix-fill workers; 0 selects hardware_concurrency, 1 runs inline.
  // Ignored when `executor` is set.
  unsigned threads = 1;
  // Optional shared worker pool (e.g. the classifier reuses one pool for
  // feature extraction and the matrix fill). Not owned.
  scan::ParallelExecutor* executor = nullptr;
  // Optional registry for "cluster.hac.*" counters (runs, items, pair
  // distances, merges, NaN clamps). Not owned.
  obs::Registry* registry = nullptr;
};

// Fill-stage statistics the caller can inspect.
struct HacStats {
  std::size_t items = 0;           // n
  std::size_t pair_distances = 0;  // matrix cells computed: n(n-1)/2
  std::size_t nan_distances = 0;   // NaN cells clamped to 1.0
  std::size_t matrix_bytes = 0;    // peak condensed-matrix footprint
};

// Exact average-linkage HAC. Throws std::invalid_argument for n == 0 and
// std::length_error when n exceeds options.max_items. A distance() result
// of NaN would silently corrupt the NN-chain, so NaN cells are clamped to
// 1.0 and counted in stats->nan_distances.
Dendrogram hac_average_linkage(std::size_t n, const DistanceFn& distance,
                               const HacOptions& options,
                               HacStats* stats = nullptr);

// Back-compatible serial form.
Dendrogram hac_average_linkage(std::size_t n, const DistanceFn& distance,
                               std::size_t max_items = 20000);

}  // namespace dnswild::cluster
