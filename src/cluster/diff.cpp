#include "cluster/diff.h"

#include <algorithm>

#include "cluster/distance.h"

namespace dnswild::cluster {

std::size_t TagDelta::total_changes() const noexcept {
  std::size_t total = 0;
  for (const auto& [tag, count] : added) total += static_cast<std::size_t>(count);
  for (const auto& [tag, count] : removed) {
    total += static_cast<std::size_t>(count);
  }
  return total;
}

TagDelta tag_diff(const std::vector<std::uint16_t>& reference,
                  const std::vector<std::uint16_t>& unknown) {
  // Hunt–Szymanski would be faster on huge inputs; plain DP LCS is fine for
  // page-sized tag sequences and is exact.
  const std::size_t n = reference.size();
  const std::size_t m = unknown.size();
  std::vector<std::uint32_t> dp((n + 1) * (m + 1), 0);
  const auto at = [&](std::size_t i, std::size_t j) -> std::uint32_t& {
    return dp[i * (m + 1) + j];
  };
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      at(i, j) = reference[i - 1] == unknown[j - 1]
                     ? at(i - 1, j - 1) + 1
                     : std::max(at(i - 1, j), at(i, j - 1));
    }
  }
  // Backtrack: unmatched reference tags were removed, unmatched unknown
  // tags were added.
  TagDelta delta;
  std::size_t i = n, j = m;
  while (i > 0 && j > 0) {
    if (reference[i - 1] == unknown[j - 1]) {
      --i;
      --j;
    } else if (at(i - 1, j) >= at(i, j - 1)) {
      delta.removed[reference[i - 1]] += 1;
      --i;
    } else {
      delta.added[unknown[j - 1]] += 1;
      --j;
    }
  }
  while (i > 0) delta.removed[reference[--i]] += 1;
  while (j > 0) delta.added[unknown[--j]] += 1;
  return delta;
}

double delta_distance(const TagDelta& a, const TagDelta& b) {
  return (jaccard_multiset(a.added, b.added) +
          jaccard_multiset(a.removed, b.removed)) /
         2.0;
}

std::size_t most_similar_reference(
    const http::PageFeatures& unknown,
    const std::vector<http::PageFeatures>& references) {
  std::size_t best = 0;
  double best_distance = 2.0;
  for (std::size_t i = 0; i < references.size(); ++i) {
    const double d = page_distance(unknown, references[i]);
    if (d < best_distance) {
      best_distance = d;
      best = i;
    }
  }
  return best;
}

std::vector<int> cluster_deltas(const std::vector<TagDelta>& deltas,
                                double cut_threshold) {
  if (deltas.empty()) return {};
  const auto dendrogram = hac_average_linkage(
      deltas.size(), [&deltas](std::size_t i, std::size_t j) {
        return delta_distance(deltas[i], deltas[j]);
      });
  return dendrogram.cut(cut_threshold);
}

}  // namespace dnswild::cluster
