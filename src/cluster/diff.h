// Fine-grained clustering: finding small page modifications (§3.6).
//
// The coarse clustering tolerates structural noise, which hides the very
// thing the study hunts in its second pass: small, possibly malicious edits
// (e.g. an injected <script>) to an otherwise-known page. This module
// mirrors the paper's approach: diff the unknown response against the most
// similar ground-truth representation (LCS over the tag sequences, the
// structural analogue of the `diff` utility), extract the multisets of
// added and removed tags, and cluster responses by Jaccard distance over
// those tag deltas.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/hac.h"
#include "http/html.h"

namespace dnswild::cluster {

struct TagDelta {
  std::unordered_map<std::uint16_t, int> added;
  std::unordered_map<std::uint16_t, int> removed;

  std::size_t total_changes() const noexcept;
  bool empty() const noexcept { return added.empty() && removed.empty(); }
};

// Structural diff between an unknown page and a reference: tags present in
// `unknown` but not matched in `reference` are "added", and vice versa.
// Computed from the LCS of the two opening-tag sequences.
TagDelta tag_diff(const std::vector<std::uint16_t>& reference,
                  const std::vector<std::uint16_t>& unknown);

// Distance between two deltas: mean of the Jaccard multiset distances of
// the added and removed sets.
double delta_distance(const TagDelta& a, const TagDelta& b);

// Index of the ground-truth representation most similar to `unknown`
// (§3.6: "we select the ground truth with the highest similarity").
std::size_t most_similar_reference(
    const http::PageFeatures& unknown,
    const std::vector<http::PageFeatures>& references);

// Clusters deltas with average-linkage HAC at the given cut; returns a
// label per delta.
std::vector<int> cluster_deltas(const std::vector<TagDelta>& deltas,
                                double cut_threshold);

}  // namespace dnswild::cluster
