// Distance primitives and the paper's seven-feature page distance (§3.6).
//
// The coarse-grained clustering compares HTTP responses with a custom
// distance built from seven normalized, equally-weighted features:
//   1. body length difference,
//   2. Jaccard distance over the HTML tag multiset,
//   3. edit distance over the opening-tag sequence (2-byte tag ids),
//   4. edit distance over the <title> text,
//   5. edit distance over concatenated JavaScript,
//   6. Jaccard distance over embedded resources (src= values),
//   7. Jaccard distance over outgoing links (href= values).
//
// page_distance() is the hot path of the clustering stage (it is called for
// every matrix cell), so it evaluates the features cheapest-first and
// computes the three Levenshtein features through an adaptive banded DP
// that is exact but O(d * L) when the true distance d is small — the
// common case inside clusters. page_distance_breakdown() remains the
// straight-line reference implementation; the two agree bit-for-bit under
// default options (pinned by tests/test_parallel_cluster.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "http/html.h"

namespace dnswild::cluster {

// Classic Levenshtein distance, O(|a|*|b|) time, O(min) space.
std::size_t edit_distance(std::string_view a, std::string_view b);
std::size_t edit_distance(const std::vector<std::uint16_t>& a,
                          const std::vector<std::uint16_t>& b);

// Banded Levenshtein: exact when the true distance is <= band, otherwise
// returns a value > band (clamped to band + 1).
std::size_t edit_distance_banded(std::string_view a, std::string_view b,
                                 std::size_t band);
std::size_t edit_distance_banded(const std::vector<std::uint16_t>& a,
                                 const std::vector<std::uint16_t>& b,
                                 std::size_t band);

// Exact Levenshtein through the banded DP with a growing band seeded from
// the length-difference lower bound (Ukkonen's doubling scheme). Always
// equals edit_distance(); costs O(d * max(|a|, |b|)) when the true
// distance d is small, and skips the DP entirely for equal inputs and for
// pairs where one side is empty (distance pinned at max(|a|, |b|)).
std::size_t edit_distance_adaptive(std::string_view a, std::string_view b);
std::size_t edit_distance_adaptive(const std::vector<std::uint16_t>& a,
                                   const std::vector<std::uint16_t>& b);

// Normalized edit distance in [0, 1]: distance / max(|a|, |b|); 0 for two
// empty inputs.
double edit_distance_norm(std::string_view a, std::string_view b);
double edit_distance_norm(const std::vector<std::uint16_t>& a,
                          const std::vector<std::uint16_t>& b);

// Jaccard distance for multisets: 1 - |A ∩ B| / |A ∪ B| with multiplicity
// (intersection takes min counts, union max counts). 0 for two empty sets.
double jaccard_multiset(const std::unordered_map<std::uint16_t, int>& a,
                        const std::unordered_map<std::uint16_t, int>& b);

// Jaccard distance for plain sets represented as sorted unique vectors.
double jaccard_sorted(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

struct PageDistanceOptions {
  // Cap on edit-distance inputs; longer inputs are compared on prefixes of
  // this length (keeps the O(n^2) features bounded on pathological pages).
  std::size_t max_edit_length = 4096;

  // Early-exit clamp: before each Levenshtein feature, page_distance()
  // checks a cheap lower bound on the combined distance (computed features
  // plus the length-difference lower bound of the remaining ones); once
  // that bound reaches distance_cap, the remaining DPs are skipped and the
  // bound is returned. The bound is only applied where it provably cannot
  // alter the returned value below the clamp: with the default cap of 1.0
  // a triggered exit pins every remaining feature at exactly its true
  // value (1.0), so the result is bit-identical to the breakdown sum.
  // Callers that only need to distinguish "farther than t" may set the cap
  // to t; average-linkage HAC needs exact values, so the classifier keeps
  // the default.
  double distance_cap = 1.0;
};

// The combined seven-feature distance in [0, 1] (equal weights).
double page_distance(const http::PageFeatures& a, const http::PageFeatures& b,
                     const PageDistanceOptions& options = {});

// Individual feature values, exposed for tests and the ablation bench.
struct PageDistanceBreakdown {
  double length = 0;
  double tag_multiset = 0;
  double tag_sequence = 0;
  double title = 0;
  double scripts = 0;
  double resources = 0;
  double links = 0;

  double combined() const noexcept {
    return (length + tag_multiset + tag_sequence + title + scripts +
            resources + links) /
           7.0;
  }
};

PageDistanceBreakdown page_distance_breakdown(
    const http::PageFeatures& a, const http::PageFeatures& b,
    const PageDistanceOptions& options = {});

}  // namespace dnswild::cluster
