// Condensed upper-triangular distance matrix.
//
// Stores the n(n-1)/2 off-diagonal cells of a symmetric n x n matrix with a
// zero diagonal in row-major upper-triangular order:
//   (0,1) (0,2) ... (0,n-1) (1,2) ... (1,n-1) ... (n-2,n-1)
// This halves the memory of the square layout the HAC used to materialize
// (n(n-1)/2 doubles instead of n^2), which raises the feasible item count
// at equal peak RSS. The flat cell range [0, pair_count()) is also the
// sharding domain of the parallel fill: a contiguous block of flat indices
// is a contiguous run of triangle rows (split mid-row at block boundaries),
// every cell has exactly one writer, and each cell's value depends only on
// its (i, j) pair — so the fill is thread-count invariant by construction.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace dnswild::cluster {

class CondensedMatrix {
 public:
  CondensedMatrix() = default;
  explicit CondensedMatrix(std::size_t items)
      : items_(items), cells_(pair_count(items), 0.0) {}

  static std::size_t pair_count(std::size_t items) noexcept {
    return items < 2 ? 0 : items * (items - 1) / 2;
  }

  std::size_t items() const noexcept { return items_; }
  std::size_t pair_count() const noexcept { return cells_.size(); }
  std::size_t bytes() const noexcept { return cells_.size() * sizeof(double); }

  // Flat offset of cell (i, j); requires i < j < items().
  std::size_t offset(std::size_t i, std::size_t j) const noexcept {
    return i * (2 * items_ - i - 1) / 2 + (j - i - 1);
  }

  // Inverse of offset(): the (row, column) pair owning a flat index. The
  // sharded fill calls this once per block to locate its first cell and
  // then walks the triangle row-major.
  std::pair<std::size_t, std::size_t> cell(std::size_t flat) const noexcept {
    // Degenerate matrices (n < 2) have no cells; guard before `items_ - 2`
    // wraps around. Callers iterating [0, pair_count()) never get here,
    // but a stray probe must not walk a 2^64-row binary search.
    if (items_ < 2) return {0, 0};
    // Largest row i with offset(i, i+1) <= flat; row i owns the flat range
    // [offset(i, i+1), offset(i, i+1) + items_ - i - 1).
    std::size_t lo = 0;
    std::size_t hi = items_ - 2;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo + 1) / 2;
      if (offset(mid, mid + 1) <= flat) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return {lo, lo + 1 + (flat - offset(lo, lo + 1))};
  }

  // Symmetric read with a zero diagonal.
  double at(std::size_t i, std::size_t j) const noexcept {
    if (i == j) return 0.0;
    if (i > j) std::swap(i, j);
    return cells_[offset(i, j)];
  }

  // Symmetric write; requires i != j.
  void set(std::size_t i, std::size_t j, double value) noexcept {
    if (i > j) std::swap(i, j);
    cells_[offset(i, j)] = value;
  }

  // Direct flat-cell access for the sharded fill.
  double& flat_at(std::size_t flat) noexcept { return cells_[flat]; }

 private:
  std::size_t items_ = 0;
  std::vector<double> cells_;
};

}  // namespace dnswild::cluster
