#include "cluster/distance.h"

#include <algorithm>
#include <array>
#include <cstdlib>

namespace dnswild::cluster {

namespace {

template <typename Seq>
std::size_t levenshtein(const Seq& a, const Seq& b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  // Two-row DP over the shorter sequence for cache friendliness.
  if (m > n) return levenshtein(b, a);
  std::vector<std::size_t> row(m + 1);
  for (std::size_t j = 0; j <= m; ++j) row[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t above = row[j];
      const std::size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      row[j] = std::min({above + 1, row[j - 1] + 1, diagonal + cost});
      diagonal = above;
    }
  }
  return row[m];
}

template <typename Seq>
std::size_t levenshtein_banded(const Seq& a, const Seq& b, std::size_t band) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  const std::size_t size_gap = n > m ? n - m : m - n;
  if (size_gap > band) return band + 1;
  if (n == 0) return m;
  if (m == 0) return n;

  constexpr std::size_t kInfinity = static_cast<std::size_t>(-1) / 2;
  std::vector<std::size_t> row(m + 1, kInfinity);
  std::vector<std::size_t> next(m + 1, kInfinity);
  for (std::size_t j = 0; j <= std::min(m, band); ++j) row[j] = j;

  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(next.begin(), next.end(), kInfinity);
    const std::size_t lo = i > band ? i - band : 0;
    const std::size_t hi = std::min(m, i + band);
    if (lo == 0) next[0] = i;
    for (std::size_t j = std::max<std::size_t>(lo, 1); j <= hi; ++j) {
      const std::size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      std::size_t best = row[j - 1] + cost;  // diagonal
      if (row[j] != kInfinity) best = std::min(best, row[j] + 1);
      if (next[j - 1] != kInfinity) best = std::min(best, next[j - 1] + 1);
      next[j] = best;
    }
    row.swap(next);
    // Early out: the whole band exceeded the threshold.
    bool alive = false;
    for (std::size_t j = lo; j <= hi; ++j) {
      if (row[j] <= band) {
        alive = true;
        break;
      }
    }
    if (!alive) return band + 1;
  }
  return std::min(row[m], band + 1);
}

template <typename Seq>
std::size_t levenshtein_adaptive(const Seq& a, const Seq& b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  const std::size_t longest = std::max(n, m);
  const std::size_t gap = n > m ? n - m : m - n;
  // One side empty (or both): the distance is pinned at `longest`, the
  // normalized feature contribution is already at its cap — skip the DP.
  if (gap == longest) return longest;
  if (gap == 0 && std::equal(a.begin(), a.end(), b.begin(), b.end())) {
    return 0;
  }
  // Grow the band from the length-difference lower bound; a banded result
  // within the band is exact. Once the band approaches the sequence length
  // a banded pass costs as much as the full DP, so finish with that.
  std::size_t band = std::max<std::size_t>(gap, 8);
  while (band < longest / 2) {
    const std::size_t d = levenshtein_banded(a, b, band);
    if (d <= band) return d;
    band *= 4;
  }
  return levenshtein(a, b);
}

}  // namespace

std::size_t edit_distance(std::string_view a, std::string_view b) {
  return levenshtein(a, b);
}

std::size_t edit_distance(const std::vector<std::uint16_t>& a,
                          const std::vector<std::uint16_t>& b) {
  return levenshtein(a, b);
}

std::size_t edit_distance_banded(std::string_view a, std::string_view b,
                                 std::size_t band) {
  return levenshtein_banded(a, b, band);
}

std::size_t edit_distance_banded(const std::vector<std::uint16_t>& a,
                                 const std::vector<std::uint16_t>& b,
                                 std::size_t band) {
  return levenshtein_banded(a, b, band);
}

std::size_t edit_distance_adaptive(std::string_view a, std::string_view b) {
  return levenshtein_adaptive(a, b);
}

std::size_t edit_distance_adaptive(const std::vector<std::uint16_t>& a,
                                   const std::vector<std::uint16_t>& b) {
  return levenshtein_adaptive(a, b);
}

double edit_distance_norm(std::string_view a, std::string_view b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(edit_distance(a, b)) /
         static_cast<double>(longest);
}

double edit_distance_norm(const std::vector<std::uint16_t>& a,
                          const std::vector<std::uint16_t>& b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(edit_distance(a, b)) /
         static_cast<double>(longest);
}

double jaccard_multiset(const std::unordered_map<std::uint16_t, int>& a,
                        const std::unordered_map<std::uint16_t, int>& b) {
  if (a.empty() && b.empty()) return 0.0;
  long long intersection = 0;
  long long union_size = 0;
  for (const auto& [key, count_a] : a) {
    const auto it = b.find(key);
    const int count_b = it == b.end() ? 0 : it->second;
    intersection += std::min(count_a, count_b);
    union_size += std::max(count_a, count_b);
  }
  for (const auto& [key, count_b] : b) {
    if (a.find(key) == a.end()) union_size += count_b;
  }
  if (union_size == 0) return 0.0;
  return 1.0 - static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

double jaccard_sorted(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 0.0;
  std::size_t intersection = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const std::size_t union_size = a.size() + b.size() - intersection;
  return 1.0 - static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

namespace {

// Normalized length gap: the body-length feature, and also the
// length-difference lower bound of a normalized edit distance.
double normalized_gap(std::size_t a, std::size_t b) {
  const std::size_t longest = std::max(a, b);
  if (longest == 0) return 0.0;
  return static_cast<double>(longest - std::min(a, b)) /
         static_cast<double>(longest);
}

// Normalized adaptive edit distance: same value as edit_distance_norm
// (the adaptive DP is exact), computed through the banded fast path.
template <typename Seq>
double edit_norm_adaptive(const Seq& a, const Seq& b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(levenshtein_adaptive(a, b)) /
         static_cast<double>(longest);
}

}  // namespace

PageDistanceBreakdown page_distance_breakdown(
    const http::PageFeatures& a, const http::PageFeatures& b,
    const PageDistanceOptions& options) {
  PageDistanceBreakdown out;

  out.length = normalized_gap(a.body_length, b.body_length);
  out.tag_multiset = jaccard_multiset(a.tag_counts, b.tag_counts);

  const auto clip_seq = [&options](const std::vector<std::uint16_t>& seq) {
    if (seq.size() <= options.max_edit_length) return seq;
    return std::vector<std::uint16_t>(
        seq.begin(),
        seq.begin() + static_cast<std::ptrdiff_t>(options.max_edit_length));
  };
  out.tag_sequence =
      edit_distance_norm(clip_seq(a.tag_sequence), clip_seq(b.tag_sequence));

  const auto clip_text = [&options](const std::string& text) {
    return std::string_view(text).substr(
        0, std::min(text.size(), options.max_edit_length));
  };
  out.title = edit_distance_norm(clip_text(a.title), clip_text(b.title));
  out.scripts =
      edit_distance_norm(clip_text(a.scripts), clip_text(b.scripts));

  out.resources = jaccard_sorted(a.resources, b.resources);
  out.links = jaccard_sorted(a.links, b.links);
  return out;
}

double page_distance(const http::PageFeatures& a, const http::PageFeatures& b,
                     const PageDistanceOptions& options) {
  PageDistanceBreakdown out;

  // Cheap features first: the O(1) length difference, then the linear set
  // and multiset comparisons.
  out.length = normalized_gap(a.body_length, b.body_length);
  out.resources = jaccard_sorted(a.resources, b.resources);
  out.links = jaccard_sorted(a.links, b.links);
  out.tag_multiset = jaccard_multiset(a.tag_counts, b.tag_counts);

  // Clipped operands of the three Levenshtein features (copy the tag
  // sequence only when it actually exceeds the cap).
  const auto clip_text = [&options](const std::string& text) {
    return std::string_view(text).substr(
        0, std::min(text.size(), options.max_edit_length));
  };
  const std::string_view title_a = clip_text(a.title);
  const std::string_view title_b = clip_text(b.title);
  const std::string_view scripts_a = clip_text(a.scripts);
  const std::string_view scripts_b = clip_text(b.scripts);

  std::vector<std::uint16_t> seq_clip_a, seq_clip_b;
  const std::vector<std::uint16_t>* seq_a = &a.tag_sequence;
  const std::vector<std::uint16_t>* seq_b = &b.tag_sequence;
  if (seq_a->size() > options.max_edit_length) {
    seq_clip_a.assign(seq_a->begin(),
                      seq_a->begin() + static_cast<std::ptrdiff_t>(
                                           options.max_edit_length));
    seq_a = &seq_clip_a;
  }
  if (seq_b->size() > options.max_edit_length) {
    seq_clip_b.assign(seq_b->begin(),
                      seq_b->begin() + static_cast<std::ptrdiff_t>(
                                           options.max_edit_length));
    seq_b = &seq_clip_b;
  }

  // The Levenshtein features, cheapest DP table first. Each carries the
  // length-difference lower bound used by the early-exit check below.
  enum { kTitle, kScripts, kTagSequence };
  struct EditFeature {
    int kind;
    double* slot;
    double lower_bound;
    std::size_t cost;  // DP table size estimate
  };
  std::array<EditFeature, 3> features = {{
      {kTitle, &out.title, normalized_gap(title_a.size(),
                                                 title_b.size()),
       title_a.size() * title_b.size()},
      {kScripts, &out.scripts,
       normalized_gap(scripts_a.size(), scripts_b.size()),
       scripts_a.size() * scripts_b.size()},
      {kTagSequence, &out.tag_sequence,
       normalized_gap(seq_a->size(), seq_b->size()),
       seq_a->size() * seq_b->size()},
  }};
  std::sort(features.begin(), features.end(),
            [](const EditFeature& x, const EditFeature& y) {
              return x.cost < y.cost;
            });

  // Early exit is only armed when the caller allows clamping (cap < 1):
  // once the computed features plus the lower bounds of the remaining ones
  // prove the combined distance is >= the cap, the remaining DPs cannot
  // change the decision and their lower bounds stand in for them. With the
  // default cap of 1.0 every feature is computed (each through the exact
  // adaptive DP), so the result equals the breakdown sum bit-for-bit.
  const bool may_clamp = options.distance_cap < 1.0;
  const double cheap_sum =
      out.length + out.resources + out.links + out.tag_multiset;
  double done_sum = 0.0;
  double pending_lb = features[0].lower_bound + features[1].lower_bound +
                      features[2].lower_bound;
  for (std::size_t f = 0; f < features.size(); ++f) {
    if (may_clamp &&
        cheap_sum + done_sum + pending_lb >= options.distance_cap * 7.0) {
      for (std::size_t r = f; r < features.size(); ++r) {
        *features[r].slot = features[r].lower_bound;
      }
      return out.combined();
    }
    double value = 0.0;
    switch (features[f].kind) {
      case kTitle: value = edit_norm_adaptive(title_a, title_b); break;
      case kScripts: value = edit_norm_adaptive(scripts_a, scripts_b); break;
      case kTagSequence: value = edit_norm_adaptive(*seq_a, *seq_b); break;
    }
    *features[f].slot = value;
    done_sum += value;
    pending_lb -= features[f].lower_bound;
  }
  return out.combined();
}

}  // namespace dnswild::cluster
