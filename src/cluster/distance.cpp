#include "cluster/distance.h"

#include <algorithm>
#include <cstdlib>

namespace dnswild::cluster {

namespace {

template <typename Seq>
std::size_t levenshtein(const Seq& a, const Seq& b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  // Two-row DP over the shorter sequence for cache friendliness.
  if (m > n) return levenshtein(b, a);
  std::vector<std::size_t> row(m + 1);
  for (std::size_t j = 0; j <= m; ++j) row[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t above = row[j];
      const std::size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      row[j] = std::min({above + 1, row[j - 1] + 1, diagonal + cost});
      diagonal = above;
    }
  }
  return row[m];
}

}  // namespace

std::size_t edit_distance(std::string_view a, std::string_view b) {
  return levenshtein(a, b);
}

std::size_t edit_distance(const std::vector<std::uint16_t>& a,
                          const std::vector<std::uint16_t>& b) {
  return levenshtein(a, b);
}

std::size_t edit_distance_banded(std::string_view a, std::string_view b,
                                 std::size_t band) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  const std::size_t size_gap = n > m ? n - m : m - n;
  if (size_gap > band) return band + 1;
  if (n == 0) return m;
  if (m == 0) return n;

  constexpr std::size_t kInfinity = static_cast<std::size_t>(-1) / 2;
  std::vector<std::size_t> row(m + 1, kInfinity);
  std::vector<std::size_t> next(m + 1, kInfinity);
  for (std::size_t j = 0; j <= std::min(m, band); ++j) row[j] = j;

  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(next.begin(), next.end(), kInfinity);
    const std::size_t lo = i > band ? i - band : 0;
    const std::size_t hi = std::min(m, i + band);
    if (lo == 0) next[0] = i;
    for (std::size_t j = std::max<std::size_t>(lo, 1); j <= hi; ++j) {
      const std::size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      std::size_t best = row[j - 1] + cost;  // diagonal
      if (row[j] != kInfinity) best = std::min(best, row[j] + 1);
      if (next[j - 1] != kInfinity) best = std::min(best, next[j - 1] + 1);
      next[j] = best;
    }
    row.swap(next);
    // Early out: the whole band exceeded the threshold.
    bool alive = false;
    for (std::size_t j = lo; j <= hi; ++j) {
      if (row[j] <= band) {
        alive = true;
        break;
      }
    }
    if (!alive) return band + 1;
  }
  return std::min(row[m], band + 1);
}

double edit_distance_norm(std::string_view a, std::string_view b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(edit_distance(a, b)) /
         static_cast<double>(longest);
}

double edit_distance_norm(const std::vector<std::uint16_t>& a,
                          const std::vector<std::uint16_t>& b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(edit_distance(a, b)) /
         static_cast<double>(longest);
}

double jaccard_multiset(const std::unordered_map<std::uint16_t, int>& a,
                        const std::unordered_map<std::uint16_t, int>& b) {
  if (a.empty() && b.empty()) return 0.0;
  long long intersection = 0;
  long long union_size = 0;
  for (const auto& [key, count_a] : a) {
    const auto it = b.find(key);
    const int count_b = it == b.end() ? 0 : it->second;
    intersection += std::min(count_a, count_b);
    union_size += std::max(count_a, count_b);
  }
  for (const auto& [key, count_b] : b) {
    if (a.find(key) == a.end()) union_size += count_b;
  }
  if (union_size == 0) return 0.0;
  return 1.0 - static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

double jaccard_sorted(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 0.0;
  std::size_t intersection = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const std::size_t union_size = a.size() + b.size() - intersection;
  return 1.0 - static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

PageDistanceBreakdown page_distance_breakdown(
    const http::PageFeatures& a, const http::PageFeatures& b,
    const PageDistanceOptions& options) {
  PageDistanceBreakdown out;

  const std::size_t longest = std::max(a.body_length, b.body_length);
  out.length = longest == 0
                   ? 0.0
                   : static_cast<double>(
                         std::max(a.body_length, b.body_length) -
                         std::min(a.body_length, b.body_length)) /
                         static_cast<double>(longest);

  out.tag_multiset = jaccard_multiset(a.tag_counts, b.tag_counts);

  const auto clip_seq = [&options](const std::vector<std::uint16_t>& seq) {
    if (seq.size() <= options.max_edit_length) return seq;
    return std::vector<std::uint16_t>(
        seq.begin(),
        seq.begin() + static_cast<std::ptrdiff_t>(options.max_edit_length));
  };
  out.tag_sequence =
      edit_distance_norm(clip_seq(a.tag_sequence), clip_seq(b.tag_sequence));

  const auto clip_text = [&options](const std::string& text) {
    return std::string_view(text).substr(
        0, std::min(text.size(), options.max_edit_length));
  };
  out.title = edit_distance_norm(clip_text(a.title), clip_text(b.title));
  out.scripts =
      edit_distance_norm(clip_text(a.scripts), clip_text(b.scripts));

  out.resources = jaccard_sorted(a.resources, b.resources);
  out.links = jaccard_sorted(a.links, b.links);
  return out;
}

double page_distance(const http::PageFeatures& a, const http::PageFeatures& b,
                     const PageDistanceOptions& options) {
  return page_distance_breakdown(a, b, options).combined();
}

}  // namespace dnswild::cluster
