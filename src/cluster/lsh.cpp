#include "cluster/lsh.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "cluster/distance.h"
#include "cluster/hac.h"
#include "scan/executor.h"
#include "util/hash.h"

namespace dnswild::cluster {
namespace {

// Chained splitmix combine for band keys (order-sensitive).
inline std::uint64_t combine(std::uint64_t h, std::uint64_t v) noexcept {
  std::uint64_t x = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Union-find over item indices, path-halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  // Union by smaller root index: the representative of a component is
  // always its smallest member, a deterministic key independent of the
  // order unions were discovered in.
  void unite(std::size_t a, std::size_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<std::size_t> parent_;
};

// Deterministic leader assignment for oversized groups: members in index
// order; each joins the nearest existing leader within `cut` (ties toward
// the earlier leader) or founds a new local cluster. Exact distances only.
std::vector<int> leader_cluster(
    const std::vector<std::size_t>& members,
    const std::vector<http::PageFeatures>& features, double cut,
    std::size_t* distances_paid) {
  std::vector<int> local(members.size(), -1);
  std::vector<std::size_t> leaders;  // indices into `members`
  for (std::size_t m = 0; m < members.size(); ++m) {
    double best = 0.0;
    std::size_t best_leader = leaders.size();
    for (std::size_t l = 0; l < leaders.size(); ++l) {
      const double d = page_distance(features[members[m]],
                                     features[members[leaders[l]]]);
      ++*distances_paid;
      if (d <= cut && (best_leader == leaders.size() || d < best)) {
        best = d;
        best_leader = l;
      }
    }
    if (best_leader == leaders.size()) {
      local[m] = static_cast<int>(leaders.size());
      leaders.push_back(m);
    } else {
      local[m] = static_cast<int>(best_leader);
    }
  }
  return local;
}

}  // namespace

std::vector<PageSignature> compute_signatures(
    std::size_t n, const BodyFn& body,
    const std::vector<http::PageFeatures>& features,
    const SignatureConfig& config, scan::ParallelExecutor* executor) {
  std::vector<PageSignature> signatures(n);
  const auto fill = [&](std::uint64_t begin, std::uint64_t end, unsigned) {
    for (std::uint64_t i = begin; i < end; ++i) {
      signatures[i] = page_signature(body(i), features[i], config);
    }
  };
  if (executor != nullptr) {
    executor->run_blocks(n, fill);
  } else {
    fill(0, n, 0);
  }
  return signatures;
}

std::vector<std::uint64_t> band_keys(const PageSignature& signature,
                                     const LshOptions& options) {
  std::vector<std::uint64_t> keys;
  const std::size_t slots = signature.minhash.size();
  const std::size_t bands = std::min(std::max<std::size_t>(options.bands, 1),
                                     std::max<std::size_t>(slots, 1));
  if (slots > 0) {
    keys.reserve(bands + options.simhash_bands);
    for (std::size_t b = 0; b < bands; ++b) {
      // Band b owns the contiguous slot range [b*slots/bands, ...).
      const std::size_t begin = b * slots / bands;
      const std::size_t end = (b + 1) * slots / bands;
      std::uint64_t key = combine(options.signature.seed, 0xB000 + b);
      for (std::size_t s = begin; s < end; ++s) {
        key = combine(key, signature.minhash[s]);
      }
      keys.push_back(key);
    }
  }
  if (options.simhash_bands > 0) {
    const std::size_t sbands = std::min<std::size_t>(options.simhash_bands, 64);
    for (std::size_t b = 0; b < sbands; ++b) {
      const unsigned begin = static_cast<unsigned>(b * 64 / sbands);
      const unsigned end = static_cast<unsigned>((b + 1) * 64 / sbands);
      const unsigned width = end - begin;
      const std::uint64_t slice =
          width >= 64 ? signature.simhash
                      : (signature.simhash >> begin) & ((1ULL << width) - 1);
      keys.push_back(combine(combine(options.signature.seed, 0x5000 + b), slice));
    }
  }
  return keys;
}

LshClustering lsh_cluster(const std::vector<http::PageFeatures>& features,
                          const BodyFn& body, const LshOptions& options) {
  LshClustering out;
  const std::size_t n = features.size();
  out.stats.items = n;
  out.stats.full_pairs = n < 2 ? 0 : n * (n - 1) / 2;
  out.labels.assign(n, 0);
  if (n == 0) return out;

  scan::ParallelExecutor* executor = options.executor;
  std::unique_ptr<scan::ParallelExecutor> owned;
  if (executor == nullptr) {
    owned = std::make_unique<scan::ParallelExecutor>(
        scan::ParallelExecutor::effective_threads(options.threads, n, 16));
    executor = owned.get();
  }

  // 1. Signatures (sharded, one writer per slot).
  out.signatures =
      compute_signatures(n, body, features, options.signature, executor);
  if (n == 1) {
    out.clusters = 1;
    out.cluster_exemplar = {0};
    return out;
  }

  // 2. Banding -> buckets -> candidate components. Buckets are walked in
  //    item order, so the union-find sees a deterministic edge sequence —
  //    and union-by-smaller-root makes the components independent of that
  //    order anyway.
  UnionFind uf(n);
  {
    std::unordered_map<std::uint64_t, std::uint32_t> first_in_bucket;
    first_in_bucket.reserve(n * 2);
    std::unordered_map<std::uint64_t, bool> bucket_shared;
    for (std::size_t i = 0; i < n; ++i) {
      const auto keys = band_keys(out.signatures[i], options);
      for (const std::uint64_t key : keys) {
        const auto [it, inserted] =
            first_in_bucket.emplace(key, static_cast<std::uint32_t>(i));
        if (!inserted) {
          uf.unite(it->second, i);
          bucket_shared[key] = true;
        }
      }
    }
    out.stats.buckets = bucket_shared.size();
  }

  // Group members, keyed by the component's smallest index; groups ordered
  // by that key.
  std::vector<std::vector<std::size_t>> groups;
  {
    std::vector<std::size_t> root_to_group(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t root = uf.find(i);
      if (root_to_group[root] == n) {
        root_to_group[root] = groups.size();
        groups.emplace_back();
      }
      groups[root_to_group[root]].push_back(i);
    }
  }
  out.stats.groups = groups.size();

  // 3. Exact clustering within each group.
  std::vector<int> local_of_item(n, -1);       // local-cluster id per item
  std::vector<std::size_t> local_exemplar;     // smallest member per local
  std::size_t distances_paid = 0;
  for (const auto& members : groups) {
    out.stats.largest_group = std::max(out.stats.largest_group, members.size());
    const std::size_t base = local_exemplar.size();
    if (members.size() == 1) {
      local_of_item[members[0]] = static_cast<int>(base);
      local_exemplar.push_back(members[0]);
      continue;
    }
    std::vector<int> local;
    if (members.size() <= options.hac_group_cap) {
      HacOptions hac_options;
      hac_options.max_items = members.size();
      hac_options.executor = executor;
      HacStats hac_stats;
      const Dendrogram dendrogram = hac_average_linkage(
          members.size(),
          [&](std::size_t a, std::size_t b) {
            return page_distance(features[members[a]], features[members[b]]);
          },
          hac_options, &hac_stats);
      distances_paid += hac_stats.pair_distances;
      out.stats.peak_matrix_bytes =
          std::max(out.stats.peak_matrix_bytes, hac_stats.matrix_bytes);
      local = dendrogram.cut(options.cut);
    } else {
      local = leader_cluster(members, features, options.cut, &distances_paid);
    }
    const int local_count = *std::max_element(local.begin(), local.end()) + 1;
    for (int c = 0; c < local_count; ++c) {
      local_exemplar.push_back(n);  // filled with the smallest member below
    }
    for (std::size_t m = 0; m < members.size(); ++m) {
      const std::size_t id = base + static_cast<std::size_t>(local[m]);
      local_of_item[members[m]] = static_cast<int>(id);
      local_exemplar[id] = std::min(local_exemplar[id], members[m]);
    }
  }

  // 4. Stitch local clusters across groups. The stitch distance between
  //    two local clusters is the average exact distance over up to
  //    `stitch_samples` members of each side (smallest indices first) —
  //    a bounded-cost estimate of average linkage. A single exemplar
  //    distance is cheaper but systematically low for loose clusters,
  //    which over-merges where the exact engine would not.
  const std::size_t locals = local_exemplar.size();
  out.stats.stitch_exemplars = locals;
  std::vector<int> stitched(locals);
  std::iota(stitched.begin(), stitched.end(), 0);
  if (locals >= 2) {
    const std::size_t per_side = std::max<std::size_t>(options.stitch_samples, 1);
    std::vector<std::vector<std::size_t>> samples(locals);
    for (std::size_t i = 0; i < n; ++i) {  // item order = ascending index
      auto& sample = samples[static_cast<std::size_t>(local_of_item[i])];
      if (sample.size() < per_side) sample.push_back(i);
    }
    const auto stitch_distance = [&](std::size_t a, std::size_t b) {
      double sum = 0.0;
      for (const std::size_t x : samples[a]) {
        for (const std::size_t y : samples[b]) {
          sum += page_distance(features[x], features[y]);
        }
      }
      return sum / static_cast<double>(samples[a].size() * samples[b].size());
    };
    std::size_t sample_total = 0;
    std::uint64_t sample_squares = 0;
    for (const auto& sample : samples) {
      sample_total += sample.size();
      sample_squares += sample.size() * sample.size();
    }
    if (locals <= options.stitch_cap) {
      HacOptions hac_options;
      hac_options.max_items = locals;
      hac_options.executor = executor;
      HacStats hac_stats;
      const Dendrogram dendrogram =
          hac_average_linkage(locals, stitch_distance, hac_options, &hac_stats);
      // Each matrix cell paid |sample_a| x |sample_b| exact distances.
      distances_paid += (sample_total * sample_total - sample_squares) / 2;
      out.stats.peak_matrix_bytes =
          std::max(out.stats.peak_matrix_bytes, hac_stats.matrix_bytes);
      stitched = dendrogram.cut(options.cut);
    } else {
      stitched = leader_cluster(local_exemplar, features, options.cut,
                                &distances_paid);
    }
  }

  // 5. Final labels: compact by first occurrence in item order (the same
  //    convention Dendrogram::cut uses, so exact and LSH labelings are
  //    directly comparable).
  std::size_t stitch_clusters = 0;
  for (const int s : stitched) {
    stitch_clusters =
        std::max(stitch_clusters, static_cast<std::size_t>(s) + 1);
  }
  out.stats.stitch_merges = locals - stitch_clusters;
  std::vector<int> compact(stitch_clusters, -1);
  std::vector<std::size_t> exemplar_of_final;
  int next_label = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const int s = stitched[static_cast<std::size_t>(local_of_item[i])];
    if (compact[static_cast<std::size_t>(s)] == -1) {
      compact[static_cast<std::size_t>(s)] = next_label++;
      exemplar_of_final.push_back(i);
    }
    out.labels[i] = compact[static_cast<std::size_t>(s)];
  }
  out.clusters = static_cast<std::size_t>(next_label);
  out.cluster_exemplar = std::move(exemplar_of_final);

  out.stats.candidate_pairs = distances_paid;
  out.stats.pair_reduction =
      distances_paid > 0
          ? static_cast<double>(out.stats.full_pairs) /
                static_cast<double>(distances_paid)
          : 0.0;

  // 6. Missed-pair estimate: hash-picked sample of pairs, exact distance,
  //    fraction of near pairs split across final clusters.
  if (options.sample_pairs > 0 && n >= 2) {
    std::size_t near = 0;
    std::size_t missed = 0;
    for (std::size_t t = 0; t < options.sample_pairs; ++t) {
      const std::uint64_t h =
          util::hash_words({options.signature.seed, 0x5A4DULL, t});
      const std::size_t i = static_cast<std::size_t>(h % n);
      const std::size_t j = static_cast<std::size_t>((h >> 32) % n);
      if (i == j) continue;
      if (page_distance(features[i], features[j]) <= options.cut) {
        ++near;
        if (out.labels[i] != out.labels[j]) ++missed;
      }
    }
    if (near > 0) {
      out.stats.missed_pair_estimate =
          static_cast<double>(missed) / static_cast<double>(near);
    }
  }

  if (options.registry != nullptr) {
    obs::Registry& registry = *options.registry;
    registry.counter("cluster.lsh.runs").add();
    registry.counter("cluster.lsh.items").add(n);
    registry.counter("cluster.lsh.buckets").add(out.stats.buckets);
    registry.counter("cluster.lsh.groups").add(out.stats.groups);
    registry.counter("cluster.lsh.candidate_pairs")
        .add(out.stats.candidate_pairs);
    registry.counter("cluster.lsh.stitch_merges").add(out.stats.stitch_merges);
    registry.counter("cluster.lsh.clusters").add(out.clusters);
    obs::Histogram& group_sizes = registry.histogram(
        "cluster.lsh.group_size", {1, 4, 16, 64, 256, 1024, 4096});
    for (const auto& members : groups) group_sizes.observe(members.size());
  }
  return out;
}

ClusterModel::ClusterModel(std::vector<http::PageFeatures> exemplar_features,
                           std::vector<PageSignature> exemplar_signatures,
                           LshOptions options)
    : features_(std::move(exemplar_features)),
      signatures_(std::move(exemplar_signatures)),
      options_(std::move(options)) {
  options_.executor = nullptr;
  options_.registry = nullptr;
  for (std::size_t c = 0; c < signatures_.size(); ++c) {
    for (const std::uint64_t key : band_keys(signatures_[c], options_)) {
      buckets_[key].push_back(static_cast<std::uint32_t>(c));
    }
  }
}

int ClusterModel::assign(const http::PageFeatures& features,
                         const PageSignature& signature,
                         std::size_t* candidates_examined) const {
  // Candidate set: exemplars sharing any band key, deduplicated and
  // visited in ascending cluster id for a deterministic tie-break.
  std::vector<std::uint32_t> candidates;
  for (const std::uint64_t key : band_keys(signature, options_)) {
    const auto it = buckets_.find(key);
    if (it == buckets_.end()) continue;
    candidates.insert(candidates.end(), it->second.begin(), it->second.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  if (candidates_examined != nullptr) {
    *candidates_examined += candidates.size();
  }
  double best = 0.0;
  int best_cluster = -1;
  for (const std::uint32_t c : candidates) {
    const double d = page_distance(features, features_[c]);
    if (d <= options_.cut && (best_cluster < 0 || d < best)) {
      best = d;
      best_cluster = static_cast<int>(c);
    }
  }
  return best_cluster;
}

ClusterModel make_cluster_model(const LshClustering& clustering,
                                const std::vector<http::PageFeatures>& features,
                                const LshOptions& options) {
  std::vector<http::PageFeatures> exemplar_features;
  std::vector<PageSignature> exemplar_signatures;
  exemplar_features.reserve(clustering.cluster_exemplar.size());
  exemplar_signatures.reserve(clustering.cluster_exemplar.size());
  for (const std::size_t item : clustering.cluster_exemplar) {
    exemplar_features.push_back(features[item]);
    exemplar_signatures.push_back(clustering.signatures[item]);
  }
  return ClusterModel(std::move(exemplar_features),
                      std::move(exemplar_signatures), options);
}

std::vector<int> assign_to_clusters(
    const std::vector<http::PageFeatures>& new_features, const BodyFn& body,
    const ClusterModel& model, scan::ParallelExecutor* executor,
    std::size_t* candidates_examined) {
  // Each page's signature and bucket probes are pure reads over the model
  // plus one write into its own output slot, so the pass shards cleanly.
  const std::size_t n = new_features.size();
  std::vector<int> assigned(n, -1);
  std::unique_ptr<scan::ParallelExecutor> owned;
  if (executor == nullptr) {
    owned = std::make_unique<scan::ParallelExecutor>(
        scan::ParallelExecutor::effective_threads(1, n, 16));
    executor = owned.get();
  }
  std::vector<std::size_t> per_worker_candidates(executor->threads(), 0);
  executor->run_blocks(n, [&](std::uint64_t begin, std::uint64_t end,
                              unsigned worker) {
    for (std::uint64_t i = begin; i < end; ++i) {
      const PageSignature signature =
          page_signature(body(static_cast<std::size_t>(i)), new_features[i],
                         model.signature_config());
      assigned[i] = model.assign(new_features[i], signature,
                                 &per_worker_candidates[worker]);
    }
  });
  if (candidates_examined != nullptr) {
    for (const std::size_t c : per_worker_candidates) {
      *candidates_examined += c;
    }
  }
  return assigned;
}

}  // namespace dnswild::cluster
