// Locality-sensitive page signatures for sub-quadratic clustering
// (DESIGN.md §10).
//
// Two complementary sketches per page, both pure functions of the page and
// an explicit seed (no global state, reproducible under any thread count):
//
//  * A MinHash signature over shingled body text (Broder-style near-
//    duplicate detection, the standard sketch for large-scale web dedup).
//    Implemented as one-permutation hashing: every k-byte shingle is hashed
//    once, routed to one of `minhash_slots` partitions by its high bits,
//    and each partition keeps the minimum. Empty partitions borrow from the
//    next non-empty partition (circular densification), so two pages with
//    identical shingle sets always produce identical signatures and the
//    per-slot collision probability still tracks shingle-set Jaccard
//    similarity.
//
//  * A 64-bit SimHash over the seven-feature page representation the exact
//    distance uses (§3.6): tag multiset, tag-sequence bigrams, title and
//    script shingles, resources, links, and a body-length bucket each vote
//    their hash bits weighted by multiplicity; the sign of each bit-lane
//    sum becomes one signature bit. Hamming proximity of two SimHashes
//    tracks the cheap cosine-ish similarity of the feature vectors, which
//    catches near pairs whose raw text shingles diverge (e.g. rewritten
//    markup with the same structure).
//
// lsh.h bands both sketches into bucket keys; identical band keys make two
// pages candidates for the exact in-bucket distance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "http/html.h"

namespace dnswild::cluster {

// Default signature seed; the pipeline replaces it with a campaign-derived
// hash when the caller left it untouched, so longitudinal runs of one
// campaign share bucket geometry while distinct campaigns decorrelate.
inline constexpr std::uint64_t kDefaultSignatureSeed = 0x5157494c44ULL;

struct SignatureConfig {
  std::uint64_t seed = kDefaultSignatureSeed;
  std::size_t shingle_bytes = 8;   // body-text shingle width
  std::size_t minhash_slots = 64;  // one-permutation partitions
};

struct PageSignature {
  std::vector<std::uint64_t> minhash;  // minhash_slots entries
  std::uint64_t simhash = 0;

  bool operator==(const PageSignature& other) const noexcept {
    return simhash == other.simhash && minhash == other.minhash;
  }
};

// Sketch of one page: MinHash over `body`, SimHash over `features`. The
// two inputs describe the same page (features = extract_features(body));
// they are passed separately because the classifier already holds the
// extracted features for its exact-distance path.
PageSignature page_signature(std::string_view body,
                             const http::PageFeatures& features,
                             const SignatureConfig& config);

// Hamming distance between two SimHashes, in [0, 64].
unsigned simhash_hamming(std::uint64_t a, std::uint64_t b) noexcept;

}  // namespace dnswild::cluster
