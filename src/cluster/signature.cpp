#include "cluster/signature.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "util/hash.h"

namespace dnswild::cluster {
namespace {

constexpr std::uint64_t kEmptySlot = std::numeric_limits<std::uint64_t>::max();

// Stateless splitmix64 finalizer; local copy so the per-shingle inner loop
// inlines without the initializer_list plumbing of util::hash_words.
inline std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// FNV-1a over one shingle window.
inline std::uint64_t shingle_digest(const char* data, std::size_t len) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// One token's weighted vote into the 64 SimHash bit lanes.
inline void simhash_vote(std::uint64_t token_hash, int weight,
                         int (&lanes)[64]) noexcept {
  for (int bit = 0; bit < 64; ++bit) {
    lanes[bit] += (token_hash >> bit) & 1 ? weight : -weight;
  }
}

}  // namespace

unsigned simhash_hamming(std::uint64_t a, std::uint64_t b) noexcept {
  return static_cast<unsigned>(std::popcount(a ^ b));
}

PageSignature page_signature(std::string_view body,
                             const http::PageFeatures& features,
                             const SignatureConfig& config) {
  PageSignature signature;
  const std::size_t slots = std::max<std::size_t>(config.minhash_slots, 1);
  signature.minhash.assign(slots, kEmptySlot);
  const std::uint64_t seed = mix(config.seed);

  // --- MinHash via one-permutation hashing over body shingles ------------
  const std::size_t k = std::max<std::size_t>(config.shingle_bytes, 1);
  if (!body.empty()) {
    const std::size_t windows = body.size() >= k ? body.size() - k + 1 : 1;
    const std::size_t window = body.size() >= k ? k : body.size();
    for (std::size_t i = 0; i < windows; ++i) {
      const std::uint64_t h = mix(seed ^ shingle_digest(body.data() + i, window));
      // High bits pick the partition so the low-bit minimum stays uniform.
      const std::size_t slot = static_cast<std::size_t>(h >> 48) % slots;
      if (h < signature.minhash[slot]) signature.minhash[slot] = h;
    }
  }
  // Circular densification: an empty partition borrows the value of the
  // next non-empty one, keeping equal shingle sets -> equal signatures.
  bool any_filled = false;
  for (const std::uint64_t v : signature.minhash) {
    if (v != kEmptySlot) {
      any_filled = true;
      break;
    }
  }
  if (!any_filled) {
    // Empty body: a fixed seeded constant, shared by every empty page.
    std::fill(signature.minhash.begin(), signature.minhash.end(),
              mix(seed ^ 0xE0D7ULL));
  } else {
    for (std::size_t s = 0; s < slots; ++s) {
      if (signature.minhash[s] != kEmptySlot) continue;
      for (std::size_t step = 1; step < slots; ++step) {
        const std::uint64_t v = signature.minhash[(s + step) % slots];
        if (v != kEmptySlot) {
          signature.minhash[s] = v;
          break;
        }
      }
    }
  }

  // --- SimHash over the seven-feature representation ---------------------
  int lanes[64] = {};
  // 1. Body length, bucketed to its power-of-two octave so near lengths
  //    vote together.
  std::uint64_t length_bucket = 0;
  for (std::size_t v = features.body_length; v > 0; v >>= 1) ++length_bucket;
  simhash_vote(mix(seed ^ (0x01ULL << 56) ^ length_bucket), 2, lanes);
  // 2. Tag multiset, weighted by count.
  for (const auto& [tag, count] : features.tag_counts) {
    simhash_vote(mix(seed ^ (0x02ULL << 56) ^ tag), count, lanes);
  }
  // 3. Tag-sequence bigrams (order information the multiset lacks).
  for (std::size_t i = 0; i + 1 < features.tag_sequence.size(); ++i) {
    const std::uint64_t bigram =
        (static_cast<std::uint64_t>(features.tag_sequence[i]) << 16) |
        features.tag_sequence[i + 1];
    simhash_vote(mix(seed ^ (0x03ULL << 56) ^ bigram), 1, lanes);
  }
  // 4./5. Title and script text, as 4-byte shingles.
  const auto vote_text = [&](std::string_view text, std::uint64_t ns) {
    constexpr std::size_t kTextShingle = 4;
    if (text.empty()) return;
    const std::size_t windows =
        text.size() >= kTextShingle ? text.size() - kTextShingle + 1 : 1;
    const std::size_t window =
        text.size() >= kTextShingle ? kTextShingle : text.size();
    for (std::size_t i = 0; i < windows; ++i) {
      simhash_vote(
          mix(seed ^ (ns << 56) ^ shingle_digest(text.data() + i, window)), 1,
          lanes);
    }
  };
  vote_text(features.title, 0x04);
  vote_text(features.scripts, 0x05);
  // 6./7. Resources and links as whole-string tokens.
  for (const std::string& value : features.resources) {
    simhash_vote(
        mix(seed ^ (0x06ULL << 56) ^ shingle_digest(value.data(), value.size())),
        1, lanes);
  }
  for (const std::string& value : features.links) {
    simhash_vote(
        mix(seed ^ (0x07ULL << 56) ^ shingle_digest(value.data(), value.size())),
        1, lanes);
  }
  std::uint64_t simhash = 0;
  for (int bit = 0; bit < 64; ++bit) {
    if (lanes[bit] > 0) simhash |= 1ULL << bit;
  }
  signature.simhash = simhash;
  return signature;
}

}  // namespace dnswild::cluster
