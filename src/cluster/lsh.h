// LSH pre-bucketing: sub-quadratic clustering and incremental assignment
// (DESIGN.md §10).
//
// The exact classifier materializes all n(n-1)/2 page distances — fine for
// hundreds of unique pages, hopeless for the millions of tuples the paper
// clusters. This layer makes clustering sub-quadratic:
//
//  1. Every page gets a seeded MinHash + SimHash sketch (signature.h).
//  2. Signatures are banded into bucket keys; pages sharing any band key
//     become *candidates* and are unioned into candidate groups (the
//     transitive closure of bucket co-occurrence).
//  3. Within each group the *existing exact machinery* runs: page_distance
//     + hac_average_linkage, cut at the merge threshold. Groups larger
//     than `hac_group_cap` fall back to deterministic leader assignment
//     (exact distances to the group's leaders, O(members x leaders)).
//  4. Local clusters are stitched across groups by exemplar merging: one
//     exemplar per local cluster, exact HAC over the exemplars, local
//     clusters whose exemplars merge below the cut become one cluster.
//     Stitching recovers near pairs the hashing missed.
//
// Thread-invariance contract: signatures are pure per-page functions
// computed in sharded slots; buckets, groups, and merge order are derived
// serially from deterministic keys (never from discovery order); the only
// parallel stages are the signature pass and the in-group matrix fills,
// both single-writer-per-slot. Results are byte-identical for every thread
// count (tests/test_lsh.cpp pins this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cluster/signature.h"
#include "obs/metrics.h"

namespace dnswild::scan {
class ParallelExecutor;
}

namespace dnswild::cluster {

struct LshOptions {
  SignatureConfig signature;

  // MinHash banding: `bands` keys of `minhash_slots / bands` rows each.
  // Two pages collide on a band with probability ~s^rows for shingle
  // Jaccard similarity s; across b bands the candidate probability is
  // 1 - (1 - s^rows)^b.
  std::size_t bands = 16;

  // SimHash banding: the 64-bit sketch is split into this many sub-keys;
  // pages agreeing on any 64/simhash_bands-bit slice become candidates.
  // Catches structural near pairs whose raw shingles diverge. 0 disables.
  std::size_t simhash_bands = 4;

  // Merge threshold: clusters are cut from each in-group dendrogram (and
  // the stitching dendrogram) at this distance — same semantics as the
  // classifier's coarse_cut.
  double cut = 0.25;

  // Groups at most this large run exact in-group HAC; larger groups use
  // deterministic leader assignment (exact distances, O(members*leaders)).
  std::size_t hac_group_cap = 2048;

  // Stitching runs exact HAC over local-cluster exemplars up to this
  // count; beyond it, leader assignment stitches instead.
  std::size_t stitch_cap = 4096;

  // The stitch distance between two local clusters averages the exact
  // distance over up to this many members of each side (smallest indices
  // first). A single exemplar-to-exemplar distance under-estimates
  // average linkage and over-merges clusters the exact engine keeps
  // apart; a small sample tracks it closely at bounded cost.
  std::size_t stitch_samples = 4;

  // Missed-pair estimator: sample this many hash-picked pairs, measure the
  // fraction of true near pairs (distance <= cut) whose endpoints ended in
  // different clusters. 0 disables the estimate.
  std::size_t sample_pairs = 512;

  // Workers for the signature pass and in-group matrix fills; 0 selects
  // hardware_concurrency. Ignored when `executor` is set. Results are
  // byte-identical for every value.
  unsigned threads = 1;
  scan::ParallelExecutor* executor = nullptr;  // not owned
  obs::Registry* registry = nullptr;           // "cluster.lsh.*"; not owned
};

struct LshStats {
  std::size_t items = 0;
  std::size_t buckets = 0;         // distinct non-singleton band buckets
  std::size_t groups = 0;          // candidate components (incl. singletons)
  std::size_t largest_group = 0;
  std::size_t candidate_pairs = 0; // exact page distances actually paid
  std::size_t full_pairs = 0;      // n(n-1)/2 the exact pipeline would pay
  double pair_reduction = 0.0;     // full_pairs / candidate_pairs
  std::size_t stitch_exemplars = 0;
  std::size_t stitch_merges = 0;   // local clusters unified by stitching
  std::size_t peak_matrix_bytes = 0;  // largest in-group condensed matrix
  // Fraction of sampled true near pairs split across final clusters;
  // -1 when sampling is disabled or no near pair was drawn.
  double missed_pair_estimate = -1.0;
};

struct LshClustering {
  std::vector<int> labels;  // per item; compact, ordered by first occurrence
  std::size_t clusters = 0;
  // Per final cluster: the smallest member index (deterministic exemplar
  // for stitching/assignment; content labeling picks its own exemplar).
  std::vector<std::size_t> cluster_exemplar;
  std::vector<PageSignature> signatures;  // per item, reusable for models
  LshStats stats;
};

// Body accessor: the raw page text of item i (MinHash input). Must be safe
// to call concurrently for distinct i.
using BodyFn = std::function<std::string_view(std::size_t)>;

// Sharded signature pass: one PageSignature per item, byte-identical for
// any worker count. `executor` may be null (runs inline).
std::vector<PageSignature> compute_signatures(
    std::size_t n, const BodyFn& body,
    const std::vector<http::PageFeatures>& features,
    const SignatureConfig& config, scan::ParallelExecutor* executor);

// Band keys of one signature under the given options (MinHash bands first,
// then SimHash bands). Exposed for the determinism tests.
std::vector<std::uint64_t> band_keys(const PageSignature& signature,
                                     const LshOptions& options);

// The full sub-quadratic clustering described above. features.size() is n;
// body(i) must describe the same page as features[i].
LshClustering lsh_cluster(const std::vector<http::PageFeatures>& features,
                          const BodyFn& body, const LshOptions& options);

// Compact model of a finished clustering for longitudinal re-runs: one
// exemplar per cluster plus LSH tables over the exemplar signatures.
// assign() maps a new page onto an existing cluster in O(candidates)
// instead of O(clusters): only exemplars sharing a band key are examined
// with the exact distance.
class ClusterModel {
 public:
  ClusterModel() = default;
  ClusterModel(std::vector<http::PageFeatures> exemplar_features,
               std::vector<PageSignature> exemplar_signatures,
               LshOptions options);

  std::size_t clusters() const noexcept { return features_.size(); }
  const SignatureConfig& signature_config() const noexcept {
    return options_.signature;
  }

  // Nearest candidate cluster whose exemplar lies within options.cut;
  // ties break toward the smaller cluster id. -1 when no candidate is
  // close enough (caller starts a new cluster). `candidates_examined`
  // reports how many exact distances were paid.
  int assign(const http::PageFeatures& features,
             const PageSignature& signature,
             std::size_t* candidates_examined = nullptr) const;

 private:
  std::vector<http::PageFeatures> features_;
  std::vector<PageSignature> signatures_;
  LshOptions options_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets_;
};

// Model over the exemplars of a finished clustering. `features`/`body`
// are the *clustered* items (the same vectors lsh_cluster saw).
ClusterModel make_cluster_model(const LshClustering& clustering,
                                const std::vector<http::PageFeatures>& features,
                                const LshOptions& options);

// Incremental path: assign each new page to an existing cluster (or -1).
// O(candidates) per page; deterministic and thread-invariant (the
// signature pass shards, the bucket probes are read-only).
std::vector<int> assign_to_clusters(
    const std::vector<http::PageFeatures>& new_features, const BodyFn& body,
    const ClusterModel& model, scan::ParallelExecutor* executor = nullptr,
    std::size_t* candidates_examined = nullptr);

}  // namespace dnswild::cluster
