#include "cluster/hac.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>

#include "cluster/condensed.h"
#include "scan/executor.h"

namespace dnswild::cluster {

Dendrogram::Dendrogram(std::size_t leaf_count, std::vector<Merge> merges)
    : leaf_count_(leaf_count), merges_(std::move(merges)) {
  std::stable_sort(merges_.begin(), merges_.end(),
                   [](const Merge& a, const Merge& b) {
                     return a.distance < b.distance;
                   });
  // Renumber parents so that sorted order keeps parents valid: after the
  // sort the k-th merge gets parent id leaf_count_ + k, and references to
  // old parent ids are remapped.
  std::vector<int> remap(leaf_count_ + merges_.size());
  std::iota(remap.begin(), remap.end(), 0);
  std::vector<Merge> renumbered = merges_;
  // Build old-parent -> new-parent map in sorted order.
  for (std::size_t k = 0; k < merges_.size(); ++k) {
    remap[static_cast<std::size_t>(merges_[k].parent)] =
        static_cast<int>(leaf_count_ + k);
  }
  for (std::size_t k = 0; k < renumbered.size(); ++k) {
    renumbered[k].left = remap[static_cast<std::size_t>(merges_[k].left)];
    renumbered[k].right = remap[static_cast<std::size_t>(merges_[k].right)];
    renumbered[k].parent = static_cast<int>(leaf_count_ + k);
  }
  merges_ = std::move(renumbered);
}

std::vector<int> Dendrogram::cut(double threshold) const {
  // Union-find over leaves; apply merges at or below the threshold.
  std::vector<int> parent(leaf_count_ + merges_.size());
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&parent](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (const Merge& merge : merges_) {
    if (merge.distance > threshold) break;
    const int a = find(merge.left);
    const int b = find(merge.right);
    parent[static_cast<std::size_t>(a)] = merge.parent;
    parent[static_cast<std::size_t>(b)] = merge.parent;
  }
  std::vector<int> labels(leaf_count_);
  std::vector<int> compact(leaf_count_ + merges_.size(), -1);
  int next_label = 0;
  for (std::size_t leaf = 0; leaf < leaf_count_; ++leaf) {
    const int root = find(static_cast<int>(leaf));
    if (compact[static_cast<std::size_t>(root)] == -1) {
      compact[static_cast<std::size_t>(root)] = next_label++;
    }
    labels[leaf] = compact[static_cast<std::size_t>(root)];
  }
  return labels;
}

std::size_t Dendrogram::cluster_count(double threshold) const {
  // merges_ is sorted by distance, and every merge joins two clusters that
  // are distinct at that point of the agglomeration, so each applied merge
  // reduces the cluster count by exactly one.
  const auto first_above = std::upper_bound(
      merges_.begin(), merges_.end(), threshold,
      [](double t, const Merge& merge) { return t < merge.distance; });
  return leaf_count_ -
         static_cast<std::size_t>(first_above - merges_.begin());
}

std::string Dendrogram::to_text(
    const std::vector<std::string>& leaf_names) const {
  std::string out;
  out.reserve(merges_.size() * 48);
  for (const Merge& merge : merges_) {
    const auto name = [&](int node) -> std::string {
      if (node < static_cast<int>(leaf_count_)) {
        if (static_cast<std::size_t>(node) < leaf_names.size()) {
          return leaf_names[static_cast<std::size_t>(node)];
        }
        return "leaf:" + std::to_string(node);
      }
      return "node:" + std::to_string(node);
    };
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.4f", merge.distance);
    out += name(merge.parent) + " = " + name(merge.left) + " + " +
           name(merge.right) + " @ " + buffer + "\n";
  }
  return out;
}

Dendrogram hac_average_linkage(std::size_t n, const DistanceFn& distance,
                               const HacOptions& options, HacStats* stats) {
  if (n == 0) throw std::invalid_argument("hac: empty input");
  if (n > options.max_items) {
    throw std::length_error("hac: too many items for a materialized matrix");
  }
  if (stats != nullptr) {
    *stats = HacStats{};
    stats->items = n;
    stats->pair_distances = CondensedMatrix::pair_count(n);
    stats->matrix_bytes = stats->pair_distances * sizeof(double);
  }
  if (n == 1) return Dendrogram(1, {});

  // Materialize the condensed matrix, sharded over the flat cell range.
  // Each worker owns a contiguous block of cells; a cell's value depends
  // only on its (i, j) pair, so the result is thread-count invariant.
  CondensedMatrix matrix(n);
  scan::ParallelExecutor* executor = options.executor;
  std::unique_ptr<scan::ParallelExecutor> owned;
  if (executor == nullptr) {
    // Clamp the owned pool against oversharding: more workers than cells /
    // min-grain (or than cores) only adds wakeup latency to the fill.
    owned = std::make_unique<scan::ParallelExecutor>(
        scan::ParallelExecutor::effective_threads(
            options.threads, CondensedMatrix::pair_count(n), 256));
    executor = owned.get();
  }
  std::vector<std::size_t> nan_counts(executor->threads(), 0);
  executor->run_blocks(
      matrix.pair_count(),
      [&](std::uint64_t begin, std::uint64_t end, unsigned worker) {
        auto [i, j] = matrix.cell(static_cast<std::size_t>(begin));
        std::size_t nans = 0;
        for (std::uint64_t k = begin; k < end; ++k) {
          double d = distance(i, j);
          if (std::isnan(d)) {
            d = 1.0;  // a NaN cell would poison every comparison below
            ++nans;
          }
          matrix.flat_at(static_cast<std::size_t>(k)) = d;
          if (++j == n) {
            ++i;
            j = i + 1;
          }
        }
        nan_counts[worker] += nans;
      });
  std::size_t nan_total = 0;
  for (const std::size_t nans : nan_counts) nan_total += nans;
  if (stats != nullptr) stats->nan_distances = nan_total;
  if (options.registry != nullptr) {
    options.registry->counter("cluster.hac.runs").add();
    options.registry->counter("cluster.hac.items").add(n);
    options.registry->counter("cluster.hac.pair_distances")
        .add(matrix.pair_count());
    options.registry->counter("cluster.hac.nan_clamped").add(nan_total);
  }

  std::vector<bool> active(n, true);
  std::vector<std::size_t> sizes(n, 1);
  std::vector<int> node_id(n);
  std::iota(node_id.begin(), node_id.end(), 0);
  std::vector<Merge> merges;
  merges.reserve(n - 1);
  int next_parent = static_cast<int>(n);

  // Nearest-neighbour chain.
  std::vector<std::size_t> chain;
  chain.reserve(n);
  std::size_t remaining = n;

  // Nearest active neighbour of `a`. Ties are broken toward `prev` (the
  // previous chain element, n when absent): without this, equal distances —
  // common with duplicated page content — can cycle the chain forever.
  const auto nearest = [&](std::size_t a, std::size_t prev) {
    double best = 0.0;
    std::size_t best_index = n;
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == a) continue;
      const double d = matrix.at(a, k);
      if (best_index == n || d < best) {
        best = d;
        best_index = k;
      }
    }
    if (prev < n && active[prev] && prev != a && matrix.at(a, prev) == best) {
      return prev;
    }
    return best_index;
  };

  obs::Counter* merge_steps =
      options.registry != nullptr
          ? &options.registry->counter("cluster.hac.merges")
          : nullptr;

  while (remaining > 1) {
    if (chain.empty()) {
      for (std::size_t k = 0; k < n; ++k) {
        if (active[k]) {
          chain.push_back(k);
          break;
        }
      }
    }
    while (true) {
      const std::size_t tip = chain.back();
      const std::size_t prev = chain.size() >= 2 ? chain[chain.size() - 2] : n;
      const std::size_t next = nearest(tip, prev);
      if (chain.size() >= 2 && next == chain[chain.size() - 2]) {
        // Reciprocal nearest neighbours: merge tip and next.
        const std::size_t a = tip;
        const std::size_t b = next;
        const double d = matrix.at(a, b);
        merges.push_back(Merge{node_id[a], node_id[b], next_parent, d});
        if (merge_steps != nullptr) merge_steps->add();
        // Lance–Williams average-linkage update into slot a.
        const double wa = static_cast<double>(sizes[a]);
        const double wb = static_cast<double>(sizes[b]);
        for (std::size_t k = 0; k < n; ++k) {
          if (!active[k] || k == a || k == b) continue;
          matrix.set(a, k,
                     (wa * matrix.at(a, k) + wb * matrix.at(b, k)) /
                         (wa + wb));
        }
        active[b] = false;
        sizes[a] += sizes[b];
        node_id[a] = next_parent;
        ++next_parent;
        --remaining;
        chain.pop_back();
        chain.pop_back();
        break;
      }
      chain.push_back(next);
    }
  }
  return Dendrogram(n, std::move(merges));
}

Dendrogram hac_average_linkage(std::size_t n, const DistanceFn& distance,
                               std::size_t max_items) {
  HacOptions options;
  options.max_items = max_items;
  return hac_average_linkage(n, distance, options);
}

}  // namespace dnswild::cluster
