#include "worldgen/worldgen.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "http/factory.h"
#include "http/server.h"
#include "resolver/device.h"
#include "resolver/resolver.h"
#include "resolver/software.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/strings.h"

namespace dnswild::worldgen {

namespace {

using core::SiteCategory;
using http::HttpRequest;
using http::HttpResponse;
using net::Cidr;
using net::Ipv4;
using util::Rng;

// ---------------------------------------------------------------------------
// Address-space allocation
// ---------------------------------------------------------------------------

class PrefixAllocator {
 public:
  // Carves aligned, non-overlapping prefixes out of the unicast space,
  // skipping the reserved ranges an Internet-wide scan excludes.
  Cidr allocate(std::uint64_t min_size) {
    std::uint64_t size = 1;
    int prefix_len = 32;
    while (size < min_size && prefix_len > 0) {
      size <<= 1;
      --prefix_len;
    }
    while (true) {
      // Align the cursor to the block size.
      cursor_ = (cursor_ + size - 1) / size * size;
      const Cidr candidate(Ipv4(static_cast<std::uint32_t>(cursor_)),
                           prefix_len);
      if (cursor_ + size > 0xffffffffULL) {
        throw std::runtime_error("worldgen: IPv4 space exhausted");
      }
      if (!overlaps_reserved(candidate)) {
        cursor_ += size;
        return candidate;
      }
      cursor_ += size;  // step past and retry
    }
  }

 private:
  static bool overlaps_reserved(const Cidr& range) {
    static const Cidr kReserved[] = {
        *Cidr::parse("0.0.0.0/8"),      *Cidr::parse("10.0.0.0/8"),
        *Cidr::parse("100.64.0.0/10"),  *Cidr::parse("127.0.0.0/8"),
        *Cidr::parse("169.254.0.0/16"), *Cidr::parse("172.16.0.0/12"),
        *Cidr::parse("192.0.0.0/24"),   *Cidr::parse("192.0.2.0/24"),
        *Cidr::parse("192.168.0.0/16"), *Cidr::parse("198.18.0.0/15"),
        *Cidr::parse("198.51.100.0/24"), *Cidr::parse("203.0.113.0/24"),
        *Cidr::parse("224.0.0.0/4"),    *Cidr::parse("240.0.0.0/4"),
    };
    for (const Cidr& reserved : kReserved) {
      if (reserved.contains(range.base()) ||
          range.contains(reserved.base())) {
        return true;
      }
    }
    return false;
  }

  std::uint64_t cursor_ = 0x01000000;  // 1.0.0.0
};

// ---------------------------------------------------------------------------
// Simple TCP building blocks
// ---------------------------------------------------------------------------

// Serves the same generated response to every request and host.
class AnyHostServer : public net::TcpService {
 public:
  using Generator = std::function<HttpResponse(const HttpRequest&)>;
  explicit AnyHostServer(Generator generator,
                         std::optional<net::Certificate> cert = std::nullopt)
      : generator_(std::move(generator)), cert_(std::move(cert)) {}

  std::string respond(std::string_view request) override {
    const auto parsed = HttpRequest::parse(request);
    if (!parsed) return HttpResponse::error(400).serialize();
    return generator_(*parsed).serialize();
  }

  const net::Certificate* certificate(
      const std::optional<std::string>& sni) const override {
    (void)sni;
    return cert_ ? &*cert_ : nullptr;
  }

  // Stateless: responses are a pure function of the request, so a
  // re-materialized copy answers identically (DESIGN.md §12).
  bool reconstructible() const override { return true; }

 private:
  Generator generator_;
  std::optional<net::Certificate> cert_;
};

net::Certificate legit_cert(const std::string& domain) {
  net::Certificate cert;
  cert.common_name = domain;
  cert.subject_alt_names = {"www." + domain, domain};
  cert.issuer = "TrustSign Root CA";
  return cert;
}

// ---------------------------------------------------------------------------
// Country plan (Tables 1–2 + §2.3 case studies)
// ---------------------------------------------------------------------------

const std::vector<CountryPlan>& builtin_country_plan() {
  static const std::vector<CountryPlan> kPlan = {
      // Table 1 anchors (start shares of 26.8M; end counts / start counts).
      {"US", 0.1104, 0.858}, {"CN", 0.0902, 0.870}, {"TR", 0.0537, 0.678},
      {"VN", 0.0520, 0.746}, {"MX", 0.0512, 0.856}, {"IN", 0.0474, 1.127},
      {"TH", 0.0453, 0.465}, {"IT", 0.0437, 0.617}, {"CO", 0.0396, 0.638},
      {"TW", 0.0396, 0.427},
      // §2.3 case studies.
      {"AR", 0.0290, 0.250}, {"GB", 0.0210, 0.364}, {"MY", 0.0100, 1.597},
      {"LB", 0.0035, 1.767}, {"KR", 0.0260, 0.350},
      // Long tail with typical decline (global end total ≈ 66%).
      {"BR", 0.0250, 0.550}, {"RU", 0.0240, 0.570}, {"ID", 0.0330, 0.550},
      {"IR", 0.0300, 0.760}, {"EG", 0.0200, 0.920}, {"PL", 0.0180, 0.480},
      {"DZ", 0.0150, 0.920}, {"JP", 0.0120, 0.600}, {"DE", 0.0120, 0.480},
      {"FR", 0.0100, 0.480}, {"ES", 0.0090, 0.480}, {"UA", 0.0090, 0.480},
      {"RO", 0.0080, 0.550}, {"GR", 0.0070, 0.550}, {"BE", 0.0055, 0.550},
      {"MN", 0.0042, 0.600}, {"EE", 0.0040, 0.550}, {"CZ", 0.0040, 0.550},
      {"HU", 0.0040, 0.550}, {"BG", 0.0040, 0.550}, {"RS", 0.0035, 0.550},
      {"PH", 0.0060, 0.450}, {"PK", 0.0060, 0.450}, {"BD", 0.0050, 0.450},
      {"SA", 0.0045, 0.550}, {"NG", 0.0040, 0.900}, {"KE", 0.0035, 0.900},
      {"ZA", 0.0040, 0.900}, {"MA", 0.0035, 0.900}, {"TN", 0.0028, 0.900},
      {"CL", 0.0045, 0.550}, {"PE", 0.0040, 0.500}, {"VE", 0.0040, 0.450},
      {"EC", 0.0035, 0.500}, {"CA", 0.0050, 0.700}, {"AU", 0.0042, 0.650},
      {"NL", 0.0042, 0.600}, {"SE", 0.0035, 0.600}, {"NO", 0.0026, 0.600},
      {"CH", 0.0026, 0.600}, {"AT", 0.0026, 0.600}, {"PT", 0.0035, 0.550},
      {"HK", 0.0035, 0.550}, {"SG", 0.0026, 0.650}, {"NZ", 0.0018, 0.650},
      {"AE", 0.0028, 0.600}, {"IL", 0.0026, 0.600}, {"KZ", 0.0035, 0.550},
  };
  return kPlan;
}

// Censorship plan: country -> (compliance, censored domains, landing owner).
struct CensorRule {
  double compliance = 1.0;
  std::vector<std::string> domains;
  std::string landing_country;  // whose landing pages are returned
};

std::map<std::string, std::vector<CensorRule>> censor_plan() {
  const std::vector<std::string> social = {"facebook.com", "twitter.com",
                                           "youtube.com"};
  const std::vector<std::string> adult = {"youporn.com", "adultfinder.com",
                                          "xvideos.com", "pornhub.com"};
  const std::vector<std::string> dating = {"match.com", "okcupid.com",
                                           "eharmony.com"};
  const std::vector<std::string> gambling = {"bet-at-home.com", "bet365.com",
                                             "pokerstars.com",
                                             "williamhill.com"};
  const std::vector<std::string> filesharing = {
      "kickass.to", "thepiratebay.se", "torrentz.eu", "extratorrent.cc",
      "1337x.to"};
  const auto join = [](std::initializer_list<std::vector<std::string>> sets) {
    std::vector<std::string> out;
    for (const auto& set : sets) out.insert(out.end(), set.begin(), set.end());
    return out;
  };

  std::map<std::string, std::vector<CensorRule>> plan;
  // Iran: near-complete coverage of the social set (805,559 resolvers =
  // ~all of Iran, §4.2); adult/dating censored by a smaller share.
  plan["IR"] = {{0.97, social, "IR"}, {0.22, adult, "IR"}};
  // Indonesia: per-domain coverage anchors (91.6% for one adult domain,
  // 29.3% of the youporn redirects, 88.5% for blogspot; §4.2).
  plan["ID"] = {
      {0.916, {"adultfinder.com", "blogspot.com", "rotten.com"}, "ID"},
      {0.287, {"youporn.com", "bet-at-home.com"}, "ID"}};
  // Turkey: 52.9% of the 696,777 youporn redirects -> ~38% of TR resolvers.
  plan["TR"] = {{0.38, join({adult, {"rotten.com"}}), "TR"}};
  // Malaysia: 8.4% of the youporn redirects -> ~22% of MY resolvers.
  plan["MY"] = {{0.22, adult, "MY"}};
  plan["MN"] = {{0.789, adult, "MN"}};
  plan["GR"] = {{0.839, {"bet-at-home.com", "bet365.com"}, "GR"}};
  plan["BE"] = {{0.786, {"bet-at-home.com", "bet365.com"}, "BE"}};
  plan["IT"] = {{0.693, {"bet-at-home.com", "bet365.com", "pokerstars.com"}, "IT"},
                {0.35, {"kickass.to", "thepiratebay.se"}, "IT"}};
  plan["RU"] = {{0.22, gambling, "RU"},
                {0.45, {"kickass.to", "thepiratebay.se"}, "RU"}};
  // Estonia answers with addresses assigned to *Russian* censorship (§6).
  plan["EE"] = {{0.569, gambling, "RU"}};
  // Additional censoring countries (the paper reports 34 with landings).
  plan["VN"] = {{0.10, social, "VN"}};
  plan["TH"] = {{0.12, join({adult, gambling}), "TH"}};
  plan["PK"] = {{0.40, join({adult, {"youtube.com"}}), "PK"}};
  plan["SA"] = {{0.30, join({adult, dating, gambling}), "SA"}};
  plan["AE"] = {{0.35, join({adult, dating}), "AE"}};
  plan["EG"] = {{0.30, adult, "EG"}};
  plan["DZ"] = {{0.30, adult, "DZ"}};
  plan["MA"] = {{0.30, adult, "MA"}};
  plan["TN"] = {{0.20, adult, "TN"}};
  plan["KZ"] = {{0.20, social, "KZ"}};
  plan["UA"] = {{0.10, {"thepiratebay.se"}, "UA"}};
  plan["IN"] = {{0.08, {"thepiratebay.se", "kickass.to"}, "IN"}};
  plan["BD"] = {{0.40, adult, "BD"}};
  plan["PH"] = {{0.20, adult, "PH"}};
  plan["BR"] = {{0.06, {"thepiratebay.se"}, "BR"}};
  plan["CO"] = {{0.10, adult, "CO"}};
  plan["MX"] = {{0.08, adult, "MX"}};
  plan["VE"] = {{0.30, social, "VE"}};
  plan["PE"] = {{0.10, adult, "PE"}};
  plan["RO"] = {{0.15, gambling, "RO"}};
  plan["RS"] = {{0.15, gambling, "RS"}};
  plan["BG"] = {{0.15, gambling, "BG"}};
  plan["HU"] = {{0.20, gambling, "HU"}};
  plan["CZ"] = {{0.15, gambling, "CZ"}};
  plan["NG"] = {{0.15, adult, "NG"}};
  plan["KE"] = {{0.15, adult, "KE"}};
  return plan;
}

// Landing-page IPs per censoring country (≈ 299 total across 34 countries,
// §4.2); larger censorship systems operate more entry points.
int landing_count_for(const std::string& country) {
  static const std::map<std::string, int> kCounts = {
      {"IR", 24}, {"ID", 22}, {"TR", 20}, {"RU", 18}, {"IT", 14},
      {"SA", 12}, {"TH", 12}, {"PK", 10}, {"VN", 10}, {"MY", 10},
      {"KZ", 8},  {"GR", 8},  {"BE", 8},  {"MN", 6},  {"AE", 8},
      {"EG", 6},  {"DZ", 6},  {"MA", 6},  {"TN", 4},  {"UA", 6},
      {"IN", 8},  {"BD", 6},  {"PH", 6},  {"BR", 8},  {"CO", 4},
      {"MX", 4},  {"VE", 6},  {"PE", 4},  {"RO", 4},  {"RS", 4},
      {"BG", 4},  {"HU", 4},  {"CZ", 4},  {"NG", 4},  {"KE", 3},
  };
  const auto it = kCounts.find(country);
  return it == kCounts.end() ? 0 : it->second;
}

// Generic (country-independent) manipulator taxonomy.
enum class Manip {
  kNone,
  kStaticError,    // one static IP -> error pages
  kStaticLogin,    // one static IP -> router login
  kStaticParking,  // one static IP -> parking
  kStaticMisc,     // one static IP -> personal page
  kSelfIpAll,      // own address for everything
  kSelfIpSome,     // own address for one category
  kLanForge,       // RFC1918 addresses (captive portals)
  kNsOnly,         // NS referrals only: recursion denied (§4.1, 2.0%)
  kNxSearch,       // NX names -> search portal
  kNxParking,
  kNxError,
  kNxLogin,
  kNxMisc,
  kProxyHttp,
  kProxyTls,
  kAdTamper,
  kAdBlank,
  kSearchAds,
  kPhishPaypal,
  kPhishBank,
  kMalwareUpdate,
  kMailIntercept,
  kMalwareBlocking,   // security products sinkholing malware domains
  kMalwareEmpty,      // AV DNS protection: NXDOMAIN/empty for malware names
  kMalwareSearch,     // malware domains -> search portals (§4.2 Search)
  kMalwareError,      // malware domains -> dead/error hosting
  kParentalBlocking,  // parental control blocking dating/adult
  kMalwareParking,    // re-registered malware domains -> parking
  kEmptyAnswers,      // NOERROR with empty answers for every name (§4.1)
};

struct ManipPlanEntry {
  Manip kind;
  double paper_count;  // resolvers in the paper (scaled by population)
  bool floored;        // apply the case-study floor at small scale
};

const std::vector<ManipPlanEntry>& manip_plan() {
  // Paper-reported resolver counts (of 26.8M initial / 19.2M suspicious)
  // for each behaviour; percentages converted to absolute counts.
  // The generic (every-domain) manipulators sum to ~0.6% of the population
  // so the MX / ground-truth categories land at the paper's unexpected
  // rates; the label mix inside follows Table 5's GroundTr. column
  // (Error 55 : Login 16 : Parking 23 : Misc 5). NX monetizers sum to
  // ~13% (NX unexpected = 13.7%) split per the NX column. Category-
  // specific populations reproduce the Malware / Dating / MX columns.
  static const std::vector<ManipPlanEntry> kPlan = {
      {Manip::kStaticError, 66000, false},
      {Manip::kStaticLogin, 20000, false},
      {Manip::kStaticParking, 28000, false},
      {Manip::kStaticMisc, 6000, false},
      {Manip::kSelfIpAll, 8194, true},
      {Manip::kSelfIpSome, 30000, false},
      {Manip::kLanForge, 25000, false},
      {Manip::kNsOnly, 380000, false},
      {Manip::kEmptyAnswers, 1470000, false},
      {Manip::kNxSearch, 1200000, false},
      {Manip::kNxParking, 780000, false},
      {Manip::kNxError, 830000, false},
      {Manip::kNxLogin, 97000, false},
      {Manip::kNxMisc, 290000, false},
      {Manip::kProxyHttp, 10179, true},
      {Manip::kProxyTls, 99, true},
      {Manip::kAdTamper, 281, true},
      {Manip::kAdBlank, 14, true},
      {Manip::kSearchAds, 7, true},
      {Manip::kPhishPaypal, 176, true},
      {Manip::kPhishBank, 331, true},
      {Manip::kMalwareUpdate, 228, true},
      {Manip::kMailIntercept, 100000, true},
      {Manip::kMalwareBlocking, 150000, false},
      {Manip::kMalwareEmpty, 600000, false},
      {Manip::kMalwareSearch, 330000, false},
      {Manip::kMalwareError, 200000, false},
      {Manip::kParentalBlocking, 40000, false},
      {Manip::kMalwareParking, 550000, false},
  };
  return kPlan;
}

// ---------------------------------------------------------------------------
// Resolver population derivation (DESIGN.md §12)
// ---------------------------------------------------------------------------

// Namespaced per-host hash streams: every per-host random decision draws
// from an Rng seeded by a hash of (world seed, host index) — never from a
// generator shared across hosts — so host i's full identity is a pure
// function of the plan, computable at first touch, in any order, from any
// thread, and identical between eager and lazy construction.
constexpr std::uint64_t kHostTag = 0x507aULL;
constexpr std::uint64_t kNsAttach = 0xa77acULL;
constexpr std::uint64_t kNsService = 0x5e7f1ULL;

struct ResolvedCensorRule {
  double compliance = 1.0;
  std::vector<std::string> domains;
  std::vector<Ipv4> landing_ips;
};

// The whole resolver population (NOERROR + REFUSED + SERVFAIL) as one
// net::HostSource: segments record the per-country sampling plan; the two
// derivation entry points turn (plan, index) into a host. Eager worlds
// iterate derive/materialize up front; lazy worlds hand the plan to
// World::add_host_block and hosts materialize on first probe.
class ResolverPlan final : public net::HostSource {
 public:
  enum class Kind : std::uint8_t { kNoError, kRefused, kServFail };

  struct PoolRef {
    Cidr pool;
    double weight = 0.0;
  };

  struct Segment {
    std::uint64_t first = 0;
    std::uint64_t count = 0;
    Kind kind = Kind::kNoError;
    std::string country;
    std::vector<PoolRef> ases;
    std::vector<double> as_weights;  // cached for Rng::weighted
    std::uint64_t base_count = 0;    // hosts minus later-activating extras
    double decline = 0.0;
    bool collapse_as0 = false;
    bool gfw_suppressed = false;  // CN: honest answers rarely escape
    std::vector<ResolvedCensorRule> censor;
    Cidr net;  // REFUSED / SERVFAIL static range
  };

  // Everything derive_full produces besides the service objects.
  struct Derived {
    net::HostConfig config;
    resolver::ResolverConfig resolver;
    int device_index = -1;  // >= 0: resolver::device_catalog() entry
    std::uint32_t censor_overrides = 0;
  };

  std::uint64_t total() const noexcept {
    if (segments.empty()) return 0;
    return segments.back().first + segments.back().count;
  }

  const Segment& segment_of(std::uint64_t index) const noexcept {
    auto it = std::upper_bound(
        segments.begin(), segments.end(), index,
        [](std::uint64_t v, const Segment& s) { return v < s.first; });
    return *(it - 1);
  }

  Derived derive_full(std::uint64_t index) const;

  net::HostConfig derive_config(std::uint64_t index) const override {
    const Segment& seg = segment_of(index);
    const std::uint64_t h = util::hash_words({seed, kHostTag, index});
    net::HostConfig config;
    config.seed = h;
    derive_attachment(seg, index - seg.first, h, config);
    return config;
  }

  net::HostServices materialize(std::uint64_t index) const override {
    Derived derived = derive_full(index);
    net::HostServices services;
    services.udp.emplace_back(
        53,
        std::make_unique<resolver::OpenResolverService>(derived.resolver));
    if (derived.device_index >= 0) {
      const resolver::DeviceProfile& device =
          resolver::device_catalog()[static_cast<std::size_t>(
              derived.device_index)];
      for (const auto& [port, banner] : device.banners) {
        if (port == 80) {
          services.tcp.emplace_back(
              80, std::make_unique<AnyHostServer>(
                      [body = banner](const HttpRequest&) {
                        return HttpResponse::ok(body);
                      }));
        } else {
          services.tcp.emplace_back(
              port, std::make_unique<http::BannerService>(banner));
        }
      }
    }
    return services;
  }

  std::uint64_t seed = 0;
  resolver::AuthRegistry* registry = nullptr;
  const net::SimClock* clock = nullptr;
  bool with_devices = true;
  std::vector<Segment> segments;
  std::vector<std::uint8_t> manip_queue;  // shuffled Manip values
  resolver::ChaosPopulationMix chaos_mix{};
  std::vector<double> software_weights;
  std::vector<resolver::SnoopProfile> snoop_profiles;
  std::vector<double> snoop_weights;
  std::vector<double> device_weights;
  std::vector<std::string> gfw_domains;

  // Manipulation target tables (addresses of the eager infrastructure).
  std::vector<Ipv4> error_targets, login_targets, portal_targets,
      parking_targets, search_targets, misc_targets, blocking_targets,
      ad_tamper_targets, ad_blank_targets, search_ads_targets,
      malware_targets, paypal_targets, bank_targets, proxy_http_targets,
      proxy_tls_targets, mail_intercept_targets;

  // Study-domain name lists by category (snapshot of core::DomainSet).
  std::vector<std::string> tracking_names, ads_names, mail_names,
      malware_names, adult_names;

 private:
  void derive_attachment(const Segment& seg, std::uint64_t rel,
                         std::uint64_t h, net::HostConfig& config) const {
    if (seg.kind != Kind::kNoError) {
      config.attachment.ip = seg.net.at(4 + rel);
      return;
    }
    Rng attach(h ^ kNsAttach);
    const std::size_t as_index = attach.weighted(seg.as_weights);
    const PoolRef& as_entry = seg.ases[as_index];
    // Churn class mixture (Fig. 2 calibration; see DESIGN.md §5).
    const std::size_t churn_class =
        attach.weighted({0.45, 0.436, 0.094, 0.02});
    if (churn_class == 3) {
      config.attachment.ip =
          as_entry.pool.at(attach.below(as_entry.pool.size() - 8) + 4);
    } else {
      config.attachment.dynamic = true;
      config.attachment.pool = as_entry.pool;
      config.attachment.mean_lease_days =
          churn_class == 0 ? 0.4 : churn_class == 1 ? 40.0 : 300.0;
    }
    if (rel >= seg.base_count) {
      config.active_from_day = 5.0 + attach.uniform() * 370.0;
    }
    const bool decommissioned = seg.collapse_as0 && as_index == 0
                                    ? attach.chance(0.978)
                                    : attach.chance(seg.decline);
    if (decommissioned) {
      config.active_until_day = 5.0 + attach.uniform() * 370.0;
    }
  }

};

ResolverPlan::Derived ResolverPlan::derive_full(std::uint64_t index) const {
  const Segment& seg = segment_of(index);
  const std::uint64_t rel = index - seg.first;
  const std::uint64_t h = util::hash_words({seed, kHostTag, index});
  Derived out;
  out.config.seed = h;
  derive_attachment(seg, rel, h, out.config);

  Rng svc(h ^ kNsService);
  resolver::ResolverConfig& rc = out.resolver;
  rc.registry = registry;
  rc.clock = clock;
  rc.seed = svc.next();

  if (seg.kind == Kind::kRefused) {
    rc.behavior.base = resolver::BasePolicy::kRefuseAll;
    return out;
  }
  if (seg.kind == Kind::kServFail) {
    rc.behavior.base = resolver::BasePolicy::kServFailAll;
    // High drop rate makes the SERVFAIL line fluctuate week to week.
    rc.behavior.drop_rate = 0.35;
    return out;
  }

  // Re-derive the AS pick so reply_src draws from the same pool the host
  // attaches to (the attach stream is consumed independently above).
  Rng as_pick(h ^ kNsAttach);
  const PoolRef& as_entry = seg.ases[as_pick.weighted(seg.as_weights)];

  rc.region = seg.country;
  rc.behavior.drop_rate = 0.01;

  // CHAOS surface (Table 3 mix).
  {
    const auto& catalog = resolver::software_catalog();
    const double draw = svc.uniform();
    if (draw < chaos_mix.refused_or_servfail) {
      rc.chaos = svc.chance(0.5) ? resolver::ChaosBehavior::kRefused
                                 : resolver::ChaosBehavior::kServFail;
    } else if (draw < chaos_mix.refused_or_servfail + chaos_mix.noerror_empty) {
      rc.chaos = resolver::ChaosBehavior::kNoErrorEmpty;
    } else if (draw < chaos_mix.refused_or_servfail + chaos_mix.noerror_empty +
                          chaos_mix.hidden_string) {
      rc.chaos = resolver::ChaosBehavior::kHiddenString;
      rc.version_banner = svc.pick(resolver::hidden_version_strings());
    } else {
      rc.chaos = resolver::ChaosBehavior::kRevealVersion;
      const std::size_t software = svc.weighted(software_weights);
      rc.version_banner = software < catalog.size()
                              ? catalog[software].banner()
                              : catalog.front().banner();
    }
  }

  // Snoop profile (§2.6).
  {
    const std::size_t pick = svc.weighted(snoop_weights);
    rc.snoop.profile = snoop_profiles[pick < snoop_profiles.size() ? pick : 0];
    rc.snoop.tld_ttl = 21600;
  }

  // Multi-homed forwarders & port manglers (§2.2, §3.3).
  if (svc.chance(0.028)) {
    rc.reply_src = as_entry.pool.at(svc.below(as_entry.pool.size() - 8) + 4);
  }
  if (svc.chance(0.015)) rc.mangle_reply_port = true;

  // Country censorship (§4.2).
  for (const ResolvedCensorRule& rule : seg.censor) {
    if (!svc.chance(rule.compliance)) continue;
    resolver::Override censor;
    // Each resolver enforces its own subset of the blocklist (real
    // deployments lag updates), diversifying per-domain coverage.
    for (const auto& name : rule.domains) {
      if (svc.chance(0.85)) censor.domains.push_back(name);
    }
    if (censor.domains.empty()) censor.domains = {rule.domains[0]};
    censor.action = resolver::OverrideAction::kForgeIps;
    censor.ips = {rule.landing_ips[svc.below(rule.landing_ips.size())]};
    censor.forged_ttl = 300;
    rc.behavior.overrides.push_back(std::move(censor));
    ++out.censor_overrides;
  }
  // GFW suppression: most Chinese resolvers never get their honest answer
  // out for censored names; ~2.4% do (the dual-response group, §4.2).
  if (seg.gfw_suppressed && !svc.chance(0.024)) {
    resolver::Override suppress;
    suppress.match_suffixes = gfw_domains;
    suppress.action = resolver::OverrideAction::kIgnore;
    rc.behavior.overrides.push_back(std::move(suppress));
  }

  // Generic manipulation (§4.1, §4.3). NOERROR hosts occupy the low
  // indices, so the global index doubles as the manip-queue ordinal.
  const Manip manip =
      static_cast<Manip>(manip_queue[index % manip_queue.size()]);
  const auto pick_ip = [&svc](const std::vector<Ipv4>& ips) {
    return std::vector<Ipv4>{ips[svc.below(ips.size())]};
  };
  const auto add_match_all = [&](resolver::OverrideAction action,
                                 std::vector<Ipv4> ips) {
    resolver::Override override;
    override.match_all = true;
    override.action = action;
    override.ips = std::move(ips);
    rc.behavior.overrides.push_back(std::move(override));
  };
  const auto add_nx = [&](std::vector<Ipv4> ips) {
    resolver::Override override;
    override.match_nonexistent = true;
    override.action = resolver::OverrideAction::kForgeIps;
    override.ips = std::move(ips);
    rc.behavior.overrides.push_back(std::move(override));
  };
  const auto add_domains = [&](std::vector<std::string> names,
                               std::vector<Ipv4> ips) {
    resolver::Override override;
    override.domains = std::move(names);
    override.action = resolver::OverrideAction::kForgeIps;
    override.ips = std::move(ips);
    rc.behavior.overrides.push_back(std::move(override));
  };

  bool force_router_device = false;
  switch (manip) {
    case Manip::kNone: break;
    case Manip::kStaticError:
      add_match_all(resolver::OverrideAction::kForgeIps,
                    pick_ip(error_targets));
      break;
    case Manip::kStaticLogin:
      add_match_all(resolver::OverrideAction::kForgeIps,
                    pick_ip(login_targets));
      break;
    case Manip::kStaticParking:
      add_match_all(resolver::OverrideAction::kForgeIps,
                    pick_ip(parking_targets));
      break;
    case Manip::kStaticMisc:
      add_match_all(resolver::OverrideAction::kForgeIps,
                    pick_ip(misc_targets));
      break;
    case Manip::kSelfIpAll:
      add_match_all(resolver::OverrideAction::kSelfIp, {});
      force_router_device = true;
      break;
    case Manip::kSelfIpSome: {
      resolver::Override override;
      override.domains = tracking_names;
      override.action = resolver::OverrideAction::kSelfIp;
      rc.behavior.overrides.push_back(std::move(override));
      force_router_device = true;
      break;
    }
    case Manip::kLanForge:
      add_match_all(resolver::OverrideAction::kForgeIps,
                    {Ipv4(192, 168, 1, 1)});
      break;
    case Manip::kNsOnly:
      rc.behavior.base = resolver::BasePolicy::kNsOnlyAll;
      break;
    case Manip::kNxSearch: add_nx(pick_ip(search_targets)); break;
    case Manip::kNxParking: add_nx(pick_ip(parking_targets)); break;
    case Manip::kNxError: add_nx(pick_ip(error_targets)); break;
    case Manip::kNxLogin: add_nx(pick_ip(portal_targets)); break;
    case Manip::kNxMisc: add_nx(pick_ip(misc_targets)); break;
    case Manip::kProxyHttp:
      add_match_all(resolver::OverrideAction::kForgeIps,
                    pick_ip(proxy_http_targets));
      break;
    case Manip::kProxyTls:
      add_match_all(resolver::OverrideAction::kForgeIps,
                    pick_ip(proxy_tls_targets));
      break;
    case Manip::kAdTamper:
      add_domains(ads_names, pick_ip(ad_tamper_targets));
      break;
    case Manip::kAdBlank:
      add_domains(ads_names, pick_ip(ad_blank_targets));
      break;
    case Manip::kSearchAds:
      add_nx(pick_ip(search_ads_targets));
      break;
    case Manip::kPhishPaypal:
      add_domains({"paypal.com"}, pick_ip(paypal_targets));
      break;
    case Manip::kPhishBank:
      add_domains({"intesasanpaolo.it", "unicredit.it"},
                  pick_ip(bank_targets));
      break;
    case Manip::kMalwareUpdate:
      add_domains({"update.adobe.com", "get.adobe.com",
                   "download.oracle.com"},
                  pick_ip(malware_targets));
      break;
    case Manip::kMailIntercept:
      add_domains(mail_names, pick_ip(mail_intercept_targets));
      break;
    case Manip::kEmptyAnswers:
      add_match_all(resolver::OverrideAction::kEmptyAnswer, {});
      break;
    case Manip::kMalwareEmpty: {
      resolver::Override override;
      override.domains = malware_names;
      override.action = svc.chance(0.5)
                            ? resolver::OverrideAction::kNxDomain
                            : resolver::OverrideAction::kEmptyAnswer;
      rc.behavior.overrides.push_back(std::move(override));
      break;
    }
    case Manip::kMalwareSearch: {
      // "six out of 13 malware domains" redirect to search (§4.2).
      auto malware = malware_names;
      malware.resize(6);
      add_domains(std::move(malware), pick_ip(search_targets));
      break;
    }
    case Manip::kMalwareError: {
      std::vector<std::string> subset;
      for (const auto& name : malware_names) {
        if (svc.chance(0.6)) subset.push_back(name);
      }
      if (subset.empty()) subset.push_back(malware_names.front());
      add_domains(std::move(subset), pick_ip(error_targets));
      break;
    }
    case Manip::kMalwareBlocking: {
      // Every blocker covers irc.zief.pl; the rest of the list varies
      // (drives the 21.4% max vs 9.0% avg split in Table 5).
      std::vector<std::string> blocked = {"irc.zief.pl"};
      for (const auto& name : malware_names) {
        if (name != "irc.zief.pl" && svc.chance(0.35)) {
          blocked.push_back(name);
        }
      }
      add_domains(std::move(blocked), pick_ip(blocking_targets));
      break;
    }
    case Manip::kParentalBlocking: {
      std::vector<std::string> blocked = {"okcupid.com"};
      for (const auto& name : adult_names) {
        if (svc.chance(0.5)) blocked.push_back(name);
      }
      add_domains(std::move(blocked), pick_ip(blocking_targets));
      break;
    }
    case Manip::kMalwareParking: {
      // Re-registered blacklisted domains + torproject (§4.2 Parking).
      std::vector<std::string> parked = {"ytrewq.cn", "qwerty-update.cn"};
      if (svc.chance(0.3)) parked.push_back("torproject.org");
      add_domains(std::move(parked), pick_ip(parking_targets));
      break;
    }
  }

  // Device TCP surface (Table 4): 26.3% expose a scannable service.
  if (with_devices &&
      (force_router_device || svc.chance(resolver::kTcpResponsiveShare))) {
    const std::size_t device_index =
        force_router_device ? 0 : svc.weighted(device_weights);
    out.device_index = static_cast<int>(
        device_index < device_weights.size() ? device_index : 0);
  }
  return out;
}

}  // namespace

const std::vector<CountryPlan>& default_country_plan() {
  return builtin_country_plan();
}

// ---------------------------------------------------------------------------
// generate_world
// ---------------------------------------------------------------------------

GeneratedWorld generate_world(const WorldGenConfig& config) {
  GeneratedWorld out;
  out.world = std::make_unique<net::World>(config.seed);
  out.registry = std::make_unique<resolver::AuthRegistry>();
  out.domains = core::DomainSet::study_set();

  net::World& world = *out.world;
  resolver::AuthRegistry& registry = *out.registry;
  Rng rng(util::mix64(config.seed) ^ 0x90a7ULL);
  PrefixAllocator allocator;
  std::uint32_t next_asn = 64500;

  const auto new_as = [&](std::string name, std::string country,
                          net::AsKind kind, std::uint64_t size) {
    const std::uint32_t asn = next_asn++;
    world.asdb().add_as(net::AsInfo{asn, std::move(name), std::move(country),
                                    kind});
    const Cidr prefix = allocator.allocate(size);
    world.asdb().add_prefix(prefix, asn);
    // Dense binding slots for every routed prefix: address lookups during
    // scans become one binary search + an array index (DESIGN.md §12).
    world.register_address_range(prefix);
    out.universe.push_back(prefix);
    return prefix;
  };

  // --- scanner / vantage infrastructure ---------------------------------
  const Cidr scanner_net =
      new_as("DNSWILD-RESEARCH", "DE", net::AsKind::kEnterprise, 256);
  out.scanner_ip = scanner_net.at(1);
  out.vantage_ip = scanner_net.at(2);
  const Ipv4 scan_web_ip = scanner_net.at(3);
  const Cidr scanner2_net =
      new_as("DNSWILD-RESEARCH-2", "DE", net::AsKind::kEnterprise, 256);
  out.verification_scanner_ip = scanner2_net.at(1);

  out.scan_zone = dns::Name::must_parse("probe.dnswild-study.example");
  registry.add_domain("probe.dnswild-study.example", {scan_web_ip}, 60,
                      /*wildcard=*/true);
  world.rdns().set(out.scanner_ip, "scanner.dnswild-study.example");
  registry.add_a_record("scanner.dnswild-study.example", out.scanner_ip);

  // --- hosting for the study domains -------------------------------------
  // One CDN with regional views plus per-domain origin hosting.
  const Cidr cdn_us = new_as("GlobalCDN US", "US", net::AsKind::kCdn, 64);
  const Cidr cdn_eu = new_as("GlobalCDN EU", "DE", net::AsKind::kCdn, 64);
  const Cidr cdn_as = new_as("GlobalCDN APAC", "SG", net::AsKind::kCdn, 64);
  // Off-net CDN caches embedded inside ISP networks (the Akamai effect the
  // prefilter's certificate rule exists for, §3.4).
  const Cidr cdn_offnet = new_as("GlobalCDN OffNet", "BR",
                                 net::AsKind::kCdn, 64);

  net::Certificate cdn_default_cert;
  cdn_default_cert.common_name = "*.edge.globalcdn.example";
  cdn_default_cert.issuer = "TrustSign Root CA";

  std::uint32_t hosting_counter = 0;
  const auto host_static_web = [&](Ipv4 ip,
                                   std::unique_ptr<net::TcpService> web,
                                   std::unique_ptr<net::TcpService> tls =
                                       nullptr) {
    net::HostConfig host_config;
    host_config.attachment.ip = ip;
    const net::HostId id = world.add_host(host_config);
    if (tls) {
      world.set_tcp_service(id, 443, std::move(tls));
    }
    world.set_tcp_service(id, 80, std::move(web));
    return id;
  };

  // Content oracle: the canonical representation of any study domain.
  const auto legit_response = [&, domains = out.domains](
                                  const HttpRequest& request,
                                  std::uint64_t nonce) -> std::optional<HttpResponse> {
    const core::StudyDomain* domain = domains.find(request.host);
    if (domain == nullptr || !domain->exists) return std::nullopt;
    return HttpResponse::ok(http::legit_site(domain->name, domain->category,
                                             /*variant=*/0, nonce));
  };

  std::unordered_map<std::string, int> domain_host_count;
  const auto add_origin = [&](const core::StudyDomain& domain, Cidr net_range,
                              int count, bool on_cdn) {
    std::vector<Ipv4> ips;
    for (int i = 0; i < count; ++i) {
      const Ipv4 ip = net_range.at(16 + (hosting_counter++ % 40));
      ips.push_back(ip);
      auto cert = legit_cert(domain.name);
      auto server = std::make_unique<http::WebServer>();
      const std::string name = domain.name;
      std::uint64_t nonce_seed = util::fnv1a(domain.name);
      server->add_vhost(
          domain.name,
          [name, category = domain.category,
           nonce = nonce_seed](const HttpRequest&) mutable {
            return HttpResponse::ok(
                http::legit_site(name, category, 0, nonce++));
          },
          cert);
      if (on_cdn) server->set_default_certificate(cdn_default_cert);
      net::HostConfig host_config;
      host_config.attachment.ip = ip;
      const net::HostId id = world.add_host(host_config);
      // The same service object answers both plain and TLS connections.
      world.set_tcp_service(id, 80, std::move(server));
      auto tls_server = std::make_unique<http::WebServer>();
      tls_server->add_vhost(
          domain.name,
          [name, category = domain.category,
           nonce = nonce_seed](const HttpRequest&) mutable {
            return HttpResponse::ok(
                http::legit_site(name, category, 0, nonce++));
          },
          cert);
      // Real servers present a default certificate without SNI — the CDN
      // provider cert on edges, the host cert on origins. (TLS relays
      // cannot, which rule iii of the prefilter exploits.)
      tls_server->set_default_certificate(
          on_cdn ? cdn_default_cert : std::move(cert));
      world.set_tcp_service(id, 443, std::move(tls_server));

      // Mail hosts also speak SMTP/POP3/IMAP.
      if (domain.is_mx_host) {
        const std::string provider = domain.name;
        world.set_tcp_service(id, 25, std::make_unique<http::BannerService>(
            "220 " + provider + " ESMTP ready\r\n"));
        world.set_tcp_service(id, 110, std::make_unique<http::BannerService>(
            "+OK " + provider + " POP3 service\r\n"));
        world.set_tcp_service(id, 143, std::make_unique<http::BannerService>(
            "* OK " + provider + " IMAP4rev1 at your service\r\n"));
      }

      // rDNS forward-confirmation material (§3.4 rule ii).
      const std::string rdns_name =
          "host" + std::to_string(domain_host_count[domain.name]++) + "." +
          domain.name;
      world.rdns().set(ip, rdns_name);
      registry.add_a_record(rdns_name, ip);
    }
    return ips;
  };

  {
    // Per-domain hosting ASes; one fresh AS per ~6 domains.
    Cidr current_hosting{};
    int domains_in_as = 0;
    int hosting_index = 0;
    for (const core::StudyDomain& domain : out.domains.all()) {
      if (!domain.exists) continue;
      const bool cdn_hosted =
          !domain.is_mx_host &&
          (domain.category == SiteCategory::kAlexa ||
           domain.category == SiteCategory::kAds ||
           domain.category == SiteCategory::kAntivirus) &&
          (hosting_index % 2 == 0);
      if (domains_in_as == 0) {
        current_hosting = new_as("Hosting-" + std::to_string(hosting_index),
                                 hosting_index % 3 == 0   ? "US"
                                 : hosting_index % 3 == 1 ? "DE"
                                                          : "SG",
                                 net::AsKind::kHosting, 64);
        domains_in_as = 6;
      }
      --domains_in_as;
      ++hosting_index;

      if (cdn_hosted) {
        // CDN zone: regional answers spanning several ASes + off-net.
        const auto us_ips = add_origin(domain, cdn_us, 1, true);
        const auto eu_ips = add_origin(domain, cdn_eu, 1, true);
        const auto as_ips = add_origin(domain, cdn_as, 1, true);
        const auto off_ips = add_origin(domain, cdn_offnet, 1, true);
        std::unordered_map<std::string, std::vector<Ipv4>> regional;
        regional["US"] = us_ips;
        regional["DE"] = eu_ips;
        regional["FR"] = eu_ips;
        regional["GB"] = eu_ips;
        regional["SG"] = as_ips;
        regional["CN"] = as_ips;
        regional["JP"] = as_ips;
        regional["BR"] = off_ips;  // off-net edge: AS the prefilter's
        regional["CO"] = off_ips;  // trusted views never see (§3.4)
        regional["MX"] = off_ips;
        // CDN customers alias into the provider's edge zone; resolutions
        // walk the CNAME chain the way real CDN answers do.
        std::string edge_label = domain.name;
        for (char& c : edge_label) {
          if (c == '.') c = '-';
        }
        const std::string edge = edge_label + ".edge.globalcdn.example";
        registry.add_cname(domain.name, edge);
        registry.add_cdn_domain(edge, us_ips, std::move(regional), 60);
      } else {
        const auto ips = add_origin(domain, current_hosting,
                                    1 + (hosting_index % 2), false);
        registry.add_domain(domain.name, ips, 300);
      }
      registry.set_certificate(domain.name, legit_cert(domain.name));
    }
    // Ground-truth domain under our own AS.
    const Ipv4 gt_ip = scanner_net.at(10);
    core::StudyDomain gt{out.domains.ground_truth(),
                         SiteCategory::kGroundTruth, true, false};
    registry.add_domain(gt.name, {gt_ip}, 300);
    auto gt_server = std::make_unique<http::WebServer>();
    gt_server->add_vhost(gt.name, http::serve_body(http::legit_site(
                                      gt.name, gt.category, 0, 7)),
                         legit_cert(gt.name));
    host_static_web(gt_ip, std::move(gt_server));
    world.rdns().set(gt_ip, "host0." + gt.name);
    registry.add_a_record("host0." + gt.name, gt_ip);
  }

  // TLDs for cache snooping (§2.6).
  for (const std::string& tld : core::snoop_tlds()) {
    registry.add_tld(tld, {"a.nic." + tld, "b.nic." + tld}, 172800);
  }

  // --- manipulation target infrastructure --------------------------------
  const Cidr target_net =
      new_as("MixedTargets", "US", net::AsKind::kHosting, 512);
  std::uint32_t target_cursor = 4;
  const auto next_target_ip = [&] { return target_net.at(target_cursor++); };

  const auto make_targets = [&](int count,
                                AnyHostServer::Generator generator) {
    std::vector<Ipv4> ips;
    for (int i = 0; i < count; ++i) {
      const Ipv4 ip = next_target_ip();
      host_static_web(ip, std::make_unique<AnyHostServer>(generator));
      ips.push_back(ip);
    }
    return ips;
  };

  const auto error_targets = make_targets(6, [flavor = 0](
                                                 const HttpRequest&) mutable {
    static constexpr int kCodes[] = {403, 404, 404, 410, 500, 503};
    ++flavor;
    HttpResponse response = HttpResponse::error(kCodes[flavor % 6]);
    response.body = http::error_page(kCodes[flavor % 6],
                                     static_cast<std::uint64_t>(flavor));
    return response;
  });
  const auto login_targets = make_targets(4, [](const HttpRequest& request) {
    return HttpResponse::ok(
        http::router_login(util::fnv1a(request.host) % 2, 1));
  });
  const auto portal_targets = make_targets(3, [](const HttpRequest& request) {
    return HttpResponse::ok(
        http::captive_portal(util::fnv1a(request.host) % 3, 2));
  });
  std::vector<Ipv4> parking_targets;
  for (int i = 0; i < 5; ++i) {
    const Ipv4 ip = next_target_ip();
    const net::HostId id = host_static_web(
        ip, std::make_unique<AnyHostServer>([](const HttpRequest& request) {
          return HttpResponse::ok(
              http::parking_page(request.host, util::fnv1a(request.host) % 3));
        }));
    // Parking providers run catch-all mail to monetize traffic, which is
    // what makes "64.7% of MX-suspicious resolvers point at listening mail
    // hosts" (§4.3) reproducible.
    world.set_tcp_service(id, 25, std::make_unique<http::BannerService>(
        "220 mx.parking-provider" + std::to_string(i % 3 + 1) +
        ".example ESMTP catch-all\r\n"));
    parking_targets.push_back(ip);
  }
  const auto search_targets = make_targets(4, [](const HttpRequest& request) {
    return HttpResponse::ok(http::search_page(1, request.host, false));
  });
  const auto misc_targets = make_targets(3, [](const HttpRequest&) {
    return HttpResponse::ok(http::legit_site(
        "personal-homepage.example", SiteCategory::kMisc, 3, 11));
  });
  const auto blocking_targets =
      make_targets(5, [](const HttpRequest& request) {
        return HttpResponse::ok(http::blocking_page(
            util::fnv1a(request.host) % 3, 1, request.host));
      });
  const auto ad_tamper_targets = make_targets(4, [legit_response, i = 0](
                                                  const HttpRequest& request) mutable {
    ++i;
    const auto base = legit_response(request, 31);
    const std::string original =
        base ? base->body
             : http::legit_site(request.host, SiteCategory::kAds, 0, 31);
    return HttpResponse::ok(http::tamper_ads(
        original,
        i % 2 == 0 ? http::AdTamper::kInjectBanner
                   : http::AdTamper::kSuspiciousJs,
        static_cast<std::uint64_t>(i)));
  });
  const auto ad_blank_targets =
      make_targets(7, [legit_response](const HttpRequest& request) {
        const auto base = legit_response(request, 32);
        const std::string original =
            base ? base->body
                 : http::legit_site(request.host, SiteCategory::kAds, 0, 32);
        return HttpResponse::ok(
            http::tamper_ads(original, http::AdTamper::kEmptyPlaceholder, 5));
      });
  const auto search_ads_targets =
      make_targets(2, [](const HttpRequest& request) {
        return HttpResponse::ok(http::search_page(2, request.host, true));
      });
  const auto malware_targets = make_targets(
      30, [counter = 0](const HttpRequest&) mutable {
        ++counter;
        return HttpResponse::ok(
            http::malware_update_page(counter % 2 == 0,
                                      static_cast<std::uint64_t>(counter)));
      });

  // Phishing hosts: 16 PayPal kits (3 with self-signed TLS) + 2 bank mimics
  // + a tail of generic kits (39 total, §4.3).
  std::vector<Ipv4> paypal_targets;
  for (int i = 0; i < 16; ++i) {
    const Ipv4 ip = next_target_ip();
    auto server = std::make_unique<AnyHostServer>(
        [i](const HttpRequest&) {
          return HttpResponse::ok(
              http::phishing_paypal(static_cast<std::uint64_t>(i)));
        },
        i < 3 ? std::optional<net::Certificate>([&] {
          net::Certificate cert;
          cert.common_name = "paypal.com";
          cert.self_signed = true;
          cert.valid_chain = false;
          return cert;
        }())
              : std::nullopt);
    host_static_web(ip, std::move(server));
    paypal_targets.push_back(ip);
  }
  std::vector<Ipv4> bank_phish_targets;
  {
    // First server in a Brazilian network, second in Russia (§4.3).
    const Cidr br_net = new_as("BR-Hosting", "BR", net::AsKind::kHosting, 32);
    const Cidr ru_net = new_as("RU-Hosting", "RU", net::AsKind::kHosting, 32);
    for (const Cidr net_range : {br_net, ru_net}) {
      const Ipv4 ip = net_range.at(5);
      host_static_web(ip, std::make_unique<AnyHostServer>(
                              [](const HttpRequest&) {
                                return HttpResponse::ok(
                                    http::phishing_bank_it(1));
                              }));
      bank_phish_targets.push_back(ip);
    }
  }

  // Transparent proxies: 10 HTTP-only + 10 TLS-passthrough (§4.3).
  std::vector<Ipv4> proxy_http_targets;
  std::vector<Ipv4> proxy_tls_targets;
  {
    const http::ContentOracle oracle =
        [legit_response](const HttpRequest& request) {
          return legit_response(request, 47);
        };
    // `registry` lives in the returned GeneratedWorld, so capturing the
    // pointer is safe for the world's lifetime.
    const http::CertOracle certs =
        [registry_ptr = &registry](const std::string& host) {
          return registry_ptr->certificate(host);
        };
    for (int i = 0; i < 10; ++i) {
      const Ipv4 ip = next_target_ip();
      net::HostConfig host_config;
      host_config.attachment.ip = ip;
      const net::HostId id = world.add_host(host_config);
      world.set_tcp_service(
          id, 80, std::make_unique<http::ProxyServer>(oracle, certs, false));
      // Transparent proxies relay mail ports as well (the §4.3 mail study
      // finds most suspicious MX answers point at listening mail hosts).
      world.set_tcp_service(id, 25, std::make_unique<http::BannerService>(
          "220 relay" + std::to_string(i) + ".example ESMTP\r\n"));
      world.set_tcp_service(id, 143, std::make_unique<http::BannerService>(
          "* OK IMAP4 relay ready\r\n"));
      proxy_http_targets.push_back(ip);
    }
    for (int i = 0; i < 10; ++i) {
      const Ipv4 ip = next_target_ip();
      net::HostConfig host_config;
      host_config.attachment.ip = ip;
      const net::HostId id = world.add_host(host_config);
      auto proxy = std::make_unique<http::ProxyServer>(oracle, certs, true);
      world.set_tcp_service(id, 443, std::make_unique<http::ProxyServer>(
                                          oracle, certs, true));
      world.set_tcp_service(id, 80, std::move(proxy));
      proxy_tls_targets.push_back(ip);
    }
  }

  // Mail interceptors: hosts listening on mail ports; some mimic the
  // legitimate banner exactly (§4.3 Gmail/Yandex case).
  std::vector<Ipv4> mail_intercept_targets;
  for (int i = 0; i < 12; ++i) {
    const Ipv4 ip = next_target_ip();
    net::HostConfig host_config;
    host_config.attachment.ip = ip;
    const net::HostId id = world.add_host(host_config);
    const bool mimic = i < 3;
    const std::string smtp_banner =
        mimic ? "220 smtp.gmail.com ESMTP ready\r\n"
              : "220 mail-gw" + std::to_string(i) + ".example ESMTP\r\n";
    world.set_tcp_service(id, 25,
                          std::make_unique<http::BannerService>(smtp_banner));
    world.set_tcp_service(id, 110, std::make_unique<http::BannerService>(
                                       "+OK POP3 gateway ready\r\n"));
    world.set_tcp_service(id, 143, std::make_unique<http::BannerService>(
                                       "* OK IMAP4 gateway ready\r\n"));
    mail_intercept_targets.push_back(ip);
  }

  // Censorship landing pages per country.
  std::map<std::string, std::vector<Ipv4>> landing_ips;
  for (const auto& [country, rules] : censor_plan()) {
    for (const CensorRule& rule : rules) {
      auto& ips = landing_ips[rule.landing_country];
      if (!ips.empty()) continue;  // already built for this owner
      const int count = std::max(2, landing_count_for(rule.landing_country));
      const Cidr net_range = new_as("Censor-" + rule.landing_country,
                                    rule.landing_country,
                                    net::AsKind::kEnterprise, 64);
      for (int i = 0; i < count; ++i) {
        const Ipv4 ip = net_range.at(static_cast<std::uint64_t>(4 + i));
        const std::string owner = rule.landing_country;
        host_static_web(ip, std::make_unique<AnyHostServer>(
                                [owner, i](const HttpRequest&) {
                                  return HttpResponse::ok(
                                      http::censorship_page(
                                          owner,
                                          static_cast<std::uint64_t>(i)));
                                }));
        ips.push_back(ip);
      }
    }
  }

  // --- the Great Firewall -------------------------------------------------
  std::vector<Cidr> cn_prefixes;  // filled as CN ASes are allocated

  // --- resolver population ------------------------------------------------
  const auto plan = default_country_plan();
  double share_total = 0.0;
  for (const CountryPlan& entry : plan) share_total += entry.start_share;

  const double scale =
      static_cast<double>(config.resolver_count) / 26800000.0;
  const auto scaled_count = [&](double paper_count, bool floored) {
    const auto scaled =
        static_cast<std::uint32_t>(std::llround(paper_count * scale));
    if (floored && scaled < config.case_study_floor) {
      return config.case_study_floor;
    }
    return scaled;
  };

  auto source = std::make_shared<ResolverPlan>();
  source->seed = config.seed;
  source->registry = &registry;
  source->clock = &world.clock();
  source->with_devices = config.with_devices;

  // Build the weighted manipulator lottery (count-based).
  std::vector<std::pair<Manip, std::uint32_t>> manip_counts;
  std::uint64_t manip_total = 0;
  for (const ManipPlanEntry& entry : manip_plan()) {
    const std::uint32_t count = scaled_count(entry.paper_count, entry.floored);
    if (count == 0) continue;
    manip_counts.emplace_back(entry.kind, count);
    manip_total += count;
  }
  out.planned_generic_manipulators = static_cast<std::uint32_t>(manip_total);

  // Flattened assignment queue, shuffled across the whole population.
  std::vector<std::uint8_t>& manip_queue = source->manip_queue;
  manip_queue.reserve(config.resolver_count);
  for (const auto& [kind, count] : manip_counts) {
    for (std::uint32_t i = 0; i < count && manip_queue.size() <
             config.resolver_count; ++i) {
      manip_queue.push_back(static_cast<std::uint8_t>(kind));
    }
  }
  while (manip_queue.size() < config.resolver_count) {
    manip_queue.push_back(static_cast<std::uint8_t>(Manip::kNone));
  }
  rng.shuffle(manip_queue);

  // Software / chaos assignment weights.
  source->chaos_mix = resolver::chaos_population_mix();
  for (const auto& profile : resolver::software_catalog()) {
    source->software_weights.push_back(profile.reveal_share);
  }

  // Snoop profile mix (§2.6).
  const std::vector<std::pair<resolver::SnoopProfile, double>> snoop_mix = {
      {resolver::SnoopProfile::kNoCache, 0.073},
      {resolver::SnoopProfile::kSingleThenSilent, 0.033},
      {resolver::SnoopProfile::kStaticTtl, 0.020},
      {resolver::SnoopProfile::kZeroTtl, 0.020},
      {resolver::SnoopProfile::kActiveFast, 0.387},
      {resolver::SnoopProfile::kActiveSlow, 0.229},
      {resolver::SnoopProfile::kActiveLongTtl, 0.040},
      {resolver::SnoopProfile::kTtlReset, 0.196},
  };
  for (const auto& [profile, weight] : snoop_mix) {
    source->snoop_profiles.push_back(profile);
    source->snoop_weights.push_back(weight);
  }

  // Device mix (Table 4) applied to the TCP-responsive fraction.
  for (const auto& device : resolver::device_catalog()) {
    source->device_weights.push_back(device.share);
  }

  const std::vector<std::string> gfw_domains = {
      "facebook.com", "twitter.com", "youtube.com", "wikileaks.org"};
  source->gfw_domains = gfw_domains;

  // Manipulation target tables and study-domain category snapshots.
  source->error_targets = error_targets;
  source->login_targets = login_targets;
  source->portal_targets = portal_targets;
  source->parking_targets = parking_targets;
  source->search_targets = search_targets;
  source->misc_targets = misc_targets;
  source->blocking_targets = blocking_targets;
  source->ad_tamper_targets = ad_tamper_targets;
  source->ad_blank_targets = ad_blank_targets;
  source->search_ads_targets = search_ads_targets;
  source->malware_targets = malware_targets;
  source->paypal_targets = paypal_targets;
  source->bank_targets = bank_phish_targets;
  source->proxy_http_targets = proxy_http_targets;
  source->proxy_tls_targets = proxy_tls_targets;
  source->mail_intercept_targets = mail_intercept_targets;
  source->tracking_names =
      out.domains.names_in_category(SiteCategory::kTracking);
  source->ads_names = out.domains.names_in_category(SiteCategory::kAds);
  source->mail_names = out.domains.names_in_category(SiteCategory::kMail);
  source->malware_names =
      out.domains.names_in_category(SiteCategory::kMalware);
  source->adult_names = out.domains.names_in_category(SiteCategory::kAdult);

  const auto plan_censor = censor_plan();
  std::uint64_t next_index = 0;
  std::uint32_t filters_installed = 0;

  for (const CountryPlan& country : plan) {
    const auto country_count = static_cast<std::uint32_t>(std::llround(
        config.resolver_count * country.start_share / share_total));
    if (country_count == 0) continue;

    ResolverPlan::Segment seg;
    seg.kind = ResolverPlan::Kind::kNoError;
    seg.country = country.code;
    seg.gfw_suppressed = country.code == "CN";

    // ASes: one dominant broadband ISP + smaller networks (§2.3: at least
    // 20 of the Top 25 networks are broadband providers).
    const int as_count = country_count > 200 ? 4 : 2;
    for (int a = 0; a < as_count; ++a) {
      const double weight = a == 0 ? 0.55 : 0.45 / (as_count - 1);
      const auto pool_size = static_cast<std::uint64_t>(std::llround(
          std::max(64.0, country_count * weight * config.pool_factor)));
      const Cidr pool = new_as(
          country.code + (a == 0 ? " Broadband" : " Net-" + std::to_string(a)),
          country.code,
          a == 0 ? net::AsKind::kBroadbandIsp : net::AsKind::kEnterprise,
          pool_size);
      seg.ases.push_back(ResolverPlan::PoolRef{pool, weight});
      seg.as_weights.push_back(weight);
      if (country.code == "CN") cn_prefixes.push_back(pool);
      // Consumer pools carry procedurally named PTR records (§2.5): ~75%
      // dynamic-style, ~10% static-style, hash-gated per address — a rule
      // per pool instead of a string per address.
      world.rdns().add_rule(net::RdnsStore::PoolRule{
          pool, util::lower(country.code) + "-isp",
          util::hash_words({config.seed, 0x7d45ULL, pool.base().value()}),
          0.75, 0.10});
    }

    // Growth countries add later-activating hosts; declining countries
    // decommission a share across the study window.
    double decline =
        country.end_factor < 1.0 ? 1.0 - country.end_factor : 0.0;
    const auto extra = static_cast<std::uint32_t>(
        country.end_factor > 1.0
            ? std::llround(country_count * (country.end_factor - 1.0))
            : 0);

    // One "collapsing network" mechanism per special country (§2.3): the
    // Argentinean provider loses 97.8% of its resolvers; a Korean ISP all
    // but 22; a few networks only block the primary scanner.
    const bool collapse_as0 =
        country.code == "AR" || country.code == "KR";
    const bool scanner_blocked_as0 =
        (country.code == "TH" || country.code == "TW" ||
         country.code == "GB") &&
        filters_installed < 21;

    if (scanner_blocked_as0) {
      // One sub-network of the big ISP blocks the primary scanner (the
      // paper's verification scan finds 145,304 such NOERROR resolvers —
      // < 1% of the population, so the blocked ranges must be small).
      net::IngressFilter filter;
      filter.network = net::Cidr(
          seg.ases[0].pool.base(),
          std::min(32, seg.ases[0].pool.prefix_len() + 3));
      filter.only_src = out.scanner_ip;
      filter.active_from_day = 60.0 + 40.0 * (filters_installed % 5);
      world.add_ingress_filter(filter);
      ++filters_installed;
      // Visible end count = (1 - blocked share) * survival; keep Table 1.
      decline = 1.0 - std::min(1.0, country.end_factor / 0.93);
    }
    if (collapse_as0) {
      // AS0 collapses to ~2.2% (the §2.3 Argentinean/Korean providers); the
      // remaining networks make up the rest of the Table 1 factor.
      decline = 1.0 - std::clamp(
                          (country.end_factor - 0.55 * 0.022) / 0.45, 0.0,
                          1.0);
    }
    seg.decline = decline;
    seg.collapse_as0 = collapse_as0;

    if (const auto rules_it = plan_censor.find(country.code);
        rules_it != plan_censor.end()) {
      for (const CensorRule& rule : rules_it->second) {
        ResolvedCensorRule resolved;
        resolved.compliance = rule.compliance;
        resolved.domains = rule.domains;
        resolved.landing_ips = landing_ips[rule.landing_country];
        seg.censor.push_back(std::move(resolved));
      }
    }

    seg.first = next_index;
    seg.count = static_cast<std::uint64_t>(country_count) + extra;
    seg.base_count = country_count;
    next_index += seg.count;
    out.planned_noerror += static_cast<std::uint32_t>(seg.count);
    source->segments.push_back(std::move(seg));
  }

  // REFUSED / SERVFAIL populations (stable / fluctuating lines in Fig. 1).
  {
    const auto refused_count = static_cast<std::uint32_t>(
        config.resolver_count * config.refused_ratio);
    const auto servfail_count = static_cast<std::uint32_t>(
        config.resolver_count * config.servfail_ratio);
    const Cidr refused_net = new_as("ClosedResolvers", "US",
                                    net::AsKind::kEnterprise,
                                    std::max<std::uint64_t>(64, refused_count * 2));
    const Cidr servfail_net = new_as("BrokenResolvers", "RU",
                                     net::AsKind::kEnterprise,
                                     std::max<std::uint64_t>(64, servfail_count * 2));
    if (refused_count > 0) {
      ResolverPlan::Segment seg;
      seg.kind = ResolverPlan::Kind::kRefused;
      seg.net = refused_net;
      seg.first = next_index;
      seg.count = refused_count;
      next_index += seg.count;
      source->segments.push_back(std::move(seg));
    }
    if (servfail_count > 0) {
      ResolverPlan::Segment seg;
      seg.kind = ResolverPlan::Kind::kServFail;
      seg.net = servfail_net;
      seg.first = next_index;
      seg.count = servfail_count;
      next_index += seg.count;
      source->segments.push_back(std::move(seg));
    }
    out.planned_refused = refused_count;
    out.planned_servfail = servfail_count;
  }

  // --- host registration: one derivation, two construction modes ----------
  out.resolver_source = source;
  out.resolver_host_count = next_index;
  if (next_index > 0) {
    if (config.lazy) {
      // Hosts materialize on first probe; only the compact SoA churn state
      // is built now. planned_censors stays 0 (see WorldGenConfig::lazy).
      out.resolver_first_host = world.add_host_block(source, next_index);
    } else {
      for (std::uint64_t i = 0; i < next_index; ++i) {
        ResolverPlan::Derived derived = source->derive_full(i);
        const net::HostId id = world.add_host(derived.config);
        if (i == 0) out.resolver_first_host = id;
        net::HostServices services = source->materialize(i);
        for (auto& [port, service] : services.udp) {
          world.set_udp_service(id, port, std::move(service));
        }
        for (auto& [port, service] : services.tcp) {
          world.set_tcp_service(id, port, std::move(service));
        }
        out.planned_censors += derived.censor_overrides;
      }
    }
  }

  // The GFW watches every Chinese prefix (§4.2).
  if (!cn_prefixes.empty()) {
    resolver::GfwConfig gfw_config;
    gfw_config.monitored_prefixes = cn_prefixes;
    gfw_config.censored_suffixes = gfw_domains;
    gfw_config.seed = rng.next();
    out.gfw = std::make_shared<resolver::GfwInjector>(gfw_config);
    resolver::install_gfw(world, out.gfw);
  }

  // Opt-out blacklist (208 ranges + 50 addresses in the paper; scaled).
  {
    const Cidr optout = new_as("OptOutNet", "US", net::AsKind::kEnterprise,
                               1024);
    out.blacklist.add_range(optout);
    for (int i = 0; i < 5; ++i) {
      out.blacklist.add_address(optout.at(static_cast<std::uint64_t>(i)));
    }
  }

  world.set_loss_rate(config.loss_rate);

  // Deterministic chaos (DESIGN.md §9): fault profiles over a hash-gated
  // fraction of the routed prefixes. The research networks (scanner,
  // verification vantage) stay clean so the study's own uplinks never
  // inject faults into every experiment at once.
  if (config.chaos.enabled) {
    const ChaosProfileConfig& chaos = config.chaos;
    for (const Cidr& prefix : out.universe) {
      if (prefix.contains(out.scanner_ip) ||
          prefix.contains(out.verification_scanner_ip)) {
        continue;
      }
      const double gate = util::hash_unit(util::hash_words(
          {config.seed, 0xc4a05ULL, prefix.base().value(),
           static_cast<std::uint64_t>(prefix.prefix_len())}));
      if (gate >= chaos.network_fraction) continue;
      net::FaultProfile profile;
      profile.network = prefix;
      profile.episode_rate = chaos.episode_rate;
      profile.episode_mean_buckets = chaos.episode_mean_buckets;
      profile.burst_loss = chaos.burst_loss;
      profile.base_loss = chaos.base_loss;
      profile.bucket_minutes = chaos.bucket_minutes;
      profile.rate_limit_per_minute = chaos.rate_limit_per_minute;
      profile.rate_limit_burst = chaos.rate_limit_burst;
      profile.rate_limit_action = chaos.rate_limit_refused
                                      ? net::RateLimitAction::kRefused
                                      : net::RateLimitAction::kDrop;
      profile.truncate_rate = chaos.truncate_rate;
      profile.corrupt_rate = chaos.corrupt_rate;
      profile.slow_episode_rate = chaos.slow_episode_rate;
      profile.slow_extra_latency_ms = chaos.slow_extra_latency_ms;
      profile.unreachable_episode_rate = chaos.unreachable_episode_rate;
      world.add_fault_profile(profile);
    }
  }
  return out;
}

}  // namespace dnswild::worldgen
