// World generation: builds a simulated Internet calibrated to the paper.
//
// This is where every population marginal the paper reports becomes a
// sampling plan (DESIGN.md §2): country/AS/RIR weights and per-country
// fluctuation (Tables 1–2), CHAOS software mix (Table 3), device mix
// (Table 4), churn lease mixture (Fig. 2), cache-utilization profiles
// (§2.6), status-code populations (Fig. 1), and the manipulation taxonomy —
// national censorship (incl. the GFW on-path injector), blocking products,
// static-/self-IP devices, NX monetizers, ad tamperers, transparent
// proxies, phishing and malware hosts, and mail interceptors (§3–4).
//
// Everything scales down from the paper's 26.8M resolvers through
// `resolver_count`; qualitative case-study populations whose paper counts
// would round to zero at small scale are floored (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/domains.h"
#include "dns/name.h"
#include "net/world.h"
#include "resolver/authns.h"
#include "resolver/gfw.h"
#include "scan/blacklist.h"

namespace dnswild::worldgen {

struct CountryPlan {
  std::string code;
  double start_share = 0.0;  // of the initial NOERROR population
  double end_factor = 1.0;   // population multiplier after 55 weeks
};

// The built-in plan derived from Tables 1–2 and §2.3's case studies
// (Argentina −75%, Great Britain −63.6%, Malaysia +59.7%, Lebanon +76.7%).
const std::vector<CountryPlan>& default_country_plan();

// Chaos profile: installs net::FaultProfile entries over a hash-selected
// fraction of the generated routed prefixes (scanner and vantage prefixes
// always excluded, so the study's own uplinks stay clean). Disabled by
// default; EXPERIMENTS.md shows a full example.
struct ChaosProfileConfig {
  bool enabled = false;
  double network_fraction = 0.25;  // of routed prefixes, hash-gated
  // Gilbert–Elliott loss episodes (net::FaultProfile semantics).
  double episode_rate = 0.3;
  double episode_mean_buckets = 4.0;
  double burst_loss = 0.2;
  double base_loss = 0.0;
  int bucket_minutes = 30;
  // Per-source rate limiting at the resolver edge.
  double rate_limit_per_minute = 0.0;  // 0 = unlimited
  double rate_limit_burst = 16.0;
  bool rate_limit_refused = false;  // REFUSED instead of silent drop
  // Reply mangling and pathological latency.
  double truncate_rate = 0.0;
  double corrupt_rate = 0.0;
  double slow_episode_rate = 0.0;
  int slow_extra_latency_ms = 4000;
  double unreachable_episode_rate = 0.0;
};

struct WorldGenConfig {
  std::uint64_t seed = 1;
  // Initial NOERROR resolver population (paper: 26,820,486).
  std::uint32_t resolver_count = 20000;
  // REFUSED / SERVFAIL populations relative to the NOERROR one (Fig. 1).
  double refused_ratio = 0.085;
  double servfail_ratio = 0.055;
  // Dynamic-pool size multiplier (pool addresses per dynamic resolver).
  double pool_factor = 8.0;
  // Floor for scaled case-study populations that would otherwise vanish.
  std::uint32_t case_study_floor = 8;
  // Packet loss applied to the world.
  double loss_rate = 0.0;
  // Deterministic fault injection over a fraction of prefixes (§9).
  ChaosProfileConfig chaos;
  // Build TCP device services (Table 4) — skippable for DNS-only tests.
  bool with_devices = true;
  // Lazy host materialization: resolver hosts register as one
  // net::World::add_host_block over a pure derivation source instead of
  // eagerly constructed service objects, so memory stays bounded at 10M+
  // resolvers (DESIGN.md §12). Both modes share the same per-host
  // derivation, so a lazy and an eager world built from one seed produce
  // byte-identical scan reports. Lazy mode leaves `planned_censors` at 0
  // (the tally requires deriving every host up front, defeating laziness).
  bool lazy = false;
};

struct GeneratedWorld {
  std::unique_ptr<net::World> world;
  std::unique_ptr<resolver::AuthRegistry> registry;
  std::shared_ptr<resolver::GfwInjector> gfw;

  // The resolver population's derivation source (both modes build one);
  // index i is the i-th resolver host. Exposed so tests can pin the
  // derivation golden values and check touch-order independence.
  std::shared_ptr<const net::HostSource> resolver_source;
  net::HostId resolver_first_host = 0;  // world id of resolver index 0
  std::uint64_t resolver_host_count = 0;

  core::DomainSet domains;
  std::vector<net::Cidr> universe;  // routed prefixes the scanner sweeps
  scan::Blacklist blacklist;

  net::Ipv4 scanner_ip{};
  net::Ipv4 verification_scanner_ip{};  // secondary /8 vantage (§2.2)
  net::Ipv4 vantage_ip{};               // HTTP/TLS acquisition client
  dns::Name scan_zone;                  // wildcard probe zone

  // Planning tallies, exposed for tests.
  std::uint32_t planned_noerror = 0;
  std::uint32_t planned_refused = 0;
  std::uint32_t planned_servfail = 0;
  std::uint32_t planned_censors = 0;
  std::uint32_t planned_generic_manipulators = 0;
};

GeneratedWorld generate_world(const WorldGenConfig& config);

}  // namespace dnswild::worldgen
