#include "net/clock.h"

#include <cstdio>

namespace dnswild::net {

std::string CivilDate::to_string() const {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "%04d/%02d/%02d", year, month, day);
  return buffer;
}

std::int64_t days_from_civil(CivilDate date) noexcept {
  const int y = date.year - (date.month <= 2 ? 1 : 0);
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(date.month + (date.month > 2 ? -3 : 9)) +
       2u) /
          5u +
      static_cast<unsigned>(date.day) - 1u;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDate civil_from_days(std::int64_t days) noexcept {
  days += 719468;
  const std::int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  return CivilDate{static_cast<int>(y + (m <= 2 ? 1 : 0)),
                   static_cast<int>(m), static_cast<int>(d)};
}

}  // namespace dnswild::net
