#include "net/faults.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/hash.h"

namespace dnswild::net {

namespace {

// Per-packet decision streams fanned out from the packet key. The World
// uses streams 1 and 2; fault streams start higher so they never collide.
constexpr std::uint64_t kFaultForwardLoss = 0x21;
constexpr std::uint64_t kFaultReplyLoss = 0x22;
constexpr std::uint64_t kFaultTruncate = 0x23;
constexpr std::uint64_t kFaultCorrupt = 0x24;
constexpr std::uint64_t kFaultTruncateLen = 0x25;
constexpr std::uint64_t kFaultCorruptByte = 0x26;

// Salt separating the fault plane's hash space from every other consumer
// of the world seed.
constexpr std::uint64_t kFaultSalt = 0xfa171ULL;

// Hard cap on episode length in buckets: bounds the per-packet lookback
// loop and, with it, the hot-path cost of fault-enabled worlds.
constexpr int kMaxEpisodeBuckets = 32;

void require_unit(double value, const char* what) {
  if (value < 0.0 || value > 1.0) {
    throw std::invalid_argument(std::string(what) + " must be in [0, 1]");
  }
}

}  // namespace

void FaultPlan::add_profile(FaultProfile profile) {
  require_unit(profile.episode_rate, "episode_rate");
  require_unit(profile.burst_loss, "burst_loss");
  require_unit(profile.base_loss, "base_loss");
  require_unit(profile.truncate_rate, "truncate_rate");
  require_unit(profile.corrupt_rate, "corrupt_rate");
  require_unit(profile.slow_episode_rate, "slow_episode_rate");
  require_unit(profile.unreachable_episode_rate, "unreachable_episode_rate");
  if (profile.bucket_minutes < 1) {
    throw std::invalid_argument("bucket_minutes must be >= 1");
  }
  if (profile.episode_mean_buckets < 1.0) profile.episode_mean_buckets = 1.0;
  // Lookback horizon: long enough that the truncated geometric tail is
  // negligible, short enough that the hot path stays cheap.
  const int horizon = static_cast<int>(
      std::ceil(profile.episode_mean_buckets * 4.0)) + 1;
  lookback_.push_back(std::clamp(horizon, 1, kMaxEpisodeBuckets));
  profiles_.push_back(profile);
}

const FaultProfile* FaultPlan::match(Ipv4 dst,
                                     std::size_t* index) const noexcept {
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    if (profiles_[i].network.contains(dst)) {
      if (index != nullptr) *index = i;
      return &profiles_[i];
    }
  }
  return nullptr;
}

bool FaultPlan::episode_active(std::size_t profile_index, std::uint64_t seed,
                               std::uint64_t stream, double start_rate,
                               Ipv4 dst, std::int64_t minute) const noexcept {
  if (start_rate <= 0.0) return false;
  const FaultProfile& profile = profiles_[profile_index];
  const std::int64_t bucket = minute / profile.bucket_minutes;
  const std::uint64_t net24 = static_cast<std::uint64_t>(dst.value() >> 8);
  const int lookback = lookback_[profile_index];
  // Geometric episode lengths with success probability 1/mean; durations
  // are drawn by inverse CDF from a second hash of the episode start, so
  // an episode's span is a pure function of (seed, profile, /24, start).
  const double mean = profile.episode_mean_buckets;
  const double log_keep = mean > 1.0 ? std::log(1.0 - 1.0 / mean) : 0.0;
  for (int back = 0; back < lookback; ++back) {
    const std::int64_t start = bucket - back;
    if (start < 0) break;
    const std::uint64_t word = util::hash_words(
        {seed, kFaultSalt, static_cast<std::uint64_t>(profile_index), stream,
         net24, static_cast<std::uint64_t>(start)});
    if (util::hash_unit(word) >= start_rate) continue;
    int duration = 1;
    if (mean > 1.0) {
      const double u = 1.0 - util::hash_unit(util::hash_words({word, 1}));
      duration = 1 + static_cast<int>(std::log(u) / log_keep);
      duration = std::clamp(duration, 1, kMaxEpisodeBuckets);
    }
    if (start + duration > bucket) return true;
  }
  return false;
}

ForwardFault FaultPlan::forward_fault(std::size_t profile_index,
                                      std::uint64_t seed,
                                      std::uint64_t packet_key, Ipv4 dst,
                                      std::int64_t minute) const noexcept {
  const FaultProfile& profile = profiles_[profile_index];
  if (episode_active(profile_index, seed, kUnreachableEpisode,
                     profile.unreachable_episode_rate, dst, minute)) {
    return ForwardFault::kUnreachable;
  }
  const double loss =
      episode_active(profile_index, seed, kLossEpisode, profile.episode_rate,
                     dst, minute)
          ? profile.burst_loss
          : profile.base_loss;
  if (loss > 0.0 &&
      util::hash_unit(util::hash_words({packet_key, kFaultForwardLoss})) <
          loss) {
    return ForwardFault::kLost;
  }
  return ForwardFault::kNone;
}

ForwardFault FaultPlan::admit(std::size_t profile_index,
                              const UdpPacket& request, std::int64_t minute,
                              FaultRateState& state) const {
  const FaultProfile& profile = profiles_[profile_index];
  if (profile.rate_limit_per_minute <= 0.0) return ForwardFault::kNone;

  FaultRateState::PerSource* entry = nullptr;
  for (FaultRateState::PerSource& candidate : state.sources) {
    if (candidate.src == request.src) {
      entry = &candidate;
      break;
    }
  }
  if (entry == nullptr) {
    state.sources.push_back({request.src, profile.rate_limit_burst, minute});
    entry = &state.sources.back();
  } else if (minute > entry->refilled_minute) {
    entry->tokens += static_cast<double>(minute - entry->refilled_minute) *
                     profile.rate_limit_per_minute;
    if (entry->tokens > profile.rate_limit_burst) {
      entry->tokens = profile.rate_limit_burst;
    }
    entry->refilled_minute = minute;
  }
  if (entry->tokens >= 1.0) {
    entry->tokens -= 1.0;
    return ForwardFault::kNone;
  }
  return profile.rate_limit_action == RateLimitAction::kDrop
             ? ForwardFault::kRateDropped
             : ForwardFault::kRateRefused;
}

ReplyFault FaultPlan::reply_fault(std::size_t profile_index,
                                  std::uint64_t seed, std::uint64_t packet_key,
                                  std::uint64_t reply_index, Ipv4 dst,
                                  std::int64_t minute) const noexcept {
  const FaultProfile& profile = profiles_[profile_index];
  ReplyFault fault;
  const double loss =
      episode_active(profile_index, seed, kLossEpisode, profile.episode_rate,
                     dst, minute)
          ? profile.burst_loss
          : profile.base_loss;
  if (loss > 0.0 &&
      util::hash_unit(util::hash_words(
          {packet_key, kFaultReplyLoss, reply_index})) < loss) {
    fault.lost = true;
    return fault;
  }
  if (profile.truncate_rate > 0.0 &&
      util::hash_unit(util::hash_words(
          {packet_key, kFaultTruncate, reply_index})) < profile.truncate_rate) {
    fault.truncated = true;
  } else if (profile.corrupt_rate > 0.0 &&
             util::hash_unit(util::hash_words(
                 {packet_key, kFaultCorrupt, reply_index})) <
                 profile.corrupt_rate) {
    fault.corrupted = true;
  }
  if (episode_active(profile_index, seed, kSlowEpisode,
                     profile.slow_episode_rate, dst, minute)) {
    fault.extra_latency_ms = profile.slow_extra_latency_ms;
  }
  return fault;
}

void FaultPlan::truncate_payload(std::vector<std::uint8_t>& payload,
                                 std::uint64_t key) noexcept {
  if (payload.size() < 2) return;
  // Keep a hashed-length prefix in [1, size): always strictly shorter, so
  // the decoder's bounds checks are genuinely exercised.
  const std::size_t keep = 1 + static_cast<std::size_t>(
      util::hash_words({key, kFaultTruncateLen}) % (payload.size() - 1));
  payload.resize(keep);
}

void FaultPlan::corrupt_payload(std::vector<std::uint8_t>& payload,
                                std::uint64_t key) noexcept {
  if (payload.empty()) return;
  const std::uint64_t word = util::hash_words({key, kFaultCorruptByte});
  const std::size_t pos = static_cast<std::size_t>(word % payload.size());
  // `| 1` keeps the XOR mask nonzero, so the byte always actually flips.
  payload[pos] ^= static_cast<std::uint8_t>((word >> 8) | 1);
}

bool FaultPlan::rate_state_fresh(std::size_t profile_index,
                                 const FaultRateState& state,
                                 std::int64_t minute) const noexcept {
  if (state.sources.empty()) return true;
  const FaultProfile& profile = profiles_[profile_index];
  if (profile.rate_limit_per_minute <= 0.0) return true;
  for (const FaultRateState::PerSource& source : state.sources) {
    const double refilled =
        source.tokens + static_cast<double>(minute - source.refilled_minute) *
                            profile.rate_limit_per_minute;
    if (refilled < profile.rate_limit_burst) return false;
  }
  return true;
}

UdpReply FaultPlan::make_refused_reply(const UdpPacket& request) {
  UdpReply reply;
  reply.packet.src = request.dst;
  reply.packet.src_port = request.dst_port;
  reply.packet.dst = request.src;
  reply.packet.dst_port = request.src_port;
  reply.packet.payload = request.payload;
  reply.latency_ms = 5;  // answered at the network edge, not the resolver
  if (reply.packet.payload.size() >= 12) {
    reply.packet.payload[2] |= 0x80;  // QR: this is a response
    reply.packet.payload[3] = static_cast<std::uint8_t>(
        (reply.packet.payload[3] & 0xf0) | 0x05);  // RCODE 5 (REFUSED)
  }
  return reply;
}

}  // namespace dnswild::net
