#include "net/countries.h"

#include <algorithm>

namespace dnswild::net {

std::string_view rir_name(Rir rir) noexcept {
  switch (rir) {
    case Rir::kRipe: return "RIPE";
    case Rir::kApnic: return "APNIC";
    case Rir::kLacnic: return "LACNIC";
    case Rir::kArin: return "ARIN";
    case Rir::kAfrinic: return "AFRINIC";
  }
  return "UNKNOWN";
}

const std::vector<CountryInfo>& all_countries() {
  static const std::vector<CountryInfo> kCountries = {
      {"AE", "United Arab Emirates", Rir::kRipe},
      {"AR", "Argentina", Rir::kLacnic},
      {"AT", "Austria", Rir::kRipe},
      {"AU", "Australia", Rir::kApnic},
      {"BD", "Bangladesh", Rir::kApnic},
      {"BE", "Belgium", Rir::kRipe},
      {"BG", "Bulgaria", Rir::kRipe},
      {"BR", "Brazil", Rir::kLacnic},
      {"CA", "Canada", Rir::kArin},
      {"CH", "Switzerland", Rir::kRipe},
      {"CL", "Chile", Rir::kLacnic},
      {"CN", "China", Rir::kApnic},
      {"CO", "Colombia", Rir::kLacnic},
      {"CZ", "Czechia", Rir::kRipe},
      {"DE", "Germany", Rir::kRipe},
      {"DZ", "Algeria", Rir::kAfrinic},
      {"EC", "Ecuador", Rir::kLacnic},
      {"EE", "Estonia", Rir::kRipe},
      {"EG", "Egypt", Rir::kAfrinic},
      {"ES", "Spain", Rir::kRipe},
      {"FR", "France", Rir::kRipe},
      {"GB", "Great Britain", Rir::kRipe},
      {"GR", "Greece", Rir::kRipe},
      {"HK", "Hong Kong", Rir::kApnic},
      {"HU", "Hungary", Rir::kRipe},
      {"ID", "Indonesia", Rir::kApnic},
      {"IL", "Israel", Rir::kRipe},
      {"IN", "India", Rir::kApnic},
      {"IR", "Iran", Rir::kRipe},
      {"IT", "Italy", Rir::kRipe},
      {"JP", "Japan", Rir::kApnic},
      {"KE", "Kenya", Rir::kAfrinic},
      {"KR", "South Korea", Rir::kApnic},
      {"KZ", "Kazakhstan", Rir::kRipe},
      {"LB", "Lebanon", Rir::kRipe},
      {"MA", "Morocco", Rir::kAfrinic},
      {"MN", "Mongolia", Rir::kApnic},
      {"MX", "Mexico", Rir::kLacnic},
      {"MY", "Malaysia", Rir::kApnic},
      {"NG", "Nigeria", Rir::kAfrinic},
      {"NL", "Netherlands", Rir::kRipe},
      {"NO", "Norway", Rir::kRipe},
      {"NZ", "New Zealand", Rir::kApnic},
      {"PE", "Peru", Rir::kLacnic},
      {"PH", "Philippines", Rir::kApnic},
      {"PK", "Pakistan", Rir::kApnic},
      {"PL", "Poland", Rir::kRipe},
      {"PT", "Portugal", Rir::kRipe},
      {"RO", "Romania", Rir::kRipe},
      {"RS", "Serbia", Rir::kRipe},
      {"RU", "Russia", Rir::kRipe},
      {"SA", "Saudi Arabia", Rir::kRipe},
      {"SE", "Sweden", Rir::kRipe},
      {"SG", "Singapore", Rir::kApnic},
      {"TH", "Thailand", Rir::kApnic},
      {"TN", "Tunisia", Rir::kAfrinic},
      {"TR", "Turkey", Rir::kRipe},
      {"TW", "Taiwan", Rir::kApnic},
      {"UA", "Ukraine", Rir::kRipe},
      {"US", "United States", Rir::kArin},
      {"VE", "Venezuela", Rir::kLacnic},
      {"VN", "Vietnam", Rir::kApnic},
      {"ZA", "South Africa", Rir::kAfrinic},
  };
  return kCountries;
}

std::optional<CountryInfo> country_info(std::string_view code) noexcept {
  const auto& table = all_countries();
  const auto it = std::lower_bound(
      table.begin(), table.end(), code,
      [](const CountryInfo& info, std::string_view key) {
        return info.code < key;
      });
  if (it == table.end() || it->code != code) return std::nullopt;
  return *it;
}

Rir rir_of(std::string_view code) noexcept {
  const auto info = country_info(code);
  return info ? info->rir : Rir::kRipe;
}

}  // namespace dnswild::net
