// Deterministic fault-injection plane (DESIGN.md §9).
//
// A FaultPlan holds per-CIDR fault profiles the World consults on every
// datagram: Gilbert–Elliott-style bursty loss episodes, per-source
// token-bucket rate limiting at resolver networks (§2.2 abuse-avoidance
// pressure), reply truncation/corruption that exercises the DNS parser's
// error paths, and slow/unreachable episodes whose inflated reply latency
// interacts with the client-side per-probe timeout (net::RetryPolicy).
//
// Everything here must survive the traffic phase's concurrency contract:
// episode membership and per-packet fault rolls are pure hashes of
// (world seed, profile, destination /24, time bucket, packet identity) —
// no Markov chain state, no shared mutable episode tables — so a packet's
// fate is identical under any thread count and call interleaving. The one
// stateful piece, the per-source rate limiter, lives on the destination
// host and relies on the same per-destination single-writer sharding that
// legitimizes resolver-cache mutation during scans.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ip.h"
#include "net/services.h"

namespace dnswild::net {

// What happens to an over-budget query at a rate-limited network.
enum class RateLimitAction {
  kDrop,     // silently discarded (most middleboxes)
  kRefused,  // answered with RCODE 5 without reaching the resolver
};

// One fault profile, applied to every datagram whose destination falls in
// `network`. All probabilities are per-direction and in [0, 1].
struct FaultProfile {
  Cidr network;

  // (a) Bursty loss: a /24 inside the network enters a "bad" episode when a
  // per-(network/24, time-bucket) hash fires; episodes last a geometrically
  // distributed number of buckets (mean episode_mean_buckets, capped so the
  // hot path's lookback stays bounded). Loss is burst_loss during a bad
  // episode and base_loss otherwise — the two-state Gilbert–Elliott shape,
  // realized without any cross-packet state.
  double episode_rate = 0.0;         // P(episode starts at a given bucket)
  double episode_mean_buckets = 4.0; // geometric mean episode length
  double burst_loss = 0.0;           // loss while an episode is active
  double base_loss = 0.0;            // loss outside episodes
  std::int64_t bucket_minutes = 30;  // episode time-bucket granularity

  // (b) Per-source token-bucket rate limiting; 0 disables. Tokens refill at
  // rate_limit_per_minute against the frozen-during-traffic world clock.
  double rate_limit_per_minute = 0.0;
  double rate_limit_burst = 16.0;
  RateLimitAction rate_limit_action = RateLimitAction::kDrop;

  // (c) Reply mangling: truncated replies lose a hashed-length tail (the
  // decoder sees a short datagram), corrupted replies get one hashed byte
  // flipped. Both are per-reply decisions.
  double truncate_rate = 0.0;
  double corrupt_rate = 0.0;

  // (d) Slow / unreachable episodes: separate hashed episode streams on the
  // same bucket cadence. During a slow episode every reply carries
  // slow_extra_latency_ms more virtual latency (pushing it past client
  // timeouts); during an unreachable episode forward packets vanish.
  double slow_episode_rate = 0.0;
  int slow_extra_latency_ms = 4000;
  double unreachable_episode_rate = 0.0;
};

// Per-destination rate-limiter state. Owned by the destination host record
// and only ever touched by the worker driving that destination (the scan
// plane's contiguous-shard contract), so it needs no synchronization.
struct FaultRateState {
  struct PerSource {
    Ipv4 src;
    double tokens = 0.0;
    std::int64_t refilled_minute = 0;
  };
  std::vector<PerSource> sources;
};

// Forward-path verdict for one datagram.
enum class ForwardFault {
  kNone,         // deliver normally
  kLost,         // bursty-loss drop
  kUnreachable,  // unreachable-episode drop
  kRateDropped,  // over rate budget, silently dropped
  kRateRefused,  // over rate budget, answered REFUSED at the network edge
};

// Reply-path verdict for one reply of one datagram.
struct ReplyFault {
  bool lost = false;
  bool truncated = false;
  bool corrupted = false;
  int extra_latency_ms = 0;
};

class FaultPlan {
 public:
  // Hashed episode streams (distinct from the World's per-packet streams).
  static constexpr std::uint64_t kLossEpisode = 0x11;
  static constexpr std::uint64_t kSlowEpisode = 0x12;
  static constexpr std::uint64_t kUnreachableEpisode = 0x13;

  void add_profile(FaultProfile profile);
  bool empty() const noexcept { return profiles_.empty(); }
  std::size_t size() const noexcept { return profiles_.size(); }
  const std::vector<FaultProfile>& profiles() const noexcept {
    return profiles_;
  }

  // First profile containing `dst`, or nullptr. `index` (when non-null)
  // receives the profile's position, which salts its hash streams.
  const FaultProfile* match(Ipv4 dst, std::size_t* index) const noexcept;

  // Whether the hashed episode of `stream` (with per-bucket start
  // probability `start_rate`) covers `minute` for dst's /24. Pure function
  // of its arguments — safe from any thread.
  bool episode_active(std::size_t profile_index, std::uint64_t seed,
                      std::uint64_t stream, double start_rate, Ipv4 dst,
                      std::int64_t minute) const noexcept;

  // Stateless forward-path faults (unreachable episode + bursty loss).
  // `packet_key` is the World's per-packet identity hash.
  ForwardFault forward_fault(std::size_t profile_index, std::uint64_t seed,
                             std::uint64_t packet_key, Ipv4 dst,
                             std::int64_t minute) const noexcept;

  // Stateful admission control at the destination (rate limiting). Only
  // call from the worker that owns `state`'s host. Returns kNone,
  // kRateDropped, or kRateRefused.
  ForwardFault admit(std::size_t profile_index, const UdpPacket& request,
                     std::int64_t minute, FaultRateState& state) const;

  // Reply-path faults for the reply at `reply_index` of the packet.
  ReplyFault reply_fault(std::size_t profile_index, std::uint64_t seed,
                         std::uint64_t packet_key, std::uint64_t reply_index,
                         Ipv4 dst, std::int64_t minute) const noexcept;

  // True when `state` is observationally equivalent to a freshly
  // constructed (empty) FaultRateState at `minute`: every per-source
  // bucket would refill to the full burst before its next admission
  // decision, so replaying admissions from scratch yields the same
  // verdicts. Gates lazy-host eviction (net::World service cache).
  bool rate_state_fresh(std::size_t profile_index, const FaultRateState& state,
                        std::int64_t minute) const noexcept;

  // Deterministic payload mangling, keyed by a hash word.
  static void truncate_payload(std::vector<std::uint8_t>& payload,
                               std::uint64_t key) noexcept;
  static void corrupt_payload(std::vector<std::uint8_t>& payload,
                              std::uint64_t key) noexcept;

  // Synthesizes the middlebox REFUSED answer for `request`: the request
  // payload echoed with QR set and RCODE 5 (payloads shorter than a DNS
  // header are echoed untouched).
  static UdpReply make_refused_reply(const UdpPacket& request);

 private:
  std::vector<FaultProfile> profiles_;
  std::vector<int> lookback_;  // per-profile episode lookback horizon
};

}  // namespace dnswild::net
