#include "net/world.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/hash.h"

namespace dnswild::net {

namespace {

// Identity hash of a datagram: everything that distinguishes it from any
// other transmission this world will ever carry. Randomness derived from
// this key is independent of call interleaving across threads.
std::uint64_t packet_key(std::uint64_t seed, const UdpPacket& request) {
  return util::hash_words(
      {seed,
       (static_cast<std::uint64_t>(request.src.value()) << 32) |
           request.dst.value(),
       (static_cast<std::uint64_t>(request.src_port) << 32) |
           (static_cast<std::uint64_t>(request.dst_port) << 16) |
           (static_cast<std::uint64_t>(request.seq) & 0xffffULL),
       static_cast<std::uint64_t>(request.seq),
       util::digest_bytes(request.payload)});
}

// Decision streams fanned out from one packet key.
constexpr std::uint64_t kForwardLoss = 1;
constexpr std::uint64_t kReplyLoss = 2;

// Draws the next lease (address + duration) for a dynamic attachment. One
// shared implementation for eager Host fields and lazy SoA columns, so the
// two host kinds produce bit-identical lease schedules from the same seed.
void roll_lease_state(std::uint64_t seed, const Attachment& at,
                      Ipv4& current_ip, double& lease_end_day,
                      std::uint32_t& lease_index) {
  // Exponential lease duration via inverse CDF over a deterministic
  // per-(host, lease) uniform, so schedules do not depend on call order.
  std::uint64_t word = util::mix64(seed ^ (0x9e37u + lease_index));
  const double u =
      (static_cast<double>(word >> 11) + 0.5) * 0x1.0p-53;  // (0, 1)
  const double duration = -at.mean_lease_days * std::log(u);
  // Leases run back-to-back from the activation day, so a host's address
  // at any instant is a pure function of (seed, time), independent of how
  // the caller stepped the clock.
  lease_end_day += duration;
  const std::uint64_t slot =
      util::mix64(seed ^ (0xbeefu + lease_index)) % at.pool.size();
  current_ip = at.pool.at(slot);
  ++lease_index;
}

}  // namespace

// --- BindingIndex ------------------------------------------------------

BindingIndex::Range* BindingIndex::find(Ipv4 ip) noexcept {
  const std::uint32_t value = ip.value();
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), value,
      [](std::uint32_t v, const Range& range) { return v < range.base; });
  if (it == ranges_.begin()) return nullptr;
  --it;
  if (static_cast<std::uint64_t>(value) - it->base < it->size) return &*it;
  return nullptr;
}

const BindingIndex::Range* BindingIndex::find(Ipv4 ip) const noexcept {
  return const_cast<BindingIndex*>(this)->find(ip);
}

void BindingIndex::register_range(Cidr range) {
  const std::uint32_t base = range.base().value();
  const std::uint64_t size = range.size();
  if (size == 0) return;
  // Reject overlaps with any existing range (worldgen prefixes never
  // overlap; a duplicate registration is a no-op).
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), base,
      [](std::uint32_t v, const Range& r) { return v < r.base; });
  if (it != ranges_.begin()) {
    const Range& prev = *(it - 1);
    if (static_cast<std::uint64_t>(base) - prev.base < prev.size) return;
  }
  if (it != ranges_.end() &&
      static_cast<std::uint64_t>(it->base) - base < size) {
    return;
  }
  Range fresh;
  fresh.base = base;
  fresh.size = size;
  fresh.slots.assign(static_cast<std::size_t>(size), kNoHost);
  slot_bytes_ += static_cast<std::size_t>(size) * sizeof(HostId);
  Range& inserted = *ranges_.insert(it, std::move(fresh));
  // Migrate overflow entries the new range now covers.
  for (auto entry = overflow_.begin(); entry != overflow_.end();) {
    const std::uint64_t offset =
        static_cast<std::uint64_t>(entry->first.value()) - inserted.base;
    if (offset < inserted.size) {
      inserted.slots[static_cast<std::size_t>(offset)] = entry->second;
      entry = overflow_.erase(entry);
    } else {
      ++entry;
    }
  }
}

void BindingIndex::set(Ipv4 ip, HostId id) {
  if (Range* range = find(ip)) {
    range->slots[static_cast<std::size_t>(ip.value() - range->base)] = id;
    return;
  }
  overflow_[ip] = id;
}

void BindingIndex::erase(Ipv4 ip) {
  if (Range* range = find(ip)) {
    range->slots[static_cast<std::size_t>(ip.value() - range->base)] = kNoHost;
    return;
  }
  overflow_.erase(ip);
}

HostId BindingIndex::get(Ipv4 ip) const noexcept {
  if (const Range* range = find(ip)) {
    return range->slots[static_cast<std::size_t>(ip.value() - range->base)];
  }
  const auto it = overflow_.find(ip);
  return it == overflow_.end() ? kNoHost : it->second;
}

// --- World -------------------------------------------------------------

World::World(std::uint64_t seed, obs::Registry* metrics)
    : seed_(seed), rng_(seed) {
  if (metrics == nullptr) {
    own_metrics_ = std::make_unique<obs::Registry>();
    metrics = own_metrics_.get();
  }
  metrics_ = metrics;
  udp_sent_ = &metrics_->counter("net.udp.sent");
  udp_delivered_ = &metrics_->counter("net.udp.delivered");
  udp_dropped_filtered_ = &metrics_->counter("net.udp.dropped_filtered");
  udp_lost_ = &metrics_->counter("net.udp.lost");
  udp_replies_lost_ = &metrics_->counter("net.udp.replies_lost");
  udp_injected_ = &metrics_->counter("net.udp.injected_replies");
  tcp_connects_ = &metrics_->counter("net.tcp.connects");
  tcp_syn_lost_ = &metrics_->counter("net.tcp.syn_lost");
  traffic_sections_opened_ = &metrics_->counter("net.traffic_sections");
  fault_forward_lost_ = &metrics_->counter("fault.forward_lost");
  fault_replies_lost_ = &metrics_->counter("fault.replies_lost");
  fault_unreachable_ = &metrics_->counter("fault.unreachable_drops");
  fault_rate_dropped_ = &metrics_->counter("fault.rate_limited_drops");
  fault_rate_refused_ = &metrics_->counter("fault.rate_limited_refused");
  fault_truncated_ = &metrics_->counter("fault.truncated_replies");
  fault_corrupted_ = &metrics_->counter("fault.corrupted_replies");
  fault_slowed_ = &metrics_->counter("fault.slowed_replies");
  fault_tcp_lost_ = &metrics_->counter("fault.tcp_syn_lost");
  trace_ = std::make_unique<obs::TraceRecorder>(*metrics_);
  metrics_->attach_trace(trace_.get());
}

void World::require_mutation_phase(const char* what) const {
  if (in_traffic_phase()) {
    throw std::logic_error(std::string(what) +
                           " is mutation-phase only; close the traffic "
                           "section (barrier) first");
  }
}

World::LazyBlock& World::block_of(HostId id) noexcept {
  // A handful of blocks at most; linear scan beats binary search here.
  for (LazyBlock& block : blocks_) {
    if (id >= block.first && id - block.first < block.count) return block;
  }
  return blocks_.back();  // unreachable for valid ids
}

const World::LazyBlock& World::block_of(HostId id) const noexcept {
  return const_cast<World*>(this)->block_of(id);
}

bool World::host_bound(HostId id) const noexcept {
  if (!is_lazy(id)) return hosts_[id].bound;
  const LazyBlock& block = block_of(id);
  return (block.flags[id - block.first] & kLazyBound) != 0;
}

Ipv4 World::host_ip(HostId id) const noexcept {
  if (!is_lazy(id)) return hosts_[id].current_ip;
  const LazyBlock& block = block_of(id);
  return block.current_ip[id - block.first];
}

void World::set_bound(HostId id, Ipv4 ip) noexcept {
  if (!is_lazy(id)) {
    hosts_[id].current_ip = ip;
    hosts_[id].bound = true;
    return;
  }
  LazyBlock& block = block_of(id);
  block.current_ip[id - block.first] = ip;
  block.flags[id - block.first] |= kLazyBound;
}

void World::clear_bound(HostId id) noexcept {
  if (!is_lazy(id)) {
    hosts_[id].bound = false;
    return;
  }
  LazyBlock& block = block_of(id);
  block.flags[id - block.first] &= static_cast<std::uint8_t>(~kLazyBound);
}

HostId World::add_host(const HostConfig& config) {
  require_mutation_phase("add_host");
  if (lazy_count_ > 0) {
    throw std::logic_error(
        "add_host after add_host_block would interleave id ranges; "
        "register eager hosts first");
  }
  const HostId id = static_cast<HostId>(hosts_.size());
  Host host;
  host.config = config;
  host.seed = config.seed ? *config.seed : rng_.next();
  hosts_.push_back(std::move(host));

  Host& stored = hosts_.back();
  if (config.attachment.dynamic) {
    dynamic_hosts_.push_back(id);
    stored.lease_end_day = config.active_from_day;
    if (host_active(stored.config)) {
      while (stored.lease_end_day <= day()) roll_lease(stored);
      bind(id, stored.current_ip);
    }
  } else if (host_active(stored.config)) {
    stored.current_ip = config.attachment.ip;
    bind(id, stored.current_ip);
  }
  return id;
}

HostId World::add_host_block(std::shared_ptr<const HostSource> source,
                             std::uint64_t count) {
  require_mutation_phase("add_host_block");
  if (source == nullptr || count == 0) {
    throw std::logic_error("add_host_block needs a source and a count");
  }
  const HostId first = static_cast<HostId>(host_count());
  if (host_count() + count >= kNoHost) {
    throw std::logic_error("host id space exhausted");
  }
  LazyBlock block;
  block.first = first;
  block.count = count;
  block.source = std::move(source);
  block.current_ip.assign(count, Ipv4{});
  block.lease_end_day.assign(count, 0.0);
  block.lease_index.assign(count, 0);
  block.flags.assign(count, 0);
  blocks_.push_back(std::move(block));
  lazy_count_ += count;
  LazyBlock& stored = blocks_.back();

  // One cheap derivation pass mirrors add_host's binding semantics exactly
  // (same index order, same lease arithmetic), so an eager and a lazy
  // world built from the same derivations start bit-identical.
  const double now = day();
  for (std::uint64_t i = 0; i < count; ++i) {
    const HostId id = first + static_cast<HostId>(i);
    const HostConfig config = stored.source->derive_config(i);
    const std::uint64_t seed =
        config.seed ? *config.seed
                    : util::hash_words({seed_, stored.first, i});
    if (config.attachment.dynamic) {
      stored.flags[i] |= kLazyDynamic;
      stored.any_churn = true;
      stored.lease_end_day[i] = config.active_from_day;
      if (host_active(config)) {
        while (stored.lease_end_day[i] <= now) {
          roll_lease_state(seed, config.attachment, stored.current_ip[i],
                           stored.lease_end_day[i], stored.lease_index[i]);
        }
        bind(id, stored.current_ip[i]);
      }
    } else {
      if (config.active_from_day != 0.0 ||
          config.active_until_day !=
              std::numeric_limits<double>::infinity()) {
        stored.flags[i] |= kLazyWindowed;
        stored.any_churn = true;
      }
      if (host_active(config)) {
        bind(id, config.attachment.ip);
      }
    }
  }
  return first;
}

void World::set_udp_service(HostId host, std::uint16_t port,
                            std::unique_ptr<UdpService> service) {
  require_mutation_phase("set_udp_service");
  if (is_lazy(host)) {
    throw std::logic_error("lazy hosts derive services from their source");
  }
  auto& slots = hosts_.at(host).udp;
  for (auto& slot : slots) {
    if (slot.first == port) {
      slot.second = std::move(service);
      return;
    }
  }
  slots.emplace_back(port, std::move(service));
}

void World::set_tcp_service(HostId host, std::uint16_t port,
                            std::unique_ptr<TcpService> service) {
  require_mutation_phase("set_tcp_service");
  if (is_lazy(host)) {
    throw std::logic_error("lazy hosts derive services from their source");
  }
  auto& slots = hosts_.at(host).tcp;
  for (auto& slot : slots) {
    if (slot.first == port) {
      slot.second = std::move(service);
      return;
    }
  }
  slots.emplace_back(port, std::move(service));
}

std::optional<Ipv4> World::address_of(HostId host) const noexcept {
  if (!host_bound(host)) return std::nullopt;
  return host_ip(host);
}

HostId World::host_at(Ipv4 ip) const noexcept { return bindings_.get(ip); }

void World::register_address_range(Cidr range) {
  require_mutation_phase("register_address_range");
  bindings_.register_range(range);
}

void World::add_ingress_filter(IngressFilter filter) {
  require_mutation_phase("add_ingress_filter");
  filters_.push_back(filter);
}

void World::add_injector(Injector injector) {
  require_mutation_phase("add_injector");
  injectors_.push_back(std::move(injector));
}

void World::set_loss_rate(double rate) {
  require_mutation_phase("set_loss_rate");
  loss_rate_ = rate;
}

void World::add_fault_profile(FaultProfile profile) {
  require_mutation_phase("add_fault_profile");
  faults_.add_profile(profile);
  // Profile boundaries changed: restart every host's rate accounting so a
  // destination is never charged against a profile that no longer governs
  // it.
  for (Host& host : hosts_) host.fault_rate.sources.clear();
  for (CacheShard& shard : cache_shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [id, entry] : shard.entries) entry.fault_rate.sources.clear();
  }
}

void World::reset_transient_state() {
  require_mutation_phase("reset_transient_state");
  // Same clearing sweep as add_fault_profile: eager hosts own their rate
  // state inline, materialized lazy hosts carry it in their cache entry.
  for (Host& host : hosts_) host.fault_rate.sources.clear();
  for (CacheShard& shard : cache_shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [id, entry] : shard.entries) entry.fault_rate.sources.clear();
  }
}

void World::set_service_cache_capacity(std::size_t capacity) {
  require_mutation_phase("set_service_cache_capacity");
  cache_capacity_ = std::max<std::size_t>(capacity, kCacheShards);
}

World::LazyStats World::lazy_stats() const {
  LazyStats stats;
  stats.materializations = materializations_.load();
  stats.evictions = evictions_.load();
  for (const CacheShard& shard : cache_shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    stats.resident += shard.entries.size();
    for (const auto& [id, entry] : shard.entries) {
      if (entry.pinned) ++stats.pinned;
    }
  }
  return stats;
}

void World::set_time_minutes(std::int64_t minutes) {
  require_mutation_phase("set_time_minutes");
  if (minutes < clock_.minutes()) {
    throw std::logic_error("simulated time cannot move backwards");
  }
  clock_.set_minutes(minutes);
  rebind_expired();
}

void World::advance_days(double days) {
  set_time_minutes(clock_.minutes() +
                   static_cast<std::int64_t>(std::llround(days * 1440.0)));
}

bool World::host_active(const HostConfig& config) const noexcept {
  const double now = day();
  return now >= config.active_from_day && now < config.active_until_day;
}

void World::roll_lease(Host& host) {
  roll_lease_state(host.seed, host.config.attachment, host.current_ip,
                   host.lease_end_day, host.lease_index);
}

void World::bind(HostId id, Ipv4 ip) {
  // Pool collisions: the most recent lease wins; the displaced host becomes
  // unreachable until its next lease roll, as with real DHCP races.
  const HostId previous = bindings_.get(ip);
  if (previous != kNoHost && previous != id) clear_bound(previous);
  bindings_.set(ip, id);
  set_bound(id, ip);
  // Churn telemetry: binds during lease expiry / activity-window movement
  // count against the prefix the host lands in; initial registration
  // binds do not (they are population construction, not churn).
  if (in_rebind_) telemetry_.record_rebind(ip.value());
}

void World::unbind(HostId id) {
  if (!host_bound(id)) return;
  const Ipv4 ip = host_ip(id);
  if (bindings_.get(ip) == id) bindings_.erase(ip);
  clear_bound(id);
}

void World::rebind_lazy_host(LazyBlock& block, std::uint64_t i, double now) {
  const HostId id = block.first + static_cast<HostId>(i);
  const HostConfig config = block.source->derive_config(i);
  const std::uint64_t seed =
      config.seed ? *config.seed : util::hash_words({seed_, block.first, i});
  const bool active = now >= config.active_from_day &&
                      now < config.active_until_day;
  if (config.attachment.dynamic) {
    if (!active) {
      unbind(id);
      return;
    }
    if ((block.flags[i] & kLazyBound) != 0 && block.lease_end_day[i] > now) {
      return;
    }
    unbind(id);
    while (block.lease_end_day[i] <= now) {
      roll_lease_state(seed, config.attachment, block.current_ip[i],
                       block.lease_end_day[i], block.lease_index[i]);
    }
    bind(id, block.current_ip[i]);
    return;
  }
  const bool bound = (block.flags[i] & kLazyBound) != 0;
  if (active && !bound) {
    bind(id, config.attachment.ip);
  } else if (!active && bound) {
    unbind(id);
  }
}

void World::rebind_expired() {
  const double now = day();
  in_rebind_ = true;
  for (const HostId id : dynamic_hosts_) {
    Host& host = hosts_[id];
    if (!host_active(host.config)) {
      unbind(id);
      continue;
    }
    if (host.bound && host.lease_end_day > now) continue;
    unbind(id);
    while (host.lease_end_day <= now) roll_lease(host);
    bind(id, host.current_ip);
  }
  // Static hosts only change via their activity window.
  for (HostId id = 0; id < hosts_.size(); ++id) {
    Host& host = hosts_[id];
    if (host.config.attachment.dynamic) continue;
    const bool active = host_active(host.config);
    if (active && !host.bound) {
      host.current_ip = host.config.attachment.ip;
      bind(id, host.current_ip);
    } else if (!active && host.bound) {
      unbind(id);
    }
  }
  // Lazy blocks, in the same two-pass order as the eager loops above —
  // dynamics roll before statics re-assert — so pool collisions resolve
  // identically however the hosts were built. Statics need the
  // re-derivation when their activity window moved them OR when a dynamic
  // lease displaced them from their slot (bound flag cleared): eager
  // statics re-bind in that case too.
  for (LazyBlock& block : blocks_) {
    if (!block.any_churn) continue;
    for (std::uint64_t i = 0; i < block.count; ++i) {
      if ((block.flags[i] & kLazyDynamic) == 0) continue;
      rebind_lazy_host(block, i, now);
    }
  }
  for (LazyBlock& block : blocks_) {
    for (std::uint64_t i = 0; i < block.count; ++i) {
      if ((block.flags[i] & kLazyDynamic) != 0) continue;
      if ((block.flags[i] & kLazyBound) != 0 &&
          (block.flags[i] & kLazyWindowed) == 0) {
        continue;  // bound plain static: nothing can have changed
      }
      rebind_lazy_host(block, i, now);
    }
  }
  in_rebind_ = false;
}

bool World::filtered(const UdpPacket& request) const noexcept {
  const double now = day();
  for (const IngressFilter& filter : filters_) {
    if (filter.dst_port != request.dst_port) continue;
    if (now < filter.active_from_day) continue;
    if (!filter.network.contains(request.dst)) continue;
    if (filter.only_src && *filter.only_src != request.src) continue;
    return true;
  }
  return false;
}

World::CacheEntry& World::touch_locked(CacheShard& shard, HostId id) {
  auto it = shard.entries.find(id);
  if (it == shard.entries.end()) {
    const LazyBlock& block = block_of(id);
    CacheEntry entry;
    entry.services = block.source->materialize(id - block.first);
    materializations_.fetch_add(1, std::memory_order_relaxed);
    it = shard.entries.emplace(id, std::move(entry)).first;
  }
  it->second.last_touch =
      touch_clock_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void World::maybe_evict_locked(CacheShard& shard, HostId keep) {
  const std::size_t per_shard =
      std::max<std::size_t>(1, cache_capacity_ / kCacheShards);
  if (shard.entries.size() <= per_shard) return;
  const std::int64_t now_minutes = clock_.minutes();
  const std::int64_t now_seconds = now_minutes * 60;

  // Batch eviction: one pass collects every evictable entry, then the
  // coldest go until the shard is at 3/4 budget — amortizing the scan over
  // the next per_shard/4 materializations.
  std::vector<std::pair<std::uint64_t, HostId>> evictable;
  evictable.reserve(shard.entries.size());
  for (const auto& [id, entry] : shard.entries) {
    if (id == keep || entry.pinned) continue;
    bool clean = true;
    for (const auto& slot : entry.services.udp) {
      if (slot.second && !slot.second->reconstructible(now_seconds)) {
        clean = false;
        break;
      }
    }
    if (clean) {
      for (const auto& slot : entry.services.tcp) {
        if (slot.second && !slot.second->reconstructible()) {
          clean = false;
          break;
        }
      }
    }
    if (clean && !entry.fault_rate.sources.empty()) {
      std::size_t fault_index = 0;
      const Ipv4 ip = host_ip(id);
      if (faults_.match(ip, &fault_index) == nullptr ||
          !faults_.rate_state_fresh(fault_index, entry.fault_rate,
                                    now_minutes)) {
        clean = false;
      }
    }
    if (clean) evictable.emplace_back(entry.last_touch, id);
  }
  if (evictable.empty()) return;
  std::sort(evictable.begin(), evictable.end());
  const std::size_t floor = per_shard - per_shard / 4;
  for (const auto& [touch, id] : evictable) {
    if (shard.entries.size() <= floor) break;
    shard.entries.erase(id);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void World::deliver_udp(
    const UdpPacket& request,
    std::vector<std::pair<std::uint16_t, std::unique_ptr<UdpService>>>& udp,
    FaultRateState& fault_rate, const FaultProfile* fault,
    std::size_t fault_index, std::int64_t now_minutes,
    std::vector<UdpReply>& replies) {
  // Admission control at the destination network's edge. The per-source
  // token state mutates under the per-destination single-writer contract
  // documented on send_udp.
  const ForwardFault admission =
      fault != nullptr
          ? faults_.admit(fault_index, request, now_minutes, fault_rate)
          : ForwardFault::kNone;
  if (admission == ForwardFault::kRateDropped) {
    fault_rate_dropped_->add();
    telemetry_.record_rate_limited(request.dst.value());
    return;
  }
  if (admission == ForwardFault::kRateRefused) {
    fault_rate_refused_->add();
    telemetry_.record_rate_limited(request.dst.value());
    replies.push_back(FaultPlan::make_refused_reply(request));
    return;
  }
  for (auto& slot : udp) {
    if (slot.first != request.dst_port || !slot.second) continue;
    udp_delivered_->add();
    std::vector<UdpReply> produced;
    slot.second->handle(request, produced);
    for (UdpReply& reply : produced) {
      UdpPacket& pkt = reply.packet;
      // Default-fill the reply 4-tuple; services override src to model
      // multi-homed forwarders answering from another interface.
      if (pkt.src == Ipv4{}) pkt.src = request.dst;
      if (pkt.src_port == 0) pkt.src_port = request.dst_port;
      if (pkt.dst == Ipv4{}) pkt.dst = request.src;
      if (pkt.dst_port == 0) pkt.dst_port = request.src_port;
      replies.push_back(std::move(reply));
    }
    break;
  }
}

std::vector<UdpReply> World::send_udp(const UdpPacket& request) {
  udp_sent_->add();
  std::vector<UdpReply> replies;

  if (filtered(request)) {
    udp_dropped_filtered_->add();
    return replies;
  }
  // Loss is a pure function of the packet identity: a retransmission
  // (bumped seq) rolls fresh dice, but no other traffic — on this thread or
  // any other — can perturb the outcome. The fault plane draws from the
  // same key, on disjoint decision streams.
  std::size_t fault_index = 0;
  const FaultProfile* fault = faults_.match(request.dst, &fault_index);
  const std::uint64_t key =
      (loss_rate_ > 0.0 || fault != nullptr) ? packet_key(seed_, request) : 0;
  if (loss_rate_ > 0.0 &&
      util::hash_unit(util::hash_words({key, kForwardLoss})) < loss_rate_) {
    udp_lost_->add();
    return replies;
  }
  const std::int64_t now_minutes = clock_.minutes();
  if (fault != nullptr) {
    switch (faults_.forward_fault(fault_index, seed_, key, request.dst,
                                  now_minutes)) {
      case ForwardFault::kUnreachable:
        fault_unreachable_->add();
        telemetry_.record_fault_hit(request.dst.value());
        return replies;
      case ForwardFault::kLost:
        fault_forward_lost_->add();
        telemetry_.record_fault_hit(request.dst.value());
        return replies;
      default:
        break;
    }
  }

  // On-path observers see the datagram once it is in flight.
  for (const Injector& injector : injectors_) injector(request, replies);
  if (!replies.empty()) udp_injected_->add(replies.size());

  const HostId id = host_at(request.dst);
  const std::size_t host_reply_begin = replies.size();
  if (id != kNoHost) {
    if (!is_lazy(id)) {
      Host& host = hosts_[id];
      deliver_udp(request, host.udp, host.fault_rate, fault, fault_index,
                  now_minutes, replies);
    } else {
      // Materialize-on-touch under the shard lock; the same lock covers
      // delivery and eviction, so an in-flight service can never be freed.
      CacheShard& shard = shard_for(id);
      const std::lock_guard<std::mutex> lock(shard.mu);
      CacheEntry& entry = touch_locked(shard, id);
      deliver_udp(request, entry.services.udp, entry.fault_rate, fault,
                  fault_index, now_minutes, replies);
      maybe_evict_locked(shard, id);
    }
  }

  // Reply-path faults apply to what came back from the destination network
  // (injected replies originate before it and are exempt): bursty loss,
  // truncation/corruption, slow-episode latency.
  if (fault != nullptr && replies.size() > host_reply_begin) {
    std::size_t write = host_reply_begin;
    std::uint64_t lost = 0;
    for (std::size_t read = host_reply_begin; read < replies.size(); ++read) {
      const std::uint64_t index =
          static_cast<std::uint64_t>(read - host_reply_begin);
      const ReplyFault verdict = faults_.reply_fault(
          fault_index, seed_, key, index, request.dst, now_minutes);
      if (verdict.lost) {
        ++lost;
        telemetry_.record_fault_hit(request.dst.value());
        continue;
      }
      UdpReply& reply = replies[read];
      if (verdict.truncated) {
        FaultPlan::truncate_payload(reply.packet.payload,
                                    util::hash_words({key, index}));
        fault_truncated_->add();
        telemetry_.record_fault_hit(request.dst.value());
      } else if (verdict.corrupted) {
        FaultPlan::corrupt_payload(reply.packet.payload,
                                   util::hash_words({key, index}));
        fault_corrupted_->add();
        telemetry_.record_fault_hit(request.dst.value());
      }
      if (verdict.extra_latency_ms > 0) {
        reply.latency_ms += verdict.extra_latency_ms;
        fault_slowed_->add();
        telemetry_.record_fault_hit(request.dst.value());
      }
      if (write != read) replies[write] = std::move(replies[read]);
      ++write;
    }
    replies.resize(write);
    if (lost > 0) fault_replies_lost_->add(lost);
  }

  // Per-reply loss on the return path, keyed by the reply's position so
  // each reply to one probe faces independent loss.
  if (loss_rate_ > 0.0) {
    std::uint64_t index = 0;
    const std::size_t before = replies.size();
    std::erase_if(replies, [&](const UdpReply&) {
      return util::hash_unit(util::hash_words({key, kReplyLoss, index++})) <
             loss_rate_;
    });
    if (replies.size() != before) {
      udp_replies_lost_->add(before - replies.size());
    }
  }
  std::stable_sort(replies.begin(), replies.end(),
                   [](const UdpReply& a, const UdpReply& b) {
                     return a.latency_ms < b.latency_ms;
                   });
  return replies;
}

TcpService* World::connect_tcp(Ipv4 src, Ipv4 dst, std::uint16_t port,
                               std::uint32_t seq) {
  tcp_connects_->add();
  if (loss_rate_ > 0.0) {
    const std::uint64_t key = util::hash_words(
        {seed_, 0x7c9ULL /* tcp */,
         (static_cast<std::uint64_t>(src.value()) << 32) | dst.value(),
         (static_cast<std::uint64_t>(port) << 32) | seq});
    if (util::hash_unit(key) < loss_rate_) {
      tcp_syn_lost_->add();
      return nullptr;
    }
  }
  // Fault plane: SYNs face the destination network's unreachable and
  // bursty-loss episodes too (rate limiting stays UDP-only — it models
  // DNS abuse-avoidance middleboxes).
  std::size_t fault_index = 0;
  if (const FaultProfile* fault = faults_.match(dst, &fault_index)) {
    const std::int64_t now_minutes = clock_.minutes();
    if (faults_.episode_active(fault_index, seed_,
                               FaultPlan::kUnreachableEpisode,
                               fault->unreachable_episode_rate, dst,
                               now_minutes)) {
      fault_tcp_lost_->add();
      telemetry_.record_fault_hit(dst.value());
      return nullptr;
    }
    const double loss =
        faults_.episode_active(fault_index, seed_, FaultPlan::kLossEpisode,
                               fault->episode_rate, dst, now_minutes)
            ? fault->burst_loss
            : fault->base_loss;
    if (loss > 0.0) {
      const std::uint64_t syn_key = util::hash_words(
          {seed_, 0x7c9fULL /* tcp fault */,
           (static_cast<std::uint64_t>(src.value()) << 32) | dst.value(),
           (static_cast<std::uint64_t>(port) << 32) | seq});
      if (util::hash_unit(syn_key) < loss) {
        fault_tcp_lost_->add();
        telemetry_.record_fault_hit(dst.value());
        return nullptr;
      }
    }
  }
  const HostId id = host_at(dst);
  if (id == kNoHost) return nullptr;
  if (!is_lazy(id)) {
    Host& host = hosts_[id];
    for (auto& slot : host.tcp) {
      if (slot.first == port && slot.second) return slot.second.get();
    }
    return nullptr;
  }
  CacheShard& shard = shard_for(id);
  const std::lock_guard<std::mutex> lock(shard.mu);
  CacheEntry& entry = touch_locked(shard, id);
  for (auto& slot : entry.services.tcp) {
    if (slot.first == port && slot.second) {
      // The raw pointer escapes with an unknowable lifetime: pin the entry
      // so eviction can never free it. Banner-scan targets are a small,
      // classified subset, so pins stay bounded.
      entry.pinned = true;
      return slot.second.get();
    }
  }
  maybe_evict_locked(shard, id);
  return nullptr;
}

}  // namespace dnswild::net
