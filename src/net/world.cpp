#include "net/world.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/hash.h"

namespace dnswild::net {

namespace {

// Identity hash of a datagram: everything that distinguishes it from any
// other transmission this world will ever carry. Randomness derived from
// this key is independent of call interleaving across threads.
std::uint64_t packet_key(std::uint64_t seed, const UdpPacket& request) {
  return util::hash_words(
      {seed,
       (static_cast<std::uint64_t>(request.src.value()) << 32) |
           request.dst.value(),
       (static_cast<std::uint64_t>(request.src_port) << 32) |
           (static_cast<std::uint64_t>(request.dst_port) << 16) |
           (static_cast<std::uint64_t>(request.seq) & 0xffffULL),
       static_cast<std::uint64_t>(request.seq),
       util::digest_bytes(request.payload)});
}

// Decision streams fanned out from one packet key.
constexpr std::uint64_t kForwardLoss = 1;
constexpr std::uint64_t kReplyLoss = 2;

}  // namespace

World::World(std::uint64_t seed, obs::Registry* metrics)
    : seed_(seed), rng_(seed) {
  if (metrics == nullptr) {
    own_metrics_ = std::make_unique<obs::Registry>();
    metrics = own_metrics_.get();
  }
  metrics_ = metrics;
  udp_sent_ = &metrics_->counter("net.udp.sent");
  udp_delivered_ = &metrics_->counter("net.udp.delivered");
  udp_dropped_filtered_ = &metrics_->counter("net.udp.dropped_filtered");
  udp_lost_ = &metrics_->counter("net.udp.lost");
  udp_replies_lost_ = &metrics_->counter("net.udp.replies_lost");
  udp_injected_ = &metrics_->counter("net.udp.injected_replies");
  tcp_connects_ = &metrics_->counter("net.tcp.connects");
  tcp_syn_lost_ = &metrics_->counter("net.tcp.syn_lost");
  traffic_sections_opened_ = &metrics_->counter("net.traffic_sections");
  fault_forward_lost_ = &metrics_->counter("fault.forward_lost");
  fault_replies_lost_ = &metrics_->counter("fault.replies_lost");
  fault_unreachable_ = &metrics_->counter("fault.unreachable_drops");
  fault_rate_dropped_ = &metrics_->counter("fault.rate_limited_drops");
  fault_rate_refused_ = &metrics_->counter("fault.rate_limited_refused");
  fault_truncated_ = &metrics_->counter("fault.truncated_replies");
  fault_corrupted_ = &metrics_->counter("fault.corrupted_replies");
  fault_slowed_ = &metrics_->counter("fault.slowed_replies");
  fault_tcp_lost_ = &metrics_->counter("fault.tcp_syn_lost");
}

void World::require_mutation_phase(const char* what) const {
  if (in_traffic_phase()) {
    throw std::logic_error(std::string(what) +
                           " is mutation-phase only; close the traffic "
                           "section (barrier) first");
  }
}

HostId World::add_host(const HostConfig& config) {
  require_mutation_phase("add_host");
  const HostId id = static_cast<HostId>(hosts_.size());
  Host host;
  host.config = config;
  host.seed = rng_.next();
  hosts_.push_back(std::move(host));

  Host& stored = hosts_.back();
  if (config.attachment.dynamic) {
    dynamic_hosts_.push_back(id);
    stored.lease_end_day = config.active_from_day;
    if (host_active(stored)) {
      while (stored.lease_end_day <= day()) roll_lease(stored);
      bind(id, stored.current_ip);
    }
  } else if (host_active(stored)) {
    stored.current_ip = config.attachment.ip;
    bind(id, stored.current_ip);
  }
  return id;
}

void World::set_udp_service(HostId host, std::uint16_t port,
                            std::unique_ptr<UdpService> service) {
  require_mutation_phase("set_udp_service");
  auto& slots = hosts_.at(host).udp;
  for (auto& slot : slots) {
    if (slot.first == port) {
      slot.second = std::move(service);
      return;
    }
  }
  slots.emplace_back(port, std::move(service));
}

void World::set_tcp_service(HostId host, std::uint16_t port,
                            std::unique_ptr<TcpService> service) {
  require_mutation_phase("set_tcp_service");
  auto& slots = hosts_.at(host).tcp;
  for (auto& slot : slots) {
    if (slot.first == port) {
      slot.second = std::move(service);
      return;
    }
  }
  slots.emplace_back(port, std::move(service));
}

std::optional<Ipv4> World::address_of(HostId host) const noexcept {
  const Host& record = hosts_[host];
  if (!record.bound) return std::nullopt;
  return record.current_ip;
}

HostId World::host_at(Ipv4 ip) const noexcept {
  const auto it = bindings_.find(ip);
  return it == bindings_.end() ? kNoHost : it->second;
}

void World::add_ingress_filter(IngressFilter filter) {
  require_mutation_phase("add_ingress_filter");
  filters_.push_back(filter);
}

void World::add_injector(Injector injector) {
  require_mutation_phase("add_injector");
  injectors_.push_back(std::move(injector));
}

void World::set_loss_rate(double rate) {
  require_mutation_phase("set_loss_rate");
  loss_rate_ = rate;
}

void World::add_fault_profile(FaultProfile profile) {
  require_mutation_phase("add_fault_profile");
  faults_.add_profile(profile);
  // Profile boundaries changed: restart every host's rate accounting so a
  // destination is never charged against a profile that no longer governs
  // it.
  for (Host& host : hosts_) host.fault_rate.sources.clear();
}

void World::set_time_minutes(std::int64_t minutes) {
  require_mutation_phase("set_time_minutes");
  if (minutes < clock_.minutes()) {
    throw std::logic_error("simulated time cannot move backwards");
  }
  clock_.set_minutes(minutes);
  rebind_expired();
}

void World::advance_days(double days) {
  set_time_minutes(clock_.minutes() +
                   static_cast<std::int64_t>(std::llround(days * 1440.0)));
}

bool World::host_active(const Host& host) const noexcept {
  const double now = day();
  return now >= host.config.active_from_day &&
         now < host.config.active_until_day;
}

void World::roll_lease(Host& host) {
  const Attachment& at = host.config.attachment;
  // Exponential lease duration via inverse CDF over a deterministic
  // per-(host, lease) uniform, so schedules do not depend on call order.
  std::uint64_t word = util::mix64(host.seed ^ (0x9e37u + host.lease_index));
  const double u =
      (static_cast<double>(word >> 11) + 0.5) * 0x1.0p-53;  // (0, 1)
  const double duration = -at.mean_lease_days * std::log(u);
  // Leases run back-to-back from the activation day, so a host's address
  // at any instant is a pure function of (seed, time), independent of how
  // the caller stepped the clock.
  host.lease_end_day += duration;
  const std::uint64_t slot =
      util::mix64(host.seed ^ (0xbeefu + host.lease_index)) % at.pool.size();
  host.current_ip = at.pool.at(slot);
  ++host.lease_index;
}

void World::bind(HostId id, Ipv4 ip) {
  // Pool collisions: the most recent lease wins; the displaced host becomes
  // unreachable until its next lease roll, as with real DHCP races.
  const auto it = bindings_.find(ip);
  if (it != bindings_.end() && it->second != id) {
    hosts_[it->second].bound = false;
  }
  bindings_[ip] = id;
  Host& host = hosts_[id];
  host.current_ip = ip;
  host.bound = true;
}

void World::unbind(HostId id) {
  Host& host = hosts_[id];
  if (!host.bound) return;
  const auto it = bindings_.find(host.current_ip);
  if (it != bindings_.end() && it->second == id) bindings_.erase(it);
  host.bound = false;
}

void World::rebind_expired() {
  const double now = day();
  for (const HostId id : dynamic_hosts_) {
    Host& host = hosts_[id];
    if (!host_active(host)) {
      unbind(id);
      continue;
    }
    if (host.bound && host.lease_end_day > now) continue;
    unbind(id);
    while (host.lease_end_day <= now) roll_lease(host);
    bind(id, host.current_ip);
  }
  // Static hosts only change via their activity window.
  for (HostId id = 0; id < hosts_.size(); ++id) {
    Host& host = hosts_[id];
    if (host.config.attachment.dynamic) continue;
    const bool active = host_active(host);
    if (active && !host.bound) {
      host.current_ip = host.config.attachment.ip;
      bind(id, host.current_ip);
    } else if (!active && host.bound) {
      unbind(id);
    }
  }
}

bool World::filtered(const UdpPacket& request) const noexcept {
  const double now = day();
  for (const IngressFilter& filter : filters_) {
    if (filter.dst_port != request.dst_port) continue;
    if (now < filter.active_from_day) continue;
    if (!filter.network.contains(request.dst)) continue;
    if (filter.only_src && *filter.only_src != request.src) continue;
    return true;
  }
  return false;
}

std::vector<UdpReply> World::send_udp(const UdpPacket& request) {
  udp_sent_->add();
  std::vector<UdpReply> replies;

  if (filtered(request)) {
    udp_dropped_filtered_->add();
    return replies;
  }
  // Loss is a pure function of the packet identity: a retransmission
  // (bumped seq) rolls fresh dice, but no other traffic — on this thread or
  // any other — can perturb the outcome. The fault plane draws from the
  // same key, on disjoint decision streams.
  std::size_t fault_index = 0;
  const FaultProfile* fault = faults_.match(request.dst, &fault_index);
  const std::uint64_t key =
      (loss_rate_ > 0.0 || fault != nullptr) ? packet_key(seed_, request) : 0;
  if (loss_rate_ > 0.0 &&
      util::hash_unit(util::hash_words({key, kForwardLoss})) < loss_rate_) {
    udp_lost_->add();
    return replies;
  }
  const std::int64_t now_minutes = clock_.minutes();
  if (fault != nullptr) {
    switch (faults_.forward_fault(fault_index, seed_, key, request.dst,
                                  now_minutes)) {
      case ForwardFault::kUnreachable:
        fault_unreachable_->add();
        return replies;
      case ForwardFault::kLost:
        fault_forward_lost_->add();
        return replies;
      default:
        break;
    }
  }

  // On-path observers see the datagram once it is in flight.
  for (const Injector& injector : injectors_) injector(request, replies);
  if (!replies.empty()) udp_injected_->add(replies.size());

  const HostId id = host_at(request.dst);
  const std::size_t host_reply_begin = replies.size();
  if (id != kNoHost) {
    Host& host = hosts_[id];
    // Admission control at the destination network's edge. The per-source
    // token state mutates under the per-destination single-writer contract
    // documented on send_udp.
    const ForwardFault admission =
        fault != nullptr
            ? faults_.admit(fault_index, request, now_minutes,
                            host.fault_rate)
            : ForwardFault::kNone;
    if (admission == ForwardFault::kRateDropped) {
      fault_rate_dropped_->add();
    } else if (admission == ForwardFault::kRateRefused) {
      fault_rate_refused_->add();
      replies.push_back(FaultPlan::make_refused_reply(request));
    } else {
      for (auto& slot : host.udp) {
        if (slot.first != request.dst_port || !slot.second) continue;
        udp_delivered_->add();
        std::vector<UdpReply> produced;
        slot.second->handle(request, produced);
        for (UdpReply& reply : produced) {
          UdpPacket& pkt = reply.packet;
          // Default-fill the reply 4-tuple; services override src to model
          // multi-homed forwarders answering from another interface.
          if (pkt.src == Ipv4{}) pkt.src = request.dst;
          if (pkt.src_port == 0) pkt.src_port = request.dst_port;
          if (pkt.dst == Ipv4{}) pkt.dst = request.src;
          if (pkt.dst_port == 0) pkt.dst_port = request.src_port;
          replies.push_back(std::move(reply));
        }
        break;
      }
    }
  }

  // Reply-path faults apply to what came back from the destination network
  // (injected replies originate before it and are exempt): bursty loss,
  // truncation/corruption, slow-episode latency.
  if (fault != nullptr && replies.size() > host_reply_begin) {
    std::size_t write = host_reply_begin;
    std::uint64_t lost = 0;
    for (std::size_t read = host_reply_begin; read < replies.size(); ++read) {
      const std::uint64_t index =
          static_cast<std::uint64_t>(read - host_reply_begin);
      const ReplyFault verdict = faults_.reply_fault(
          fault_index, seed_, key, index, request.dst, now_minutes);
      if (verdict.lost) {
        ++lost;
        continue;
      }
      UdpReply& reply = replies[read];
      if (verdict.truncated) {
        FaultPlan::truncate_payload(reply.packet.payload,
                                    util::hash_words({key, index}));
        fault_truncated_->add();
      } else if (verdict.corrupted) {
        FaultPlan::corrupt_payload(reply.packet.payload,
                                   util::hash_words({key, index}));
        fault_corrupted_->add();
      }
      if (verdict.extra_latency_ms > 0) {
        reply.latency_ms += verdict.extra_latency_ms;
        fault_slowed_->add();
      }
      if (write != read) replies[write] = std::move(replies[read]);
      ++write;
    }
    replies.resize(write);
    if (lost > 0) fault_replies_lost_->add(lost);
  }

  // Per-reply loss on the return path, keyed by the reply's position so
  // each reply to one probe faces independent loss.
  if (loss_rate_ > 0.0) {
    std::uint64_t index = 0;
    const std::size_t before = replies.size();
    std::erase_if(replies, [&](const UdpReply&) {
      return util::hash_unit(util::hash_words({key, kReplyLoss, index++})) <
             loss_rate_;
    });
    if (replies.size() != before) {
      udp_replies_lost_->add(before - replies.size());
    }
  }
  std::stable_sort(replies.begin(), replies.end(),
                   [](const UdpReply& a, const UdpReply& b) {
                     return a.latency_ms < b.latency_ms;
                   });
  return replies;
}

TcpService* World::connect_tcp(Ipv4 src, Ipv4 dst, std::uint16_t port,
                               std::uint32_t seq) {
  tcp_connects_->add();
  if (loss_rate_ > 0.0) {
    const std::uint64_t key = util::hash_words(
        {seed_, 0x7c9ULL /* tcp */,
         (static_cast<std::uint64_t>(src.value()) << 32) | dst.value(),
         (static_cast<std::uint64_t>(port) << 32) | seq});
    if (util::hash_unit(key) < loss_rate_) {
      tcp_syn_lost_->add();
      return nullptr;
    }
  }
  // Fault plane: SYNs face the destination network's unreachable and
  // bursty-loss episodes too (rate limiting stays UDP-only — it models
  // DNS abuse-avoidance middleboxes).
  std::size_t fault_index = 0;
  if (const FaultProfile* fault = faults_.match(dst, &fault_index)) {
    const std::int64_t now_minutes = clock_.minutes();
    if (faults_.episode_active(fault_index, seed_,
                               FaultPlan::kUnreachableEpisode,
                               fault->unreachable_episode_rate, dst,
                               now_minutes)) {
      fault_tcp_lost_->add();
      return nullptr;
    }
    const double loss =
        faults_.episode_active(fault_index, seed_, FaultPlan::kLossEpisode,
                               fault->episode_rate, dst, now_minutes)
            ? fault->burst_loss
            : fault->base_loss;
    if (loss > 0.0) {
      const std::uint64_t syn_key = util::hash_words(
          {seed_, 0x7c9fULL /* tcp fault */,
           (static_cast<std::uint64_t>(src.value()) << 32) | dst.value(),
           (static_cast<std::uint64_t>(port) << 32) | seq});
      if (util::hash_unit(syn_key) < loss) {
        fault_tcp_lost_->add();
        return nullptr;
      }
    }
  }
  const HostId id = host_at(dst);
  if (id == kNoHost) return nullptr;
  Host& host = hosts_[id];
  for (auto& slot : host.tcp) {
    if (slot.first == port && slot.second) return slot.second.get();
  }
  return nullptr;
}

}  // namespace dnswild::net
