// Service interfaces hosts expose to the simulated network.
//
// The World is protocol-agnostic: UDP services consume and produce opaque
// datagrams (DNS lives in src/dns and is parsed by the endpoints, never by
// the network), and TCP services expose the two interactions the paper's
// measurements need — a connect-time greeting (FTP/SSH/Telnet/SMTP/IMAP/
// POP3 banners, §2.4) and a request/response exchange (HTTP, §3.5). TLS
// services additionally serve a certificate, with and without SNI (§3.4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/ip.h"

namespace dnswild::net {

struct UdpPacket {
  Ipv4 src;
  std::uint16_t src_port = 0;
  Ipv4 dst;
  std::uint16_t dst_port = 0;
  std::vector<std::uint8_t> payload;
  // Sender-side transmission counter, not on the wire. The network derives
  // a datagram's fate (loss, injected content) by hashing the packet
  // identity, so a byte-identical retransmission must bump `seq` to face
  // independent randomness. Fresh packets can leave it at 0.
  std::uint32_t seq = 0;
};

// A reply datagram plus its simulated arrival latency, used to order
// multiple responses to one probe (e.g. an on-path injector beating the
// legitimate answer, §4.2).
struct UdpReply {
  UdpPacket packet;
  int latency_ms = 0;
};

class UdpService {
 public:
  virtual ~UdpService() = default;

  // Handles one inbound datagram; appends zero or more replies.
  virtual void handle(const UdpPacket& request,
                      std::vector<UdpReply>& replies) = 0;

  // True when a freshly constructed instance of this service would answer
  // every query byte-identically at the given virtual time — i.e. none of
  // the state accumulated so far is observable on the wire. Lazily
  // materialized hosts (net::World service cache) may only be evicted and
  // re-derived while this holds, so eviction never changes behaviour.
  // Default is the safe answer for stateful services.
  virtual bool reconstructible(std::int64_t now_seconds) const {
    (void)now_seconds;
    return false;
  }
};

// X.509-lite certificate model: just the fields the prefilter inspects.
struct Certificate {
  std::string common_name;
  std::vector<std::string> subject_alt_names;
  std::string issuer;
  bool self_signed = false;
  bool valid_chain = true;  // chains to a trusted root and is unexpired

  // True when the certificate is acceptable for `host`: trusted chain and
  // the host matches the CN or a SAN (single-label wildcards supported).
  bool matches_host(std::string_view host) const noexcept;
};

class TcpService {
 public:
  virtual ~TcpService() = default;

  // Same contract as UdpService::reconstructible, without a time argument:
  // TCP banner/page services either carry no mutable state (true) or are
  // conservatively pinned in memory once materialized (false, the default).
  virtual bool reconstructible() const { return false; }

  // Bytes the server sends immediately after accept; empty for protocols
  // where the client speaks first (HTTP).
  virtual std::string greeting() const { return {}; }

  // Response to one client request (for HTTP: the raw request text in,
  // raw response out). Default: connection consumes input silently.
  virtual std::string respond(std::string_view request) {
    (void)request;
    return {};
  }

  // Certificate served during a TLS handshake with the given SNI value
  // (nullopt = no SNI extension). Returns nullptr when the port does not
  // speak TLS, which the fetcher reports as a failed handshake.
  virtual const Certificate* certificate(
      const std::optional<std::string>& sni) const {
    (void)sni;
    return nullptr;
  }
};

// Matches "name" against a certificate pattern, supporting a single leading
// "*." wildcard label per RFC 6125 (wildcard covers exactly one label).
bool cert_name_matches(std::string_view pattern, std::string_view host) noexcept;

}  // namespace dnswild::net
