#include "net/ip.h"

#include <charconv>

namespace dnswild::net {

std::string Ipv4::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i != 0) out += '.';
    out += std::to_string(octet(i));
  }
  return out;
}

std::optional<Ipv4> Ipv4::parse(std::string_view text) noexcept {
  std::uint32_t value = 0;
  const char* pos = text.data();
  const char* const end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    const auto [next, ec] = std::from_chars(pos, end, octet);
    if (ec != std::errc{} || octet > 255 || next == pos) return std::nullopt;
    value = (value << 8) | octet;
    pos = next;
    if (i < 3) {
      if (pos == end || *pos != '.') return std::nullopt;
      ++pos;
    }
  }
  if (pos != end) return std::nullopt;
  return Ipv4(value);
}

std::string Cidr::to_string() const {
  return base_.to_string() + "/" + std::to_string(prefix_len_);
}

std::optional<Cidr> Cidr::parse(std::string_view text) noexcept {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto base = Ipv4::parse(text.substr(0, slash));
  if (!base) return std::nullopt;
  int len = -1;
  const std::string_view tail = text.substr(slash + 1);
  const auto [next, ec] =
      std::from_chars(tail.data(), tail.data() + tail.size(), len);
  if (ec != std::errc{} || next != tail.data() + tail.size() || len < 0 ||
      len > 32) {
    return std::nullopt;
  }
  return Cidr(*base, len);
}

bool is_reserved(Ipv4 ip) noexcept {
  const std::uint32_t v = ip.value();
  const auto in = [v](std::uint32_t base, int len) {
    const std::uint32_t mask = len == 0 ? 0 : ~std::uint32_t{0} << (32 - len);
    return (v & mask) == base;
  };
  return in(0x00000000, 8)     // 0.0.0.0/8
         || in(0x0a000000, 8)  // 10/8
         || in(0x64400000, 10)  // 100.64/10 CGN
         || in(0x7f000000, 8)   // 127/8
         || in(0xa9fe0000, 16)  // 169.254/16
         || in(0xac100000, 12)  // 172.16/12
         || in(0xc0000000, 24)  // 192.0.0/24
         || in(0xc0000200, 24)  // 192.0.2/24 TEST-NET-1
         || in(0xc0a80000, 16)  // 192.168/16
         || in(0xc6120000, 15)  // 198.18/15 benchmarking
         || in(0xc6336400, 24)  // 198.51.100/24 TEST-NET-2
         || in(0xcb007100, 24)  // 203.0.113/24 TEST-NET-3
         || in(0xe0000000, 4)   // 224/4 multicast
         || in(0xf0000000, 4);  // 240/4 class E (incl. broadcast)
}

bool is_lan(Ipv4 ip) noexcept {
  const std::uint32_t v = ip.value();
  const auto in = [v](std::uint32_t base, int len) {
    const std::uint32_t mask = len == 0 ? 0 : ~std::uint32_t{0} << (32 - len);
    return (v & mask) == base;
  };
  return in(0x0a000000, 8) || in(0xac100000, 12) || in(0xc0a80000, 16) ||
         in(0x7f000000, 8) || in(0xa9fe0000, 16);
}

}  // namespace dnswild::net
