#include "net/services.h"

#include "util/strings.h"

namespace dnswild::net {

bool cert_name_matches(std::string_view pattern,
                       std::string_view host) noexcept {
  if (dnswild::util::iequals(pattern, host)) return true;
  if (!dnswild::util::starts_with(pattern, "*.")) return false;
  const std::string_view suffix = pattern.substr(1);  // ".example.com"
  if (host.size() <= suffix.size()) return false;
  if (!dnswild::util::iequals(host.substr(host.size() - suffix.size()),
                              suffix)) {
    return false;
  }
  // The wildcard must cover exactly one label: no '.' before the suffix.
  const std::string_view head = host.substr(0, host.size() - suffix.size());
  return head.find('.') == std::string_view::npos && !head.empty();
}

bool Certificate::matches_host(std::string_view host) const noexcept {
  if (!valid_chain || self_signed) return false;
  if (cert_name_matches(common_name, host)) return true;
  for (const auto& san : subject_alt_names) {
    if (cert_name_matches(san, host)) return true;
  }
  return false;
}

}  // namespace dnswild::net
