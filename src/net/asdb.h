// Autonomous System database: the simulation's stand-in for BGP routing
// tables plus the GeoIP database.
//
// Each AS has a number, a display name, a country, a kind (broadband ISP,
// hosting, CDN, ...), and owns a set of non-overlapping IPv4 prefixes.
// Address -> AS lookup is a binary search over the sorted prefix table, the
// same longest-prefix outcome as routing since prefixes never overlap.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/countries.h"
#include "net/ip.h"

namespace dnswild::net {

enum class AsKind {
  kBroadbandIsp,  // consumer telecommunication / broadband providers
  kHosting,       // hosting and cloud companies
  kCdn,           // content delivery networks
  kEnterprise,    // business networks, universities, government
  kMobile,        // cellular carriers
};

std::string_view as_kind_name(AsKind kind) noexcept;

struct AsInfo {
  std::uint32_t asn = 0;
  std::string name;
  std::string country;  // ISO code
  AsKind kind = AsKind::kEnterprise;
};

class AsDb {
 public:
  // Registers an AS; asn must be unique. Returns the stored record.
  const AsInfo& add_as(AsInfo info);

  // Assigns a prefix to an AS. The prefix must not overlap any existing
  // prefix and the AS must exist; violations throw std::invalid_argument.
  void add_prefix(Cidr prefix, std::uint32_t asn);

  // AS number owning the address, or nullopt for unrouted space.
  std::optional<std::uint32_t> lookup_asn(Ipv4 ip) const noexcept;

  // Full record for an address; nullopt for unrouted space.
  const AsInfo* lookup(Ipv4 ip) const noexcept;
  const AsInfo* find_as(std::uint32_t asn) const noexcept;

  // GeoIP-style country of an address ("" when unrouted).
  std::string_view country_of(Ipv4 ip) const noexcept;
  Rir rir_of_ip(Ipv4 ip) const noexcept;

  // All prefixes announced by an AS (in insertion order).
  std::vector<Cidr> prefixes_of(std::uint32_t asn) const;

  std::size_t as_count() const noexcept { return as_list_.size(); }
  std::size_t prefix_count() const noexcept { return routes_.size(); }
  const std::vector<AsInfo>& all_as() const noexcept { return as_list_; }

 private:
  struct Route {
    Cidr prefix;
    std::uint32_t asn;
  };

  // Index into as_list_ for an ASN, or npos.
  std::size_t as_index(std::uint32_t asn) const noexcept;

  std::vector<AsInfo> as_list_;
  std::unordered_map<std::uint32_t, std::size_t> asn_index_;
  std::vector<Route> routes_;  // kept sorted by prefix base address
};

}  // namespace dnswild::net
