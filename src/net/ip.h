// IPv4 addresses and CIDR prefixes.
//
// Addresses are a thin value wrapper over a host-order uint32 so they can be
// used as map keys and iterated by the LFSR permutation. Special-range
// checks mirror the exclusions the paper applies to Internet-wide scans
// (private, loopback, link-local, multicast, reserved, broadcast).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace dnswild::net {

class Ipv4 {
 public:
  constexpr Ipv4() noexcept = default;
  constexpr explicit Ipv4(std::uint32_t value) noexcept : value_(value) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const noexcept { return value_; }
  constexpr std::uint8_t octet(int index) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - index)));
  }

  std::string to_string() const;

  // Parses dotted-quad notation; nullopt on malformed input.
  static std::optional<Ipv4> parse(std::string_view text) noexcept;

  friend constexpr auto operator<=>(Ipv4, Ipv4) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

class Cidr {
 public:
  constexpr Cidr() noexcept = default;
  // prefix_len in [0, 32]; host bits of `base` are ignored.
  constexpr Cidr(Ipv4 base, int prefix_len) noexcept
      : base_(Ipv4(prefix_len == 0 ? 0 : base.value() & mask(prefix_len))),
        prefix_len_(prefix_len) {}

  constexpr Ipv4 base() const noexcept { return base_; }
  constexpr int prefix_len() const noexcept { return prefix_len_; }
  constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - prefix_len_);
  }

  constexpr bool contains(Ipv4 ip) const noexcept {
    if (prefix_len_ == 0) return true;
    return (ip.value() & mask(prefix_len_)) == base_.value();
  }

  constexpr Ipv4 at(std::uint64_t offset) const noexcept {
    return Ipv4(base_.value() + static_cast<std::uint32_t>(offset));
  }

  std::string to_string() const;

  // Parses "a.b.c.d/len"; nullopt on malformed input.
  static std::optional<Cidr> parse(std::string_view text) noexcept;

  friend constexpr auto operator<=>(Cidr, Cidr) noexcept = default;

 private:
  static constexpr std::uint32_t mask(int prefix_len) noexcept {
    return prefix_len == 0 ? 0
                           : ~std::uint32_t{0} << (32 - prefix_len);
  }

  Ipv4 base_{};
  int prefix_len_ = 0;
};

// True for addresses Internet-wide scans must skip: RFC 1918 private space,
// loopback, link-local, 0.0.0.0/8, CGN 100.64/10, multicast and class E.
bool is_reserved(Ipv4 ip) noexcept;

// True for RFC 1918 + loopback + link-local (the "LAN IP" check used when
// classifying resolver answers in §4.2).
bool is_lan(Ipv4 ip) noexcept;

}  // namespace dnswild::net

template <>
struct std::hash<dnswild::net::Ipv4> {
  std::size_t operator()(dnswild::net::Ipv4 ip) const noexcept {
    // Fibonacci mix so consecutive addresses spread across buckets.
    return static_cast<std::size_t>(ip.value() * 0x9e3779b97f4a7c15ULL);
  }
};
