// Unified client-side retry/backoff policy (DESIGN.md §9).
//
// Every campaign that probes the World — the four scanners, the HTTP
// fetcher, the pipeline's trusted-resolution loop — shares this one
// mechanism instead of ad-hoc retry loops. A retransmission is the same
// packet with a bumped `seq`, so it rolls fresh fate dice; the wait before
// each retransmission is exponential backoff with deterministic jitter
// hashed from the probe's identity, so retry schedules are reproducible
// under any thread count. Virtual seconds waited are reported back to the
// caller, who charges them into a scan::TokenBucket (the virtual clock the
// campaigns already pace themselves with).
//
// Defined in net:: because http::Fetcher sits below the scan layer; the
// campaign-facing name is scan::RetryPolicy (scan/retry.h aliases it).
#pragma once

#include <cstdint>
#include <vector>

#include "net/world.h"
#include "obs/metrics.h"

namespace dnswild::net {

// Identity hash of a UDP probe: (flow 4-tuple, payload digest). Seeds the
// backoff jitter so one probe's retry schedule is the same everywhere it
// is computed — in Retrier::send and in the event core's virtual-time
// replay of the same ladder (scan/event_core.h).
std::uint64_t probe_identity_key(const UdpPacket& packet) noexcept;

struct RetryPolicy {
  // Retransmissions after the initial send; 0 = single-shot.
  int attempts = 0;
  // Wait before retransmission k (1-based): initial * factor^(k-1), scaled
  // by 1 ± jitter via a per-probe hash.
  double backoff_initial_seconds = 0.5;
  double backoff_factor = 2.0;
  double jitter = 0.5;
  // Replies slower than this count as missed (the client has already
  // retransmitted); 0 disables the timeout.
  int timeout_ms = 0;
  // Salts the jitter hash; campaigns default it from their own seed.
  std::uint64_t seed = 0;

  // Copy with `seed` defaulted when unset, for wiring through configs.
  RetryPolicy seeded(std::uint64_t fallback_seed) const noexcept {
    RetryPolicy copy = *this;
    if (copy.seed == 0) copy.seed = fallback_seed;
    return copy;
  }

  // Virtual seconds to wait before retransmission `attempt` (1-based) of
  // the probe identified by `probe_key`. Pure function of its arguments.
  double backoff_seconds(std::uint64_t probe_key, int attempt) const noexcept;
};

// Everything one probe's retry loop produced.
struct RetryOutcome {
  std::vector<UdpReply> replies;  // surviving (timeout-filtered) replies
  int transmissions = 1;          // sends performed, initial included
  double waited_seconds = 0.0;    // virtual backoff + timeout time
  bool exhausted = false;         // retried and still heard nothing
};

// Binds a World and a policy; registers "retry.*" counters and the
// retry-latency histogram in the world's registry. send() only touches
// atomic counters and locals, so one Retrier may be shared by all of a
// scan's workers.
class Retrier {
 public:
  Retrier(World& world, RetryPolicy policy);

  // Sends with retransmissions. `packet.seq` on entry is the base; each
  // retransmission bumps it. Returns the first attempt that produced
  // surviving replies.
  RetryOutcome send(UdpPacket packet);

  // TCP analogue: re-dials the 3-tuple with a bumped seq per attempt.
  TcpService* connect(Ipv4 src, Ipv4 dst, std::uint16_t port);

  const RetryPolicy& policy() const noexcept { return policy_; }

 private:
  World& world_;
  RetryPolicy policy_;
  obs::Counter* attempts_;
  obs::Counter* retransmissions_;
  obs::Counter* exhausted_;
  obs::Counter* recovered_;
  obs::Counter* timed_out_;
  obs::Histogram* wait_ms_;
};

}  // namespace dnswild::net
