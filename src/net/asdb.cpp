#include "net/asdb.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace dnswild::net {

std::string_view as_kind_name(AsKind kind) noexcept {
  switch (kind) {
    case AsKind::kBroadbandIsp: return "broadband";
    case AsKind::kHosting: return "hosting";
    case AsKind::kCdn: return "cdn";
    case AsKind::kEnterprise: return "enterprise";
    case AsKind::kMobile: return "mobile";
  }
  return "unknown";
}

const AsInfo& AsDb::add_as(AsInfo info) {
  if (as_index(info.asn) != static_cast<std::size_t>(-1)) {
    throw std::invalid_argument("duplicate ASN " + std::to_string(info.asn));
  }
  asn_index_.emplace(info.asn, as_list_.size());
  as_list_.push_back(std::move(info));
  return as_list_.back();
}

void AsDb::add_prefix(Cidr prefix, std::uint32_t asn) {
  if (as_index(asn) == static_cast<std::size_t>(-1)) {
    throw std::invalid_argument("unknown ASN " + std::to_string(asn));
  }
  const auto it = std::lower_bound(
      routes_.begin(), routes_.end(), prefix.base(),
      [](const Route& route, Ipv4 base) { return route.prefix.base() < base; });
  // Overlap is possible only with the immediate neighbours in sorted order.
  if (it != routes_.end() &&
      (it->prefix.contains(prefix.base()) || prefix.contains(it->prefix.base()))) {
    throw std::invalid_argument("overlapping prefix " + prefix.to_string());
  }
  if (it != routes_.begin()) {
    const Route& prev = *(it - 1);
    if (prev.prefix.contains(prefix.base()) ||
        prefix.contains(prev.prefix.base())) {
      throw std::invalid_argument("overlapping prefix " + prefix.to_string());
    }
  }
  routes_.insert(it, Route{prefix, asn});
}

std::optional<std::uint32_t> AsDb::lookup_asn(Ipv4 ip) const noexcept {
  auto it = std::upper_bound(
      routes_.begin(), routes_.end(), ip,
      [](Ipv4 addr, const Route& route) { return addr < route.prefix.base(); });
  if (it == routes_.begin()) return std::nullopt;
  --it;
  if (!it->prefix.contains(ip)) return std::nullopt;
  return it->asn;
}

const AsInfo* AsDb::lookup(Ipv4 ip) const noexcept {
  const auto asn = lookup_asn(ip);
  if (!asn) return nullptr;
  return find_as(*asn);
}

const AsInfo* AsDb::find_as(std::uint32_t asn) const noexcept {
  const std::size_t index = as_index(asn);
  if (index == static_cast<std::size_t>(-1)) return nullptr;
  return &as_list_[index];
}

std::string_view AsDb::country_of(Ipv4 ip) const noexcept {
  const AsInfo* info = lookup(ip);
  return info ? std::string_view(info->country) : std::string_view{};
}

Rir AsDb::rir_of_ip(Ipv4 ip) const noexcept {
  return rir_of(country_of(ip));
}

std::vector<Cidr> AsDb::prefixes_of(std::uint32_t asn) const {
  std::vector<Cidr> out;
  for (const Route& route : routes_) {
    if (route.asn == asn) out.push_back(route.prefix);
  }
  return out;
}

std::size_t AsDb::as_index(std::uint32_t asn) const noexcept {
  const auto it = asn_index_.find(asn);
  return it == asn_index_.end() ? static_cast<std::size_t>(-1) : it->second;
}

}  // namespace dnswild::net
