// The simulated Internet.
//
// World is the substitution for the live IPv4 network the paper scans (see
// DESIGN.md §2): a population of hosts bound to IPv4 addresses, reachable
// through an in-process datagram interface with seeded packet loss,
// network-level ingress filtering, on-path response injection (the Great
// Firewall model registers itself here), and DHCP-style address churn.
//
// The network is protocol-agnostic — payloads are opaque bytes; DNS and
// HTTP live in the endpoints. All behaviour is deterministic under the
// construction seed, and time only moves forward via set_time_minutes().
//
// Concurrency model (DESIGN.md "Concurrency model"): a World alternates
// between a single-threaded *mutation phase* (population edits, clock
// advancement, lease churn) and a *traffic phase* in which any number of
// threads may call send_udp()/connect_tcp() concurrently. During traffic,
// bindings/filters/injectors are read-only, the statistics counters are
// atomic, and every per-packet random decision (loss in either direction,
// injected-reply content) is a pure hash of the packet identity — so a
// datagram's fate never depends on how concurrent calls interleave.
// Scanners bracket their parallel sections with begin_traffic() /
// end_traffic(); mutators throw while a traffic phase is active.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/asdb.h"
#include "net/clock.h"
#include "net/faults.h"
#include "net/ip.h"
#include "net/rdns.h"
#include "net/services.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace dnswild::net {

using HostId = std::uint32_t;
inline constexpr HostId kNoHost = std::numeric_limits<HostId>::max();

// How a host is attached to the address space.
struct Attachment {
  // Static hosts keep `ip` forever. Dynamic hosts draw addresses from
  // `pool` with exponentially distributed lease durations (mean
  // `mean_lease_days`), starting from a deterministic per-host stream.
  Ipv4 ip{};
  bool dynamic = false;
  Cidr pool{};
  double mean_lease_days = 0.0;
};

struct HostConfig {
  Attachment attachment;
  // Simulated-day window during which the host exists at all. Hosts outside
  // the window are unbound (used for decommissioned resolver populations).
  double active_from_day = 0.0;
  double active_until_day = std::numeric_limits<double>::infinity();
};

// Drops inbound UDP datagrams to `network` on `dst_port`, optionally only
// those originating from `only_src` (models networks that blocked the
// scanner specifically, §2.2 "scan verification") and only from
// `active_from_day` on (networks that deployed filtering mid-study, §2.3).
struct IngressFilter {
  Cidr network;
  std::uint16_t dst_port = 53;
  std::optional<Ipv4> only_src;
  double active_from_day = 0.0;
};

// On-path injector: observes every delivered datagram and may fabricate
// replies that race the legitimate answer. Returning replies does not stop
// delivery to the destination host.
using Injector = std::function<void(const UdpPacket& request,
                                    std::vector<UdpReply>& injected)>;

class World {
 public:
  // `metrics`, when given, is the registry the world's traffic counters
  // live in (not owned; must outlive the world). Without one the world
  // owns a private registry, so every world still produces a run report.
  explicit World(std::uint64_t seed, obs::Registry* metrics = nullptr);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  // --- population ------------------------------------------------------
  HostId add_host(const HostConfig& config);
  std::size_t host_count() const noexcept { return hosts_.size(); }

  // Service registration; replaces any previous service on the port.
  void set_udp_service(HostId host, std::uint16_t port,
                       std::unique_ptr<UdpService> service);
  void set_tcp_service(HostId host, std::uint16_t port,
                       std::unique_ptr<TcpService> service);

  // Current address of a host, or nullopt while unbound (inactive, or its
  // pool slot was taken over after a lease change).
  std::optional<Ipv4> address_of(HostId host) const noexcept;
  // Host currently bound to an address, or kNoHost.
  HostId host_at(Ipv4 ip) const noexcept;

  // --- environment ------------------------------------------------------
  // The observability registry the traffic plane and every campaign over
  // this world record into (DESIGN.md §8).
  obs::Registry& metrics() noexcept { return *metrics_; }
  const obs::Registry& metrics() const noexcept { return *metrics_; }

  AsDb& asdb() noexcept { return asdb_; }
  const AsDb& asdb() const noexcept { return asdb_; }
  RdnsStore& rdns() noexcept { return rdns_; }
  const RdnsStore& rdns() const noexcept { return rdns_; }

  void add_ingress_filter(IngressFilter filter);
  void add_injector(Injector injector);
  // Fraction of datagrams lost in each direction, in [0, 1).
  void set_loss_rate(double rate);
  // Installs a fault profile (DESIGN.md §9). Profiles are consulted in
  // insertion order; the first whose network contains the destination
  // governs the datagram. Mutation-phase only.
  void add_fault_profile(FaultProfile profile);
  const FaultPlan& fault_plan() const noexcept { return faults_; }

  // --- time -------------------------------------------------------------
  const SimClock& clock() const noexcept { return clock_; }
  double day() const noexcept { return clock_.days(); }
  // Advances simulated time (monotonic; going backwards throws) and
  // re-binds dynamic hosts whose leases expired.
  void set_time_minutes(std::int64_t minutes);
  void advance_days(double days);

  // --- traffic ----------------------------------------------------------
  // Sends one datagram and returns every reply that made it back, sorted by
  // arrival latency (injected replies may precede the real one). A filtered
  // or lost request, an unbound destination, or a closed port yields no
  // replies — indistinguishable to the sender, as on the real Internet.
  //
  // Thread-safe against concurrent send_udp/connect_tcp calls. Delivery to
  // a host's service is NOT internally serialized here; callers that probe
  // concurrently must partition destinations so each bound address is
  // driven by one thread (which scan::ParallelExecutor shards guarantee).
  std::vector<UdpReply> send_udp(const UdpPacket& request);

  // Opens a TCP connection; returns the service speaking on that port or
  // nullptr when the address is unbound / the port closed / the SYN lost.
  // `seq` numbers repeated connects to the same 3-tuple so retries face
  // independent SYN loss (see UdpPacket::seq).
  TcpService* connect_tcp(Ipv4 src, Ipv4 dst, std::uint16_t port,
                          std::uint32_t seq = 0);

  // --- phases -----------------------------------------------------------
  // Marks the world as being in a concurrent traffic phase. While at least
  // one traffic section is open, every mutator above (population edits,
  // filters/injectors, loss rate, clock movement) throws std::logic_error:
  // those operations rewrite state the traffic plane reads without locks.
  // Nesting is allowed; the phase ends when every section closed.
  void begin_traffic() noexcept {
    traffic_sections_.fetch_add(1);
    traffic_sections_opened_->add();
  }
  void end_traffic() noexcept { traffic_sections_.fetch_sub(1); }
  bool in_traffic_phase() const noexcept {
    return traffic_sections_.load() != 0;
  }

  // RAII traffic section for scanner fan-out code.
  class TrafficSection {
   public:
    explicit TrafficSection(World& world) noexcept : world_(world) {
      world_.begin_traffic();
    }
    ~TrafficSection() { world_.end_traffic(); }
    TrafficSection(const TrafficSection&) = delete;
    TrafficSection& operator=(const TrafficSection&) = delete;

   private:
    World& world_;
  };

  // --- statistics -------------------------------------------------------
  // Registry-backed traffic counters (the former ad-hoc atomics; the same
  // values are part of every metrics() snapshot under "net.*").
  std::uint64_t udp_sent() const noexcept { return udp_sent_->value(); }
  std::uint64_t udp_delivered() const noexcept {
    return udp_delivered_->value();
  }
  std::uint64_t udp_dropped_filtered() const noexcept {
    return udp_dropped_filtered_->value();
  }
  std::uint64_t udp_lost() const noexcept { return udp_lost_->value(); }

 private:
  struct Host {
    HostConfig config;
    Ipv4 current_ip{};
    bool bound = false;
    double lease_end_day = 0.0;
    std::uint32_t lease_index = 0;
    std::uint64_t seed = 0;
    std::vector<std::pair<std::uint16_t, std::unique_ptr<UdpService>>> udp;
    std::vector<std::pair<std::uint16_t, std::unique_ptr<TcpService>>> tcp;
    // Rate-limiter state for the fault plane; mutated during traffic under
    // the same per-destination single-writer contract as the services.
    FaultRateState fault_rate;
  };

  bool host_active(const Host& host) const noexcept;
  void rebind_expired();
  void bind(HostId id, Ipv4 ip);
  void unbind(HostId id);
  // Draws the next lease (address + duration) for a dynamic host.
  void roll_lease(Host& host);
  bool filtered(const UdpPacket& request) const noexcept;
  void require_mutation_phase(const char* what) const;

  SimClock clock_;
  std::uint64_t seed_;  // salts the per-packet fate hashes
  util::Rng rng_;       // mutation-phase draws only (host seeds)
  double loss_rate_ = 0.0;

  std::vector<Host> hosts_;
  std::unordered_map<Ipv4, HostId> bindings_;
  std::vector<HostId> dynamic_hosts_;

  AsDb asdb_;
  RdnsStore rdns_;
  std::vector<IngressFilter> filters_;
  std::vector<Injector> injectors_;
  FaultPlan faults_;

  // Registry the traffic counters live in; own_metrics_ backs it when the
  // caller did not supply one.
  std::unique_ptr<obs::Registry> own_metrics_;
  obs::Registry* metrics_ = nullptr;
  obs::Counter* udp_sent_ = nullptr;
  obs::Counter* udp_delivered_ = nullptr;
  obs::Counter* udp_dropped_filtered_ = nullptr;
  obs::Counter* udp_lost_ = nullptr;           // forward-path loss
  obs::Counter* udp_replies_lost_ = nullptr;   // return-path loss
  obs::Counter* udp_injected_ = nullptr;       // on-path fabricated replies
  obs::Counter* tcp_connects_ = nullptr;
  obs::Counter* tcp_syn_lost_ = nullptr;
  obs::Counter* traffic_sections_opened_ = nullptr;
  // Fault-plane tallies ("fault.*" in every snapshot).
  obs::Counter* fault_forward_lost_ = nullptr;
  obs::Counter* fault_replies_lost_ = nullptr;
  obs::Counter* fault_unreachable_ = nullptr;
  obs::Counter* fault_rate_dropped_ = nullptr;
  obs::Counter* fault_rate_refused_ = nullptr;
  obs::Counter* fault_truncated_ = nullptr;
  obs::Counter* fault_corrupted_ = nullptr;
  obs::Counter* fault_slowed_ = nullptr;
  obs::Counter* fault_tcp_lost_ = nullptr;
  std::atomic<int> traffic_sections_{0};
};

}  // namespace dnswild::net
