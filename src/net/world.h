// The simulated Internet.
//
// World is the substitution for the live IPv4 network the paper scans (see
// DESIGN.md §2): a population of hosts bound to IPv4 addresses, reachable
// through an in-process datagram interface with seeded packet loss,
// network-level ingress filtering, on-path response injection (the Great
// Firewall model registers itself here), and DHCP-style address churn.
//
// The network is protocol-agnostic — payloads are opaque bytes; DNS and
// HTTP live in the endpoints. All behaviour is deterministic under the
// construction seed, and time only moves forward via set_time_minutes().
//
// Hosts come in two flavours (DESIGN.md §12). *Eager* hosts (add_host /
// set_udp_service) own their services for the world's lifetime. *Lazy*
// hosts (add_host_block) are defined by a HostSource: their immutable
// attributes and services are pure functions of the host index, derived on
// first touch and cached in a bounded service cache; only the hot mutable
// state — current address, lease schedule, activity flags — lives in
// compact SoA tables, so a 10M-host world costs tens of bytes per host
// instead of hundreds.
//
// Concurrency model (DESIGN.md "Concurrency model"): a World alternates
// between a single-threaded *mutation phase* (population edits, clock
// advancement, lease churn) and a *traffic phase* in which any number of
// threads may call send_udp()/connect_tcp() concurrently. During traffic,
// bindings/filters/injectors are read-only, the statistics counters are
// atomic, and every per-packet random decision (loss in either direction,
// injected-reply content) is a pure hash of the packet identity — so a
// datagram's fate never depends on how concurrent calls interleave.
// Scanners bracket their parallel sections with begin_traffic() /
// end_traffic(); mutators throw while a traffic phase is active.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/asdb.h"
#include "net/clock.h"
#include "net/faults.h"
#include "net/ip.h"
#include "net/rdns.h"
#include "net/services.h"
#include "obs/metrics.h"
#include "obs/prefix_telemetry.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace dnswild::net {

using HostId = std::uint32_t;
inline constexpr HostId kNoHost = std::numeric_limits<HostId>::max();

// How a host is attached to the address space.
struct Attachment {
  // Static hosts keep `ip` forever. Dynamic hosts draw addresses from
  // `pool` with exponentially distributed lease durations (mean
  // `mean_lease_days`), starting from a deterministic per-host stream.
  Ipv4 ip{};
  bool dynamic = false;
  Cidr pool{};
  double mean_lease_days = 0.0;
};

struct HostConfig {
  Attachment attachment;
  // Simulated-day window during which the host exists at all. Hosts outside
  // the window are unbound (used for decommissioned resolver populations).
  double active_from_day = 0.0;
  double active_until_day = std::numeric_limits<double>::infinity();
  // Per-host randomness seed driving the lease schedule. Unset: add_host
  // draws one from the world's mutation-phase stream (the historical
  // behaviour). Lazy hosts always carry a derived seed so their schedules
  // are independent of registration order.
  std::optional<std::uint64_t> seed;
};

// The services a lazily materialized host exposes, produced in one shot by
// its HostSource (unlike eager hosts, a lazy host's services are installed
// atomically, never edited piecemeal).
struct HostServices {
  std::vector<std::pair<std::uint16_t, std::unique_ptr<UdpService>>> udp;
  std::vector<std::pair<std::uint16_t, std::unique_ptr<TcpService>>> tcp;
};

// Pure derivation backend for a block of lazy hosts. Both methods MUST be
// pure functions of (source state, index): they are called at arbitrary
// times, from arbitrary threads (under the service-cache shard lock), and
// repeatedly for the same index after evictions — every call must agree.
class HostSource {
 public:
  virtual ~HostSource() = default;

  // Cheap: attachment + activity window + lease seed. Called once per host
  // at registration (to seed the SoA tables) and again on clock movement
  // for churning hosts.
  virtual HostConfig derive_config(std::uint64_t index) const = 0;

  // Expensive: constructs the host's service objects. Called on first
  // touch and after eviction.
  virtual HostServices materialize(std::uint64_t index) const = 0;
};

// Drops inbound UDP datagrams to `network` on `dst_port`, optionally only
// those originating from `only_src` (models networks that blocked the
// scanner specifically, §2.2 "scan verification") and only from
// `active_from_day` on (networks that deployed filtering mid-study, §2.3).
struct IngressFilter {
  Cidr network;
  std::uint16_t dst_port = 53;
  std::optional<Ipv4> only_src;
  double active_from_day = 0.0;
};

// On-path injector: observes every delivered datagram and may fabricate
// replies that race the legitimate answer. Returning replies does not stop
// delivery to the destination host.
using Injector = std::function<void(const UdpPacket& request,
                                    std::vector<UdpReply>& injected)>;

// ip -> HostId binding table that exploits worldgen's CIDR layout: for
// registered address ranges (consumer pools, service nets) the binding is
// a 4-byte slot in a dense per-range array — O(log ranges) lookup, no
// per-entry hashing or node allocation; addresses outside every registered
// range fall back to a hash map. Replaces the former
// std::unordered_map<Ipv4, HostId> whose ~50 B/entry nodes dominated
// memory at 10M-host scale.
class BindingIndex {
 public:
  // Registers a range for dense storage. Ranges must not overlap (worldgen
  // prefixes never do; an overlapping registration is ignored). Existing
  // overflow entries inside the range migrate into it.
  void register_range(Cidr range);

  void set(Ipv4 ip, HostId id);
  void erase(Ipv4 ip);
  HostId get(Ipv4 ip) const noexcept;

  std::size_t range_count() const noexcept { return ranges_.size(); }
  std::size_t overflow_size() const noexcept { return overflow_.size(); }
  // Bytes held in dense slot arrays (the dominant cost at scale).
  std::size_t slot_bytes() const noexcept { return slot_bytes_; }

 private:
  struct Range {
    std::uint32_t base = 0;
    std::uint64_t size = 0;  // address count; may be 2^32 in the extreme
    std::vector<HostId> slots;
  };

  Range* find(Ipv4 ip) noexcept;
  const Range* find(Ipv4 ip) const noexcept;

  std::vector<Range> ranges_;  // sorted by base, non-overlapping
  std::unordered_map<Ipv4, HostId> overflow_;
  std::size_t slot_bytes_ = 0;
};

class World {
 public:
  // `metrics`, when given, is the registry the world's traffic counters
  // live in (not owned; must outlive the world). Without one the world
  // owns a private registry, so every world still produces a run report.
  explicit World(std::uint64_t seed, obs::Registry* metrics = nullptr);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  // --- population ------------------------------------------------------
  HostId add_host(const HostConfig& config);

  // Registers `count` lazy hosts backed by `source` (indices 0..count-1).
  // Returns the first HostId of the contiguous block. Must come after all
  // add_host calls: eager ids stay dense in [0, eager_count). One cheap
  // derive_config pass seeds the SoA lease tables and initial bindings;
  // services materialize on first touch.
  HostId add_host_block(std::shared_ptr<const HostSource> source,
                        std::uint64_t count);

  std::size_t host_count() const noexcept {
    return hosts_.size() + lazy_count_;
  }

  // Service registration; replaces any previous service on the port.
  // Eager hosts only — lazy hosts derive their services (logic_error).
  void set_udp_service(HostId host, std::uint16_t port,
                       std::unique_ptr<UdpService> service);
  void set_tcp_service(HostId host, std::uint16_t port,
                       std::unique_ptr<TcpService> service);

  // Current address of a host, or nullopt while unbound (inactive, or its
  // pool slot was taken over after a lease change).
  std::optional<Ipv4> address_of(HostId host) const noexcept;
  // Host currently bound to an address, or kNoHost.
  HostId host_at(Ipv4 ip) const noexcept;

  // --- environment ------------------------------------------------------
  // The observability registry the traffic plane and every campaign over
  // this world record into (DESIGN.md §8).
  obs::Registry& metrics() noexcept { return *metrics_; }
  const obs::Registry& metrics() const noexcept { return *metrics_; }

  // The per-/20 telemetry plane (DESIGN.md §13). The fault plane records
  // verdicts and rate-limit admissions here; scanners record probe
  // outcomes; rebind churn lands here too. Campaign code snapshots it into
  // StudyReport::prefixes.
  obs::PrefixTelemetry& prefix_telemetry() noexcept { return telemetry_; }
  const obs::PrefixTelemetry& prefix_telemetry() const noexcept {
    return telemetry_;
  }

  // The world's flight recorder, attached to metrics() so spans mirror
  // into it; the event cores stamp probe events with its virtual clock.
  obs::TraceRecorder& trace() noexcept { return *trace_; }
  const obs::TraceRecorder& trace() const noexcept { return *trace_; }

  AsDb& asdb() noexcept { return asdb_; }
  const AsDb& asdb() const noexcept { return asdb_; }
  RdnsStore& rdns() noexcept { return rdns_; }
  const RdnsStore& rdns() const noexcept { return rdns_; }

  // Declares a CIDR range for dense binding storage (see BindingIndex).
  // Worldgen calls this for every allocated prefix; unregistered addresses
  // still work through the overflow map.
  void register_address_range(Cidr range);

  void add_ingress_filter(IngressFilter filter);
  void add_injector(Injector injector);
  // Fraction of datagrams lost in each direction, in [0, 1).
  void set_loss_rate(double rate);
  // Installs a fault profile (DESIGN.md §9). Profiles are consulted in
  // insertion order; the first whose network contains the destination
  // governs the datagram. Mutation-phase only.
  void add_fault_profile(FaultProfile profile);
  const FaultPlan& fault_plan() const noexcept { return faults_; }

  // Clears accumulated soft state — spent rate-limit token buckets on
  // eager hosts and cached lazy entries — without touching bindings,
  // leases, or the clock. The campaign engine calls this at every epoch
  // boundary so an epoch's outcomes are a pure function of (seed, epoch
  // start time, targets) regardless of what earlier epochs sent: a
  // resumed process that replayed only the clock advances observes the
  // same wire behaviour as the uninterrupted run. Mutation-phase only.
  void reset_transient_state();

  // --- time -------------------------------------------------------------
  const SimClock& clock() const noexcept { return clock_; }
  double day() const noexcept { return clock_.days(); }
  // Advances simulated time (monotonic; going backwards throws) and
  // re-binds dynamic hosts whose leases expired.
  void set_time_minutes(std::int64_t minutes);
  void advance_days(double days);

  // --- traffic ----------------------------------------------------------
  // Sends one datagram and returns every reply that made it back, sorted by
  // arrival latency (injected replies may precede the real one). A filtered
  // or lost request, an unbound destination, or a closed port yields no
  // replies — indistinguishable to the sender, as on the real Internet.
  //
  // Thread-safe against concurrent send_udp/connect_tcp calls. Delivery to
  // an eager host's service is NOT internally serialized here; callers that
  // probe concurrently must partition destinations so each bound address is
  // driven by one thread (which scan::ParallelExecutor shards guarantee).
  // Lazy hosts are additionally serialized per service-cache shard, which
  // keeps materialization and eviction safe under that same contract.
  std::vector<UdpReply> send_udp(const UdpPacket& request);

  // Opens a TCP connection; returns the service speaking on that port or
  // nullptr when the address is unbound / the port closed / the SYN lost.
  // `seq` numbers repeated connects to the same 3-tuple so retries face
  // independent SYN loss (see UdpPacket::seq). A lazy host whose TCP
  // service is handed out is pinned in the service cache (never evicted):
  // the caller holds a raw pointer of unknowable lifetime.
  TcpService* connect_tcp(Ipv4 src, Ipv4 dst, std::uint16_t port,
                          std::uint32_t seq = 0);

  // --- lazy-host memory -------------------------------------------------
  // Bounds the number of materialized lazy hosts resident at once (split
  // across the cache's shards). Cold entries whose services report
  // reconstructible() — i.e. a re-derived instance would answer
  // byte-identically — are evicted LRU-style back to their derivable
  // defaults; entries with observable state (snoop counters, live cache
  // lines, spent rate-limit tokens, handed-out TCP services) stay resident,
  // so eviction never changes wire behaviour. Mutation-phase only.
  void set_service_cache_capacity(std::size_t capacity);

  struct LazyStats {
    std::uint64_t materializations = 0;  // includes re-materializations
    std::uint64_t evictions = 0;
    std::uint64_t resident = 0;          // entries currently cached
    std::uint64_t pinned = 0;            // held by handed-out TCP services
  };
  // Deliberately an accessor, not registry counters: lazy-vs-eager worlds
  // must produce byte-identical masked metrics reports (DESIGN.md §12).
  LazyStats lazy_stats() const;

  // --- phases -----------------------------------------------------------
  // Marks the world as being in a concurrent traffic phase. While at least
  // one traffic section is open, every mutator above (population edits,
  // filters/injectors, loss rate, clock movement) throws std::logic_error:
  // those operations rewrite state the traffic plane reads without locks.
  // Nesting is allowed; the phase ends when every section closed.
  void begin_traffic() noexcept {
    traffic_sections_.fetch_add(1);
    traffic_sections_opened_->add();
  }
  void end_traffic() noexcept { traffic_sections_.fetch_sub(1); }
  bool in_traffic_phase() const noexcept {
    return traffic_sections_.load() != 0;
  }

  // RAII traffic section for scanner fan-out code.
  class TrafficSection {
   public:
    explicit TrafficSection(World& world) noexcept : world_(world) {
      world_.begin_traffic();
    }
    ~TrafficSection() { world_.end_traffic(); }
    TrafficSection(const TrafficSection&) = delete;
    TrafficSection& operator=(const TrafficSection&) = delete;

   private:
    World& world_;
  };

  // --- statistics -------------------------------------------------------
  // Registry-backed traffic counters (the former ad-hoc atomics; the same
  // values are part of every metrics() snapshot under "net.*").
  std::uint64_t udp_sent() const noexcept { return udp_sent_->value(); }
  std::uint64_t udp_delivered() const noexcept {
    return udp_delivered_->value();
  }
  std::uint64_t udp_dropped_filtered() const noexcept {
    return udp_dropped_filtered_->value();
  }
  std::uint64_t udp_lost() const noexcept { return udp_lost_->value(); }

 private:
  struct Host {
    HostConfig config;
    Ipv4 current_ip{};
    bool bound = false;
    double lease_end_day = 0.0;
    std::uint32_t lease_index = 0;
    std::uint64_t seed = 0;
    std::vector<std::pair<std::uint16_t, std::unique_ptr<UdpService>>> udp;
    std::vector<std::pair<std::uint16_t, std::unique_ptr<TcpService>>> tcp;
    // Rate-limiter state for the fault plane; mutated during traffic under
    // the same per-destination single-writer contract as the services.
    FaultRateState fault_rate;
  };

  // Per-host SoA flags for lazy blocks.
  static constexpr std::uint8_t kLazyDynamic = 1;
  static constexpr std::uint8_t kLazyBound = 2;
  // Static host whose activity window is not [0, inf): needs a re-derive
  // on clock movement. Plain always-active static hosts skip churn work.
  static constexpr std::uint8_t kLazyWindowed = 4;

  // One add_host_block registration: the derivation source plus compact
  // SoA tables holding ONLY the mutable per-host state (17 bytes/host).
  // Everything immutable — attachment, services, behaviour — is re-derived
  // from the source on demand.
  struct LazyBlock {
    HostId first = 0;
    std::uint64_t count = 0;
    std::shared_ptr<const HostSource> source;
    std::vector<Ipv4> current_ip;
    std::vector<double> lease_end_day;
    std::vector<std::uint32_t> lease_index;
    std::vector<std::uint8_t> flags;
    bool any_churn = false;  // any dynamic or windowed host in the block
  };

  // Bounded cache of materialized lazy-host services, sharded to keep the
  // traffic phase concurrent. The shard mutex is held across delivery into
  // a cached service, so eviction (same lock) can never free an in-use
  // service.
  struct CacheEntry {
    HostServices services;
    FaultRateState fault_rate;
    std::uint64_t last_touch = 0;
    bool pinned = false;  // TCP service handed out; never evict
  };
  struct CacheShard {
    mutable std::mutex mu;
    std::unordered_map<HostId, CacheEntry> entries;
  };
  static constexpr std::size_t kCacheShards = 64;

  bool host_active(const HostConfig& config) const noexcept;
  void rebind_expired();
  void bind(HostId id, Ipv4 ip);
  void unbind(HostId id);
  // Draws the next lease (address + duration) for a dynamic host.
  void roll_lease(Host& host);
  bool filtered(const UdpPacket& request) const noexcept;
  void require_mutation_phase(const char* what) const;

  bool is_lazy(HostId id) const noexcept {
    return id != kNoHost && id >= hosts_.size();
  }
  LazyBlock& block_of(HostId id) noexcept;
  const LazyBlock& block_of(HostId id) const noexcept;
  // Binding-state accessors spanning both host kinds.
  bool host_bound(HostId id) const noexcept;
  Ipv4 host_ip(HostId id) const noexcept;
  void set_bound(HostId id, Ipv4 ip) noexcept;
  void clear_bound(HostId id) noexcept;
  void rebind_lazy_host(LazyBlock& block, std::uint64_t i, double now);

  CacheShard& shard_for(HostId id) noexcept {
    return cache_shards_[id % kCacheShards];
  }
  // Finds or materializes the cache entry for a lazy host. Caller must
  // hold the shard lock.
  CacheEntry& touch_locked(CacheShard& shard, HostId id);
  // Evicts cold reconstructible entries while the shard is over budget.
  // Caller must hold the shard lock; `keep` is never evicted.
  void maybe_evict_locked(CacheShard& shard, HostId keep);

  // Shared delivery tail of send_udp for both host kinds: admission
  // control, dispatch into the port's service, reply 4-tuple defaults.
  void deliver_udp(
      const UdpPacket& request,
      std::vector<std::pair<std::uint16_t, std::unique_ptr<UdpService>>>& udp,
      FaultRateState& fault_rate, const FaultProfile* fault,
      std::size_t fault_index, std::int64_t now_minutes,
      std::vector<UdpReply>& replies);

  SimClock clock_;
  std::uint64_t seed_;  // salts the per-packet fate hashes
  util::Rng rng_;       // mutation-phase draws only (host seeds)
  double loss_rate_ = 0.0;

  std::vector<Host> hosts_;
  std::vector<LazyBlock> blocks_;
  std::uint64_t lazy_count_ = 0;
  BindingIndex bindings_;
  std::vector<HostId> dynamic_hosts_;

  std::vector<CacheShard> cache_shards_{kCacheShards};
  std::size_t cache_capacity_ = 65536;
  std::atomic<std::uint64_t> touch_clock_{0};
  std::atomic<std::uint64_t> materializations_{0};
  std::atomic<std::uint64_t> evictions_{0};

  AsDb asdb_;
  RdnsStore rdns_;
  std::vector<IngressFilter> filters_;
  std::vector<Injector> injectors_;
  FaultPlan faults_;

  // Registry the traffic counters live in; own_metrics_ backs it when the
  // caller did not supply one.
  std::unique_ptr<obs::Registry> own_metrics_;
  obs::Registry* metrics_ = nullptr;
  obs::PrefixTelemetry telemetry_;
  std::unique_ptr<obs::TraceRecorder> trace_;
  // True only inside rebind_expired(): bind() counts churn into the
  // prefix telemetry then, but not for initial registration binds.
  bool in_rebind_ = false;
  obs::Counter* udp_sent_ = nullptr;
  obs::Counter* udp_delivered_ = nullptr;
  obs::Counter* udp_dropped_filtered_ = nullptr;
  obs::Counter* udp_lost_ = nullptr;           // forward-path loss
  obs::Counter* udp_replies_lost_ = nullptr;   // return-path loss
  obs::Counter* udp_injected_ = nullptr;       // on-path fabricated replies
  obs::Counter* tcp_connects_ = nullptr;
  obs::Counter* tcp_syn_lost_ = nullptr;
  obs::Counter* traffic_sections_opened_ = nullptr;
  // Fault-plane tallies ("fault.*" in every snapshot).
  obs::Counter* fault_forward_lost_ = nullptr;
  obs::Counter* fault_replies_lost_ = nullptr;
  obs::Counter* fault_unreachable_ = nullptr;
  obs::Counter* fault_rate_dropped_ = nullptr;
  obs::Counter* fault_rate_refused_ = nullptr;
  obs::Counter* fault_truncated_ = nullptr;
  obs::Counter* fault_corrupted_ = nullptr;
  obs::Counter* fault_slowed_ = nullptr;
  obs::Counter* fault_tcp_lost_ = nullptr;
  std::atomic<int> traffic_sections_{0};
};

}  // namespace dnswild::net
