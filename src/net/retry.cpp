#include "net/retry.h"

#include <cmath>

#include "util/hash.h"

namespace dnswild::net {

std::uint64_t probe_identity_key(const UdpPacket& packet) noexcept {
  return util::hash_words(
      {(static_cast<std::uint64_t>(packet.src.value()) << 32) |
           packet.dst.value(),
       (static_cast<std::uint64_t>(packet.src_port) << 16) | packet.dst_port,
       util::digest_bytes(packet.payload)});
}

double RetryPolicy::backoff_seconds(std::uint64_t probe_key,
                                    int attempt) const noexcept {
  double base = backoff_initial_seconds;
  for (int k = 1; k < attempt; ++k) base *= backoff_factor;
  if (jitter <= 0.0) return base;
  // Jitter is hashed from (policy seed, probe identity, attempt): the same
  // probe always waits the same, no matter which worker retries it.
  const double unit = util::hash_unit(util::hash_words(
      {seed, probe_key, static_cast<std::uint64_t>(attempt)}));
  return base * (1.0 + jitter * (2.0 * unit - 1.0));
}

Retrier::Retrier(World& world, RetryPolicy policy)
    : world_(world),
      policy_(policy),
      attempts_(&world.metrics().counter("retry.attempts")),
      retransmissions_(&world.metrics().counter("retry.retransmissions")),
      exhausted_(&world.metrics().counter("retry.exhausted")),
      recovered_(&world.metrics().counter("retry.recovered")),
      timed_out_(&world.metrics().counter("retry.timed_out_replies")),
      wait_ms_(&world.metrics().histogram(
          "retry.wait_ms", {50, 100, 250, 500, 1000, 2500, 5000, 10000,
                            30000})) {}

RetryOutcome Retrier::send(UdpPacket packet) {
  RetryOutcome out;
  const std::uint64_t probe_key = probe_identity_key(packet);
  const std::uint32_t base_seq = packet.seq;

  for (int attempt = 0;; ++attempt) {
    attempts_->add();
    out.transmissions = attempt + 1;
    packet.seq = base_seq + static_cast<std::uint32_t>(attempt);
    std::vector<UdpReply> replies = world_.send_udp(packet);
    if (policy_.timeout_ms > 0) {
      const std::size_t before = replies.size();
      std::erase_if(replies, [&](const UdpReply& reply) {
        return reply.latency_ms > policy_.timeout_ms;
      });
      if (replies.size() != before) timed_out_->add(before - replies.size());
    }
    if (!replies.empty()) {
      if (attempt > 0) {
        recovered_->add();
        wait_ms_->observe(static_cast<std::uint64_t>(
            std::llround(out.waited_seconds * 1000.0)));
      }
      out.replies = std::move(replies);
      return out;
    }
    if (attempt >= policy_.attempts) break;
    // The client sat out the probe's timeout (when one is set) and then
    // the backoff before retransmitting; both are virtual time the caller
    // charges into its TokenBucket.
    out.waited_seconds +=
        policy_.backoff_seconds(probe_key, attempt + 1) +
        (policy_.timeout_ms > 0 ? policy_.timeout_ms / 1000.0 : 0.0);
    retransmissions_->add();
  }
  out.exhausted = policy_.attempts > 0;
  if (out.exhausted) exhausted_->add();
  return out;
}

TcpService* Retrier::connect(Ipv4 src, Ipv4 dst, std::uint16_t port) {
  const std::uint64_t probe_key = util::hash_words(
      {0x7c9ULL /* tcp */,
       (static_cast<std::uint64_t>(src.value()) << 32) | dst.value(),
       static_cast<std::uint64_t>(port)});
  for (int attempt = 0;; ++attempt) {
    attempts_->add();
    TcpService* service =
        world_.connect_tcp(src, dst, port, static_cast<std::uint32_t>(attempt));
    if (service != nullptr) {
      if (attempt > 0) {
        recovered_->add();
        wait_ms_->observe(static_cast<std::uint64_t>(std::llround(
            policy_.backoff_seconds(probe_key, attempt) * 1000.0)));
      }
      return service;
    }
    if (attempt >= policy_.attempts) break;
    retransmissions_->add();
  }
  if (policy_.attempts > 0) exhausted_->add();
  return nullptr;
}

}  // namespace dnswild::net
