// Country codes and their Regional Internet Registry assignment.
//
// Substitutes for the MaxMind GeoIP database the paper uses (§2.3): the
// simulation only needs a consistent country -> RIR mapping and display
// names for the countries that appear in the paper's tables and case
// studies, plus enough extra countries to populate a realistic long tail.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

namespace dnswild::net {

enum class Rir { kRipe, kApnic, kLacnic, kArin, kAfrinic };

std::string_view rir_name(Rir rir) noexcept;

struct CountryInfo {
  std::string_view code;  // ISO 3166-1 alpha-2
  std::string_view name;
  Rir rir;
};

// Full static table (sorted by code) of the countries known to the library.
const std::vector<CountryInfo>& all_countries();

// Lookup by ISO code; nullopt for unknown codes.
std::optional<CountryInfo> country_info(std::string_view code) noexcept;

// RIR for a country code; defaults to RIPE for unknown codes so lookups
// always classify somewhere (mirrors GeoIP best-effort behaviour).
Rir rir_of(std::string_view code) noexcept;

}  // namespace dnswild::net
