// Maximal-period 32-bit Galois LFSR.
//
// The paper's scanner (§2.2) uses an LFSR of order 2^32 - 1 to permute the
// target address sequence so that any individual network only receives a
// limited number of probes within a short time window. A Galois LFSR over a
// primitive polynomial visits every non-zero 32-bit state exactly once per
// period; we append state 0 at the end so the full IPv4 space is covered.
#pragma once

#include <cstdint>

#include "net/ip.h"

namespace dnswild::net {

class Lfsr32 {
 public:
  // Primitive polynomial x^32 + x^22 + x^2 + x + 1 (taps 32,22,2,1).
  static constexpr std::uint32_t kTaps = 0x80200003u;

  // seed selects the starting point in the cycle; 0 is mapped to 1 because 0
  // is a fixed point of the recurrence.
  explicit constexpr Lfsr32(std::uint32_t seed = 1) noexcept
      : state_(seed == 0 ? 1 : seed) {}

  constexpr std::uint32_t state() const noexcept { return state_; }

  constexpr std::uint32_t next() noexcept {
    const std::uint32_t out = state_;
    state_ = (state_ >> 1) ^ (-(state_ & 1u) & kTaps);
    return out;
  }

 private:
  std::uint32_t state_;
};

// Iterates the entire IPv4 space exactly once in LFSR order: the 2^32 - 1
// non-zero states from the seed onward, then 0.0.0.0 as the final element.
class Ipv4Permutation {
 public:
  explicit Ipv4Permutation(std::uint32_t seed = 1) noexcept
      : lfsr_(seed), start_(lfsr_.state()) {}

  // Returns false once the full space has been emitted.
  bool next(Ipv4& out) noexcept {
    if (done_) return false;
    if (emit_zero_) {
      out = Ipv4(0u);
      emit_zero_ = false;
      done_ = true;
      return true;
    }
    out = Ipv4(lfsr_.next());
    if (lfsr_.state() == start_) emit_zero_ = true;
    return true;
  }

 private:
  Lfsr32 lfsr_;
  std::uint32_t start_;
  bool emit_zero_ = false;
  bool done_ = false;
};

}  // namespace dnswild::net
