// Simulated time.
//
// All campaigns run against a SimClock measured in minutes since the start
// of the study (2014-01-31, the paper's first weekly scan). There is no
// wall-clock anywhere in the library, which keeps every experiment
// reproducible under a seed. Civil-date helpers convert simulated offsets to
// the calendar labels the paper's figures use on their x-axes.
#pragma once

#include <cstdint>
#include <string>

namespace dnswild::net {

struct CivilDate {
  int year = 0;
  int month = 0;  // 1..12
  int day = 0;    // 1..31

  std::string to_string() const;  // "2014/01/31"
};

// Days since 1970-01-01 for a civil date (proleptic Gregorian). Implements
// Howard Hinnant's days_from_civil algorithm.
std::int64_t days_from_civil(CivilDate date) noexcept;

// Inverse of days_from_civil.
CivilDate civil_from_days(std::int64_t days) noexcept;

class SimClock {
 public:
  // The calendar date of simulated minute zero (study start, §2.2).
  static constexpr CivilDate kEpoch{2014, 1, 31};

  std::int64_t minutes() const noexcept { return minutes_; }
  double days() const noexcept { return static_cast<double>(minutes_) / 1440.0; }
  std::int64_t whole_days() const noexcept { return minutes_ / 1440; }
  std::int64_t weeks() const noexcept { return whole_days() / 7; }

  void advance_minutes(std::int64_t delta) noexcept { minutes_ += delta; }
  void advance_days(std::int64_t delta) noexcept { minutes_ += delta * 1440; }
  void set_minutes(std::int64_t minutes) noexcept { minutes_ = minutes; }

  CivilDate date() const noexcept {
    return civil_from_days(days_from_civil(kEpoch) + whole_days());
  }

 private:
  std::int64_t minutes_ = 0;
};

}  // namespace dnswild::net
