// Reverse-DNS store.
//
// The paper uses rDNS records twice: (i) to detect dynamic broadband
// address pools via hostname tokens like "dynamic"/"dialup"/"broadband"
// (§2.5), and (ii) as a prefiltering rule — an answer IP is legitimate when
// its rDNS name resembles the queried domain AND the name forward-confirms
// back to the same IP (§3.4). This store holds ip -> name mappings; forward
// confirmation is answered by the authoritative registry in src/resolver.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "net/ip.h"

namespace dnswild::net {

class RdnsStore {
 public:
  void set(Ipv4 ip, std::string name);

  // PTR-style lookup; nullopt when no record exists.
  std::optional<std::string_view> lookup(Ipv4 ip) const noexcept;

  std::size_t size() const noexcept { return records_.size(); }

 private:
  std::unordered_map<Ipv4, std::string> records_;
};

// True when the hostname carries a token indicating dynamic consumer
// address assignment (the token list from §2.5: broadband, dialup, dynamic,
// plus common provider spellings: dyn, dsl, pool, dhcp, cable, ppp).
bool looks_dynamic(std::string_view rdns_name) noexcept;

// Generates a plausible consumer-pool rDNS name for an address, e.g.
// "dyn-203-0-113-7.broadband.isp-name.example". style selects between a few
// provider naming schemes so the corpus is not uniform.
std::string synth_dynamic_rdns(Ipv4 ip, std::string_view isp_label,
                               unsigned style);

// Static-server naming scheme, e.g. "srv-cafe0001.isp-name.example".
std::string synth_static_rdns(Ipv4 ip, std::string_view isp_label);

}  // namespace dnswild::net
