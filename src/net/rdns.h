// Reverse-DNS store.
//
// The paper uses rDNS records twice: (i) to detect dynamic broadband
// address pools via hostname tokens like "dynamic"/"dialup"/"broadband"
// (§2.5), and (ii) as a prefiltering rule — an answer IP is legitimate when
// its rDNS name resembles the queried domain AND the name forward-confirms
// back to the same IP (§3.4). This store holds ip -> name mappings; forward
// confirmation is answered by the authoritative registry in src/resolver.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/ip.h"

namespace dnswild::net {

class RdnsStore {
 public:
  // Rule-based synthesis for consumer address pools: instead of storing one
  // string per pool address (O(pool) memory — untenable at 10M-resolver
  // scale), a rule names the whole CIDR range procedurally. A lookup miss
  // that falls inside a rule's pool synthesizes its PTR name on the fly:
  // a seeded hash of the address picks, per `dynamic_share` /
  // `static_share`, a dynamic-pool name, a static-server name, or no record
  // — so the same address always resolves to the same name without any of
  // them being resident.
  struct PoolRule {
    Cidr pool;
    std::string isp_label;
    std::uint64_t seed = 0;
    double dynamic_share = 0.0;  // fraction with dynamic-style names
    double static_share = 0.0;   // additional fraction with static names
  };

  void set(Ipv4 ip, std::string name);
  void add_rule(PoolRule rule);

  // PTR-style lookup; explicit records win, then pool rules; nullopt when
  // neither names the address.
  std::optional<std::string> lookup(Ipv4 ip) const;

  std::size_t size() const noexcept { return records_.size(); }
  std::size_t rule_count() const noexcept { return rules_.size(); }

 private:
  std::unordered_map<Ipv4, std::string> records_;
  std::vector<PoolRule> rules_;
};

// True when the hostname carries a token indicating dynamic consumer
// address assignment (the token list from §2.5: broadband, dialup, dynamic,
// plus common provider spellings: dyn, dsl, pool, dhcp, cable, ppp).
bool looks_dynamic(std::string_view rdns_name) noexcept;

// Generates a plausible consumer-pool rDNS name for an address, e.g.
// "dyn-203-0-113-7.broadband.isp-name.example". style selects between a few
// provider naming schemes so the corpus is not uniform.
std::string synth_dynamic_rdns(Ipv4 ip, std::string_view isp_label,
                               unsigned style);

// Static-server naming scheme, e.g. "srv-cafe0001.isp-name.example".
std::string synth_static_rdns(Ipv4 ip, std::string_view isp_label);

}  // namespace dnswild::net
