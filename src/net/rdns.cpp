#include "net/rdns.h"

#include "util/strings.h"

namespace dnswild::net {

void RdnsStore::set(Ipv4 ip, std::string name) {
  records_[ip] = std::move(name);
}

std::optional<std::string_view> RdnsStore::lookup(Ipv4 ip) const noexcept {
  const auto it = records_.find(ip);
  if (it == records_.end()) return std::nullopt;
  return std::string_view(it->second);
}

bool looks_dynamic(std::string_view rdns_name) noexcept {
  static constexpr std::string_view kTokens[] = {
      "broadband", "dialup", "dynamic", "dyn-", ".dyn.", "dsl",
      "pool",      "dhcp",   "cable",   "ppp",  "adsl",
  };
  for (const auto token : kTokens) {
    if (dnswild::util::icontains(rdns_name, token)) return true;
  }
  return false;
}

namespace {

std::string dashed_ip(Ipv4 ip) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    if (i != 0) out += '-';
    out += std::to_string(ip.octet(i));
  }
  return out;
}

}  // namespace

std::string synth_dynamic_rdns(Ipv4 ip, std::string_view isp_label,
                               unsigned style) {
  const std::string label(isp_label);
  switch (style % 4) {
    case 0:
      return "dyn-" + dashed_ip(ip) + ".broadband." + label + ".example";
    case 1:
      return dashed_ip(ip) + ".dynamic.adsl." + label + ".example";
    case 2:
      return "host-" + dashed_ip(ip) + ".pool." + label + ".example";
    default:
      return "ppp-" + dashed_ip(ip) + ".dialup." + label + ".example";
  }
}

std::string synth_static_rdns(Ipv4 ip, std::string_view isp_label) {
  return "srv-" + dnswild::util::hex32(ip.value()) + "." +
         std::string(isp_label) + ".example";
}

}  // namespace dnswild::net
