#include "net/rdns.h"

#include "util/hash.h"
#include "util/strings.h"

namespace dnswild::net {

void RdnsStore::set(Ipv4 ip, std::string name) {
  records_[ip] = std::move(name);
}

void RdnsStore::add_rule(PoolRule rule) {
  rules_.push_back(std::move(rule));
}

std::optional<std::string> RdnsStore::lookup(Ipv4 ip) const {
  const auto it = records_.find(ip);
  if (it != records_.end()) return it->second;
  for (const PoolRule& rule : rules_) {
    if (!rule.pool.contains(ip)) continue;
    const std::uint64_t word = util::hash_words({rule.seed, ip.value()});
    const double unit = util::hash_unit(word);
    if (unit < rule.dynamic_share) {
      return synth_dynamic_rdns(ip, rule.isp_label,
                                static_cast<unsigned>(word >> 32) % 4);
    }
    if (unit < rule.dynamic_share + rule.static_share) {
      return synth_static_rdns(ip, rule.isp_label);
    }
    return std::nullopt;  // pools never overlap; first match decides
  }
  return std::nullopt;
}

bool looks_dynamic(std::string_view rdns_name) noexcept {
  static constexpr std::string_view kTokens[] = {
      "broadband", "dialup", "dynamic", "dyn-", ".dyn.", "dsl",
      "pool",      "dhcp",   "cable",   "ppp",  "adsl",
  };
  for (const auto token : kTokens) {
    if (dnswild::util::icontains(rdns_name, token)) return true;
  }
  return false;
}

namespace {

std::string dashed_ip(Ipv4 ip) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    if (i != 0) out += '-';
    out += std::to_string(ip.octet(i));
  }
  return out;
}

}  // namespace

std::string synth_dynamic_rdns(Ipv4 ip, std::string_view isp_label,
                               unsigned style) {
  const std::string label(isp_label);
  switch (style % 4) {
    case 0:
      return "dyn-" + dashed_ip(ip) + ".broadband." + label + ".example";
    case 1:
      return dashed_ip(ip) + ".dynamic.adsl." + label + ".example";
    case 2:
      return "host-" + dashed_ip(ip) + ".pool." + label + ".example";
    default:
      return "ppp-" + dashed_ip(ip) + ".dialup." + label + ".example";
  }
}

std::string synth_static_rdns(Ipv4 ip, std::string_view isp_label) {
  return "srv-" + dnswild::util::hex32(ip.value()) + "." +
         std::string(isp_label) + ".example";
}

}  // namespace dnswild::net
