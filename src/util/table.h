// Plain-text table rendering used by the bench binaries to print the same
// rows the paper's tables report. Columns are auto-sized; numeric columns can
// be right-aligned. Also hosts small numeric formatting helpers (percentages,
// thousands separators) shared by the reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dnswild::util {

enum class Align { kLeft, kRight };

class Table {
 public:
  explicit Table(std::vector<std::string> headers,
                 std::vector<Align> aligns = {});

  // Appends a row; missing cells render empty, extra cells are dropped.
  void add_row(std::vector<std::string> cells);

  // Renders with a header underline and two-space column gaps.
  std::string render() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

// "12,345,678"
std::string with_commas(std::uint64_t value);
// Signed variant: "-421,371" / "+161,808" (explicit sign, as in Table 1).
std::string with_commas_signed(std::int64_t value);
// "12.3" with one decimal, as the paper prints percentages.
std::string pct1(double fraction_times_100);
// fraction in [0,1] -> "12.3"
std::string frac_pct1(double fraction);

}  // namespace dnswild::util
