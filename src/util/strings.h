// Small ASCII string helpers shared across modules.
//
// DNS names, banner tokens, and HTML are all treated as byte strings with
// ASCII case rules (per RFC 4343 DNS comparisons are ASCII-case-insensitive),
// so these helpers deliberately avoid locale-dependent <cctype> behaviour.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dnswild::util {

constexpr char to_lower_ascii(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

constexpr char to_upper_ascii(char c) noexcept {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}

constexpr bool is_digit_ascii(char c) noexcept { return c >= '0' && c <= '9'; }

constexpr bool is_alpha_ascii(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

std::string lower(std::string_view text);
std::string upper(std::string_view text);

// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b) noexcept;

bool starts_with(std::string_view text, std::string_view prefix) noexcept;
bool ends_with(std::string_view text, std::string_view suffix) noexcept;

// Case-insensitive substring search; npos-free: returns true/false.
bool icontains(std::string_view haystack, std::string_view needle) noexcept;

// Split on a single separator character. Keeps empty fields.
std::vector<std::string> split(std::string_view text, char sep);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text) noexcept;

// Lower-case hexadecimal rendering of a 32-bit value, zero-padded to 8 chars.
std::string hex32(std::uint32_t value);

// Appends the same 8 hex chars to `out` without a temporary string, so hot
// loops can reuse one buffer's capacity across iterations.
void append_hex32(std::string& out, std::uint32_t value);

// Parse 8 hex characters into a 32-bit value; nullopt on malformed input.
std::optional<std::uint32_t> parse_hex32(std::string_view text) noexcept;

// Replace every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

}  // namespace dnswild::util
