#include "util/hash.h"

#include "util/rng.h"

namespace dnswild::util {

std::uint64_t hash_words(std::initializer_list<std::uint64_t> words) noexcept {
  // Sponge-style: absorb each finalized word into a running splitmix state.
  // hash_words({a, b}) != hash_words({b, a}) because the state at absorption
  // time differs.
  std::uint64_t state = 0x6a09e667f3bcc908ULL;  // sqrt(2), arbitrary nonzero
  for (const std::uint64_t word : words) {
    state = mix64(state ^ mix64(word));
  }
  return state;
}

std::uint64_t digest_bytes(const std::vector<std::uint8_t>& bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

double hash_unit(std::uint64_t word) noexcept {
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

}  // namespace dnswild::util
