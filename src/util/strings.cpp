#include "util/strings.h"

#include <algorithm>

namespace dnswild::util {

std::string lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), to_lower_ascii);
  return out;
}

std::string upper(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), to_upper_ascii);
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (to_lower_ascii(a[i]) != to_lower_ascii(b[i])) return false;
  }
  return true;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool icontains(std::string_view haystack, std::string_view needle) noexcept {
  if (needle.empty()) return true;
  if (haystack.size() < needle.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (to_lower_ascii(haystack[i + j]) != to_lower_ascii(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (true) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string_view::npos) {
      parts.emplace_back(text.substr(begin));
      return parts;
    }
    parts.emplace_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
           c == '\v';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::string hex32(std::uint32_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

void append_hex32(std::string& out, std::uint32_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  const std::size_t base = out.size();
  out.resize(base + 8, '0');
  for (std::size_t i = 8; i-- > 0;) {
    out[base + i] = kDigits[value & 0xf];
    value >>= 4;
  }
}

std::optional<std::uint32_t> parse_hex32(std::string_view text) noexcept {
  if (text.size() != 8) return std::nullopt;
  std::uint32_t value = 0;
  for (char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return value;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  out.reserve(text.size());
  std::size_t pos = 0;
  while (true) {
    const std::size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(text.substr(pos));
      return out;
    }
    out.append(text.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

}  // namespace dnswild::util
