// Stateless splitmix-style hashing for per-packet randomness.
//
// The concurrent traffic plane (net::World) must give every datagram a fate
// — lost / delivered, and any forged content riding along — that depends
// only on *what* the packet is, never on *when* it was sent relative to
// other threads' packets. These helpers derive that randomness by hashing
// the packet identity (world seed, addresses, ports, payload digest,
// per-sender sequence) into 64-bit words; drawing from the result is
// reproducible under any thread count and any call interleaving, unlike a
// shared util::Rng whose stream order depends on scheduling.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

namespace dnswild::util {

// Order-sensitive combination of words into one 64-bit hash; every word is
// passed through a splitmix64 finalizer so low-entropy inputs (small ints,
// IPv4 addresses) still flip about half the output bits.
std::uint64_t hash_words(std::initializer_list<std::uint64_t> words) noexcept;

// FNV-1a over raw bytes, for payload digests.
std::uint64_t digest_bytes(const std::vector<std::uint8_t>& bytes) noexcept;

// Maps a hash word to a uniform double in [0, 1).
double hash_unit(std::uint64_t word) noexcept;

}  // namespace dnswild::util
