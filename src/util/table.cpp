#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dnswild::util {

Table::Table(std::vector<std::string> headers, std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  aligns_.resize(headers_.size(), Align::kLeft);
}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto emit_row = [&](const std::vector<std::string>& row,
                            std::string& out) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c != 0) out += "  ";
        static const std::string kEmpty;
      const std::string& cell = c < row.size() ? row[c] : kEmpty;
      const std::size_t pad = widths[c] - cell.size();
      if (aligns_[c] == Align::kRight) out.append(pad, ' ');
      out += cell;
      if (aligns_[c] == Align::kLeft && c + 1 != headers_.size()) {
        out.append(pad, ' ');
      }
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) out += "  ";
    out.append(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += digits[i];
  }
  return out;
}

std::string with_commas_signed(std::int64_t value) {
  if (value < 0) {
    return "-" + with_commas(static_cast<std::uint64_t>(-value));
  }
  return "+" + with_commas(static_cast<std::uint64_t>(value));
}

std::string pct1(double fraction_times_100) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.1f", fraction_times_100);
  return buffer;
}

std::string frac_pct1(double fraction) { return pct1(fraction * 100.0); }

}  // namespace dnswild::util
