// Deterministic random number generation for the whole simulation.
//
// Every campaign in dnswild is seeded explicitly; there is no global RNG and
// no wall-clock entropy anywhere in the library. Rng wraps xoshiro256**
// seeded through splitmix64, following the reference implementations by
// Blackman & Vigna. fork() derives independent per-subsystem streams so that
// adding draws in one module does not perturb any other module's sequence.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

namespace dnswild::util {

// splitmix64 step; used for seeding and for cheap stateless mixing.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

// One-shot mix of a value (stateless convenience).
std::uint64_t mix64(std::uint64_t value) noexcept;

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0) noexcept;

  // UniformRandomBitGenerator interface so Rng works with <algorithm>.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept;

  // Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  // multiply-shift rejection method to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) noexcept;

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform double in [0, 1).
  double uniform() noexcept;

  // True with probability p (clamped to [0, 1]).
  bool chance(double p) noexcept;

  // Index drawn proportionally to the non-negative weights. Returns
  // weights.size() if all weights are zero or the vector is empty.
  std::size_t weighted(const std::vector<double>& weights) noexcept;

  // Derive an independent child stream. Tag keeps sibling forks distinct;
  // the same (parent state, tag) pair always yields the same child.
  Rng fork(std::uint64_t tag) noexcept;
  Rng fork(std::string_view tag) noexcept;

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[below(i)]);
    }
  }

  // Pick a uniformly random element. Requires a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) noexcept {
    return items[below(items.size())];
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

// Stable 64-bit hash of a string (FNV-1a), for tagging forks and content.
std::uint64_t fnv1a(std::string_view text) noexcept;

}  // namespace dnswild::util
