// CRC-32 (IEEE 802.3 polynomial, reflected) for on-disk record integrity.
//
// The campaign epoch store frames every section of an epoch file with a
// CRC so truncated or bit-flipped records are detected at load time and
// the campaign falls back one epoch instead of trusting corrupt bytes.
// FNV (util::digest_bytes) stays the in-memory content digest; CRC-32 is
// the wire/disk convention, matching what zlib/png/ethernet readers
// expect, and its errors-detected guarantees are well characterized.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dnswild::util {

// CRC-32 of `size` bytes starting at `data`. `seed` chains incremental
// computations: pass the previous call's return value to continue a
// running checksum (the default starts a fresh one).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0) noexcept;

}  // namespace dnswild::util
