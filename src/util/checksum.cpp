#include "util/checksum.h"

#include <array>

namespace dnswild::util {
namespace {

// Byte-at-a-time table for the reflected IEEE polynomial 0xEDB88320.
constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kCrcTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace dnswild::util
