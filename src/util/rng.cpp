#include "util/rng.h"

#include <bit>

namespace dnswild::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) noexcept {
  std::uint64_t state = value;
  return splitmix64(state);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::weighted(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return weights.size();
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point slack: return the last positive-weight entry.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size();
}

Rng Rng::fork(std::uint64_t tag) noexcept {
  return Rng(mix64(next() ^ mix64(tag)));
}

Rng Rng::fork(std::string_view tag) noexcept { return fork(fnv1a(tag)); }

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace dnswild::util
