// Censorship drill-down and the §4.3 case studies.
//
// Runs the finer analyses on top of the classification: censorship landing
// inventory and per-country compliance (§4.2), ad redirection / injection /
// blanking, transparent proxies (TLS-passthrough vs HTTP-only), phishing
// kits (PayPal and banking mimics), mail interception, and malware-update
// redirects (§4.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/classify.h"
#include "core/domains.h"
#include "net/world.h"

namespace dnswild::core {

// Everything the detectors need, bundled so call sites stay readable.
struct StudyData {
  const std::vector<net::Ipv4>* resolvers = nullptr;
  const std::vector<scan::TupleRecord>* records = nullptr;
  const std::vector<TupleVerdict>* verdicts = nullptr;
  const std::vector<AcquiredPage>* pages = nullptr;
  const ClassificationResult* classification = nullptr;
  const std::vector<GroundTruthPage>* ground_truth = nullptr;
  const std::vector<StudyDomain>* domains = nullptr;
  const net::AsDb* asdb = nullptr;
};

struct CountryCompliance {
  std::string country;
  std::uint64_t censoring = 0;   // resolvers returning censor answers
  std::uint64_t responding = 0;  // resolvers answering for those domains
  double fraction() const noexcept {
    return responding == 0 ? 0.0
                           : static_cast<double>(censoring) /
                                 static_cast<double>(responding);
  }
};

struct CensorshipReport {
  std::uint64_t censorship_tuples = 0;
  std::uint64_t dual_response_tuples = 0;  // GFW-style injection races
  std::vector<net::Ipv4> landing_ips;      // unique landing-page addresses
  std::vector<std::string> landing_countries;  // unique, sorted
  // Resolvers (unique) that returned censor answers, per country, sorted
  // descending.
  std::vector<std::pair<std::string, std::uint64_t>> censoring_by_country;
  std::vector<CountryCompliance> compliance;  // per country, all domains
};

CensorshipReport censorship_report(const StudyData& data);

// Country histogram (Fig. 4): resolvers answering the given domains at all
// vs. resolvers whose answers were unexpected.
struct GeoHistogram {
  std::vector<std::pair<std::string, std::uint64_t>> all;
  std::vector<std::pair<std::string, std::uint64_t>> unexpected;
};
GeoHistogram geo_histogram(const StudyData& data,
                           const std::vector<std::string>& domain_names);

struct CaseStudyReport {
  // Ad manipulation (§4.3).
  std::uint64_t ad_tamper_resolvers = 0;
  std::size_t ad_tamper_ips = 0;
  std::uint64_t ad_blanking_resolvers = 0;
  std::size_t ad_blanking_ips = 0;
  std::uint64_t search_with_ads_resolvers = 0;

  // Transparent proxies.
  std::size_t proxy_ips_tls = 0;
  std::size_t proxy_ips_http_only = 0;
  std::uint64_t proxy_resolvers_tls = 0;
  std::uint64_t proxy_resolvers_http_only = 0;

  // Phishing.
  std::size_t phishing_ips = 0;
  std::uint64_t phishing_resolvers = 0;
  std::size_t paypal_phish_ips = 0;
  std::uint64_t paypal_phish_resolvers = 0;

  // Mail interception.
  std::uint64_t mx_suspicious_resolvers = 0;
  std::uint64_t mail_listening_resolvers = 0;  // redirected to live mail IPs
  std::size_t mail_listening_ips = 0;
  std::uint64_t mail_matching_banner_resolvers = 0;

  // Malware-update redirects.
  std::size_t malware_ips = 0;
  std::uint64_t malware_resolvers = 0;
};

// `world` is needed for the proxies' TLS handshake checks.
CaseStudyReport case_study_report(const StudyData& data, net::World& world,
                                  net::Ipv4 vantage_ip);

}  // namespace dnswild::core
