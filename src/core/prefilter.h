// DNS-based prefiltering (§3.4).
//
// Reduces billions of (domain ◦ ip ◦ resolver) tuples to the suspicious
// remainder. A returned address is legitimate when any rule accepts it:
//   (i)  it lies in one of the ASes the trusted resolvers' answers for the
//        domain lie in,
//   (ii) its rDNS name resembles the queried domain AND forward-confirms
//        (an A lookup of the rDNS name yields the address — only the
//        domain owner can arrange that),
//   (iii) the HTTPS certificate it serves for the domain is valid (paired
//        SNI / non-SNI handshakes; for the largest CDNs a valid non-SNI
//        certificate with a known common name also accepts).
// The rules deliberately err toward NOT filtering: a bogus answer must
// never be hidden, while an unfiltered legitimate answer is caught later by
// the content analysis.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/domains.h"
#include "http/fetch.h"
#include "net/world.h"
#include "resolver/authns.h"
#include "scan/domain_scan.h"

namespace dnswild::core {

enum class TupleVerdict {
  kLegitimate,   // all answer addresses accepted
  kNoAnswer,     // empty answer section or error rcode (counted separately)
  kUnknown,      // at least one unexplained address: candidate for analysis
  kUnresponsive, // no response arrived at all
};

struct PrefilterConfig {
  // Rule toggles, exposed for the §3.4 ablation bench.
  bool use_as_rule = true;
  bool use_rdns_rule = true;
  bool use_cert_rule = true;
  // Regions whose trusted-resolver views seed the AS whitelist.
  std::vector<std::string> trusted_regions = {"DE", "US"};
  // Non-SNI common names accepted for the largest CDN providers.
  std::vector<std::string> cdn_common_names = {"*.edge.globalcdn.example"};
};

struct PrefilterStats {
  std::uint64_t tuples = 0;
  std::uint64_t legitimate = 0;
  std::uint64_t no_answer = 0;
  std::uint64_t unknown = 0;
  std::uint64_t unresponsive = 0;
  // Rule attribution for accepted addresses (ablation).
  std::uint64_t accepted_by_as = 0;
  std::uint64_t accepted_by_rdns = 0;
  std::uint64_t accepted_by_cert = 0;
};

class Prefilter {
 public:
  Prefilter(net::World& world, const resolver::AuthRegistry& registry,
            const DomainSet& domains, net::Ipv4 vantage_ip,
            PrefilterConfig config = {});

  // Verdict for one scan record. `domain` must be the entry the record's
  // domain_index refers to.
  TupleVerdict judge(const scan::TupleRecord& record,
                     const StudyDomain& domain);

  // Bulk pass: verdict per record, stats accumulated.
  std::vector<TupleVerdict> run(const std::vector<scan::TupleRecord>& records,
                                const std::vector<StudyDomain>& domains);

  const PrefilterStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  // AS numbers seen in trusted resolutions of `domain` (cached).
  const std::unordered_set<std::uint32_t>& trusted_as_set(
      const std::string& domain);
  bool accept_ip(net::Ipv4 ip, const StudyDomain& domain);

  net::World& world_;
  const resolver::AuthRegistry& registry_;
  const DomainSet& domains_;
  http::Fetcher fetcher_;
  PrefilterConfig config_;
  PrefilterStats stats_;

  std::unordered_map<std::string, std::unordered_set<std::uint32_t>>
      as_cache_;
  // (domain, ip) -> accepted, memoized across tuples (the same address is
  // returned by many resolvers).
  std::unordered_map<std::string, bool> ip_verdict_cache_;
};

}  // namespace dnswild::core
