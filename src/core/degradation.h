// Graceful-degradation records (DESIGN.md §9).
//
// Extracted from pipeline.h so the lightweight consumers — the campaign
// engine's epoch store persists degradation entries and feeds them into
// resume decisions — can share the exact types without pulling in the
// whole Fig. 3 pipeline surface.
#pragma once

#include <cstdint>
#include <string>

namespace dnswild::core {

// Per-stage error budgets: the maximum failure fraction a stage tolerates
// before the run is marked degraded (DESIGN.md §9). 1.0 disables a budget
// — the default, so healthy worlds never trip. A breached budget does NOT
// abort the run; it records a StudyReport::degradations entry so partial
// populations are visible instead of silently shrinking.
struct StageErrorBudget {
  double domain_scan_unresponsive = 1.0;  // tuples without any response
  double acquisition_no_content = 1.0;    // unknown tuples without a body
  double ground_truth_missing = 1.0;      // GT domains without content
};

// One graceful-degradation event: which stage, why, and how many items
// the failure affected.
struct StageDegradation {
  std::string stage;
  std::string cause;
  std::uint64_t affected = 0;
};

}  // namespace dnswild::core
