#include "core/modifications.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "cluster/diff.h"
#include "cluster/distance.h"
#include "http/html.h"

namespace dnswild::core {

namespace {

std::vector<std::string> tag_multiset_names(
    const std::unordered_map<std::uint16_t, int>& tags) {
  std::vector<std::string> names;
  for (const auto& [tag, count] : tags) {
    std::string name(http::tag_name(tag));
    if (count > 1) name += " x" + std::to_string(count);
    names.push_back(std::move(name));
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

ModificationReport find_modifications(const StudyData& data,
                                      const ModificationConfig& config) {
  ModificationReport report;

  // Ground truth by domain.
  std::unordered_map<std::string, const GroundTruthPage*> gt_by_domain;
  for (const auto& gt : *data.ground_truth) {
    if (!gt.body.empty()) gt_by_domain[gt.domain] = &gt;
  }

  // Deduplicate by (domain, body): the same modified representation is
  // served to many tuples; diff it once and multiply the counts.
  struct UniquePage {
    cluster::TagDelta delta;
    std::uint64_t tuples = 0;
    std::unordered_set<std::uint32_t> resolvers;
    std::string domain;
    bool qualifies = false;
  };
  std::unordered_map<std::string, UniquePage> unique_pages;

  for (const auto& page : *data.pages) {
    if (page.body.empty()) continue;
    const auto& record = data.records->at(page.record_index);
    const StudyDomain& domain = data.domains->at(record.domain_index);
    const auto gt_it = gt_by_domain.find(domain.name);
    if (gt_it == gt_by_domain.end()) continue;

    const std::string key =
        domain.name + "#" + std::to_string(page.body_hash);
    auto [it, inserted] = unique_pages.try_emplace(key);
    UniquePage& unique = it->second;
    if (inserted) {
      const auto features = http::extract_features(page.body);
      const GroundTruthPage& gt = *gt_it->second;
      ++report.compared_pages;
      if (cluster::page_distance(features, gt.features) <=
          config.gt_distance_threshold) {
        cluster::TagDelta delta = cluster::tag_diff(
            gt.features.tag_sequence, features.tag_sequence);
        if (!delta.empty() &&
            delta.total_changes() <= config.max_changes) {
          unique.qualifies = true;
          unique.delta = std::move(delta);
          unique.domain = domain.name;
        }
      }
    } else if (unique.qualifies) {
      // compared_pages counts unique representations only.
    }
    if (unique.qualifies) {
      ++unique.tuples;
      unique.resolvers.insert(record.resolver_id);
    }
  }

  // Cluster the qualifying deltas.
  std::vector<const UniquePage*> qualifying;
  for (const auto& [key, unique] : unique_pages) {
    if (unique.qualifies) qualifying.push_back(&unique);
  }
  report.modified_pages = qualifying.size();
  if (qualifying.empty()) return report;

  std::vector<cluster::TagDelta> deltas;
  deltas.reserve(qualifying.size());
  for (const UniquePage* unique : qualifying) {
    deltas.push_back(unique->delta);
  }
  const auto labels = cluster::cluster_deltas(deltas, config.delta_cut);

  const int cluster_count =
      labels.empty() ? 0
                     : *std::max_element(labels.begin(), labels.end()) + 1;
  std::vector<ModificationCluster> clusters(
      static_cast<std::size_t>(cluster_count));
  std::vector<std::unordered_set<std::uint32_t>> cluster_resolvers(
      static_cast<std::size_t>(cluster_count));
  for (std::size_t i = 0; i < qualifying.size(); ++i) {
    const auto c = static_cast<std::size_t>(labels[i]);
    ModificationCluster& out = clusters[c];
    if (out.tuples == 0) {
      out.added = tag_multiset_names(qualifying[i]->delta.added);
      out.removed = tag_multiset_names(qualifying[i]->delta.removed);
      out.example_domain = qualifying[i]->domain;
    }
    out.tuples += qualifying[i]->tuples;
    cluster_resolvers[c].insert(qualifying[i]->resolvers.begin(),
                                qualifying[i]->resolvers.end());
  }
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    clusters[c].resolvers = cluster_resolvers[c].size();
  }
  std::sort(clusters.begin(), clusters.end(),
            [](const ModificationCluster& a, const ModificationCluster& b) {
              return a.tuples > b.tuples;
            });
  report.clusters = std::move(clusters);
  return report;
}

}  // namespace dnswild::core
