// Data acquisition for unexpected DNS responses (§3.5).
//
// For every (domain ◦ ip ◦ resolver) tuple the prefilter could not accept,
// fetch the HTTP content a real client would get: connect to the returned
// address with the original domain in the Host header, follow redirects and
// frames at most twice (resolving any new names at the suspicious resolver
// itself), and — for the MX set — collect IMAP/POP3/SMTP banners. Also
// acquires the ground-truth representations from the legitimate addresses,
// which the fine-grained diff clustering compares against.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/domains.h"
#include "core/prefilter.h"
#include "http/fetch.h"
#include "http/html.h"
#include "net/world.h"
#include "resolver/authns.h"
#include "scan/domain_scan.h"
#include "scan/retry.h"

namespace dnswild::core {

struct AcquiredPage {
  std::size_t record_index = 0;  // into the tuple-record vector
  net::Ipv4 ip{};                // address the content came from
  bool connected = false;
  int status = 0;
  std::string body;
  std::uint64_t body_hash = 0;
  // Context the §4.2 "no HTTP data" breakdown uses.
  bool lan_ip = false;
  bool same_as_as_resolver = false;
  // Mail banners for MX-set tuples (port -> banner).
  std::vector<std::pair<std::uint16_t, std::string>> mail_banners;
};

struct GroundTruthPage {
  std::string domain;
  net::Ipv4 ip{};
  std::string body;
  http::PageFeatures features;
  std::vector<std::pair<std::uint16_t, std::string>> mail_banners;
};

class Acquisition {
 public:
  // `retry` governs both the DNS re-resolutions at suspicious resolvers
  // and (through the Fetcher) TCP connects; an unset policy seed defaults
  // from the client address.
  Acquisition(net::World& world, const resolver::AuthRegistry& registry,
              net::Ipv4 client_ip, scan::RetryPolicy retry = {});

  // Fetches content for every record whose verdict is kUnknown. `resolvers`
  // maps resolver_id -> address (the scan's input list).
  std::vector<AcquiredPage> fetch_unknown(
      const std::vector<scan::TupleRecord>& records,
      const std::vector<TupleVerdict>& verdicts,
      const std::vector<StudyDomain>& domains,
      const std::vector<net::Ipv4>& resolvers);

  // Ground-truth content per domain, from our own trusted resolutions.
  std::vector<GroundTruthPage> fetch_ground_truth(
      const std::vector<StudyDomain>& domains,
      std::string_view region = "DE");

  // Resolves `host` at a (suspicious) resolver, as a client would.
  std::optional<net::Ipv4> resolve_at(net::Ipv4 resolver,
                                      const std::string& host);

 private:
  AcquiredPage fetch_one(const scan::TupleRecord& record,
                         std::size_t record_index, const StudyDomain& domain,
                         net::Ipv4 resolver);

  net::World& world_;
  const resolver::AuthRegistry& registry_;
  net::Ipv4 client_ip_;
  scan::Retrier retrier_;  // DNS resolutions at suspicious resolvers
  http::Fetcher fetcher_;
  std::uint16_t next_txid_ = 1;
};

}  // namespace dnswild::core
