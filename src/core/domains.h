// The study's domain set (§3.2): 155 domain names in 13 categories, plus
// the ground-truth domain whose AuthNSes the authors operate. Category
// membership drives scanning (one campaign per set), worldgen (which sites
// exist, which get censored or phished), and the Table 5 columns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "http/factory.h"

namespace dnswild::core {

using http::SiteCategory;

struct StudyDomain {
  std::string name;           // FQDN, lower-case
  SiteCategory category = SiteCategory::kMisc;
  bool exists = true;         // NX entries do not resolve legitimately
  bool is_mx_host = false;    // mail host: banner acquisition instead of HTTP
};

class DomainSet {
 public:
  // Builds the full 155-domain study set + ground-truth domain.
  static DomainSet study_set();

  const std::vector<StudyDomain>& all() const noexcept { return domains_; }
  std::vector<const StudyDomain*> in_category(SiteCategory category) const;
  std::vector<std::string> names_in_category(SiteCategory category) const;

  const StudyDomain* find(std::string_view name) const noexcept;
  const std::string& ground_truth() const noexcept { return ground_truth_; }

  // The categories in Table 5 column order.
  static const std::vector<SiteCategory>& table5_categories();

  std::size_t size() const noexcept { return domains_.size(); }

 private:
  std::vector<StudyDomain> domains_;
  std::string ground_truth_;
};

// The 15 TLDs probed by the cache-snooping campaign (§2.6).
const std::vector<std::string>& snoop_tlds();

}  // namespace dnswild::core
