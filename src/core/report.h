// Rendering helpers: turn StudyReport sections into the text tables the
// paper prints, used by bench binaries and the examples.
#pragma once

#include <string>

#include "core/pipeline.h"

namespace dnswild::core {

// Table 5 layout: one row per label, one column per category, each cell
// "avg (max)" in percent.
std::string render_table5(const StudyReport& report);

// §4.1 prefiltering yield table.
std::string render_prefilter(const StudyReport& report);

// §3.6 clustering summary: unique pages, clusters, labeled fraction, the
// distance-matrix footprint, and the NaN-clamp count (which should be 0).
std::string render_classification(const StudyReport& report);

// Per-stage timing/attrition table from the run report's stage spans:
// items in, items out, and wall time for every "stage.*" span. Wall times
// are the only nondeterministic column.
std::string render_stage_summary(const StudyReport& report);

// Hot-prefix table from the per-/20 telemetry plane (DESIGN.md §13):
// the `limit` prefixes with the most trouble (fault hits + rate limiting
// + timeouts), with their probe counts and response rates. Empty string
// when no prefix saw any trouble.
std::string render_hot_prefixes(const StudyReport& report,
                                std::size_t limit = 12);

// Fig. 4-style country distribution for the social-network domains.
std::string render_social_geo(const StudyReport& report);

// §4.2 censorship summary + compliance.
std::string render_censorship(const StudyReport& report);

// §4.3 case studies.
std::string render_case_studies(const StudyReport& report);

// Fine-grained modification clusters (§3.6 second stage).
std::string render_modifications(const StudyReport& report);

}  // namespace dnswild::core
