#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "obs/span.h"
#include "scan/domain_scan.h"
#include "scan/retry.h"
#include "util/hash.h"

namespace dnswild::core {

StudyData StudyReport::view() const {
  StudyData data;
  data.resolvers = &resolvers;
  data.records = &records;
  data.verdicts = &verdicts;
  data.pages = &pages;
  data.classification = &classification;
  data.ground_truth = &ground_truth;
  data.domains = &domains;
  data.asdb = asdb;
  return data;
}

Pipeline::Pipeline(net::World& world, const resolver::AuthRegistry& registry,
                   PipelineConfig config)
    : world_(world), registry_(registry), config_(std::move(config)) {}

StudyReport Pipeline::run(const std::vector<net::Ipv4>& resolvers,
                          const DomainSet& domains) {
  StudyReport report;
  report.resolvers = resolvers;
  report.domains = domains.all();

  obs::Registry& metrics = world_.metrics();
  obs::Span run_span(metrics, "pipeline.run");
  run_span.items_in(resolvers.size());

  // Graceful degradation (DESIGN.md §9): a stage over its error budget is
  // recorded here — the run still completes on partial data.
  const auto degrade = [&](std::string stage, std::string cause,
                           std::uint64_t affected) {
    metrics.counter("pipeline.degradations").add();
    world_.trace().instant("degraded:" + stage);
    report.degradations.push_back(
        StageDegradation{std::move(stage), std::move(cause), affected});
  };
  const auto pct = [](double fraction) {
    return std::to_string(std::llround(100.0 * fraction)) + "%";
  };

  // ❶ The resolver population handed in from the Internet-wide scan. The
  // probing itself ran before this call (Ipv4Scanner records "scan.ipv4.*"
  // into the same registry); this span marks the stage boundary so the run
  // report covers the whole Fig. 3 chain.
  {
    obs::Span span(metrics, "stage.scan");
    span.items_in(resolvers.size()).items_out(resolvers.size());
  }

  // ❷ Domain scan: all study domains (ground truth appended last).
  std::vector<std::string> names;
  names.reserve(report.domains.size() + 1);
  for (const StudyDomain& domain : report.domains) {
    names.push_back(domain.name);
  }
  report.domains.push_back(StudyDomain{domains.ground_truth(),
                                       SiteCategory::kGroundTruth, true,
                                       false});
  names.push_back(domains.ground_truth());

  {
    obs::Span span(metrics, "stage.domain_scan");
    span.items_in(resolvers.size());
    scan::DomainScanConfig scan_config;
    scan_config.scanner_ip = config_.scanner_ip;
    scan_config.seed = config_.seed ^ 0xd05ca9ULL;
    scan_config.spread_over_hours = config_.scan_spread_hours;
    scan_config.threads = config_.scan_threads;
    scan_config.max_in_flight = config_.scan_max_in_flight;
    scan_config.retry = config_.domain_scan_retry;
    scan::DomainScanner scanner(world_, scan_config);
    report.records = scanner.scan(resolvers, names);
    span.items_out(report.records.size());
  }
  if (!report.records.empty() &&
      config_.error_budget.domain_scan_unresponsive < 1.0) {
    std::uint64_t unresponsive = 0;
    for (const auto& record : report.records) {
      if (!record.responded) ++unresponsive;
    }
    const double fraction = static_cast<double>(unresponsive) /
                            static_cast<double>(report.records.size());
    if (fraction > config_.error_budget.domain_scan_unresponsive) {
      degrade("stage.domain_scan",
              "unresponsive tuples at " + pct(fraction) + " exceed budget " +
                  pct(config_.error_budget.domain_scan_unresponsive),
              unresponsive);
    }
  }

  // ❸ Prefiltering.
  {
    obs::Span span(metrics, "stage.prefilter");
    span.items_in(report.records.size());
    Prefilter prefilter(world_, registry_, domains, config_.vantage_ip,
                        config_.prefilter);
    report.verdicts = prefilter.run(report.records, report.domains);
    report.prefilter_stats = prefilter.stats();
    span.items_out(report.prefilter_stats.unknown);
  }

  // Per-category yields (§4.1).
  {
    std::map<SiteCategory, CategoryPrefilterRow> rows;
    for (std::size_t i = 0; i < report.records.size(); ++i) {
      const auto& record = report.records[i];
      const StudyDomain& domain = report.domains.at(record.domain_index);
      auto& row = rows[domain.category];
      row.category = domain.category;
      if (report.verdicts[i] == TupleVerdict::kUnresponsive) continue;
      ++row.tuples;
      switch (report.verdicts[i]) {
        case TupleVerdict::kLegitimate: row.legitimate_pct += 1; break;
        case TupleVerdict::kNoAnswer: row.no_answer_pct += 1; break;
        case TupleVerdict::kUnknown: row.unknown_pct += 1; break;
        case TupleVerdict::kUnresponsive: break;
      }
    }
    for (auto& [category, row] : rows) {
      if (row.tuples == 0) continue;
      const double total = static_cast<double>(row.tuples);
      row.legitimate_pct = 100.0 * row.legitimate_pct / total;
      row.no_answer_pct = 100.0 * row.no_answer_pct / total;
      row.unknown_pct = 100.0 * row.unknown_pct / total;
      report.prefilter_by_category.push_back(row);
    }
  }

  // ❹ Acquisition: ground truth first, then the unknown tuples.
  {
    obs::Span span(metrics, "stage.acquisition");
    span.items_in(report.prefilter_stats.unknown);
    Acquisition acquisition(world_, registry_, config_.vantage_ip,
                            config_.acquisition_retry);
    report.ground_truth = acquisition.fetch_ground_truth(report.domains);
    report.pages = acquisition.fetch_unknown(report.records, report.verdicts,
                                             report.domains, resolvers);
    span.items_out(report.pages.size());
  }
  {
    std::uint64_t with_payload = 0;
    for (const auto& page : report.pages) {
      if (!page.body.empty()) ++with_payload;
    }
    report.http_payload_fraction =
        report.pages.empty()
            ? 0.0
            : static_cast<double>(with_payload) /
                  static_cast<double>(report.pages.size());
    if (!report.pages.empty() &&
        config_.error_budget.acquisition_no_content < 1.0) {
      const std::uint64_t without_payload = report.pages.size() - with_payload;
      const double fraction = 1.0 - report.http_payload_fraction;
      if (fraction > config_.error_budget.acquisition_no_content) {
        degrade("stage.acquisition",
                "unknown tuples without content at " + pct(fraction) +
                    " exceed budget " +
                    pct(config_.error_budget.acquisition_no_content),
                without_payload);
      }
    }
    std::uint64_t expected_gt = 0;
    for (const StudyDomain& domain : report.domains) {
      if (domain.exists) ++expected_gt;
    }
    if (expected_gt > 0 && report.ground_truth.size() < expected_gt &&
        config_.error_budget.ground_truth_missing < 1.0) {
      const std::uint64_t missing = expected_gt - report.ground_truth.size();
      const double fraction =
          static_cast<double>(missing) / static_cast<double>(expected_gt);
      if (fraction > config_.error_budget.ground_truth_missing) {
        degrade("stage.acquisition",
                "ground-truth domains without content at " + pct(fraction) +
                    " exceed budget " +
                    pct(config_.error_budget.ground_truth_missing),
                missing);
      }
    }
  }

  // §4.2 verification experiment for content-less forged answers.
  std::vector<char> injected;
  {
    obs::Span span(metrics, "stage.verification");
    span.items_in(report.records.size());
    injected = detect_onpath_injection(report);
    std::uint64_t flagged = 0;
    for (const char flag : injected) flagged += flag != 0 ? 1 : 0;
    span.items_out(flagged);
  }

  // ❺/❻ Clustering and labeling: classify_responses opens the
  // "stage.clustering" and "stage.labeling" spans itself. The LSH mode's
  // signature seed flows from the campaign seed (unless the caller pinned
  // one), so re-runs of one campaign keep their bucket geometry and an
  // incremental assign() against last epoch's ClusterModel stays valid.
  ClassifierConfig classifier = config_.classifier;
  classifier.registry = &metrics;
  if (classifier.lsh.signature.seed == cluster::kDefaultSignatureSeed) {
    classifier.lsh.signature.seed =
        util::hash_words({config_.seed, 0xC1A5ULL});
  }
  report.classification = classify_responses(report.records, report.pages,
                                             classifier, &injected);

  compute_sec41(report);
  compute_table5(report);

  report.asdb = &world_.asdb();
  const StudyData data = report.view();
  report.censorship = censorship_report(data);
  report.cases = case_study_report(data, world_, config_.vantage_ip);
  report.modifications = find_modifications(data);
  report.social_geo = geo_histogram(
      data, {"facebook.com", "twitter.com", "youtube.com"});

  run_span.items_out(report.classification.tuples.size());
  run_span.close();
  report.metrics = metrics.snapshot();
  report.prefixes = world_.prefix_telemetry().snapshot();
  return report;
}

std::vector<char> Pipeline::detect_onpath_injection(
    const StudyReport& report) {
  std::vector<char> flags(report.records.size(), 0);
  std::unordered_set<net::Ipv4> known_resolvers(report.resolvers.begin(),
                                                report.resolvers.end());

  // Which records need verification: unknown verdict, no dual response, no
  // routable content expected (the acquisition stage found nothing).
  std::vector<bool> has_content(report.records.size(), false);
  for (const auto& page : report.pages) {
    if (!page.body.empty()) has_content[page.record_index] = true;
  }

  util::Rng rng(config_.seed ^ 0x0f20a7ULL);
  // One experiment per (resolver /16, domain): the retry policy sets how
  // many non-resolver addresses get probed (attempts + 1); two or more
  // answers prove injection. Each probe targets a fresh address, so the
  // retransmission budget is spent on the outer loop — every single probe
  // goes out once, with the policy's timeout applied.
  scan::RetryPolicy probe_policy =
      config_.verification_retry.seeded(config_.seed ^ 0x0f20a7ULL);
  const int probes_per_experiment = probe_policy.attempts + 1;
  probe_policy.attempts = 0;
  scan::Retrier retrier(world_, probe_policy);
  std::unordered_map<std::uint64_t, bool> verified;

  for (std::size_t i = 0; i < report.records.size(); ++i) {
    if (report.verdicts[i] != TupleVerdict::kUnknown) continue;
    const auto& record = report.records[i];
    if (record.dual_response) {
      flags[i] = 1;  // injection already proven by the race
      continue;
    }
    if (has_content[i] || record.ips.empty()) continue;

    const net::Ipv4 resolver = report.resolvers.at(record.resolver_id);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(resolver.value() >> 8) << 16) |
        record.domain_index;
    auto cached = verified.find(key);
    if (cached == verified.end()) {
      const std::string& domain =
          report.domains.at(record.domain_index).name;
      const auto name = dns::Name::parse(domain);
      int answers = 0;
      for (int attempt = 0; attempt < probes_per_experiment && name;
           ++attempt) {
        // Random host part in the resolver's /16.
        // Stay inside the resolver's /24 so the probe crosses the same
        // monitored link (pools are always at least that large).
        net::Ipv4 probe_target(
            (resolver.value() & 0xffffff00u) |
            static_cast<std::uint32_t>(rng.below(0x100)));
        if (known_resolvers.count(probe_target) != 0) continue;
        dns::Message query = dns::Message::make_query(
            static_cast<std::uint16_t>(rng.next()), *name, dns::RType::kA);
        net::UdpPacket packet;
        packet.src = config_.vantage_ip;
        packet.src_port = 51000;
        packet.dst = probe_target;
        packet.dst_port = 53;
        packet.payload = query.encode();
        for (const auto& reply : retrier.send(std::move(packet)).replies) {
          const auto response = dns::Message::decode(reply.packet.payload);
          if (response && response->header.qr &&
              response->header.id == query.header.id &&
              !response->answer_ips().empty()) {
            ++answers;
            break;
          }
        }
      }
      cached = verified.emplace(key, answers >= 2).first;
    }
    flags[i] = cached->second ? 1 : 0;
  }
  return flags;
}

void Pipeline::compute_sec41(StudyReport& report) const {
  struct PerResolver {
    std::uint32_t unknown_tuples = 0;
    std::uint32_t answered = 0;
    std::uint32_t self_ip = 0;
    std::uint32_t ns_only = 0;
    std::map<std::vector<net::Ipv4>, std::uint32_t> answer_sets;
  };
  std::unordered_map<std::uint32_t, PerResolver> per_resolver;

  for (std::size_t i = 0; i < report.records.size(); ++i) {
    const auto& record = report.records[i];
    if (!record.responded) continue;
    PerResolver& state = per_resolver[record.resolver_id];
    ++state.answered;
    if (report.verdicts[i] == TupleVerdict::kUnknown) ++state.unknown_tuples;
    if (record.ns_only) ++state.ns_only;
    if (!record.ips.empty()) {
      ++state.answer_sets[record.ips];
      const net::Ipv4 resolver_ip = report.resolvers.at(record.resolver_id);
      if (std::find(record.ips.begin(), record.ips.end(), resolver_ip) !=
          record.ips.end()) {
        ++state.self_ip;
      }
    }
  }

  Sec41Stats& stats = report.sec41;
  for (const auto& [resolver_id, state] : per_resolver) {
    // NS-only resolvers never produce unknown tuples (their answers are
    // empty), so they are counted before the suspicion gate.
    if (state.ns_only == state.answered && state.ns_only > 0) {
      ++stats.ns_only;
    }
    if (state.unknown_tuples == 0) continue;
    ++stats.suspicious_resolvers;
    if (state.self_ip > 0) ++stats.self_ip_any;
    if (state.answered > 0 &&
        state.self_ip * 4 >= state.answered * 3) {  // >= 75%
      ++stats.self_ip_everywhere;
    }
    bool same_set_multi = false;
    bool single_static = state.answer_sets.size() == 1 && state.answered > 1;
    for (const auto& [ips, count] : state.answer_sets) {
      if (count > 1) same_set_multi = true;
    }
    if (single_static) {
      const auto& only = state.answer_sets.begin()->first;
      if (only.size() == 1 &&
          state.answer_sets.begin()->second == state.answered) {
        ++stats.static_single_ip;
      }
    }
    if (same_set_multi) ++stats.same_set_multi_domain;
  }
}

void Pipeline::compute_table5(StudyReport& report) const {
  const auto& categories = DomainSet::table5_categories();
  report.table5.columns.assign(categories.size(), {});

  // Per (domain_index): suspicious resolver sets and per-label sets.
  const std::size_t domain_count = report.domains.size();
  std::vector<std::unordered_set<std::uint32_t>> suspicious(domain_count);
  std::vector<std::array<std::unordered_set<std::uint32_t>, kLabelCount>>
      labeled(domain_count);

  for (std::size_t i = 0; i < report.records.size(); ++i) {
    if (report.verdicts[i] != TupleVerdict::kUnknown) continue;
    const auto& record = report.records[i];
    suspicious[record.domain_index].insert(record.resolver_id);
  }
  for (const auto& tuple : report.classification.tuples) {
    const auto& record = report.records.at(tuple.record_index);
    labeled[record.domain_index][static_cast<int>(tuple.label)].insert(
        record.resolver_id);
  }

  for (std::size_t c = 0; c < categories.size(); ++c) {
    for (int l = 0; l < kLabelCount; ++l) {
      double sum = 0.0;
      double max_value = 0.0;
      int counted_domains = 0;
      for (std::size_t d = 0; d < domain_count; ++d) {
        if (report.domains[d].category != categories[c]) continue;
        if (suspicious[d].empty()) continue;
        const double pct = 100.0 *
                           static_cast<double>(labeled[d][l].size()) /
                           static_cast<double>(suspicious[d].size());
        sum += pct;
        max_value = std::max(max_value, pct);
        ++counted_domains;
      }
      Table5Cell& cell = report.table5.columns[c][static_cast<std::size_t>(l)];
      cell.avg_pct = counted_domains == 0 ? 0.0 : sum / counted_domains;
      cell.max_pct = max_value;
    }
  }
}

}  // namespace dnswild::core
