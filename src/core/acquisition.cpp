#include "core/acquisition.h"

#include "dns/message.h"
#include "util/rng.h"

namespace dnswild::core {

Acquisition::Acquisition(net::World& world,
                         const resolver::AuthRegistry& registry,
                         net::Ipv4 client_ip, scan::RetryPolicy retry)
    : world_(world),
      registry_(registry),
      client_ip_(client_ip),
      retrier_(world, retry.seeded(client_ip.value() | 0x2ULL << 32)),
      fetcher_(world, client_ip, retry) {}

std::optional<net::Ipv4> Acquisition::resolve_at(net::Ipv4 resolver,
                                                 const std::string& host) {
  const auto name = dns::Name::parse(host);
  if (!name) return std::nullopt;
  dns::Message query =
      dns::Message::make_query(next_txid_++, *name, dns::RType::kA);
  net::UdpPacket packet;
  packet.src = client_ip_;
  packet.src_port = 50000;
  packet.dst = resolver;
  packet.dst_port = 53;
  packet.payload = query.encode();
  const scan::RetryOutcome outcome = retrier_.send(std::move(packet));
  for (const net::UdpReply& reply : outcome.replies) {
    const auto response = dns::Message::decode(reply.packet.payload);
    if (!response || !response->header.qr ||
        response->header.id != query.header.id) {
      continue;
    }
    const auto ips = response->answer_ips();
    if (!ips.empty()) return ips.front();
    return std::nullopt;
  }
  return std::nullopt;
}

AcquiredPage Acquisition::fetch_one(const scan::TupleRecord& record,
                                    std::size_t record_index,
                                    const StudyDomain& domain,
                                    net::Ipv4 resolver) {
  AcquiredPage page;
  page.record_index = record_index;
  if (record.ips.empty()) return page;
  page.ip = record.ips.front();
  page.lan_ip = net::is_lan(page.ip);
  const auto ip_as = world_.asdb().lookup_asn(page.ip);
  const auto resolver_as = world_.asdb().lookup_asn(resolver);
  page.same_as_as_resolver = ip_as && resolver_as && *ip_as == *resolver_as;

  if (domain.is_mx_host) {
    for (const std::uint16_t port : {std::uint16_t{25}, std::uint16_t{110},
                                     std::uint16_t{143}}) {
      if (const auto banner = fetcher_.banner(page.ip, port)) {
        page.mail_banners.emplace_back(port, *banner);
        page.connected = true;
      }
    }
  }

  const http::FetchResult fetched = fetcher_.fetch_page(
      page.ip, domain.name, [this, resolver](const std::string& host) {
        // §3.5: new (sub-)domains are resolved at the suspicious resolver.
        return resolve_at(resolver, host);
      });
  page.connected = page.connected || fetched.connected;
  page.status = fetched.status;
  page.body = fetched.body;
  page.body_hash = util::fnv1a(page.body);
  return page;
}

std::vector<AcquiredPage> Acquisition::fetch_unknown(
    const std::vector<scan::TupleRecord>& records,
    const std::vector<TupleVerdict>& verdicts,
    const std::vector<StudyDomain>& domains,
    const std::vector<net::Ipv4>& resolvers) {
  std::vector<AcquiredPage> pages;
  for (std::size_t i = 0; i < records.size() && i < verdicts.size(); ++i) {
    if (verdicts[i] != TupleVerdict::kUnknown) continue;
    const scan::TupleRecord& record = records[i];
    const StudyDomain& domain = domains.at(record.domain_index);
    const net::Ipv4 resolver = resolvers.at(record.resolver_id);
    pages.push_back(fetch_one(record, i, domain, resolver));
  }
  return pages;
}

std::vector<GroundTruthPage> Acquisition::fetch_ground_truth(
    const std::vector<StudyDomain>& domains, std::string_view region) {
  std::vector<GroundTruthPage> out;
  for (const StudyDomain& domain_ref : domains) {
    const StudyDomain* domain = &domain_ref;
    if (!domain->exists) continue;
    const auto answer = registry_.resolve_a(domain->name, region);
    if (answer.rcode != dns::RCode::kNoError || answer.ips.empty()) continue;
    GroundTruthPage gt;
    gt.domain = domain->name;
    gt.ip = answer.ips.front();
    if (domain->is_mx_host) {
      for (const std::uint16_t port : {std::uint16_t{25}, std::uint16_t{110},
                                       std::uint16_t{143}}) {
        if (const auto banner = fetcher_.banner(gt.ip, port)) {
          gt.mail_banners.emplace_back(port, *banner);
        }
      }
    }
    const auto response = fetcher_.get(gt.ip, domain->name);
    if (response) {
      gt.body = response->body;
      gt.features = http::extract_features(gt.body);
    }
    out.push_back(std::move(gt));
  }
  return out;
}

}  // namespace dnswild::core
