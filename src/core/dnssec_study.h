// DNSSEC client-strategy experiment (§5 "DNS Authenticity").
//
// The paper argues that DNSSEC only defeats injectors like the Great
// Firewall if the client (i) drops unvalidated responses and waits for a
// correctly signed one, and (ii) KNOWS the domain deploys DNSSEC — since
// the injected forgery typically arrives first and a resolver uses the
// first response matching the open transaction. This module turns that
// argument into a measurement: it queries domains at resolvers behind an
// injector and compares a naive first-response client against a validating
// client, across DNSSEC deployment levels (global deployment was < 0.6%
// of .net domains in May 2015, §5).
//
// The AD header bit stands in for "the signature chain validated": forged
// responses can never carry it because an off-path injector cannot produce
// valid RRSIGs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/world.h"
#include "resolver/authns.h"

namespace dnswild::core {

struct DnssecStudyConfig {
  net::Ipv4 client_ip;
  std::uint64_t seed = 0;
};

struct DnssecOutcome {
  std::uint64_t queries = 0;    // (resolver, domain) pairs with >= 1 reply
  std::uint64_t injected = 0;   // pairs where multiple answers raced

  // Naive client: accepts the first response (standard stub behaviour).
  std::uint64_t naive_poisoned = 0;

  // Validating client with deployment knowledge (§5 precondition ii):
  // waits for an AD-bit response when the domain is known-signed.
  std::uint64_t validating_poisoned = 0;
  // Signed domain, but no validated response ever arrived: the attack is
  // blocked at the cost of availability.
  std::uint64_t validating_unavailable = 0;
  // Unsigned domain: the validating client degrades to naive behaviour.
  std::uint64_t validating_fallback_poisoned = 0;

  double naive_poison_rate() const noexcept {
    return queries == 0 ? 0.0
                        : static_cast<double>(naive_poisoned) /
                              static_cast<double>(queries);
  }
  double validating_poison_rate() const noexcept {
    return queries == 0
               ? 0.0
               : static_cast<double>(validating_poisoned +
                                     validating_fallback_poisoned) /
                     static_cast<double>(queries);
  }
};

// Queries every domain at every resolver once. An accepted answer counts
// as poisoned when none of its addresses appear in any legitimate view of
// the domain (the registry's regional answer sets).
DnssecOutcome run_dnssec_experiment(
    net::World& world, const resolver::AuthRegistry& registry,
    const std::vector<net::Ipv4>& resolvers,
    const std::vector<std::string>& domains, const DnssecStudyConfig& config);

}  // namespace dnswild::core
