#include "core/casestudies.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "cluster/distance.h"
#include "http/fetch.h"
#include "util/strings.h"

namespace dnswild::core {

namespace {

std::vector<std::pair<std::string, std::uint64_t>> sorted_counts(
    const std::unordered_map<std::string, std::uint64_t>& counts) {
  std::vector<std::pair<std::string, std::uint64_t>> out(counts.begin(),
                                                         counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::string country_of(const StudyData& data, net::Ipv4 ip) {
  const auto country = data.asdb->country_of(ip);
  return country.empty() ? std::string("??") : std::string(country);
}

}  // namespace

CensorshipReport censorship_report(const StudyData& data) {
  CensorshipReport report;
  std::unordered_set<net::Ipv4> landing;
  std::unordered_set<std::string> countries;

  // Landing-page inventory requires served content: injected answers carry
  // arbitrary addresses, not landing pages (§4.2).
  std::unordered_map<std::size_t, bool> record_has_content;
  for (const auto& page : *data.pages) {
    record_has_content[page.record_index] = !page.body.empty();
  }
  std::unordered_map<std::string, std::unordered_set<std::uint32_t>>
      censoring_resolvers_by_country;
  std::unordered_map<std::string, std::unordered_set<std::uint32_t>>
      censoring_all;
  std::unordered_map<std::string, std::unordered_set<std::uint32_t>>
      responding_all;

  // Tuple-level pass for compliance denominators.
  for (const auto& record : *data.records) {
    if (!record.responded) continue;
    const net::Ipv4 resolver = data.resolvers->at(record.resolver_id);
    responding_all[country_of(data, resolver)].insert(record.resolver_id);
  }

  for (const auto& tuple : data.classification->tuples) {
    if (tuple.label != Label::kCensorship) continue;
    ++report.censorship_tuples;
    const auto& record = data.records->at(tuple.record_index);
    if (record.dual_response) ++report.dual_response_tuples;
    const net::Ipv4 resolver = data.resolvers->at(record.resolver_id);
    const std::string resolver_country = country_of(data, resolver);
    censoring_resolvers_by_country[resolver_country].insert(
        record.resolver_id);
    censoring_all[resolver_country].insert(record.resolver_id);
    // Landing inventory only for content-backed censorship (the injected
    // random addresses are not landing pages).
    const auto content = record_has_content.find(tuple.record_index);
    if (!record.dual_response && !record.ips.empty() &&
        content != record_has_content.end() && content->second) {
      const net::Ipv4 landing_ip = record.ips.front();
      landing.insert(landing_ip);
      countries.insert(country_of(data, landing_ip));
    }
  }

  report.landing_ips.assign(landing.begin(), landing.end());
  std::sort(report.landing_ips.begin(), report.landing_ips.end());
  report.landing_countries.assign(countries.begin(), countries.end());
  std::sort(report.landing_countries.begin(), report.landing_countries.end());

  std::unordered_map<std::string, std::uint64_t> by_country;
  for (const auto& [country, ids] : censoring_resolvers_by_country) {
    by_country[country] = ids.size();
  }
  report.censoring_by_country = sorted_counts(by_country);

  for (const auto& [country, responding] : responding_all) {
    CountryCompliance row;
    row.country = country;
    row.responding = responding.size();
    const auto censoring = censoring_all.find(country);
    row.censoring =
        censoring == censoring_all.end() ? 0 : censoring->second.size();
    if (row.censoring > 0) report.compliance.push_back(std::move(row));
  }
  std::sort(report.compliance.begin(), report.compliance.end(),
            [](const CountryCompliance& a, const CountryCompliance& b) {
              return a.censoring > b.censoring;
            });
  return report;
}

GeoHistogram geo_histogram(const StudyData& data,
                           const std::vector<std::string>& domain_names) {
  GeoHistogram histogram;
  std::unordered_set<std::uint16_t> domain_indexes;
  for (std::uint16_t i = 0; i < data.domains->size(); ++i) {
    const StudyDomain* domain = &(*data.domains)[i];
    if (std::find(domain_names.begin(), domain_names.end(), domain->name) !=
        domain_names.end()) {
      domain_indexes.insert(i);
    }
  }

  std::unordered_map<std::string, std::unordered_set<std::uint32_t>> all;
  std::unordered_map<std::string, std::unordered_set<std::uint32_t>>
      unexpected;
  for (std::size_t i = 0; i < data.records->size(); ++i) {
    const auto& record = (*data.records)[i];
    if (domain_indexes.count(record.domain_index) == 0) continue;
    if (!record.responded) continue;
    const net::Ipv4 resolver = data.resolvers->at(record.resolver_id);
    const std::string country = country_of(data, resolver);
    all[country].insert(record.resolver_id);
    if (i < data.verdicts->size() &&
        (*data.verdicts)[i] == TupleVerdict::kUnknown) {
      unexpected[country].insert(record.resolver_id);
    }
  }
  std::unordered_map<std::string, std::uint64_t> all_counts;
  std::unordered_map<std::string, std::uint64_t> unexpected_counts;
  for (const auto& [country, ids] : all) all_counts[country] = ids.size();
  for (const auto& [country, ids] : unexpected) {
    unexpected_counts[country] = ids.size();
  }
  histogram.all = sorted_counts(all_counts);
  histogram.unexpected = sorted_counts(unexpected_counts);
  return histogram;
}

CaseStudyReport case_study_report(const StudyData& data, net::World& world,
                                  net::Ipv4 vantage_ip) {
  CaseStudyReport report;
  http::Fetcher fetcher(world, vantage_ip);

  // Ground truth indexed by domain for similarity checks.
  std::unordered_map<std::string, const GroundTruthPage*> gt_by_domain;
  for (const auto& gt : *data.ground_truth) gt_by_domain[gt.domain] = &gt;

  // --- per-IP aggregation across tuples ---------------------------------
  struct IpAggregate {
    std::unordered_set<std::uint16_t> domain_indexes;
    std::unordered_set<std::uint32_t> resolver_ids;
    std::uint64_t pages_similar_to_gt = 0;
    std::uint64_t pages_with_content = 0;
  };
  std::unordered_map<net::Ipv4, IpAggregate> per_ip;

  std::unordered_set<std::uint32_t> ad_tamper_resolvers;
  std::unordered_set<net::Ipv4> ad_tamper_ips;
  std::unordered_set<std::uint32_t> ad_blank_resolvers;
  std::unordered_set<net::Ipv4> ad_blank_ips;
  std::unordered_set<std::uint32_t> search_ads_resolvers;
  std::unordered_set<net::Ipv4> phishing_ips;
  std::unordered_set<std::uint32_t> phishing_resolvers;
  std::unordered_set<net::Ipv4> paypal_ips;
  std::unordered_set<std::uint32_t> paypal_resolvers;
  std::unordered_set<net::Ipv4> malware_ips;
  std::unordered_set<std::uint32_t> malware_resolvers;
  std::unordered_set<std::uint32_t> mx_suspicious;
  std::unordered_set<std::uint32_t> mail_listening_resolvers;
  std::unordered_set<net::Ipv4> mail_ips;
  std::unordered_set<std::uint32_t> mail_matching;

  for (const auto& page : *data.pages) {
    const auto& record = data.records->at(page.record_index);
    const StudyDomain& domain = data.domains->at(record.domain_index);
    if (record.ips.empty()) continue;
    const net::Ipv4 ip = record.ips.front();

    IpAggregate& aggregate = per_ip[ip];
    aggregate.domain_indexes.insert(record.domain_index);
    aggregate.resolver_ids.insert(record.resolver_id);

    const GroundTruthPage* gt = nullptr;
    const auto gt_it = gt_by_domain.find(domain.name);
    if (gt_it != gt_by_domain.end()) gt = gt_it->second;

    if (!page.body.empty()) {
      ++aggregate.pages_with_content;
      if (gt != nullptr && !gt->body.empty()) {
        const auto features = http::extract_features(page.body);
        if (cluster::page_distance(features, gt->features) < 0.15) {
          ++aggregate.pages_similar_to_gt;
        }
      }
    }

    // Ad manipulation: the injected material carries foreign ad-network
    // references; blanked slots keep the layout but drop the ad script.
    if (util::icontains(page.body, "adnet-rewrite") ||
        util::icontains(page.body, "document.write('<img")) {
      if (util::icontains(page.body, "results for")) {
        search_ads_resolvers.insert(record.resolver_id);
      } else {
        ad_tamper_resolvers.insert(record.resolver_id);
        ad_tamper_ips.insert(ip);
      }
    }
    if (util::icontains(page.body, "blocked-empty")) {
      ad_blank_resolvers.insert(record.resolver_id);
      ad_blank_ips.insert(ip);
    }

    // Phishing: credential form posting to a .php endpoint on a page that
    // is NOT the legitimate representation.
    const bool has_php_post = util::icontains(page.body, ".php\"") &&
                              util::icontains(page.body, "method=\"post\"") &&
                              util::icontains(page.body, "type=\"password\"");
    if (has_php_post) {
      bool similar_to_gt = false;
      if (gt != nullptr && !gt->body.empty()) {
        similar_to_gt = cluster::page_distance(
                            http::extract_features(page.body), gt->features) <
                        0.15;
      }
      if (!similar_to_gt) {
        phishing_ips.insert(ip);
        phishing_resolvers.insert(record.resolver_id);
        if (domain.name == "paypal.com") {
          paypal_ips.insert(ip);
          paypal_resolvers.insert(record.resolver_id);
        }
      }
    }

    // Malware-update redirects.
    if (util::icontains(page.body, "is out of date!") &&
        util::icontains(page.body, "install update")) {
      malware_ips.insert(ip);
      malware_resolvers.insert(record.resolver_id);
    }

    // Mail interception (MX set).
    if (domain.is_mx_host) {
      mx_suspicious.insert(record.resolver_id);
      if (!page.mail_banners.empty()) {
        mail_listening_resolvers.insert(record.resolver_id);
        mail_ips.insert(ip);
        if (gt != nullptr) {
          for (const auto& [port, banner] : page.mail_banners) {
            for (const auto& [gt_port, gt_banner] : gt->mail_banners) {
              if (port == gt_port && banner == gt_banner) {
                mail_matching.insert(record.resolver_id);
              }
            }
          }
        }
      }
    }
  }

  // --- transparent proxies ------------------------------------------------
  for (const auto& [ip, aggregate] : per_ip) {
    // Proxy signature: one address serving the *original* content for many
    // distinct domains.
    if (aggregate.domain_indexes.size() < 5) continue;
    if (aggregate.pages_with_content == 0 ||
        aggregate.pages_similar_to_gt * 10 <
            aggregate.pages_with_content * 8) {  // >= 80% GT-similar
      continue;
    }
    // TLS classification: does the proxy complete a handshake with a valid
    // certificate for one of the proxied domains?
    bool tls = false;
    for (const std::uint16_t domain_index : aggregate.domain_indexes) {
      const StudyDomain& domain = data.domains->at(domain_index);
      const auto cert = fetcher.tls_certificate(
          ip, std::optional<std::string>(domain.name));
      if (cert && cert->matches_host(domain.name)) {
        tls = true;
        break;
      }
    }
    if (tls) {
      ++report.proxy_ips_tls;
      report.proxy_resolvers_tls += aggregate.resolver_ids.size();
    } else {
      ++report.proxy_ips_http_only;
      report.proxy_resolvers_http_only += aggregate.resolver_ids.size();
    }
  }

  report.ad_tamper_resolvers = ad_tamper_resolvers.size();
  report.ad_tamper_ips = ad_tamper_ips.size();
  report.ad_blanking_resolvers = ad_blank_resolvers.size();
  report.ad_blanking_ips = ad_blank_ips.size();
  report.search_with_ads_resolvers = search_ads_resolvers.size();
  report.phishing_ips = phishing_ips.size();
  report.phishing_resolvers = phishing_resolvers.size();
  report.paypal_phish_ips = paypal_ips.size();
  report.paypal_phish_resolvers = paypal_resolvers.size();
  report.malware_ips = malware_ips.size();
  report.malware_resolvers = malware_resolvers.size();
  report.mx_suspicious_resolvers = mx_suspicious.size();
  report.mail_listening_resolvers = mail_listening_resolvers.size();
  report.mail_listening_ips = mail_ips.size();
  report.mail_matching_banner_resolvers = mail_matching.size();
  return report;
}

}  // namespace dnswild::core
