// Machine-readable exports of StudyReport sections.
//
// The text tables in core/report.h mirror the paper; these CSV emitters
// exist for downstream analysis (plotting the reproduced figures, diffing
// runs across seeds/scales). Fields are RFC-4180 quoted where needed.
#pragma once

#include <string>

#include "core/pipeline.h"

namespace dnswild::core {

// One row per (label, category): label,category,avg_pct,max_pct.
std::string table5_csv(const StudyReport& report);

// One row per category: category,tuples,legitimate_pct,no_answer_pct,
// unknown_pct.
std::string prefilter_csv(const StudyReport& report);

// One row per country: country,censoring,responding,coverage_pct.
std::string compliance_csv(const StudyReport& report);

// One row per country and panel: panel(all|unexpected),country,resolvers.
std::string social_geo_csv(const StudyReport& report);

// RFC-4180 field quoting (used by the emitters; exposed for reuse).
std::string csv_quote(std::string_view field);

}  // namespace dnswild::core
