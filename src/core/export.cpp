#include "core/export.h"

#include <cstdio>

namespace dnswild::core {

namespace {

std::string number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.4f", value);
  return buffer;
}

}  // namespace

std::string csv_quote(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string table5_csv(const StudyReport& report) {
  std::string out = "label,category,avg_pct,max_pct\n";
  const auto& categories = DomainSet::table5_categories();
  for (int l = 0; l < kLabelCount; ++l) {
    const auto label = static_cast<Label>(l);
    if (label == Label::kUnclassified) continue;
    for (std::size_t c = 0; c < categories.size(); ++c) {
      const Table5Cell& cell =
          report.table5.columns[c][static_cast<std::size_t>(l)];
      out += csv_quote(label_name(label));
      out += ',';
      out += csv_quote(http::site_category_name(categories[c]));
      out += ',';
      out += number(cell.avg_pct);
      out += ',';
      out += number(cell.max_pct);
      out += '\n';
    }
  }
  return out;
}

std::string prefilter_csv(const StudyReport& report) {
  std::string out =
      "category,tuples,legitimate_pct,no_answer_pct,unknown_pct\n";
  for (const auto& row : report.prefilter_by_category) {
    out += csv_quote(http::site_category_name(row.category));
    out += ',';
    out += std::to_string(row.tuples);
    out += ',';
    out += number(row.legitimate_pct);
    out += ',';
    out += number(row.no_answer_pct);
    out += ',';
    out += number(row.unknown_pct);
    out += '\n';
  }
  return out;
}

std::string compliance_csv(const StudyReport& report) {
  std::string out = "country,censoring,responding,coverage_pct\n";
  for (const auto& row : report.censorship.compliance) {
    out += csv_quote(row.country);
    out += ',';
    out += std::to_string(row.censoring);
    out += ',';
    out += std::to_string(row.responding);
    out += ',';
    out += number(100.0 * row.fraction());
    out += '\n';
  }
  return out;
}

std::string social_geo_csv(const StudyReport& report) {
  std::string out = "panel,country,resolvers\n";
  for (const auto& [country, count] : report.social_geo.all) {
    out += "all," + csv_quote(country) + ',' + std::to_string(count) + '\n';
  }
  for (const auto& [country, count] : report.social_geo.unexpected) {
    out += "unexpected," + csv_quote(country) + ',' +
           std::to_string(count) + '\n';
  }
  return out;
}

}  // namespace dnswild::core
