#include "core/prefilter.h"

#include "util/strings.h"

namespace dnswild::core {

Prefilter::Prefilter(net::World& world,
                     const resolver::AuthRegistry& registry,
                     const DomainSet& domains, net::Ipv4 vantage_ip,
                     PrefilterConfig config)
    : world_(world),
      registry_(registry),
      domains_(domains),
      fetcher_(world, vantage_ip),
      config_(std::move(config)) {}

const std::unordered_set<std::uint32_t>& Prefilter::trusted_as_set(
    const std::string& domain) {
  const auto cached = as_cache_.find(domain);
  if (cached != as_cache_.end()) return cached->second;
  std::unordered_set<std::uint32_t> as_set;
  // Resolve at our own (trusted) resolvers from each vantage region: CDN
  // zones answer differently per region, so multiple views widen the
  // whitelist the way the paper's distributed trusted lookups do.
  for (const auto& region : config_.trusted_regions) {
    const auto answer = registry_.resolve_a(domain, region);
    if (answer.rcode != dns::RCode::kNoError) continue;
    for (const net::Ipv4 ip : answer.ips) {
      if (const auto asn = world_.asdb().lookup_asn(ip)) as_set.insert(*asn);
    }
  }
  return as_cache_.emplace(domain, std::move(as_set)).first->second;
}

bool Prefilter::accept_ip(net::Ipv4 ip, const StudyDomain& domain) {
  const std::string cache_key = domain.name + "|" + ip.to_string();
  const auto cached = ip_verdict_cache_.find(cache_key);
  if (cached != ip_verdict_cache_.end()) return cached->second;

  bool accepted = false;

  // Rule (i): AS match against trusted resolutions.
  if (config_.use_as_rule) {
    const auto& as_set = trusted_as_set(domain.name);
    if (const auto asn = world_.asdb().lookup_asn(ip)) {
      if (as_set.count(*asn) != 0) {
        accepted = true;
        ++stats_.accepted_by_as;
      }
    }
  }

  // Rule (ii): rDNS resembles the domain and forward-confirms.
  if (!accepted && config_.use_rdns_rule) {
    if (const auto rdns_name = world_.rdns().lookup(ip)) {
      const bool resembles =
          util::icontains(*rdns_name, domain.name);
      if (resembles) {
        const auto forward = registry_.resolve_a(*rdns_name);
        if (forward.rcode == dns::RCode::kNoError) {
          for (const net::Ipv4 confirmed : forward.ips) {
            if (confirmed == ip) {
              accepted = true;
              ++stats_.accepted_by_rdns;
              break;
            }
          }
        }
      }
    }
  }

  // Rule (iii): the paired SNI / non-SNI handshakes of §3.4. Acceptance
  // needs BOTH a matching SNI certificate and a valid default (non-SNI)
  // certificate: genuine origins and CDN edges always present a default,
  // while an SNI-keyed TLS relay cannot route a handshake without SNI —
  // which is what keeps transparent TLS proxies (§4.3) out of the
  // legitimate set.
  if (!accepted && config_.use_cert_rule) {
    const auto sni_cert =
        fetcher_.tls_certificate(ip, std::optional<std::string>(domain.name));
    if (sni_cert && sni_cert->matches_host(domain.name)) {
      const auto default_cert = fetcher_.tls_certificate(ip, std::nullopt);
      if (default_cert && default_cert->valid_chain) {
        accepted = true;
        ++stats_.accepted_by_cert;
      }
    } else {
      const auto default_cert = fetcher_.tls_certificate(ip, std::nullopt);
      if (default_cert && default_cert->valid_chain &&
          !default_cert->self_signed) {
        for (const auto& cdn_name : config_.cdn_common_names) {
          if (util::iequals(default_cert->common_name, cdn_name)) {
            accepted = true;
            ++stats_.accepted_by_cert;
            break;
          }
        }
      }
    }
  }

  ip_verdict_cache_.emplace(cache_key, accepted);
  return accepted;
}

TupleVerdict Prefilter::judge(const scan::TupleRecord& record,
                              const StudyDomain& domain) {
  if (!record.responded) return TupleVerdict::kUnresponsive;

  if (!domain.exists) {
    // NXDOMAIN or an empty NOERROR is the honest outcome for NX names.
    if (record.rcode == dns::RCode::kNxDomain ||
        (record.rcode == dns::RCode::kNoError && record.ips.empty())) {
      return TupleVerdict::kLegitimate;
    }
    if (record.rcode != dns::RCode::kNoError) return TupleVerdict::kNoAnswer;
    return TupleVerdict::kUnknown;  // an NX name got an address: monetization
  }

  if (record.rcode != dns::RCode::kNoError) return TupleVerdict::kNoAnswer;
  if (record.ips.empty()) return TupleVerdict::kNoAnswer;

  for (const net::Ipv4 ip : record.ips) {
    if (!accept_ip(ip, domain)) return TupleVerdict::kUnknown;
  }
  return TupleVerdict::kLegitimate;
}

std::vector<TupleVerdict> Prefilter::run(
    const std::vector<scan::TupleRecord>& records,
    const std::vector<StudyDomain>& domains) {
  std::vector<TupleVerdict> verdicts;
  verdicts.reserve(records.size());
  for (const auto& record : records) {
    const StudyDomain& domain = domains.at(record.domain_index);
    const TupleVerdict verdict = judge(record, domain);
    ++stats_.tuples;
    switch (verdict) {
      case TupleVerdict::kLegitimate: ++stats_.legitimate; break;
      case TupleVerdict::kNoAnswer: ++stats_.no_answer; break;
      case TupleVerdict::kUnknown: ++stats_.unknown; break;
      case TupleVerdict::kUnresponsive: ++stats_.unresponsive; break;
    }
    verdicts.push_back(verdict);
  }
  return verdicts;
}

}  // namespace dnswild::core
