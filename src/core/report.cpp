#include "core/report.h"

#include <algorithm>
#include <cstdio>

#include "util/table.h"

namespace dnswild::core {

using util::Table;

std::string render_table5(const StudyReport& report) {
  const auto& categories = DomainSet::table5_categories();
  std::vector<std::string> headers = {"Label"};
  std::vector<util::Align> aligns = {util::Align::kLeft};
  for (const SiteCategory category : categories) {
    headers.emplace_back(http::site_category_name(category));
    aligns.push_back(util::Align::kRight);
  }
  Table table(std::move(headers), std::move(aligns));

  static constexpr Label kRowOrder[] = {
      Label::kBlocking, Label::kCensorship, Label::kHttpError,
      Label::kLogin,    Label::kMisc,       Label::kParking,
      Label::kSearch,
  };
  for (const Label label : kRowOrder) {
    std::vector<std::string> row = {std::string(label_name(label))};
    for (std::size_t c = 0; c < categories.size(); ++c) {
      const Table5Cell& cell =
          report.table5.columns[c][static_cast<std::size_t>(label)];
      row.push_back(util::pct1(cell.avg_pct) + " (" +
                    util::pct1(cell.max_pct) + ")");
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

std::string render_prefilter(const StudyReport& report) {
  Table table({"Category", "Tuples", "Legitimate %", "No answer %",
               "Unknown %"},
              {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
               util::Align::kRight, util::Align::kRight});
  for (const auto& row : report.prefilter_by_category) {
    table.add_row({std::string(http::site_category_name(row.category)),
                   util::with_commas(row.tuples),
                   util::pct1(row.legitimate_pct),
                   util::pct1(row.no_answer_pct),
                   util::pct1(row.unknown_pct)});
  }
  return table.render();
}

std::string render_classification(const StudyReport& report) {
  const ClassificationResult& classification = report.classification;
  std::string out;
  out += "Unique pages:      " + util::with_commas(classification.unique_pages) +
         " (of " + util::with_commas(classification.tuples.size()) +
         " acquired tuples)\n";
  out += "Coarse clusters:   " + util::with_commas(classification.clusters) +
         "\n";
  out += "Labeled fraction:  " +
         util::frac_pct1(classification.labeled_fraction) + "\n";
  out += "Distance matrix:   " +
         util::with_commas(classification.pair_distances) + " pairs, " +
         util::with_commas(classification.matrix_bytes) + " bytes peak\n";
  out += "NaN distances:     " +
         util::with_commas(classification.nan_distances) +
         (classification.nan_distances == 0 ? "\n"
                                            : "  <-- degenerate features!\n");
  return out;
}

std::string render_stage_summary(const StudyReport& report) {
  Table table({"Stage", "In", "Out", "Wall ms"},
              {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
               util::Align::kRight});
  for (const auto& span : report.metrics.spans) {
    if (span.name.rfind("stage.", 0) != 0) continue;
    char wall[32];
    std::snprintf(wall, sizeof wall, "%.1f", span.wall_ms);
    table.add_row({span.name.substr(6),
                   span.items_in < 0 ? "-"
                                     : util::with_commas(
                                           static_cast<std::uint64_t>(
                                               span.items_in)),
                   span.items_out < 0 ? "-"
                                      : util::with_commas(
                                            static_cast<std::uint64_t>(
                                                span.items_out)),
                   wall});
  }
  std::string out = table.render();
  // Latency percentiles from the event cores' virtual-time histograms
  // (plus the shared retry-wait histogram). Virtual milliseconds, so the
  // table is deterministic — unlike the wall column above.
  Table latency({"Latency (virtual ms)", "Count", "p50", "p90", "p99"},
                {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                 util::Align::kRight, util::Align::kRight});
  bool any_latency = false;
  for (const auto& histogram : report.metrics.histograms) {
    const bool is_latency =
        histogram.name.size() > 11 &&
        histogram.name.rfind(".latency_ms") == histogram.name.size() - 11;
    if (!is_latency && histogram.name != "retry.wait_ms") continue;
    if (histogram.count == 0) continue;
    any_latency = true;
    char p50[32], p90[32], p99[32];
    std::snprintf(p50, sizeof p50, "%.1f", histogram.percentile(0.50));
    std::snprintf(p90, sizeof p90, "%.1f", histogram.percentile(0.90));
    std::snprintf(p99, sizeof p99, "%.1f", histogram.percentile(0.99));
    latency.add_row({histogram.name, util::with_commas(histogram.count),
                     p50, p90, p99});
  }
  if (any_latency) out += "\n" + latency.render();
  if (!report.degradations.empty()) {
    Table degraded({"Degraded stage", "Cause", "Affected"},
                   {util::Align::kLeft, util::Align::kLeft,
                    util::Align::kRight});
    for (const StageDegradation& entry : report.degradations) {
      degraded.add_row({entry.stage, entry.cause,
                        util::with_commas(entry.affected)});
    }
    out += "\n" + degraded.render();
  }
  return out;
}

std::string render_hot_prefixes(const StudyReport& report,
                                std::size_t limit) {
  // Rank by "trouble": faults + rate limiting + timeouts. Prefixes that
  // answered everything cleanly never make the table.
  std::vector<const obs::PrefixRow*> hot;
  for (const obs::PrefixRow& row : report.prefixes.rows) {
    const std::uint64_t trouble = row.stats.fault_hits +
                                  row.stats.rate_limited + row.stats.timeouts;
    if (trouble > 0) hot.push_back(&row);
  }
  if (hot.empty()) return {};
  std::stable_sort(hot.begin(), hot.end(),
                   [](const obs::PrefixRow* a, const obs::PrefixRow* b) {
                     const std::uint64_t ta = a->stats.fault_hits +
                                              a->stats.rate_limited +
                                              a->stats.timeouts;
                     const std::uint64_t tb = b->stats.fault_hits +
                                              b->stats.rate_limited +
                                              b->stats.timeouts;
                     if (ta != tb) return ta > tb;
                     return a->key < b->key;  // deterministic tie-break
                   });
  if (hot.size() > limit) hot.resize(limit);
  Table table({"Prefix", "Probes", "Resp %", "Timeouts", "Faults",
               "Rate-ltd", "Rebinds"},
              {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
               util::Align::kRight, util::Align::kRight, util::Align::kRight,
               util::Align::kRight});
  for (const obs::PrefixRow* row : hot) {
    table.add_row({obs::prefix_cidr(row->key),
                   util::with_commas(row->stats.probes),
                   util::pct1(100.0 * row->stats.response_rate()),
                   util::with_commas(row->stats.timeouts),
                   util::with_commas(row->stats.fault_hits),
                   util::with_commas(row->stats.rate_limited),
                   util::with_commas(row->stats.rebinds)});
  }
  return table.render();
}

namespace {

std::string render_histogram(
    const std::vector<std::pair<std::string, std::uint64_t>>& counts,
    std::string_view title) {
  std::uint64_t total = 0;
  for (const auto& [key, count] : counts) total += count;
  Table table({std::string(title), "Resolvers", "%"},
              {util::Align::kLeft, util::Align::kRight, util::Align::kRight});
  std::size_t shown = 0;
  std::uint64_t shown_total = 0;
  for (const auto& [key, count] : counts) {
    if (shown++ >= 12) break;
    shown_total += count;
    table.add_row({key, util::with_commas(count),
                   util::pct1(total == 0 ? 0.0
                                         : 100.0 * static_cast<double>(count) /
                                               static_cast<double>(total))});
  }
  if (total > shown_total) {
    table.add_row({"Others", util::with_commas(total - shown_total),
                   util::pct1(100.0 * static_cast<double>(total - shown_total) /
                              static_cast<double>(total))});
  }
  return table.render();
}

}  // namespace

std::string render_social_geo(const StudyReport& report) {
  std::string out = "(a) All responses\n";
  out += render_histogram(report.social_geo.all, "Country");
  out += "\n(b) Unexpected responses\n";
  out += render_histogram(report.social_geo.unexpected, "Country");
  return out;
}

std::string render_censorship(const StudyReport& report) {
  const auto& censorship = report.censorship;
  std::string out;
  out += "Censorship tuples:        " +
         util::with_commas(censorship.censorship_tuples) + "\n";
  out += "Dual-response (injected): " +
         util::with_commas(censorship.dual_response_tuples) + "\n";
  out += "Landing-page IPs:         " +
         util::with_commas(censorship.landing_ips.size()) + "\n";
  out += "Countries with landings:  " +
         util::with_commas(censorship.landing_countries.size()) + "\n\n";
  out += render_histogram(censorship.censoring_by_country,
                          "Censoring resolvers by country");
  out += "\nPer-country compliance (censoring / responding resolvers):\n";
  Table table({"Country", "Censoring", "Responding", "Coverage %"},
              {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
               util::Align::kRight});
  for (const auto& row : censorship.compliance) {
    table.add_row({row.country, util::with_commas(row.censoring),
                   util::with_commas(row.responding),
                   util::frac_pct1(row.fraction())});
  }
  out += table.render();
  return out;
}

std::string render_case_studies(const StudyReport& report) {
  const CaseStudyReport& cases = report.cases;
  Table table({"Case study", "Resolvers", "IPs"},
              {util::Align::kLeft, util::Align::kRight, util::Align::kRight});
  table.add_row({"Ad redirect / injection",
                 util::with_commas(cases.ad_tamper_resolvers),
                 util::with_commas(cases.ad_tamper_ips)});
  table.add_row({"Ad blanking (placeholders)",
                 util::with_commas(cases.ad_blanking_resolvers),
                 util::with_commas(cases.ad_blanking_ips)});
  table.add_row({"Search pages w/ injected ads",
                 util::with_commas(cases.search_with_ads_resolvers), "-"});
  table.add_row({"Transparent proxy (TLS passthrough)",
                 util::with_commas(cases.proxy_resolvers_tls),
                 util::with_commas(cases.proxy_ips_tls)});
  table.add_row({"Transparent proxy (HTTP only)",
                 util::with_commas(cases.proxy_resolvers_http_only),
                 util::with_commas(cases.proxy_ips_http_only)});
  table.add_row({"Phishing (all)",
                 util::with_commas(cases.phishing_resolvers),
                 util::with_commas(cases.phishing_ips)});
  table.add_row({"Phishing (PayPal kit)",
                 util::with_commas(cases.paypal_phish_resolvers),
                 util::with_commas(cases.paypal_phish_ips)});
  table.add_row({"MX set: suspicious resolvers",
                 util::with_commas(cases.mx_suspicious_resolvers), "-"});
  table.add_row({"MX redirects to live mail IPs",
                 util::with_commas(cases.mail_listening_resolvers),
                 util::with_commas(cases.mail_listening_ips)});
  table.add_row({"MX with matching legit banner",
                 util::with_commas(cases.mail_matching_banner_resolvers),
                 "-"});
  table.add_row({"Malware update redirects",
                 util::with_commas(cases.malware_resolvers),
                 util::with_commas(cases.malware_ips)});
  return table.render();
}

std::string render_modifications(const StudyReport& report) {
  const ModificationReport& modifications = report.modifications;
  std::string out;
  out += "Unique GT-comparable pages: " +
         util::with_commas(modifications.compared_pages) +
         "; small modifications: " +
         util::with_commas(modifications.modified_pages) + "\n";
  Table table({"Added tags", "Removed tags", "Tuples", "Resolvers",
               "Example domain"},
              {util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
               util::Align::kRight, util::Align::kLeft});
  std::size_t shown = 0;
  for (const auto& cluster : modifications.clusters) {
    if (shown++ >= 10) break;
    std::string added, removed;
    for (const auto& tag : cluster.added) {
      if (!added.empty()) added += ", ";
      added += tag;
    }
    for (const auto& tag : cluster.removed) {
      if (!removed.empty()) removed += ", ";
      removed += tag;
    }
    table.add_row({added.empty() ? "-" : added,
                   removed.empty() ? "-" : removed,
                   util::with_commas(cluster.tuples),
                   util::with_commas(cluster.resolvers),
                   cluster.example_domain});
  }
  out += table.render();
  return out;
}

}  // namespace dnswild::core
