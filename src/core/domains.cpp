#include "core/domains.h"

#include <algorithm>

#include "util/strings.h"

namespace dnswild::core {

DomainSet DomainSet::study_set() {
  DomainSet set;
  set.ground_truth_ = "groundtruth.dnswild-study.example";
  auto& d = set.domains_;

  const auto add = [&d](std::string name, SiteCategory category,
                        bool exists = true, bool mx = false) {
    d.push_back(StudyDomain{std::move(name), category, exists, mx});
  };

  // Ads: 9 domains of ad providers.
  for (const char* name :
       {"ads.doubleclick.com", "adserver.adtech.example", "ad.yieldmanager.com",
        "pagead2.googlesyndication.com", "adnxs.com", "openx.example",
        "zedo.com", "advertising.com", "atdmt.com"}) {
    add(name, SiteCategory::kAds);
  }
  // Adult: 4 (Alexa-ranked adult content).
  for (const char* name : {"youporn.com", "adultfinder.com", "xvideos.com",
                           "pornhub.com"}) {
    add(name, SiteCategory::kAdult);
  }
  // Alexa: Top-20 ranked domains.
  for (const char* name :
       {"google.com", "facebook.com", "youtube.com", "yahoo.com", "baidu.com",
        "wikipedia.org", "twitter.com", "qq.com", "amazon.com", "live.com",
        "taobao.com", "linkedin.com", "sina.com.cn", "weibo.com", "ebay.com",
        "yandex.ru", "vk.com", "hao123.com", "bing.com", "blogspot.com"}) {
    add(name, SiteCategory::kAlexa);
  }
  // Antivirus: 15 AV web pages and update servers.
  for (const char* name :
       {"avira.com", "update.avira.com", "kaspersky.com",
        "update.kaspersky.com", "symantec.com", "liveupdate.symantec.com",
        "mcafee.com", "update.mcafee.com", "avast.com", "update.avast.com",
        "bitdefender.com", "eset.com", "f-secure.com", "trendmicro.com",
        "update.drweb.com"}) {
    add(name, SiteCategory::kAntivirus);
  }
  // Banking: 20 banking / payment sites.
  for (const char* name :
       {"paypal.com", "alipay.com", "chase.com", "bankofamerica.com",
        "wellsfargo.com", "citibank.com", "hsbc.com", "barclays.co.uk",
        "santander.com", "deutsche-bank.de", "bnpparibas.com", "ing.com",
        "unicredit.it", "intesasanpaolo.it", "sberbank.ru", "icbc.com.cn",
        "itau.com.br", "visa.com", "mastercard.com", "americanexpress.com"}) {
    add(name, SiteCategory::kBanking);
  }
  // Dating: 3.
  for (const char* name : {"match.com", "okcupid.com", "eharmony.com"}) {
    add(name, SiteCategory::kDating);
  }
  // Filesharing: 5.
  for (const char* name : {"kickass.to", "thepiratebay.se", "torrentz.eu",
                           "extratorrent.cc", "1337x.to"}) {
    add(name, SiteCategory::kFilesharing);
  }
  // Gambling: 4.
  for (const char* name : {"bet-at-home.com", "bet365.com", "pokerstars.com",
                           "williamhill.com"}) {
    add(name, SiteCategory::kGambling);
  }
  // Malware: 13 blacklisted domains.
  for (const char* name :
       {"irc.zief.pl", "ytrewq.cn", "qwerty-update.cn", "zeus-panel.ru",
        "citadel-cnc.su", "dropzone-443.net", "malkit.example",
        "exploit-pack.example", "fake-av-scan.example", "locker-pay.example",
        "spy-eye-cnc.net", "torpig-gw.com", "conficker-seed.info"}) {
    add(name, SiteCategory::kMalware);
  }
  // MX: 13 mail hosts of 6 providers (IMAP/POP3/SMTP).
  for (const char* name :
       {"imap.aim.com", "smtp.aim.com", "imap.gmail.com", "pop.gmail.com",
        "smtp.gmail.com", "imap.mail.me.com", "smtp.mail.me.com",
        "imap-mail.outlook.com", "smtp-mail.outlook.com", "imap.mail.yahoo.com",
        "smtp.mail.yahoo.com", "imap.yandex.ru", "smtp.yandex.ru"}) {
    add(name, SiteCategory::kMail, true, true);
  }
  // NX: 8 non-existent + 5 NX subdomains of popular domains + 8 typos.
  for (const char* name :
       {"qzxkjwv.example", "nbgrwq.example", "xkcdqwe.example",
        "zzyprw.example", "qqwjkl.example", "mmzpqr.example",
        "vvbnqw.example", "ttyqzx.example",
        "rswkllf.twitter.com", "qpzmwn.facebook.com", "xkvbnm.google.com",
        "zzkkww.amazon.com", "qwpmzx.wikipedia.org",
        "amason.com", "ghoogle.com", "wikipeida.com", "facebok.com",
        "twiter.com", "youtub.com", "payapl.com", "ebey.com"}) {
    add(name, SiteCategory::kNx, /*exists=*/false);
  }
  // Tracking: 5 user-tracking libraries.
  for (const char* name :
       {"bluecava.com", "threatmetrix.com", "scorecardresearch.com",
        "quantserve.com", "addthis.com"}) {
    add(name, SiteCategory::kTracking);
  }
  // Miscellaneous: 6 update servers, 3 intelligence agencies, 3 OAuth,
  // 11 individual domains (= 23, completing the 155).
  for (const char* name :
       {"update.adobe.com", "get.adobe.com", "windowsupdate.com",
        "update.microsoft.com", "swscan.apple.com", "download.oracle.com",
        "nsa.gov", "gchq.gov.uk", "mossad.gov.il",
        "oauth.amazon.com", "accounts.google.com", "api.twitter.com",
        "rotten.com", "wikileaks.org", "torproject.org", "archive.org",
        "craigslist.org", "reddit.com", "imgur.com", "stackoverflow.com",
        "github.com", "netflix.com", "spotify.com"}) {
    add(name, SiteCategory::kMisc);
  }
  return set;
}

std::vector<const StudyDomain*> DomainSet::in_category(
    SiteCategory category) const {
  std::vector<const StudyDomain*> out;
  for (const auto& domain : domains_) {
    if (domain.category == category) out.push_back(&domain);
  }
  return out;
}

std::vector<std::string> DomainSet::names_in_category(
    SiteCategory category) const {
  std::vector<std::string> out;
  for (const auto& domain : domains_) {
    if (domain.category == category) out.push_back(domain.name);
  }
  return out;
}

const StudyDomain* DomainSet::find(std::string_view name) const noexcept {
  for (const auto& domain : domains_) {
    if (domain.name == name) return &domain;
  }
  return nullptr;
}

const std::vector<SiteCategory>& DomainSet::table5_categories() {
  static const std::vector<SiteCategory> kOrder = {
      SiteCategory::kAds,        SiteCategory::kAdult,
      SiteCategory::kAlexa,      SiteCategory::kAntivirus,
      SiteCategory::kBanking,    SiteCategory::kDating,
      SiteCategory::kFilesharing, SiteCategory::kGambling,
      SiteCategory::kGroundTruth, SiteCategory::kMalware,
      SiteCategory::kMisc,       SiteCategory::kMail,
      SiteCategory::kNx,         SiteCategory::kTracking,
  };
  return kOrder;
}

const std::vector<std::string>& snoop_tlds() {
  static const std::vector<std::string> kTlds = {
      "br", "cn", "co.uk", "com", "de", "fr", "in",  "info",
      "it", "jp", "net",   "nl",  "org", "pl", "ru",
  };
  return kTlds;
}

}  // namespace dnswild::core
