// HTTP response classification (§3.6, §4.2, Table 5).
//
// Deduplicates acquired pages by body, clusters the unique representations
// with the seven-feature HAC (coarse step), labels each cluster from its
// exemplar (encoding the paper's manual cluster labels as content rules),
// and propagates labels back to every tuple. Tuples whose DNS layer already
// proves injection (dual responses, §4.2) are labeled Censorship before any
// content is consulted — the forged Chinese answers mostly serve no HTTP.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/hac.h"
#include "cluster/lsh.h"
#include "core/acquisition.h"
#include "core/domains.h"
#include "scan/domain_scan.h"

namespace dnswild::core {

enum class Label {
  kBlocking,
  kCensorship,
  kHttpError,
  kLogin,
  kMisc,
  kParking,
  kSearch,
  kUnclassified,  // no HTTP payload and no DNS-layer signal
};
inline constexpr int kLabelCount = 8;

std::string_view label_name(Label label) noexcept;

// Content-rule labeling of a single page (the encoded analyst judgment).
Label label_page(int status, std::string_view body);

struct ClassifiedTuple {
  std::size_t record_index = 0;
  Label label = Label::kUnclassified;
  int cluster = -1;  // coarse cluster id; -1 when content was absent
};

// How the coarse clustering step runs (DESIGN.md §10):
//  * kExact — materialize all n(n-1)/2 page distances (the paper's HAC);
//    O(n^2), bounded by ClassifierConfig::max_unique.
//  * kLsh — MinHash/SimHash pre-bucketing, exact HAC only within candidate
//    buckets, exemplar stitching across buckets; sub-quadratic, unbounded
//    by max_unique, approximate (quality gate: identical Table 5 labels on
//    the paper-scale fixture, pinned by tests/test_lsh.cpp).
//  * kAuto — exact below lsh_crossover unique pages, LSH at or above it
//    (the measured crossover lives in BENCH_micro.json "lsh_crossover").
enum class ClusterMode { kExact, kLsh, kAuto };

struct ClassifierConfig {
  double coarse_cut = 0.25;      // HAC cut threshold for the coarse step
  std::size_t max_unique = 6000; // safety bound for the exact-mode matrix
  // Workers for feature extraction and the distance-matrix fill; 0 selects
  // hardware_concurrency. Results are byte-identical for every value
  // (tests/test_parallel_cluster.cpp pins this). The effective pool is
  // clamped to min(threads, hardware, ceil(items/grain)) — oversharding
  // tiny workloads only burns wall time (BENCH_micro.json regression).
  unsigned threads = 0;
  // Optional registry for the clustering/labeling stage spans and the
  // "cluster.*" counters. Not owned; the pipeline points this at the
  // world's registry.
  obs::Registry* registry = nullptr;

  ClusterMode mode = ClusterMode::kExact;
  // kAuto switchover point (unique pages at which LSH starts to win).
  std::size_t lsh_crossover = 1024;
  // LSH knobs (seed, banding, caps). cut/threads/executor/registry are
  // overridden from this config at run time.
  cluster::LshOptions lsh;
  // When LSH runs and the exact matrix is still feasible (n <= max_unique),
  // also run the exact pipeline and report per-page label agreement in
  // ClassificationResult::lsh.label_agreement. Costs the full O(n^2) fill;
  // meant for validation runs and the crossover bench, not production.
  bool validate_lsh = false;
};

// Approximation report of an LSH-mode run (zeroed when exact mode ran).
struct LshSummary {
  bool used = false;
  // Candidate-pair reduction, group shape, stitch merges, and the sampled
  // missed-pair estimate (see cluster::LshStats).
  cluster::LshStats stats;
  // Fraction of unique pages whose content label matches the exact
  // pipeline's; -1 unless ClassifierConfig::validate_lsh ran the exact
  // pipeline alongside.
  double label_agreement = -1.0;
};

struct ClassificationResult {
  std::vector<ClassifiedTuple> tuples;
  std::size_t unique_pages = 0;
  std::size_t clusters = 0;
  LshSummary lsh;
  // Fraction of content-bearing tuples that received a label (the paper
  // classifies 97.6–99.9%).
  double labeled_fraction = 0.0;
  // NaN page distances the HAC clamped to 1.0 (should stay 0; a non-zero
  // count points at a degenerate feature extraction).
  std::size_t nan_distances = 0;
  // Distance-matrix footprint of the coarse HAC step (0 when clustering
  // was skipped: fewer than two unique pages, or more than max_unique).
  std::size_t pair_distances = 0;
  std::size_t matrix_bytes = 0;
};

// `records` and `verdicts` are the full scan output; `pages` are the
// acquisition results for the kUnknown subset. `onpath_injected`, when
// given, flags records (by index) whose answers were proven to be on-path
// injections by the §4.2 verification experiment; those are labeled
// Censorship regardless of content.
ClassificationResult classify_responses(
    const std::vector<scan::TupleRecord>& records,
    const std::vector<AcquiredPage>& pages,
    const ClassifierConfig& config = {},
    const std::vector<char>* onpath_injected = nullptr);

}  // namespace dnswild::core
