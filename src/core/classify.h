// HTTP response classification (§3.6, §4.2, Table 5).
//
// Deduplicates acquired pages by body, clusters the unique representations
// with the seven-feature HAC (coarse step), labels each cluster from its
// exemplar (encoding the paper's manual cluster labels as content rules),
// and propagates labels back to every tuple. Tuples whose DNS layer already
// proves injection (dual responses, §4.2) are labeled Censorship before any
// content is consulted — the forged Chinese answers mostly serve no HTTP.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/hac.h"
#include "core/acquisition.h"
#include "core/domains.h"
#include "scan/domain_scan.h"

namespace dnswild::core {

enum class Label {
  kBlocking,
  kCensorship,
  kHttpError,
  kLogin,
  kMisc,
  kParking,
  kSearch,
  kUnclassified,  // no HTTP payload and no DNS-layer signal
};
inline constexpr int kLabelCount = 8;

std::string_view label_name(Label label) noexcept;

// Content-rule labeling of a single page (the encoded analyst judgment).
Label label_page(int status, std::string_view body);

struct ClassifiedTuple {
  std::size_t record_index = 0;
  Label label = Label::kUnclassified;
  int cluster = -1;  // coarse cluster id; -1 when content was absent
};

struct ClassifierConfig {
  double coarse_cut = 0.25;      // HAC cut threshold for the coarse step
  std::size_t max_unique = 6000; // safety bound for the distance matrix
  // Workers for feature extraction and the distance-matrix fill; 0 selects
  // hardware_concurrency. Results are byte-identical for every value
  // (tests/test_parallel_cluster.cpp pins this).
  unsigned threads = 0;
  // Optional registry for the clustering/labeling stage spans and the
  // "cluster.*" counters. Not owned; the pipeline points this at the
  // world's registry.
  obs::Registry* registry = nullptr;
};

struct ClassificationResult {
  std::vector<ClassifiedTuple> tuples;
  std::size_t unique_pages = 0;
  std::size_t clusters = 0;
  // Fraction of content-bearing tuples that received a label (the paper
  // classifies 97.6–99.9%).
  double labeled_fraction = 0.0;
  // NaN page distances the HAC clamped to 1.0 (should stay 0; a non-zero
  // count points at a degenerate feature extraction).
  std::size_t nan_distances = 0;
  // Distance-matrix footprint of the coarse HAC step (0 when clustering
  // was skipped: fewer than two unique pages, or more than max_unique).
  std::size_t pair_distances = 0;
  std::size_t matrix_bytes = 0;
};

// `records` and `verdicts` are the full scan output; `pages` are the
// acquisition results for the kUnknown subset. `onpath_injected`, when
// given, flags records (by index) whose answers were proven to be on-path
// injections by the §4.2 verification experiment; those are labeled
// Censorship regardless of content.
ClassificationResult classify_responses(
    const std::vector<scan::TupleRecord>& records,
    const std::vector<AcquiredPage>& pages,
    const ClassifierConfig& config = {},
    const std::vector<char>* onpath_injected = nullptr);

}  // namespace dnswild::core
