#include "core/dnssec_study.h"

#include <algorithm>

#include "dns/message.h"
#include "util/rng.h"

namespace dnswild::core {

namespace {

bool any_legitimate(const std::vector<net::Ipv4>& answer,
                    const std::vector<net::Ipv4>& legitimate) {
  for (const net::Ipv4 ip : answer) {
    if (std::binary_search(legitimate.begin(), legitimate.end(), ip)) {
      return true;
    }
  }
  return false;
}

}  // namespace

DnssecOutcome run_dnssec_experiment(
    net::World& world, const resolver::AuthRegistry& registry,
    const std::vector<net::Ipv4>& resolvers,
    const std::vector<std::string>& domains,
    const DnssecStudyConfig& config) {
  DnssecOutcome outcome;
  util::Rng rng(config.seed);

  for (const std::string& domain : domains) {
    const auto name = dns::Name::parse(domain);
    if (!name) continue;
    const std::vector<net::Ipv4> legitimate = registry.all_views(domain);
    const bool signed_zone = registry.dnssec_enabled(domain);

    for (const net::Ipv4 resolver : resolvers) {
      dns::Message query = dns::Message::make_query(
          static_cast<std::uint16_t>(rng.next()), *name, dns::RType::kA);
      net::UdpPacket packet;
      packet.src = config.client_ip;
      packet.src_port = 52000;
      packet.dst = resolver;
      packet.dst_port = 53;
      packet.payload = query.encode();

      // Replies arrive in latency order; an injected forgery precedes the
      // legitimate answer (§4.2).
      std::vector<dns::Message> responses;
      for (const auto& reply : world.send_udp(packet)) {
        auto response = dns::Message::decode(reply.packet.payload);
        if (response && response->header.qr &&
            response->header.id == query.header.id) {
          responses.push_back(*std::move(response));
        }
      }
      if (responses.empty()) continue;
      ++outcome.queries;
      if (responses.size() > 1) ++outcome.injected;

      const auto poisoned = [&](const dns::Message& accepted) {
        const auto ips = accepted.answer_ips();
        return !ips.empty() && !any_legitimate(ips, legitimate);
      };

      // Naive client: first response wins the open transaction.
      if (poisoned(responses.front())) ++outcome.naive_poisoned;

      if (!signed_zone) {
        // Without deployment knowledge there is nothing to insist on (§5
        // precondition ii): the validating client degrades to naive.
        if (poisoned(responses.front())) {
          ++outcome.validating_fallback_poisoned;
        }
        continue;
      }
      // Validating client: drop everything unvalidated, accept the first
      // AD-carrying response, however late it arrives.
      const auto validated = std::find_if(
          responses.begin(), responses.end(),
          [](const dns::Message& response) { return response.header.ad; });
      if (validated == responses.end()) {
        ++outcome.validating_unavailable;
      } else if (poisoned(*validated)) {
        ++outcome.validating_poisoned;
      }
    }
  }
  return outcome;
}

}  // namespace dnswild::core
