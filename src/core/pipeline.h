// End-to-end manipulation study (Fig. 3's processing chain).
//
// Orchestrates the six stages: ❶ the resolver population comes in from an
// Internet-wide scan, ❷ the domain scan queries the 155-domain set (plus
// ground truth) at every resolver, ❸ prefiltering sorts out legitimate
// tuples, ❹ acquisition fetches content for the unknown remainder, ❺/❻
// clustering and labeling classify it, and the drill-down reports (§4.1,
// §4.2, Table 5, Fig. 4, §4.3) are computed from the labeled tuples.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/acquisition.h"
#include "core/casestudies.h"
#include "core/classify.h"
#include "core/degradation.h"
#include "core/domains.h"
#include "core/modifications.h"
#include "core/prefilter.h"
#include "net/world.h"
#include "obs/metrics.h"
#include "resolver/authns.h"
#include "scan/retry.h"

namespace dnswild::core {

struct PipelineConfig {
  net::Ipv4 scanner_ip;                      // domain-scan source
  net::Ipv4 vantage_ip;                      // HTTP/TLS acquisition source
  std::uint64_t seed = 0;
  double scan_spread_hours = 0.0;            // world-clock advance per scan
  unsigned scan_threads = 0;                 // domain-scan workers; 0 = auto
  // In-flight window for the domain scan's virtual-time event core
  // (DESIGN.md §11); affects only virtual-time accounting, never records.
  std::uint32_t scan_max_in_flight = 65536;
  PrefilterConfig prefilter;
  ClassifierConfig classifier;  // classifier.threads drives the parallel
                                // clustering stage (0 = auto), mirroring
                                // scan_threads for the scan plane

  // Unified retry/backoff policies (DESIGN.md §9). Unset policy seeds
  // default from `seed`.
  scan::RetryPolicy domain_scan_retry;   // per (resolver, domain) probe
  scan::RetryPolicy acquisition_retry;   // re-resolutions + TCP connects
  // §4.2 verification: attempts + 1 distinct non-resolver addresses are
  // probed per (resolver /24, domain) experiment — the former hardcoded 3.
  scan::RetryPolicy verification_retry{.attempts = 2};
  StageErrorBudget error_budget;
};

// Per-category prefiltering yields (§4.1).
struct CategoryPrefilterRow {
  SiteCategory category = SiteCategory::kMisc;
  std::uint64_t tuples = 0;
  double legitimate_pct = 0.0;
  double no_answer_pct = 0.0;
  double unknown_pct = 0.0;
};

// Table 5: avg / max share of suspicious resolvers per label per category.
struct Table5Cell {
  double avg_pct = 0.0;
  double max_pct = 0.0;
};
struct Table5 {
  // [label][category-order-index] per DomainSet::table5_categories().
  std::vector<std::array<Table5Cell, kLabelCount>> columns;
};

// Behavioural oddities of §4.1.
struct Sec41Stats {
  std::uint64_t suspicious_resolvers = 0;  // >= 1 unknown tuple
  std::uint64_t self_ip_any = 0;           // own address for >= 1 domain
  std::uint64_t self_ip_everywhere = 0;    // own address for >= 75% of set
  std::uint64_t same_set_multi_domain = 0; // same answer set for > 1 domain
  std::uint64_t static_single_ip = 0;      // one address for every domain
  std::uint64_t ns_only = 0;               // NS referrals only
};

struct StudyReport {
  std::vector<net::Ipv4> resolvers;
  std::vector<StudyDomain> domains;  // domain_index order (GT appended)
  std::vector<scan::TupleRecord> records;
  std::vector<TupleVerdict> verdicts;
  std::vector<AcquiredPage> pages;
  std::vector<GroundTruthPage> ground_truth;
  ClassificationResult classification;

  PrefilterStats prefilter_stats;
  std::vector<CategoryPrefilterRow> prefilter_by_category;
  Sec41Stats sec41;
  Table5 table5;
  double http_payload_fraction = 0.0;  // of unknown tuples (88.9% in §4.2)
  CensorshipReport censorship;
  CaseStudyReport cases;
  GeoHistogram social_geo;  // Facebook + Twitter + YouTube (Fig. 4)
  ModificationReport modifications;  // fine-grained diffs (§3.6)

  // Graceful-degradation log: stages that breached their error budget or
  // threw, with the run still completing on partial data. Empty on a
  // healthy run.
  std::vector<StageDegradation> degradations;

  // Set by Pipeline::run; must outlive the report (the world's AsDb does).
  const net::AsDb* asdb = nullptr;

  // Snapshot of the world's registry taken when the run finished: stage
  // spans (one per Fig. 3 stage, with tuple in/out counts), the traffic
  // plane's "net.*" counters, and every scanner/cluster tally. Serialize
  // with metrics.to_json() / metrics.dump_json(); masked serialization is
  // byte-identical across thread counts (DESIGN.md §8).
  obs::Snapshot metrics;

  // Snapshot of the world's per-/20 telemetry plane at the same instant:
  // where probes, timeouts, fault hits, rate limiting, and rebind churn
  // landed (DESIGN.md §13). Serialize with prefixes.to_json(); feed two
  // rounds to obs::changed_prefixes for a delta-rescan target list.
  obs::PrefixTable prefixes;

  StudyData view() const;
};

class Pipeline {
 public:
  Pipeline(net::World& world, const resolver::AuthRegistry& registry,
           PipelineConfig config);

  // Runs the full chain for the given open-resolver population.
  StudyReport run(const std::vector<net::Ipv4>& resolvers,
                  const DomainSet& domains);

 private:
  // The §4.2 verification experiment: for suspicious answers without
  // content, probe addresses in the resolver's /16 that are NOT known
  // resolvers with the same query; answers arriving anyway prove an
  // on-path injector (the Great-Firewall signature). Returns one flag per
  // record.
  std::vector<char> detect_onpath_injection(const StudyReport& report);

  void compute_sec41(StudyReport& report) const;
  void compute_table5(StudyReport& report) const;

  net::World& world_;
  const resolver::AuthRegistry& registry_;
  PipelineConfig config_;
};

}  // namespace dnswild::core
