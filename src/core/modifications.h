// Fine-grained page-modification analysis (§3.6, second clustering stage).
//
// The coarse clustering groups whole page classes; this pass hunts the
// cases where an adversary serves a *known* page with a small edit — an
// injected <script>, an added banner <img>, a stripped ad slot. For every
// unknown response that still resembles its domain's ground truth, the tag
// sequences are diffed (LCS), and the resulting add/remove multisets are
// clustered by Jaccard distance so one injection campaign surfaces as one
// cluster regardless of which pages it touched.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/casestudies.h"

namespace dnswild::core {

struct ModificationCluster {
  // Representative delta, as tag names with multiplicities ("script",
  // "img x2", ...).
  std::vector<std::string> added;
  std::vector<std::string> removed;
  std::uint64_t tuples = 0;     // tuples carrying this modification
  std::uint64_t resolvers = 0;  // distinct resolvers serving it
  std::string example_domain;   // one affected domain
};

struct ModificationConfig {
  // A page qualifies when it is this close to its ground truth (the
  // modification must be small for the diff to be meaningful).
  double gt_distance_threshold = 0.28;
  // Deltas larger than this are whole-page rewrites, not modifications.
  std::size_t max_changes = 25;
  // HAC cut over delta Jaccard distance.
  double delta_cut = 0.30;
};

struct ModificationReport {
  std::uint64_t compared_pages = 0;  // unknown pages with usable GT
  std::uint64_t modified_pages = 0;  // pages with a small non-empty delta
  std::vector<ModificationCluster> clusters;  // sorted by tuple count desc
};

ModificationReport find_modifications(const StudyData& data,
                                      const ModificationConfig& config = {});

}  // namespace dnswild::core
