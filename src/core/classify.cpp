#include "core/classify.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "cluster/distance.h"
#include "http/html.h"
#include "obs/span.h"
#include "scan/executor.h"
#include "util/strings.h"

namespace dnswild::core {

std::string_view label_name(Label label) noexcept {
  switch (label) {
    case Label::kBlocking: return "Blocking";
    case Label::kCensorship: return "Censorship";
    case Label::kHttpError: return "HTTP Error";
    case Label::kLogin: return "Login";
    case Label::kMisc: return "Misc.";
    case Label::kParking: return "Parking";
    case Label::kSearch: return "Search";
    case Label::kUnclassified: return "Unclassified";
  }
  return "?";
}

Label label_page(int status, std::string_view body) {
  // Censorship outranks the HTTP status: some landing pages use 403.
  if (util::icontains(body, "blocked by the order of")) {
    return Label::kCensorship;
  }
  if (status >= 400) return Label::kHttpError;
  if (util::icontains(body, "unsuitable content") ||
      util::icontains(body, "blocked by your internet provider") ||
      util::icontains(body, "malware distribution domain") ||
      util::icontains(body, "block-notice")) {
    return Label::kBlocking;
  }
  if (util::icontains(body, "domain may be for sale") ||
      util::icontains(body, "parked domain")) {
    return Label::kParking;
  }
  if (util::icontains(body, "results for") &&
      util::icontains(body, "name=\"q\"")) {
    return Label::kSearch;
  }
  if (util::icontains(body, "type=\"password\"")) {
    // Router logins, captive portals, webmail — and phishing kits, which
    // Table 5 also files under content categories; the §4.3 detectors make
    // the finer call.
    return Label::kLogin;
  }
  if (body.empty()) return Label::kUnclassified;
  return Label::kMisc;
}

namespace {

// Content label per cluster of a partition: each cluster is labeled from
// its largest exemplar (most content to judge), ties toward the earlier
// unique page.
std::vector<Label> partition_labels(
    const std::vector<const AcquiredPage*>& exemplars,
    const std::vector<int>& cluster_of, std::size_t clusters) {
  std::vector<Label> labels(clusters, Label::kUnclassified);
  std::vector<std::size_t> best(clusters, 0);
  std::vector<bool> seen(clusters, false);
  for (std::size_t u = 0; u < exemplars.size(); ++u) {
    const auto c = static_cast<std::size_t>(cluster_of[u]);
    if (!seen[c] || exemplars[u]->body.size() > exemplars[best[c]]->body.size()) {
      best[c] = u;
      seen[c] = true;
    }
  }
  for (std::size_t c = 0; c < clusters; ++c) {
    if (!seen[c]) continue;
    labels[c] = label_page(exemplars[best[c]]->status, exemplars[best[c]]->body);
  }
  return labels;
}

std::size_t partition_size(const std::vector<int>& cluster_of) {
  return cluster_of.empty()
             ? 0
             : static_cast<std::size_t>(*std::max_element(
                   cluster_of.begin(), cluster_of.end())) +
                   1;
}

}  // namespace

ClassificationResult classify_responses(
    const std::vector<scan::TupleRecord>& records,
    const std::vector<AcquiredPage>& pages, const ClassifierConfig& config,
    const std::vector<char>* onpath_injected) {
  ClassificationResult result;

  // Dedup + coarse clustering form the Fig. 3 "clustering" stage; the
  // label propagation below is the "labeling" stage. Both spans only exist
  // when the caller wired a registry in.
  std::optional<obs::Span> clustering_span;
  if (config.registry != nullptr) {
    clustering_span.emplace(*config.registry, "stage.clustering");
    clustering_span->items_in(pages.size());
  }

  // Deduplicate bodies: the same landing page is served to millions of
  // tuples, so the clustering runs on unique representations only.
  std::unordered_map<std::uint64_t, std::size_t> unique_index;
  std::vector<const AcquiredPage*> exemplars;
  std::vector<std::size_t> page_to_unique(pages.size());
  for (std::size_t i = 0; i < pages.size(); ++i) {
    const AcquiredPage& page = pages[i];
    const auto [it, inserted] =
        unique_index.emplace(page.body_hash, exemplars.size());
    if (inserted) exemplars.push_back(&page);
    page_to_unique[i] = it->second;
  }
  result.unique_pages = exemplars.size();

  // Coarse clustering over unique pages. One worker pool serves the
  // per-exemplar feature extraction and both clustering modes; every pass
  // shards deterministically, so labels are byte-identical for every
  // thread count. The pool is clamped against oversharding: fanning 160
  // pages over 8 threads on a 1-core box costs more in wakeups than the
  // features cost to extract.
  const std::size_t n = exemplars.size();
  const bool lsh_mode =
      config.mode == ClusterMode::kLsh ||
      (config.mode == ClusterMode::kAuto && n >= config.lsh_crossover);
  std::vector<int> unique_cluster(n, 0);
  if (n > 1 && (lsh_mode || n <= config.max_unique)) {
    scan::ParallelExecutor executor(
        scan::ParallelExecutor::effective_threads(config.threads, n, 16));
    executor.attach_metrics(config.registry, "cluster.classify");
    std::vector<http::PageFeatures> features(n);
    executor.run_blocks(
        n, [&](std::uint64_t begin, std::uint64_t end, unsigned) {
          for (std::uint64_t i = begin; i < end; ++i) {
            features[i] = http::extract_features(exemplars[i]->body);
          }
        });
    const auto exact_labels = [&](cluster::HacStats* hac_stats) {
      cluster::HacOptions hac_options;
      hac_options.max_items = config.max_unique;
      hac_options.executor = &executor;
      hac_options.registry = config.registry;
      const auto dendrogram = cluster::hac_average_linkage(
          n,
          [&features](std::size_t a, std::size_t b) {
            return cluster::page_distance(features[a], features[b]);
          },
          hac_options, hac_stats);
      return dendrogram.cut(config.coarse_cut);
    };
    if (lsh_mode) {
      cluster::LshOptions lsh = config.lsh;
      lsh.cut = config.coarse_cut;
      lsh.executor = &executor;
      lsh.registry = config.registry;
      const cluster::LshClustering clustering = cluster::lsh_cluster(
          features,
          [&exemplars](std::size_t i) {
            return std::string_view(exemplars[i]->body);
          },
          lsh);
      unique_cluster = clustering.labels;
      result.lsh.used = true;
      result.lsh.stats = clustering.stats;
      result.pair_distances = clustering.stats.candidate_pairs;
      result.matrix_bytes = clustering.stats.peak_matrix_bytes;
      if (config.validate_lsh && n <= config.max_unique) {
        // Validation run: the exact partition's content labels, page by
        // page, against the LSH partition's.
        cluster::HacStats exact_stats;
        const std::vector<int> exact = exact_labels(&exact_stats);
        result.nan_distances = exact_stats.nan_distances;
        const auto lsh_labels = partition_labels(
            exemplars, unique_cluster, partition_size(unique_cluster));
        const auto ref_labels =
            partition_labels(exemplars, exact, partition_size(exact));
        std::size_t agree = 0;
        for (std::size_t u = 0; u < n; ++u) {
          if (lsh_labels[static_cast<std::size_t>(unique_cluster[u])] ==
              ref_labels[static_cast<std::size_t>(exact[u])]) {
            ++agree;
          }
        }
        result.lsh.label_agreement =
            static_cast<double>(agree) / static_cast<double>(n);
      }
    } else {
      cluster::HacStats hac_stats;
      unique_cluster = exact_labels(&hac_stats);
      result.nan_distances = hac_stats.nan_distances;
      result.pair_distances = hac_stats.pair_distances;
      result.matrix_bytes = hac_stats.matrix_bytes;
    }
  }
  result.clusters = partition_size(unique_cluster);

  if (clustering_span) {
    clustering_span->items_out(result.clusters);
    clustering_span->close();
  }
  std::optional<obs::Span> labeling_span;
  if (config.registry != nullptr) {
    labeling_span.emplace(*config.registry, "stage.labeling");
    labeling_span->items_in(pages.size());
  }

  // Label each cluster from its largest exemplar (most content to judge).
  const std::vector<Label> cluster_label =
      partition_labels(exemplars, unique_cluster, result.clusters);

  // Propagate to tuples; DNS-layer injection evidence wins over content.
  std::size_t content_bearing = 0;
  std::size_t labeled = 0;
  result.tuples.reserve(pages.size());
  for (std::size_t i = 0; i < pages.size(); ++i) {
    const AcquiredPage& page = pages[i];
    ClassifiedTuple tuple;
    tuple.record_index = page.record_index;
    const scan::TupleRecord& record = records.at(page.record_index);
    const bool injected =
        onpath_injected != nullptr &&
        page.record_index < onpath_injected->size() &&
        (*onpath_injected)[page.record_index] != 0;
    if (record.dual_response || injected) {
      tuple.label = Label::kCensorship;  // injected race / verified (§4.2)
    } else if (!page.body.empty() || page.status != 0) {
      const auto c = static_cast<std::size_t>(
          unique_cluster[page_to_unique[i]]);
      tuple.cluster = static_cast<int>(c);
      tuple.label = cluster_label[c];
    }
    if (!page.body.empty() || page.status != 0) {
      ++content_bearing;
      if (tuple.label != Label::kUnclassified) ++labeled;
    }
    result.tuples.push_back(tuple);
  }
  result.labeled_fraction =
      content_bearing == 0
          ? 0.0
          : static_cast<double>(labeled) /
                static_cast<double>(content_bearing);
  if (labeling_span) {
    labeling_span->items_out(labeled);
    labeling_span->close();
  }
  if (config.registry != nullptr) {
    config.registry->counter("cluster.classify.pages").add(pages.size());
    config.registry->counter("cluster.classify.unique_pages")
        .add(result.unique_pages);
    config.registry->counter("cluster.classify.clusters")
        .add(result.clusters);
    config.registry->counter("cluster.classify.labeled").add(labeled);
    config.registry
        ->counter(result.lsh.used ? "cluster.classify.mode_lsh"
                                  : "cluster.classify.mode_exact")
        .add();
  }
  return result;
}

}  // namespace dnswild::core
