#include "core/classify.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "cluster/distance.h"
#include "http/html.h"
#include "obs/span.h"
#include "scan/executor.h"
#include "util/strings.h"

namespace dnswild::core {

std::string_view label_name(Label label) noexcept {
  switch (label) {
    case Label::kBlocking: return "Blocking";
    case Label::kCensorship: return "Censorship";
    case Label::kHttpError: return "HTTP Error";
    case Label::kLogin: return "Login";
    case Label::kMisc: return "Misc.";
    case Label::kParking: return "Parking";
    case Label::kSearch: return "Search";
    case Label::kUnclassified: return "Unclassified";
  }
  return "?";
}

Label label_page(int status, std::string_view body) {
  // Censorship outranks the HTTP status: some landing pages use 403.
  if (util::icontains(body, "blocked by the order of")) {
    return Label::kCensorship;
  }
  if (status >= 400) return Label::kHttpError;
  if (util::icontains(body, "unsuitable content") ||
      util::icontains(body, "blocked by your internet provider") ||
      util::icontains(body, "malware distribution domain") ||
      util::icontains(body, "block-notice")) {
    return Label::kBlocking;
  }
  if (util::icontains(body, "domain may be for sale") ||
      util::icontains(body, "parked domain")) {
    return Label::kParking;
  }
  if (util::icontains(body, "results for") &&
      util::icontains(body, "name=\"q\"")) {
    return Label::kSearch;
  }
  if (util::icontains(body, "type=\"password\"")) {
    // Router logins, captive portals, webmail — and phishing kits, which
    // Table 5 also files under content categories; the §4.3 detectors make
    // the finer call.
    return Label::kLogin;
  }
  if (body.empty()) return Label::kUnclassified;
  return Label::kMisc;
}

ClassificationResult classify_responses(
    const std::vector<scan::TupleRecord>& records,
    const std::vector<AcquiredPage>& pages, const ClassifierConfig& config,
    const std::vector<char>* onpath_injected) {
  ClassificationResult result;

  // Dedup + coarse clustering form the Fig. 3 "clustering" stage; the
  // label propagation below is the "labeling" stage. Both spans only exist
  // when the caller wired a registry in.
  std::optional<obs::Span> clustering_span;
  if (config.registry != nullptr) {
    clustering_span.emplace(*config.registry, "stage.clustering");
    clustering_span->items_in(pages.size());
  }

  // Deduplicate bodies: the same landing page is served to millions of
  // tuples, so the clustering runs on unique representations only.
  std::unordered_map<std::uint64_t, std::size_t> unique_index;
  std::vector<const AcquiredPage*> exemplars;
  std::vector<std::size_t> page_to_unique(pages.size());
  for (std::size_t i = 0; i < pages.size(); ++i) {
    const AcquiredPage& page = pages[i];
    const auto [it, inserted] =
        unique_index.emplace(page.body_hash, exemplars.size());
    if (inserted) exemplars.push_back(&page);
    page_to_unique[i] = it->second;
  }
  result.unique_pages = exemplars.size();

  // Coarse clustering over unique pages. One worker pool serves both the
  // per-exemplar feature extraction and the HAC distance-matrix fill; both
  // passes shard deterministically, so labels are byte-identical for every
  // thread count.
  std::vector<int> unique_cluster(exemplars.size(), 0);
  if (exemplars.size() > 1 && exemplars.size() <= config.max_unique) {
    scan::ParallelExecutor executor(config.threads);
    executor.attach_metrics(config.registry, "cluster.classify");
    std::vector<http::PageFeatures> features(exemplars.size());
    executor.run_blocks(
        exemplars.size(),
        [&](std::uint64_t begin, std::uint64_t end, unsigned) {
          for (std::uint64_t i = begin; i < end; ++i) {
            features[i] = http::extract_features(exemplars[i]->body);
          }
        });
    cluster::HacOptions hac_options;
    hac_options.max_items = config.max_unique;
    hac_options.executor = &executor;
    hac_options.registry = config.registry;
    cluster::HacStats hac_stats;
    const auto dendrogram = cluster::hac_average_linkage(
        exemplars.size(),
        [&features](std::size_t a, std::size_t b) {
          return cluster::page_distance(features[a], features[b]);
        },
        hac_options, &hac_stats);
    result.nan_distances = hac_stats.nan_distances;
    result.pair_distances = hac_stats.pair_distances;
    result.matrix_bytes = hac_stats.matrix_bytes;
    unique_cluster = dendrogram.cut(config.coarse_cut);
  }
  result.clusters =
      unique_cluster.empty()
          ? 0
          : static_cast<std::size_t>(*std::max_element(
                unique_cluster.begin(), unique_cluster.end())) +
                1;

  if (clustering_span) {
    clustering_span->items_out(result.clusters);
    clustering_span->close();
  }
  std::optional<obs::Span> labeling_span;
  if (config.registry != nullptr) {
    labeling_span.emplace(*config.registry, "stage.labeling");
    labeling_span->items_in(pages.size());
  }

  // Label each cluster from its largest exemplar (most content to judge).
  std::vector<Label> cluster_label(result.clusters, Label::kUnclassified);
  std::vector<std::size_t> cluster_best(result.clusters, 0);
  std::vector<bool> cluster_seen(result.clusters, false);
  for (std::size_t u = 0; u < exemplars.size(); ++u) {
    const auto c = static_cast<std::size_t>(unique_cluster[u]);
    if (!cluster_seen[c] ||
        exemplars[u]->body.size() > exemplars[cluster_best[c]]->body.size()) {
      cluster_best[c] = u;
      cluster_seen[c] = true;
    }
  }
  for (std::size_t c = 0; c < result.clusters; ++c) {
    const AcquiredPage* exemplar = exemplars[cluster_best[c]];
    cluster_label[c] = label_page(exemplar->status, exemplar->body);
  }

  // Propagate to tuples; DNS-layer injection evidence wins over content.
  std::size_t content_bearing = 0;
  std::size_t labeled = 0;
  result.tuples.reserve(pages.size());
  for (std::size_t i = 0; i < pages.size(); ++i) {
    const AcquiredPage& page = pages[i];
    ClassifiedTuple tuple;
    tuple.record_index = page.record_index;
    const scan::TupleRecord& record = records.at(page.record_index);
    const bool injected =
        onpath_injected != nullptr &&
        page.record_index < onpath_injected->size() &&
        (*onpath_injected)[page.record_index] != 0;
    if (record.dual_response || injected) {
      tuple.label = Label::kCensorship;  // injected race / verified (§4.2)
    } else if (!page.body.empty() || page.status != 0) {
      const auto c = static_cast<std::size_t>(
          unique_cluster[page_to_unique[i]]);
      tuple.cluster = static_cast<int>(c);
      tuple.label = cluster_label[c];
    }
    if (!page.body.empty() || page.status != 0) {
      ++content_bearing;
      if (tuple.label != Label::kUnclassified) ++labeled;
    }
    result.tuples.push_back(tuple);
  }
  result.labeled_fraction =
      content_bearing == 0
          ? 0.0
          : static_cast<double>(labeled) /
                static_cast<double>(content_bearing);
  if (labeling_span) {
    labeling_span->items_out(labeled);
    labeling_span->close();
  }
  if (config.registry != nullptr) {
    config.registry->counter("cluster.classify.pages").add(pages.size());
    config.registry->counter("cluster.classify.unique_pages")
        .add(result.unique_pages);
    config.registry->counter("cluster.classify.clusters")
        .add(result.clusters);
    config.registry->counter("cluster.classify.labeled").add(labeled);
  }
  return result;
}

}  // namespace dnswild::core
