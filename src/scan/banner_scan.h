// TCP banner collection for device fingerprinting (§2.4).
//
// Connects to FTP(21), SSH(22), Telnet(23), HTTP(80), and HTTPS(443) on
// each resolver and aggregates whatever payload comes back; the analysis
// module matches device tokens against the combined text.
//
// Sharded across a ParallelExecutor: each worker owns a contiguous
// resolver block and results land at their resolver's index, so the
// output is identical for every `threads` value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "http/fetch.h"
#include "net/world.h"
#include "scan/event_core.h"
#include "scan/retry.h"

namespace dnswild::scan {

struct BannerResult {
  net::Ipv4 resolver;
  bool any_tcp_payload = false;
  std::string combined;  // payloads of all responsive ports, concatenated
};

class BannerScanner {
 public:
  // `threads` = 0 picks hardware_concurrency for scan(); results are
  // identical for every value. `retry` re-dials lost SYNs through the
  // shared Fetcher. `max_in_flight` bounds the event core's window (each
  // resolver is one five-step stream, one step per banner port).
  BannerScanner(net::World& world, net::Ipv4 scanner_ip, unsigned threads = 0,
                RetryPolicy retry = {}, std::uint32_t max_in_flight = 65536)
      : world_(world), fetcher_(world, scanner_ip, retry),
        threads_(threads),
        event_core_(&world.metrics(),
                    EventCoreConfig{max_in_flight, 25000.0, 128.0, retry,
                                    "scan.banner.event"},
                    &world.trace()) {}

  // `timings`, when given, receives one entry per banner port in port
  // order (TCP connects are modeled at a nominal handshake RTT).
  BannerResult probe(net::Ipv4 resolver, ProbeTiming* timings = nullptr);
  std::vector<BannerResult> scan(const std::vector<net::Ipv4>& resolvers);

  static constexpr std::uint32_t kBannerPorts = 5;

 private:
  net::World& world_;
  http::Fetcher fetcher_;
  unsigned threads_;
  EventScanCore event_core_;  // coordinator-only: serial virtual-time replay
};

}  // namespace dnswild::scan
