// TCP banner collection for device fingerprinting (§2.4).
//
// Connects to FTP(21), SSH(22), Telnet(23), HTTP(80), and HTTPS(443) on
// each resolver and aggregates whatever payload comes back; the analysis
// module matches device tokens against the combined text.
//
// Sharded across a ParallelExecutor: each worker owns a contiguous
// resolver block and results land at their resolver's index, so the
// output is identical for every `threads` value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "http/fetch.h"
#include "net/world.h"
#include "scan/retry.h"

namespace dnswild::scan {

struct BannerResult {
  net::Ipv4 resolver;
  bool any_tcp_payload = false;
  std::string combined;  // payloads of all responsive ports, concatenated
};

class BannerScanner {
 public:
  // `threads` = 0 picks hardware_concurrency for scan(); results are
  // identical for every value. `retry` re-dials lost SYNs through the
  // shared Fetcher.
  BannerScanner(net::World& world, net::Ipv4 scanner_ip, unsigned threads = 0,
                RetryPolicy retry = {})
      : world_(world), fetcher_(world, scanner_ip, retry),
        threads_(threads) {}

  BannerResult probe(net::Ipv4 resolver);
  std::vector<BannerResult> scan(const std::vector<net::Ipv4>& resolvers);

 private:
  net::World& world_;
  http::Fetcher fetcher_;
  unsigned threads_;
};

}  // namespace dnswild::scan
