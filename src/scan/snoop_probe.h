// Cache-snooping campaign (§2.6).
//
// Sends non-recursive NS queries for 15 TLDs to each resolver every 60
// simulated minutes for 36 hours and records the TTL timelines the
// utilization classifier consumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/world.h"
#include "scan/retry.h"
#include "util/rng.h"

namespace dnswild::scan {

struct SnoopSample {
  std::int32_t minute = 0;       // sample time, minutes from campaign start
  bool responded = false;
  bool cached = false;           // NS records present in the answer
  std::uint32_t remaining_ttl = 0;
};

// Timeline of one (resolver, TLD) pair across the campaign.
struct SnoopSeries {
  std::uint32_t resolver_index = 0;
  std::uint16_t tld_index = 0;
  std::vector<SnoopSample> samples;
};

struct SnoopCampaignConfig {
  net::Ipv4 scanner_ip;
  std::uint64_t seed = 0;
  int interval_minutes = 60;  // hourly (§2.6)
  int duration_hours = 36;
  // Retry/backoff per snoop probe; an unset policy seed defaults from
  // `seed`.
  RetryPolicy retry;
};

class SnoopProber {
 public:
  SnoopProber(net::World& world, SnoopCampaignConfig config)
      : world_(world),
        config_(config),
        retrier_(world, config.retry.seeded(config.seed ^ 0x500bULL)),
        rng_(config.seed) {}

  // Runs the full campaign; advances the world clock as it goes. Returns
  // one series per (resolver, tld), resolver-major.
  std::vector<SnoopSeries> run(const std::vector<net::Ipv4>& resolvers,
                               const std::vector<std::string>& tlds);

 private:
  SnoopSample probe_once(net::Ipv4 resolver, const std::string& tld,
                         std::int32_t minute);

  net::World& world_;
  SnoopCampaignConfig config_;
  Retrier retrier_;
  util::Rng rng_;
};

}  // namespace dnswild::scan
