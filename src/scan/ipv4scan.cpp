#include "scan/ipv4scan.h"

#include <algorithm>
#include <cmath>

#include "scan/encoding.h"
#include "scan/permute.h"
#include "util/hash.h"
#include "util/strings.h"

namespace dnswild::scan {

Ipv4Scanner::Ipv4Scanner(net::World& world, Ipv4ScanConfig config)
    : world_(world),
      config_(std::move(config)),
      retrier_(world, config_.retry.seeded(config_.seed ^ 0x52e7ULL)),
      event_core_(&world.metrics(),
                  EventCoreConfig{config_.max_in_flight, 25000.0, 128.0,
                                  retrier_.policy(), "scan.ipv4.event"},
                  &world.trace()),
      rng_(config_.seed) {}

void Ipv4Scanner::record_summary(const Ipv4ScanSummary& summary) {
  obs::Registry& metrics = world_.metrics();
  metrics.counter("scan.ipv4.probed").add(summary.probed);
  metrics.counter("scan.ipv4.skipped_reserved").add(summary.skipped_reserved);
  metrics.counter("scan.ipv4.skipped_blacklist")
      .add(summary.skipped_blacklist);
  metrics.counter("scan.ipv4.responses").add(summary.responses);
  metrics.counter("scan.ipv4.noerror").add(summary.noerror);
  metrics.counter("scan.ipv4.refused").add(summary.refused);
  metrics.counter("scan.ipv4.servfail").add(summary.servfail);
  metrics.counter("scan.ipv4.nxdomain").add(summary.nxdomain);
  metrics.counter("scan.ipv4.other_rcode").add(summary.other_rcode);
  metrics.counter("scan.ipv4.multihomed").add(summary.multihomed);
  metrics.counter("scan.ipv4.retry_retransmissions")
      .add(summary.retry_retransmissions);
  metrics.counter("scan.ipv4.retry_recovered").add(summary.retry_recovered);
  metrics.counter("scan.ipv4.retry_exhausted").add(summary.retry_exhausted);
}

void Ipv4Scanner::probe_one(net::Ipv4 target, std::uint64_t salt,
                            std::string& prefix, Ipv4ScanSummary& summary,
                            ProbeTiming& timing,
                            obs::PrefixBatch& prefixes) {
  ++summary.probed;

  // Random label prefix defeats caching along the path (§2.2). Prefix and
  // TXID are hashed from the probe identity, not drawn from a stream, so a
  // probe looks the same no matter which worker sends it or when.
  const std::uint64_t key =
      util::hash_words({config_.seed, salt, target.value()});
  prefix.clear();
  prefix.push_back('p');
  util::append_hex32(prefix, static_cast<std::uint32_t>(key));
  const dns::Name probe_name = make_probe_name(prefix, target, config_.zone);
  dns::Message query = dns::Message::make_query(
      static_cast<std::uint16_t>(key >> 32), probe_name, dns::RType::kA);

  net::UdpPacket packet;
  packet.src = config_.scanner_ip;
  packet.src_port = config_.src_port;
  packet.dst = target;
  packet.dst_port = 53;
  packet.payload = query.encode();

  timing.probe_key = net::probe_identity_key(packet);
  RetryOutcome outcome = retrier_.send(std::move(packet));
  timing.transmissions = static_cast<std::uint16_t>(outcome.transmissions);
  timing.responded = !outcome.replies.empty();
  for (const net::UdpReply& reply : outcome.replies) {
    timing.reply_latency_ms = std::max(
        timing.reply_latency_ms, static_cast<std::uint32_t>(reply.latency_ms));
  }
  summary.retry_retransmissions +=
      static_cast<std::uint64_t>(outcome.transmissions - 1);
  summary.retry_wait_ms += static_cast<std::uint64_t>(
      std::llround(outcome.waited_seconds * 1000.0));
  if (outcome.exhausted) {
    ++summary.retry_exhausted;
  } else if (outcome.transmissions > 1) {
    ++summary.retry_recovered;
  }
  obs::RcodeClass rclass = obs::RcodeClass::kOther;
  for (const net::UdpReply& reply : outcome.replies) {
    const auto response = dns::Message::decode(reply.packet.payload);
    if (!response || !response->header.qr) continue;
    if (response->header.id != query.header.id) continue;  // stray datagram
    if (response->questions.empty()) continue;
    // Recover the probed host from the echoed name: authoritative even when
    // the reply's source address differs (multi-homed hosts, proxies).
    const auto echoed_target =
        target_from_probe_name(response->questions.front().name);
    if (!echoed_target || *echoed_target != target) continue;

    ++summary.responses;
    if (reply.packet.src != target) ++summary.multihomed;
    const dns::RCode rcode = response->header.rcode;
    summary.responders.emplace_back(target, rcode);
    switch (rcode) {
      case dns::RCode::kNoError:
        ++summary.noerror;
        summary.noerror_targets.push_back(target);
        rclass = obs::RcodeClass::kNoError;
        break;
      case dns::RCode::kRefused:
        ++summary.refused;
        rclass = obs::RcodeClass::kRefused;
        break;
      case dns::RCode::kServFail:
        ++summary.servfail;
        rclass = obs::RcodeClass::kServFail;
        break;
      case dns::RCode::kNxDomain:
        ++summary.nxdomain;
        rclass = obs::RcodeClass::kNxDomain;
        break;
      default: ++summary.other_rcode; break;
    }
    break;  // first matching response decides the status for this target
  }
  prefixes.record_probe(target.value(), timing.responded, rclass,
                        static_cast<std::uint32_t>(outcome.transmissions - 1));
}

void Ipv4Scanner::probe_block(const std::vector<net::Ipv4>& targets,
                              std::uint64_t begin, std::uint64_t end,
                              std::uint64_t salt, bool check_reserved,
                              Ipv4ScanSummary& shard,
                              std::vector<ProbeTiming>& timings) {
  std::string prefix;
  prefix.reserve(16);
  obs::PrefixBatch prefixes(world_.prefix_telemetry());
  for (std::uint64_t i = begin; i < end; ++i) {
    const net::Ipv4 target = targets[i];
    if (check_reserved && net::is_reserved(target)) {
      ++shard.skipped_reserved;
      timings[i].transmissions = 0;  // never admitted to the wire
      continue;
    }
    if (config_.blacklist != nullptr && config_.blacklist->contains(target)) {
      ++shard.skipped_blacklist;
      timings[i].transmissions = 0;
      continue;
    }
    probe_one(target, salt, prefix, shard, timings[i], prefixes);
  }
}

void Ipv4Scanner::probe_batch(const std::vector<net::Ipv4>& targets,
                              std::uint64_t salt, bool check_reserved,
                              ParallelExecutor& executor,
                              Ipv4ScanSummary& summary) {
  std::vector<Ipv4ScanSummary> shards(executor.threads());
  // Execution pass: workers do the wire work (pure per-probe fates) and
  // record each probe's timing into its slot; the serial event-time replay
  // below turns those timings into the scan's virtual schedule.
  std::vector<ProbeTiming> timings(targets.size());
  {
    net::World::TrafficSection traffic(world_);
    executor.run_blocks(
        targets.size(),
        [&](std::uint64_t begin, std::uint64_t end, unsigned worker) {
          probe_block(targets, begin, end, salt, check_reserved,
                      shards[worker], timings);
        });
  }
  const EventStats events =
      event_core_.run(timings, targets.size(), /*steps_per_stream=*/1);
  summary.virtual_scan_seconds += events.virtual_seconds;
  summary.peak_in_flight =
      std::max(summary.peak_in_flight, events.peak_in_flight);
  summary.event_count += events.events;
  // Exact-size reserve, then append shards in block order: contiguous
  // blocks concatenate back into the enumeration order, so the merged
  // summary is byte-identical for every thread count.
  std::size_t responders = summary.responders.size();
  std::size_t noerror_targets = summary.noerror_targets.size();
  for (const Ipv4ScanSummary& shard : shards) {
    responders += shard.responders.size();
    noerror_targets += shard.noerror_targets.size();
  }
  summary.responders.reserve(responders);
  summary.noerror_targets.reserve(noerror_targets);
  for (Ipv4ScanSummary& shard : shards) {
    summary.probed += shard.probed;
    summary.skipped_reserved += shard.skipped_reserved;
    summary.skipped_blacklist += shard.skipped_blacklist;
    summary.responses += shard.responses;
    summary.noerror += shard.noerror;
    summary.refused += shard.refused;
    summary.servfail += shard.servfail;
    summary.nxdomain += shard.nxdomain;
    summary.other_rcode += shard.other_rcode;
    summary.multihomed += shard.multihomed;
    summary.retry_retransmissions += shard.retry_retransmissions;
    summary.retry_recovered += shard.retry_recovered;
    summary.retry_exhausted += shard.retry_exhausted;
    summary.retry_wait_ms += shard.retry_wait_ms;
    summary.noerror_targets.insert(summary.noerror_targets.end(),
                                   shard.noerror_targets.begin(),
                                   shard.noerror_targets.end());
    summary.responders.insert(summary.responders.end(),
                              shard.responders.begin(),
                              shard.responders.end());
  }
}

Ipv4ScanSummary Ipv4Scanner::scan(const std::vector<net::Cidr>& universe) {
  Ipv4ScanSummary summary;
  UniversePermutation permutation(
      universe, static_cast<std::uint32_t>(rng_.next()), config_.order);
  const std::uint64_t salt = rng_.next();
  const std::uint64_t total = permutation.size();
  // Clock advancement cadence: chunked so churn unfolds across the scan.
  // Each chunk is one traffic phase; the clock only moves at the barriers.
  // Capped at 4M addresses so the per-chunk target/timing buffers stay
  // bounded when sweeping 10M+-resolver universes; below the cap the
  // chunking (and thus every result) is unchanged.
  const std::uint64_t natural_chunk =
      (config_.spread_over_hours > 0.0 && total > 1000) ? total / 64 : total;
  const std::uint64_t chunk =
      std::min(natural_chunk, std::uint64_t{1} << 22);
  // Spread the configured wall-clock window evenly over however many
  // barriers the chunking actually produces (64 when the cap is idle).
  const std::uint64_t barriers =
      chunk < natural_chunk && chunk > 0 ? (total + chunk - 1) / chunk : 64;

  ParallelExecutor executor(config_.threads);
  executor.attach_metrics(&world_.metrics(), "scan.ipv4");
  std::vector<net::Ipv4> targets;
  targets.reserve(static_cast<std::size_t>(std::min(chunk, total)));

  net::Ipv4 next;
  bool more = permutation.next(next);
  while (more) {
    targets.clear();
    while (more && targets.size() < chunk) {
      targets.push_back(next);
      more = permutation.next(next);
    }
    probe_batch(targets, salt, /*check_reserved=*/true, executor, summary);
    if (more && config_.spread_over_hours > 0.0) {
      world_.advance_days(config_.spread_over_hours / 24.0 /
                          static_cast<double>(barriers));
    }
  }
  record_summary(summary);
  return summary;
}

Ipv4ScanSummary Ipv4Scanner::probe_targets(
    const std::vector<net::Ipv4>& targets) {
  Ipv4ScanSummary summary;
  const std::uint64_t salt = rng_.next();
  ParallelExecutor executor(config_.threads);
  executor.attach_metrics(&world_.metrics(), "scan.ipv4");
  probe_batch(targets, salt, /*check_reserved=*/false, executor, summary);
  record_summary(summary);
  return summary;
}

}  // namespace dnswild::scan
