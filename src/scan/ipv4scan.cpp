#include "scan/ipv4scan.h"

#include "scan/encoding.h"
#include "scan/permute.h"
#include "util/strings.h"

namespace dnswild::scan {

Ipv4Scanner::Ipv4Scanner(net::World& world, Ipv4ScanConfig config)
    : world_(world), config_(std::move(config)), rng_(config_.seed) {}

void Ipv4Scanner::probe_one(net::Ipv4 target, Ipv4ScanSummary& summary) {
  ++summary.probed;

  // Random label prefix defeats caching along the path (§2.2).
  const std::string prefix = "p" + util::hex32(
      static_cast<std::uint32_t>(rng_.next()));
  const dns::Name probe_name =
      make_probe_name(prefix, target, config_.zone);
  dns::Message query = dns::Message::make_query(
      static_cast<std::uint16_t>(rng_.next()), probe_name, dns::RType::kA);

  net::UdpPacket packet;
  packet.src = config_.scanner_ip;
  packet.src_port = config_.src_port;
  packet.dst = target;
  packet.dst_port = 53;
  packet.payload = query.encode();

  std::vector<net::UdpReply> replies = world_.send_udp(packet);
  for (int attempt = 0; replies.empty() && attempt < config_.retries;
       ++attempt) {
    replies = world_.send_udp(packet);
  }
  for (const net::UdpReply& reply : replies) {
    const auto response = dns::Message::decode(reply.packet.payload);
    if (!response || !response->header.qr) continue;
    if (response->header.id != query.header.id) continue;  // stray datagram
    if (response->questions.empty()) continue;
    // Recover the probed host from the echoed name: authoritative even when
    // the reply's source address differs (multi-homed hosts, proxies).
    const auto echoed_target =
        target_from_probe_name(response->questions.front().name);
    if (!echoed_target || *echoed_target != target) continue;

    ++summary.responses;
    if (reply.packet.src != target) ++summary.multihomed;
    const dns::RCode rcode = response->header.rcode;
    summary.responders.emplace_back(target, rcode);
    switch (rcode) {
      case dns::RCode::kNoError:
        ++summary.noerror;
        summary.noerror_targets.push_back(target);
        break;
      case dns::RCode::kRefused: ++summary.refused; break;
      case dns::RCode::kServFail: ++summary.servfail; break;
      case dns::RCode::kNxDomain: ++summary.nxdomain; break;
      default: ++summary.other_rcode; break;
    }
    break;  // first matching response decides the status for this target
  }
}

Ipv4ScanSummary Ipv4Scanner::scan(const std::vector<net::Cidr>& universe) {
  Ipv4ScanSummary summary;
  UniversePermutation permutation(
      universe, static_cast<std::uint32_t>(rng_.next()));
  const std::uint64_t total = permutation.size();
  // Clock advancement cadence: chunked so churn unfolds across the scan.
  const std::uint64_t chunk = total > 1000 ? total / 64 : 0;
  std::uint64_t since_advance = 0;

  net::Ipv4 target;
  while (permutation.next(target)) {
    if (net::is_reserved(target)) {
      ++summary.skipped_reserved;
      continue;
    }
    if (config_.blacklist != nullptr && config_.blacklist->contains(target)) {
      ++summary.skipped_blacklist;
      continue;
    }
    probe_one(target, summary);
    if (chunk != 0 && config_.spread_over_hours > 0.0 &&
        ++since_advance >= chunk) {
      since_advance = 0;
      world_.advance_days(config_.spread_over_hours / 24.0 / 64.0);
    }
  }
  return summary;
}

Ipv4ScanSummary Ipv4Scanner::probe_targets(
    const std::vector<net::Ipv4>& targets) {
  Ipv4ScanSummary summary;
  for (const net::Ipv4 target : targets) {
    if (config_.blacklist != nullptr && config_.blacklist->contains(target)) {
      ++summary.skipped_blacklist;
      continue;
    }
    probe_one(target, summary);
  }
  return summary;
}

}  // namespace dnswild::scan
