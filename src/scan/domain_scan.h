// Domain-set scanning (§3.3).
//
// Queries every domain of a category set at every previously-identified
// open resolver, carrying the 25-bit resolver identifier in TXID + source
// port + 0x20 case bits so responses can be attributed even when the
// reply's source address or port differs from the probe's. Dual responses
// to a single query (an on-path injector racing the resolver) are recorded
// with both answer sets — the censorship analysis keys on them (§4.2).
//
// The scan shards *by resolver*: each worker owns a contiguous resolver
// block and walks it domain-major, so every resolver still receives its
// queries in ascending domain order from exactly one thread — which is
// what keeps per-resolver state (cache, drop/latency stream) on the same
// deterministic schedule for any `threads` value. Records land in their
// global (domain-major) slots, so the output layout is thread-invariant.
// Resolver lists must not contain duplicate addresses (scan populations
// never do); duplicates would hand one endpoint to two workers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/types.h"
#include "net/world.h"
#include "obs/prefix_telemetry.h"
#include "scan/encoding.h"
#include "scan/event_core.h"
#include "scan/executor.h"
#include "scan/retry.h"
#include "util/rng.h"

namespace dnswild::scan {

struct DomainScanConfig {
  net::Ipv4 scanner_ip;
  std::uint16_t base_port = 40000;  // 2^9 source ports from here (§3.3)
  std::uint64_t seed = 0;
  // When > 0, the world clock advances across the scan (IP churn during
  // multi-day domain scans is why the paper sees 19.2M distinct suspicious
  // resolver addresses, §4.1). Advances happen at domain-chunk barriers.
  double spread_over_hours = 0.0;
  // Worker threads for the sharded scan; 0 = hardware_concurrency. Results
  // are identical for every value.
  unsigned threads = 0;
  // Retry/backoff policy per (resolver, domain) probe; an unset policy
  // seed defaults from `seed`.
  RetryPolicy retry;
  // In-flight window for the event core: resolvers with an outstanding
  // probe at once (each resolver is one stream — its domains stay strictly
  // ordered). Affects only virtual-time accounting, never records.
  std::uint32_t max_in_flight = 65536;
};

struct TupleRecord {
  std::uint32_t resolver_id = 0;  // index into the scanned resolver list
  std::uint16_t domain_index = 0;
  bool responded = false;
  bool case_fallback = false;  // ID recovered from 0x20 bits (mangled port)
  dns::RCode rcode = dns::RCode::kServFail;
  std::vector<net::Ipv4> ips;  // first response's answer set
  // NOERROR with an empty answer but NS records in the authority section:
  // the resolver effectively denies recursion (§4.1 finds 2.0%).
  bool ns_only = false;

  // Second response racing the first with *different* content: the GFW
  // signature (first forged, second legitimate, §4.2).
  bool dual_response = false;
  std::vector<net::Ipv4> second_ips;
};

class DomainScanner {
 public:
  DomainScanner(net::World& world, DomainScanConfig config)
      : world_(world),
        config_(config),
        retrier_(world, config.retry.seeded(config.seed ^ 0xd03a1ULL)),
        event_core_(&world.metrics(),
                    EventCoreConfig{config.max_in_flight, 25000.0, 128.0,
                                    retrier_.policy(), "scan.domain.event"},
                    &world.trace()),
        rng_(config.seed) {}

  // One record per (resolver, domain) probe, in probe order. resolvers[i]
  // gets resolver_id i; ids must fit the 25-bit scheme.
  std::vector<TupleRecord> scan(const std::vector<net::Ipv4>& resolvers,
                                const std::vector<std::string>& domains);

  // Single probe, exposed for tests. `timing`, when given, receives the
  // probe's wire schedule for the event core; `prefixes`, when given, takes
  // the prefix-telemetry update instead of the shared (mutexed) table.
  TupleRecord probe(net::Ipv4 resolver, std::uint32_t resolver_id,
                    const std::string& domain, std::uint16_t domain_index,
                    ProbeTiming* timing = nullptr,
                    obs::PrefixBatch* prefixes = nullptr);

 private:
  net::World& world_;
  DomainScanConfig config_;
  Retrier retrier_;  // shared by all workers (atomic counters only)
  EventScanCore event_core_;  // coordinator-only: serial virtual-time replay
  util::Rng rng_;
};

}  // namespace dnswild::scan
