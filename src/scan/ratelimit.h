// Token-bucket rate limiter.
//
// The study rate-limits outgoing probes so resolvers and AuthNSes never see
// bursts (§2.2, §5 reports zero abuse complaints over 13 months). In the
// simulation time is virtual, so the limiter's role is to compute how much
// simulated time a campaign consumes; campaigns advance the World clock by
// the limiter's elapsed time, which in turn drives churn during long scans.
#pragma once

#include <cstdint>

namespace dnswild::scan {

class TokenBucket {
 public:
  // rate: tokens (packets) per second; burst: bucket capacity.
  TokenBucket(double rate_per_second, double burst) noexcept
      : rate_(rate_per_second), capacity_(burst), tokens_(burst) {}

  // Consumes one token at the current virtual instant, waiting (virtually)
  // when the bucket is empty. Returns the virtual seconds spent waiting
  // for this packet. Refill is driven off the bucket's own elapsed clock —
  // a caller that never calls advance() sees exactly rate_-paced time, not
  // inflated waits.
  double acquire() noexcept {
    refill();
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return 0.0;
    }
    const double wait = (1.0 - tokens_) / rate_;
    elapsed_ += wait;
    refill();  // the wait itself refilled exactly the deficit
    tokens_ -= 1.0;
    return wait;
  }

  // Charges externally elapsed virtual time (reply latency, retry backoff)
  // to the bucket's clock; the elapsed time refills tokens.
  void advance(double seconds) noexcept {
    elapsed_ += seconds;
    refill();
  }

  double virtual_elapsed_seconds() const noexcept { return elapsed_; }

 private:
  // Converts clock progress since the last refill into tokens, capped at
  // the burst capacity.
  void refill() noexcept {
    if (elapsed_ <= refilled_until_) return;
    tokens_ += (elapsed_ - refilled_until_) * rate_;
    if (tokens_ > capacity_) tokens_ = capacity_;
    refilled_until_ = elapsed_;
  }

  double rate_;
  double capacity_;
  double tokens_;
  double elapsed_ = 0.0;
  double refilled_until_ = 0.0;  // clock value already converted to tokens
};

}  // namespace dnswild::scan
