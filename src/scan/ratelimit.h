// Token-bucket rate limiter.
//
// The study rate-limits outgoing probes so resolvers and AuthNSes never see
// bursts (§2.2, §5 reports zero abuse complaints over 13 months). In the
// simulation time is virtual, so the limiter's role is to compute how much
// simulated time a campaign consumes; campaigns advance the World clock by
// the limiter's elapsed time, which in turn drives churn during long scans.
#pragma once

#include <cstdint>

namespace dnswild::scan {

class TokenBucket {
 public:
  // rate: tokens (packets) per second; burst: bucket capacity.
  TokenBucket(double rate_per_second, double burst) noexcept
      : rate_(rate_per_second), capacity_(burst), tokens_(burst) {}

  // Consumes one token, waiting (virtually) when the bucket is empty.
  // Returns the virtual seconds spent waiting for this packet.
  double acquire() noexcept {
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return 0.0;
    }
    const double deficit = 1.0 - tokens_;
    const double wait = deficit / rate_;
    tokens_ = 0.0;
    elapsed_ += wait;
    return wait;
  }

  // Refills from elapsed virtual time.
  void advance(double seconds) noexcept {
    tokens_ += seconds * rate_;
    if (tokens_ > capacity_) tokens_ = capacity_;
  }

  double virtual_elapsed_seconds() const noexcept { return elapsed_; }

 private:
  double rate_;
  double capacity_;
  double tokens_;
  double elapsed_ = 0.0;
};

}  // namespace dnswild::scan
