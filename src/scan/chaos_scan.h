// CHAOS version fingerprinting scan (§2.4).
//
// Sends version.bind and version.server TXT/CH queries to each known
// resolver and records both answers, feeding the software classifier
// (Table 3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/types.h"
#include "net/world.h"
#include "util/rng.h"

namespace dnswild::scan {

struct ChaosResult {
  net::Ipv4 resolver;
  bool responded = false;
  std::optional<std::string> version_bind;
  std::optional<std::string> version_server;
  dns::RCode rcode_bind = dns::RCode::kServFail;
  dns::RCode rcode_server = dns::RCode::kServFail;
};

class ChaosScanner {
 public:
  ChaosScanner(net::World& world, net::Ipv4 scanner_ip, std::uint64_t seed)
      : world_(world), scanner_ip_(scanner_ip), rng_(seed) {}

  ChaosResult probe(net::Ipv4 resolver);
  std::vector<ChaosResult> scan(const std::vector<net::Ipv4>& resolvers);

 private:
  net::World& world_;
  net::Ipv4 scanner_ip_;
  util::Rng rng_;
};

}  // namespace dnswild::scan
