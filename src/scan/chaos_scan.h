// CHAOS version fingerprinting scan (§2.4).
//
// Sends version.bind and version.server TXT/CH queries to each known
// resolver and records both answers, feeding the software classifier
// (Table 3).
//
// Sharded across a ParallelExecutor: each worker owns a contiguous
// resolver block and results land at their resolver's index, so the
// output is identical for every `threads` value. Probe TXIDs are hashed
// from (seed, resolver, query kind) rather than drawn from a stream, so
// probe() is also safe to call from any worker.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/types.h"
#include "net/world.h"
#include "scan/retry.h"

namespace dnswild::scan {

struct ChaosResult {
  net::Ipv4 resolver;
  bool responded = false;
  std::optional<std::string> version_bind;
  std::optional<std::string> version_server;
  dns::RCode rcode_bind = dns::RCode::kServFail;
  dns::RCode rcode_server = dns::RCode::kServFail;
};

class ChaosScanner {
 public:
  // `threads` = 0 picks hardware_concurrency for scan(); results are
  // identical for every value. An unset retry-policy seed defaults from
  // `seed`.
  ChaosScanner(net::World& world, net::Ipv4 scanner_ip, std::uint64_t seed,
               unsigned threads = 0, RetryPolicy retry = {})
      : world_(world), scanner_ip_(scanner_ip), seed_(seed),
        threads_(threads),
        retrier_(world, retry.seeded(seed ^ 0xc4a05ULL)) {}

  ChaosResult probe(net::Ipv4 resolver);
  std::vector<ChaosResult> scan(const std::vector<net::Ipv4>& resolvers);

 private:
  net::World& world_;
  net::Ipv4 scanner_ip_;
  std::uint64_t seed_;
  unsigned threads_;
  Retrier retrier_;  // shared by all workers (atomic counters only)
};

}  // namespace dnswild::scan
