// CHAOS version fingerprinting scan (§2.4).
//
// Sends version.bind and version.server TXT/CH queries to each known
// resolver and records both answers, feeding the software classifier
// (Table 3).
//
// Sharded across a ParallelExecutor: each worker owns a contiguous
// resolver block and results land at their resolver's index, so the
// output is identical for every `threads` value. Probe TXIDs are hashed
// from (seed, resolver, query kind) rather than drawn from a stream, so
// probe() is also safe to call from any worker.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/types.h"
#include "net/world.h"
#include "scan/event_core.h"
#include "scan/retry.h"

namespace dnswild::scan {

struct ChaosResult {
  net::Ipv4 resolver;
  bool responded = false;
  std::optional<std::string> version_bind;
  std::optional<std::string> version_server;
  dns::RCode rcode_bind = dns::RCode::kServFail;
  dns::RCode rcode_server = dns::RCode::kServFail;
};

class ChaosScanner {
 public:
  // `threads` = 0 picks hardware_concurrency for scan(); results are
  // identical for every value. An unset retry-policy seed defaults from
  // `seed`. `max_in_flight` bounds the event core's window (each resolver
  // is one two-step stream: version.bind then version.server).
  ChaosScanner(net::World& world, net::Ipv4 scanner_ip, std::uint64_t seed,
               unsigned threads = 0, RetryPolicy retry = {},
               std::uint32_t max_in_flight = 65536)
      : world_(world), scanner_ip_(scanner_ip), seed_(seed),
        threads_(threads),
        retrier_(world, retry.seeded(seed ^ 0xc4a05ULL)),
        event_core_(&world.metrics(),
                    EventCoreConfig{max_in_flight, 25000.0, 128.0,
                                    retrier_.policy(), "scan.chaos.event"},
                    &world.trace()) {}

  // `timings`, when given, receives the two probes' wire schedules
  // (timings[0] = version.bind, timings[1] = version.server).
  ChaosResult probe(net::Ipv4 resolver, ProbeTiming* timings = nullptr);
  std::vector<ChaosResult> scan(const std::vector<net::Ipv4>& resolvers);

 private:
  net::World& world_;
  net::Ipv4 scanner_ip_;
  std::uint64_t seed_;
  unsigned threads_;
  Retrier retrier_;  // shared by all workers (atomic counters only)
  EventScanCore event_core_;  // coordinator-only: serial virtual-time replay
};

}  // namespace dnswild::scan
