// Probe-encoding schemes (§2.2, §3.3).
//
// Internet-wide scan: every probe queries prefix.<hex-ip>.<zone>, where
// <hex-ip> is the target address — the response's echoed question reveals
// which host a reply belongs to even when it arrives from a different
// source address (multi-homed hosts / DNS proxies).
//
// Domain scan: the domain set is fixed, so the target resolver is encoded
// as a 25-bit identifier ( ceil(log2(20M)) ): 16 bits in the DNS
// transaction ID, 9 bits in the UDP source port, and — as redundancy
// against devices that answer to a different port — the same 9 bits in the
// 0x20 case pattern of the queried name.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "dns/encoding0x20.h"
#include "dns/message.h"
#include "net/ip.h"

namespace dnswild::scan {

// --- hex-IP scheme (Internet-wide scans) ---------------------------------

// "kx7f2a.c0a80001.<zone>" — prefix is a caller-supplied cache-busting
// token, then the target address in hex.
dns::Name make_probe_name(std::string_view random_prefix, net::Ipv4 target,
                          const dns::Name& zone);

// Recovers the target address from an echoed probe name; nullopt when the
// name does not follow the scheme.
std::optional<net::Ipv4> target_from_probe_name(const dns::Name& name);

// --- 25-bit resolver-ID scheme (domain scans) ------------------------------

inline constexpr unsigned kIdBits = 25;
inline constexpr unsigned kTxidBits = 16;
inline constexpr unsigned kPortBits = 9;
inline constexpr std::uint32_t kMaxResolverId = (1u << kIdBits) - 1;

struct EncodedQuery {
  std::uint16_t txid = 0;
  std::uint16_t src_port = 0;
  dns::Name name;  // case-encoded copy of the queried domain
  unsigned case_bits_used = 0;
};

// Splits `resolver_id` across TXID, source port (base_port + high bits) and
// the name's case pattern. Names with fewer than 9 letters carry as many
// case bits as they can (the port channel stays complete).
EncodedQuery encode_resolver_id(std::uint32_t resolver_id,
                                const dns::Name& domain,
                                std::uint16_t base_port);

struct DecodedId {
  std::uint32_t resolver_id = 0;
  bool used_case_fallback = false;  // port channel was unusable
};

// Recovers the resolver ID from a response: TXID gives the low 16 bits; the
// destination port gives the high 9 when it lies in the scanner's port
// window, otherwise the echoed name's case bits are used (§3.3 redundancy).
std::optional<DecodedId> decode_resolver_id(const dns::Message& response,
                                            std::uint16_t reply_dst_port,
                                            std::uint16_t base_port);

}  // namespace dnswild::scan
