// Scan-order permutations over arbitrary universes.
//
// Real Internet-wide scans permute all of IPv4 with a 32-bit LFSR (§2.2,
// net::Lfsr32). Simulated universes are smaller, so campaigns permute the
// routed address space with the smallest maximal-period LFSR that covers
// it, preserving the property the paper relies on: consecutive probes land
// in unrelated networks, spreading load.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ip.h"

namespace dnswild::scan {

// Fibonacci LFSR of configurable order (2..32) using known primitive-
// polynomial tap sets, so every order yields the full 2^n - 1 period.
class GenericLfsr {
 public:
  GenericLfsr(unsigned order, std::uint32_t seed);

  std::uint32_t next() noexcept;
  std::uint32_t state() const noexcept { return state_; }
  unsigned order() const noexcept { return order_; }

  // Tap mask (bit i-1 set when bit position i is tapped) for an order.
  static std::uint32_t taps_for_order(unsigned order);

 private:
  unsigned order_;
  std::uint32_t mask_;
  std::uint32_t taps_;
  std::uint32_t state_;
};

// Which low-level sequence a permutation walks (DESIGN.md §5 ablation:
// the paper's LFSR spreads consecutive probes across unrelated networks;
// the Sobol/van der Corput order additionally covers the address space
// uniformly at every prefix of the scan, so partial sweeps see an
// unbiased sample — the discovery-rate curves in BENCH_micro.json
// compare the two).
enum class ScanOrder { kLfsr, kSobol };

// Emits every index in [0, count) exactly once, in LFSR order.
class IndexPermutation {
 public:
  IndexPermutation(std::uint64_t count, std::uint32_t seed);

  bool next(std::uint64_t& out) noexcept;

 private:
  std::uint64_t count_;
  GenericLfsr lfsr_;
  std::uint32_t start_;
  std::uint64_t emitted_ = 0;
  bool done_ = false;
};

// Emits every index in [0, count) exactly once, in scrambled 1-D Sobol
// (Gray-code van der Corput) order: a bit-reversed counter over the
// smallest covering power of two, XOR-digital-shifted by the seed. Every
// prefix of the sequence is a low-discrepancy sample of the index space.
class SobolPermutation {
 public:
  SobolPermutation(std::uint64_t count, std::uint32_t seed);

  bool next(std::uint64_t& out) noexcept;

 private:
  std::uint64_t count_;
  unsigned bits_;            // 2^bits_ >= count_
  std::uint64_t period_;     // 2^bits_
  std::uint32_t scramble_;   // XOR digital shift, masked to bits_
  std::uint32_t x_ = 0;      // current Gray-code Sobol state
  std::uint64_t n_ = 0;      // sequence position
};

// Permuted iteration over the union of (non-overlapping) prefixes.
class UniversePermutation {
 public:
  UniversePermutation(std::vector<net::Cidr> prefixes, std::uint32_t seed,
                      ScanOrder order = ScanOrder::kLfsr);

  bool next(net::Ipv4& out) noexcept;
  std::uint64_t size() const noexcept { return total_; }

 private:
  std::vector<net::Cidr> prefixes_;
  std::vector<std::uint64_t> offsets_;  // cumulative start index per prefix
  std::uint64_t total_ = 0;
  ScanOrder order_;
  IndexPermutation lfsr_;
  SobolPermutation sobol_;
};

}  // namespace dnswild::scan
