// Scan-order permutations over arbitrary universes.
//
// Real Internet-wide scans permute all of IPv4 with a 32-bit LFSR (§2.2,
// net::Lfsr32). Simulated universes are smaller, so campaigns permute the
// routed address space with the smallest maximal-period LFSR that covers
// it, preserving the property the paper relies on: consecutive probes land
// in unrelated networks, spreading load.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ip.h"

namespace dnswild::scan {

// Fibonacci LFSR of configurable order (2..32) using known primitive-
// polynomial tap sets, so every order yields the full 2^n - 1 period.
class GenericLfsr {
 public:
  GenericLfsr(unsigned order, std::uint32_t seed);

  std::uint32_t next() noexcept;
  std::uint32_t state() const noexcept { return state_; }
  unsigned order() const noexcept { return order_; }

  // Tap mask (bit i-1 set when bit position i is tapped) for an order.
  static std::uint32_t taps_for_order(unsigned order);

 private:
  unsigned order_;
  std::uint32_t mask_;
  std::uint32_t taps_;
  std::uint32_t state_;
};

// Emits every index in [0, count) exactly once, in LFSR order.
class IndexPermutation {
 public:
  IndexPermutation(std::uint64_t count, std::uint32_t seed);

  bool next(std::uint64_t& out) noexcept;

 private:
  std::uint64_t count_;
  GenericLfsr lfsr_;
  std::uint32_t start_;
  std::uint64_t emitted_ = 0;
  bool done_ = false;
};

// Permuted iteration over the union of (non-overlapping) prefixes.
class UniversePermutation {
 public:
  UniversePermutation(std::vector<net::Cidr> prefixes, std::uint32_t seed);

  bool next(net::Ipv4& out) noexcept;
  std::uint64_t size() const noexcept { return total_; }

 private:
  std::vector<net::Cidr> prefixes_;
  std::vector<std::uint64_t> offsets_;  // cumulative start index per prefix
  std::uint64_t total_ = 0;
  IndexPermutation permutation_;
};

}  // namespace dnswild::scan
