// Internet-wide DNS resolver enumeration (§2.2).
//
// Walks the routed universe in LFSR order, sends one A probe for
// prefix.<hex-ip>.<zone> to each address (skipping reserved space and the
// blacklist), and tallies responses by status code. NOERROR counts every
// host that set that flag regardless of the answer content, matching the
// paper's accounting. Multi-homed hosts — replies whose source differs
// from the probed target — are recovered through the hex-IP encoding.
//
// The scan is sharded across a ParallelExecutor: the enumeration is cut
// into contiguous blocks, one per worker, and shard summaries are merged
// in block order, so the summary is byte-identical for every `threads`
// value. Each probe's random identity (label prefix, TXID) is a pure hash
// of (seed, scan salt, target), never a draw from a shared stream. When
// `spread_over_hours` > 0 the enumeration is chunked and the world clock
// advances at the chunk barriers, so DHCP churn still unfolds *during*
// the scan while the traffic phase itself stays mutation-free.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/message.h"
#include "dns/name.h"
#include "net/world.h"
#include "obs/prefix_telemetry.h"
#include "scan/blacklist.h"
#include "scan/event_core.h"
#include "scan/executor.h"
#include "scan/permute.h"
#include "scan/retry.h"
#include "util/rng.h"

namespace dnswild::scan {

struct Ipv4ScanConfig {
  net::Ipv4 scanner_ip;
  std::uint16_t src_port = 41000;
  dns::Name zone;  // wildcard zone under the scanners' control
  const Blacklist* blacklist = nullptr;
  std::uint64_t seed = 0;
  // Virtual probe rate; when spread_over_hours > 0 the scan advances the
  // world clock so churn happens *during* the scan, as in reality.
  double spread_over_hours = 0.0;
  // Retry/backoff policy per silent target. The paper tunes its send rate
  // for low loss instead of retrying (§5); retries exist for lossy-world
  // experiments and the loss-ablation microbenchmark. An unset policy seed
  // defaults from `seed`.
  RetryPolicy retry;
  // Worker threads for the sharded scan; 0 = hardware_concurrency. Results
  // are identical for every value.
  unsigned threads = 0;
  // In-flight window for the virtual-time event core: how many targets may
  // have an outstanding probe at once. 1 reproduces the old synchronous
  // accounting (timeouts serialize); the default keeps the pipe full.
  // Affects only the virtual-time fields of the summary, never outcomes.
  std::uint32_t max_in_flight = 65536;
  // Scan-order ablation (DESIGN.md §5): the paper's LFSR or the Sobol
  // low-discrepancy order. Per-probe fates are order-independent.
  ScanOrder order = ScanOrder::kLfsr;
};

struct Ipv4ScanSummary {
  std::uint64_t probed = 0;
  std::uint64_t skipped_reserved = 0;
  std::uint64_t skipped_blacklist = 0;
  std::uint64_t responses = 0;

  std::uint64_t noerror = 0;
  std::uint64_t refused = 0;
  std::uint64_t servfail = 0;
  std::uint64_t nxdomain = 0;
  std::uint64_t other_rcode = 0;
  std::uint64_t multihomed = 0;  // responder address != probed target

  // Retry-plane tallies (thread-count invariant: per-probe outcomes are
  // pure hashes, and shards merge in block order).
  std::uint64_t retry_retransmissions = 0;  // extra sends beyond the first
  std::uint64_t retry_recovered = 0;   // silent first send, answered retry
  std::uint64_t retry_exhausted = 0;   // all retransmissions unanswered
  // Virtual backoff/timeout time, in integer milliseconds (rounded per
  // probe) so shard sums stay exact under any merge order.
  std::uint64_t retry_wait_ms = 0;

  // Event-core accounting (thread-count invariant: the simulation is
  // serial over pure per-probe timings). virtual_scan_seconds is the
  // makespan of the paced, windowed event schedule — with max_in_flight=1
  // it degenerates to the old serialized sum of waits.
  double virtual_scan_seconds = 0.0;
  std::uint32_t peak_in_flight = 0;
  std::uint64_t event_count = 0;

  // Targets that answered NOERROR (the "open resolver" population handed to
  // the follow-up campaigns).
  std::vector<net::Ipv4> noerror_targets;
  // All responding targets with their status code.
  std::vector<std::pair<net::Ipv4, dns::RCode>> responders;
};

class Ipv4Scanner {
 public:
  Ipv4Scanner(net::World& world, Ipv4ScanConfig config);

  // Scans the union of `universe` (non-overlapping prefixes).
  Ipv4ScanSummary scan(const std::vector<net::Cidr>& universe);

  // Probes an explicit target list (re-probing known resolvers; used by the
  // churn study §2.5 and the verification scan).
  Ipv4ScanSummary probe_targets(const std::vector<net::Ipv4>& targets);

 private:
  // One probe; `prefix` is a scratch buffer reused across a shard's probes
  // so the per-probe label costs no allocation once warm. `timing` records
  // the probe's wire schedule for the event core; `prefixes` is the block's
  // local telemetry accumulator.
  void probe_one(net::Ipv4 target, std::uint64_t salt, std::string& prefix,
                 Ipv4ScanSummary& summary, ProbeTiming& timing,
                 obs::PrefixBatch& prefixes);
  // Sequential sweep of targets[begin, end) into a shard summary; timing
  // slot i belongs to targets[i] (single writer per slot).
  void probe_block(const std::vector<net::Ipv4>& targets, std::uint64_t begin,
                   std::uint64_t end, std::uint64_t salt, bool check_reserved,
                   Ipv4ScanSummary& shard, std::vector<ProbeTiming>& timings);
  // Fans one batch out across the executor and merges shards in block
  // order (= enumeration order, for any thread count).
  void probe_batch(const std::vector<net::Ipv4>& targets, std::uint64_t salt,
                   bool check_reserved, ParallelExecutor& executor,
                   Ipv4ScanSummary& summary);
  // Publishes the merged (thread-count invariant) tallies as "scan.ipv4.*"
  // registry counters.
  void record_summary(const Ipv4ScanSummary& summary);

  net::World& world_;
  Ipv4ScanConfig config_;
  Retrier retrier_;  // shared by all workers (atomic counters + locals only)
  EventScanCore event_core_;  // coordinator-only: serial virtual-time replay
  util::Rng rng_;  // coordinator-only: permutation seed + per-scan salt
};

}  // namespace dnswild::scan
