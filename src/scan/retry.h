// Campaign-facing names for the unified retry/backoff machinery.
//
// The engine lives in net:: (http::Fetcher sits below this layer and uses
// it too); the scanners and the pipeline speak of scan::RetryPolicy. The
// virtual seconds a RetryOutcome reports are charged into the campaign's
// TokenBucket (scan/ratelimit.h) via charge_budget(), tying retry waits
// into the same virtual clock that paces probe emission.
#pragma once

#include "net/retry.h"
#include "scan/ratelimit.h"

namespace dnswild::scan {

using RetryPolicy = net::RetryPolicy;
using RetryOutcome = net::RetryOutcome;
using Retrier = net::Retrier;

// Charges a probe's retry waits to the campaign's virtual clock: the
// elapsed time both refills the bucket and advances
// virtual_elapsed_seconds(), exactly as if the scanner had idled.
inline void charge_budget(TokenBucket& bucket, const RetryOutcome& outcome) {
  if (outcome.waited_seconds > 0.0) bucket.advance(outcome.waited_seconds);
}

}  // namespace dnswild::scan
