// Scanner blacklist (§2.2).
//
// Networks opt out of the study by mail; the paper excludes 208 ranges and
// 50 individual addresses (20.8 M addresses total) from every scan so weekly
// results stay comparable.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ip.h"

namespace dnswild::scan {

class Blacklist {
 public:
  void add_range(net::Cidr range) { ranges_.push_back(range); }
  void add_address(net::Ipv4 ip) { addresses_.push_back(ip); }

  bool contains(net::Ipv4 ip) const noexcept;

  std::size_t range_count() const noexcept { return ranges_.size(); }
  std::size_t address_count() const noexcept { return addresses_.size(); }

  // Total number of blacklisted addresses (ranges may overlap; counted with
  // multiplicity like the paper's 20,834,166 figure).
  std::uint64_t address_space() const noexcept;

 private:
  std::vector<net::Cidr> ranges_;
  std::vector<net::Ipv4> addresses_;
};

}  // namespace dnswild::scan
