#include "scan/banner_scan.h"

#include "scan/executor.h"

namespace dnswild::scan {

BannerResult BannerScanner::probe(net::Ipv4 resolver) {
  BannerResult result;
  result.resolver = resolver;
  static constexpr std::uint16_t kPorts[] = {21, 22, 23, 80, 443};
  for (const std::uint16_t port : kPorts) {
    const auto payload = fetcher_.banner(resolver, port);
    if (!payload) continue;
    result.any_tcp_payload = true;
    result.combined += *payload;
    result.combined += '\n';
  }
  return result;
}

std::vector<BannerResult> BannerScanner::scan(
    const std::vector<net::Ipv4>& resolvers) {
  std::vector<BannerResult> results(resolvers.size());
  ParallelExecutor executor(threads_);
  executor.attach_metrics(&world_.metrics(), "scan.banner");
  {
    net::World::TrafficSection traffic(world_);
    executor.run_blocks(
        resolvers.size(),
        [&](std::uint64_t begin, std::uint64_t end, unsigned) {
          for (std::uint64_t i = begin; i < end; ++i) {
            results[i] = probe(resolvers[i]);
          }
        });
  }
  std::uint64_t with_payload = 0;
  for (const BannerResult& result : results) {
    with_payload += result.any_tcp_payload ? 1 : 0;
  }
  obs::Registry& metrics = world_.metrics();
  metrics.counter("scan.banner.probed").add(results.size());
  metrics.counter("scan.banner.with_payload").add(with_payload);
  return results;
}

}  // namespace dnswild::scan
