#include "scan/banner_scan.h"

#include "scan/executor.h"
#include "util/hash.h"

namespace dnswild::scan {

namespace {
// Nominal TCP handshake + banner RTT for the virtual schedule; the World
// models TCP connects without a latency stream, so the event core charges
// a flat round trip per responsive port.
constexpr std::uint32_t kTcpBannerRttMs = 40;
}  // namespace

BannerResult BannerScanner::probe(net::Ipv4 resolver, ProbeTiming* timings) {
  BannerResult result;
  result.resolver = resolver;
  static constexpr std::uint16_t kPorts[kBannerPorts] = {21, 22, 23, 80, 443};
  for (std::uint32_t i = 0; i < kBannerPorts; ++i) {
    const std::uint16_t port = kPorts[i];
    const auto payload = fetcher_.banner(resolver, port);
    if (timings != nullptr) {
      timings[i].probe_key = util::hash_words(
          {0x7c9ULL /* tcp */, resolver.value(), port});
      timings[i].transmissions = 1;
      timings[i].responded = payload.has_value();
      timings[i].reply_latency_ms = kTcpBannerRttMs;
    }
    // TCP banners have no rcode; a responsive port classes as kOther.
    world_.prefix_telemetry().record_probe(
        resolver.value(), payload.has_value(), obs::RcodeClass::kOther, 0);
    if (!payload) continue;
    result.any_tcp_payload = true;
    result.combined += *payload;
    result.combined += '\n';
  }
  return result;
}

std::vector<BannerResult> BannerScanner::scan(
    const std::vector<net::Ipv4>& resolvers) {
  std::vector<BannerResult> results(resolvers.size());
  ParallelExecutor executor(threads_);
  executor.attach_metrics(&world_.metrics(), "scan.banner");
  // One five-step stream per resolver: the banner ports in fixed order.
  std::vector<ProbeTiming> timings(resolvers.size() * kBannerPorts);
  {
    net::World::TrafficSection traffic(world_);
    executor.run_blocks(
        resolvers.size(),
        [&](std::uint64_t begin, std::uint64_t end, unsigned) {
          for (std::uint64_t i = begin; i < end; ++i) {
            results[i] = probe(resolvers[i], &timings[i * kBannerPorts]);
          }
        });
  }
  event_core_.run(timings, resolvers.size(), kBannerPorts);
  std::uint64_t with_payload = 0;
  for (const BannerResult& result : results) {
    with_payload += result.any_tcp_payload ? 1 : 0;
  }
  obs::Registry& metrics = world_.metrics();
  metrics.counter("scan.banner.probed").add(results.size());
  metrics.counter("scan.banner.with_payload").add(with_payload);
  return results;
}

}  // namespace dnswild::scan
