#include "scan/encoding.h"

#include "util/strings.h"

namespace dnswild::scan {

dns::Name make_probe_name(std::string_view random_prefix, net::Ipv4 target,
                          const dns::Name& zone) {
  std::vector<std::string> labels;
  labels.emplace_back(random_prefix);
  labels.push_back(util::hex32(target.value()));
  return dns::Name(std::move(labels)).concat(zone);
}

std::optional<net::Ipv4> target_from_probe_name(const dns::Name& name) {
  // Scheme: <prefix>.<hex-ip>.<zone...>: the hex label is the second one.
  const auto& labels = name.labels();
  if (labels.size() < 3) return std::nullopt;
  const auto value = util::parse_hex32(util::lower(labels[1]));
  if (!value) return std::nullopt;
  return net::Ipv4(*value);
}

EncodedQuery encode_resolver_id(std::uint32_t resolver_id,
                                const dns::Name& domain,
                                std::uint16_t base_port) {
  EncodedQuery out;
  out.txid = static_cast<std::uint16_t>(resolver_id & 0xffff);
  const std::uint32_t high = resolver_id >> kTxidBits;  // 9 bits
  out.src_port = static_cast<std::uint16_t>(base_port + high);
  const unsigned capacity =
      static_cast<unsigned>(dns::letter_capacity(domain));
  out.case_bits_used = capacity < kPortBits ? capacity : kPortBits;
  if (auto encoded =
          dns::encode_case_bits(domain, high, out.case_bits_used)) {
    out.name = *std::move(encoded);
  } else {
    out.name = domain;
    out.case_bits_used = 0;
  }
  return out;
}

std::optional<DecodedId> decode_resolver_id(const dns::Message& response,
                                            std::uint16_t reply_dst_port,
                                            std::uint16_t base_port) {
  if (response.questions.empty()) return std::nullopt;
  DecodedId out;
  const std::uint16_t txid = response.header.id;

  std::optional<std::uint32_t> high;
  if (reply_dst_port >= base_port &&
      reply_dst_port < base_port + (1u << kPortBits)) {
    high = static_cast<std::uint32_t>(reply_dst_port - base_port);
  } else {
    // Port channel mangled by the resolver: fall back to the 0x20 bits of
    // the echoed question name.
    const dns::Name& echoed = response.questions.front().name;
    const unsigned capacity =
        static_cast<unsigned>(dns::letter_capacity(echoed));
    const unsigned bits = capacity < kPortBits ? capacity : kPortBits;
    high = dns::decode_case_bits(echoed, bits);
    out.used_case_fallback = true;
  }
  if (!high) return std::nullopt;
  out.resolver_id = (*high << kTxidBits) | txid;
  return out;
}

}  // namespace dnswild::scan
