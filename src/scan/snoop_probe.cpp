#include "scan/snoop_probe.h"

#include "dns/message.h"

namespace dnswild::scan {

SnoopSample SnoopProber::probe_once(net::Ipv4 resolver, const std::string& tld,
                                    std::int32_t minute) {
  SnoopSample sample;
  sample.minute = minute;

  const auto name = dns::Name::parse(tld);
  if (!name) return sample;
  // RD=0: inspect the cache without triggering recursion (§2.6).
  dns::Message query = dns::Message::make_query(
      static_cast<std::uint16_t>(rng_.next()), *name, dns::RType::kNS,
      dns::RClass::kIN, /*rd=*/false);
  net::UdpPacket packet;
  packet.src = config_.scanner_ip;
  packet.src_port = 43000;
  packet.dst = resolver;
  packet.dst_port = 53;
  packet.payload = query.encode();

  const RetryOutcome outcome = retrier_.send(std::move(packet));
  for (const net::UdpReply& reply : outcome.replies) {
    const auto response = dns::Message::decode(reply.packet.payload);
    if (!response || !response->header.qr ||
        response->header.id != query.header.id) {
      continue;
    }
    sample.responded = true;
    for (const auto& rr : response->answers) {
      if (rr.rtype == dns::RType::kNS) {
        sample.cached = true;
        sample.remaining_ttl = rr.ttl;
        break;
      }
    }
    break;
  }
  return sample;
}

std::vector<SnoopSeries> SnoopProber::run(
    const std::vector<net::Ipv4>& resolvers,
    const std::vector<std::string>& tlds) {
  std::vector<SnoopSeries> series;
  series.reserve(resolvers.size() * tlds.size());
  for (std::uint32_t r = 0; r < resolvers.size(); ++r) {
    for (std::uint16_t t = 0; t < tlds.size(); ++t) {
      SnoopSeries entry;
      entry.resolver_index = r;
      entry.tld_index = t;
      entry.samples.reserve(
          static_cast<std::size_t>(config_.duration_hours * 60 /
                                   config_.interval_minutes) +
          1);
      series.push_back(std::move(entry));
    }
  }

  const std::int64_t start_minute = world_.clock().minutes();
  for (std::int32_t minute = 0; minute <= config_.duration_hours * 60;
       minute += config_.interval_minutes) {
    world_.set_time_minutes(start_minute + minute);
    std::size_t slot = 0;
    for (std::uint32_t r = 0; r < resolvers.size(); ++r) {
      for (std::uint16_t t = 0; t < tlds.size(); ++t, ++slot) {
        series[slot].samples.push_back(
            probe_once(resolvers[r], tlds[t], minute));
      }
    }
  }
  return series;
}

}  // namespace dnswild::scan
