#include "scan/event_core.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <queue>

#include "obs/trace.h"
#include "scan/ratelimit.h"

namespace dnswild::scan {

namespace {

// A probe that never answers holds its receive-window slot for the policy
// timeout; policies without a timeout get this grace so fire-and-forget
// scans still retire unanswered streams in bounded virtual time.
constexpr std::uint64_t kUnansweredGraceUs = 1'000'000;

std::uint64_t key_rank(ScanEvent::Kind kind) noexcept {
  return static_cast<std::uint64_t>(kind);
}

struct EventGreater {
  bool operator()(const ScanEvent& a, const ScanEvent& b) const noexcept {
    return event_key_less(b, a);
  }
};

}  // namespace

bool event_key_less(const ScanEvent& a, const ScanEvent& b) noexcept {
  if (a.time_us != b.time_us) return a.time_us < b.time_us;
  if (a.stream != b.stream) return a.stream < b.stream;
  if (a.step != b.step) return a.step < b.step;
  if (a.attempt != b.attempt) return a.attempt < b.attempt;
  return key_rank(a.kind) < key_rank(b.kind);
}

namespace {

// Virtual-time series grid shared by every campaign: 250 ms windows over
// up to ~4.3 virtual minutes; later activity clamps into the last bucket.
constexpr std::uint64_t kSeriesWidthUs = 250'000;
constexpr std::size_t kSeriesBuckets = 1024;

}  // namespace

EventScanCore::EventScanCore(obs::Registry* registry, EventCoreConfig config,
                             obs::TraceRecorder* flight)
    : config_(std::move(config)), flight_(flight) {
  if (flight_ != nullptr) {
    trace_send_id_ = flight_->intern(config_.label + ".send");
    trace_retry_id_ = flight_->intern(config_.label + ".retry");
    trace_timeout_id_ = flight_->intern(config_.label + ".timeout");
    trace_reply_id_ = flight_->intern(config_.label + ".reply");
  }
  if (registry == nullptr) return;
  events_ = &registry->counter(config_.label + ".events");
  wire_sends_ = &registry->counter(config_.label + ".wire_sends");
  retry_events_ = &registry->counter(config_.label + ".retry_events");
  virtual_us_ = &registry->counter(config_.label + ".virtual_us");
  queue_peak_ = &registry->gauge(config_.label + ".queue_peak");
  // The window instruments are shared across campaigns: one in-flight
  // distribution and one peak for the whole run (idempotent registration).
  inflight_peak_ = &registry->gauge("scan.inflight.peak");
  inflight_ = &registry->histogram(
      "scan.inflight", {1, 64, 256, 1024, 4096, 16384, 65536});
  latency_ms_ = &registry->histogram(
      config_.label + ".latency_ms",
      {1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000});
  // The per-window series are shared too, on the same cumulative clock.
  sends_series_ = &registry->series("scan.series.sends", kSeriesWidthUs,
                                    kSeriesBuckets, obs::SeriesMode::kSum);
  retries_series_ = &registry->series("scan.series.retries", kSeriesWidthUs,
                                      kSeriesBuckets, obs::SeriesMode::kSum);
  timeouts_series_ = &registry->series("scan.series.timeouts", kSeriesWidthUs,
                                       kSeriesBuckets, obs::SeriesMode::kSum);
  replies_series_ = &registry->series("scan.series.replies", kSeriesWidthUs,
                                      kSeriesBuckets, obs::SeriesMode::kSum);
  inflight_series_ = &registry->series("scan.series.inflight", kSeriesWidthUs,
                                       kSeriesBuckets, obs::SeriesMode::kMax);
}

EventStats EventScanCore::run(const std::vector<ProbeTiming>& timings,
                              std::uint64_t streams,
                              std::uint32_t steps_per_stream,
                              std::vector<ScanEvent>* trace) {
  EventStats stats;
  if (streams == 0 || steps_per_stream == 0) return stats;

  // Base of this run on the campaign's cumulative virtual timeline; the
  // in-run simulation always starts at zero.
  const std::uint64_t base_us = flight_ != nullptr ? flight_->now_us() : 0;
  const bool record_flight = flight_ != nullptr && flight_->enabled();
  // One lock acquisition for the whole drain instead of one per event.
  std::optional<obs::TraceRecorder::ProbeSession> flight_session;
  if (record_flight) flight_session.emplace(*flight_);

  const std::uint32_t window = std::max<std::uint32_t>(1, config_.max_in_flight);
  const std::uint64_t timeout_us =
      config_.retry.timeout_ms > 0
          ? static_cast<std::uint64_t>(config_.retry.timeout_ms) * 1000
          : kUnansweredGraceUs;

  // Send pacing reuses the campaigns' TokenBucket as the virtual wire
  // clock: the bucket's elapsed time is the instant the last conforming
  // send went out, so syncing it forward to each event's time and asking
  // for one token yields that send's wire timestamp.
  TokenBucket pace(config_.pace_rate_per_sec, config_.pace_burst);
  const auto wire_time = [&pace](std::uint64_t t_us) {
    const double t_s = static_cast<double>(t_us) / 1e6;
    if (t_s > pace.virtual_elapsed_seconds()) {
      pace.advance(t_s - pace.virtual_elapsed_seconds());
    }
    pace.acquire();
    const auto paced_us = static_cast<std::uint64_t>(
        std::llround(pace.virtual_elapsed_seconds() * 1e6));
    return std::max(t_us, paced_us);
  };

  std::priority_queue<ScanEvent, std::vector<ScanEvent>, EventGreater> queue;
  std::uint64_t admitted = 0;
  std::uint32_t in_flight = 0;
  std::uint64_t makespan_us = 0;

  const auto admit = [&](std::uint64_t now_us) {
    while (admitted < streams && in_flight < window) {
      queue.push(ScanEvent{now_us, admitted, 0, 0, ScanEvent::Kind::kSend});
      ++admitted;
      ++in_flight;
      stats.peak_in_flight = std::max(stats.peak_in_flight, in_flight);
    }
  };
  admit(0);

  while (!queue.empty()) {
    const ScanEvent event = queue.top();
    queue.pop();
    ++stats.events;
    stats.peak_queue_depth = std::max<std::uint64_t>(stats.peak_queue_depth,
                                                     queue.size() + 1);
    if (trace != nullptr) trace->push_back(event);

    const ProbeTiming& timing =
        timings[event.stream * steps_per_stream + event.step];
    switch (event.kind) {
      case ScanEvent::Kind::kSend: {
        if (timing.transmissions == 0) {
          // Skipped target: the step retires without a wire send.
          queue.push(ScanEvent{event.time_us, event.stream, event.step,
                               event.attempt, ScanEvent::Kind::kReply});
          break;
        }
        const std::uint64_t wire_us = wire_time(event.time_us);
        ++stats.wire_sends;
        if (event.attempt > 0) ++stats.retry_events;
        if (inflight_ != nullptr) inflight_->observe(in_flight);
        if (sends_series_ != nullptr) {
          (event.attempt == 0 ? sends_series_ : retries_series_)
              ->record(base_us + wire_us, 1);
          inflight_series_->record(base_us + wire_us, in_flight);
        }
        if (record_flight) {
          flight_session->probe(event.attempt == 0 ? obs::TraceKind::kProbeSend
                                            : obs::TraceKind::kProbeRetry,
                         event.attempt == 0 ? trace_send_id_ : trace_retry_id_,
                         base_us + wire_us,
                         static_cast<std::uint32_t>(event.stream),
                         static_cast<std::uint16_t>(event.step),
                         event.attempt);
        }
        if (event.attempt + 1 < timing.transmissions) {
          // This attempt stays silent: the client sits out the timeout and
          // the per-attempt backoff, then retransmits — as a future event,
          // not a blocked worker. The backoff is recomputed from the probe
          // key exactly as Retrier::send charged it.
          const auto backoff_us = static_cast<std::uint64_t>(std::llround(
              config_.retry.backoff_seconds(timing.probe_key,
                                            event.attempt + 1) *
              1e6));
          if (timeouts_series_ != nullptr) {
            timeouts_series_->record(base_us + wire_us + timeout_us, 1);
          }
          if (record_flight) {
            flight_session->probe(obs::TraceKind::kProbeTimeout, trace_timeout_id_,
                           base_us + wire_us + timeout_us,
                           static_cast<std::uint32_t>(event.stream),
                           static_cast<std::uint16_t>(event.step),
                           event.attempt);
          }
          queue.push(ScanEvent{wire_us + timeout_us + backoff_us,
                               event.stream, event.step,
                               static_cast<std::uint16_t>(event.attempt + 1),
                               ScanEvent::Kind::kSend});
        } else {
          // Final attempt: the reply arrives after the fault plane's
          // latency, or the receive window closes at the timeout.
          const std::uint64_t wait_us =
              timing.responded
                  ? static_cast<std::uint64_t>(timing.reply_latency_ms) * 1000
                  : timeout_us;
          queue.push(ScanEvent{wire_us + wait_us, event.stream, event.step,
                               event.attempt, ScanEvent::Kind::kReply});
        }
        break;
      }
      case ScanEvent::Kind::kReply: {
        if (timing.transmissions > 0) {
          // This step's ladder just finished: either the surviving reply
          // arrived or the final attempt's receive window closed.
          const std::uint64_t ts = base_us + event.time_us;
          if (timing.responded) {
            if (replies_series_ != nullptr) replies_series_->record(ts, 1);
            if (latency_ms_ != nullptr) {
              latency_ms_->observe(timing.reply_latency_ms);
            }
            if (record_flight) {
              flight_session->probe(obs::TraceKind::kProbeReply, trace_reply_id_, ts,
                             static_cast<std::uint32_t>(event.stream),
                             static_cast<std::uint16_t>(event.step),
                             event.attempt);
            }
          } else {
            if (timeouts_series_ != nullptr) timeouts_series_->record(ts, 1);
            if (record_flight) {
              flight_session->probe(obs::TraceKind::kProbeTimeout, trace_timeout_id_,
                             ts, static_cast<std::uint32_t>(event.stream),
                             static_cast<std::uint16_t>(event.step),
                             event.attempt);
            }
          }
        }
        makespan_us = std::max(makespan_us, event.time_us);
        if (event.step + 1 < steps_per_stream) {
          // Next probe of this stream: per-destination order preserved.
          queue.push(ScanEvent{event.time_us, event.stream, event.step + 1, 0,
                               ScanEvent::Kind::kSend});
        } else {
          --in_flight;
          ++stats.completed_streams;
          admit(event.time_us);
        }
        break;
      }
    }
  }

  stats.virtual_seconds = static_cast<double>(makespan_us) / 1e6;
  if (flight_ != nullptr) flight_->advance(makespan_us);
  if (events_ != nullptr) {
    events_->add(stats.events);
    wire_sends_->add(stats.wire_sends);
    retry_events_->add(stats.retry_events);
    virtual_us_->add(makespan_us);
    queue_peak_->track_max(static_cast<std::int64_t>(stats.peak_queue_depth));
    inflight_peak_->track_max(static_cast<std::int64_t>(stats.peak_in_flight));
  }
  return stats;
}

}  // namespace dnswild::scan
