#include "scan/chaos_scan.h"

#include "dns/chaos.h"
#include "dns/message.h"

namespace dnswild::scan {

ChaosResult ChaosScanner::probe(net::Ipv4 resolver) {
  ChaosResult result;
  result.resolver = resolver;

  const auto ask = [&](const dns::Name& probe_name,
                       std::optional<std::string>& version_out,
                       dns::RCode& rcode_out) {
    const dns::Message query = dns::make_version_query(
        static_cast<std::uint16_t>(rng_.next()), probe_name);
    net::UdpPacket packet;
    packet.src = scanner_ip_;
    packet.src_port = 42000;
    packet.dst = resolver;
    packet.dst_port = 53;
    packet.payload = query.encode();
    for (const net::UdpReply& reply : world_.send_udp(packet)) {
      const auto response = dns::Message::decode(reply.packet.payload);
      if (!response || !response->header.qr ||
          response->header.id != query.header.id) {
        continue;
      }
      result.responded = true;
      rcode_out = response->header.rcode;
      version_out = dns::extract_version(*response);
      return;
    }
  };

  ask(dns::version_bind_name(), result.version_bind, result.rcode_bind);
  ask(dns::version_server_name(), result.version_server, result.rcode_server);
  return result;
}

std::vector<ChaosResult> ChaosScanner::scan(
    const std::vector<net::Ipv4>& resolvers) {
  std::vector<ChaosResult> results;
  results.reserve(resolvers.size());
  for (const net::Ipv4 resolver : resolvers) {
    results.push_back(probe(resolver));
  }
  return results;
}

}  // namespace dnswild::scan
