#include "scan/chaos_scan.h"

#include <algorithm>

#include "dns/chaos.h"
#include "dns/message.h"
#include "scan/executor.h"
#include "util/hash.h"

namespace dnswild::scan {

ChaosResult ChaosScanner::probe(net::Ipv4 resolver, ProbeTiming* timings) {
  ChaosResult result;
  result.resolver = resolver;

  const auto ask = [&](const dns::Name& probe_name, std::uint64_t which,
                       std::optional<std::string>& version_out,
                       dns::RCode& rcode_out) {
    ProbeTiming* timing = timings != nullptr ? &timings[which] : nullptr;
    // TXID is a pure hash of the probe identity, not a draw from a stream,
    // so concurrent probes never race on scanner state.
    const std::uint16_t txid = static_cast<std::uint16_t>(
        util::hash_words({seed_, resolver.value(), which}));
    const dns::Message query = dns::make_version_query(txid, probe_name);
    net::UdpPacket packet;
    packet.src = scanner_ip_;
    packet.src_port = 42000;
    packet.dst = resolver;
    packet.dst_port = 53;
    packet.payload = query.encode();
    const std::uint64_t probe_key = net::probe_identity_key(packet);
    const RetryOutcome outcome = retrier_.send(std::move(packet));
    if (timing != nullptr) {
      timing->probe_key = probe_key;
      timing->transmissions =
          static_cast<std::uint16_t>(outcome.transmissions);
      timing->responded = !outcome.replies.empty();
      for (const net::UdpReply& reply : outcome.replies) {
        timing->reply_latency_ms =
            std::max(timing->reply_latency_ms,
                     static_cast<std::uint32_t>(reply.latency_ms));
      }
    }
    obs::RcodeClass rclass = obs::RcodeClass::kOther;
    bool matched = false;
    for (const net::UdpReply& reply : outcome.replies) {
      const auto response = dns::Message::decode(reply.packet.payload);
      if (!response || !response->header.qr ||
          response->header.id != query.header.id) {
        continue;
      }
      result.responded = true;
      matched = true;
      rcode_out = response->header.rcode;
      version_out = dns::extract_version(*response);
      break;
    }
    if (matched) {
      switch (rcode_out) {
        case dns::RCode::kNoError: rclass = obs::RcodeClass::kNoError; break;
        case dns::RCode::kRefused: rclass = obs::RcodeClass::kRefused; break;
        case dns::RCode::kServFail:
          rclass = obs::RcodeClass::kServFail;
          break;
        case dns::RCode::kNxDomain:
          rclass = obs::RcodeClass::kNxDomain;
          break;
        default: break;
      }
    }
    world_.prefix_telemetry().record_probe(
        resolver.value(), !outcome.replies.empty(), rclass,
        static_cast<std::uint32_t>(outcome.transmissions - 1));
  };

  ask(dns::version_bind_name(), 0, result.version_bind, result.rcode_bind);
  ask(dns::version_server_name(), 1, result.version_server,
      result.rcode_server);
  return result;
}

std::vector<ChaosResult> ChaosScanner::scan(
    const std::vector<net::Ipv4>& resolvers) {
  std::vector<ChaosResult> results(resolvers.size());
  ParallelExecutor executor(threads_);
  executor.attach_metrics(&world_.metrics(), "scan.chaos");
  // One two-step stream per resolver (bind then server, strictly ordered).
  std::vector<ProbeTiming> timings(resolvers.size() * 2);
  {
    net::World::TrafficSection traffic(world_);
    executor.run_blocks(
        resolvers.size(),
        [&](std::uint64_t begin, std::uint64_t end, unsigned) {
          for (std::uint64_t i = begin; i < end; ++i) {
            results[i] = probe(resolvers[i], &timings[i * 2]);
          }
        });
  }
  event_core_.run(timings, resolvers.size(), /*steps_per_stream=*/2);
  std::uint64_t responded = 0;
  std::uint64_t versions = 0;
  for (const ChaosResult& result : results) {
    responded += result.responded ? 1 : 0;
    versions += (result.version_bind || result.version_server) ? 1 : 0;
  }
  obs::Registry& metrics = world_.metrics();
  metrics.counter("scan.chaos.probed").add(results.size());
  metrics.counter("scan.chaos.responded").add(responded);
  metrics.counter("scan.chaos.with_version").add(versions);
  return results;
}

}  // namespace dnswild::scan
