#include "scan/executor.h"

#include <chrono>

namespace dnswild::scan {

ParallelExecutor::ParallelExecutor(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  thread_count_ = threads;
  errors_.resize(thread_count_);
  pool_.reserve(thread_count_ - 1);
  for (unsigned i = 0; i + 1 < thread_count_; ++i) {
    pool_.emplace_back([this, i] { worker_loop(i); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& thread : pool_) thread.join();
}

void ParallelExecutor::worker_loop(unsigned index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::uint64_t count;
    const std::function<void(std::uint64_t, std::uint64_t, unsigned)>* fn;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      count = job_count_;
      fn = job_fn_;
    }
    const std::uint64_t begin = block_begin(count, index, thread_count_);
    const std::uint64_t end = block_begin(count, index + 1, thread_count_);
    if (begin < end) {
      try {
        (*fn)(begin, end, index);
      } catch (...) {
        errors_[index] = std::current_exception();
      }
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

void ParallelExecutor::attach_metrics(obs::Registry* registry,
                                      std::string_view label) {
  if (registry == nullptr) {
    metric_jobs_ = nullptr;
    metric_items_ = nullptr;
    metric_shards_ = nullptr;
    metric_shard_items_ = nullptr;
    metric_shard_wall_us_ = nullptr;
    return;
  }
  const std::string prefix = std::string(label) + ".executor.";
  metric_jobs_ = &registry->counter(prefix + "jobs");
  metric_items_ = &registry->counter(prefix + "items");
  metric_shards_ =
      &registry->counter(prefix + "shards", obs::Tag::kNondeterministic);
  metric_shard_items_ = &registry->histogram(
      prefix + "shard_items", {1, 10, 100, 1000, 10000, 100000, 1000000},
      obs::Tag::kNondeterministic);
  metric_shard_wall_us_ = &registry->histogram(
      prefix + "shard_wall_us",
      {100, 1000, 10000, 100000, 1000000, 10000000},
      obs::Tag::kNondeterministic);
}

void ParallelExecutor::run_blocks(
    std::uint64_t count,
    const std::function<void(std::uint64_t, std::uint64_t, unsigned)>& fn) {
  if (metric_jobs_ == nullptr) {
    dispatch(count, fn);
    return;
  }
  if (count == 0) return;
  metric_jobs_->add();
  metric_items_->add(count);

  // Per-shard wall clocks land in worker-indexed slots, so the timed wrapper
  // stays race-free; the shared histograms are fed after the barrier.
  std::vector<std::uint64_t> shard_wall_us(thread_count_, 0);
  std::vector<std::uint64_t> shard_items(thread_count_, 0);
  const std::function<void(std::uint64_t, std::uint64_t, unsigned)> timed =
      [&](std::uint64_t begin, std::uint64_t end, unsigned worker) {
        const auto start = std::chrono::steady_clock::now();
        fn(begin, end, worker);
        const auto stop = std::chrono::steady_clock::now();
        shard_wall_us[worker] = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(stop - start)
                .count());
        shard_items[worker] = end - begin;
      };
  dispatch(count, timed);

  for (unsigned worker = 0; worker < thread_count_; ++worker) {
    if (shard_items[worker] == 0) continue;
    metric_shards_->add();
    metric_shard_items_->observe(shard_items[worker]);
    metric_shard_wall_us_->observe(shard_wall_us[worker]);
  }
}

void ParallelExecutor::dispatch(
    std::uint64_t count,
    const std::function<void(std::uint64_t, std::uint64_t, unsigned)>& fn) {
  if (count == 0) return;
  if (thread_count_ == 1) {
    fn(0, count, 0);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_count_ = count;
    job_fn_ = &fn;
    pending_ = thread_count_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();

  // The calling thread works the last block instead of idling.
  const unsigned last = thread_count_ - 1;
  const std::uint64_t begin = block_begin(count, last, thread_count_);
  const std::uint64_t end = count;
  if (begin < end) {
    try {
      fn(begin, end, last);
    } catch (...) {
      errors_[last] = std::current_exception();
    }
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    job_fn_ = nullptr;
  }
  for (std::exception_ptr& error : errors_) {
    if (error) {
      const std::exception_ptr first = error;
      for (std::exception_ptr& e : errors_) e = nullptr;
      std::rethrow_exception(first);
    }
  }
}

}  // namespace dnswild::scan
