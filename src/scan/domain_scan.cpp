#include "scan/domain_scan.h"

#include <stdexcept>

#include "dns/message.h"

namespace dnswild::scan {

TupleRecord DomainScanner::probe(net::Ipv4 resolver,
                                 std::uint32_t resolver_id,
                                 const std::string& domain,
                                 std::uint16_t domain_index) {
  TupleRecord record;
  record.resolver_id = resolver_id;
  record.domain_index = domain_index;

  const auto parsed = dns::Name::parse(domain);
  if (!parsed) throw std::invalid_argument("bad domain: " + domain);
  const EncodedQuery encoded =
      encode_resolver_id(resolver_id, *parsed, config_.base_port);

  dns::Message query =
      dns::Message::make_query(encoded.txid, encoded.name, dns::RType::kA);
  net::UdpPacket packet;
  packet.src = config_.scanner_ip;
  packet.src_port = encoded.src_port;
  packet.dst = resolver;
  packet.dst_port = 53;
  packet.payload = query.encode();

  for (const net::UdpReply& reply : world_.send_udp(packet)) {
    const auto response = dns::Message::decode(reply.packet.payload);
    if (!response || !response->header.qr) continue;
    const auto decoded = decode_resolver_id(
        *response, reply.packet.dst_port, config_.base_port);
    if (!decoded || decoded->resolver_id != resolver_id) continue;

    if (!record.responded) {
      record.responded = true;
      record.case_fallback = decoded->used_case_fallback;
      record.rcode = response->header.rcode;
      record.ips = response->answer_ips();
      if (record.rcode == dns::RCode::kNoError && record.ips.empty()) {
        for (const auto& rr : response->authorities) {
          if (rr.rtype == dns::RType::kNS) {
            record.ns_only = true;
            break;
          }
        }
      }
    } else {
      // A second matching response. Only flag it when the content differs;
      // retransmissions of identical data are not an injection signature.
      const auto ips = response->answer_ips();
      if (ips != record.ips || response->header.rcode != record.rcode) {
        record.dual_response = true;
        record.second_ips = ips;
      }
    }
  }
  return record;
}

std::vector<TupleRecord> DomainScanner::scan(
    const std::vector<net::Ipv4>& resolvers,
    const std::vector<std::string>& domains) {
  if (resolvers.size() > kMaxResolverId + 1) {
    throw std::length_error("resolver list exceeds the 25-bit ID space");
  }
  std::vector<TupleRecord> records;
  records.reserve(resolvers.size() * domains.size());

  const std::uint64_t total = resolvers.size() * domains.size();
  const std::uint64_t chunk = total > 1000 ? total / 64 : 0;
  std::uint64_t sent = 0;

  // Iterate resolver-major so each resolver sees its queries spaced out.
  for (std::uint16_t d = 0; d < domains.size(); ++d) {
    for (std::uint32_t r = 0; r < resolvers.size(); ++r) {
      records.push_back(probe(resolvers[r], r, domains[d], d));
      if (chunk != 0 && config_.spread_over_hours > 0.0 &&
          ++sent % chunk == 0) {
        world_.advance_days(config_.spread_over_hours / 24.0 / 64.0);
      }
    }
  }
  return records;
}

}  // namespace dnswild::scan
