#include "scan/domain_scan.h"

#include <algorithm>
#include <stdexcept>

#include "dns/message.h"

namespace dnswild::scan {

TupleRecord DomainScanner::probe(net::Ipv4 resolver,
                                 std::uint32_t resolver_id,
                                 const std::string& domain,
                                 std::uint16_t domain_index,
                                 ProbeTiming* timing,
                                 obs::PrefixBatch* prefixes) {
  TupleRecord record;
  record.resolver_id = resolver_id;
  record.domain_index = domain_index;

  const auto parsed = dns::Name::parse(domain);
  if (!parsed) throw std::invalid_argument("bad domain: " + domain);
  const EncodedQuery encoded =
      encode_resolver_id(resolver_id, *parsed, config_.base_port);

  dns::Message query =
      dns::Message::make_query(encoded.txid, encoded.name, dns::RType::kA);
  net::UdpPacket packet;
  packet.src = config_.scanner_ip;
  packet.src_port = encoded.src_port;
  packet.dst = resolver;
  packet.dst_port = 53;
  packet.payload = query.encode();

  const std::uint64_t probe_key = net::probe_identity_key(packet);
  const RetryOutcome outcome = retrier_.send(std::move(packet));
  if (timing != nullptr) {
    timing->probe_key = probe_key;
    timing->transmissions = static_cast<std::uint16_t>(outcome.transmissions);
    timing->responded = !outcome.replies.empty();
    for (const net::UdpReply& reply : outcome.replies) {
      timing->reply_latency_ms =
          std::max(timing->reply_latency_ms,
                   static_cast<std::uint32_t>(reply.latency_ms));
    }
  }
  for (const net::UdpReply& reply : outcome.replies) {
    const auto response = dns::Message::decode(reply.packet.payload);
    if (!response || !response->header.qr) continue;
    const auto decoded = decode_resolver_id(
        *response, reply.packet.dst_port, config_.base_port);
    if (!decoded || decoded->resolver_id != resolver_id) continue;

    if (!record.responded) {
      record.responded = true;
      record.case_fallback = decoded->used_case_fallback;
      record.rcode = response->header.rcode;
      record.ips = response->answer_ips();
      if (record.rcode == dns::RCode::kNoError && record.ips.empty()) {
        for (const auto& rr : response->authorities) {
          if (rr.rtype == dns::RType::kNS) {
            record.ns_only = true;
            break;
          }
        }
      }
    } else {
      // A second matching response. Only flag it when the content differs;
      // retransmissions of identical data are not an injection signature.
      const auto ips = response->answer_ips();
      if (ips != record.ips || response->header.rcode != record.rcode) {
        record.dual_response = true;
        record.second_ips = ips;
      }
    }
  }
  obs::RcodeClass rclass = obs::RcodeClass::kOther;
  if (record.responded) {
    switch (record.rcode) {
      case dns::RCode::kNoError: rclass = obs::RcodeClass::kNoError; break;
      case dns::RCode::kRefused: rclass = obs::RcodeClass::kRefused; break;
      case dns::RCode::kServFail: rclass = obs::RcodeClass::kServFail; break;
      case dns::RCode::kNxDomain: rclass = obs::RcodeClass::kNxDomain; break;
      default: break;
    }
  }
  if (prefixes != nullptr) {
    prefixes->record_probe(resolver.value(), !outcome.replies.empty(), rclass,
                           static_cast<std::uint32_t>(outcome.transmissions - 1));
  } else {
    world_.prefix_telemetry().record_probe(
        resolver.value(), !outcome.replies.empty(), rclass,
        static_cast<std::uint32_t>(outcome.transmissions - 1));
  }
  return record;
}

std::vector<TupleRecord> DomainScanner::scan(
    const std::vector<net::Ipv4>& resolvers,
    const std::vector<std::string>& domains) {
  if (resolvers.size() > kMaxResolverId + 1) {
    throw std::length_error("resolver list exceeds the 25-bit ID space");
  }
  const auto resolver_count = static_cast<std::uint32_t>(resolvers.size());
  const auto domain_count = static_cast<std::uint16_t>(domains.size());
  // Records live at their final (domain-major) index from the start, so
  // workers write results straight into place and the output layout never
  // depends on completion order.
  std::vector<TupleRecord> records(static_cast<std::size_t>(resolver_count) *
                                   domain_count);

  const std::uint64_t total =
      static_cast<std::uint64_t>(resolver_count) * domain_count;
  // Clock advancement happens at domain-epoch barriers: each epoch is one
  // traffic phase over a slice of the domain set, mirroring the chunked
  // cadence of the address-space scan.
  const bool spread = config_.spread_over_hours > 0.0 && total > 1000;
  const std::uint16_t epochs =
      spread ? std::min<std::uint16_t>(64, domain_count) : 1;

  ParallelExecutor executor(config_.threads);
  executor.attach_metrics(&world_.metrics(), "scan.domain");
  for (std::uint16_t e = 0; e < epochs; ++e) {
    const auto d_begin = static_cast<std::uint16_t>(
        static_cast<std::uint64_t>(domain_count) * e / epochs);
    const auto d_end = static_cast<std::uint16_t>(
        static_cast<std::uint64_t>(domain_count) * (e + 1) / epochs);
    const std::uint32_t epoch_domains =
        static_cast<std::uint32_t>(d_end - d_begin);
    // Timings are stream-major (resolver-major): one stream per resolver,
    // its epoch's domains as ordered steps — the event core serializes a
    // stream's probes, preserving the per-resolver request order the
    // determinism contract rests on.
    std::vector<ProbeTiming> timings(
        static_cast<std::size_t>(resolver_count) * epoch_domains);
    {
      net::World::TrafficSection traffic(world_);
      executor.run_blocks(
          resolver_count,
          [&](std::uint64_t begin, std::uint64_t end, unsigned) {
            // Each worker owns a resolver block and walks it domain-major,
            // so every resolver sees domains in ascending order regardless
            // of the thread count.
            obs::PrefixBatch prefixes(world_.prefix_telemetry());
            for (std::uint64_t r = begin; r < end; ++r) {
              for (std::uint16_t d = d_begin; d < d_end; ++d) {
                records[static_cast<std::size_t>(d) * resolver_count + r] =
                    probe(resolvers[r], static_cast<std::uint32_t>(r),
                          domains[d], d,
                          &timings[r * epoch_domains + (d - d_begin)],
                          &prefixes);
              }
            }
          });
    }
    if (epoch_domains > 0) {
      event_core_.run(timings, resolver_count, epoch_domains);
    }
    if (spread && e + 1 < epochs) {
      world_.advance_days(config_.spread_over_hours / 24.0 /
                          static_cast<double>(epochs));
    }
  }

  std::uint64_t responded = 0;
  std::uint64_t dual = 0;
  for (const TupleRecord& record : records) {
    responded += record.responded ? 1 : 0;
    dual += record.dual_response ? 1 : 0;
  }
  obs::Registry& metrics = world_.metrics();
  metrics.counter("scan.domain.probes").add(total);
  metrics.counter("scan.domain.responded").add(responded);
  metrics.counter("scan.domain.dual_responses").add(dual);
  return records;
}

}  // namespace dnswild::scan
