#include "scan/permute.h"

#include <algorithm>
#include <stdexcept>

namespace dnswild::scan {

std::uint32_t GenericLfsr::taps_for_order(unsigned order) {
  // Maximal-length Fibonacci tap positions (XAPP052 / standard tables),
  // encoded as a mask with bit (p-1) set for each tapped position p.
  static constexpr std::uint32_t kTaps[33] = {
      0, 0,
      (1u << 1) | (1u << 0),                          // 2: 2,1
      (1u << 2) | (1u << 1),                          // 3: 3,2
      (1u << 3) | (1u << 2),                          // 4: 4,3
      (1u << 4) | (1u << 2),                          // 5: 5,3
      (1u << 5) | (1u << 4),                          // 6: 6,5
      (1u << 6) | (1u << 5),                          // 7: 7,6
      (1u << 7) | (1u << 5) | (1u << 4) | (1u << 3),  // 8: 8,6,5,4
      (1u << 8) | (1u << 4),                          // 9: 9,5
      (1u << 9) | (1u << 6),                          // 10: 10,7
      (1u << 10) | (1u << 8),                         // 11: 11,9
      (1u << 11) | (1u << 5) | (1u << 3) | (1u << 0),   // 12: 12,6,4,1
      (1u << 12) | (1u << 3) | (1u << 2) | (1u << 0),   // 13: 13,4,3,1
      (1u << 13) | (1u << 4) | (1u << 2) | (1u << 0),   // 14: 14,5,3,1
      (1u << 14) | (1u << 13),                          // 15: 15,14
      (1u << 15) | (1u << 14) | (1u << 12) | (1u << 3), // 16: 16,15,13,4
      (1u << 16) | (1u << 13),                          // 17: 17,14
      (1u << 17) | (1u << 10),                          // 18: 18,11
      (1u << 18) | (1u << 5) | (1u << 1) | (1u << 0),   // 19: 19,6,2,1
      (1u << 19) | (1u << 16),                          // 20: 20,17
      (1u << 20) | (1u << 18),                          // 21: 21,19
      (1u << 21) | (1u << 20),                          // 22: 22,21
      (1u << 22) | (1u << 17),                          // 23: 23,18
      (1u << 23) | (1u << 22) | (1u << 21) | (1u << 16),  // 24: 24,23,22,17
      (1u << 24) | (1u << 21),                            // 25: 25,22
      (1u << 25) | (1u << 5) | (1u << 1) | (1u << 0),     // 26: 26,6,2,1
      (1u << 26) | (1u << 4) | (1u << 1) | (1u << 0),     // 27: 27,5,2,1
      (1u << 27) | (1u << 24),                            // 28: 28,25
      (1u << 28) | (1u << 26),                            // 29: 29,27
      (1u << 29) | (1u << 5) | (1u << 3) | (1u << 0),     // 30: 30,6,4,1
      (1u << 30) | (1u << 27),                            // 31: 31,28
      (1u << 31) | (1u << 21) | (1u << 1) | (1u << 0),    // 32: 32,22,2,1
  };
  if (order < 2 || order > 32) {
    throw std::invalid_argument("GenericLfsr: order must be in [2, 32]");
  }
  return kTaps[order];
}

GenericLfsr::GenericLfsr(unsigned order, std::uint32_t seed)
    : order_(order),
      // mask_ initializes before taps_for_order rejects out-of-range
      // orders, so the shift must stay defined for order > 32 too.
      mask_(order >= 32 ? ~std::uint32_t{0} : (1u << order) - 1),
      taps_(taps_for_order(order)),
      state_((seed & mask_) == 0 ? 1 : (seed & mask_)) {}

std::uint32_t GenericLfsr::next() noexcept {
  const std::uint32_t out = state_;
  const std::uint32_t feedback =
      static_cast<std::uint32_t>(__builtin_popcount(state_ & taps_) & 1);
  state_ = ((state_ << 1) | feedback) & mask_;
  return out;
}

IndexPermutation::IndexPermutation(std::uint64_t count, std::uint32_t seed)
    : count_(count),
      lfsr_(
          [count] {
            unsigned order = 2;
            // Smallest order with 2^order - 1 >= count (so indices
            // 0..count-1 are all reachable as state-1).
            while (order < 32 &&
                   ((std::uint64_t{1} << order) - 1) < count) {
              ++order;
            }
            return order;
          }(),
          seed),
      start_(lfsr_.state()) {
  if (count_ == 0) done_ = true;
}

bool IndexPermutation::next(std::uint64_t& out) noexcept {
  while (!done_) {
    const std::uint64_t candidate = static_cast<std::uint64_t>(lfsr_.next()) - 1;
    if (lfsr_.state() == start_) done_ = true;  // full period consumed
    if (candidate < count_) {
      ++emitted_;
      out = candidate;
      return true;
    }
  }
  return false;
}

SobolPermutation::SobolPermutation(std::uint64_t count, std::uint32_t seed)
    : count_(count),
      bits_([count] {
        unsigned bits = 1;
        while (bits < 32 && (std::uint64_t{1} << bits) < count) ++bits;
        return bits;
      }()),
      period_(std::uint64_t{1} << bits_),
      scramble_(static_cast<std::uint32_t>(
          seed & ((std::uint64_t{1} << bits_) - 1))) {}

bool SobolPermutation::next(std::uint64_t& out) noexcept {
  while (n_ < period_) {
    const std::uint64_t candidate = x_ ^ scramble_;
    // Gray-code update: flip the direction bit v_c = 2^(bits-1-c) where c
    // is the lowest zero bit of n — each state is visited exactly once
    // over the 2^bits period, so the scrambled output is a bijection.
    const unsigned c =
        static_cast<unsigned>(__builtin_ctzll(~n_));
    ++n_;
    if (n_ < period_) x_ ^= 1u << (bits_ - 1 - c);
    if (candidate < count_) {
      out = candidate;
      return true;
    }
  }
  return false;
}

UniversePermutation::UniversePermutation(std::vector<net::Cidr> prefixes,
                                         std::uint32_t seed, ScanOrder order)
    : prefixes_(std::move(prefixes)),
      offsets_(),
      total_([this] {
        std::uint64_t total = 0;
        offsets_.reserve(prefixes_.size());
        for (const net::Cidr& prefix : prefixes_) {
          offsets_.push_back(total);
          total += prefix.size();
        }
        return total;
      }()),
      order_(order),
      lfsr_(order == ScanOrder::kLfsr ? total_ : 0, seed),
      sobol_(order == ScanOrder::kSobol ? total_ : 0, seed) {}

bool UniversePermutation::next(net::Ipv4& out) noexcept {
  std::uint64_t index = 0;
  const bool more = order_ == ScanOrder::kSobol ? sobol_.next(index)
                                                : lfsr_.next(index);
  if (!more) return false;
  // Binary search the prefix containing this flat index.
  const auto it =
      std::upper_bound(offsets_.begin(), offsets_.end(), index) - 1;
  const std::size_t slot = static_cast<std::size_t>(it - offsets_.begin());
  out = prefixes_[slot].at(index - *it);
  return true;
}

}  // namespace dnswild::scan
