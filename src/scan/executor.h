// Deterministic fan-out for the scan engines.
//
// ParallelExecutor owns a pool of worker threads and runs an index range
// [0, count) split into one contiguous block per worker — block b covers
// [b*count/T, (b+1)*count/T). The static partition (no work stealing) is
// what makes sharded scans thread-count invariant: within a shard, work
// executes in ascending index order, so any per-destination state sees a
// deterministic request sequence, and concatenating per-shard results in
// shard order reproduces the global index order for every thread count.
//
// Coordinator code (clock barriers, permutation drawing, shard merging)
// runs on the calling thread between run_blocks() calls, which act as full
// barriers: run_blocks returns only after every worker finished its block,
// with the workers' writes visible to the caller.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace dnswild::scan {

class ParallelExecutor {
 public:
  // threads == 0 selects std::thread::hardware_concurrency(). A resolved
  // count of 1 runs everything inline on the calling thread (no pool).
  explicit ParallelExecutor(unsigned threads = 0);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  unsigned threads() const noexcept { return thread_count_; }

  // Routes executor telemetry into `registry` under "<label>.executor.*":
  // jobs and items dispatched (thread-count invariant), plus shard counts,
  // shard sizes, and per-shard wall time (registered kNondeterministic —
  // they depend on the worker count and scheduling, and are masked when
  // comparing run reports). Costs two clock reads per shard, nothing per
  // item. Pass nullptr to detach.
  void attach_metrics(obs::Registry* registry, std::string_view label);

  // Block worker `b` of `T` processes indices [b*count/T, (b+1)*count/T).
  static std::uint64_t block_begin(std::uint64_t count, unsigned block,
                                   unsigned blocks) noexcept {
    return count * block / blocks;
  }

  // Shard-count clamp for pool construction: the requested worker count
  // (0 = auto), bounded by hardware_concurrency and by ceil(items /
  // min_grain) so tiny workloads never fan out into near-empty shards.
  // Oversharding is pure overhead — thread wakeups cost more than the
  // work — and on boxes with fewer cores than requested threads it
  // collapses throughput (the BENCH_micro.json features_per_sec regression
  // at 8 threads on 1 CPU). Results are byte-identical for every worker
  // count, so clamping can never change an outcome, only the wall time.
  static unsigned effective_threads(unsigned requested, std::uint64_t items,
                                    std::uint64_t min_grain) noexcept {
    unsigned hardware = std::thread::hardware_concurrency();
    if (hardware == 0) hardware = 1;
    unsigned resolved = requested == 0 ? hardware : requested;
    if (resolved > hardware) resolved = hardware;
    if (min_grain > 0) {
      const std::uint64_t shards = (items + min_grain - 1) / min_grain;
      if (shards < resolved) {
        resolved = shards == 0 ? 1 : static_cast<unsigned>(shards);
      }
    }
    return resolved;
  }

  // fn(begin, end, worker) is invoked once per worker with its contiguous
  // block; empty blocks are skipped. Blocks: full barrier on return. An
  // exception thrown by any worker is rethrown on the calling thread (the
  // first one, by worker index).
  void run_blocks(std::uint64_t count,
                  const std::function<void(std::uint64_t begin,
                                           std::uint64_t end,
                                           unsigned worker)>& fn);

 private:
  void worker_loop(unsigned index);
  // The uninstrumented dispatch path run_blocks wraps.
  void dispatch(std::uint64_t count,
                const std::function<void(std::uint64_t, std::uint64_t,
                                         unsigned)>& fn);

  unsigned thread_count_ = 1;
  std::vector<std::thread> pool_;  // thread_count_ - 1 entries; the caller
                                   // doubles as the last worker

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;   // bumped per run_blocks dispatch
  unsigned pending_ = 0;           // pool workers still running this job
  bool shutdown_ = false;

  // Job state for the current generation.
  std::uint64_t job_count_ = 0;
  const std::function<void(std::uint64_t, std::uint64_t, unsigned)>* job_fn_ =
      nullptr;
  std::vector<std::exception_ptr> errors_;

  // Telemetry handles; all null until attach_metrics(). Jobs/items are
  // thread-count invariant, the shard-shape metrics are not.
  obs::Counter* metric_jobs_ = nullptr;
  obs::Counter* metric_items_ = nullptr;
  obs::Counter* metric_shards_ = nullptr;
  obs::Histogram* metric_shard_items_ = nullptr;
  obs::Histogram* metric_shard_wall_us_ = nullptr;
};

}  // namespace dnswild::scan
