// Deterministic virtual-time event core for the scan campaigns
// (DESIGN.md §11).
//
// The scanners used to account for time synchronously: every silent probe
// blocked its worker's virtual clock for the full timeout + backoff ladder,
// so a lossy scan's virtual duration was the *sum* of every probe's waits —
// exactly the serialization a real asynchronous prober (ZDNS-style
// decoupled send/receive loops) avoids. This core replays a scan's probes
// through a discrete-event simulation instead: sends carry timestamps and
// pace through a token bucket, replies arrive as events after the fault
// plane's latency, RetryPolicy timeouts/backoffs schedule *future* send
// events rather than blocking, and a bounded in-flight window keeps the
// pipe full while capping outstanding probe state. Waits now overlap
// across streams, so virtual scan time collapses from sum-of-waits to the
// schedule's makespan.
//
// Division of labor: probe *execution* (packet construction, fate hashing,
// reply decoding — all the CPU work) stays on the ParallelExecutor
// workers, which record one compact ProbeTiming per probe. The event
// simulation itself then runs serially on the coordinator over those
// timings in stream order. Because every timing is a pure function of the
// probe's identity (DESIGN.md §7) and the simulation is serial, every
// quantity this core emits — virtual seconds, event counts, in-flight
// peaks — is byte-identical for any thread count; events are drained in
// strict event-key order (time, stream, step, attempt, kind).
//
// A "stream" serializes probes to one destination (one probe in flight per
// stream, steps in ascending order), preserving the per-destination
// request order that keeps stateful resolver caches and fault rate
// limiters on a deterministic schedule. The window admits streams in index
// order as slots free up.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "scan/retry.h"

namespace dnswild::scan {

struct EventCoreConfig {
  // Upper bound on streams with an outstanding probe. 1 reproduces the old
  // synchronous accounting (every wait serializes); large windows let the
  // whole retry plane overlap.
  std::uint32_t max_in_flight = 65536;
  // Send pacing: the study's probe rate (§2.2 tunes for politeness).
  double pace_rate_per_sec = 25000.0;
  double pace_burst = 128.0;
  // Timeout/backoff schedule for retry events; must match the policy the
  // scanner's Retrier ran with so the replayed ladder lands on the same
  // per-attempt waits (both recompute them from the probe key).
  RetryPolicy retry;
  // Metrics namespace, e.g. "scan.ipv4.event".
  std::string label = "scan.event";
};

// One probe's wire outcome, recorded by the execution pass. A pure
// function of the probe identity, so the slot is thread-invariant.
struct ProbeTiming {
  std::uint64_t probe_key = 0;        // net::probe_identity_key
  std::uint32_t reply_latency_ms = 0; // final attempt's last reply latency
  std::uint16_t transmissions = 1;    // sends incl. retries; 0 = skipped
  bool responded = false;             // any surviving reply
};

// One drained event, exposed for the determinism tests. The strict total
// order (time_us, stream, step, attempt, kind) has no ties: a
// (stream, step, attempt) triple owns at most one event of each kind.
struct ScanEvent {
  enum class Kind : std::uint8_t { kSend = 0, kReply = 1 };
  std::uint64_t time_us = 0;
  std::uint64_t stream = 0;
  std::uint32_t step = 0;
  std::uint16_t attempt = 0;
  Kind kind = Kind::kSend;

  friend bool operator==(const ScanEvent&, const ScanEvent&) = default;
};

// The event-key order events drain in.
bool event_key_less(const ScanEvent& a, const ScanEvent& b) noexcept;

struct EventStats {
  double virtual_seconds = 0.0;     // schedule makespan
  std::uint64_t events = 0;         // events drained
  std::uint64_t wire_sends = 0;     // transmissions paced onto the wire
  std::uint64_t retry_events = 0;   // send events with attempt > 0
  std::uint32_t peak_in_flight = 0; // high-water mark of the window
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t completed_streams = 0;
};

class EventScanCore {
 public:
  // `registry` may be null (no instruments published — bench/test use).
  // `flight`, when given, receives probe send/retry/timeout/reply trace
  // events stamped with the recorder's cumulative virtual clock, and the
  // clock advances by each run's makespan — successive stages lay out end
  // to end on the shared timeline (DESIGN.md §13).
  EventScanCore(obs::Registry* registry, EventCoreConfig config,
                obs::TraceRecorder* flight = nullptr);

  // Replays `streams` streams of `steps_per_stream` probes each; timings
  // are stream-major (slot = stream * steps_per_stream + step). `trace`,
  // when given, receives every drained event in drain order (tests).
  // Streams whose step has transmissions == 0 (blacklisted/reserved
  // targets) complete instantly without touching the wire.
  EventStats run(const std::vector<ProbeTiming>& timings,
                 std::uint64_t streams, std::uint32_t steps_per_stream,
                 std::vector<ScanEvent>* trace = nullptr);

  const EventCoreConfig& config() const noexcept { return config_; }

 private:
  EventCoreConfig config_;
  // Instruments; null when no registry. Everything here is a pure function
  // of the run's inputs (the simulation is serial), so all are kStable and
  // survive masked-report comparison across thread counts.
  obs::Counter* events_ = nullptr;
  obs::Counter* wire_sends_ = nullptr;
  obs::Counter* retry_events_ = nullptr;
  obs::Counter* virtual_us_ = nullptr;
  obs::Gauge* inflight_peak_ = nullptr;
  obs::Gauge* queue_peak_ = nullptr;
  obs::Histogram* inflight_ = nullptr;
  // Reply latency distribution per campaign label — the source of the
  // report's per-stage p50/p90/p99 table.
  obs::Histogram* latency_ms_ = nullptr;
  // Shared virtual-time series (dnswild.metrics.v2), fed in drain order.
  obs::Series* sends_series_ = nullptr;
  obs::Series* retries_series_ = nullptr;
  obs::Series* timeouts_series_ = nullptr;
  obs::Series* replies_series_ = nullptr;
  obs::Series* inflight_series_ = nullptr;
  // Flight recorder + pre-interned event names (null/0 when absent).
  obs::TraceRecorder* flight_ = nullptr;
  std::uint32_t trace_send_id_ = 0;
  std::uint32_t trace_retry_id_ = 0;
  std::uint32_t trace_timeout_id_ = 0;
  std::uint32_t trace_reply_id_ = 0;
};

}  // namespace dnswild::scan
