#include "scan/blacklist.h"

#include <algorithm>

namespace dnswild::scan {

bool Blacklist::contains(net::Ipv4 ip) const noexcept {
  for (const net::Cidr& range : ranges_) {
    if (range.contains(ip)) return true;
  }
  return std::find(addresses_.begin(), addresses_.end(), ip) !=
         addresses_.end();
}

std::uint64_t Blacklist::address_space() const noexcept {
  std::uint64_t total = addresses_.size();
  for (const net::Cidr& range : ranges_) total += range.size();
  return total;
}

}  // namespace dnswild::scan
