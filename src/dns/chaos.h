// CHAOS-class version fingerprinting (§2.4).
//
// BIND and most other DNS servers answer TXT queries for the pseudo-names
// version.bind / version.server in class CH with their software version
// string (unless an operator overrides or refuses it). The paper classifies
// 19.9 M resolvers this way.
#pragma once

#include <optional>
#include <string>

#include "dns/message.h"

namespace dnswild::dns {

// The two probe names the paper sends.
Name version_bind_name();
Name version_server_name();

Message make_version_query(std::uint16_t id, const Name& probe_name);

// Extracts the version string from a CHAOS TXT response: the first TXT
// answer string, joined if split into chunks. nullopt when the response has
// an error rcode or no TXT answer.
std::optional<std::string> extract_version(const Message& response);

}  // namespace dnswild::dns
