#include "dns/types.h"

namespace dnswild::dns {

std::string_view rcode_name(RCode rcode) noexcept {
  switch (rcode) {
    case RCode::kNoError: return "NOERROR";
    case RCode::kFormErr: return "FORMERR";
    case RCode::kServFail: return "SERVFAIL";
    case RCode::kNxDomain: return "NXDOMAIN";
    case RCode::kNotImp: return "NOTIMP";
    case RCode::kRefused: return "REFUSED";
  }
  return "UNKNOWN";
}

std::string_view rtype_name(RType rtype) noexcept {
  switch (rtype) {
    case RType::kA: return "A";
    case RType::kNS: return "NS";
    case RType::kCNAME: return "CNAME";
    case RType::kSOA: return "SOA";
    case RType::kPTR: return "PTR";
    case RType::kMX: return "MX";
    case RType::kTXT: return "TXT";
    case RType::kAAAA: return "AAAA";
    case RType::kANY: return "ANY";
  }
  return "TYPE?";
}

}  // namespace dnswild::dns
