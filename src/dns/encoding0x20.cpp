#include "dns/encoding0x20.h"

#include "util/strings.h"

namespace dnswild::dns {

std::size_t letter_capacity(const Name& name) noexcept {
  std::size_t count = 0;
  for (const auto& label : name.labels()) {
    for (char c : label) {
      if (util::is_alpha_ascii(c)) ++count;
    }
  }
  return count;
}

Name randomize_case(const Name& name, util::Rng& rng) {
  std::vector<std::string> labels = name.labels();
  for (auto& label : labels) {
    for (char& c : label) {
      if (!util::is_alpha_ascii(c)) continue;
      c = rng.chance(0.5) ? util::to_upper_ascii(c) : util::to_lower_ascii(c);
    }
  }
  return Name(std::move(labels));
}

std::optional<Name> encode_case_bits(const Name& name, std::uint32_t bits,
                                     unsigned bit_count) {
  if (letter_capacity(name) < bit_count) return std::nullopt;
  std::vector<std::string> labels = name.labels();
  unsigned index = 0;
  for (auto& label : labels) {
    for (char& c : label) {
      if (!util::is_alpha_ascii(c)) continue;
      const bool upper = index < bit_count && ((bits >> index) & 1u) != 0;
      c = upper ? util::to_upper_ascii(c) : util::to_lower_ascii(c);
      ++index;
    }
  }
  return Name(std::move(labels));
}

std::optional<std::uint32_t> decode_case_bits(const Name& name,
                                              unsigned bit_count) noexcept {
  if (letter_capacity(name) < bit_count) return std::nullopt;
  std::uint32_t bits = 0;
  unsigned index = 0;
  for (const auto& label : name.labels()) {
    for (char c : label) {
      if (!util::is_alpha_ascii(c)) continue;
      if (index >= bit_count) return bits;
      if (c >= 'A' && c <= 'Z') bits |= 1u << index;
      ++index;
    }
  }
  return bits;
}

bool case_echo_matches(const Name& query_name,
                       const Name& response_name) noexcept {
  const auto& a = query_name.labels();
  const auto& b = response_name.labels();
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;  // exact octet comparison, case included
  }
  return true;
}

}  // namespace dnswild::dns
