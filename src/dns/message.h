// DNS message model and wire codec (RFC 1035 §4).
//
// Supports the record types the study exercises: A (resolution scans), NS
// (cache snooping, recursion-denied referrals), CNAME (CDN chains), PTR
// (rDNS), TXT (CHAOS version.bind), SOA, MX, and raw RDATA passthrough for
// anything else. Serialization applies name compression for answer owner
// names; parsing accepts arbitrary compression.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.h"
#include "dns/types.h"
#include "net/ip.h"

namespace dnswild::dns {

struct Header {
  std::uint16_t id = 0;
  bool qr = false;  // response flag
  Opcode opcode = Opcode::kQuery;
  bool aa = false;  // authoritative answer
  bool tc = false;  // truncated
  bool rd = false;  // recursion desired
  bool ra = false;  // recursion available
  // Authenticated Data (RFC 4035): set by validating resolvers when the
  // answer verified under DNSSEC. The §5 experiment keys on it.
  bool ad = false;
  RCode rcode = RCode::kNoError;
};

struct Question {
  Name name;
  RType qtype = RType::kA;
  RClass qclass = RClass::kIN;
};

struct SoaData {
  Name mname;
  Name rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 0;
  std::uint32_t retry = 0;
  std::uint32_t expire = 0;
  std::uint32_t minimum = 0;
};

struct MxData {
  std::uint16_t preference = 0;
  Name exchange;
};

// TXT RDATA: one or more character strings.
using TxtData = std::vector<std::string>;
// Fallback for unsupported types: raw RDATA bytes.
using RawData = std::vector<std::uint8_t>;

using RData =
    std::variant<net::Ipv4,  // A
                 Name,       // NS / CNAME / PTR
                 TxtData, SoaData, MxData, RawData>;

struct ResourceRecord {
  Name name;
  RType rtype = RType::kA;
  RClass rclass = RClass::kIN;
  std::uint32_t ttl = 0;
  RData rdata;

  static ResourceRecord a(Name name, net::Ipv4 ip, std::uint32_t ttl);
  static ResourceRecord ns(Name name, Name target, std::uint32_t ttl);
  static ResourceRecord cname(Name name, Name target, std::uint32_t ttl);
  static ResourceRecord ptr(Name name, Name target, std::uint32_t ttl);
  static ResourceRecord txt(Name name, TxtData strings, std::uint32_t ttl,
                            RClass rclass = RClass::kIN);
};

struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;

  // Convenience accessors used throughout the pipeline.
  const Question* question() const noexcept {
    return questions.empty() ? nullptr : &questions.front();
  }
  // All A-record addresses in the answer section.
  std::vector<net::Ipv4> answer_ips() const;

  std::vector<std::uint8_t> encode() const;
  static std::optional<Message> decode(const std::vector<std::uint8_t>& wire);

  // Builds a standard recursive query.
  static Message make_query(std::uint16_t id, Name name, RType rtype,
                            RClass rclass = RClass::kIN, bool rd = true);
  // Builds a response skeleton echoing id and question.
  static Message make_response(const Message& query, RCode rcode);
};

}  // namespace dnswild::dns
