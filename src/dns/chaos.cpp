#include "dns/chaos.h"

namespace dnswild::dns {

Name version_bind_name() { return Name::must_parse("version.bind"); }

Name version_server_name() { return Name::must_parse("version.server"); }

Message make_version_query(std::uint16_t id, const Name& probe_name) {
  return Message::make_query(id, probe_name, RType::kTXT, RClass::kCH,
                             /*rd=*/false);
}

std::optional<std::string> extract_version(const Message& response) {
  if (response.header.rcode != RCode::kNoError) return std::nullopt;
  for (const auto& rr : response.answers) {
    if (rr.rtype != RType::kTXT) continue;
    const auto* txt = std::get_if<TxtData>(&rr.rdata);
    if (!txt || txt->empty()) continue;
    std::string joined;
    for (const auto& chunk : *txt) joined += chunk;
    if (!joined.empty()) return joined;
  }
  return std::nullopt;
}

}  // namespace dnswild::dns
