// Domain names.
//
// Names are stored as a sequence of labels with their original octet case
// preserved — required for 0x20 encoding (Dagon et al.'s forgery-resistance
// trick the paper reuses to carry resolver-ID bits, §3.3). Comparisons are
// ASCII-case-insensitive per RFC 4343. Wire encoding follows RFC 1035
// §3.1; parsing supports compression pointers with loop protection.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dnswild::dns {

class Name {
 public:
  Name() = default;
  explicit Name(std::vector<std::string> labels);

  // Parses dotted presentation format ("www.Example.com", trailing dot
  // optional, case preserved). Returns nullopt for invalid names: empty
  // labels, labels over 63 octets, or total wire length over 255.
  static std::optional<Name> parse(std::string_view text);

  // Like parse() but terminates the program on invalid input; for literals.
  static Name must_parse(std::string_view text);

  bool empty() const noexcept { return labels_.empty(); }  // the root
  std::size_t label_count() const noexcept { return labels_.size(); }
  const std::vector<std::string>& labels() const noexcept { return labels_; }

  // Presentation form without trailing dot ("" for the root).
  std::string to_string() const;
  // Lower-cased presentation form; canonical key for maps.
  std::string lower() const;

  // Case-insensitive comparison (RFC 4343).
  bool equals(const Name& other) const noexcept;
  // True when this name equals `zone` or is underneath it. The root is an
  // ancestor of everything.
  bool is_subdomain_of(const Name& zone) const noexcept;

  // Name with the first `count` labels removed (count > label_count()
  // yields the root).
  Name parent(std::size_t count = 1) const;
  // child.concat(parent): prepends labels of this in front of `suffix`.
  Name concat(const Name& suffix) const;

  // --- wire format ------------------------------------------------------
  void encode(std::vector<std::uint8_t>& out) const;

  // Decodes a (possibly compressed) name starting at `offset` inside the
  // full message `wire`. Advances `offset` past the name's in-place bytes.
  // Returns nullopt on truncation, bad pointers, or pointer loops.
  static std::optional<Name> decode(const std::vector<std::uint8_t>& wire,
                                    std::size_t& offset);

 private:
  std::vector<std::string> labels_;
};

bool operator==(const Name& a, const Name& b) noexcept;

}  // namespace dnswild::dns
