#include "dns/name.h"

#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace dnswild::dns {

namespace {

constexpr std::size_t kMaxLabel = 63;
constexpr std::size_t kMaxWire = 255;

// Wire length of a name: one length octet per label + label bytes + root.
std::size_t wire_length(const std::vector<std::string>& labels) noexcept {
  std::size_t total = 1;
  for (const auto& label : labels) total += 1 + label.size();
  return total;
}

}  // namespace

Name::Name(std::vector<std::string> labels) : labels_(std::move(labels)) {}

std::optional<Name> Name::parse(std::string_view text) {
  if (text == "." || text.empty()) return Name{};
  if (text.back() == '.') text.remove_suffix(1);
  std::vector<std::string> labels;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find('.', begin);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view label = text.substr(begin, end - begin);
    if (label.empty() || label.size() > kMaxLabel) return std::nullopt;
    labels.emplace_back(label);
    begin = end + 1;
    if (end == text.size()) break;
  }
  if (wire_length(labels) > kMaxWire) return std::nullopt;
  return Name(std::move(labels));
}

Name Name::must_parse(std::string_view text) {
  auto name = parse(text);
  if (!name) {
    std::fprintf(stderr, "Name::must_parse: invalid name '%.*s'\n",
                 static_cast<int>(text.size()), text.data());
    std::abort();
  }
  return *std::move(name);
}

std::string Name::to_string() const {
  return util::join(labels_, ".");
}

std::string Name::lower() const { return util::lower(to_string()); }

bool Name::equals(const Name& other) const noexcept {
  if (labels_.size() != other.labels_.size()) return false;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (!util::iequals(labels_[i], other.labels_[i])) return false;
  }
  return true;
}

bool Name::is_subdomain_of(const Name& zone) const noexcept {
  if (zone.labels_.size() > labels_.size()) return false;
  const std::size_t skip = labels_.size() - zone.labels_.size();
  for (std::size_t i = 0; i < zone.labels_.size(); ++i) {
    if (!util::iequals(labels_[skip + i], zone.labels_[i])) return false;
  }
  return true;
}

Name Name::parent(std::size_t count) const {
  if (count >= labels_.size()) return Name{};
  return Name(std::vector<std::string>(labels_.begin() + count, labels_.end()));
}

Name Name::concat(const Name& suffix) const {
  std::vector<std::string> labels = labels_;
  labels.insert(labels.end(), suffix.labels_.begin(), suffix.labels_.end());
  return Name(std::move(labels));
}

void Name::encode(std::vector<std::uint8_t>& out) const {
  for (const auto& label : labels_) {
    out.push_back(static_cast<std::uint8_t>(label.size()));
    out.insert(out.end(), label.begin(), label.end());
  }
  out.push_back(0);
}

std::optional<Name> Name::decode(const std::vector<std::uint8_t>& wire,
                                 std::size_t& offset) {
  std::vector<std::string> labels;
  std::size_t pos = offset;
  std::optional<std::size_t> end_of_name;  // set after the first pointer
  int jumps = 0;
  std::size_t total = 1;

  while (true) {
    if (pos >= wire.size()) return std::nullopt;
    const std::uint8_t len = wire[pos];
    if ((len & 0xc0) == 0xc0) {  // compression pointer
      if (pos + 1 >= wire.size()) return std::nullopt;
      if (++jumps > 64) return std::nullopt;  // loop guard
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | wire[pos + 1];
      if (!end_of_name) end_of_name = pos + 2;
      if (target >= pos) return std::nullopt;  // only backward pointers
      pos = target;
      continue;
    }
    if ((len & 0xc0) != 0) return std::nullopt;  // reserved label types
    if (len == 0) {
      ++pos;
      break;
    }
    if (pos + 1 + len > wire.size()) return std::nullopt;
    total += 1 + len;
    if (total > kMaxWire) return std::nullopt;
    labels.emplace_back(wire.begin() + static_cast<std::ptrdiff_t>(pos) + 1,
                        wire.begin() + static_cast<std::ptrdiff_t>(pos) + 1 +
                            len);
    pos += 1 + static_cast<std::size_t>(len);
  }
  offset = end_of_name.value_or(pos);
  return Name(std::move(labels));
}

bool operator==(const Name& a, const Name& b) noexcept { return a.equals(b); }

}  // namespace dnswild::dns
