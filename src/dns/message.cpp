#include "dns/message.h"

#include <unordered_map>

#include "util/strings.h"

namespace dnswild::dns {

namespace {

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void bytes(const std::uint8_t* data, std::size_t size) {
    out_.insert(out_.end(), data, data + size);
  }

  // Emits a name, compressing against previously emitted names. Pointers
  // must target offsets < 2^14; beyond that we emit uncompressed.
  void name(const Name& value) {
    const auto& labels = value.labels();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      const std::string key = util::lower(util::join(
          std::vector<std::string>(labels.begin() + static_cast<std::ptrdiff_t>(i),
                                   labels.end()),
          "."));
      const auto hit = offsets_.find(key);
      if (hit != offsets_.end() && hit->second < 0x4000) {
        u16(static_cast<std::uint16_t>(0xc000 | hit->second));
        return;
      }
      if (out_.size() < 0x4000) offsets_.emplace(key, out_.size());
      u8(static_cast<std::uint8_t>(labels[i].size()));
      bytes(reinterpret_cast<const std::uint8_t*>(labels[i].data()),
            labels[i].size());
    }
    u8(0);
  }

  std::size_t size() const noexcept { return out_.size(); }
  void patch_u16(std::size_t offset, std::uint16_t v) {
    out_[offset] = static_cast<std::uint8_t>(v >> 8);
    out_[offset + 1] = static_cast<std::uint8_t>(v);
  }

 private:
  std::vector<std::uint8_t>& out_;
  std::unordered_map<std::string, std::size_t> offsets_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& wire) : wire_(wire) {}

  bool u8(std::uint8_t& v) {
    if (pos_ >= wire_.size()) return false;
    v = wire_[pos_++];
    return true;
  }
  bool u16(std::uint16_t& v) {
    std::uint8_t hi = 0, lo = 0;
    if (!u8(hi) || !u8(lo)) return false;
    v = static_cast<std::uint16_t>((hi << 8) | lo);
    return true;
  }
  bool u32(std::uint32_t& v) {
    std::uint16_t hi = 0, lo = 0;
    if (!u16(hi) || !u16(lo)) return false;
    v = (static_cast<std::uint32_t>(hi) << 16) | lo;
    return true;
  }
  bool name(Name& out) {
    auto decoded = Name::decode(wire_, pos_);
    if (!decoded) return false;
    out = *std::move(decoded);
    return true;
  }
  bool skip(std::size_t count) {
    if (pos_ + count > wire_.size()) return false;
    pos_ += count;
    return true;
  }
  std::size_t pos() const noexcept { return pos_; }
  const std::vector<std::uint8_t>& wire() const noexcept { return wire_; }

 private:
  const std::vector<std::uint8_t>& wire_;
  std::size_t pos_ = 0;
};

void encode_record(Writer& w, const ResourceRecord& rr) {
  w.name(rr.name);
  w.u16(static_cast<std::uint16_t>(rr.rtype));
  w.u16(static_cast<std::uint16_t>(rr.rclass));
  w.u32(rr.ttl);
  std::vector<std::uint8_t> rdata;
  // RDATA is built in a scratch buffer: compression inside RDATA would need
  // final offsets, so names in RDATA are emitted uncompressed (legal and
  // what most implementations do for non-well-known types).
  if (const auto* ip = std::get_if<net::Ipv4>(&rr.rdata)) {
    rdata = {static_cast<std::uint8_t>(ip->value() >> 24),
             static_cast<std::uint8_t>(ip->value() >> 16),
             static_cast<std::uint8_t>(ip->value() >> 8),
             static_cast<std::uint8_t>(ip->value())};
  } else if (const auto* target = std::get_if<Name>(&rr.rdata)) {
    target->encode(rdata);
  } else if (const auto* txt = std::get_if<TxtData>(&rr.rdata)) {
    for (const auto& chunk : *txt) {
      rdata.push_back(static_cast<std::uint8_t>(chunk.size()));
      rdata.insert(rdata.end(), chunk.begin(), chunk.end());
    }
  } else if (const auto* soa = std::get_if<SoaData>(&rr.rdata)) {
    soa->mname.encode(rdata);
    soa->rname.encode(rdata);
    for (std::uint32_t v : {soa->serial, soa->refresh, soa->retry,
                            soa->expire, soa->minimum}) {
      rdata.push_back(static_cast<std::uint8_t>(v >> 24));
      rdata.push_back(static_cast<std::uint8_t>(v >> 16));
      rdata.push_back(static_cast<std::uint8_t>(v >> 8));
      rdata.push_back(static_cast<std::uint8_t>(v));
    }
  } else if (const auto* mx = std::get_if<MxData>(&rr.rdata)) {
    rdata.push_back(static_cast<std::uint8_t>(mx->preference >> 8));
    rdata.push_back(static_cast<std::uint8_t>(mx->preference));
    mx->exchange.encode(rdata);
  } else if (const auto* raw = std::get_if<RawData>(&rr.rdata)) {
    rdata = *raw;
  }
  w.u16(static_cast<std::uint16_t>(rdata.size()));
  w.bytes(rdata.data(), rdata.size());
}

bool decode_record(Reader& r, ResourceRecord& rr) {
  if (!r.name(rr.name)) return false;
  std::uint16_t rtype = 0, rclass = 0, rdlen = 0;
  std::uint32_t ttl = 0;
  if (!r.u16(rtype) || !r.u16(rclass) || !r.u32(ttl) || !r.u16(rdlen)) {
    return false;
  }
  rr.rtype = static_cast<RType>(rtype);
  rr.rclass = static_cast<RClass>(rclass);
  rr.ttl = ttl;
  const std::size_t rdata_end = r.pos() + rdlen;
  if (rdata_end > r.wire().size()) return false;

  switch (rr.rtype) {
    case RType::kA: {
      if (rdlen != 4) return false;
      std::uint32_t v = 0;
      if (!r.u32(v)) return false;
      rr.rdata = net::Ipv4(v);
      return true;
    }
    case RType::kNS:
    case RType::kCNAME:
    case RType::kPTR: {
      Name target;
      if (!r.name(target) || r.pos() != rdata_end) return false;
      rr.rdata = std::move(target);
      return true;
    }
    case RType::kTXT: {
      TxtData txt;
      while (r.pos() < rdata_end) {
        std::uint8_t len = 0;
        if (!r.u8(len) || r.pos() + len > rdata_end) return false;
        txt.emplace_back(r.wire().begin() + static_cast<std::ptrdiff_t>(r.pos()),
                         r.wire().begin() +
                             static_cast<std::ptrdiff_t>(r.pos() + len));
        if (!r.skip(len)) return false;
      }
      rr.rdata = std::move(txt);
      return true;
    }
    case RType::kSOA: {
      SoaData soa;
      if (!r.name(soa.mname) || !r.name(soa.rname) || !r.u32(soa.serial) ||
          !r.u32(soa.refresh) || !r.u32(soa.retry) || !r.u32(soa.expire) ||
          !r.u32(soa.minimum) || r.pos() != rdata_end) {
        return false;
      }
      rr.rdata = std::move(soa);
      return true;
    }
    case RType::kMX: {
      MxData mx;
      if (!r.u16(mx.preference) || !r.name(mx.exchange) ||
          r.pos() != rdata_end) {
        return false;
      }
      rr.rdata = std::move(mx);
      return true;
    }
    default: {
      RawData raw(r.wire().begin() + static_cast<std::ptrdiff_t>(r.pos()),
                  r.wire().begin() + static_cast<std::ptrdiff_t>(rdata_end));
      if (!r.skip(rdlen)) return false;
      rr.rdata = std::move(raw);
      return true;
    }
  }
}

}  // namespace

ResourceRecord ResourceRecord::a(Name name, net::Ipv4 ip, std::uint32_t ttl) {
  return ResourceRecord{std::move(name), RType::kA, RClass::kIN, ttl, ip};
}

ResourceRecord ResourceRecord::ns(Name name, Name target, std::uint32_t ttl) {
  return ResourceRecord{std::move(name), RType::kNS, RClass::kIN, ttl,
                        std::move(target)};
}

ResourceRecord ResourceRecord::cname(Name name, Name target,
                                     std::uint32_t ttl) {
  return ResourceRecord{std::move(name), RType::kCNAME, RClass::kIN, ttl,
                        std::move(target)};
}

ResourceRecord ResourceRecord::ptr(Name name, Name target, std::uint32_t ttl) {
  return ResourceRecord{std::move(name), RType::kPTR, RClass::kIN, ttl,
                        std::move(target)};
}

ResourceRecord ResourceRecord::txt(Name name, TxtData strings,
                                   std::uint32_t ttl, RClass rclass) {
  return ResourceRecord{std::move(name), RType::kTXT, rclass, ttl,
                        std::move(strings)};
}

std::vector<net::Ipv4> Message::answer_ips() const {
  std::vector<net::Ipv4> ips;
  for (const auto& rr : answers) {
    if (rr.rtype == RType::kA) {
      if (const auto* ip = std::get_if<net::Ipv4>(&rr.rdata)) {
        ips.push_back(*ip);
      }
    }
  }
  return ips;
}

std::vector<std::uint8_t> Message::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(128);
  Writer w(out);
  w.u16(header.id);
  std::uint16_t flags = 0;
  if (header.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>(
      (static_cast<unsigned>(header.opcode) & 0xf) << 11);
  if (header.aa) flags |= 0x0400;
  if (header.tc) flags |= 0x0200;
  if (header.rd) flags |= 0x0100;
  if (header.ra) flags |= 0x0080;
  if (header.ad) flags |= 0x0020;
  flags |= static_cast<std::uint16_t>(static_cast<unsigned>(header.rcode) &
                                      0xf);
  w.u16(flags);
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authorities.size()));
  w.u16(static_cast<std::uint16_t>(additionals.size()));
  for (const auto& q : questions) {
    w.name(q.name);
    w.u16(static_cast<std::uint16_t>(q.qtype));
    w.u16(static_cast<std::uint16_t>(q.qclass));
  }
  for (const auto& rr : answers) encode_record(w, rr);
  for (const auto& rr : authorities) encode_record(w, rr);
  for (const auto& rr : additionals) encode_record(w, rr);
  return out;
}

std::optional<Message> Message::decode(const std::vector<std::uint8_t>& wire) {
  Reader r(wire);
  Message msg;
  std::uint16_t flags = 0, qd = 0, an = 0, ns = 0, ar = 0;
  if (!r.u16(msg.header.id) || !r.u16(flags) || !r.u16(qd) || !r.u16(an) ||
      !r.u16(ns) || !r.u16(ar)) {
    return std::nullopt;
  }
  msg.header.qr = (flags & 0x8000) != 0;
  msg.header.opcode = static_cast<Opcode>((flags >> 11) & 0xf);
  msg.header.aa = (flags & 0x0400) != 0;
  msg.header.tc = (flags & 0x0200) != 0;
  msg.header.rd = (flags & 0x0100) != 0;
  msg.header.ra = (flags & 0x0080) != 0;
  msg.header.ad = (flags & 0x0020) != 0;
  msg.header.rcode = static_cast<RCode>(flags & 0xf);

  for (unsigned i = 0; i < qd; ++i) {
    Question q;
    std::uint16_t qtype = 0, qclass = 0;
    if (!r.name(q.name) || !r.u16(qtype) || !r.u16(qclass)) {
      return std::nullopt;
    }
    q.qtype = static_cast<RType>(qtype);
    q.qclass = static_cast<RClass>(qclass);
    msg.questions.push_back(std::move(q));
  }
  const auto read_section = [&r](unsigned count,
                                 std::vector<ResourceRecord>& out) {
    for (unsigned i = 0; i < count; ++i) {
      ResourceRecord rr;
      if (!decode_record(r, rr)) return false;
      out.push_back(std::move(rr));
    }
    return true;
  };
  if (!read_section(an, msg.answers) || !read_section(ns, msg.authorities) ||
      !read_section(ar, msg.additionals)) {
    return std::nullopt;
  }
  return msg;
}

Message Message::make_query(std::uint16_t id, Name name, RType rtype,
                            RClass rclass, bool rd) {
  Message msg;
  msg.header.id = id;
  msg.header.rd = rd;
  msg.questions.push_back(Question{std::move(name), rtype, rclass});
  return msg;
}

Message Message::make_response(const Message& query, RCode rcode) {
  Message msg;
  msg.header = query.header;
  msg.header.qr = true;
  msg.header.ra = true;
  msg.header.rcode = rcode;
  msg.questions = query.questions;
  return msg;
}

}  // namespace dnswild::dns
