// 0x20 encoding (Dagon et al., CCS 2008).
//
// DNS servers echo the question name byte-for-byte, so the case of each
// ASCII letter is a covert, forgery-resistant channel. The paper uses it in
// two ways (§3.3): randomized case as an anti-spoofing check, and 9 bits of
// the 25-bit resolver identifier stored in the case pattern of the queried
// domain as redundancy for the transaction-ID/source-port encoding.
#pragma once

#include <cstdint>
#include <optional>

#include "dns/name.h"
#include "util/rng.h"

namespace dnswild::dns {

// Number of ASCII letters (case carriers) in the name.
std::size_t letter_capacity(const Name& name) noexcept;

// Re-cases the letters of `name` using random bits from `rng`.
Name randomize_case(const Name& name, util::Rng& rng);

// Stores the low `bit_count` bits of `bits` into the case of the first
// `bit_count` letters (LSB first; uppercase = 1). Remaining letters are
// forced lowercase. Returns nullopt if the name has fewer letters than
// bit_count.
std::optional<Name> encode_case_bits(const Name& name, std::uint32_t bits,
                                     unsigned bit_count);

// Extracts `bit_count` case bits (LSB first). Returns nullopt when the name
// has fewer letters than bit_count.
std::optional<std::uint32_t> decode_case_bits(const Name& name,
                                              unsigned bit_count) noexcept;

// True when `response_name` is a faithful octet-case echo of `query_name`.
// A mismatch indicates an off-path forgery that guessed the name's case.
bool case_echo_matches(const Name& query_name,
                       const Name& response_name) noexcept;

}  // namespace dnswild::dns
