// DNS protocol enumerations (RFC 1035 / RFC 5395 subsets used by the study).
#pragma once

#include <cstdint>
#include <string_view>

namespace dnswild::dns {

enum class RCode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

enum class Opcode : std::uint8_t {
  kQuery = 0,
  kIQuery = 1,
  kStatus = 2,
};

enum class RType : std::uint16_t {
  kA = 1,
  kNS = 2,
  kCNAME = 5,
  kSOA = 6,
  kPTR = 12,
  kMX = 15,
  kTXT = 16,
  kAAAA = 28,
  kANY = 255,
};

enum class RClass : std::uint16_t {
  kIN = 1,
  kCH = 3,  // CHAOS, used for version.bind fingerprinting (§2.4)
  kANY = 255,
};

std::string_view rcode_name(RCode rcode) noexcept;
std::string_view rtype_name(RType rtype) noexcept;

}  // namespace dnswild::dns
