#include "resolver/gfw.h"

#include "dns/message.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/strings.h"

namespace dnswild::resolver {

GfwInjector::GfwInjector(GfwConfig config) : config_(std::move(config)) {}

bool GfwInjector::in_scope(net::Ipv4 dst,
                          const std::string& lower_name) const {
  bool monitored = false;
  for (const net::Cidr& prefix : config_.monitored_prefixes) {
    if (prefix.contains(dst)) {
      monitored = true;
      break;
    }
  }
  if (!monitored) return false;
  for (const std::string& suffix : config_.censored_suffixes) {
    if (lower_name == suffix ||
        (lower_name.size() > suffix.size() &&
         util::ends_with(lower_name, suffix) &&
         lower_name[lower_name.size() - suffix.size() - 1] == '.')) {
      return true;
    }
  }
  return false;
}

void GfwInjector::operator()(const net::UdpPacket& request,
                             std::vector<net::UdpReply>& injected) {
  if (request.dst_port != 53) return;
  const auto query = dns::Message::decode(request.payload);
  if (!query || query->header.qr || query->questions.empty()) return;
  const dns::Question& question = query->questions.front();
  if (question.qtype != dns::RType::kA ||
      question.qclass != dns::RClass::kIN) {
    return;
  }
  if (!in_scope(request.dst, question.name.lower())) return;

  // Forge a NOERROR answer with an arbitrary address. The injector spoofs
  // the probed destination as source, so the client cannot tell it apart
  // from a genuine reply except by arrival order and content.
  dns::Message forged = dns::Message::make_response(*query,
                                                    dns::RCode::kNoError);
  // Bogus address drawn from a stream seeded by the packet identity, so the
  // forged content does not depend on which thread's probe crossed the
  // monitored link first.
  util::Rng draws(util::hash_words(
      {config_.seed,
       (static_cast<std::uint64_t>(request.src.value()) << 32) |
           request.dst.value(),
       (static_cast<std::uint64_t>(request.src_port) << 16) |
           request.dst_port,
       request.seq, util::digest_bytes(request.payload)}));
  net::Ipv4 bogus;
  do {
    bogus = net::Ipv4(static_cast<std::uint32_t>(draws.next()));
  } while (net::is_reserved(bogus));
  forged.answers.push_back(
      dns::ResourceRecord::a(question.name, bogus, 300));

  net::UdpReply reply;
  reply.packet.src = request.dst;
  reply.packet.src_port = request.dst_port;
  reply.packet.dst = request.src;
  reply.packet.dst_port = request.src_port;
  reply.packet.payload = forged.encode();
  reply.latency_ms = config_.injected_latency_ms;
  injected.push_back(std::move(reply));
  injected_count_.fetch_add(1, std::memory_order_relaxed);
}

void install_gfw(net::World& world, std::shared_ptr<GfwInjector> injector) {
  world.add_injector(
      [injector](const net::UdpPacket& request,
                 std::vector<net::UdpReply>& replies) {
        (*injector)(request, replies);
      });
}

}  // namespace dnswild::resolver
