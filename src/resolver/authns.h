// Authoritative DNS registry: the simulation's ground-truth name space.
//
// Holds every zone the study touches — the 155 scanned domains (with CDN
// domains answering region-dependently across multiple ASes, the effect
// that makes prefiltering hard, §3.4), the ground-truth domain the authors
// operate themselves, the wildcard scan domain whose subdomains encode
// probe targets (§2.2), TLD NS records for cache snooping (§2.6), and
// forward records for rDNS names. Honest resolvers consult this registry;
// so does the prefilter's trusted resolver.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/message.h"
#include "dns/types.h"
#include "net/ip.h"
#include "net/services.h"

namespace dnswild::resolver {

struct AuthAnswer {
  dns::RCode rcode = dns::RCode::kNxDomain;
  std::vector<net::Ipv4> ips;
  std::uint32_t ttl = 0;
  // Zone is DNSSEC-signed; a validating resolver can set the AD bit (§5).
  bool dnssec = false;
  // CNAME chain walked to reach the answer, as (owner, target) pairs in
  // resolution order — how CDN-hosted domains resolve in practice (§3.4).
  std::vector<std::pair<std::string, std::string>> cname_chain;
};

class AuthRegistry {
 public:
  // Plain zone: fixed answer set for the apex (and, when `wildcard`,
  // any name beneath it).
  void add_domain(std::string_view fqdn, std::vector<net::Ipv4> ips,
                  std::uint32_t ttl = 300, bool wildcard = false);

  // CDN zone: answers depend on the querying resolver's region (country
  // code); `regional` overrides the default answer set per region.
  void add_cdn_domain(
      std::string_view fqdn, std::vector<net::Ipv4> default_ips,
      std::unordered_map<std::string, std::vector<net::Ipv4>> regional,
      std::uint32_t ttl = 60);

  // Single additional A record (used for rDNS forward confirmation).
  void add_a_record(std::string_view fqdn, net::Ipv4 ip,
                    std::uint32_t ttl = 3600);

  // Aliases fqdn to `target`; resolution follows chains up to depth 8 and
  // reports them in AuthAnswer::cname_chain.
  void add_cname(std::string_view fqdn, std::string_view target,
                 std::uint32_t ttl = 300);

  // TLD with NS records (cache-snooping targets).
  void add_tld(std::string_view tld, std::vector<std::string> ns_names,
               std::uint32_t ttl);

  // Legitimate TLS certificate for a host (CN/SANs already filled).
  void set_certificate(std::string_view fqdn, net::Certificate cert);

  // Marks a zone as DNSSEC-signed (§5: global deployment was < 0.6% of
  // .net domains in May 2015; the experiment sweeps this).
  void set_dnssec(std::string_view fqdn, bool enabled);
  bool dnssec_enabled(std::string_view fqdn) const;

  // Union of every view's answer set (default + all regional views); the
  // ground truth for "is this address a legitimate answer anywhere".
  std::vector<net::Ipv4> all_views(std::string_view fqdn) const;

  // --- lookups ----------------------------------------------------------
  // Recursive-resolution outcome for an A query from a resolver located in
  // `region` ("" = default view).
  AuthAnswer resolve_a(std::string_view fqdn,
                       std::string_view region = {}) const;

  bool exists(std::string_view fqdn) const;

  struct TldInfo {
    std::vector<std::string> ns_names;
    std::uint32_t ttl = 0;
  };
  const TldInfo* tld(std::string_view name) const;
  std::vector<std::string> all_tlds() const;

  // Certificate the legitimate origin of `fqdn` serves, if any.
  std::optional<net::Certificate> certificate(std::string_view fqdn) const;

  std::size_t zone_count() const noexcept { return zones_.size(); }

 private:
  struct Zone {
    std::vector<net::Ipv4> ips;
    std::unordered_map<std::string, std::vector<net::Ipv4>> regional;
    std::uint32_t ttl = 300;
    bool wildcard = false;
    bool dnssec = false;
    std::string cname;  // non-empty: alias instead of an address set
  };

  // Key: lower-case fqdn. Wildcard zones also match descendants.
  const Zone* find_zone(std::string_view fqdn, bool* exact) const;

  std::unordered_map<std::string, Zone> zones_;
  std::unordered_map<std::string, TldInfo> tlds_;
  std::unordered_map<std::string, net::Certificate> certs_;
};

}  // namespace dnswild::resolver
