#include "resolver/snoop.h"

#include "util/rng.h"

namespace dnswild::resolver {

namespace {

std::uint64_t tld_key(std::string_view tld, std::uint64_t host_seed) {
  return util::mix64(host_seed ^ util::fnv1a(tld));
}

}  // namespace

std::uint32_t SnoopModel::refresh_gap(std::string_view tld,
                                      std::uint64_t host_seed) const {
  const std::uint64_t word = tld_key(tld, host_seed);
  switch (profile) {
    case SnoopProfile::kActiveFast:
      return static_cast<std::uint32_t>(word % 5) + 1;  // 1..5 s (§2.6)
    case SnoopProfile::kActiveSlow:
      // 10 minutes .. 4 hours.
      return 600 + static_cast<std::uint32_t>(word % (4 * 3600 - 600));
    default:
      return 0;
  }
}

SnoopModel::Sample SnoopModel::sample(std::string_view tld,
                                      std::int64_t t_seconds,
                                      std::uint64_t host_seed,
                                      int queries_seen_for_tld) const {
  const std::uint64_t word = tld_key(tld, host_seed);
  Sample out;
  switch (profile) {
    case SnoopProfile::kNoCache:
      out.respond = true;
      return out;  // empty answer section
    case SnoopProfile::kSingleThenSilent:
      if (queries_seen_for_tld > 0) return out;  // silence
      out.respond = true;
      out.cached = true;
      out.remaining_ttl = static_cast<std::uint32_t>(word % tld_ttl);
      return out;
    case SnoopProfile::kStaticTtl:
      out.respond = true;
      out.cached = true;
      out.remaining_ttl = tld_ttl;  // never moves
      return out;
    case SnoopProfile::kZeroTtl:
      out.respond = true;
      out.cached = true;
      out.remaining_ttl = 0;
      return out;
    case SnoopProfile::kTtlReset: {
      // Load-balanced group / proactive refresher: every sample lands on a
      // different cache, so the remaining TTL jumps around well above zero.
      out.respond = true;
      out.cached = true;
      const std::uint64_t jitter =
          util::mix64(word ^ static_cast<std::uint64_t>(queries_seen_for_tld));
      out.remaining_ttl =
          tld_ttl / 2 + static_cast<std::uint32_t>(jitter % (tld_ttl / 2));
      return out;
    }
    case SnoopProfile::kActiveLongTtl: {
      // One-week effective TTL: decreasing across the whole window. The
      // phase leaves headroom so a 36-hour campaign starting near t=0 never
      // observes the wrap (campaigns starting later may, which matches the
      // paper's fuzziness about this 4% group).
      const std::uint32_t long_ttl = 7 * 24 * 3600;
      const std::uint32_t phase =
          static_cast<std::uint32_t>(word % (long_ttl - 40 * 3600));
      const std::uint64_t position =
          (static_cast<std::uint64_t>(t_seconds) + phase) % long_ttl;
      out.respond = true;
      out.cached = true;
      out.remaining_ttl = long_ttl - static_cast<std::uint32_t>(position);
      return out;
    }
    case SnoopProfile::kActiveFast:
    case SnoopProfile::kActiveSlow: {
      // Periodic timeline: cached for tld_ttl seconds, expired for `gap`
      // seconds until a client request re-adds it.
      const std::uint32_t gap = refresh_gap(tld, host_seed);
      const std::uint64_t period = static_cast<std::uint64_t>(tld_ttl) + gap;
      const std::uint64_t phase = word % period;
      const std::uint64_t position =
          (static_cast<std::uint64_t>(t_seconds) + phase) % period;
      out.respond = true;
      if (position < tld_ttl) {
        out.cached = true;
        out.remaining_ttl = tld_ttl - static_cast<std::uint32_t>(position);
      }
      return out;
    }
  }
  return out;
}

}  // namespace dnswild::resolver
