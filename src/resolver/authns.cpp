#include "resolver/authns.h"

#include <algorithm>

#include "util/strings.h"

namespace dnswild::resolver {

void AuthRegistry::add_domain(std::string_view fqdn,
                              std::vector<net::Ipv4> ips, std::uint32_t ttl,
                              bool wildcard) {
  Zone zone;
  zone.ips = std::move(ips);
  zone.ttl = ttl;
  zone.wildcard = wildcard;
  zones_[util::lower(fqdn)] = std::move(zone);
}

void AuthRegistry::add_cdn_domain(
    std::string_view fqdn, std::vector<net::Ipv4> default_ips,
    std::unordered_map<std::string, std::vector<net::Ipv4>> regional,
    std::uint32_t ttl) {
  Zone zone;
  zone.ips = std::move(default_ips);
  zone.regional = std::move(regional);
  zone.ttl = ttl;
  zones_[util::lower(fqdn)] = std::move(zone);
}

void AuthRegistry::add_a_record(std::string_view fqdn, net::Ipv4 ip,
                                std::uint32_t ttl) {
  add_domain(fqdn, {ip}, ttl, /*wildcard=*/false);
}

void AuthRegistry::add_tld(std::string_view tld,
                           std::vector<std::string> ns_names,
                           std::uint32_t ttl) {
  tlds_[util::lower(tld)] = TldInfo{std::move(ns_names), ttl};
}

void AuthRegistry::set_certificate(std::string_view fqdn,
                                   net::Certificate cert) {
  certs_[util::lower(fqdn)] = std::move(cert);
}

const AuthRegistry::Zone* AuthRegistry::find_zone(std::string_view fqdn,
                                                  bool* exact) const {
  std::string key = util::lower(fqdn);
  const auto hit = zones_.find(key);
  if (hit != zones_.end()) {
    if (exact != nullptr) *exact = true;
    return &hit->second;
  }
  if (exact != nullptr) *exact = false;
  // Walk up the hierarchy looking for a wildcard ancestor.
  std::size_t dot = key.find('.');
  while (dot != std::string::npos) {
    key.erase(0, dot + 1);
    const auto ancestor = zones_.find(key);
    if (ancestor != zones_.end()) {
      return ancestor->second.wildcard ? &ancestor->second : nullptr;
    }
    dot = key.find('.');
  }
  return nullptr;
}

AuthAnswer AuthRegistry::resolve_a(std::string_view fqdn,
                                   std::string_view region) const {
  AuthAnswer answer;
  std::string current(fqdn);
  // RFC 1034 resolvers bound alias chains; 8 hops is generous.
  for (int hop = 0; hop < 8; ++hop) {
    bool exact = false;
    const Zone* zone = find_zone(current, &exact);
    if (zone == nullptr) {
      answer.rcode = dns::RCode::kNxDomain;
      answer.ips.clear();
      return answer;
    }
    if (!zone->cname.empty()) {
      answer.cname_chain.emplace_back(util::lower(current), zone->cname);
      current = zone->cname;
      continue;
    }
    answer.rcode = dns::RCode::kNoError;
    answer.ttl = zone->ttl;
    answer.dnssec = zone->dnssec;
    if (!region.empty()) {
      const auto regional = zone->regional.find(std::string(region));
      if (regional != zone->regional.end()) {
        answer.ips = regional->second;
        return answer;
      }
    }
    answer.ips = zone->ips;
    return answer;
  }
  // Chain too long: treat as a broken delegation.
  answer.rcode = dns::RCode::kServFail;
  return answer;
}

void AuthRegistry::add_cname(std::string_view fqdn, std::string_view target,
                             std::uint32_t ttl) {
  Zone zone;
  zone.cname = util::lower(target);
  zone.ttl = ttl;
  zones_[util::lower(fqdn)] = std::move(zone);
}

bool AuthRegistry::exists(std::string_view fqdn) const {
  bool exact = false;
  return find_zone(fqdn, &exact) != nullptr;
}

const AuthRegistry::TldInfo* AuthRegistry::tld(std::string_view name) const {
  const auto it = tlds_.find(util::lower(name));
  return it == tlds_.end() ? nullptr : &it->second;
}

std::vector<std::string> AuthRegistry::all_tlds() const {
  std::vector<std::string> names;
  names.reserve(tlds_.size());
  for (const auto& [name, info] : tlds_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

void AuthRegistry::set_dnssec(std::string_view fqdn, bool enabled) {
  const auto it = zones_.find(util::lower(fqdn));
  if (it != zones_.end()) it->second.dnssec = enabled;
}

bool AuthRegistry::dnssec_enabled(std::string_view fqdn) const {
  bool exact = false;
  const Zone* zone = find_zone(fqdn, &exact);
  return zone != nullptr && zone->dnssec;
}

std::vector<net::Ipv4> AuthRegistry::all_views(std::string_view fqdn) const {
  bool exact = false;
  const Zone* zone = find_zone(fqdn, &exact);
  if (zone == nullptr) return {};
  std::vector<net::Ipv4> ips = zone->ips;
  for (const auto& [region, regional_ips] : zone->regional) {
    ips.insert(ips.end(), regional_ips.begin(), regional_ips.end());
  }
  std::sort(ips.begin(), ips.end());
  ips.erase(std::unique(ips.begin(), ips.end()), ips.end());
  return ips;
}

std::optional<net::Certificate> AuthRegistry::certificate(
    std::string_view fqdn) const {
  const auto it = certs_.find(util::lower(fqdn));
  if (it != certs_.end()) return it->second;
  // Wildcard certificates registered for the parent domain.
  const std::size_t dot = fqdn.find('.');
  if (dot != std::string_view::npos) {
    const auto parent = certs_.find(util::lower(fqdn.substr(dot + 1)));
    if (parent != certs_.end() &&
        parent->second.matches_host(fqdn)) {
      return parent->second;
    }
  }
  return std::nullopt;
}

}  // namespace dnswild::resolver
