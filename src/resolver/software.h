// DNS server software catalog (§2.4, Table 3).
//
// Each profile describes one software/version the CHAOS fingerprinting scan
// observes in the wild, with its release/deprecation dates and the CVE
// classes the paper's Table 3 lists. The population shares reported by the
// paper drive worldgen sampling, so the reproduced Table 3 matches in
// shape. Profiles also define how the server answers version.bind /
// version.server probes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dnswild::resolver {

// How a resolver responds to CHAOS TXT version queries.
enum class ChaosBehavior {
  kRevealVersion,   // answers with the real version string
  kHiddenString,    // operator-overridden banner ("none of your business")
  kNoErrorEmpty,    // NOERROR with an empty answer section
  kRefused,
  kServFail,
};

struct SoftwareProfile {
  std::string name;        // "BIND", "Unbound", ...
  std::string version;     // "9.8.2"
  std::string released;    // "Apr 2012" (presentation only)
  std::string deprecated;  // "May 2012" or "" when still maintained then
  std::string cves;        // CVE classes, e.g. "IP Bypass, DoS"
  // Share among the version-revealing population (fraction of the 6,753,748
  // resolvers with version information; Table 3).
  double reveal_share = 0.0;
  bool vulnerable_dos = false;
  bool vulnerable_bypass = false;

  std::string banner() const { return name + " " + version; }
};

// The Table 3 Top-10 rows plus an aggregated tail of further BIND versions
// (BIND totals 60.2% of the revealing population, §2.4).
const std::vector<SoftwareProfile>& software_catalog();

// Fractions of the CHAOS-responding population per behaviour (§2.4):
// 42.7% error for both probes, 4.6% NOERROR without version, 18.8% hidden
// strings, 33.9% revealing.
struct ChaosPopulationMix {
  double refused_or_servfail = 0.427;
  double noerror_empty = 0.046;
  double hidden_string = 0.188;
  double revealing = 0.339;
};

ChaosPopulationMix chaos_population_mix() noexcept;

// Sample texts operators hide their version behind.
const std::vector<std::string>& hidden_version_strings();

}  // namespace dnswild::resolver
