// Resolver response policies: how an open resolver answers A queries.
//
// The study's taxonomy of manipulation (§3–4) reduces, at the DNS layer, to
// "which IP set does the resolver return for which domains". A behaviour is
// a base policy plus an ordered list of domain-matched overrides; what the
// forged addresses *serve* (censorship page, proxy, phishing kit, ...) is a
// property of the hosts at those addresses, configured by worldgen.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ip.h"

namespace dnswild::resolver {

enum class BasePolicy {
  kHonest,       // strictly follow the hierarchy (via the AuthRegistry)
  kRefuseAll,    // REFUSED to every query (closed resolver facade)
  kServFailAll,  // SERVFAIL to every query
  kEmptyAll,     // NOERROR with empty answer sections
  kNsOnlyAll,    // return NS referrals only: recursion effectively denied
  kStaticIpAll,  // one static IP regardless of the queried name (§4.1)
  kIgnoreAll,    // never reply
};

enum class OverrideAction {
  kForgeIps,      // answer with the configured address set
  kForgeRandomIp, // answer with a per-query pseudo-random address (GFW-style)
  kSelfIp,        // answer with the resolver's own address (§4.1, 8,194 hosts)
  kEmptyAnswer,   // NOERROR, no answers
  kNxDomain,
  kRefused,
  kServFail,
  kIgnore,        // drop the query silently
};

struct Override {
  // Matching: lower-case FQDNs matched exactly; `match_suffixes` matches
  // the name or any subdomain; `match_nonexistent` fires for names the
  // registry cannot resolve (NXDOMAIN monetization, §4.2 "Search");
  // `match_all` fires for every name.
  std::vector<std::string> domains;
  std::vector<std::string> match_suffixes;
  bool match_nonexistent = false;
  bool match_all = false;

  OverrideAction action = OverrideAction::kForgeIps;
  std::vector<net::Ipv4> ips;
  std::uint32_t forged_ttl = 600;
};

struct Behavior {
  BasePolicy base = BasePolicy::kHonest;
  std::vector<net::Ipv4> static_ips;  // for kStaticIpAll
  std::vector<Override> overrides;    // first match wins
  // Fraction of queries silently dropped (flaky devices, rate limiting).
  double drop_rate = 0.0;
};

}  // namespace dnswild::resolver
