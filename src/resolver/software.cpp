#include "resolver/software.h"

namespace dnswild::resolver {

const std::vector<SoftwareProfile>& software_catalog() {
  // Shares are the Table 3 percentages of the version-revealing population;
  // the remainder is distributed over a tail of further BIND releases (so
  // BIND sums to the paper's 60.2%) and assorted other software.
  static const std::vector<SoftwareProfile> kCatalog = {
      {"BIND", "9.8.2", "Apr 2012", "May 2012",
       "IP Bypass, DoS, Mem. Corr./Leak.", 0.198, true, true},
      {"BIND", "9.3.6", "Nov 2008", "Jan 2009", "DoS", 0.089, true, false},
      {"BIND", "9.7.3", "Feb 2012", "Nov 2012", "Mem. Overfl., DoS", 0.057,
       true, false},
      {"BIND", "9.9.5", "Feb 2014", "Sep 2014", "DoS", 0.052, true, false},
      {"Unbound", "1.4.22", "Mar 2014", "Nov 2014", "Mem. Overfl., DoS",
       0.048, true, false},
      {"Dnsmasq", "2.40", "Aug 2007", "Feb 2008", "RCE, DoS", 0.046, true,
       false},
      {"BIND", "9.8.4", "Oct 2012", "May 2013", "IP Bypass, DoS", 0.039,
       true, true},
      {"PowerDNS", "3.5.3", "Sep 2013", "Jun 2014", "Mem. Overfl.", 0.032,
       false, false},
      {"Dnsmasq", "2.52", "Jan 2010", "Jun 2010", "DoS", 0.029, true, false},
      {"Microsoft DNS", "6.1.7601", "Jun 2011", "Aug 2011", "DoS", 0.025,
       true, false},
      // Aggregated tail: many further releases, each below the Table 3
      // top-10 cutoff. BIND's tail brings it to the paper's 60.2% total.
      {"BIND", "9.6.2", "Dec 2009", "", "DoS", 0.022, true, false},
      {"BIND", "9.5.1", "Jan 2009", "Jul 2009", "DoS", 0.022, true, false},
      {"BIND", "9.4.2", "Nov 2007", "Jun 2008", "DoS", 0.022, true, false},
      {"BIND", "9.8.1", "Sep 2011", "Apr 2012", "DoS", 0.022, true, false},
      {"BIND", "9.7.0", "Feb 2010", "Sep 2010", "DoS", 0.024, true, false},
      {"BIND", "9.3.4", "Jan 2007", "Jul 2007", "DoS", 0.024, true, false},
      {"BIND", "9.2.4", "Nov 2004", "Jan 2005", "DoS", 0.023, true, false},
      // Non-BIND tail.
      {"Dnsmasq", "2.62", "Apr 2012", "", "DoS", 0.024, true, false},
      {"Dnsmasq", "2.45", "Jul 2008", "Nov 2008", "DoS", 0.024, true, false},
      {"Dnsmasq", "2.55", "Jun 2010", "Apr 2012", "DoS", 0.022, true, false},
      {"Unbound", "1.4.20", "May 2013", "Mar 2014", "DoS", 0.024, true,
       false},
      {"Unbound", "1.4.16", "May 2012", "Dec 2012", "DoS", 0.022, true,
       false},
      {"PowerDNS", "3.6.1", "Aug 2014", "", "", 0.022, false, false},
      {"PowerDNS", "3.3", "Jul 2013", "Jun 2014", "", 0.020, false, false},
      {"Nominum Vantio", "5.4.1", "Mar 2013", "", "", 0.020, false, false},
      {"ZyWALL DNS", "1.0", "Jan 2010", "", "DoS", 0.020, true, false},
      {"Microsoft DNS", "6.0.6002", "Apr 2009", "Jul 2011", "DoS", 0.020,
       true, false},
  };
  return kCatalog;
}

ChaosPopulationMix chaos_population_mix() noexcept { return {}; }

const std::vector<std::string>& hidden_version_strings() {
  static const std::vector<std::string> kStrings = {
      "none",
      "unknown",
      "Make my day",
      "get lost",
      "DNS server",
      "[secured]",
      "contact admin@localhost",
      "no version for you",
      "surely you must be joking",
      "not disclosed",
  };
  return kStrings;
}

}  // namespace dnswild::resolver
