// Resolver-side DNS cache with TTL decay and bounded capacity.
//
// Recursive resolvers answer repeated questions from cache with the
// remaining TTL — the very property both the paper's cache-snooping study
// (§2.6) and its anti-caching probe construction (§2.2: every probe embeds
// a random label "to avoid caching") depend on. OpenResolverService uses
// this cache for honest A resolutions; scanner probes bypass it naturally
// because their random prefixes never repeat.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ip.h"

namespace dnswild::resolver {

class DnsCache {
 public:
  explicit DnsCache(std::size_t capacity = 4096) : capacity_(capacity) {}

  struct Entry {
    std::vector<net::Ipv4> ips;
    std::uint32_t original_ttl = 0;
    bool dnssec = false;
    // CNAME chain of the cached resolution, (owner, target) pairs in
    // resolution order. Stored so a cache hit can rebuild the byte-exact
    // response the fresh resolution produced (CDN answers include the
    // chain records before the terminal A records).
    std::vector<std::pair<std::string, std::string>> cname_chain;
  };

  struct Hit {
    Entry entry;
    std::uint32_t remaining_ttl = 0;
  };

  // Inserts/overwrites; expires_at = now + ttl. Evicts the least recently
  // used entry when over capacity.
  void put(const std::string& key, Entry entry, std::int64_t now_seconds);

  // Fresh entry with its remaining TTL, or nullopt (miss or expired).
  // A hit refreshes recency.
  std::optional<Hit> get(const std::string& key, std::int64_t now_seconds);

  // Drops every expired entry (hits do this lazily per key).
  void purge_expired(std::int64_t now_seconds);

  // True when the cache cannot influence any response differently from a
  // freshly constructed (empty) cache at virtual time `now_seconds`: either
  // nothing was ever inserted, every insertion happened at `now_seconds`
  // itself (a hit then returns remaining_ttl == original_ttl, and the
  // rebuilt response is byte-identical to a fresh resolution), or every
  // entry has already expired. The summary is conservative — LRU evictions
  // do not relax it — so `true` is always safe. This is the cache half of
  // OpenResolverService::reconstructible (DESIGN.md §12).
  bool invisible(std::int64_t now_seconds) const noexcept {
    return !any_put_ || earliest_insert_ == now_seconds ||
           latest_expiry_ <= now_seconds;
  }

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  struct Slot {
    Entry entry;
    std::int64_t expires_at = 0;
    std::list<std::string>::iterator recency;  // position in lru_
  };

  void touch(const std::string& key, Slot& slot);

  std::size_t capacity_;
  std::unordered_map<std::string, Slot> entries_;
  std::list<std::string> lru_;  // front = most recent
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  // Invisibility summary (see invisible()). Reset when a put finds every
  // prior entry expired, so a host re-scanned weeks later becomes evictable
  // again once its old lines age out.
  bool any_put_ = false;
  std::int64_t earliest_insert_ = 0;
  std::int64_t latest_expiry_ = 0;
};

}  // namespace dnswild::resolver
