#include "resolver/device.h"

#include "http/factory.h"

namespace dnswild::resolver {

std::string_view hardware_class_name(HardwareClass hardware) noexcept {
  switch (hardware) {
    case HardwareClass::kRouter: return "Router";
    case HardwareClass::kEmbedded: return "Embedded";
    case HardwareClass::kFirewall: return "Firewall";
    case HardwareClass::kCamera: return "Camera";
    case HardwareClass::kDvr: return "DVR";
    case HardwareClass::kNas: return "NAS";
    case HardwareClass::kDslam: return "DSLAM";
    case HardwareClass::kOther: return "Others";
    case HardwareClass::kUnknown: return "Unknown";
  }
  return "?";
}

std::string_view os_class_name(OsClass os) noexcept {
  switch (os) {
    case OsClass::kLinux: return "Linux";
    case OsClass::kZynos: return "ZyNOS";
    case OsClass::kUnix: return "Unix";
    case OsClass::kWindows: return "Windows";
    case OsClass::kSmartWare: return "SmartWare";
    case OsClass::kRouterOs: return "RouterOS";
    case OsClass::kCentOs: return "CentOS";
    case OsClass::kOther: return "Others";
    case OsClass::kUnknown: return "Unknown";
  }
  return "?";
}

const std::vector<DeviceProfile>& device_catalog() {
  static const std::vector<DeviceProfile>* kCatalog = [] {
    auto* catalog = new std::vector<DeviceProfile>{
        // --- routers / modems / gateways: 34.1% -------------------------
        {"ZyXEL broadband router", HardwareClass::kRouter, OsClass::kZynos,
         {{21, "220 ZyXEL FTP version 1.0 ready at router\r\n"},
          {23, "ZyXEL router\r\nPassword: "},
          {80, http::router_login(0, 0)}},
         0.166},
        {"ADSL2+ modem router", HardwareClass::kRouter, OsClass::kLinux,
         {{23, "BusyBox v1.17.2 (2012-09-11) built-in shell (ash)\r\n"
               "TD-W8901 login: "},
          {80, http::router_login(1, 0)}},
         0.060},
        {"BusyBox home gateway", HardwareClass::kRouter, OsClass::kLinux,
         {{23, "BusyBox v1.00 (2013.04.17-09:45+0000) Built-in shell (ash)\r\n"
               "router login: "}},
         0.053},
        {"MikroTik router", HardwareClass::kRouter, OsClass::kRouterOs,
         {{21, "220 router FTP server (MikroTik 5.25) ready\r\n"},
          {23, "MikroTik v5.25\r\nLogin: "}},
         0.026},
        {"SmartWare VoIP gateway", HardwareClass::kRouter,
         OsClass::kSmartWare,
         {{23, "SmartWare R4.2 SN4112/JS/EUI login: "}},
         0.036},

        // --- embedded devices: 30.6% ------------------------------------
        {"Serial-to-LAN converter", HardwareClass::kEmbedded, OsClass::kUnix,
         {{23, "Lantronix UDS1100 Serial Server V6.5\r\nPress Enter for "
               "Setup Mode "},
          {80, "<html><head><title>Lantronix Web Manager</title></head>"
               "<body>Device Server</body></html>"}},
         0.090},
        {"Embedded Unix controller", HardwareClass::kEmbedded, OsClass::kUnix,
         {{23, "4.4BSD-Lite embedded console\r\ncontroller login: "}},
         0.090},
        {"Raspberry Pi board", HardwareClass::kEmbedded, OsClass::kLinux,
         {{22, "SSH-2.0-OpenSSH_6.0p1 Raspbian-4+deb7u2\r\n"},
          {80, "<html><head><title>raspberrypi control</title></head>"
               "<body>GPIO panel</body></html>"}},
         0.060},
        {"RTOS automation device", HardwareClass::kEmbedded, OsClass::kOther,
         {{80, "<html><head><title>Device Portal</title></head><body>"
               "powered by ThreadX / micro_httpd</body></html>"}},
         0.021},
        {"GoAhead embedded server", HardwareClass::kEmbedded,
         OsClass::kUnknown,
         {{80, "<html><head><title>index</title></head><body>"
               "<!-- GoAhead-Webs --></body></html>"}},
         0.045},

        // --- firewalls: 1.9% ---------------------------------------------
        {"BSD firewall appliance", HardwareClass::kFirewall, OsClass::kUnix,
         {{22, "SSH-2.0-OpenSSH_5.8p2 FreeBSD-20110503\r\n"},
          {80, "<html><head><title>Firewall Configuration Console"
               "</title></head><body>pf ruleset</body></html>"}},
         0.014},
        {"CentOS gateway firewall", HardwareClass::kFirewall,
         OsClass::kCentOs,
         {{22, "SSH-2.0-OpenSSH_5.3\r\n"},
          {80, "<html><head><title>Gateway Firewall</title></head><body>"
               "Apache/2.2.15 (CentOS) management UI</body></html>"}},
         0.005},

        // --- cameras: 1.8% -------------------------------------------------
        {"IP camera", HardwareClass::kCamera, OsClass::kLinux,
         {{23, "dvrdvs login: "}, {80, http::camera_login(0)}},
         0.018},

        // --- DVRs: 1.2% ---------------------------------------------------
        {"PowerPC Linux DVR", HardwareClass::kDvr, OsClass::kLinux,
         // The token the paper gives as its fingerprinting example (§2.4).
         {{23, "dm500plus login: "}},
         0.012},

        // --- other identified devices: 1.1% -------------------------------
        {"NAS appliance", HardwareClass::kNas, OsClass::kLinux,
         {{21, "220 NAS FTP server ready.\r\n"},
          {80, "<html><head><title>NAS Web Station</title></head><body>"
               "DiskStation</body></html>"}},
         0.007},
        {"ISP DSLAM", HardwareClass::kDslam, OsClass::kUnknown,
         {{23, "DSLAM_5.2 ADSL rack\r\nlogin: "}},
         0.004},

        // --- no identifying token (hardware unknown): 29.3% ---------------
        {"Windows server", HardwareClass::kUnknown, OsClass::kWindows,
         {{21, "220 Microsoft FTP Service\r\n"},
          {80, "<html><head><title>Under Construction</title></head><body>"
               "Served by Microsoft-IIS/7.5</body></html>"}},
         0.050},
        {"CentOS web host", HardwareClass::kUnknown, OsClass::kCentOs,
         {{80, "<html><head><title>Apache HTTP Server Test Page</title>"
               "</head><body>Apache/2.2.15 (CentOS)</body></html>"}},
         0.012},
        {"Ubuntu server", HardwareClass::kUnknown, OsClass::kLinux,
         {{22, "SSH-2.0-OpenSSH_5.9p1 Debian-5ubuntu1.4\r\n"}},
         0.022},
        {"SunOS server", HardwareClass::kUnknown, OsClass::kUnix,
         {{21, "220 ProFTPD Server (SunOS 5.10) ready.\r\n"}},
         0.019},
        {"Anonymous TCP host", HardwareClass::kUnknown, OsClass::kUnknown,
         {{21, "220 FTP server ready.\r\n"},
          {80, "<html><head><title>Welcome</title></head><body>"
               "It works!</body></html>"}},
         0.190},
    };
    return catalog;
  }();
  return *kCatalog;
}

}  // namespace dnswild::resolver
