#include "resolver/cache.h"

#include <algorithm>

namespace dnswild::resolver {

void DnsCache::touch(const std::string& key, Slot& slot) {
  lru_.erase(slot.recency);
  lru_.push_front(key);
  slot.recency = lru_.begin();
}

void DnsCache::put(const std::string& key, Entry entry,
                   std::int64_t now_seconds) {
  const std::int64_t expires_at =
      now_seconds + static_cast<std::int64_t>(entry.original_ttl);
  if (!any_put_ || latest_expiry_ <= now_seconds) {
    // Every prior entry has expired (or none existed): restart the
    // invisibility window at this insertion.
    any_put_ = true;
    earliest_insert_ = now_seconds;
    latest_expiry_ = expires_at;
  } else {
    latest_expiry_ = std::max(latest_expiry_, expires_at);
  }
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.entry = std::move(entry);
    it->second.expires_at = expires_at;
    touch(key, it->second);
    return;
  }
  while (entries_.size() >= capacity_ && !lru_.empty()) {
    const std::string& victim = lru_.back();
    entries_.erase(victim);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(key);
  Slot slot;
  slot.entry = std::move(entry);
  slot.expires_at = expires_at;
  slot.recency = lru_.begin();
  entries_.emplace(key, std::move(slot));
}

std::optional<DnsCache::Hit> DnsCache::get(const std::string& key,
                                           std::int64_t now_seconds) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  if (it->second.expires_at <= now_seconds) {
    lru_.erase(it->second.recency);
    entries_.erase(it);
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  touch(key, it->second);
  Hit hit;
  hit.entry = it->second.entry;
  hit.remaining_ttl =
      static_cast<std::uint32_t>(it->second.expires_at - now_seconds);
  return hit;
}

void DnsCache::purge_expired(std::int64_t now_seconds) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires_at <= now_seconds) {
      lru_.erase(it->second.recency);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dnswild::resolver
