#include "resolver/resolver.h"

#include "dns/chaos.h"
#include "util/hash.h"
#include "util/strings.h"

namespace dnswild::resolver {

namespace {

// Decision-stream tags hashed with the per-request key; distinct tags give
// independent draws from one key.
constexpr std::uint64_t kDiceDrop = 0xd70bULL;
constexpr std::uint64_t kDiceLatency = 0x1a7eULL;
constexpr std::uint64_t kDiceBogusIp = 0xb065ULL;

// Identity of one request as seen by this resolver: every octet of the
// datagram plus the sender-side retransmission counter, mixed with the
// resolver's own seed. All per-query randomness hangs off this key, so a
// byte-identical retransmission (seq bumped) re-rolls its dice while the
// same request always gets the same fate on every thread.
std::uint64_t request_key(std::uint64_t seed, const net::UdpPacket& request) {
  return util::hash_words(
      {seed,
       (static_cast<std::uint64_t>(request.src.value()) << 32) |
           request.dst.value(),
       (static_cast<std::uint64_t>(request.src_port) << 48) |
           (static_cast<std::uint64_t>(request.dst_port) << 32) | request.seq,
       util::digest_bytes(request.payload)});
}

}  // namespace

OpenResolverService::OpenResolverService(ResolverConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_capacity == 0 ? 1 : config_.cache_capacity) {}

bool OpenResolverService::reconstructible(std::int64_t now_seconds) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return snoop_counts_.empty() &&
         (config_.cache_capacity == 0 || cache_.invisible(now_seconds));
}

const Override* OpenResolverService::match_override(
    const std::string& lower_name) const {
  for (const Override& override : config_.behavior.overrides) {
    if (override.match_all) return &override;
    for (const auto& domain : override.domains) {
      if (domain == lower_name) return &override;
    }
    for (const auto& suffix : override.match_suffixes) {
      if (lower_name == suffix ||
          (lower_name.size() > suffix.size() &&
           util::ends_with(lower_name, suffix) &&
           lower_name[lower_name.size() - suffix.size() - 1] == '.')) {
        return &override;
      }
    }
    if (override.match_nonexistent &&
        !config_.registry->exists(lower_name)) {
      return &override;
    }
  }
  return nullptr;
}

void OpenResolverService::emit(const dns::Message& response,
                               const net::UdpPacket& request,
                               std::vector<net::UdpReply>& replies,
                               int latency_ms) {
  net::UdpReply reply;
  reply.packet.payload = response.encode();
  reply.latency_ms = latency_ms;
  if (config_.reply_src) reply.packet.src = *config_.reply_src;
  if (config_.mangle_reply_port) {
    // Some devices answer from a fresh ephemeral port (§3.3).
    reply.packet.dst = request.src;
    reply.packet.dst_port =
        static_cast<std::uint16_t>(33000 + (request.src_port % 4096));
  }
  replies.push_back(std::move(reply));
}

std::optional<dns::Message> OpenResolverService::answer_a_query(
    const dns::Message& query, const net::UdpPacket& packet,
    std::uint64_t request_key) {
  const dns::Question& question = query.questions.front();
  const std::string lower_name = question.name.lower();
  const Behavior& behavior = config_.behavior;

  const auto forged = [&](const std::vector<net::Ipv4>& ips,
                          std::uint32_t ttl) {
    dns::Message response = dns::Message::make_response(query, dns::RCode::kNoError);
    for (const net::Ipv4 ip : ips) {
      response.answers.push_back(
          dns::ResourceRecord::a(question.name, ip, ttl));
    }
    return response;
  };

  // NOERROR answer with an optional CNAME chain ahead of the A records —
  // shared by the fresh-resolution and cache-hit paths so a hit rebuilds
  // the exact bytes a fresh resolution produced.
  const auto resolved = [&](const std::vector<net::Ipv4>& ips,
                            std::uint32_t ttl, bool dnssec,
                            const std::vector<std::pair<std::string,
                                                        std::string>>& chain) {
    dns::Message response =
        dns::Message::make_response(query, dns::RCode::kNoError);
    for (const auto& [owner, target] : chain) {
      const auto owner_name = dns::Name::parse(owner);
      const auto target_name = dns::Name::parse(target);
      if (owner_name && target_name) {
        response.answers.push_back(
            dns::ResourceRecord::cname(*owner_name, *target_name, ttl));
      }
    }
    dns::Name a_owner = question.name;
    if (!chain.empty()) {
      if (auto tail = dns::Name::parse(chain.back().second)) {
        a_owner = *std::move(tail);
      }
    }
    for (const net::Ipv4 ip : ips) {
      response.answers.push_back(dns::ResourceRecord::a(a_owner, ip, ttl));
    }
    response.header.ad = dnssec && config_.validates_dnssec;
    return response;
  };

  // Overrides take precedence over the base policy: a censoring resolver is
  // honest for everything outside its blocklist.
  if (const Override* override = match_override(lower_name)) {
    switch (override->action) {
      case OverrideAction::kForgeIps:
        return forged(override->ips, override->forged_ttl);
      case OverrideAction::kForgeRandomIp: {
        // GFW-style: a fresh bogus address per query, outside reserved
        // space so it looks superficially plausible. Hashed from the
        // request identity, not a stream: the same query forges the same
        // address regardless of delivery order.
        net::Ipv4 bogus;
        for (std::uint64_t k = 0;; ++k) {
          bogus = net::Ipv4(static_cast<std::uint32_t>(
              util::hash_words({request_key, kDiceBogusIp, k})));
          if (!net::is_reserved(bogus)) break;
        }
        return forged({bogus}, override->forged_ttl);
      }
      case OverrideAction::kSelfIp:
        return forged({packet.dst}, override->forged_ttl);
      case OverrideAction::kEmptyAnswer:
        return dns::Message::make_response(query, dns::RCode::kNoError);
      case OverrideAction::kNxDomain:
        return dns::Message::make_response(query, dns::RCode::kNxDomain);
      case OverrideAction::kRefused:
        return dns::Message::make_response(query, dns::RCode::kRefused);
      case OverrideAction::kServFail:
        return dns::Message::make_response(query, dns::RCode::kServFail);
      case OverrideAction::kIgnore:
        return std::nullopt;
    }
  }

  switch (behavior.base) {
    case BasePolicy::kIgnoreAll:
      return std::nullopt;
    case BasePolicy::kRefuseAll:
      return dns::Message::make_response(query, dns::RCode::kRefused);
    case BasePolicy::kServFailAll:
      return dns::Message::make_response(query, dns::RCode::kServFail);
    case BasePolicy::kEmptyAll:
      return dns::Message::make_response(query, dns::RCode::kNoError);
    case BasePolicy::kStaticIpAll:
      return forged(behavior.static_ips, 600);
    case BasePolicy::kNsOnlyAll: {
      // Recursion denied: hand back a referral instead of an answer.
      dns::Message response =
          dns::Message::make_response(query, dns::RCode::kNoError);
      response.header.ra = false;
      const std::string tld_text =
          question.name.empty()
              ? std::string{}
              : question.name.labels().back();
      response.authorities.push_back(dns::ResourceRecord::ns(
          dns::Name::must_parse(tld_text.empty() ? "." : tld_text),
          dns::Name::must_parse("a.root-servers.example"), 172800));
      return response;
    }
    case BasePolicy::kHonest: {
      const std::int64_t now_seconds = config_.clock->minutes() * 60;
      if (config_.cache_capacity > 0) {
        if (auto hit = cache_.get(lower_name, now_seconds)) {
          return resolved(hit->entry.ips, hit->remaining_ttl,
                          hit->entry.dnssec, hit->entry.cname_chain);
        }
      }
      const AuthAnswer answer =
          config_.registry->resolve_a(lower_name, config_.region);
      if (answer.rcode != dns::RCode::kNoError) {
        return dns::Message::make_response(query, answer.rcode);
      }
      if (config_.cache_capacity > 0 && answer.ttl > 0) {
        cache_.put(lower_name,
                   DnsCache::Entry{answer.ips, answer.ttl, answer.dnssec,
                                   answer.cname_chain},
                   now_seconds);
      }
      return resolved(answer.ips, answer.ttl, answer.dnssec,
                      answer.cname_chain);
    }
  }
  return std::nullopt;
}

std::optional<dns::Message> OpenResolverService::answer_chaos(
    const dns::Message& query) {
  const dns::Question& question = query.questions.front();
  const std::string lower_name = question.name.lower();
  const bool version_probe =
      lower_name == "version.bind" || lower_name == "version.server";
  if (!version_probe) {
    return dns::Message::make_response(query, dns::RCode::kNotImp);
  }
  switch (config_.chaos) {
    case ChaosBehavior::kRefused:
      return dns::Message::make_response(query, dns::RCode::kRefused);
    case ChaosBehavior::kServFail:
      return dns::Message::make_response(query, dns::RCode::kServFail);
    case ChaosBehavior::kNoErrorEmpty:
      return dns::Message::make_response(query, dns::RCode::kNoError);
    case ChaosBehavior::kHiddenString:
    case ChaosBehavior::kRevealVersion: {
      dns::Message response =
          dns::Message::make_response(query, dns::RCode::kNoError);
      response.answers.push_back(dns::ResourceRecord::txt(
          question.name, {config_.version_banner}, 0, dns::RClass::kCH));
      return response;
    }
  }
  return std::nullopt;
}

std::optional<dns::Message> OpenResolverService::answer_ns_snoop(
    const dns::Message& query) {
  const dns::Question& question = query.questions.front();
  const std::string tld = question.name.lower();
  const AuthRegistry::TldInfo* info = config_.registry->tld(tld);
  if (info == nullptr) {
    return dns::Message::make_response(query, dns::RCode::kNxDomain);
  }
  const int seen = snoop_counts_[tld]++;
  const std::int64_t now_seconds = config_.clock->minutes() * 60;
  const SnoopModel::Sample sample =
      config_.snoop.sample(tld, now_seconds, config_.seed, seen);
  if (!sample.respond) return std::nullopt;
  dns::Message response =
      dns::Message::make_response(query, dns::RCode::kNoError);
  if (sample.cached) {
    for (const auto& ns_name : info->ns_names) {
      response.answers.push_back(dns::ResourceRecord::ns(
          question.name, dns::Name::must_parse(ns_name),
          sample.remaining_ttl));
    }
  }
  return response;
}

void OpenResolverService::handle(const net::UdpPacket& request,
                                 std::vector<net::UdpReply>& replies) {
  const auto query = dns::Message::decode(request.payload);
  if (!query || query->header.qr || query->questions.empty()) return;
  const std::uint64_t key = request_key(config_.seed, request);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (config_.behavior.drop_rate > 0.0 &&
      util::hash_unit(util::hash_words({key, kDiceDrop})) <
          config_.behavior.drop_rate) {
    return;
  }

  const dns::Question& question = query->questions.front();
  std::optional<dns::Message> response;
  if (question.qclass == dns::RClass::kCH &&
      question.qtype == dns::RType::kTXT) {
    response = answer_chaos(*query);
  } else if (question.qclass == dns::RClass::kIN &&
             question.qtype == dns::RType::kNS && !query->header.rd) {
    response = answer_ns_snoop(*query);
  } else if (question.qclass == dns::RClass::kIN &&
             question.qtype == dns::RType::kA) {
    response = answer_a_query(*query, request, key);
  } else {
    response = dns::Message::make_response(*query, dns::RCode::kNotImp);
  }
  if (!response) return;

  const int latency =
      config_.base_latency_ms +
      static_cast<int>(util::hash_words({key, kDiceLatency}) % 25);
  emit(*response, request, replies, latency);
}

ForwarderService::ForwarderService(net::UdpService* backend,
                                   net::Ipv4 backend_address,
                                   int extra_latency_ms)
    : backend_(backend),
      backend_address_(backend_address),
      extra_latency_ms_(extra_latency_ms) {}

void ForwarderService::handle(const net::UdpPacket& request,
                              std::vector<net::UdpReply>& replies) {
  if (backend_ == nullptr) return;
  std::vector<net::UdpReply> backend_replies;
  backend_->handle(request, backend_replies);
  for (net::UdpReply& reply : backend_replies) {
    // The answer leaves through the recursive backend's interface, so the
    // prober sees a source address it never probed.
    reply.packet.src = backend_address_;
    reply.latency_ms += extra_latency_ms_;
    replies.push_back(std::move(reply));
  }
}

}  // namespace dnswild::resolver
