// Cache-snooping response models (§2.6).
//
// The study probes each resolver's cache with non-recursive NS queries for
// 15 TLDs, hourly for 36 hours, and classifies utilization from the TTL
// timelines. Rather than simulating millions of independent client
// populations, each resolver carries a SnoopModel: a deterministic cache
// timeline parameterized per (resolver, TLD) that reproduces the behaviour
// classes the paper reports — active caches refreshed quickly or slowly
// after expiry, empty caches, single-response hosts, static/zero TTLs,
// long-TTL caches that never expire in the window, and TTL-resetting
// load-balanced groups.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace dnswild::resolver {

enum class SnoopProfile {
  kNoCache,          // NOERROR with empty answer to every snoop (7.3%)
  kSingleThenSilent, // one response per TLD, then silence (3.3%)
  kStaticTtl,        // same TTL value on every sample
  kZeroTtl,          // TTL always 0
  kActiveFast,       // client re-adds entry within 5 s of expiry (38.7%)
  kActiveSlow,       // re-added minutes-to-hours after expiry
  kActiveLongTtl,    // decreasing TTL, but no expiry inside the window (4.0%)
  kTtlReset,         // TTL reset ahead of expiry / load-balanced group (19.6%)
};

struct SnoopModel {
  SnoopProfile profile = SnoopProfile::kNoCache;
  std::uint32_t tld_ttl = 21600;  // seconds the TLD NS set stays cached

  struct Sample {
    bool respond = false;   // a DNS response is sent at all
    bool cached = false;    // the answer section carries the NS records
    std::uint32_t remaining_ttl = 0;
  };

  // Cache state for `tld` at absolute simulated second `t`. `host_seed`
  // personalizes phases/gaps; `queries_seen_for_tld` is the number of
  // earlier snoop queries for this TLD at this resolver (drives
  // kSingleThenSilent and per-query jitter).
  Sample sample(std::string_view tld, std::int64_t t_seconds,
                std::uint64_t host_seed, int queries_seen_for_tld) const;

  // True refresh gap (seconds between expiry and client-driven re-add) the
  // model uses for this (resolver, TLD); exposed for tests.
  std::uint32_t refresh_gap(std::string_view tld,
                            std::uint64_t host_seed) const;
};

}  // namespace dnswild::resolver
