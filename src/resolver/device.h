// Hardware/OS device catalog for resolver hosts (§2.4, Table 4).
//
// The study fingerprints the devices behind open resolvers by connecting to
// FTP, HTTP, HTTPS, SSH, and Telnet and matching banner tokens (2,245
// hand-written regular expressions in the paper; a representative token
// rule set lives in src/analysis/fingerprint). This catalog defines the
// device population worldgen instantiates: each profile carries the banner
// text its TCP services expose and the ground-truth hardware/OS class,
// with population shares matching Table 4.
//
// NOTE on Table 4 shares: the OS column pairing in the source text is
// ambiguous for two values (21.3 / 16.6); the prose anchors ZyNOS. See
// EXPERIMENTS.md for the reconstruction we adopt.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dnswild::resolver {

enum class HardwareClass {
  kRouter,    // routers, modems, gateways (grouped, §2.4)
  kEmbedded,  // embedded OS/app, serial-to-LAN, microcontroller boards
  kFirewall,
  kCamera,
  kDvr,
  kNas,
  kDslam,
  kOther,
  kUnknown,  // TCP payload obtained but no identifying token
};

enum class OsClass {
  kLinux,
  kZynos,
  kUnix,
  kWindows,
  kSmartWare,
  kRouterOs,
  kCentOs,
  kOther,
  kUnknown,
};

std::string_view hardware_class_name(HardwareClass hardware) noexcept;
std::string_view os_class_name(OsClass os) noexcept;

struct DeviceProfile {
  std::string label;  // human-readable device family
  HardwareClass hardware = HardwareClass::kUnknown;
  OsClass os = OsClass::kUnknown;
  // Banner text per TCP port (21 FTP, 22 SSH, 23 Telnet, 80 HTTP body).
  std::vector<std::pair<std::uint16_t, std::string>> banners;
  // Share within the TCP-responsive resolver population.
  double share = 0.0;
};

// The device population: profiles whose hardware-class marginals match
// Table 4 (Router 34.1%, Embedded 30.6%, Firewall 1.9%, Camera 1.8%,
// DVR 1.2%, Others incl. NAS/DSLAM 1.1%, Unknown 29.3%).
const std::vector<DeviceProfile>& device_catalog();

// Fraction of resolvers exposing at least one scannable TCP service
// (5,459,524 of 20.77M -> 26.3%, §2.4).
inline constexpr double kTcpResponsiveShare = 0.263;

}  // namespace dnswild::resolver
