// Great-Firewall-style on-path DNS injection (§4.2, §5).
//
// The GFW does not modify resolver answers: it watches DNS queries crossing
// monitored links and injects a forged response that (likely) arrives ahead
// of the legitimate one. The paper detects exactly this signature — two
// responses for one query, the forged first — and also observes that *any*
// address inside monitored ranges appears to "answer" censored queries.
// GfwInjector implements both effects as a net::World injector hook.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "net/ip.h"
#include "net/services.h"
#include "net/world.h"

namespace dnswild::resolver {

struct GfwConfig {
  // Links the firewall observes: queries *to* these prefixes are in scope.
  std::vector<net::Cidr> monitored_prefixes;
  // Lower-case FQDNs whose queries trigger injection; subdomains included.
  std::vector<std::string> censored_suffixes;
  // Latency of the forged reply; must beat typical resolver latency.
  int injected_latency_ms = 4;
  std::uint64_t seed = 0;
};

// Injectors run inside the concurrent traffic phase on every sender's
// thread, so the forged answer's bogus address is derived by hashing the
// observed packet (stateless, thread-count invariant) and the statistics
// counter is atomic.
class GfwInjector {
 public:
  explicit GfwInjector(GfwConfig config);

  // net::Injector entry point.
  void operator()(const net::UdpPacket& request,
                  std::vector<net::UdpReply>& injected);

  // True when the (destination, queried name) pair is in scope.
  bool in_scope(net::Ipv4 dst, const std::string& lower_name) const;

  std::uint64_t injected_count() const noexcept {
    return injected_count_.load();
  }

 private:
  GfwConfig config_;
  std::atomic<std::uint64_t> injected_count_{0};
};

// Registers the injector on a world (the world stores a copy by value via
// std::function; statistics live in the shared state behind this wrapper).
void install_gfw(net::World& world, std::shared_ptr<GfwInjector> injector);

}  // namespace dnswild::resolver
