// The open DNS resolver endpoint.
//
// One OpenResolverService instance is the UDP:53 service of one simulated
// host. It answers:
//   * IN A queries through its Behavior (honest recursion against the
//     AuthRegistry, or any of the manipulation policies of §3-4),
//   * CH TXT version.bind / version.server per its software profile (§2.4),
//   * non-recursive IN NS queries from its SnoopModel (§2.6).
// Responses faithfully echo the question octets (0x20 case included) the
// way real resolvers do, which is what makes the scanner's case-encoded
// resolver IDs recoverable.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "dns/message.h"
#include "net/clock.h"
#include "net/services.h"
#include "resolver/authns.h"
#include "resolver/behavior.h"
#include "resolver/cache.h"
#include "resolver/snoop.h"
#include "resolver/software.h"
#include "util/rng.h"

namespace dnswild::resolver {

struct ResolverConfig {
  const AuthRegistry* registry = nullptr;  // required
  const net::SimClock* clock = nullptr;    // required
  std::uint64_t seed = 0;

  Behavior behavior;

  // CHAOS fingerprinting surface.
  ChaosBehavior chaos = ChaosBehavior::kRefused;
  std::string version_banner;  // for kRevealVersion / kHiddenString

  SnoopModel snoop;

  // Country code used for region-dependent (CDN) resolution.
  std::string region;

  // Reply-source override: DNS proxies / multi-homed hosts answer from a
  // different address than the probe target (§2.2, 630-750k per week).
  std::optional<net::Ipv4> reply_src;
  // A small population answers from a different source *port*; the scanner
  // must then fall back to the 0x20 bits to recover its ID (§3.3).
  bool mangle_reply_port = false;

  // Resolver validates DNSSEC and sets the AD bit on signed answers (§5).
  bool validates_dnssec = true;

  // Answer-cache capacity for honest resolutions; 0 disables caching.
  std::size_t cache_capacity = 4096;

  int base_latency_ms = 30;
};

class OpenResolverService : public net::UdpService {
 public:
  explicit OpenResolverService(ResolverConfig config);

  void handle(const net::UdpPacket& request,
              std::vector<net::UdpReply>& replies) override;

  // True when a freshly derived instance would answer byte-identically at
  // `now_seconds`: no snoop counters accumulated and the answer cache is
  // wire-invisible. Gates lazy-host eviction (DESIGN.md §12).
  bool reconstructible(std::int64_t now_seconds) const override;

  const ResolverConfig& config() const noexcept { return config_; }

 private:
  std::optional<dns::Message> answer_a_query(const dns::Message& query,
                                             const net::UdpPacket& packet,
                                             std::uint64_t request_key);
  std::optional<dns::Message> answer_chaos(const dns::Message& query);
  std::optional<dns::Message> answer_ns_snoop(const dns::Message& query);

  // Applies the first matching override, if any.
  const Override* match_override(const std::string& lower_name) const;

  void emit(const dns::Message& response, const net::UdpPacket& request,
            std::vector<net::UdpReply>& replies, int latency_ms);

  ResolverConfig config_;
  // Serializes handle(): the cache and snoop counters are per-resolver
  // mutable state. All per-query randomness (drop dice, latency jitter,
  // forged-random addresses) is hashed from (config seed, packet identity)
  // instead of drawn from a stream, so a reply's bytes and timing depend
  // only on what the request is — never on which thread delivered it, in
  // what order, or whether the service was evicted and re-derived in
  // between. The lock covers the genuinely stateful remainder (cache,
  // snoop counters) for shared instances such as ForwarderService backends.
  mutable std::mutex mutex_;
  DnsCache cache_;
  std::unordered_map<std::string, int> snoop_counts_;  // per-TLD queries seen
};

// DNS proxy in front of a backend resolver: forwards queries and answers
// from the backend's address (the multi-homed signature the weekly scans
// observe). The backend service is owned elsewhere (usually by the backend
// host registered in the World).
class ForwarderService : public net::UdpService {
 public:
  ForwarderService(net::UdpService* backend, net::Ipv4 backend_address,
                   int extra_latency_ms = 15);

  void handle(const net::UdpPacket& request,
              std::vector<net::UdpReply>& replies) override;

 private:
  net::UdpService* backend_;
  net::Ipv4 backend_address_;
  int extra_latency_ms_;
};

}  // namespace dnswild::resolver
