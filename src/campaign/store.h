// Crash-safe on-disk store for campaign scan epochs (DESIGN.md §14).
//
// One file per epoch (`epoch_NNNNN.dnsw`) holds everything the campaign
// needs to rebuild its final report and to plan the next epoch without
// re-running history: the scan tallies, the (carried-forward) NOERROR
// population, the epoch's fresh per-/20 telemetry rows, and any
// degradation records. Files are written deterministically (fixed-width
// little-endian fields, no timestamps, no floats except bit-cast doubles)
// to a `.tmp` sibling and published by rename, so a crash never leaves a
// half-written epoch under the real name.
//
// Every section payload carries a CRC-32 and the file ends in a trailer
// whose CRC covers all preceding bytes: truncation loses the trailer,
// a bit flip anywhere breaks a checksum, and either way load_all()
// quarantines the file (renamed `.corrupt`), records the issue, and
// returns only the contiguous good prefix of epochs — the campaign
// resumes from the previous good epoch instead of aborting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/degradation.h"
#include "obs/prefix_telemetry.h"

namespace dnswild::campaign {

enum class EpochKind : std::uint8_t {
  kFull = 0,   // whole-universe sweep
  kDelta = 1,  // flagged-prefix re-probe with carry-forward
};

// One persisted scan epoch. All fields are deterministic for a given
// (campaign seed, epoch index, world seed) — virtual seconds included,
// since the event core is a serial replay — so stored bytes are
// byte-identical across thread counts and across crash/resume.
struct EpochRecord {
  std::uint32_t index = 0;
  std::uint64_t start_minute = 0;  // virtual clock at epoch start
  EpochKind kind = EpochKind::kFull;

  // Scan tallies (Ipv4ScanSummary subset; all thread-count invariant).
  std::uint64_t probed = 0;
  std::uint64_t skipped_reserved = 0;
  std::uint64_t skipped_blacklist = 0;
  std::uint64_t responses = 0;
  std::uint64_t noerror = 0;
  std::uint64_t refused = 0;
  std::uint64_t servfail = 0;
  std::uint64_t nxdomain = 0;
  std::uint64_t other_rcode = 0;
  std::uint64_t retry_retransmissions = 0;
  std::uint64_t retry_exhausted = 0;
  double virtual_scan_seconds = 0.0;

  // Delta planning provenance: how many /20s the epoch re-probed (0 for a
  // full sweep = "all of them") and how many responders were carried
  // forward from the previous epoch without a fresh probe.
  std::uint64_t flagged_prefixes = 0;
  std::uint64_t carried_forward = 0;

  // The epoch's NOERROR population, sorted ascending (host-order
  // addresses). For delta epochs this includes the carry-forward.
  std::vector<std::uint32_t> population;

  // Fresh per-/20 observations: telemetry snapshot at epoch end minus the
  // snapshot at epoch start (includes the inter-epoch rebind churn).
  obs::PrefixTable prefixes;

  // Degradations recorded while the epoch ran (deterministic ones only).
  std::vector<core::StageDegradation> degradations;
};

// One problem load_all() encountered: a corrupt/truncated/mismatched file
// and why it was rejected. Surfaced as campaign degradation records.
struct StoreIssue {
  std::string file;
  std::string cause;  // "truncated", "bad section checksum", ...
};

class EpochStore {
 public:
  // `config_hash` fingerprints every campaign parameter that changes
  // stored bytes; load_all() rejects files written under a different
  // configuration so a resumed campaign can never splice incompatible
  // epochs together.
  EpochStore(std::string dir, std::uint64_t config_hash);

  const std::string& dir() const noexcept { return dir_; }
  std::uint64_t config_hash() const noexcept { return config_hash_; }

  static std::string epoch_filename(std::uint32_t index);
  std::string epoch_path(std::uint32_t index) const;

  // Serializes `record` to `<dir>/epoch_NNNNN.dnsw.tmp`, fsyncs, and
  // renames over the final name. Returns false (with `error` filled) on
  // any I/O failure; a failed save never leaves a partial final file.
  bool save(const EpochRecord& record, std::string* error = nullptr) const;

  // Parses one epoch file. Returns false with `cause` set on any
  // validation failure (bad magic/version/config hash, index mismatch,
  // framing overrun, checksum mismatch, missing trailer).
  bool load(std::uint32_t index, EpochRecord* record,
            std::string* cause) const;

  struct ScanResult {
    // Contiguous good epochs 0..n-1. A corrupt or missing epoch k drops
    // it and everything after it (later epochs depend on k's population).
    std::vector<EpochRecord> epochs;
    std::vector<StoreIssue> issues;
  };

  // Validates the store and returns the longest usable prefix. Corrupt
  // files are renamed `<name>.corrupt` (kept for post-mortems, out of the
  // way of the re-run that will overwrite the epoch).
  ScanResult load_all() const;

  // Deterministic serialized bytes for `record` (exposed for tests).
  std::vector<std::uint8_t> encode(const EpochRecord& record) const;

 private:
  std::string dir_;
  std::uint64_t config_hash_ = 0;
};

}  // namespace dnswild::campaign
