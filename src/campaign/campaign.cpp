#include "campaign/campaign.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <unordered_map>

#include "net/ip.h"
#include "util/hash.h"
#include "util/rng.h"

namespace dnswild::campaign {
namespace {

// Per-prefix observation history rebuilt from epoch records: the latest
// fresh scan observation and the one before it. Only rows that actually
// probed the prefix count (a rebind-only diff row is churn telemetry, not
// a scan observation).
struct ObservationHistory {
  std::unordered_map<std::uint32_t, obs::PrefixStats> last;
  std::unordered_map<std::uint32_t, obs::PrefixStats> prev;

  void fold(const EpochRecord& record) {
    for (const obs::PrefixRow& row : record.prefixes.rows) {
      if (row.stats.probes == 0) continue;
      auto it = last.find(row.key);
      if (it != last.end()) prev[row.key] = it->second;
      last[row.key] = row.stats;
    }
  }

  // Aligned (previous, latest) observation tables for every prefix seen
  // at least twice, ready for obs::changed_prefixes. Rebinds are zeroed:
  // stored rows embed inter-epoch lease churn, and comparing it across
  // observations would re-flag a prefix every epoch after a single rebind
  // (the live snapshot diff across the clock advance owns rebind
  // detection).
  void aligned_tables(obs::PrefixTable* a, obs::PrefixTable* b) const {
    std::vector<std::uint32_t> keys;
    keys.reserve(prev.size());
    for (const auto& [key, stats] : prev) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (std::uint32_t key : keys) {
      obs::PrefixRow prev_row{key, prev.at(key)};
      obs::PrefixRow last_row{key, last.at(key)};
      prev_row.stats.rebinds = 0;
      last_row.stats.rebinds = 0;
      a->rows.push_back(prev_row);
      b->rows.push_back(last_row);
    }
  }
};

// /20 keys whose rebind count moved by at least `threshold` between two
// cumulative snapshots (the inter-epoch clock advance).
std::vector<std::uint32_t> rebind_flags(const obs::PrefixTable& before,
                                        const obs::PrefixTable& after,
                                        std::uint64_t threshold) {
  std::vector<std::uint32_t> out;
  std::size_t i = 0;
  for (const obs::PrefixRow& row : after.rows) {
    while (i < before.rows.size() && before.rows[i].key < row.key) ++i;
    std::uint64_t base = 0;
    if (i < before.rows.size() && before.rows[i].key == row.key) {
      base = before.rows[i].stats.rebinds;
    }
    if (row.stats.rebinds - base >= threshold) out.push_back(row.key);
  }
  return out;
}

std::vector<std::uint32_t> sorted_union(std::vector<std::uint32_t> a,
                                        std::vector<std::uint32_t> b) {
  a.insert(a.end(), b.begin(), b.end());
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  return a;
}

std::vector<std::uint32_t> sorted_population(
    const std::vector<net::Ipv4>& targets) {
  std::vector<std::uint32_t> out;
  out.reserve(targets.size());
  for (net::Ipv4 ip : targets) out.push_back(ip.value());
  std::sort(out.begin(), out.end());
  return out;
}

analysis::EpochObservation to_observation(const EpochRecord& record) {
  analysis::EpochObservation obs;
  obs.index = record.index;
  obs.start_minute = record.start_minute;
  obs.delta = record.kind == EpochKind::kDelta;
  obs.probed = record.probed;
  // Weekly NOERROR is the epoch's effective population (carry-forward
  // included) so the Fig. 1 series stays continuous across delta epochs;
  // REFUSED/SERVFAIL are probed-only tallies.
  obs.noerror = record.population.size();
  obs.refused = record.refused;
  obs.servfail = record.servfail;
  obs.population = record.population;
  return obs;
}

void append(std::string& out, const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, copy);
  va_end(copy);
  if (needed > 0) {
    const std::size_t base = out.size();
    out.resize(base + static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data() + base, static_cast<std::size_t>(needed) + 1,
                   format, args);
    out.resize(base + static_cast<std::size_t>(needed));
  }
  va_end(args);
}

}  // namespace

CampaignEngine::CampaignEngine(net::World& world, CampaignTargets targets,
                               CampaignConfig config)
    : world_(world), targets_(std::move(targets)), config_(std::move(config)) {
  std::uint64_t h = util::hash_words(
      {config_.seed, config_.interval_minutes,
       static_cast<std::uint64_t>(config_.delta), config_.full_every,
       config_.max_in_flight, config_.thresholds.min_probes,
       static_cast<std::uint64_t>(
           std::llround(config_.thresholds.response_rate_delta * 1e6)),
       config_.thresholds.fault_hit_delta, config_.thresholds.rebind_delta});
  const std::string zone = targets_.zone.to_string();
  h = util::hash_words(
      {h, targets_.scanner_ip.value(),
       util::digest_bytes(std::vector<std::uint8_t>(zone.begin(), zone.end())),
       static_cast<std::uint64_t>(world_.host_count())});
  for (const net::Cidr& cidr : targets_.universe) {
    h = util::hash_words({h, cidr.base().value(),
                          static_cast<std::uint64_t>(cidr.prefix_len())});
  }
  config_hash_ = h;
}

std::vector<net::Ipv4> CampaignEngine::delta_targets(
    const std::vector<std::uint32_t>& flags) const {
  std::vector<net::Ipv4> targets;
  for (const net::Cidr& cidr : targets_.universe) {
    const std::uint64_t size = cidr.size();
    for (std::uint64_t offset = 0; offset < size;) {
      const net::Ipv4 first = cidr.at(offset);
      // Addresses left in this /20 (flag granularity) within the prefix.
      const std::uint64_t span = 4096 - (first.value() & 0xFFFu);
      const std::uint64_t end = std::min(size, offset + span);
      const std::uint32_t key =
          obs::PrefixTelemetry::key_of(first.value());
      if (std::binary_search(flags.begin(), flags.end(), key)) {
        for (std::uint64_t i = offset; i < end; ++i) {
          const net::Ipv4 address = cidr.at(i);
          if (!net::is_reserved(address)) targets.push_back(address);
        }
      }
      offset = end;
    }
  }
  return targets;
}

CampaignResult CampaignEngine::run(bool resume) {
  EpochStore store(config_.store_dir, config_hash_);
  CampaignResult result;
  std::vector<EpochRecord> epochs;
  if (resume) {
    EpochStore::ScanResult loaded = store.load_all();
    epochs = std::move(loaded.epochs);
    result.store_issues = std::move(loaded.issues);
    if (epochs.size() > config_.epochs) epochs.resize(config_.epochs);
  }
  const std::uint32_t first_live = static_cast<std::uint32_t>(epochs.size());
  result.resumed_from = first_live;

  const std::int64_t base_minute = world_.clock().minutes();
  if (!epochs.empty() &&
      epochs.front().start_minute !=
          static_cast<std::uint64_t>(base_minute)) {
    throw std::runtime_error(
        "campaign store schedule does not match the world clock");
  }

  // Flush leases that were already expired at construction time before
  // anything observes the world: without this, the first inter-epoch
  // clock advance would flush them *as if* they were that interval's
  // churn and flag their prefixes even on a frozen clock.
  world_.set_time_minutes(base_minute);

  // Replay the clock schedule of the completed epochs: the same one
  // set_time_minutes call per boundary the live loop makes, so lease
  // state AND per-advance rebind telemetry land exactly where the
  // uninterrupted run put them (addresses are pure functions of (seed,
  // time); rebind *counts* depend on the advance boundaries, which is why
  // the schedule is replayed instead of jumping straight to the end).
  // interval 0 ("frozen clock") skips the call entirely — rebind_expired
  // re-asserts collision-displaced hosts on every invocation, so even a
  // zero-length advance is not a no-op, and the resumed process must make
  // exactly the calls the uninterrupted one made.
  for (std::uint32_t i = 1; i < first_live; ++i) {
    if (config_.interval_minutes == 0) break;
    world_.set_time_minutes(base_minute +
                            static_cast<std::int64_t>(i) *
                                static_cast<std::int64_t>(
                                    config_.interval_minutes));
  }

  ObservationHistory history;
  for (const EpochRecord& record : epochs) history.fold(record);

  for (std::uint32_t i = first_live; i < config_.epochs; ++i) {
    const obs::PrefixTable before = world_.prefix_telemetry().snapshot();
    if (i > 0 && config_.interval_minutes > 0) {
      world_.set_time_minutes(base_minute +
                              static_cast<std::int64_t>(i) *
                                  static_cast<std::int64_t>(
                                      config_.interval_minutes));
    }
    const obs::PrefixTable after_advance =
        world_.prefix_telemetry().snapshot();
    // Epoch purity: spent rate-limit buckets from earlier epochs (absent
    // in a resumed process) must not shape this epoch's admissions.
    world_.reset_transient_state();

    const bool full = !config_.delta || i == 0 ||
                      (config_.full_every > 0 && i % config_.full_every == 0);

    scan::Ipv4ScanConfig scan_config;
    scan_config.scanner_ip = targets_.scanner_ip;
    scan_config.zone = targets_.zone;
    scan_config.blacklist = targets_.blacklist;
    // Per-epoch seed: probe identities (labels, TXIDs, loss fates) are
    // fresh each epoch, process-history independent.
    scan_config.seed = util::hash_words({config_.seed, i, 0x65706F6368ULL});
    scan_config.threads = config_.threads;
    scan_config.max_in_flight = config_.max_in_flight;
    scan::Ipv4Scanner scanner(world_, scan_config);

    EpochRecord record;
    record.index = i;
    record.start_minute = static_cast<std::uint64_t>(world_.clock().minutes());
    scan::Ipv4ScanSummary summary;
    if (full) {
      record.kind = EpochKind::kFull;
      summary = scanner.scan(targets_.universe);
      record.population = sorted_population(summary.noerror_targets);
    } else {
      record.kind = EpochKind::kDelta;
      obs::PrefixTable prev_table;
      obs::PrefixTable last_table;
      history.aligned_tables(&prev_table, &last_table);
      const std::vector<std::uint32_t> flags = sorted_union(
          rebind_flags(before, after_advance, config_.thresholds.rebind_delta),
          obs::changed_prefixes(prev_table, last_table, config_.thresholds));
      record.flagged_prefixes = flags.size();
      summary = scanner.probe_targets(delta_targets(flags));
      // Carry forward responders in un-flagged prefixes: those prefixes
      // saw no rebind churn and no telemetry movement, so the previous
      // epoch's answer stands until the next full sweep re-verifies it.
      std::vector<std::uint32_t> population;
      for (std::uint32_t address : epochs.back().population) {
        if (!std::binary_search(flags.begin(), flags.end(),
                                obs::PrefixTelemetry::key_of(address))) {
          population.push_back(address);
        }
      }
      record.carried_forward = population.size();
      std::vector<std::uint32_t> fresh =
          sorted_population(summary.noerror_targets);
      population.insert(population.end(), fresh.begin(), fresh.end());
      std::sort(population.begin(), population.end());
      record.population = std::move(population);
    }
    record.probed = summary.probed;
    record.skipped_reserved = summary.skipped_reserved;
    record.skipped_blacklist = summary.skipped_blacklist;
    record.responses = summary.responses;
    record.noerror = summary.noerror;
    record.refused = summary.refused;
    record.servfail = summary.servfail;
    record.nxdomain = summary.nxdomain;
    record.other_rcode = summary.other_rcode;
    record.retry_retransmissions = summary.retry_retransmissions;
    record.retry_exhausted = summary.retry_exhausted;
    record.virtual_scan_seconds = summary.virtual_scan_seconds;
    record.prefixes =
        obs::subtract_tables(world_.prefix_telemetry().snapshot(), before);

    if (mid_epoch_hook_) mid_epoch_hook_(i);

    std::string error;
    if (!store.save(record, &error)) {
      throw std::runtime_error("campaign store: " + error);
    }
    history.fold(record);
    epochs.push_back(std::move(record));
  }

  result.epochs = std::move(epochs);
  std::vector<analysis::EpochObservation> observations;
  observations.reserve(result.epochs.size());
  for (const EpochRecord& record : result.epochs) {
    observations.push_back(to_observation(record));
  }
  result.summary = analysis::summarize_campaign(observations);
  return result;
}

std::string CampaignResult::to_json(bool mask) const {
  std::string out;
  out += "{\n  \"schema\": \"dnswild.campaign.v1\",\n";
  append(out, "  \"epoch_count\": %zu,\n", epochs.size());
  out += "  \"epochs\": [\n";
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    const EpochRecord& e = epochs[i];
    append(out,
           "    {\"index\": %" PRIu32 ", \"kind\": \"%s\", "
           "\"start_minute\": %" PRIu64 ", \"probed\": %" PRIu64 ", "
           "\"responses\": %" PRIu64 ", \"noerror\": %" PRIu64 ", "
           "\"refused\": %" PRIu64 ", \"servfail\": %" PRIu64 ", "
           "\"population\": %zu, \"flagged_prefixes\": %" PRIu64 ", "
           "\"carried_forward\": %" PRIu64 ", "
           "\"virtual_scan_seconds\": %.3f, \"degradations\": %zu}%s\n",
           e.index, e.kind == EpochKind::kDelta ? "delta" : "full",
           e.start_minute, e.probed, e.responses, e.noerror, e.refused,
           e.servfail, e.population.size(), e.flagged_prefixes,
           e.carried_forward, e.virtual_scan_seconds, e.degradations.size(),
           i + 1 < epochs.size() ? "," : "");
  }
  out += "  ],\n  \"churn\": [\n";
  for (std::size_t i = 0; i < summary.churn.size(); ++i) {
    const analysis::ChurnPoint& point = summary.churn[i];
    append(out,
           "    {\"age_days\": %.2f, \"alive\": %" PRIu64 ", "
           "\"alive_fraction\": %.4f}%s\n",
           point.age_days, point.alive, point.alive_fraction,
           i + 1 < summary.churn.size() ? "," : "");
  }
  out += "  ],\n";
  append(out,
         "  \"delta\": {\"full_probes\": %" PRIu64 ", \"delta_probes\": %"
         PRIu64 ", \"full_epochs\": %" PRIu64 ", \"delta_epochs\": %" PRIu64
         ", \"delta_probe_fraction\": %.4f},\n",
         summary.full_probes, summary.delta_probes, summary.full_epochs,
         summary.delta_epochs, summary.delta_probe_fraction);
  // Resume provenance is execution-shape, not world truth: an interrupted
  // run resumed mid-campaign reports different values here than the
  // uninterrupted run, so masking zeroes them (DESIGN.md §8).
  if (mask) {
    out += "  \"resume\": {\"resumed_from\": 0, \"store_issues\": []}\n";
  } else {
    append(out, "  \"resume\": {\"resumed_from\": %" PRIu32
                ", \"store_issues\": [",
           resumed_from);
    for (std::size_t i = 0; i < store_issues.size(); ++i) {
      append(out, "%s{\"file\": \"%s\", \"cause\": \"%s\"}",
             i == 0 ? "" : ", ", store_issues[i].file.c_str(),
             store_issues[i].cause.c_str());
    }
    out += "]}\n";
  }
  out += "}\n";
  return out;
}

bool CampaignResult::dump_json(const std::string& path, bool mask) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = to_json(mask);
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) ==
                  json.size();
  return std::fclose(file) == 0 && ok;
}

}  // namespace dnswild::campaign
