// Longitudinal campaign engine (DESIGN.md §14).
//
// Runs the paper's §2 schedule — one Internet-wide enumeration scan per
// virtual week — as a restartable service instead of a batch job. Every
// finished epoch is persisted to an EpochStore before the next one
// starts; a killed campaign resumes from the last good epoch by loading
// the store and replaying only the world's clock schedule (leases are
// path-independent functions of (seed, time), so the re-created world
// reaches the exact state the uninterrupted run would have had). The
// final CampaignResult is built purely from the persisted records, which
// is what makes the masked report byte-identical across crash/resume and
// across thread counts.
//
// Delta scanning: instead of sweeping the whole universe every epoch, a
// delta epoch re-probes only /20 prefixes that (a) saw DHCP rebind churn
// since the previous epoch (live telemetry diff across the inter-epoch
// clock advance) or (b) moved past obs::ChangeThresholds between their
// two most recent fresh scan observations (from the store). Responders in
// un-flagged prefixes are carried forward. Scheduled full sweeps
// (`full_every`) bound how long any prefix can coast on carry-forward.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/longitudinal.h"
#include "campaign/store.h"
#include "dns/name.h"
#include "net/world.h"
#include "obs/prefix_telemetry.h"
#include "scan/blacklist.h"
#include "scan/ipv4scan.h"

namespace dnswild::campaign {

// What the campaign scans: the same inputs worldgen hands the one-shot
// quickstart flow.
struct CampaignTargets {
  net::Ipv4 scanner_ip{};
  dns::Name zone;
  const scan::Blacklist* blacklist = nullptr;  // optional; must outlive runs
  std::vector<net::Cidr> universe;             // non-overlapping prefixes
};

struct CampaignConfig {
  std::string store_dir;
  std::uint32_t epochs = 3;
  // Virtual time between epoch starts (the paper's weekly cadence). The
  // world clock only moves at epoch boundaries; the scan itself runs with
  // the clock frozen so an epoch is replayable in one piece.
  std::uint64_t interval_minutes = 7 * 1440;
  std::uint64_t seed = 0;
  // Delta scanning on; epoch 0 is always a full sweep.
  bool delta = false;
  // Every Nth epoch is a full sweep regardless of flags (0 disables the
  // backstop; epoch 0 stays full either way).
  std::uint32_t full_every = 4;
  obs::ChangeThresholds thresholds;
  // Execution shape: results are byte-identical for every value of both,
  // so neither participates in the config hash... except max_in_flight,
  // which changes the stored virtual-time accounting and therefore does.
  unsigned threads = 0;
  std::uint32_t max_in_flight = 65536;
};

struct CampaignResult {
  std::vector<EpochRecord> epochs;
  // First epoch executed by THIS process (0 on a fresh run). Differs
  // between an interrupted and an uninterrupted run, so it is masked.
  std::uint32_t resumed_from = 0;
  // Corrupt/rejected store files found while resuming (masked likewise).
  std::vector<StoreIssue> store_issues;
  analysis::CampaignSummary summary;

  // Deterministic JSON (schema "dnswild.campaign.v1"). With mask=true the
  // resume-provenance section is zeroed, so reports are byte-identical
  // across crash/resume and across thread counts (DESIGN.md §8 idiom).
  std::string to_json(bool mask) const;
  bool dump_json(const std::string& path, bool mask) const;
};

class CampaignEngine {
 public:
  CampaignEngine(net::World& world, CampaignTargets targets,
                 CampaignConfig config);

  // Fingerprint of everything that changes stored bytes: campaign
  // parameters, thresholds, scan shape, and the scanned world (scanner
  // address, zone, universe, host count).
  std::uint64_t config_hash() const noexcept { return config_hash_; }

  // Crash-drill hook, invoked after an epoch's scan completes but before
  // the epoch is persisted (the widest mid-epoch window). The integration
  // test and `quickstart --kill-during-epoch` raise SIGKILL here.
  void set_mid_epoch_hook(std::function<void(std::uint32_t)> hook) {
    mid_epoch_hook_ = std::move(hook);
  }

  // Runs the campaign to `config.epochs` epochs. With resume=true,
  // previously persisted epochs are loaded (corrupt tails quarantined and
  // re-run) and only the remainder executes; the world must be freshly
  // constructed either way. Throws std::runtime_error on store I/O
  // failure or on a store whose schedule contradicts the world clock.
  CampaignResult run(bool resume);

 private:
  // Targets of a delta epoch: universe addresses inside flagged /20s,
  // reserved space skipped (probe_targets does not re-check it).
  std::vector<net::Ipv4> delta_targets(
      const std::vector<std::uint32_t>& flags) const;

  net::World& world_;
  CampaignTargets targets_;
  CampaignConfig config_;
  std::uint64_t config_hash_ = 0;
  std::function<void(std::uint32_t)> mid_epoch_hook_;
};

}  // namespace dnswild::campaign
