#include "campaign/store.h"

#include <unistd.h>

#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "util/checksum.h"

namespace dnswild::campaign {
namespace {

constexpr char kMagic[8] = {'D', 'N', 'S', 'W', 'E', 'P', 'O', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kTrailerMagic = 0xE0F17A1Du;
constexpr std::size_t kHeaderBytes = 24;   // magic + version + index + hash
constexpr std::size_t kTrailerBytes = 8;   // trailer magic + file CRC

enum Section : std::uint32_t {
  kTallies = 1,
  kPopulation = 2,
  kPrefixes = 3,
  kDegradations = 4,
};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// Bounds-checked little-endian reader over a byte span.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool ok() const noexcept { return ok_; }
  std::size_t offset() const noexcept { return offset_; }
  std::size_t remaining() const noexcept { return size_ - offset_; }

  std::uint32_t u32() noexcept {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= std::uint32_t{data_[offset_ - 4 + i]} << (8 * i);
    }
    return v;
  }

  std::uint64_t u64() noexcept {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= std::uint64_t{data_[offset_ - 8 + i]} << (8 * i);
    }
    return v;
  }

  std::string string() {
    const std::uint32_t len = u32();
    if (!take(len)) return {};
    return std::string(reinterpret_cast<const char*>(data_ + offset_ - len),
                       len);
  }

 private:
  bool take(std::size_t n) noexcept {
    if (!ok_ || size_ - offset_ < n) {
      ok_ = false;
      return false;
    }
    offset_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
  bool ok_ = true;
};

void append_section(std::vector<std::uint8_t>& out, std::uint32_t id,
                    const std::vector<std::uint8_t>& payload) {
  put_u32(out, id);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  put_u32(out, util::crc32(payload.data(), payload.size()));
}

bool fail(std::string* cause, const char* why) {
  if (cause != nullptr) *cause = why;
  return false;
}

}  // namespace

EpochStore::EpochStore(std::string dir, std::uint64_t config_hash)
    : dir_(std::move(dir)), config_hash_(config_hash) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
}

std::string EpochStore::epoch_filename(std::uint32_t index) {
  char name[32];
  std::snprintf(name, sizeof name, "epoch_%05u.dnsw", index);
  return name;
}

std::string EpochStore::epoch_path(std::uint32_t index) const {
  return dir_ + "/" + epoch_filename(index);
}

std::vector<std::uint8_t> EpochStore::encode(
    const EpochRecord& record) const {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + sizeof kMagic);
  put_u32(out, kVersion);
  put_u32(out, record.index);
  put_u64(out, config_hash_);

  std::vector<std::uint8_t> payload;
  put_u64(payload, record.start_minute);
  payload.push_back(static_cast<std::uint8_t>(record.kind));
  put_u64(payload, record.probed);
  put_u64(payload, record.skipped_reserved);
  put_u64(payload, record.skipped_blacklist);
  put_u64(payload, record.responses);
  put_u64(payload, record.noerror);
  put_u64(payload, record.refused);
  put_u64(payload, record.servfail);
  put_u64(payload, record.nxdomain);
  put_u64(payload, record.other_rcode);
  put_u64(payload, record.retry_retransmissions);
  put_u64(payload, record.retry_exhausted);
  put_u64(payload, std::bit_cast<std::uint64_t>(record.virtual_scan_seconds));
  put_u64(payload, record.flagged_prefixes);
  put_u64(payload, record.carried_forward);
  append_section(out, kTallies, payload);

  payload.clear();
  put_u64(payload, record.population.size());
  for (std::uint32_t address : record.population) put_u32(payload, address);
  append_section(out, kPopulation, payload);

  payload.clear();
  put_u64(payload, record.prefixes.rows.size());
  for (const obs::PrefixRow& row : record.prefixes.rows) {
    put_u32(payload, row.key);
    const obs::PrefixStats& s = row.stats;
    for (std::uint64_t field :
         {s.probes, s.responses, s.timeouts, s.retries, s.noerror, s.refused,
          s.servfail, s.nxdomain, s.other_rcode, s.fault_hits, s.rate_limited,
          s.rebinds}) {
      put_u64(payload, field);
    }
  }
  append_section(out, kPrefixes, payload);

  payload.clear();
  put_u64(payload, record.degradations.size());
  for (const core::StageDegradation& d : record.degradations) {
    put_string(payload, d.stage);
    put_string(payload, d.cause);
    put_u64(payload, d.affected);
  }
  append_section(out, kDegradations, payload);

  // Trailer: magic + CRC over everything before it. Truncation loses the
  // trailer; a flip anywhere (header included) breaks this CRC even when
  // it dodges the per-section ones.
  put_u32(out, kTrailerMagic);
  put_u32(out, util::crc32(out.data(), out.size()));
  return out;
}

bool EpochStore::save(const EpochRecord& record, std::string* error) const {
  const std::vector<std::uint8_t> bytes = encode(record);
  const std::string final_path = epoch_path(record.index);
  const std::string tmp_path = final_path + ".tmp";

  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open " + tmp_path;
    return false;
  }
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  const bool flushed = std::fflush(file) == 0;
  // Push bytes to stable storage before publishing the name: rename is
  // atomic, but only an fsynced tmp file makes the epoch crash-durable.
  const bool synced = fsync(fileno(file)) == 0;
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !flushed || !synced || !closed) {
    if (error != nullptr) *error = "short write to " + tmp_path;
    std::remove(tmp_path.c_str());
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "rename to " + final_path + ": " + ec.message();
    }
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

bool EpochStore::load(std::uint32_t index, EpochRecord* record,
                      std::string* cause) const {
  const std::string path = epoch_path(index);
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return fail(cause, "missing");
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[65536];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  std::fclose(file);

  if (bytes.size() < kHeaderBytes + kTrailerBytes) {
    return fail(cause, "truncated");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return fail(cause, "bad magic");
  }
  Reader header(bytes.data() + sizeof kMagic, kHeaderBytes - sizeof kMagic);
  if (header.u32() != kVersion) return fail(cause, "unsupported version");
  if (header.u32() != index) return fail(cause, "epoch index mismatch");
  if (header.u64() != config_hash_) {
    return fail(cause, "campaign config mismatch");
  }

  Reader trailer(bytes.data() + bytes.size() - kTrailerBytes, kTrailerBytes);
  if (trailer.u32() != kTrailerMagic) return fail(cause, "truncated");
  const std::uint32_t stored_crc = trailer.u32();
  const std::uint32_t actual_crc =
      util::crc32(bytes.data(), bytes.size() - 4);
  if (stored_crc != actual_crc) return fail(cause, "bad file checksum");

  EpochRecord out;
  out.index = index;
  const std::uint8_t* sections = bytes.data() + kHeaderBytes;
  const std::size_t section_bytes =
      bytes.size() - kHeaderBytes - kTrailerBytes;
  std::size_t offset = 0;
  std::uint32_t seen = 0;
  while (offset < section_bytes) {
    Reader frame(sections + offset, section_bytes - offset);
    const std::uint32_t id = frame.u32();
    const std::uint32_t len = frame.u32();
    if (!frame.ok() || frame.remaining() < std::size_t{len} + 4) {
      return fail(cause, "truncated section");
    }
    const std::uint8_t* payload = sections + offset + 8;
    Reader tail(payload + len, 4);
    if (tail.u32() != util::crc32(payload, len)) {
      return fail(cause, "bad section checksum");
    }
    if (id == kTallies) {
      if (len < 9) return fail(cause, "short tallies section");
      Reader t(payload, 8);
      out.start_minute = t.u64();
      out.kind = static_cast<EpochKind>(payload[8]);
      Reader rest(payload + 9, len - 9);
      out.probed = rest.u64();
      out.skipped_reserved = rest.u64();
      out.skipped_blacklist = rest.u64();
      out.responses = rest.u64();
      out.noerror = rest.u64();
      out.refused = rest.u64();
      out.servfail = rest.u64();
      out.nxdomain = rest.u64();
      out.other_rcode = rest.u64();
      out.retry_retransmissions = rest.u64();
      out.retry_exhausted = rest.u64();
      out.virtual_scan_seconds = std::bit_cast<double>(rest.u64());
      out.flagged_prefixes = rest.u64();
      out.carried_forward = rest.u64();
      if (!rest.ok()) return fail(cause, "short tallies section");
      seen |= 1u << 0;
    } else if (id == kPopulation) {
      Reader p(payload, len);
      const std::uint64_t count = p.u64();
      if (len < 8 || count != (len - 8) / 4 || count * 4 != len - 8) {
        return fail(cause, "bad population length");
      }
      out.population.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        out.population.push_back(p.u32());
      }
      if (!p.ok()) return fail(cause, "short population section");
      seen |= 1u << 1;
    } else if (id == kPrefixes) {
      Reader p(payload, len);
      const std::uint64_t count = p.u64();
      constexpr std::uint64_t kRowBytes = 4 + 12 * 8;
      if (len < 8 || count != (len - 8) / kRowBytes ||
          count * kRowBytes != len - 8) {
        return fail(cause, "bad prefix length");
      }
      out.prefixes.rows.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        obs::PrefixRow row;
        row.key = p.u32();
        obs::PrefixStats& s = row.stats;
        for (std::uint64_t* field :
             {&s.probes, &s.responses, &s.timeouts, &s.retries, &s.noerror,
              &s.refused, &s.servfail, &s.nxdomain, &s.other_rcode,
              &s.fault_hits, &s.rate_limited, &s.rebinds}) {
          *field = p.u64();
        }
        out.prefixes.rows.push_back(std::move(row));
      }
      if (!p.ok()) return fail(cause, "short prefix section");
      seen |= 1u << 2;
    } else if (id == kDegradations) {
      Reader p(payload, len);
      const std::uint64_t count = p.u64();
      for (std::uint64_t i = 0; i < count && p.ok(); ++i) {
        core::StageDegradation d;
        d.stage = p.string();
        d.cause = p.string();
        d.affected = p.u64();
        out.degradations.push_back(std::move(d));
      }
      if (!p.ok()) return fail(cause, "short degradation section");
      seen |= 1u << 3;
    }
    // Unknown section ids are skipped (forward compatibility); their CRC
    // was still verified above.
    offset += 8 + std::size_t{len} + 4;
  }
  if (seen != 0xF) return fail(cause, "missing section");
  if (record != nullptr) *record = std::move(out);
  return true;
}

EpochStore::ScanResult EpochStore::load_all() const {
  ScanResult result;
  for (std::uint32_t index = 0;; ++index) {
    const std::string path = epoch_path(index);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) break;
    EpochRecord record;
    std::string cause;
    if (load(index, &record, &cause)) {
      result.epochs.push_back(std::move(record));
      continue;
    }
    // Corrupt epoch: quarantine the file and stop — epochs after this one
    // depended on its population, so the campaign re-runs from here.
    // (Any stale later files are harmless: every epoch's bytes are a pure
    // function of the campaign config, so a re-run rewrites them with
    // identical content.)
    result.issues.push_back(StoreIssue{epoch_filename(index), cause});
    std::filesystem::rename(path, path + ".corrupt", ec);
    break;
  }
  return result;
}

}  // namespace dnswild::campaign
