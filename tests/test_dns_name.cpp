#include "dns/name.h"

#include <gtest/gtest.h>

namespace dnswild::dns {
namespace {

TEST(Name, ParsePreservesCase) {
  const auto name = Name::parse("WwW.ExAmPle.COM");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->to_string(), "WwW.ExAmPle.COM");
  EXPECT_EQ(name->lower(), "www.example.com");
  EXPECT_EQ(name->label_count(), 3u);
}

TEST(Name, TrailingDotAccepted) {
  const auto a = Name::parse("example.com.");
  const auto b = Name::parse("example.com");
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(a->equals(*b));
}

TEST(Name, RootForms) {
  EXPECT_TRUE(Name::parse("")->empty());
  EXPECT_TRUE(Name::parse(".")->empty());
  EXPECT_EQ(Name::parse(".")->to_string(), "");
}

class NameInvalid : public ::testing::TestWithParam<const char*> {};

TEST_P(NameInvalid, Rejected) {
  EXPECT_FALSE(Name::parse(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, NameInvalid,
    ::testing::Values("a..b", ".leading", "a..",
                      // label > 63 octets
                      "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
                      "aaaaaaaaaaaaaaaa.com"));

TEST(Name, TotalLengthLimit) {
  // 5 labels of 63 bytes = 320 wire bytes > 255.
  std::string big;
  for (int i = 0; i < 5; ++i) {
    big += std::string(63, 'a');
    big += '.';
  }
  big += "com";
  EXPECT_FALSE(Name::parse(big).has_value());
}

TEST(Name, EqualsIsCaseInsensitive) {
  EXPECT_TRUE(Name::must_parse("A.B").equals(Name::must_parse("a.b")));
  EXPECT_FALSE(Name::must_parse("a.b").equals(Name::must_parse("a.c")));
  EXPECT_FALSE(Name::must_parse("a.b").equals(Name::must_parse("a.b.c")));
  EXPECT_TRUE(Name::must_parse("x.Y") == Name::must_parse("X.y"));
}

TEST(Name, Subdomains) {
  const Name zone = Name::must_parse("example.com");
  EXPECT_TRUE(Name::must_parse("example.com").is_subdomain_of(zone));
  EXPECT_TRUE(Name::must_parse("www.EXAMPLE.com").is_subdomain_of(zone));
  EXPECT_TRUE(Name::must_parse("a.b.example.com").is_subdomain_of(zone));
  EXPECT_FALSE(Name::must_parse("example.org").is_subdomain_of(zone));
  EXPECT_FALSE(Name::must_parse("com").is_subdomain_of(zone));
  // Everything is under the root.
  EXPECT_TRUE(zone.is_subdomain_of(Name{}));
}

TEST(Name, ParentAndConcat) {
  const Name name = Name::must_parse("a.b.c.d");
  EXPECT_EQ(name.parent().to_string(), "b.c.d");
  EXPECT_EQ(name.parent(3).to_string(), "d");
  EXPECT_TRUE(name.parent(4).empty());
  EXPECT_TRUE(name.parent(9).empty());
  const Name joined =
      Name::must_parse("www").concat(Name::must_parse("example.com"));
  EXPECT_EQ(joined.to_string(), "www.example.com");
}

TEST(Name, WireRoundTrip) {
  const Name name = Name::must_parse("MiXeD.Case.Example");
  std::vector<std::uint8_t> wire;
  name.encode(wire);
  EXPECT_EQ(wire.size(), 1 + 5 + 1 + 4 + 1 + 7 + 1u);
  std::size_t offset = 0;
  const auto decoded = Name::decode(wire, offset);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->to_string(), "MiXeD.Case.Example");  // case preserved
  EXPECT_EQ(offset, wire.size());
}

TEST(Name, RootWire) {
  Name root;
  std::vector<std::uint8_t> wire;
  root.encode(wire);
  EXPECT_EQ(wire, std::vector<std::uint8_t>{0});
  std::size_t offset = 0;
  EXPECT_TRUE(Name::decode(wire, offset)->empty());
}

TEST(Name, DecodeCompressionPointer) {
  // "example.com" at offset 0, then "www" + pointer to offset 0.
  std::vector<std::uint8_t> wire;
  Name::must_parse("example.com").encode(wire);
  const std::size_t second = wire.size();
  wire.push_back(3);
  wire.insert(wire.end(), {'w', 'w', 'w'});
  wire.push_back(0xc0);
  wire.push_back(0x00);

  std::size_t offset = second;
  const auto decoded = Name::decode(wire, offset);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->to_string(), "www.example.com");
  EXPECT_EQ(offset, wire.size());
}

TEST(Name, DecodeRejectsForwardPointer) {
  std::vector<std::uint8_t> wire = {0xc0, 0x02, 0x00};
  std::size_t offset = 0;
  EXPECT_FALSE(Name::decode(wire, offset).has_value());
}

TEST(Name, DecodeRejectsSelfPointerLoop) {
  // Pointer at offset 2 pointing back to offset 0 which points to itself.
  std::vector<std::uint8_t> wire = {0xc0, 0x00};
  std::size_t offset = 0;
  EXPECT_FALSE(Name::decode(wire, offset).has_value());
}

TEST(Name, DecodeRejectsTruncation) {
  std::vector<std::uint8_t> wire = {5, 'a', 'b'};
  std::size_t offset = 0;
  EXPECT_FALSE(Name::decode(wire, offset).has_value());
  wire = {3, 'a', 'b', 'c'};  // missing terminator
  offset = 0;
  EXPECT_FALSE(Name::decode(wire, offset).has_value());
}

TEST(Name, DecodeRejectsReservedLabelTypes) {
  std::vector<std::uint8_t> wire = {0x80, 0x00};
  std::size_t offset = 0;
  EXPECT_FALSE(Name::decode(wire, offset).has_value());
}

}  // namespace
}  // namespace dnswild::dns
