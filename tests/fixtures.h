// Shared test fixtures: a hand-built mini world with a handful of resolvers
// whose behaviour is exactly known, so scanner/analysis tests can assert
// precise outcomes (unlike the statistically-calibrated worldgen worlds).
#pragma once

#include <memory>

#include "net/world.h"
#include "resolver/authns.h"
#include "resolver/resolver.h"

namespace dnswild::test {

struct MiniWorld {
  std::unique_ptr<net::World> world;
  std::unique_ptr<resolver::AuthRegistry> registry;
  net::Ipv4 scanner_ip{9, 0, 0, 1};
  dns::Name scan_zone = dns::Name::must_parse("probe.test.example");

  net::HostId add_resolver(net::Ipv4 ip, resolver::ResolverConfig config) {
    net::HostConfig host_config;
    host_config.attachment.ip = ip;
    const net::HostId id = world->add_host(host_config);
    config.registry = registry.get();
    config.clock = &world->clock();
    world->set_udp_service(
        id, 53,
        std::make_unique<resolver::OpenResolverService>(std::move(config)));
    return id;
  }
};

inline MiniWorld make_mini_world(std::uint64_t seed = 1) {
  MiniWorld mini;
  mini.world = std::make_unique<net::World>(seed);
  mini.registry = std::make_unique<resolver::AuthRegistry>();
  // Wildcard scan zone (targets encoded in names, §2.2).
  mini.registry->add_domain("probe.test.example", {net::Ipv4(9, 0, 0, 3)},
                            60, /*wildcard=*/true);
  mini.registry->add_domain("good.example", {net::Ipv4(5, 5, 5, 5)}, 300);
  mini.registry->add_tld("com", {"a.gtld.example"}, 172800);
  mini.registry->add_tld("de", {"a.nic.de"}, 172800);
  return mini;
}

}  // namespace dnswild::test
