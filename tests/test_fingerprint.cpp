#include "analysis/fingerprint.h"

#include <gtest/gtest.h>

namespace dnswild::analysis {
namespace {

using resolver::DeviceProfile;
using resolver::HardwareClass;
using resolver::OsClass;

std::string combined_banners(const DeviceProfile& device) {
  std::string out;
  for (const auto& [port, banner] : device.banners) {
    out += banner;
    out += '\n';
  }
  return out;
}

// Property: every profile in the device catalog must be classified back to
// its ground-truth hardware and OS class from its own banners — the
// fingerprint rules and the catalog stay in lockstep.
class CatalogFingerprintTest : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(CatalogFingerprintTest, CatalogProfileRecovered) {
  const auto& catalog = resolver::device_catalog();
  ASSERT_LT(GetParam(), catalog.size());
  const DeviceProfile& device = catalog[GetParam()];
  const DeviceFingerprinter fingerprinter;
  const Fingerprint fp = fingerprinter.classify(combined_banners(device));
  EXPECT_EQ(fp.hardware, device.hardware) << device.label;
  EXPECT_EQ(fp.os, device.os) << device.label;
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, CatalogFingerprintTest,
                         ::testing::Range<std::size_t>(
                             0, resolver::device_catalog().size()));

TEST(Fingerprinter, PaperExampleToken) {
  const DeviceFingerprinter fingerprinter;
  const Fingerprint fp = fingerprinter.classify("dm500plus login: ");
  EXPECT_EQ(fp.hardware, HardwareClass::kDvr);
  EXPECT_EQ(fp.os, OsClass::kLinux);
}

TEST(Fingerprinter, UnknownBannerStaysUnknown) {
  const DeviceFingerprinter fingerprinter;
  const Fingerprint fp =
      fingerprinter.classify("220 FTP server ready.\nIt works!");
  EXPECT_EQ(fp.hardware, HardwareClass::kUnknown);
  EXPECT_EQ(fp.os, OsClass::kUnknown);
  EXPECT_TRUE(fp.label.empty());
}

TEST(Fingerprinter, OsOnlyEvidence) {
  const DeviceFingerprinter fingerprinter;
  const Fingerprint fp =
      fingerprinter.classify("SSH-2.0-OpenSSH_5.9p1 Debian-5ubuntu1.4");
  EXPECT_EQ(fp.hardware, HardwareClass::kUnknown);
  EXPECT_EQ(fp.os, OsClass::kLinux);
}

TEST(Fingerprinter, HardwareRuleCanGetOsFromLaterRule) {
  const DeviceFingerprinter fingerprinter;
  // GoAhead alone fixes hardware only; a Debian SSH banner adds the OS.
  const Fingerprint fp = fingerprinter.classify(
      "<!-- GoAhead-Webs -->\nSSH-2.0-OpenSSH Debian");
  EXPECT_EQ(fp.hardware, HardwareClass::kEmbedded);
  EXPECT_EQ(fp.os, OsClass::kLinux);
}

TEST(Fingerprinter, MultiTokenRulesRequireAllTokens) {
  const DeviceFingerprinter fingerprinter;
  // "busybox" with "router login" is a Router; alone it is just Linux.
  EXPECT_EQ(fingerprinter.classify("BusyBox v1.0\nrouter login:").hardware,
            HardwareClass::kRouter);
  EXPECT_EQ(fingerprinter.classify("BusyBox v1.0").hardware,
            HardwareClass::kUnknown);
  EXPECT_EQ(fingerprinter.classify("BusyBox v1.0").os, OsClass::kLinux);
}

TEST(Fingerprinter, CustomRulesExtendTheEngine) {
  DeviceFingerprinter fingerprinter;
  const auto before = fingerprinter.rule_count();
  FingerprintRule rule;
  rule.tokens = {"acme-gadget"};
  rule.hardware = HardwareClass::kOther;
  rule.os = OsClass::kOther;
  rule.label = "ACME gadget";
  fingerprinter.add_rule(rule);
  EXPECT_EQ(fingerprinter.rule_count(), before + 1);
  EXPECT_EQ(fingerprinter.classify("hello ACME-GADGET v2").label,
            "ACME gadget");
}

TEST(Fingerprinter, SummarizeBuildsTable4Shape) {
  const DeviceFingerprinter fingerprinter;
  std::vector<scan::BannerResult> scan;
  const auto add = [&scan](const char* banner, bool payload = true) {
    scan::BannerResult result;
    result.any_tcp_payload = payload;
    result.combined = banner;
    scan.push_back(result);
  };
  add("ZyXEL router\r\nPassword:");
  add("ZyXEL router\r\nPassword:");
  add("dm500plus login:");
  add("totally anonymous");
  add("", false);  // no TCP payload at all

  const auto report = fingerprinter.summarize(scan);
  EXPECT_EQ(report.tcp_responsive, 4u);
  EXPECT_EQ(report.no_tcp_payload, 1u);
  ASSERT_FALSE(report.hardware.empty());
  EXPECT_EQ(report.hardware[0].key, "Router");
  EXPECT_EQ(report.hardware[0].count, 2u);
  EXPECT_NEAR(report.hardware[0].share, 0.5, 1e-9);
  // OS table contains ZyNOS.
  bool zynos_found = false;
  for (const auto& row : report.os) {
    if (row.key == "ZyNOS") {
      zynos_found = true;
      EXPECT_EQ(row.count, 2u);
    }
  }
  EXPECT_TRUE(zynos_found);
}

TEST(Fingerprinter, SummarizeGroupsNasAndDslamIntoOthers) {
  const DeviceFingerprinter fingerprinter;
  std::vector<scan::BannerResult> scan;
  scan::BannerResult nas;
  nas.any_tcp_payload = true;
  nas.combined = "NAS Web Station";
  scan::BannerResult dslam;
  dslam.any_tcp_payload = true;
  dslam.combined = "DSLAM_5.2 ADSL rack";
  scan.push_back(nas);
  scan.push_back(dslam);
  const auto report = fingerprinter.summarize(scan);
  ASSERT_FALSE(report.hardware.empty());
  EXPECT_EQ(report.hardware[0].key, "Others");
  EXPECT_EQ(report.hardware[0].count, 2u);
}

}  // namespace
}  // namespace dnswild::analysis
