#include "cluster/distance.h"

#include <gtest/gtest.h>

#include "http/factory.h"
#include "util/rng.h"

namespace dnswild::cluster {
namespace {

struct EditCase {
  const char* a;
  const char* b;
  std::size_t distance;
};

class EditDistanceTest : public ::testing::TestWithParam<EditCase> {};

TEST_P(EditDistanceTest, KnownValues) {
  EXPECT_EQ(edit_distance(GetParam().a, GetParam().b), GetParam().distance);
  // Symmetry.
  EXPECT_EQ(edit_distance(GetParam().b, GetParam().a), GetParam().distance);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EditDistanceTest,
    ::testing::Values(EditCase{"", "", 0}, EditCase{"", "abc", 3},
                      EditCase{"abc", "abc", 0},
                      EditCase{"kitten", "sitting", 3},
                      EditCase{"flaw", "lawn", 2},
                      EditCase{"intention", "execution", 5},
                      EditCase{"a", "b", 1}, EditCase{"ab", "ba", 2}));

TEST(EditDistance, TagSequences) {
  const std::vector<std::uint16_t> a = {1, 2, 3, 4};
  const std::vector<std::uint16_t> b = {1, 3, 4, 5};
  EXPECT_EQ(edit_distance(a, b), 2u);
  EXPECT_EQ(edit_distance(a, a), 0u);
}

TEST(EditDistanceBanded, AgreesWithExactWithinBand) {
  util::Rng rng(5);
  static constexpr char kAlphabet[] = "ab";
  for (int trial = 0; trial < 200; ++trial) {
    std::string a, b;
    const auto len_a = rng.below(30);
    const auto len_b = rng.below(30);
    for (std::uint64_t i = 0; i < len_a; ++i) a += kAlphabet[rng.below(2)];
    for (std::uint64_t i = 0; i < len_b; ++i) b += kAlphabet[rng.below(2)];
    const std::size_t exact = edit_distance(a, b);
    const std::size_t banded = edit_distance_banded(a, b, 40);
    EXPECT_EQ(banded, exact) << a << " vs " << b;
  }
}

TEST(EditDistanceBanded, ClampsBeyondBand) {
  EXPECT_EQ(edit_distance_banded("aaaaaaaaaa", "bbbbbbbbbb", 3), 4u);
  EXPECT_EQ(edit_distance_banded("short", "muchlongerstring", 2), 3u);
}

TEST(EditDistanceNorm, Bounds) {
  EXPECT_DOUBLE_EQ(edit_distance_norm("", ""), 0.0);
  EXPECT_DOUBLE_EQ(edit_distance_norm("abc", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(edit_distance_norm("abc", "xyz"), 1.0);
  EXPECT_DOUBLE_EQ(edit_distance_norm("", "xyz"), 1.0);
}

TEST(JaccardMultiset, Basics) {
  std::unordered_map<std::uint16_t, int> a = {{1, 2}, {2, 1}};
  std::unordered_map<std::uint16_t, int> b = {{1, 1}, {3, 1}};
  // intersection = min counts = 1; union = 2 + 1 + 1 + 1 = wait:
  // union = max(2,1) + max(1,0) + max(0,1) = 2 + 1 + 1 = 4.
  EXPECT_DOUBLE_EQ(jaccard_multiset(a, b), 1.0 - 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(jaccard_multiset(a, a), 0.0);
  EXPECT_DOUBLE_EQ(jaccard_multiset({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(jaccard_multiset(a, {}), 1.0);
}

TEST(JaccardSorted, Basics) {
  const std::vector<std::string> a = {"a", "b", "c"};
  const std::vector<std::string> b = {"b", "c", "d"};
  EXPECT_DOUBLE_EQ(jaccard_sorted(a, b), 1.0 - 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(jaccard_sorted(a, a), 0.0);
  EXPECT_DOUBLE_EQ(jaccard_sorted({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(jaccard_sorted(a, {}), 1.0);
}

http::PageFeatures features_of(const std::string& html) {
  return http::extract_features(html);
}

TEST(PageDistance, IdenticalPagesAreZero) {
  const auto page = http::legit_site("x.example",
                                     http::SiteCategory::kAlexa, 0, 1);
  EXPECT_DOUBLE_EQ(page_distance(features_of(page), features_of(page)), 0.0);
}

TEST(PageDistance, SymmetricAndBounded) {
  util::Rng rng(11);
  std::vector<http::PageFeatures> pages;
  pages.push_back(features_of(http::legit_site(
      "a.example", http::SiteCategory::kBanking, 0, 1)));
  pages.push_back(features_of(http::censorship_page("TR", 1)));
  pages.push_back(features_of(http::parking_page("z.example", 2)));
  pages.push_back(features_of(""));
  pages.push_back(features_of(http::phishing_paypal(0)));
  for (std::size_t i = 0; i < pages.size(); ++i) {
    for (std::size_t j = 0; j < pages.size(); ++j) {
      const double d = page_distance(pages[i], pages[j]);
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, 1.0);
      EXPECT_NEAR(d, page_distance(pages[j], pages[i]), 1e-12);
      if (i == j) {
        EXPECT_DOUBLE_EQ(d, 0.0);
      }
    }
  }
}

TEST(PageDistance, DynamicNoiseIsSmallerThanClassDifference) {
  // Two fetches of the same dynamic page must be closer than two pages of
  // different classes — the property the coarse clustering relies on.
  const auto noise_a = features_of(http::legit_site(
      "news.example", http::SiteCategory::kAlexa, 0, 1));
  const auto noise_b = features_of(http::legit_site(
      "news.example", http::SiteCategory::kAlexa, 0, 2));
  const auto other_class = features_of(http::censorship_page("ID", 0));
  EXPECT_LT(page_distance(noise_a, noise_b), 0.2);
  EXPECT_GT(page_distance(noise_a, other_class), 0.4);
}

TEST(PageDistance, BreakdownAveragesToCombined) {
  const auto a = features_of(http::parking_page("p.example", 1));
  const auto b = features_of(http::search_page(1, "q.example", false));
  const auto breakdown = page_distance_breakdown(a, b);
  EXPECT_NEAR(breakdown.combined(), page_distance(a, b), 1e-12);
  // Each feature individually normalized.
  for (const double feature :
       {breakdown.length, breakdown.tag_multiset, breakdown.tag_sequence,
        breakdown.title, breakdown.scripts, breakdown.resources,
        breakdown.links}) {
    EXPECT_GE(feature, 0.0);
    EXPECT_LE(feature, 1.0);
  }
}

TEST(PageDistance, LengthFeatureReactsToSizeGap) {
  http::PageFeatures small;
  small.body_length = 100;
  http::PageFeatures large;
  large.body_length = 1000;
  const auto breakdown = page_distance_breakdown(small, large);
  EXPECT_NEAR(breakdown.length, 0.9, 1e-9);
}

TEST(PageDistance, ClipBoundsLongInputs) {
  // A pathological page with an enormous script must still compare fast
  // and stay in bounds.
  std::string huge = "<script>";
  huge.append(100000, 'x');
  huge += "</script>";
  PageDistanceOptions options;
  options.max_edit_length = 512;
  const double d = page_distance(features_of(huge),
                                 features_of("<p>tiny</p>"), options);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
}

}  // namespace
}  // namespace dnswild::cluster
