#include "resolver/resolver.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "dns/chaos.h"

namespace dnswild::resolver {
namespace {

class ResolverServiceTest : public ::testing::Test {
 protected:
  ResolverServiceTest() {
    registry_.add_domain("good.example", {net::Ipv4(5, 5, 5, 5)}, 300);
    registry_.add_domain("bad.example", {net::Ipv4(6, 6, 6, 6)}, 300);
    registry_.add_cdn_domain("cdn.example", {net::Ipv4(7, 0, 0, 1)},
                             {{"CN", {net::Ipv4(7, 0, 0, 2)}}}, 60);
    registry_.add_tld("com", {"a.gtld.example"}, 172800);
  }

  ResolverConfig base_config() {
    ResolverConfig config;
    config.registry = &registry_;
    config.clock = &clock_;
    config.seed = 1;
    config.base_latency_ms = 30;
    return config;
  }

  // Sends one query, returns the parsed replies. `seq` distinguishes
  // otherwise-identical transmissions (randomness is a pure function of
  // the packet identity, as with real probes whose seq always advances).
  static std::vector<dns::Message> ask(OpenResolverService& service,
                                       const dns::Message& query,
                                       std::uint32_t seq = 0) {
    net::UdpPacket packet;
    packet.src = net::Ipv4(9, 9, 9, 9);
    packet.src_port = 4000;
    packet.dst = net::Ipv4(1, 2, 3, 4);
    packet.dst_port = 53;
    packet.seq = seq;
    packet.payload = query.encode();
    std::vector<net::UdpReply> replies;
    service.handle(packet, replies);
    std::vector<dns::Message> messages;
    for (const auto& reply : replies) {
      if (auto message = dns::Message::decode(reply.packet.payload)) {
        messages.push_back(*std::move(message));
      }
    }
    return messages;
  }

  static dns::Message a_query(std::string_view name, std::uint16_t id = 1) {
    return dns::Message::make_query(id, dns::Name::must_parse(name),
                                    dns::RType::kA);
  }

  AuthRegistry registry_;
  net::SimClock clock_;
};

TEST_F(ResolverServiceTest, HonestResolution) {
  OpenResolverService service(base_config());
  const auto replies = ask(service, a_query("good.example", 77));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].header.id, 77);
  EXPECT_TRUE(replies[0].header.qr);
  EXPECT_EQ(replies[0].header.rcode, dns::RCode::kNoError);
  EXPECT_EQ(replies[0].answer_ips(),
            (std::vector<net::Ipv4>{net::Ipv4(5, 5, 5, 5)}));
}

TEST_F(ResolverServiceTest, HonestNxDomain) {
  OpenResolverService service(base_config());
  const auto replies = ask(service, a_query("missing.example"));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].header.rcode, dns::RCode::kNxDomain);
}

TEST_F(ResolverServiceTest, RegionalCdnView) {
  auto config = base_config();
  config.region = "CN";
  OpenResolverService service(config);
  const auto replies = ask(service, a_query("cdn.example"));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].answer_ips(),
            (std::vector<net::Ipv4>{net::Ipv4(7, 0, 0, 2)}));
}

TEST_F(ResolverServiceTest, QuestionCaseEchoedFaithfully) {
  OpenResolverService service(base_config());
  const auto replies = ask(service, a_query("GoOd.ExAmPlE"));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].questions[0].name.to_string(), "GoOd.ExAmPlE");
}

TEST_F(ResolverServiceTest, CnameChainInAnswerSection) {
  registry_.add_cname("alias.example", "good.example");
  OpenResolverService service(base_config());
  const auto replies = ask(service, a_query("alias.example"));
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_EQ(replies[0].answers.size(), 2u);
  EXPECT_EQ(replies[0].answers[0].rtype, dns::RType::kCNAME);
  EXPECT_EQ(std::get<dns::Name>(replies[0].answers[0].rdata).lower(),
            "good.example");
  // The A record is owned by the chain tail, not the queried alias.
  EXPECT_EQ(replies[0].answers[1].rtype, dns::RType::kA);
  EXPECT_EQ(replies[0].answers[1].name.lower(), "good.example");
  EXPECT_EQ(replies[0].answer_ips(),
            (std::vector<net::Ipv4>{net::Ipv4(5, 5, 5, 5)}));
}

TEST_F(ResolverServiceTest, BasePolicies) {
  for (const auto& [policy, rcode] :
       {std::pair{BasePolicy::kRefuseAll, dns::RCode::kRefused},
        std::pair{BasePolicy::kServFailAll, dns::RCode::kServFail},
        std::pair{BasePolicy::kEmptyAll, dns::RCode::kNoError}}) {
    auto config = base_config();
    config.behavior.base = policy;
    OpenResolverService service(config);
    const auto replies = ask(service, a_query("good.example"));
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].header.rcode, rcode);
    EXPECT_TRUE(replies[0].answers.empty());
  }
}

TEST_F(ResolverServiceTest, IgnoreAllStaysSilent) {
  auto config = base_config();
  config.behavior.base = BasePolicy::kIgnoreAll;
  OpenResolverService service(config);
  EXPECT_TRUE(ask(service, a_query("good.example")).empty());
}

TEST_F(ResolverServiceTest, StaticIpPolicy) {
  auto config = base_config();
  config.behavior.base = BasePolicy::kStaticIpAll;
  config.behavior.static_ips = {net::Ipv4(8, 8, 8, 8)};
  OpenResolverService service(config);
  for (const char* name : {"good.example", "bad.example", "zzz.example"}) {
    const auto replies = ask(service, a_query(name));
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].answer_ips(),
              (std::vector<net::Ipv4>{net::Ipv4(8, 8, 8, 8)}));
  }
}

TEST_F(ResolverServiceTest, NsOnlyPolicyReturnsReferral) {
  auto config = base_config();
  config.behavior.base = BasePolicy::kNsOnlyAll;
  OpenResolverService service(config);
  const auto replies = ask(service, a_query("good.example"));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].answers.empty());
  EXPECT_FALSE(replies[0].authorities.empty());
  EXPECT_FALSE(replies[0].header.ra);
}

TEST_F(ResolverServiceTest, ExactDomainOverride) {
  auto config = base_config();
  Override censor;
  censor.domains = {"bad.example"};
  censor.action = OverrideAction::kForgeIps;
  censor.ips = {net::Ipv4(66, 66, 66, 66)};
  config.behavior.overrides.push_back(censor);
  OpenResolverService service(config);

  EXPECT_EQ(ask(service, a_query("bad.example"))[0].answer_ips()[0],
            net::Ipv4(66, 66, 66, 66));
  // Everything else resolves honestly (censors are honest elsewhere, §4.2).
  EXPECT_EQ(ask(service, a_query("good.example"))[0].answer_ips()[0],
            net::Ipv4(5, 5, 5, 5));
}

TEST_F(ResolverServiceTest, SuffixOverrideCoversSubdomains) {
  auto config = base_config();
  Override censor;
  censor.match_suffixes = {"bad.example"};
  censor.action = OverrideAction::kNxDomain;
  config.behavior.overrides.push_back(censor);
  OpenResolverService service(config);
  EXPECT_EQ(ask(service, a_query("www.bad.example"))[0].header.rcode,
            dns::RCode::kNxDomain);
  EXPECT_EQ(ask(service, a_query("bad.example"))[0].header.rcode,
            dns::RCode::kNxDomain);
  // No false suffix matches ("notbad.example" does not end in ".bad.example").
  EXPECT_EQ(ask(service, a_query("notbad.example"))[0].header.rcode,
            dns::RCode::kNxDomain);  // honest NXDOMAIN: not in registry
  EXPECT_EQ(ask(service, a_query("good.example"))[0].header.rcode,
            dns::RCode::kNoError);
}

TEST_F(ResolverServiceTest, NonexistentOverrideIsNxMonetization) {
  auto config = base_config();
  Override monetizer;
  monetizer.match_nonexistent = true;
  monetizer.action = OverrideAction::kForgeIps;
  monetizer.ips = {net::Ipv4(44, 44, 44, 44)};
  config.behavior.overrides.push_back(monetizer);
  OpenResolverService service(config);
  // NX names get the ad-search address...
  EXPECT_EQ(ask(service, a_query("no-such-name.example"))[0].answer_ips()[0],
            net::Ipv4(44, 44, 44, 44));
  // ...existing names resolve honestly.
  EXPECT_EQ(ask(service, a_query("good.example"))[0].answer_ips()[0],
            net::Ipv4(5, 5, 5, 5));
}

TEST_F(ResolverServiceTest, SelfIpOverrideUsesProbedAddress) {
  auto config = base_config();
  Override self;
  self.match_all = true;
  self.action = OverrideAction::kSelfIp;
  config.behavior.overrides.push_back(self);
  OpenResolverService service(config);
  const auto replies = ask(service, a_query("good.example"));
  // The probe was sent to 1.2.3.4 (see ask()).
  EXPECT_EQ(replies[0].answer_ips()[0], net::Ipv4(1, 2, 3, 4));
}

TEST_F(ResolverServiceTest, RandomIpOverrideAvoidsReservedSpace) {
  auto config = base_config();
  Override gfw;
  gfw.match_all = true;
  gfw.action = OverrideAction::kForgeRandomIp;
  config.behavior.overrides.push_back(gfw);
  OpenResolverService service(config);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 50; ++i) {
    const auto replies =
        ask(service, a_query("good.example"), static_cast<std::uint32_t>(i));
    ASSERT_EQ(replies.size(), 1u);
    const auto ips = replies[0].answer_ips();
    ASSERT_EQ(ips.size(), 1u);
    EXPECT_FALSE(net::is_reserved(ips[0])) << ips[0].to_string();
    seen.insert(ips[0].value());
  }
  EXPECT_GT(seen.size(), 40u);  // per-query randomness
}

TEST_F(ResolverServiceTest, ChaosBehaviors) {
  const auto probe = dns::make_version_query(5, dns::version_bind_name());
  {
    auto config = base_config();
    config.chaos = ChaosBehavior::kRevealVersion;
    config.version_banner = "BIND 9.8.2";
    OpenResolverService service(config);
    const auto replies = ask(service, probe);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(dns::extract_version(replies[0]), "BIND 9.8.2");
  }
  {
    auto config = base_config();
    config.chaos = ChaosBehavior::kRefused;
    OpenResolverService service(config);
    EXPECT_EQ(ask(service, probe)[0].header.rcode, dns::RCode::kRefused);
  }
  {
    auto config = base_config();
    config.chaos = ChaosBehavior::kNoErrorEmpty;
    OpenResolverService service(config);
    const auto replies = ask(service, probe);
    EXPECT_EQ(replies[0].header.rcode, dns::RCode::kNoError);
    EXPECT_FALSE(dns::extract_version(replies[0]).has_value());
  }
}

TEST_F(ResolverServiceTest, SnoopAnswersForKnownTlds) {
  auto config = base_config();
  config.snoop.profile = SnoopProfile::kStaticTtl;
  OpenResolverService service(config);
  const auto query = dns::Message::make_query(
      3, dns::Name::must_parse("com"), dns::RType::kNS, dns::RClass::kIN,
      /*rd=*/false);
  const auto replies = ask(service, query);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FALSE(replies[0].answers.empty());
  EXPECT_EQ(replies[0].answers[0].rtype, dns::RType::kNS);

  const auto unknown_tld = dns::Message::make_query(
      4, dns::Name::must_parse("zz"), dns::RType::kNS, dns::RClass::kIN,
      false);
  EXPECT_EQ(ask(service, unknown_tld)[0].header.rcode,
            dns::RCode::kNxDomain);
}

TEST_F(ResolverServiceTest, MangledReplyPortSetsDifferentDestination) {
  auto config = base_config();
  config.mangle_reply_port = true;
  OpenResolverService service(config);
  net::UdpPacket packet;
  packet.src = net::Ipv4(9, 9, 9, 9);
  packet.src_port = 4000;
  packet.dst = net::Ipv4(1, 2, 3, 4);
  packet.dst_port = 53;
  packet.payload = a_query("good.example").encode();
  std::vector<net::UdpReply> replies;
  service.handle(packet, replies);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_NE(replies[0].packet.dst_port, 4000);
}

TEST_F(ResolverServiceTest, DropRateSilencesSomeQueries) {
  auto config = base_config();
  config.behavior.drop_rate = 0.5;
  OpenResolverService service(config);
  int answered = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!ask(service, a_query("good.example"), static_cast<std::uint32_t>(i))
             .empty()) {
      ++answered;
    }
  }
  EXPECT_NEAR(answered / 1000.0, 0.5, 0.07);
}

TEST_F(ResolverServiceTest, MalformedAndNonQueryPacketsIgnored) {
  OpenResolverService service(base_config());
  net::UdpPacket packet;
  packet.payload = {1, 2, 3};
  std::vector<net::UdpReply> replies;
  service.handle(packet, replies);
  EXPECT_TRUE(replies.empty());

  dns::Message response = a_query("good.example");
  response.header.qr = true;  // a response, not a query
  packet.payload = response.encode();
  service.handle(packet, replies);
  EXPECT_TRUE(replies.empty());
}

TEST_F(ResolverServiceTest, ForwarderRewritesSource) {
  auto backend_config = base_config();
  OpenResolverService backend(backend_config);
  ForwarderService forwarder(&backend, net::Ipv4(10, 99, 0, 1), 15);
  net::UdpPacket packet;
  packet.src = net::Ipv4(9, 9, 9, 9);
  packet.src_port = 4000;
  packet.dst = net::Ipv4(1, 2, 3, 4);
  packet.dst_port = 53;
  packet.payload = a_query("good.example").encode();
  std::vector<net::UdpReply> replies;
  forwarder.handle(packet, replies);
  ASSERT_EQ(replies.size(), 1u);
  // The reply leaves from the backend's interface (§2.2 multi-homed).
  EXPECT_EQ(replies[0].packet.src, net::Ipv4(10, 99, 0, 1));
}

}  // namespace
}  // namespace dnswild::resolver
